#!/usr/bin/env python3
"""Lint Chrome trace_event JSON dumped by the benches / /skip/trace/<id>.

Validates the structural invariants the telemetry layer promises
(DESIGN.md section 5g):

  - the file is a JSON object with a "traceEvents" array;
  - every "X" (complete) event carries name, cat, ts >= 0, dur >= 0, pid,
    tid, and args.trace/span/parent ids;
  - events are sorted by ts (the exporter emits them chronologically);
  - within each trace id, span ids are unique, exactly one root
    (parent == 0) exists, and every non-root parent resolves to a span of
    the same trace — no orphans;
  - with --min-hops N, at least one trace spans >= N hops (the hop lives
    in the top byte of the span id: 1 = client process, 2 = reverse proxy);
  - spans may carry an "identity" attribute (the request's network
    identity, X-Skip-Identity); when present it must be a sanitized id
    ([A-Za-z0-9._-], <= 64 chars — never the '|' scope separator), and all
    spans of one trace must agree on it (a request runs under exactly one
    identity);
  - with --require-attr KEY, at least one span carries the attribute.

Exit code 0 when every file passes, 1 otherwise.

Usage:
  scripts/trace_lint.py dump.json [more.json ...] [--min-hops 2]
                        [--require-attr path]
"""

import argparse
import json
import re
import sys

# Sanitized network-identity grammar (proxy::sanitize_identity): anything
# else — in particular the '|' pool-key scope separator — is a bug upstream.
IDENTITY_RE = re.compile(r"^[A-Za-z0-9._-]{1,64}$")


def lint_file(path, min_hops, require_attrs):
    errors = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: unreadable or invalid JSON: {exc}"]

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return [f"{path}: no traceEvents array"]

    # Per-trace span tables: trace id -> {span id -> parent id}.
    traces = {}
    trace_identities = {}  # trace id -> identity attribute value
    attrs_seen = set()
    last_ts = None
    for i, event in enumerate(events):
        where = f"{path}: event {i}"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if phase == "M":
            continue  # metadata carries no timestamp
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            errors.append(f"{where}: bad ts {ts!r}")
            continue
        if last_ts is not None and ts < last_ts:
            errors.append(f"{where}: ts {ts} goes backwards (prev {last_ts})")
        last_ts = ts
        if phase != "X":
            continue
        for key in ("name", "cat", "pid", "tid", "dur", "args"):
            if key not in event:
                errors.append(f"{where}: X event missing {key}")
        dur = event.get("dur")
        if not isinstance(dur, (int, float)) or dur < 0:
            errors.append(f"{where}: bad dur {dur!r}")
        args = event.get("args")
        if not isinstance(args, dict):
            continue
        try:
            trace = int(args["trace"], 16)
            span = int(args["span"], 16)
            parent = int(args["parent"], 16)
        except (KeyError, TypeError, ValueError):
            errors.append(f"{where}: args missing trace/span/parent hex ids")
            continue
        spans = traces.setdefault(trace, {})
        if span in spans:
            errors.append(f"{where}: duplicate span {span:#x} in trace {trace:#x}")
        spans[span] = parent
        attrs_seen.update(k for k, v in args.items() if v)
        identity = args.get("identity")
        if identity is not None:
            if not (isinstance(identity, str) and IDENTITY_RE.fullmatch(identity)):
                errors.append(f"{where}: unsanitized identity {identity!r}")
            else:
                prev = trace_identities.setdefault(trace, identity)
                if prev != identity:
                    errors.append(
                        f"{where}: trace {trace:#x} mixes identities "
                        f"{prev!r} and {identity!r}"
                    )

    hops_best = 0
    for trace, spans in traces.items():
        roots = [s for s, parent in spans.items() if parent == 0]
        if len(roots) != 1:
            errors.append(f"{path}: trace {trace:#x} has {len(roots)} roots (want 1)")
        for span, parent in spans.items():
            if parent != 0 and parent not in spans:
                errors.append(
                    f"{path}: trace {trace:#x} span {span:#x} orphaned "
                    f"under missing parent {parent:#x}"
                )
        hops_best = max(hops_best, len({span >> 56 for span in spans}))

    if not traces:
        errors.append(f"{path}: no spans at all")
    if min_hops and hops_best < min_hops:
        errors.append(f"{path}: best trace spans {hops_best} hop(s), want >= {min_hops}")
    for attr in require_attrs:
        if attr not in attrs_seen:
            errors.append(f"{path}: no span carries attribute {attr!r}")
    return errors


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="+", help="Chrome trace JSON files")
    parser.add_argument("--min-hops", type=int, default=0,
                        help="require a trace spanning >= N hops")
    parser.add_argument("--require-attr", action="append", default=[],
                        metavar="KEY", help="require some span to carry KEY")
    opts = parser.parse_args()

    failed = 0
    for path in opts.files:
        errors = lint_file(path, opts.min_hops, opts.require_attr)
        if errors:
            failed += 1
            for error in errors:
                print(error, file=sys.stderr)
        else:
            print(f"{path}: ok")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
