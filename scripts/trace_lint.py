#!/usr/bin/env python3
"""Lint telemetry exports: Chrome trace JSON, metrics dumps, .prom text.

Chrome trace_event JSON (dumped by the benches / /skip/trace/<id>) is
validated against the structural invariants the telemetry layer promises
(DESIGN.md section 5g):

  - the file is a JSON object with a "traceEvents" array;
  - every "X" (complete) event carries name, cat, ts >= 0, dur >= 0, pid,
    tid, and args.trace/span/parent ids;
  - events are sorted by ts (the exporter emits them chronologically);
  - within each trace id, span ids are unique, exactly one root
    (parent == 0) exists, and every non-root parent resolves to a span of
    the same trace — no orphans;
  - with --min-hops N, at least one trace spans >= N hops (the hop lives
    in the top byte of the span id: 1 = client process, 2 = reverse proxy);
  - spans may carry an "identity" attribute (the request's network
    identity, X-Skip-Identity); when present it must be a sanitized id
    ([A-Za-z0-9._-], <= 64 chars — never the '|' scope separator), and all
    spans of one trace must agree on it (a request runs under exactly one
    identity);
  - with --require-attr KEY, at least one span carries the attribute.

Metrics dumps (--metrics FILE, the /skip/metrics JSON shape) are checked
for exemplar soundness (DESIGN.md section 5l): every histogram exemplar
must carry a nonzero decimal trace id, and — when trace files are linted
alongside — each id must resolve to a trace collected in those files, so
the "/skip/trace/<id> is one hop from any outlier" promise holds. A dump
with zero exemplars fails: the resolution check must not pass vacuously.

Prometheus expositions (--prom FILE, the /skip/metrics.prom shape) are
linted for text-format grammar: metric names [a-zA-Z_:][a-zA-Z0-9_:]*,
label names [a-zA-Z_][a-zA-Z0-9_]*, a # TYPE comment (counter / gauge /
histogram) preceding every sample family, strictly increasing le bounds
per histogram series ending at +Inf with non-decreasing cumulative bucket
counts, _sum/_count agreement with the +Inf bucket, and OpenMetrics
exemplar annotations whose value fits the bucket line carrying them (their
trace ids resolve like --metrics exemplars).

Exit code 0 when every file passes, 1 otherwise.

Usage:
  scripts/trace_lint.py dump.json [more.json ...] [--min-hops 2]
                        [--require-attr path] [--metrics dump.metrics.json]
                        [--prom dump.prom]
"""

import argparse
import json
import re
import sys

# Sanitized network-identity grammar (proxy::sanitize_identity): anything
# else — in particular the '|' pool-key scope separator — is a bug upstream.
IDENTITY_RE = re.compile(r"^[A-Za-z0-9._-]{1,64}$")


def lint_file(path, min_hops, require_attrs, trace_ids_out=None):
    errors = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: unreadable or invalid JSON: {exc}"]

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return [f"{path}: no traceEvents array"]

    # Per-trace span tables: trace id -> {span id -> parent id}.
    traces = {}
    trace_identities = {}  # trace id -> identity attribute value
    attrs_seen = set()
    last_ts = None
    for i, event in enumerate(events):
        where = f"{path}: event {i}"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if phase == "M":
            continue  # metadata carries no timestamp
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            errors.append(f"{where}: bad ts {ts!r}")
            continue
        if last_ts is not None and ts < last_ts:
            errors.append(f"{where}: ts {ts} goes backwards (prev {last_ts})")
        last_ts = ts
        if phase != "X":
            continue
        for key in ("name", "cat", "pid", "tid", "dur", "args"):
            if key not in event:
                errors.append(f"{where}: X event missing {key}")
        dur = event.get("dur")
        if not isinstance(dur, (int, float)) or dur < 0:
            errors.append(f"{where}: bad dur {dur!r}")
        args = event.get("args")
        if not isinstance(args, dict):
            continue
        try:
            trace = int(args["trace"], 16)
            span = int(args["span"], 16)
            parent = int(args["parent"], 16)
        except (KeyError, TypeError, ValueError):
            errors.append(f"{where}: args missing trace/span/parent hex ids")
            continue
        spans = traces.setdefault(trace, {})
        if span in spans:
            errors.append(f"{where}: duplicate span {span:#x} in trace {trace:#x}")
        spans[span] = parent
        attrs_seen.update(k for k, v in args.items() if v)
        identity = args.get("identity")
        if identity is not None:
            if not (isinstance(identity, str) and IDENTITY_RE.fullmatch(identity)):
                errors.append(f"{where}: unsanitized identity {identity!r}")
            else:
                prev = trace_identities.setdefault(trace, identity)
                if prev != identity:
                    errors.append(
                        f"{where}: trace {trace:#x} mixes identities "
                        f"{prev!r} and {identity!r}"
                    )

    if trace_ids_out is not None:
        trace_ids_out.update(traces)

    hops_best = 0
    for trace, spans in traces.items():
        roots = [s for s, parent in spans.items() if parent == 0]
        if len(roots) != 1:
            errors.append(f"{path}: trace {trace:#x} has {len(roots)} roots (want 1)")
        for span, parent in spans.items():
            if parent != 0 and parent not in spans:
                errors.append(
                    f"{path}: trace {trace:#x} span {span:#x} orphaned "
                    f"under missing parent {parent:#x}"
                )
        hops_best = max(hops_best, len({span >> 56 for span in spans}))

    if not traces:
        errors.append(f"{path}: no spans at all")
    if min_hops and hops_best < min_hops:
        errors.append(f"{path}: best trace spans {hops_best} hop(s), want >= {min_hops}")
    for attr in require_attrs:
        if attr not in attrs_seen:
            errors.append(f"{path}: no span carries attribute {attr!r}")
    return errors


def check_exemplar_id(where, raw, trace_ids, errors):
    """Shared exemplar-id check: nonzero decimal string, resolvable when a
    trace-id universe was collected. Returns the parsed id or None."""
    if not (isinstance(raw, str) and raw.isdigit()):
        errors.append(f"{where}: exemplar trace_id {raw!r} is not a decimal string")
        return None
    trace_id = int(raw)
    if trace_id == 0:
        errors.append(f"{where}: exemplar carries the null trace id")
        return None
    if trace_ids is not None and trace_id not in trace_ids:
        errors.append(
            f"{where}: exemplar trace id {trace_id} ({trace_id:#x}) resolves "
            f"to no collected trace"
        )
    return trace_id


def lint_metrics_file(path, trace_ids):
    errors = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: unreadable or invalid JSON: {exc}"]

    histograms = doc.get("histograms")
    if not isinstance(histograms, dict):
        return [f"{path}: no histograms object (not a /skip/metrics dump?)"]
    exemplars_seen = 0
    for name, histogram in histograms.items():
        where = f"{path}: {name}"
        if not isinstance(histogram, dict):
            errors.append(f"{where}: histogram entry is not an object")
            continue
        exemplars = histogram.get("exemplars", [])
        if not isinstance(exemplars, list):
            errors.append(f"{where}: exemplars is not an array")
            continue
        for exemplar in exemplars:
            if not isinstance(exemplar, dict):
                errors.append(f"{where}: exemplar is not an object")
                continue
            exemplars_seen += 1
            check_exemplar_id(where, exemplar.get("trace_id"), trace_ids, errors)
    if exemplars_seen == 0:
        errors.append(
            f"{path}: no exemplars in any histogram — the resolution check "
            f"would pass vacuously"
        )
    return errors


# Prometheus text-format grammar (abridged to what to_prom() emits): a TYPE
# comment per family, then `name{labels} value`, histogram bucket lines
# optionally trailed by an OpenMetrics exemplar annotation.
PROM_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
PROM_TYPE_RE = re.compile(r"^# TYPE ([^ ]+) ([^ ]+)$")
PROM_SAMPLE_RE = re.compile(
    r'^(?P<name>[^ {]+)'
    # Label block: quoted strings may contain anything (escapes included), so
    # the block ends at the first '}' outside quotes — not at the exemplar's.
    r'(?:\{(?P<labels>(?:"(?:[^"\\]|\\.)*"|[^"}])*)\})?'
    r' (?P<value>[^ ]+)'
    r'(?: # \{trace_id="(?P<exemplar_id>[^"]*)"\} (?P<exemplar_value>[^ ]+))?$'
)
PROM_LABEL_RE = re.compile(r'([^=,]+)="((?:[^"\\]|\\.)*)"')


def lint_prom_file(path, trace_ids):
    errors = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    except OSError as exc:
        return [f"{path}: unreadable: {exc}"]

    declared = {}  # family name -> type
    sampled = set()  # family names that produced at least one sample
    # Histogram bucket series: (name, labels-minus-le) -> [(le, count)].
    buckets = {}
    scalars = {}  # (name, labels) -> value, for _sum/_count cross-checks
    for i, line in enumerate(lines):
        where = f"{path}:{i + 1}"
        if not line:
            continue
        if line.startswith("#"):
            match = PROM_TYPE_RE.fullmatch(line)
            if match is None:
                errors.append(f"{where}: comment is not a TYPE declaration: {line!r}")
                continue
            name, kind = match.groups()
            if not PROM_NAME_RE.fullmatch(name):
                errors.append(f"{where}: metric name {name!r} breaks prom grammar")
            if kind not in ("counter", "gauge", "histogram"):
                errors.append(f"{where}: unknown metric type {kind!r}")
            if name in declared:
                errors.append(f"{where}: family {name!r} declared twice")
            declared[name] = kind
            continue
        match = PROM_SAMPLE_RE.fullmatch(line)
        if match is None:
            errors.append(f"{where}: unparseable sample line: {line!r}")
            continue
        name = match.group("name")
        if not PROM_NAME_RE.fullmatch(name):
            errors.append(f"{where}: sample name {name!r} breaks prom grammar")
            continue
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in declared:
                family = name[: -len(suffix)]
                break
        if family not in declared:
            errors.append(f"{where}: sample {name!r} has no preceding TYPE")
        sampled.add(family)

        labels = []
        raw_labels = match.group("labels")
        if raw_labels is not None:
            consumed = 0
            for pair in PROM_LABEL_RE.finditer(raw_labels):
                key = pair.group(1).lstrip(",")
                if not re.fullmatch(r"[a-zA-Z_][a-zA-Z0-9_]*", key):
                    errors.append(f"{where}: label name {key!r} breaks prom grammar")
                labels.append((key, pair.group(2)))
                consumed = pair.end()
            if raw_labels[consumed:].strip(","):
                errors.append(
                    f"{where}: unparseable label residue {raw_labels[consumed:]!r}"
                )
        try:
            value = float(match.group("value"))
        except ValueError:
            errors.append(f"{where}: non-numeric value {match.group('value')!r}")
            continue

        exemplar_id = match.group("exemplar_id")
        if exemplar_id is not None:
            if not name.endswith("_bucket"):
                errors.append(f"{where}: exemplar on a non-bucket line")
            check_exemplar_id(where, exemplar_id, trace_ids, errors)
            try:
                exemplar_value = float(match.group("exemplar_value"))
            except ValueError:
                exemplar_value = None
                errors.append(
                    f"{where}: non-numeric exemplar value "
                    f"{match.group('exemplar_value')!r}"
                )
        if name.endswith("_bucket") and family != name:
            le_values = [v for k, v in labels if k == "le"]
            if len(le_values) != 1:
                errors.append(f"{where}: bucket line needs exactly one le label")
                continue
            le = float("inf") if le_values[0] == "+Inf" else float(le_values[0])
            if exemplar_id is not None and exemplar_value is not None:
                # to_prom attaches each exemplar to the first bucket containing
                # its value, so it must sit at or below this bucket's bound.
                if exemplar_value > le + 1e-12:
                    errors.append(
                        f"{where}: exemplar value {exemplar_value} above its "
                        f"bucket bound {le_values[0]}"
                    )
            rest = tuple(sorted((k, v) for k, v in labels if k != "le"))
            buckets.setdefault((family, rest), []).append((le, value, where))
        else:
            scalars[(name, tuple(sorted(labels)))] = (value, where)

    for (family, rest), series in buckets.items():
        les = [le for le, _, _ in series]
        if les != sorted(les) or len(set(les)) != len(les):
            errors.append(f"{path}: {family}: le bounds not strictly increasing")
        if not les or les[-1] != float("inf"):
            errors.append(f"{path}: {family}: bucket series does not end at +Inf")
        counts = [count for _, count, _ in series]
        if counts != sorted(counts):
            errors.append(f"{path}: {family}: cumulative bucket counts decrease")
        total = scalars.get((family + "_count", rest))
        if total is None:
            errors.append(f"{path}: {family}: histogram has no _count sample")
        elif counts and total[0] != counts[-1]:
            errors.append(
                f"{path}: {family}: _count {total[0]} != +Inf bucket {counts[-1]}"
            )
        if scalars.get((family + "_sum", rest)) is None:
            errors.append(f"{path}: {family}: histogram has no _sum sample")

    for family, kind in declared.items():
        if family not in sampled:
            errors.append(f"{path}: family {family!r} ({kind}) has no samples")
    if not declared:
        errors.append(f"{path}: no metric families at all")
    return errors


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="*", help="Chrome trace JSON files")
    parser.add_argument("--min-hops", type=int, default=0,
                        help="require a trace spanning >= N hops")
    parser.add_argument("--require-attr", action="append", default=[],
                        metavar="KEY", help="require some span to carry KEY")
    parser.add_argument("--metrics", action="append", default=[], metavar="FILE",
                        help="lint a /skip/metrics JSON dump (exemplar ids "
                             "must resolve in the trace files, when given)")
    parser.add_argument("--prom", action="append", default=[], metavar="FILE",
                        help="lint a Prometheus text exposition")
    opts = parser.parse_args()
    if not (opts.files or opts.metrics or opts.prom):
        parser.error("nothing to lint")

    # Exemplar ids resolve against the union of all trace files on the
    # command line; without any, resolution is skipped (grammar still lints).
    trace_ids = set() if opts.files else None

    failed = 0

    def report(path, errors):
        nonlocal failed
        if errors:
            failed += 1
            for error in errors:
                print(error, file=sys.stderr)
        else:
            print(f"{path}: ok")

    for path in opts.files:
        report(path, lint_file(path, opts.min_hops, opts.require_attr, trace_ids))
    for path in opts.metrics:
        report(path, lint_metrics_file(path, trace_ids))
    for path in opts.prom:
        report(path, lint_prom_file(path, trace_ids))
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
