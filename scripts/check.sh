#!/usr/bin/env bash
# Tier-1 verification: a plain build + ctest, followed by an ASan+UBSan
# instrumented build + ctest. Run from the repo root:
#
#   scripts/check.sh              # both builds
#   scripts/check.sh --fast       # plain build only
#   scripts/check.sh --sanitize   # sanitized build only (CI matrix leg)
set -euo pipefail

cd "$(dirname "$0")/.."

run_suite() {
  local build_dir="$1"
  shift
  cmake -B "$build_dir" -S . "$@"
  cmake --build "$build_dir" -j
  ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)"
}

if [[ "${1:-}" != "--sanitize" ]]; then
  echo "==> tier-1: plain build + ctest"
  run_suite build
fi

if [[ "${1:-}" != "--fast" ]]; then
  echo "==> sanitized: PAN_SANITIZE=ON build + ctest"
  run_suite build-asan -DPAN_SANITIZE=ON
fi

echo "==> all checks passed"
