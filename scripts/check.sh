#!/usr/bin/env bash
# Tier-1 verification: a plain build + ctest, followed by an ASan+UBSan
# instrumented build + ctest. Run from the repo root:
#
#   scripts/check.sh              # both builds
#   scripts/check.sh --fast       # plain build only
#   scripts/check.sh --sanitize   # sanitized build only (CI matrix leg)
#   scripts/check.sh --soak       # plain build, then loop the chaos + surge
#                                 # suites until SOAK_BUDGET_S (default 120 s)
#                                 # of wall clock is spent
#   scripts/check.sh --trace-lint # plain build, run the chaos bench with
#                                 # PAN_TRACE_DUMP set, lint the Chrome trace
#                                 # JSON it exports (structure, parent links,
#                                 # cross-hop coverage, path annotations)
#   scripts/check.sh --identity   # PAN_SANITIZE=ON build, then loop the
#                                 # identity-isolation suite (broker
#                                 # disjointness under rotation + link cuts)
#   scripts/check.sh --bench-smoke # plain build, then a short bench_micro run
#                                 # of the forwarding benches; fails if the
#                                 # zero-copy hop path allocates or is not
#                                 # faster than the legacy reparse pipeline
#   scripts/check.sh --fleet      # PAN_SANITIZE=ON build, then the proxy
#                                 # fleet suite + bench_fleet_scale --smoke;
#                                 # fails on any strict downgrade, deadline
#                                 # miss, or warm handoff < 5x cold recovery
#   scripts/check.sh --multiaccess # PAN_SANITIZE=ON build, then the
#                                 # multi-access suite + the multipath
#                                 # ablation bench; fails if intent-aware
#                                 # scheduling loses to intent-blind or a
#                                 # mid-load access cut misses a deadline
#   scripts/check.sh --obs        # PAN_SANITIZE=ON build, then the
#                                 # observability suites (metrics / exemplars
#                                 # / time-series / fleet plane) plus the
#                                 # chaos bench's metrics dump linted for
#                                 # prom grammar + exemplar resolution
set -euo pipefail

cd "$(dirname "$0")/.."

run_suite() {
  local build_dir="$1"
  shift
  cmake -B "$build_dir" -S . "$@"
  cmake --build "$build_dir" -j
  ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)"
}

if [[ "${1:-}" == "--soak" ]]; then
  echo "==> soak: plain build, then chaos + surge loop"
  run_suite build
  budget="${SOAK_BUDGET_S:-120}"
  deadline=$(( $(date +%s) + budget ))
  iterations=0
  while (( $(date +%s) < deadline )); do
    ./build/tests/fault_test >/dev/null
    ./build/tests/robustness_test >/dev/null
    ./build/bench/bench_ablation_chaos >/dev/null
    iterations=$(( iterations + 1 ))
  done
  echo "==> soak passed (${iterations} iterations in <= ${budget}s)"
  exit 0
fi

if [[ "${1:-}" == "--trace-lint" ]]; then
  echo "==> trace-lint: chaos bench with PAN_TRACE_DUMP, then lint the exports"
  run_suite build
  dump_dir="$(mktemp -d)"
  trap 'rm -rf "$dump_dir"' EXIT
  PAN_TRACE_DUMP="$dump_dir" ./build/bench/bench_ablation_chaos
  # Every dump must be structurally sound; the baseline remote-world dump
  # must additionally show a cross-hop trace (client + reverse proxy under
  # one trace id) annotated with the SCION path fingerprint and ISD sequence.
  # (The bench also writes *.metrics.json / *.prom — the --obs leg lints
  # those; here keep the Chrome trace files only.)
  traces=()
  for f in "$dump_dir"/*.json; do
    [[ "$f" == *.metrics.json ]] || traces+=("$f")
  done
  python3 scripts/trace_lint.py "${traces[@]}"
  python3 scripts/trace_lint.py "$dump_dir"/chaos-baseline-on.json \
    --min-hops 2 --require-attr path --require-attr isd_seq
  echo "==> trace-lint passed"
  exit 0
fi

if [[ "${1:-}" == "--identity" ]]; then
  echo "==> identity: PAN_SANITIZE=ON build, identity-isolation suite"
  # The isolation invariant is memory-sensitive (pool retire/migrate on live
  # connections), so this leg always runs instrumented.
  cmake -B build-asan -S . -DPAN_SANITIZE=ON
  cmake --build build-asan -j
  ./build-asan/tests/identity_test
  echo "==> identity passed"
  exit 0
fi

if [[ "${1:-}" == "--fleet" ]]; then
  echo "==> fleet: PAN_SANITIZE=ON build, fleet suite + scale bench smoke"
  # Failover re-dispatch and warm-state import shuffle live proxy/resolver
  # objects, so this leg always runs instrumented. The bench exits nonzero
  # on any strict-guarantee loss (downgrade, deadline miss, shed at N>=4) or
  # a warm-vs-cold recovery ratio under 5x.
  cmake -B build-asan -S . -DPAN_SANITIZE=ON
  cmake --build build-asan -j
  ./build-asan/tests/fleet_test
  ./build-asan/bench/bench_fleet_scale --smoke
  echo "==> fleet passed"
  exit 0
fi

if [[ "${1:-}" == "--bench-smoke" ]]; then
  echo "==> bench-smoke: forwarding micro-benchmarks (zero-copy data plane)"
  run_suite build
  out="$(./build/bench/bench_micro \
    --benchmark_filter='ForwardHop|ScionHeaderViewParse|Histogram|TimeSeries' \
    --benchmark_min_time=0.1 \
    --benchmark_format=json)"
  echo "$out"
  # Contract checks, not absolute timings (CI machines vary): the zero-copy
  # pipeline must not allocate on the hop path — with or without the
  # forward-latency histogram — and must beat legacy pkt/s; histogram
  # recording (tagged or not) must be allocation-free too.
  python3 - "$out" <<'EOF'
import json, sys
runs = {b["name"]: b for b in json.loads(sys.argv[1])["benchmarks"]}
for hops in (3, 8):
    legacy = runs[f"BM_ForwardHopLegacy/{hops}"]
    zc = runs[f"BM_ForwardHopZeroCopy/{hops}"]
    inst = runs[f"BM_ForwardHopZeroCopyInstrumented/{hops}"]
    assert zc["allocs_per_forward"] == 0, f"zero-copy hop path allocates at {hops} hops"
    assert inst["allocs_per_forward"] == 0, \
        f"forward-latency telemetry allocates on the hop path at {hops} hops"
    ratio = zc["items_per_second"] / legacy["items_per_second"]
    print(f"{hops} hops: zero-copy {ratio:.2f}x legacy pkt/s")
    assert ratio > 1.0, f"zero-copy slower than legacy at {hops} hops ({ratio:.2f}x)"
for name in ("BM_HistogramRecord", "BM_HistogramRecordExemplar"):
    assert runs[name]["allocs_per_record"] == 0, f"{name} allocates per record"
    print(f"{name}: {runs[name]['items_per_second']:.3g} records/s, 0 allocs")
EOF
  echo "==> bench-smoke passed"
  exit 0
fi

if [[ "${1:-}" == "--multiaccess" ]]; then
  echo "==> multiaccess: PAN_SANITIZE=ON build, multi-access suite + ablation bench"
  # Mid-flight access failover re-dispatches live requests across SCION
  # stacks and the flap property suite hammers that path, so this leg always
  # runs instrumented. The bench exits nonzero when intent-aware scheduling
  # fails to beat the intent-blind ablation or a strict document misses its
  # deadline across the mid-load primary-access cut.
  cmake -B build-asan -S . -DPAN_SANITIZE=ON
  cmake --build build-asan -j
  ./build-asan/tests/multiaccess_test
  ./build-asan/bench/bench_ablation_multipath
  echo "==> multiaccess passed"
  exit 0
fi

if [[ "${1:-}" == "--obs" ]]; then
  echo "==> obs: PAN_SANITIZE=ON build, observability suites + metrics lint"
  # Exemplar slots, time-series rings, and fleet merges all shuffle
  # histogram state across replica restarts, so this leg always runs
  # instrumented. The chaos bench then exports per-scenario Chrome traces
  # plus /skip/metrics JSON and .prom expositions, and the linter checks
  # prom grammar end-to-end and that every exemplar trace id resolves to a
  # collected trace (the one-hop-to-/skip/trace/<id> promise).
  cmake -B build-asan -S . -DPAN_SANITIZE=ON
  cmake --build build-asan -j
  ./build-asan/tests/obs_test
  ./build-asan/tests/timeseries_test
  ./build-asan/tests/fleet_test
  ./build-asan/tests/proxy_test
  dump_dir="$(mktemp -d)"
  trap 'rm -rf "$dump_dir"' EXIT
  PAN_TRACE_DUMP="$dump_dir" ./build-asan/bench/bench_ablation_chaos >/dev/null
  for prom in "$dump_dir"/*.prom; do
    base="${prom%.prom}"
    python3 scripts/trace_lint.py "$base.json" \
      --metrics "$base.metrics.json" --prom "$prom"
  done
  echo "==> obs passed"
  exit 0
fi

if [[ "${1:-}" != "--sanitize" ]]; then
  echo "==> tier-1: plain build + ctest"
  run_suite build
fi

if [[ "${1:-}" != "--fast" ]]; then
  echo "==> sanitized: PAN_SANITIZE=ON build + ctest"
  run_suite build-asan -DPAN_SANITIZE=ON
fi

echo "==> all checks passed"
