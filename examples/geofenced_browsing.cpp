// Geofenced browsing: the paper's headline user-driven property.
//
// A user in ISD 1 browses a site in ISD 2 while distrusting the ASes of
// core-2b's operator. The example shows:
//   1. the geofence UI state compiled down to a PPL policy,
//   2. opportunistic mode preferring a compliant (if slower) path,
//   3. what happens when the fence excludes every path: opportunistic loads
//      anyway (flagged non-compliant), strict mode fails closed,
//   4. per-path usage statistics as the user feedback channel.
#include <cstdio>

#include "core/scenarios.hpp"
#include "ppl/parser.hpp"
#include "util/log.hpp"

using namespace pan;

namespace {

void report(const char* label, const browser::PageLoadResult& result) {
  std::printf("%-34s PLT %8.2f ms  ok=%d complete=%d indicator=%-11s compliant=%s\n", label,
              result.plt.millis(), result.ok, result.complete, to_string(result.indicator),
              result.fully_policy_compliant ? "yes" : "NO");
}

void print_usage(browser::ClientSession& session) {
  for (const auto& [fingerprint, usage] : session.proxy().selector().usage()) {
    std::printf("    used path %s (%llu requests, %llu bytes)\n      %s\n",
                fingerprint.c_str(), static_cast<unsigned long long>(usage.requests),
                static_cast<unsigned long long>(usage.bytes), usage.description.c_str());
  }
}

}  // namespace

int main() {
  Logger::set_level(LogLevel::kWarn);
  auto world = browser::make_remote_world();
  auto& site = *world->site("www.far.example");
  std::vector<std::string> resources;
  for (int i = 0; i < 3; ++i) {
    const std::string path = "/asset" + std::to_string(i) + ".bin";
    site.add_blob(path, 20'000);
    resources.push_back(path);
  }
  site.add_text("/", browser::render_document(resources));

  // --- 1. free browsing: fastest path wins -------------------------------
  {
    browser::ClientSession session(*world);
    report("no geofence", session.load("http://www.far.example/"));
    print_usage(session);
  }

  // --- 2. fence out one AS: compliant detour -----------------------------
  {
    ppl::Policy avoid =
        ppl::parse_policy("policy \"avoid-220\" { acl { deny 2-ff00:0:220; allow *; } }")
            .value();
    std::printf("\nuser policy:\n%s\n\n", avoid.to_string().c_str());
    browser::ClientSession session(*world);
    session.extension().set_policies(ppl::PolicySet{{avoid}});
    report("avoid AS 2-ff00:0:220", session.load("http://www.far.example/"));
    print_usage(session);
  }

  // --- 3. fence out the whole destination ISD ----------------------------
  ppl::Geofence fence;
  fence.mode = ppl::GeofenceMode::kBlocklist;
  fence.isds = {2};
  std::printf("\ngeofence: %s -> compiled PPL:\n%s\n\n", fence.to_string().c_str(),
              fence.compile("geofence").to_string().c_str());
  {
    browser::ClientSession session(*world);
    session.extension().set_geofence(fence);
    report("ISD 2 blocked, opportunistic", session.load("http://www.far.example/"));
    std::printf("    (loads anyway — the indicator flags non-compliance)\n");
  }
  {
    browser::ClientSession session(*world);
    session.extension().set_geofence(fence);
    session.extension().set_mode(browser::OperationMode::kStrict);
    const auto result = session.load("http://www.far.example/");
    report("ISD 2 blocked, strict", result);
    std::printf("    main document status: %d (%zu blocked) — strict mode fails closed\n",
                result.resources[0].status, result.blocked);
  }
  return 0;
}
