// Fast failover: SCMP path revocation + live QUIC path migration.
//
// A large download is in flight over the best SCION path when the core link
// it uses goes down. The border router that hits the dead link sends an
// SCMP report back over the reversed path prefix; the SKIP proxy revokes the
// broken interface and migrates the live connection onto an alternate path;
// transport-level loss recovery redelivers everything that was in flight.
// The download completes without any IP fallback — multipath as resilience,
// the flip side of the paper's multipath-as-choice story.
#include <cstdio>

#include "core/scenarios.hpp"
#include "scion/scmp.hpp"
#include "util/log.hpp"

using namespace pan;

int main() {
  Logger::set_level(LogLevel::kWarn);
  auto world = browser::make_remote_world();
  world->site("www.far.example")->add_blob("/dataset.bin", 500'000);
  auto& topo = world->topology();

  dns::Resolver resolver(world->sim(), world->zone(), {});
  proxy::SkipProxy proxy(world->sim(), topo.host(world->client),
                         topo.scion_stack(world->client), topo.daemon_for(world->client),
                         resolver);

  // Narrate SCMP activity.
  topo.scion_stack(world->client).subscribe_scmp([&](const scion::ScmpMessage& m) {
    std::printf("  [%7.1f ms] %s\n", world->sim().now().millis(), m.to_string().c_str());
  });

  std::printf("downloading 500 kB from www.far.example over SCION...\n");
  http::HttpRequest request;
  request.target = "http://www.far.example/dataset.bin";
  bool done = false;
  proxy::ProxyResult result;
  proxy.fetch(request, {}, [&](proxy::ProxyResult r) {
    result = std::move(r);
    done = true;
  });

  // Let the transfer get going, then cut the fast core link (core-1 to
  // core-2b) that the best path uses.
  world->sim().run_until(world->sim().now() + milliseconds(150));
  const auto paths = topo.daemon_for(world->client).query_now(topo.as_by_name("server-as"));
  const scion::IsdAsn c1 = topo.as_by_name("core-1");
  for (const auto& hop : paths.front().hops()) {
    if (hop.isd_as != c1) continue;
    auto& network = topo.network();
    for (net::NodeId node = 0; node < network.node_count(); ++node) {
      if (network.node_name(node) == "br-core-1") {
        network.set_link_up(node, scion::BorderRouter::to_net_if(hop.egress), false);
        std::printf("  [%7.1f ms] LINK FAILURE: %s interface %u goes dark\n",
                    world->sim().now().millis(), c1.to_string().c_str(), hop.egress);
      }
    }
  }

  world->sim().run_until_condition([&] { return done; }, world->sim().now() + seconds(60));
  if (!done || result.transport != proxy::TransportUsed::kScion) {
    std::printf("FAILED: download did not complete over SCION\n");
    return 1;
  }
  std::printf("  [%7.1f ms] download complete: %zu bytes over SCION\n",
              world->sim().now().millis(), result.response.body.size());
  std::printf("\nproxy stats: %llu SCMP report(s), %llu live migration(s), 0 IP fallbacks\n",
              static_cast<unsigned long long>(proxy.stats().scmp_reports),
              static_cast<unsigned long long>(proxy.stats().scmp_reroutes));
  std::printf("revocations active: %zu\n", proxy.selector().active_revocations());
  for (const auto& [fp, usage] : proxy.selector().usage()) {
    std::printf("final path %s: %s (observed RTT %.1f ms)\n", fp.c_str(),
                usage.description.c_str(), usage.observed_rtt.millis());
  }
  return 0;
}
