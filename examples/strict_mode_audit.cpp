// Strict-mode audit: partial availability in practice (Section 4.2/4.3).
//
// The user visits a set of sites with mixed SCION availability. The example
// walks through:
//   - opportunistic mode: everything loads, the indicator reports all /
//     some / none over SCION;
//   - Strict-SCION response headers creating HSTS-like pins;
//   - a pinned site being enforced strict on the next visit;
//   - the detector learning availability (curated list / DNS TXT / header).
#include <cstdio>

#include "core/scenarios.hpp"
#include "util/log.hpp"

using namespace pan;

int main() {
  Logger::set_level(LogLevel::kWarn);
  auto world = browser::make_local_world();
  auto& scion_fs = *world->site("scion-fs.local");
  auto& tcpip_fs = *world->site("tcpip-fs.local");

  // scion-fs.local is fully SCION-capable and says so via Strict-SCION.
  scion_fs.enable_strict_scion(seconds(3600));
  scion_fs.add_blob("/app.js", 30'000);
  scion_fs.add_text("/", browser::render_document({"/app.js"}));
  // A second page on the same host pulls a legacy third-party resource.
  tcpip_fs.add_blob("/tracker.js", 5'000);
  scion_fs.add_text("/with-tracker",
                    browser::render_document({"http://tcpip-fs.local/tracker.js"}));
  // tcpip-fs.local is legacy-only.
  tcpip_fs.add_text("/", "plain old web");

  browser::ClientSession session(*world);
  const auto visit = [&](const char* label, const std::string& url) {
    const auto result = session.load(url);
    std::printf("%-40s %-11s scion=%zu ip=%zu blocked=%zu pins=%zu\n", label,
                to_string(result.indicator), result.over_scion, result.over_ip,
                result.blocked, session.extension().pin_count());
    return result;
  };

  std::printf("== opportunistic browsing ==\n");
  visit("visit scion site", "http://scion-fs.local/");
  std::printf("   Strict-SCION header received -> pin for scion-fs.local: %s\n",
              session.extension().has_pin("scion-fs.local") ? "yes" : "no");
  visit("visit legacy site", "http://tcpip-fs.local/");

  std::printf("\n== the pin now enforces strict mode for the pinned site ==\n");
  const auto pinned = visit("revisit scion site (pinned)", "http://scion-fs.local/");
  std::printf("   all resources over SCION: %s\n",
              pinned.over_scion == pinned.resources.size() ? "yes" : "no");
  const auto tracker = visit("pinned site w/ legacy tracker", "http://scion-fs.local/with-tracker");
  std::printf("   the legacy tracker was %s\n",
              tracker.blocked > 0 ? "BLOCKED by strict mode (privacy win)" : "loaded");

  std::printf("\n== legacy site remains reachable (pin is per-host) ==\n");
  visit("legacy site again", "http://tcpip-fs.local/");

  std::printf("\n== detector state ==\n");
  std::printf("   learned SCION hosts: %zu, curated: %zu\n",
              session.proxy().detector().learned_size(),
              session.proxy().detector().curated_size());
  return 0;
}
