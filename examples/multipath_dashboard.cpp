// Multipath dashboard: the path metadata "UI" a browser extension would
// render — every candidate path to a destination with its decorations, plus
// the effect of a few canned user policies, mirroring the settings panel of
// the paper's extension.
#include <cstdio>

#include "core/scenarios.hpp"
#include "ppl/parser.hpp"
#include "util/log.hpp"

using namespace pan;

namespace {

void print_paths(const std::vector<scion::Path>& paths) {
  std::printf("  %-3s %9s %8s %8s %8s %6s %5s %-9s %s\n", "#", "latency", "bw Gbps",
              "gCO2/GB", "cost/GB", "mtu", "hops", "countries", "route");
  for (std::size_t i = 0; i < paths.size(); ++i) {
    const scion::Path& p = paths[i];
    std::string countries;
    for (const auto& c : p.countries()) {
      if (!countries.empty()) countries += ">";
      countries += c;
    }
    std::printf("  %-3zu %7.1fms %8.1f %8.1f %8.1f %6zu %5zu %-9s %s\n", i,
                p.meta().latency.millis(), p.meta().bandwidth_bps / 1e9,
                p.meta().co2_g_per_gb, p.meta().cost_per_gb, p.meta().mtu, p.link_count(),
                countries.c_str(), p.to_string().c_str());
  }
}

}  // namespace

int main() {
  Logger::set_level(LogLevel::kWarn);
  auto world = browser::make_remote_world();
  auto& topo = world->topology();
  const scion::IsdAsn dst = topo.as_by_name("server-as");

  std::printf("destination: %s (www.far.example)\n\n", dst.to_string().c_str());
  const auto paths = topo.daemon_for(world->client).query_now(dst);
  std::printf("all %zu candidate paths (daemon order: latency, then hops):\n", paths.size());
  print_paths(paths);

  const struct {
    const char* label;
    const char* text;
  } policies[] = {
      {"green mode", "policy { order co2 asc, latency asc; }"},
      {"budget mode", "policy { order cost asc, latency asc; }"},
      {"paranoid: stay clear of 2-ff00:0:220",
       "policy { acl { deny 2-ff00:0:220; allow *; } order latency asc; }"},
      {"quality floor: <=40ms and mtu>=1500",
       "policy { require latency <= 40ms; require mtu >= 1500; order latency asc; }"},
  };
  for (const auto& entry : policies) {
    const auto policy = ppl::parse_policy(entry.text);
    if (!policy.ok()) {
      std::printf("policy error: %s\n", policy.error().c_str());
      return 1;
    }
    auto filtered = policy.value().apply(paths);
    std::printf("\n[%s]  %s\n  -> %zu path(s) remain:\n", entry.label, entry.text,
                filtered.size());
    print_paths(filtered);
  }

  std::printf("\nThe extension renders exactly this view; selecting a row pins the page's\n"
              "traffic to that path (see geofenced_browsing / co2_routing for the effect).\n");
  return 0;
}
