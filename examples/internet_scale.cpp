// Internet-scale control plane: a randomly generated 3-ISD world with core
// rings, dual-homed leaves, and cross-ISD peering links. Shows the paper's
// "dozens of potential paths" claim concretely: per-pair path diversity,
// what peering shortcuts buy, and how the control plane scales.
#include <algorithm>
#include <cstdio>

#include "scion/topo_gen.hpp"
#include "util/log.hpp"
#include "util/stats.hpp"

using namespace pan;
using namespace pan::scion;

namespace {

bool is_peering_path(const Path& path) {
  const auto& segments = path.dataplane().segments;
  if (segments.size() != 2) return false;
  const DataplaneSegment& first = segments.front();
  return first.traversal_egress(first.length() - 1) != kNoIface;
}

}  // namespace

int main() {
  Logger::set_level(LogLevel::kWarn);
  sim::Simulator sim;
  TopoGenParams params;
  params.seed = 2022;
  params.isds = 3;
  params.cores_per_isd = 4;
  params.leaves_per_core = 2;
  params.core_chords = 2;
  params.inter_isd_links = 2;
  params.peering_links = 6;
  params.beacons_per_origin = 8;
  GeneratedTopology world = generate_topology(sim, params);
  Topology& topo = *world.topo;

  std::printf("world: %zu ASes (%zu core, %zu leaf), %zu path segments registered\n",
              topo.as_count(), world.core_ases.size(), world.leaf_ases.size(),
              topo.path_infra().segment_count());

  std::vector<double> diversity;
  std::size_t pairs_with_peering_best = 0;
  std::size_t pairs = 0;
  double peering_gain_ms_total = 0;
  std::size_t peering_gain_count = 0;

  for (const IsdAsn src : world.leaf_ases) {
    Daemon& daemon = topo.daemon(src);
    for (const IsdAsn dst : world.leaf_ases) {
      if (src == dst) continue;
      const auto paths = daemon.query_now(dst);
      ++pairs;
      diversity.push_back(static_cast<double>(paths.size()));
      if (paths.empty()) continue;
      if (is_peering_path(paths.front())) {
        ++pairs_with_peering_best;
        // Gain vs the best non-peering path.
        for (const Path& p : paths) {
          if (!is_peering_path(p)) {
            peering_gain_ms_total += (p.meta().latency - paths.front().meta().latency).millis();
            ++peering_gain_count;
            break;
          }
        }
      }
    }
  }

  const BoxStats stats = box_stats(diversity);
  std::printf("\npath diversity across %zu leaf pairs:\n", pairs);
  std::printf("  candidates per pair: min %.0f / median %.0f / q3 %.0f / max %.0f\n",
              stats.min, stats.median, stats.q3, stats.max);
  std::printf("  pairs where a peering shortcut is the best path: %zu (%.0f%%)\n",
              pairs_with_peering_best,
              100.0 * static_cast<double>(pairs_with_peering_best) /
                  static_cast<double>(pairs));
  if (peering_gain_count > 0) {
    std::printf("  average latency saved by those shortcuts: %.1f ms\n",
                peering_gain_ms_total / static_cast<double>(peering_gain_count));
  }

  // Show one pair's choices in full.
  const IsdAsn src = world.leaf_ases.front();
  const IsdAsn dst = world.leaf_ases.back();
  auto paths = topo.daemon(src).query_now(dst);
  std::printf("\nall %zu candidate paths %s -> %s:\n", paths.size(), src.to_string().c_str(),
              dst.to_string().c_str());
  for (std::size_t i = 0; i < paths.size() && i < 12; ++i) {
    std::printf("  %7.1f ms %5.1f g/GB %s%s\n", paths[i].meta().latency.millis(),
                paths[i].meta().co2_g_per_gb, is_peering_path(paths[i]) ? "[peering] " : "",
                paths[i].to_string().c_str());
  }
  if (paths.size() > 12) std::printf("  ... and %zu more\n", paths.size() - 12);
  return 0;
}
