// Quickstart: path-aware browsing in five minutes.
//
// Builds the paper's distributed setup (Figure 4), attaches a browser with
// the SCION extension + SKIP proxy, loads a remote page over SCION, then
// loads the same page with the extension disabled (plain BGP/IP) and
// compares page load times — the essence of Figure 5.
#include <cstdio>

#include "core/scenarios.hpp"
#include "util/log.hpp"

using namespace pan;

int main() {
  Logger::set_level(LogLevel::kWarn);

  // 1. Build the world: two ISDs, a latency-suboptimal BGP route, a remote
  //    site fronted by a SCION reverse proxy.
  auto world = browser::make_remote_world();
  http::FileServer& site = *world->site("www.far.example");

  // 2. Publish a page: one document plus four same-origin images.
  std::vector<std::string> resources;
  for (int i = 0; i < 4; ++i) {
    const std::string path = "/img" + std::to_string(i) + ".png";
    site.add_blob(path, 30'000, "image/png");
    resources.push_back(path);
  }
  site.add_text("/", browser::render_document(resources));

  // 3. Browse with the extension + proxy (SCION, opportunistic mode).
  browser::ClientSession session(*world);
  const browser::PageLoadResult over_scion = session.load("http://www.far.example/");

  std::printf("over SCION : PLT %8.2f ms  indicator=%s  resources=%zu (scion=%zu ip=%zu)\n",
              over_scion.plt.millis(), to_string(over_scion.indicator),
              over_scion.resources.size(), over_scion.over_scion, over_scion.over_ip);
  for (const auto& [fingerprint, usage] : session.proxy().selector().usage()) {
    std::printf("  path %s: %llu requests, %llu bytes via %s\n", fingerprint.c_str(),
                static_cast<unsigned long long>(usage.requests),
                static_cast<unsigned long long>(usage.bytes), usage.description.c_str());
  }

  // 4. Browse the same page with the extension disabled (BGP/IP-only).
  browser::DirectSession direct(*world);
  const browser::PageLoadResult over_ip = direct.load("http://www.far.example/");
  std::printf("over BGP/IP: PLT %8.2f ms  indicator=%s\n", over_ip.plt.millis(),
              to_string(over_ip.indicator));

  if (!over_scion.ok || !over_ip.ok) {
    std::printf("FAILED: a page load did not complete\n");
    return 1;
  }
  std::printf("SCION path awareness saved %.2f ms (%.1fx faster)\n",
              over_ip.plt.millis() - over_scion.plt.millis(),
              over_ip.plt.millis() / over_scion.plt.millis());
  return 0;
}
