// ESG routing: CO2-optimized path selection, the paper's "another direction
// is to implement further path policies, i.e., optimizing network paths for
// energy, or CO2 footprint".
//
// Loads the same media-heavy page with a latency-first and a CO2-first
// policy and reports both the page load time and the grams of CO2 the
// transfer emitted (bytes x path gCO2/GB), showing the user-controlled
// performance/sustainability trade-off.
#include <cstdio>

#include "core/scenarios.hpp"
#include "ppl/parser.hpp"
#include "util/log.hpp"

using namespace pan;

namespace {

struct Outcome {
  double plt_ms = 0;
  double grams = 0;
  std::string path;
  double path_co2_per_gb = 0;
  double path_latency_ms = 0;
};

Outcome browse(browser::World& world, const std::string& policy_text) {
  browser::ClientSession session(world);
  if (!policy_text.empty()) {
    session.extension().set_policies(
        ppl::PolicySet{{ppl::parse_policy(policy_text).value()}});
  }
  const auto result = session.load("http://www.far.example/");
  Outcome out;
  out.plt_ms = result.plt.millis();
  std::uint64_t bytes = 0;
  for (const auto& resource : result.resources) bytes += resource.bytes;
  for (const auto& [fp, usage] : session.proxy().selector().usage()) {
    (void)fp;
    out.path = usage.description;
  }
  // Find the used path's metadata for the emission estimate.
  auto& topo = world.topology();
  for (const auto& p :
       topo.daemon_for(world.client).query_now(topo.as_by_name("server-as"))) {
    if (p.to_string() == out.path) {
      out.path_co2_per_gb = p.meta().co2_g_per_gb;
      out.path_latency_ms = p.meta().latency.millis();
    }
  }
  out.grams = static_cast<double>(bytes) / 1e9 * out.path_co2_per_gb;
  return out;
}

}  // namespace

int main() {
  Logger::set_level(LogLevel::kWarn);
  auto world = browser::make_remote_world();
  auto& site = *world->site("www.far.example");
  std::vector<std::string> resources;
  for (int i = 0; i < 8; ++i) {  // a media-heavy page: 8 x 200 kB
    const std::string path = "/video-seg" + std::to_string(i) + ".bin";
    site.add_blob(path, 200'000);
    resources.push_back(path);
  }
  site.add_text("/", browser::render_document(resources));

  std::printf("candidate paths to the destination AS:\n");
  auto& topo = world->topology();
  for (const auto& p :
       topo.daemon_for(world->client).query_now(topo.as_by_name("server-as"))) {
    std::printf("  %7.1f ms  %5.1f gCO2/GB  %5.1f $/GB  %s\n", p.meta().latency.millis(),
                p.meta().co2_g_per_gb, p.meta().cost_per_gb, p.to_string().c_str());
  }

  const Outcome fast = browse(*world, "");
  const Outcome green = browse(*world, "policy \"green\" { order co2 asc, latency asc; }");

  std::printf("\n%-16s %10s %12s %14s %12s\n", "policy", "PLT ms", "latency ms", "gCO2/GB",
              "emitted mg");
  std::printf("%-16s %10.2f %12.1f %14.1f %12.3f\n", "latency-first", fast.plt_ms,
              fast.path_latency_ms, fast.path_co2_per_gb, fast.grams * 1000);
  std::printf("%-16s %10.2f %12.1f %14.1f %12.3f\n", "co2-first", green.plt_ms,
              green.path_latency_ms, green.path_co2_per_gb, green.grams * 1000);

  if (green.path_co2_per_gb >= fast.path_co2_per_gb) {
    std::printf("\nUNEXPECTED: co2-first did not pick a greener path\n");
    return 1;
  }
  std::printf("\nco2-first cut path emissions by %.0f%% at a %.0f%% PLT cost — a decision\n"
              "only the user can make, which is the paper's case for browser integration.\n",
              (1 - green.path_co2_per_gb / fast.path_co2_per_gb) * 100,
              (green.plt_ms / fast.plt_ms - 1) * 100);
  return 0;
}
