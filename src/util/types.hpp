// Fundamental time types used across the simulator.
//
// All simulated time is kept as integral nanoseconds to guarantee
// determinism (no floating point drift between platforms). Duration and
// TimePoint are thin strong types over int64_t with the arithmetic one
// expects from <chrono>, plus convenient factory functions (ns/us/ms/s)
// and formatting helpers.
#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace pan {

/// A span of simulated time, in nanoseconds. May be negative (e.g. when
/// subtracting time points), although most APIs expect non-negative values.
class Duration {
 public:
  constexpr Duration() = default;
  constexpr explicit Duration(std::int64_t nanos) : nanos_(nanos) {}

  [[nodiscard]] constexpr std::int64_t nanos() const { return nanos_; }
  [[nodiscard]] constexpr double micros() const { return static_cast<double>(nanos_) / 1e3; }
  [[nodiscard]] constexpr double millis() const { return static_cast<double>(nanos_) / 1e6; }
  [[nodiscard]] constexpr double seconds() const { return static_cast<double>(nanos_) / 1e9; }

  constexpr auto operator<=>(const Duration&) const = default;

  constexpr Duration operator+(Duration other) const { return Duration{nanos_ + other.nanos_}; }
  constexpr Duration operator-(Duration other) const { return Duration{nanos_ - other.nanos_}; }
  constexpr Duration operator-() const { return Duration{-nanos_}; }
  constexpr Duration& operator+=(Duration other) { nanos_ += other.nanos_; return *this; }
  constexpr Duration& operator-=(Duration other) { nanos_ -= other.nanos_; return *this; }
  constexpr Duration operator*(std::int64_t k) const { return Duration{nanos_ * k}; }
  constexpr Duration operator/(std::int64_t k) const { return Duration{nanos_ / k}; }

  /// Scale by a double (used for jitter and backoff factors). Rounds toward zero.
  [[nodiscard]] constexpr Duration scaled(double f) const {
    return Duration{static_cast<std::int64_t>(static_cast<double>(nanos_) * f)};
  }

  [[nodiscard]] static constexpr Duration zero() { return Duration{0}; }
  [[nodiscard]] static constexpr Duration max() {
    return Duration{std::numeric_limits<std::int64_t>::max()};
  }

 private:
  std::int64_t nanos_ = 0;
};

[[nodiscard]] constexpr Duration nanoseconds(std::int64_t v) { return Duration{v}; }
[[nodiscard]] constexpr Duration microseconds(std::int64_t v) { return Duration{v * 1'000}; }
[[nodiscard]] constexpr Duration milliseconds(std::int64_t v) { return Duration{v * 1'000'000}; }
[[nodiscard]] constexpr Duration seconds(std::int64_t v) { return Duration{v * 1'000'000'000}; }

/// An absolute instant on the simulated clock (nanoseconds since t=0).
class TimePoint {
 public:
  constexpr TimePoint() = default;
  constexpr explicit TimePoint(std::int64_t nanos) : nanos_(nanos) {}

  [[nodiscard]] constexpr std::int64_t nanos() const { return nanos_; }
  [[nodiscard]] constexpr double millis() const { return static_cast<double>(nanos_) / 1e6; }
  [[nodiscard]] constexpr double seconds() const { return static_cast<double>(nanos_) / 1e9; }

  constexpr auto operator<=>(const TimePoint&) const = default;

  constexpr TimePoint operator+(Duration d) const { return TimePoint{nanos_ + d.nanos()}; }
  constexpr TimePoint operator-(Duration d) const { return TimePoint{nanos_ - d.nanos()}; }
  constexpr Duration operator-(TimePoint other) const { return Duration{nanos_ - other.nanos_}; }

  [[nodiscard]] static constexpr TimePoint origin() { return TimePoint{0}; }
  [[nodiscard]] static constexpr TimePoint max() {
    return TimePoint{std::numeric_limits<std::int64_t>::max()};
  }

 private:
  std::int64_t nanos_ = 0;
};

/// Renders a duration with an adaptive unit, e.g. "1.25ms" or "370ns".
[[nodiscard]] std::string to_string(Duration d);
/// Renders a time point in milliseconds, e.g. "t=12.500ms".
[[nodiscard]] std::string to_string(TimePoint t);

}  // namespace pan
