// Sample statistics used by the experiment harness, in particular the
// five-number summaries the paper's box plots (Figures 3, 5, 6) report.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace pan {

/// Five-number summary plus mean, matching a standard box plot.
struct BoxStats {
  std::size_t count = 0;
  double min = 0;
  double q1 = 0;
  double median = 0;
  double q3 = 0;
  double max = 0;
  double mean = 0;
  double stddev = 0;

  /// Interquartile range.
  [[nodiscard]] double iqr() const { return q3 - q1; }
};

/// Computes the summary; quartiles use linear interpolation (type-7, the
/// numpy/R default). An empty sample yields an all-zero summary.
[[nodiscard]] BoxStats box_stats(std::vector<double> samples);

/// Percentile in [0,100] with linear interpolation over a sorted copy.
[[nodiscard]] double percentile(std::vector<double> samples, double pct);

/// Accumulates a stream of values without storing them (Welford).
class RunningStats {
 public:
  void add(double x);
  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = 0;
  double max_ = 0;
  double sum_ = 0;
};

/// Renders a horizontal ASCII box plot row (min |--[ Q1 | median | Q3 ]--| max)
/// scaled to [axis_min, axis_max] over `width` characters. Used by the figure
/// benches to reproduce the paper's plots in terminal form.
[[nodiscard]] std::string ascii_box_row(const BoxStats& stats, double axis_min, double axis_max,
                                        std::size_t width);

}  // namespace pan
