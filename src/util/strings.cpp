#include "util/strings.hpp"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace pan::strings {

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string_view> split_trimmed(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  for (std::string_view field : split(s, sep)) {
    const std::string_view t = trim(field);
    if (!t.empty()) out.push_back(t);
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin])) != 0) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1])) != 0) --end;
  return s.substr(begin, end - begin);
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

Result<std::uint64_t> parse_u64(std::string_view s) {
  if (s.empty()) return Err("empty integer");
  std::uint64_t value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return Err("invalid digit in integer: '" + std::string(s) + "'");
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return Err("integer overflow: '" + std::string(s) + "'");
    value = value * 10 + digit;
  }
  return value;
}

Result<std::uint64_t> parse_hex_u64(std::string_view s) {
  if (s.empty()) return Err("empty hex integer");
  if (s.size() > 16) return Err("hex integer overflow: '" + std::string(s) + "'");
  std::uint64_t value = 0;
  for (char c : s) {
    std::uint64_t digit = 0;
    if (c >= '0' && c <= '9') {
      digit = static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<std::uint64_t>(c - 'a') + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = static_cast<std::uint64_t>(c - 'A') + 10;
    } else {
      return Err("invalid hex digit: '" + std::string(s) + "'");
    }
    value = (value << 4) | digit;
  }
  return value;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += format("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_quote(std::string_view s) { return '"' + json_escape(s) + '"'; }

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (needed < 0) {
    va_end(args_copy);
    return {};
  }
  std::string out(static_cast<std::size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

}  // namespace pan::strings
