// Deterministic random number generation.
//
// Every stochastic element of the simulation (link jitter, loss, trial
// variation) draws from an Rng seeded explicitly, so experiment runs are
// exactly reproducible. The generator is xoshiro256++ seeded via SplitMix64,
// which is fast, has a 256-bit state and passes BigCrush.
#pragma once

#include <cstdint>
#include <array>

#include "util/types.hpp"

namespace pan {

class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform over the full 64-bit range.
  std::uint64_t next_u64();

  /// Uniform in [0, bound). bound must be > 0. Uses rejection sampling to
  /// avoid modulo bias.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// True with probability p (clamped to [0,1]).
  bool chance(double p);

  /// Exponentially distributed with the given mean (> 0).
  double next_exponential(double mean);

  /// Normally distributed (Box–Muller; consumes two uniforms per pair).
  double next_normal(double mean, double stddev);

  /// Pareto distributed with scale xm and shape alpha (heavy-tailed object
  /// sizes, flow interarrivals).
  double next_pareto(double xm, double alpha);

  /// A duration jittered uniformly in [base*(1-frac), base*(1+frac)].
  Duration jittered(Duration base, double frac);

  /// Derive an independent child generator (stable for a given label).
  Rng fork(std::uint64_t label);

 private:
  std::array<std::uint64_t, 4> state_{};
  double spare_normal_ = 0.0;
  bool has_spare_normal_ = false;
};

}  // namespace pan
