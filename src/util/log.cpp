#include "util/log.hpp"

#include <cstdio>

namespace pan {
namespace {

LogLevel g_level = LogLevel::kWarn;
Logger::ClockFn g_clock_fn = nullptr;
const void* g_clock_ctx = nullptr;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}

}  // namespace

void Logger::set_level(LogLevel level) { g_level = level; }
LogLevel Logger::level() { return g_level; }

void Logger::set_clock(ClockFn fn, const void* ctx) {
  g_clock_fn = fn;
  g_clock_ctx = ctx;
}

bool Logger::enabled(LogLevel level) {
  return static_cast<int>(level) >= static_cast<int>(g_level);
}

void Logger::write(LogLevel level, std::string_view component, std::string_view message) {
  if (!enabled(level)) return;
  if (g_clock_fn != nullptr) {
    const TimePoint now = g_clock_fn(g_clock_ctx);
    std::fprintf(stderr, "[%11.3fms] %s [%.*s] %.*s\n", now.millis(), level_name(level),
                 static_cast<int>(component.size()), component.data(),
                 static_cast<int>(message.size()), message.data());
  } else {
    std::fprintf(stderr, "%s [%.*s] %.*s\n", level_name(level),
                 static_cast<int>(component.size()), component.data(),
                 static_cast<int>(message.size()), message.data());
  }
}

}  // namespace pan
