// Lightweight leveled logging with component tags.
//
// The simulator is deterministic and single-threaded; the logger favours
// simplicity over async machinery. Logging defaults to Warn so tests and
// benchmarks stay quiet; examples raise the level to narrate behaviour.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

#include "util/types.hpp"

namespace pan {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

class Logger {
 public:
  /// Global minimum level; records below it are dropped cheaply.
  static void set_level(LogLevel level);
  static LogLevel level();

  /// The simulated-clock hook: when set, records are stamped with sim time.
  using ClockFn = TimePoint (*)(const void* ctx);
  static void set_clock(ClockFn fn, const void* ctx);

  static bool enabled(LogLevel level);
  static void write(LogLevel level, std::string_view component, std::string_view message);
};

namespace log_detail {

class Record {
 public:
  Record(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  ~Record() { Logger::write(level_, component_, stream_.str()); }

  Record(const Record&) = delete;
  Record& operator=(const Record&) = delete;

  template <typename T>
  Record& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string_view component_;
  std::ostringstream stream_;
};

}  // namespace log_detail

}  // namespace pan

#define PAN_LOG(level, component)                      \
  if (!::pan::Logger::enabled(level)) {                \
  } else                                               \
    ::pan::log_detail::Record(level, component)

#define PAN_TRACE(component) PAN_LOG(::pan::LogLevel::kTrace, component)
#define PAN_DEBUG(component) PAN_LOG(::pan::LogLevel::kDebug, component)
#define PAN_INFO(component) PAN_LOG(::pan::LogLevel::kInfo, component)
#define PAN_WARN(component) PAN_LOG(::pan::LogLevel::kWarn, component)
#define PAN_ERROR(component) PAN_LOG(::pan::LogLevel::kError, component)
