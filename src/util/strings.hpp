// Small string utilities shared across modules (parsing HTTP, PPL, URLs).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.hpp"

namespace pan::strings {

/// Splits on a single character; keeps empty fields.
[[nodiscard]] std::vector<std::string_view> split(std::string_view s, char sep);

/// Splits on a character, trimming whitespace from each field and dropping
/// fields that end up empty (convenient for comma lists in headers).
[[nodiscard]] std::vector<std::string_view> split_trimmed(std::string_view s, char sep);

[[nodiscard]] std::string_view trim(std::string_view s);
[[nodiscard]] std::string to_lower(std::string_view s);
[[nodiscard]] bool iequals(std::string_view a, std::string_view b);
[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix);
[[nodiscard]] bool ends_with(std::string_view s, std::string_view suffix);

/// Strict unsigned integer parse of the full string (no sign, no trailing
/// garbage, no empty input).
[[nodiscard]] Result<std::uint64_t> parse_u64(std::string_view s);
/// As parse_u64 but with a radix of 16 (no 0x prefix expected).
[[nodiscard]] Result<std::uint64_t> parse_hex_u64(std::string_view s);

/// printf-style formatting into a std::string.
[[nodiscard]] std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// JSON string-escapes `s` (quotes, backslashes, control characters) without
/// surrounding quotes. Every module that emits JSON by hand must route string
/// values through this — origin keys, fault verb args and path fingerprints
/// are not guaranteed quote-free.
[[nodiscard]] std::string json_escape(std::string_view s);
/// json_escape with surrounding double quotes: `"…"`.
[[nodiscard]] std::string json_quote(std::string_view s);

}  // namespace pan::strings
