#include "util/types.hpp"

#include "util/strings.hpp"

namespace pan {

std::string to_string(Duration d) {
  const std::int64_t n = d.nanos();
  const std::int64_t mag = n < 0 ? -n : n;
  if (mag < 1'000) return strings::format("%ldns", static_cast<long>(n));
  if (mag < 1'000'000) return strings::format("%.2fus", d.micros());
  if (mag < 1'000'000'000) return strings::format("%.3fms", d.millis());
  return strings::format("%.3fs", d.seconds());
}

std::string to_string(TimePoint t) {
  return strings::format("t=%.3fms", t.millis());
}

}  // namespace pan
