#include "util/rng.hpp"

#include <cmath>

namespace pan {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) {
    word = splitmix64(s);
  }
}

std::uint64_t Rng::next_u64() {
  // xoshiro256++
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  if (bound <= 1) return 0;
  // Lemire-style rejection: draw until the draw falls in the largest
  // multiple of `bound` below 2^64.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) {
  if (lo >= hi) return lo;
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() {
  // 53 random mantissa bits.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

double Rng::next_exponential(double mean) {
  double u = next_double();
  // Guard against log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::next_normal(double mean, double stddev) {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return mean + stddev * spare_normal_;
  }
  double u1 = next_double();
  double u2 = next_double();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double mag = std::sqrt(-2.0 * std::log(u1));
  const double z0 = mag * std::cos(2.0 * M_PI * u2);
  const double z1 = mag * std::sin(2.0 * M_PI * u2);
  spare_normal_ = z1;
  has_spare_normal_ = true;
  return mean + stddev * z0;
}

double Rng::next_pareto(double xm, double alpha) {
  double u = next_double();
  if (u <= 0.0) u = 0x1.0p-53;
  return xm / std::pow(u, 1.0 / alpha);
}

Duration Rng::jittered(Duration base, double frac) {
  const double f = 1.0 + frac * (2.0 * next_double() - 1.0);
  return base.scaled(f);
}

Rng Rng::fork(std::uint64_t label) {
  // Mix the label into fresh state derived from this generator, so forks
  // with distinct labels are decorrelated even if requested in sequence.
  return Rng(next_u64() ^ (label * 0x9e3779b97f4a7c15ULL));
}

}  // namespace pan
