#include "util/bytes.hpp"

namespace pan {

void ByteWriter::lp_str(std::string_view s) {
  u16(static_cast<std::uint16_t>(s.size()));
  str(s);
}

void ByteWriter::lp_bytes(std::span<const std::uint8_t> data) {
  u16(static_cast<std::uint16_t>(data.size()));
  raw(data);
}

void ByteWriter::patch_u16(std::size_t offset, std::uint16_t v) {
  if (offset + 2 > buf_.size()) return;
  buf_[offset] = static_cast<std::uint8_t>(v >> 8);
  buf_[offset + 1] = static_cast<std::uint8_t>(v);
}

bool ByteReader::need(std::size_t n) {
  if (failed_ || data_.size() - pos_ < n) {
    failed_ = true;
    return false;
  }
  return true;
}

std::uint8_t ByteReader::u8() {
  if (!need(1)) return 0;
  return data_[pos_++];
}

std::uint16_t ByteReader::u16() {
  if (!need(2)) return 0;
  const std::uint16_t v = static_cast<std::uint16_t>(
      (static_cast<std::uint16_t>(data_[pos_]) << 8) | data_[pos_ + 1]);
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::u32() {
  if (!need(4)) return 0;
  const std::uint32_t hi = u16();
  const std::uint32_t lo = u16();
  return (hi << 16) | lo;
}

std::uint64_t ByteReader::u64() {
  if (!need(8)) return 0;
  const std::uint64_t hi = u32();
  const std::uint64_t lo = u32();
  return (hi << 32) | lo;
}

Bytes ByteReader::raw(std::size_t n) {
  if (!need(n)) return {};
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

std::string ByteReader::str(std::size_t n) {
  if (!need(n)) return {};
  std::string out(reinterpret_cast<const char*>(data_.data() + pos_), n);
  pos_ += n;
  return out;
}

std::string ByteReader::lp_str() {
  const std::uint16_t n = u16();
  return str(n);
}

Bytes ByteReader::lp_bytes() {
  const std::uint16_t n = u16();
  return raw(n);
}

void ByteReader::skip(std::size_t n) {
  if (!need(n)) return;
  pos_ += n;
}

std::string to_hex(std::span<const std::uint8_t> data) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xf]);
  }
  return out;
}

Bytes from_string(std::string_view s) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(s.data());
  return Bytes(p, p + s.size());
}

std::string to_string_view_copy(const Bytes& b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

std::string to_string_view_copy(std::span<const std::uint8_t> data) {
  return std::string(reinterpret_cast<const char*>(data.data()), data.size());
}

}  // namespace pan
