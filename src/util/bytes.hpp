// Byte buffer reader/writer with network (big-endian) byte order.
//
// Wire formats in this code base (SCION headers, transport frames) are
// serialized through ByteWriter and parsed through ByteReader. The reader is
// bounds-checked and fails softly via a sticky error flag, so parsers can
// chain reads and check once at the end — the pattern used by real packet
// parsers to avoid a bounds branch forest.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace pan {

using Bytes = std::vector<std::uint8_t>;

class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v >> 16));
    u16(static_cast<std::uint16_t>(v));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v >> 32));
    u32(static_cast<std::uint32_t>(v));
  }
  void raw(std::span<const std::uint8_t> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }
  void raw(const Bytes& data) { raw(std::span<const std::uint8_t>(data)); }
  void str(std::string_view s) {
    const auto* p = reinterpret_cast<const std::uint8_t*>(s.data());
    buf_.insert(buf_.end(), p, p + s.size());
  }
  /// Length-prefixed (u16) string, for variable fields in frames.
  void lp_str(std::string_view s);
  /// Length-prefixed (u16) byte blob.
  void lp_bytes(std::span<const std::uint8_t> data);

  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  [[nodiscard]] const Bytes& bytes() const& { return buf_; }
  [[nodiscard]] Bytes take() && { return std::move(buf_); }

  /// Overwrite a previously written u16 at `offset` (e.g. back-patching a
  /// length field).
  void patch_u16(std::size_t offset, std::uint16_t v);

 private:
  Bytes buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  /// Reads exactly n bytes; returns empty and sets the error flag on underrun.
  Bytes raw(std::size_t n);
  std::string str(std::size_t n);
  std::string lp_str();
  Bytes lp_bytes();
  /// Skips n bytes.
  void skip(std::size_t n);

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] std::size_t position() const { return pos_; }
  [[nodiscard]] bool failed() const { return failed_; }
  /// True iff no read ever ran past the end AND the buffer was fully consumed.
  [[nodiscard]] bool complete() const { return !failed_ && pos_ == data_.size(); }

 private:
  bool need(std::size_t n);

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

/// Direct big-endian loads for lazy wire-format views that decode individual
/// fields at known offsets without a ByteReader pass. The caller guarantees
/// bounds (views validate the whole structure once at parse time).
[[nodiscard]] inline std::uint16_t read_be16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>((std::uint16_t{p[0]} << 8) | p[1]);
}
[[nodiscard]] inline std::uint32_t read_be32(const std::uint8_t* p) {
  return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) | (std::uint32_t{p[2]} << 8) |
         p[3];
}
[[nodiscard]] inline std::uint64_t read_be64(const std::uint8_t* p) {
  return (std::uint64_t{read_be32(p)} << 32) | read_be32(p + 4);
}

/// Hex encoding for digests and debugging output.
[[nodiscard]] std::string to_hex(std::span<const std::uint8_t> data);
[[nodiscard]] Bytes from_string(std::string_view s);
[[nodiscard]] std::string to_string_view_copy(const Bytes& b);
[[nodiscard]] std::string to_string_view_copy(std::span<const std::uint8_t> data);

}  // namespace pan
