// Shared, refcounted byte storage for the zero-copy packet path.
//
// A Buffer owns a fixed-capacity byte block behind a refcount. Views
// (net::PacketView) reference a [offset, offset+length) window of a Buffer,
// so a packet serialized once at the transport edge can move through socket,
// SCION stack, border routers, and link queues without its bytes ever being
// copied — sharing is a refcount bump, moving is free.
//
// Mutation discipline (skbuff-style): the forwarding path owns its packet
// uniquely, so in-place writes (cursor patching, headroom prepends) act
// directly on the storage. If the storage happens to be shared — e.g. a
// tracer or test kept a view alive — the writer clones first (copy-on-write),
// so observers can never see bytes change under them.
#pragma once

#include <cstdint>
#include <memory>

#include "util/bytes.hpp"

namespace pan::util {

class Buffer {
 public:
  Buffer() = default;
  /// Allocates `capacity` zero-initialized bytes.
  explicit Buffer(std::size_t capacity) : storage_(std::make_shared<Bytes>(capacity)) {}

  /// Adopts an existing byte vector without copying.
  [[nodiscard]] static Buffer adopt(Bytes&& bytes) {
    Buffer b;
    b.storage_ = std::make_shared<Bytes>(std::move(bytes));
    return b;
  }

  [[nodiscard]] bool valid() const { return storage_ != nullptr; }
  [[nodiscard]] std::size_t capacity() const { return storage_ ? storage_->size() : 0; }
  [[nodiscard]] const std::uint8_t* data() const {
    return storage_ ? storage_->data() : nullptr;
  }

  /// True when this handle is the sole owner (in-place writes are safe).
  [[nodiscard]] bool unique() const { return storage_ && storage_.use_count() == 1; }

  /// Writable storage pointer; clones the block first if it is shared, so
  /// other holders keep the bytes they saw (copy-on-write).
  [[nodiscard]] std::uint8_t* mutable_data() {
    if (!storage_) return nullptr;
    if (storage_.use_count() > 1) storage_ = std::make_shared<Bytes>(*storage_);
    return storage_->data();
  }

 private:
  std::shared_ptr<Bytes> storage_;
};

/// Bounds-checked big-endian writer over a fixed span — the headroom-prepend
/// companion of ByteWriter. Same method surface, so wire-format serializers
/// can be written once as templates and target either a growing Bytes
/// (ByteWriter) or a pre-sized buffer region (SpanWriter) with identical
/// output. Overrun sets a sticky failure flag instead of writing.
class SpanWriter {
 public:
  explicit SpanWriter(std::span<std::uint8_t> out) : out_(out) {}

  void u8(std::uint8_t v) {
    if (!need(1)) return;
    out_[pos_++] = v;
  }
  void u16(std::uint16_t v) {
    u8(static_cast<std::uint8_t>(v >> 8));
    u8(static_cast<std::uint8_t>(v));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v >> 16));
    u16(static_cast<std::uint16_t>(v));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v >> 32));
    u32(static_cast<std::uint32_t>(v));
  }
  void raw(std::span<const std::uint8_t> data) {
    if (data.empty() || !need(data.size())) return;
    std::memcpy(out_.data() + pos_, data.data(), data.size());
    pos_ += data.size();
  }
  void raw(const Bytes& data) { raw(std::span<const std::uint8_t>(data)); }
  void str(std::string_view s) {
    raw(std::span<const std::uint8_t>(reinterpret_cast<const std::uint8_t*>(s.data()),
                                      s.size()));
  }
  void lp_str(std::string_view s) {
    u16(static_cast<std::uint16_t>(s.size()));
    str(s);
  }
  void lp_bytes(std::span<const std::uint8_t> data) {
    u16(static_cast<std::uint16_t>(data.size()));
    raw(data);
  }

  [[nodiscard]] std::size_t size() const { return pos_; }
  [[nodiscard]] std::size_t remaining() const { return out_.size() - pos_; }
  [[nodiscard]] bool failed() const { return failed_; }

 private:
  [[nodiscard]] bool need(std::size_t n) {
    if (failed_ || n > out_.size() - pos_) {
      failed_ = true;
      return false;
    }
    return true;
  }

  std::span<std::uint8_t> out_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace pan::util
