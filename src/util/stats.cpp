#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace pan {
namespace {

double interp_sorted(const std::vector<double>& sorted, double pct) {
  if (sorted.empty()) return 0;
  if (sorted.size() == 1) return sorted[0];
  // Out-of-range pct would index past the ends (pct < 0 underflows the rank
  // cast; pct > 100 walks off the back): clamp to the observed extremes.
  pct = std::clamp(pct, 0.0, 100.0);
  const double rank = pct / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

BoxStats box_stats(std::vector<double> samples) {
  BoxStats s;
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  s.count = samples.size();
  s.min = samples.front();
  s.max = samples.back();
  s.q1 = interp_sorted(samples, 25);
  s.median = interp_sorted(samples, 50);
  s.q3 = interp_sorted(samples, 75);
  double sum = 0;
  for (double x : samples) sum += x;
  s.mean = sum / static_cast<double>(samples.size());
  double sq = 0;
  for (double x : samples) sq += (x - s.mean) * (x - s.mean);
  s.stddev = samples.size() > 1
                 ? std::sqrt(sq / static_cast<double>(samples.size() - 1))
                 : 0.0;
  return s;
}

double percentile(std::vector<double> samples, double pct) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  return interp_sorted(samples, pct);
}

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

std::string ascii_box_row(const BoxStats& stats, double axis_min, double axis_max,
                          std::size_t width) {
  if (width < 10 || axis_max <= axis_min || stats.count == 0) {
    return std::string(width, ' ');
  }
  std::string row(width, ' ');
  const auto col = [&](double v) -> std::size_t {
    double frac = (v - axis_min) / (axis_max - axis_min);
    frac = std::clamp(frac, 0.0, 1.0);
    return static_cast<std::size_t>(frac * static_cast<double>(width - 1));
  };
  const std::size_t cmin = col(stats.min);
  const std::size_t cq1 = col(stats.q1);
  const std::size_t cmed = col(stats.median);
  const std::size_t cq3 = col(stats.q3);
  const std::size_t cmax = col(stats.max);
  for (std::size_t i = cmin; i <= cmax && i < width; ++i) row[i] = '-';
  for (std::size_t i = cq1; i <= cq3 && i < width; ++i) row[i] = '=';
  row[cmin] = '|';
  row[cmax] = '|';
  if (cq1 < width) row[cq1] = '[';
  if (cq3 < width) row[cq3] = ']';
  if (cmed < width) row[cmed] = '#';
  return row;
}

}  // namespace pan
