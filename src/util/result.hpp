// A minimal expected/Result type (std::expected is C++23; we target C++20).
//
// Result<T> either holds a value of type T or an error string. It is used
// for fallible parsing and lookup operations throughout the code base where
// exceptions would obscure control flow.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace pan {

/// Tag type carrying an error message, so `Err("...")` can construct any
/// Result<T> without spelling out T.
struct Err {
  std::string message;
  explicit Err(std::string msg) : message(std::move(msg)) {}
};

template <typename T>
class Result {
 public:
  // Intentionally implicit: allows `return value;` / `return Err{...};`.
  Result(T value) : value_(std::move(value)) {}            // NOLINT(google-explicit-constructor)
  Result(Err err) : error_(std::move(err.message)) {}      // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] const T& value() const& {
    assert(ok());
    return *value_;
  }
  [[nodiscard]] T& value() & {
    assert(ok());
    return *value_;
  }
  [[nodiscard]] T&& take() && {
    assert(ok());
    return std::move(*value_);
  }

  [[nodiscard]] T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

  [[nodiscard]] const std::string& error() const {
    assert(!ok());
    return error_;
  }

 private:
  std::optional<T> value_;
  std::string error_;
};

/// Result specialization-like helper for operations with no payload.
class Status {
 public:
  Status() = default;                                      // success
  Status(Err err) : error_(std::move(err.message)) {}      // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const { return !error_.has_value(); }
  explicit operator bool() const { return ok(); }
  [[nodiscard]] const std::string& error() const {
    assert(!ok());
    return *error_;
  }

 private:
  std::optional<std::string> error_;
};

}  // namespace pan
