// The Table 1 model: at which layer (OS / application / user) can a PAN
// property be meaningfully acted on?
//
// We make the paper's argument computable. Each layer is a path selector
// with a different information set:
//   - the OS sees transport metrics (latency, loss, MTU, bandwidth, jitter,
//     QoS) but neither application context nor user intent;
//   - the application additionally sees per-request context (realtime flow,
//     required MTU, privacy-sensitive destination);
//   - the user holds intent (geofence regions, CO2/ethics/allied/price
//     preferences) and sees a coarse path UI (AS/country list, latency in
//     10 ms buckets) but none of the metrics lower layers abstract away
//     (loss, MTU, jitter).
// For each property we run many randomized scenarios, let each layer pick a
// path (or make the relevant decision) with only its own information, and
// score the outcome against an oracle. Averaged achievement maps to the
// paper's ●/◐/○ marks.
#pragma once

#include <string>
#include <vector>

#include "scion/path.hpp"
#include "util/rng.hpp"

namespace pan::browser {

enum class Layer : std::uint8_t { kOs, kApp, kUser };

enum class PanProperty : std::uint8_t {
  kLowLatency,
  kLossRate,
  kPathMtu,
  kBandwidth,
  kQos,
  kJitterOptimization,
  kGeofencing,
  kOnionRouting,
  kCarbonFootprint,
  kEthicalRouting,
  kAlliedRouting,
  kPriceOptimization,
};

[[nodiscard]] const char* to_string(Layer l);
[[nodiscard]] const char* to_string(PanProperty p);
[[nodiscard]] std::vector<PanProperty> all_properties();

/// Hidden ground truth of one scenario: what the user/application actually
/// wants. Layers only see the slices their information set includes.
struct TaskContext {
  // User intent (visible to the user layer only).
  bool wants_geofence = false;
  std::vector<scion::Isd> avoid_isds;
  bool wants_low_co2 = false;
  bool wants_ethical = false;
  bool wants_allied = false;
  bool wants_cheap = false;
  bool privacy_sensitive = false;  // destination deserves anonymity

  // Application context (visible to app + user layers).
  bool realtime_flow = false;      // e.g. conferencing voice channel
  std::size_t required_mtu = 0;    // e.g. IoT datagram size
  bool app_knows_privacy = false;  // app can classify the site (e.g. medical)
};

/// Outcome of one scenario for one layer.
struct SelectionOutcome {
  std::size_t chosen_index = 0;
  /// 0..1 achievement of the property relative to the oracle.
  double achievement = 0;
};

/// Runs the layer's selector on candidate paths for the given property.
[[nodiscard]] SelectionOutcome select_and_score(Layer layer, PanProperty property,
                                                const std::vector<scion::Path>& candidates,
                                                const TaskContext& context, Rng& rng);

/// Aggregate achievement over `trials` randomized scenarios on `candidates`
/// drawn fresh per trial via `sampler`.
struct CellScore {
  double mean_achievement = 0;
  [[nodiscard]] char glyph() const;  // '@' full, 'o' partial, '.' none
};

struct Table1Row {
  PanProperty property;
  CellScore os;
  CellScore app;
  CellScore user;
};

/// Generates a randomized candidate path set with diverse metadata (the
/// sampler used by the Table 1 bench and tests).
[[nodiscard]] std::vector<scion::Path> sample_candidate_paths(Rng& rng, std::size_t count);

/// Generates a randomized task context for a property.
[[nodiscard]] TaskContext sample_context(PanProperty property, Rng& rng);

/// Full table: every property x every layer, `trials` scenarios each.
[[nodiscard]] std::vector<Table1Row> compute_table1(std::size_t trials, std::uint64_t seed);

}  // namespace pan::browser
