// The browser extension (Section 5.1).
//
// Two roles, straight from the paper:
//   1. "it presents the options and settings in the browser's user interface
//      and configures the proxy component according to the user's
//      preferences" — set_geofence / set_policies / set_mode forward to the
//      SKIP proxy's control API;
//   2. "it takes care of implementing the strict mode; as the proxy is a
//      regular HTTP proxy it does not have the necessary context" — the
//      extension decides per request whether strict mode applies (global
//      toggle or a Strict-SCION pin learned from response headers) and tags
//      the proxied request accordingly.
//
// It also maintains the per-page UI indicator state ("an icon in the
// browser's UI indicates whether all, some, or no parts of the website were
// fetched over SCION").
#pragma once

#include <optional>
#include <string>
#include <unordered_map>

#include "proxy/skip_proxy.hpp"

namespace pan::browser {

enum class OperationMode : std::uint8_t {
  kOpportunistic,  // SCION whenever available; IP fallback (default)
  kStrict,         // all resources must load over policy-compliant SCION
};

enum class IndicatorState : std::uint8_t { kAllScion, kSomeScion, kNoScion };

[[nodiscard]] const char* to_string(OperationMode m);
[[nodiscard]] const char* to_string(IndicatorState s);

class BrowserExtension {
 public:
  BrowserExtension(sim::Simulator& sim, proxy::SkipProxy& proxy);

  [[nodiscard]] proxy::SkipProxy& proxy() { return proxy_; }

  /// Forwards a browser request to the proxy, deciding strict mode from the
  /// global toggle, per-site settings, and learned pins (`page_strict` ORs in
  /// the page-level strict decision made at navigation time). The trace is
  /// the request-scoped span context started by the browser; pass null to
  /// have the proxy open one. `deadline`, when set, caps the proxy's whole
  /// retry/fallback budget for this request (otherwise the proxy default
  /// request timeout applies). A non-empty `identity` tags the proxied
  /// request with the X-Skip-Identity header so the proxy isolates its
  /// connections, paths, and learned state from other identities.
  void fetch(http::HttpRequest request, const std::string& host, bool page_strict,
             obs::TracePtr trace, proxy::SkipProxy::FetchFn on_result,
             std::optional<TimePoint> deadline = std::nullopt,
             const std::string& identity = {});
  /// Opens a request trace in the proxy's id space.
  [[nodiscard]] obs::TracePtr make_trace() { return proxy_.make_trace(); }

  // --- user-facing settings (the extension UI) ---
  void set_mode(OperationMode mode) { mode_ = mode; }
  [[nodiscard]] OperationMode mode() const { return mode_; }
  /// Strict mode for one specific site only.
  void set_site_strict(const std::string& host, bool strict);
  void set_geofence(std::optional<ppl::Geofence> geofence);
  void set_policies(ppl::PolicySet policies);

  // --- request pipeline hooks (called by the Browser) ---
  /// Whether this request must be performed in strict mode.
  [[nodiscard]] bool strict_for(const std::string& host) const;
  /// Observes a response: learns Strict-SCION pins (HSTS-like semantics).
  void observe_response(const std::string& host, const http::HttpResponse& response);
  [[nodiscard]] bool has_pin(const std::string& host) const;
  [[nodiscard]] std::size_t pin_count() const { return pins_.size(); }

  // --- indicator ---
  [[nodiscard]] static IndicatorState indicator(std::size_t scion_count,
                                                std::size_t total_count);

 private:
  sim::Simulator& sim_;
  proxy::SkipProxy& proxy_;
  OperationMode mode_ = OperationMode::kOpportunistic;
  std::unordered_map<std::string, bool> site_strict_;
  /// Host -> pin expiry (from Strict-SCION max-age).
  std::unordered_map<std::string, TimePoint> pins_;
};

}  // namespace pan::browser
