#include "core/page.hpp"

#include "util/strings.hpp"

namespace pan::browser {

std::string render_document(const std::vector<std::string>& resource_urls) {
  std::string out(kPageDoctype);
  out += "\n";
  for (const std::string& url : resource_urls) {
    out += "res " + url + "\n";
  }
  return out;
}

bool is_page_document(std::string_view body) {
  return strings::starts_with(strings::trim(body), kPageDoctype);
}

std::vector<std::string> parse_document(std::string_view body) {
  std::vector<std::string> out;
  if (!is_page_document(body)) return out;
  for (std::string_view line : strings::split(body, '\n')) {
    line = strings::trim(line);
    if (strings::starts_with(line, "res ")) {
      const std::string_view url = strings::trim(line.substr(4));
      if (!url.empty()) out.emplace_back(url);
    }
  }
  return out;
}

Result<http::Url> resolve_resource_url(const http::Url& document_url,
                                       std::string_view resource) {
  if (strings::starts_with(resource, "http://")) {
    return http::parse_url(resource);
  }
  if (!strings::starts_with(resource, "/")) {
    return Err("relative resource must start with '/': '" + std::string(resource) + "'");
  }
  http::Url url = document_url;
  url.path = std::string(resource);
  return url;
}

}  // namespace pan::browser
