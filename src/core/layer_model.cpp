#include "core/layer_model.hpp"

#include <algorithm>
#include <cmath>

namespace pan::browser {

const char* to_string(Layer l) {
  switch (l) {
    case Layer::kOs: return "OS";
    case Layer::kApp: return "App";
    case Layer::kUser: return "User";
  }
  return "?";
}

const char* to_string(PanProperty p) {
  switch (p) {
    case PanProperty::kLowLatency: return "Low latency";
    case PanProperty::kLossRate: return "Loss rate";
    case PanProperty::kPathMtu: return "Path MTU information";
    case PanProperty::kBandwidth: return "Bandwidth";
    case PanProperty::kQos: return "QoS";
    case PanProperty::kJitterOptimization: return "Jitter optimization";
    case PanProperty::kGeofencing: return "Geofencing (Alibi routing)";
    case PanProperty::kOnionRouting: return "Onion routing";
    case PanProperty::kCarbonFootprint: return "Carbon footprint reduction";
    case PanProperty::kEthicalRouting: return "Ethical routing";
    case PanProperty::kAlliedRouting: return "Allied AS routing";
    case PanProperty::kPriceOptimization: return "Price optimization";
  }
  return "?";
}

std::vector<PanProperty> all_properties() {
  return {PanProperty::kLowLatency,       PanProperty::kLossRate,
          PanProperty::kPathMtu,          PanProperty::kBandwidth,
          PanProperty::kQos,              PanProperty::kJitterOptimization,
          PanProperty::kGeofencing,       PanProperty::kOnionRouting,
          PanProperty::kCarbonFootprint,  PanProperty::kEthicalRouting,
          PanProperty::kAlliedRouting,    PanProperty::kPriceOptimization};
}

char CellScore::glyph() const {
  if (mean_achievement >= 0.85) return '@';
  if (mean_achievement >= 0.45) return 'o';
  return '.';
}

namespace {

// --------------------------------------------------------------- helpers --

double latency_of(const scion::Path& p) { return static_cast<double>(p.meta().latency.nanos()); }

/// What the user sees in the extension UI: latency rounded to 10 ms buckets.
double coarse_latency(const scion::Path& p) {
  return std::floor(latency_of(p) / 10e6);
}
double coarse_bandwidth(const scion::Path& p) {
  // The UI shows bandwidth in 1 Gbps buckets ("~3 Gbps"), so fine-grained
  // differences are invisible to the user.
  return std::floor(p.meta().bandwidth_bps / 1e9);
}

bool avoids(const scion::Path& p, const std::vector<scion::Isd>& isds) {
  return std::none_of(isds.begin(), isds.end(),
                      [&](scion::Isd isd) { return p.contains_isd(isd); });
}

template <typename Score>
std::size_t argbest(const std::vector<scion::Path>& paths, Score score) {
  std::size_t best = 0;
  double best_score = score(paths[0]);
  for (std::size_t i = 1; i < paths.size(); ++i) {
    const double s = score(paths[i]);
    if (s < best_score) {
      best_score = s;
      best = i;
    }
  }
  return best;
}

// ------------------------------------------------------------- selection --

std::size_t pick_min_latency(const std::vector<scion::Path>& paths) {
  return argbest(paths, latency_of);
}

std::size_t pick(Layer layer, PanProperty property, const std::vector<scion::Path>& paths,
                 const TaskContext& ctx) {
  switch (layer) {
    case Layer::kOs:
      switch (property) {
        case PanProperty::kLowLatency: return pick_min_latency(paths);
        case PanProperty::kLossRate: return argbest(paths, [](const scion::Path& p) {
            return p.meta().loss_rate;
          });
        case PanProperty::kPathMtu: return argbest(paths, [](const scion::Path& p) {
            return -static_cast<double>(p.meta().mtu);
          });
        case PanProperty::kBandwidth: return argbest(paths, [](const scion::Path& p) {
            return -p.meta().bandwidth_bps;
          });
        case PanProperty::kQos: return argbest(paths, [](const scion::Path& p) {
            return p.meta().all_qos_capable ? latency_of(p) : 1e18 + latency_of(p);
          });
        case PanProperty::kJitterOptimization: return argbest(paths, [](const scion::Path& p) {
            return static_cast<double>(p.meta().jitter.nanos());
          });
        // System-level provisioning: the OS knows the organization's allied
        // bloc and the billing plan, so it can act on them.
        case PanProperty::kAlliedRouting: return argbest(paths, [](const scion::Path& p) {
            return p.meta().all_allied ? latency_of(p) : 1e18 + latency_of(p);
          });
        case PanProperty::kPriceOptimization: return argbest(paths, [](const scion::Path& p) {
            return p.meta().cost_per_gb;
          });
        // No context for intent-driven properties: general-purpose default.
        default: return pick_min_latency(paths);
      }
    case Layer::kApp:
      switch (property) {
        case PanProperty::kLowLatency: return pick_min_latency(paths);
        case PanProperty::kLossRate: return argbest(paths, [](const scion::Path& p) {
            return p.meta().loss_rate;
          });
        case PanProperty::kPathMtu: {
          // The app knows its datagram size and filters accordingly.
          std::size_t best = paths.size();
          double best_latency = 0;
          for (std::size_t i = 0; i < paths.size(); ++i) {
            if (ctx.required_mtu != 0 && paths[i].meta().mtu < ctx.required_mtu) continue;
            if (best == paths.size() || latency_of(paths[i]) < best_latency) {
              best = i;
              best_latency = latency_of(paths[i]);
            }
          }
          return best == paths.size() ? pick_min_latency(paths) : best;
        }
        case PanProperty::kBandwidth: return argbest(paths, [](const scion::Path& p) {
            return -p.meta().bandwidth_bps;
          });
        case PanProperty::kQos: return argbest(paths, [](const scion::Path& p) {
            return p.meta().all_qos_capable ? latency_of(p) : 1e18 + latency_of(p);
          });
        case PanProperty::kJitterOptimization:
          // Only optimized when the app knows the flow is realtime.
          if (ctx.realtime_flow) {
            return argbest(paths, [](const scion::Path& p) {
              return static_cast<double>(p.meta().jitter.nanos());
            });
          }
          return pick_min_latency(paths);
        // Intent-driven: the app does not know the user's regions, CO2 /
        // ethics / allied / price preferences.
        default: return pick_min_latency(paths);
      }
    case Layer::kUser:
      switch (property) {
        case PanProperty::kGeofencing: {
          std::size_t best = paths.size();
          double best_coarse = 0;
          for (std::size_t i = 0; i < paths.size(); ++i) {
            if (ctx.wants_geofence && !avoids(paths[i], ctx.avoid_isds)) continue;
            if (best == paths.size() || coarse_latency(paths[i]) < best_coarse) {
              best = i;
              best_coarse = coarse_latency(paths[i]);
            }
          }
          return best == paths.size() ? 0 : best;
        }
        case PanProperty::kCarbonFootprint: return argbest(paths, [](const scion::Path& p) {
            return p.meta().co2_g_per_gb;
          });
        case PanProperty::kEthicalRouting: return argbest(paths, [](const scion::Path& p) {
            return -p.meta().min_ethics_rating;
          });
        case PanProperty::kAlliedRouting: return argbest(paths, [](const scion::Path& p) {
            return p.meta().all_allied ? coarse_latency(p) : 1e18 + coarse_latency(p);
          });
        case PanProperty::kPriceOptimization: return argbest(paths, [](const scion::Path& p) {
            return p.meta().cost_per_gb;
          });
        case PanProperty::kQos: return argbest(paths, [](const scion::Path& p) {
            return p.meta().all_qos_capable ? coarse_latency(p) : 1e18 + coarse_latency(p);
          });
        case PanProperty::kLowLatency: return argbest(paths, coarse_latency);
        case PanProperty::kBandwidth: return argbest(paths, [](const scion::Path& p) {
            return -coarse_bandwidth(p);
          });
        // Loss, MTU, jitter are abstracted away from the UI: the user falls
        // back to coarse latency, which correlates only weakly.
        default: return argbest(paths, coarse_latency);
      }
  }
  return 0;
}

// --------------------------------------------------------------- scoring --

double ratio_score(double best, double chosen) {
  if (chosen <= 0 && best <= 0) return 1.0;
  if (chosen <= 0) return 1.0;
  const double r = (best + 1e-12) / (chosen + 1e-12);
  return std::clamp(r, 0.0, 1.0);
}

double score(PanProperty property, const std::vector<scion::Path>& paths, std::size_t chosen,
             const TaskContext& ctx) {
  const scion::Path& path = paths[chosen];
  switch (property) {
    case PanProperty::kLowLatency: {
      const double best = latency_of(paths[pick_min_latency(paths)]);
      return ratio_score(best, latency_of(path));
    }
    case PanProperty::kLossRate: {
      double best = 1.0;
      for (const scion::Path& p : paths) best = std::min(best, p.meta().loss_rate);
      return ratio_score(best, path.meta().loss_rate);
    }
    case PanProperty::kPathMtu: {
      if (ctx.required_mtu == 0) return 1.0;
      bool feasible = false;
      for (const scion::Path& p : paths) feasible |= p.meta().mtu >= ctx.required_mtu;
      if (!feasible) return 1.0;
      return path.meta().mtu >= ctx.required_mtu ? 1.0 : 0.0;
    }
    case PanProperty::kBandwidth: {
      double best = 0;
      for (const scion::Path& p : paths) best = std::max(best, p.meta().bandwidth_bps);
      return ratio_score(path.meta().bandwidth_bps, best) == 0
                 ? 0
                 : path.meta().bandwidth_bps / best;
    }
    case PanProperty::kQos: {
      bool feasible = false;
      for (const scion::Path& p : paths) feasible |= p.meta().all_qos_capable;
      if (!feasible) return 1.0;
      return path.meta().all_qos_capable ? 1.0 : 0.0;
    }
    case PanProperty::kJitterOptimization: {
      double best = 1e18;
      for (const scion::Path& p : paths) {
        best = std::min(best, static_cast<double>(p.meta().jitter.nanos()));
      }
      return ratio_score(best, static_cast<double>(path.meta().jitter.nanos()));
    }
    case PanProperty::kGeofencing: {
      if (!ctx.wants_geofence) return 1.0;
      bool feasible = false;
      for (const scion::Path& p : paths) feasible |= avoids(p, ctx.avoid_isds);
      if (!feasible) return 1.0;
      return avoids(path, ctx.avoid_isds) ? 1.0 : 0.0;
    }
    case PanProperty::kOnionRouting:
      // Decision task, scored directly in select_and_score.
      return 0.0;
    case PanProperty::kCarbonFootprint: {
      if (!ctx.wants_low_co2) return 1.0;
      double best = 1e18;
      for (const scion::Path& p : paths) best = std::min(best, p.meta().co2_g_per_gb);
      return ratio_score(best, path.meta().co2_g_per_gb);
    }
    case PanProperty::kEthicalRouting: {
      if (!ctx.wants_ethical) return 1.0;
      double best = 0;
      for (const scion::Path& p : paths) best = std::max(best, p.meta().min_ethics_rating);
      if (best <= 0) return 1.0;
      return path.meta().min_ethics_rating / best;
    }
    case PanProperty::kAlliedRouting: {
      if (!ctx.wants_allied) return 1.0;
      bool feasible = false;
      for (const scion::Path& p : paths) feasible |= p.meta().all_allied;
      if (!feasible) return 1.0;
      return path.meta().all_allied ? 1.0 : 0.0;
    }
    case PanProperty::kPriceOptimization: {
      if (!ctx.wants_cheap) return 1.0;
      double best = 1e18;
      for (const scion::Path& p : paths) best = std::min(best, p.meta().cost_per_gb);
      return ratio_score(best, path.meta().cost_per_gb);
    }
  }
  return 0;
}

}  // namespace

SelectionOutcome select_and_score(Layer layer, PanProperty property,
                                  const std::vector<scion::Path>& candidates,
                                  const TaskContext& context, Rng& /*rng*/) {
  SelectionOutcome out;
  if (candidates.empty()) return out;

  if (property == PanProperty::kOnionRouting) {
    // Decision, not selection: should anonymity be enabled for this
    // destination? OS: never knows. App: only if it classified the site.
    // User: always knows their own sensitivity.
    bool decision = false;
    switch (layer) {
      case Layer::kOs: decision = false; break;
      case Layer::kApp: decision = context.app_knows_privacy && context.privacy_sensitive; break;
      case Layer::kUser: decision = context.privacy_sensitive; break;
    }
    out.achievement = decision == context.privacy_sensitive ? 1.0 : 0.0;
    return out;
  }

  out.chosen_index = pick(layer, property, candidates, context);
  out.achievement = score(property, candidates, out.chosen_index, context);
  return out;
}

std::vector<scion::Path> sample_candidate_paths(Rng& rng, std::size_t count) {
  std::vector<scion::Path> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t hop_count = 2 + rng.next_below(5);
    std::vector<scion::PathHop> hops;
    bool all_qos = true;
    bool all_allied = true;
    double min_ethics = 100;
    for (std::size_t h = 0; h < hop_count; ++h) {
      scion::PathHop hop;
      hop.isd_as = scion::IsdAsn{static_cast<scion::Isd>(1 + rng.next_below(5)),
                                 0xff00'0000'0100ULL + rng.next_below(64)};
      hop.as_meta.country = std::string(1, static_cast<char>('A' + rng.next_below(26))) + "X";
      hop.as_meta.qos_capable = rng.chance(0.75);
      hop.as_meta.allied = rng.chance(0.7);
      hop.as_meta.ethics_rating = 20 + rng.next_double() * 75;
      all_qos = all_qos && hop.as_meta.qos_capable;
      all_allied = all_allied && hop.as_meta.allied;
      min_ethics = std::min(min_ethics, hop.as_meta.ethics_rating);
      hops.push_back(std::move(hop));
    }
    scion::PathMetadata meta;
    meta.latency = microseconds(static_cast<std::int64_t>(
        5'000 + rng.next_exponential(40'000)));
    meta.bandwidth_bps = 100e6 * static_cast<double>(1 + rng.next_below(100));
    static constexpr std::size_t kMtus[] = {1280, 1400, 1500, 9000};
    meta.mtu = kMtus[rng.next_below(4)];
    meta.loss_rate = rng.next_double() * 0.02;
    meta.jitter = microseconds(static_cast<std::int64_t>(rng.next_double() * 5'000));
    meta.co2_g_per_gb = 5 + rng.next_double() * 95;
    meta.cost_per_gb = 1 + rng.next_double() * 49;
    meta.min_ethics_rating = min_ethics;
    meta.all_qos_capable = all_qos;
    meta.all_allied = all_allied;
    meta.expiry_s = UINT32_MAX;
    out.emplace_back(hops.front().isd_as, hops.back().isd_as, std::move(hops), meta,
                     scion::DataplanePath{});
  }
  return out;
}

TaskContext sample_context(PanProperty property, Rng& rng) {
  TaskContext ctx;
  switch (property) {
    case PanProperty::kGeofencing:
      ctx.wants_geofence = true;
      ctx.avoid_isds.push_back(static_cast<scion::Isd>(1 + rng.next_below(5)));
      break;
    case PanProperty::kOnionRouting:
      ctx.privacy_sensitive = true;
      ctx.app_knows_privacy = rng.chance(0.6);  // medical site heuristics etc.
      break;
    case PanProperty::kCarbonFootprint: ctx.wants_low_co2 = true; break;
    case PanProperty::kEthicalRouting: ctx.wants_ethical = true; break;
    case PanProperty::kAlliedRouting: ctx.wants_allied = true; break;
    case PanProperty::kPriceOptimization: ctx.wants_cheap = true; break;
    case PanProperty::kJitterOptimization: ctx.realtime_flow = true; break;
    case PanProperty::kPathMtu: ctx.required_mtu = rng.chance(0.5) ? 1400 : 1500; break;
    default: break;
  }
  return ctx;
}

std::vector<Table1Row> compute_table1(std::size_t trials, std::uint64_t seed) {
  std::vector<Table1Row> table;
  Rng rng(seed);
  for (const PanProperty property : all_properties()) {
    Table1Row row;
    row.property = property;
    double sums[3] = {0, 0, 0};
    for (std::size_t t = 0; t < trials; ++t) {
      const std::vector<scion::Path> candidates =
          sample_candidate_paths(rng, 8 + rng.next_below(12));
      const TaskContext ctx = sample_context(property, rng);
      const Layer layers[3] = {Layer::kOs, Layer::kApp, Layer::kUser};
      for (int l = 0; l < 3; ++l) {
        sums[l] += select_and_score(layers[l], property, candidates, ctx, rng).achievement;
      }
    }
    row.os.mean_achievement = sums[0] / static_cast<double>(trials);
    row.app.mean_achievement = sums[1] / static_cast<double>(trials);
    row.user.mean_achievement = sums[2] / static_cast<double>(trials);
    table.push_back(row);
  }
  return table;
}

}  // namespace pan::browser
