// Web page model.
//
// A page is a main document plus sub-resources, possibly spread across
// origins (the paper's single-origin vs multiple-origin experiments). The
// document body is a tiny declarative format the browser parses:
//
//   <!doctype pan-page>
//   res http://static.example.org/style.css
//   res /hero.jpg
//
// Relative URLs resolve against the document's origin.
#pragma once

#include <string>
#include <vector>

#include "http/url.hpp"

namespace pan::browser {

inline constexpr std::string_view kPageDoctype = "<!doctype pan-page>";

/// Renders the document body for a resource list.
[[nodiscard]] std::string render_document(const std::vector<std::string>& resource_urls);

/// True if the body looks like a pan-page document.
[[nodiscard]] bool is_page_document(std::string_view body);

/// Extracts resource URLs (unresolved) from a document body. Non-document
/// bodies yield an empty list (a leaf resource).
[[nodiscard]] std::vector<std::string> parse_document(std::string_view body);

/// Resolves a possibly relative resource URL against the document URL.
[[nodiscard]] Result<http::Url> resolve_resource_url(const http::Url& document_url,
                                                     std::string_view resource);

}  // namespace pan::browser
