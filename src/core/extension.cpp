#include "core/extension.hpp"

#include "http/strict_scion.hpp"

namespace pan::browser {

const char* to_string(OperationMode m) {
  switch (m) {
    case OperationMode::kOpportunistic: return "opportunistic";
    case OperationMode::kStrict: return "strict";
  }
  return "?";
}

const char* to_string(IndicatorState s) {
  switch (s) {
    case IndicatorState::kAllScion: return "all-scion";
    case IndicatorState::kSomeScion: return "some-scion";
    case IndicatorState::kNoScion: return "no-scion";
  }
  return "?";
}

BrowserExtension::BrowserExtension(sim::Simulator& sim, proxy::SkipProxy& proxy)
    : sim_(sim), proxy_(proxy) {}

void BrowserExtension::set_site_strict(const std::string& host, bool strict) {
  site_strict_[host] = strict;
}

void BrowserExtension::set_geofence(std::optional<ppl::Geofence> geofence) {
  proxy_.set_geofence(std::move(geofence));
}

void BrowserExtension::set_policies(ppl::PolicySet policies) {
  proxy_.set_policies(std::move(policies));
}

void BrowserExtension::fetch(http::HttpRequest request, const std::string& host,
                             bool page_strict, obs::TracePtr trace,
                             proxy::SkipProxy::FetchFn on_result,
                             std::optional<TimePoint> deadline,
                             const std::string& identity) {
  proxy::ProxyRequestOptions options;
  options.strict = page_strict || strict_for(host);
  options.trace = std::move(trace);
  options.deadline = deadline;
  // The extension is the identity boundary: the tab/profile identity rides
  // to the proxy as a header, like any out-of-process HTTP proxy would see.
  if (!identity.empty()) {
    request.headers.set(std::string(proxy::kIdentityHeader), identity);
  }
  // Pinned / strict hosts ride in the document priority band: the user asked
  // for a guarantee, so admission and queue ordering honor it first.
  if (options.strict) {
    request.headers.set(std::string(proxy::kPriorityHeader), "document");
  }
  // Wire-protocol trace propagation: stamp the browser-side trace context on
  // the request so a proxy reached over the network (rather than in-process)
  // still parents its spans under this page load. In-process fetches carry
  // options.trace as well, which takes precedence at the proxy.
  if (options.trace != nullptr) {
    request.headers.set(std::string(obs::kTraceHeader),
                        options.trace->context(0).to_header());
  }
  proxy_.fetch(std::move(request), options, std::move(on_result));
}

bool BrowserExtension::strict_for(const std::string& host) const {
  if (mode_ == OperationMode::kStrict) return true;
  if (const auto site = site_strict_.find(host); site != site_strict_.end()) {
    return site->second;
  }
  return has_pin(host);
}

void BrowserExtension::observe_response(const std::string& host,
                                        const http::HttpResponse& response) {
  const auto directive = http::strict_scion_of(response);
  if (!directive.has_value()) return;
  if (directive->max_age <= Duration::zero()) {
    pins_.erase(host);  // max-age=0 clears the pin, HSTS-style
    return;
  }
  pins_[host] = sim_.now() + directive->max_age;
}

bool BrowserExtension::has_pin(const std::string& host) const {
  const auto it = pins_.find(host);
  return it != pins_.end() && it->second > sim_.now();
}

IndicatorState BrowserExtension::indicator(std::size_t scion_count, std::size_t total_count) {
  if (total_count == 0 || scion_count == 0) return IndicatorState::kNoScion;
  if (scion_count == total_count) return IndicatorState::kAllScion;
  return IndicatorState::kSomeScion;
}

}  // namespace pan::browser
