// The browser model.
//
// Loads pages the way the paper's PLT experiments exercise the stack: fetch
// the main document, parse it, fetch every sub-resource with browser-like
// concurrency, and report the page load time (navigation start -> last
// resource finished) plus per-resource outcomes and the SCION UI indicator.
//
// With the extension attached, every request is intercepted and forwarded to
// the SKIP proxy (tagged strict when the extension says so). With the
// extension detached ("BGP/IP-Only" in Figure 3), the browser speaks plain
// HTTP over TCP-lite/IP using its own DNS resolver and connection pool.
#pragma once

#include <deque>
#include <list>
#include <memory>

#include "core/extension.hpp"
#include "core/page.hpp"
#include "dns/dns.hpp"
#include "http/origin_pool.hpp"

namespace pan::browser {

inline constexpr int kMaxRedirects = 5;

struct BrowserConfig {
  /// HTTP cache with ETag revalidation (If-None-Match / 304). Off by
  /// default so cold-load experiments stay cold.
  bool enable_cache = false;
  /// Max sub-resource fetches in flight at once.
  std::size_t max_concurrent_fetches = 6;
  /// Document parse time before sub-resource fetches start.
  Duration parse_delay = microseconds(500);
  /// Direct mode: max parallel legacy connections per origin.
  std::size_t max_conns_per_origin = 6;
  /// Direct mode: pooled connections idle longer than this are evicted
  /// (zero = keep forever).
  Duration pool_idle_ttl = seconds(60);
  /// Cache entry cap; the least-recently-used entry is evicted beyond it
  /// (`browser.cache.evictions` counts them).
  std::size_t cache_max_entries = 512;
  /// Shared metrics registry for the browser's own instruments
  /// (`browser.cache.*`, `pool.browser.direct.*`). When null the browser
  /// owns a private one.
  obs::MetricsRegistry* metrics = nullptr;
  Duration page_timeout = seconds(30);
  /// Per-resource deadline handed to the SKIP proxy as the budget for all
  /// retries and fallbacks on that request. Zero keeps the proxy's own
  /// default request timeout.
  Duration request_deadline = Duration::zero();
  /// Network identity (tab/profile container) this browser fetches under.
  /// Non-empty: requests carry X-Skip-Identity toward the proxy, and the
  /// browser's own HTTP cache and direct-mode connection pool are
  /// partitioned under the identity so nothing is shared with browsers of
  /// other identities. Empty = the shared default identity.
  std::string identity;
};

struct ResourceOutcome {
  std::string url;
  bool ok = false;
  bool blocked = false;  // strict-mode block
  int status = 0;
  /// Redirects followed for this resource (capped at kMaxRedirects).
  int redirects = 0;
  /// Body came from the browser cache (304 revalidation).
  bool from_cache = false;
  proxy::TransportUsed transport = proxy::TransportUsed::kError;
  bool policy_compliant = false;
  std::string path_fingerprint;
  std::size_t bytes = 0;
  Duration elapsed = Duration::zero();
  /// Per-phase span breakdown from the proxy (empty in direct mode).
  std::vector<obs::SpanRecord> spans;
};

struct PageLoadResult {
  std::string url;
  bool ok = false;          // main document loaded and no resource errored
  bool complete = false;    // additionally, nothing was blocked
  Duration plt = Duration::zero();
  std::vector<ResourceOutcome> resources;  // [0] is the main document
  IndicatorState indicator = IndicatorState::kNoScion;
  bool fully_policy_compliant = false;
  std::size_t over_scion = 0;
  std::size_t over_ip = 0;
  std::size_t blocked = 0;
  std::size_t failed = 0;
};

class Browser {
 public:
  /// Extension-enabled browser: all traffic goes through extension + proxy.
  Browser(sim::Simulator& sim, BrowserExtension& extension, BrowserConfig config = {});
  /// Extension-disabled browser (the BGP/IP-only baseline): direct HTTP/IP.
  Browser(sim::Simulator& sim, net::Host& host, dns::Resolver& resolver,
          BrowserConfig config = {});
  ~Browser();

  Browser(const Browser&) = delete;
  Browser& operator=(const Browser&) = delete;

  using LoadFn = std::function<void(PageLoadResult)>;
  /// Navigates to `url`; the callback fires when the page settles (all
  /// resources done, blocked, or failed) or the page timeout hits.
  void load_page(const std::string& url, LoadFn on_loaded);

  [[nodiscard]] bool extension_enabled() const { return extension_ != nullptr; }

  /// The network identity this browser fetches under ("" = default).
  [[nodiscard]] const std::string& identity() const { return config_.identity; }
  void set_identity(std::string identity) { config_.identity = std::move(identity); }

  [[nodiscard]] obs::MetricsRegistry& metrics() { return *metrics_; }
  /// Direct-mode connection pool (introspection for tests).
  [[nodiscard]] http::OriginPool& direct_pool() { return direct_pool_; }
  [[nodiscard]] std::size_t cache_size() const { return cache_.size(); }

 private:
  struct PageLoad;

  void fetch_resource(const std::shared_ptr<PageLoad>& page, std::size_t index);
  void fetch_via_extension(const std::shared_ptr<PageLoad>& page, std::size_t index,
                           const http::Url& url);
  void fetch_direct(const std::shared_ptr<PageLoad>& page, std::size_t index,
                    const http::Url& url);
  void on_main_document(const std::shared_ptr<PageLoad>& page);
  /// Follows a 3xx response; returns true if a refetch was dispatched.
  bool maybe_follow_redirect(const std::shared_ptr<PageLoad>& page, std::size_t index,
                             const http::Url& current_url, int status,
                             const std::optional<std::string>& location);
  void resource_done(const std::shared_ptr<PageLoad>& page, std::size_t index);
  void pump_queue(const std::shared_ptr<PageLoad>& page);
  void settle(const std::shared_ptr<PageLoad>& page);
  [[nodiscard]] static http::OriginPoolConfig direct_pool_config(const BrowserConfig& config);

  struct CacheEntry {
    std::string etag;
    Bytes body;
    /// Position in cache_lru_ (front = most recently used).
    std::list<std::string>::iterator lru_it;
  };
  /// Applies cache semantics to a completed response: resolves 304s from
  /// the cache (returns the effective body) and stores fresh 200s. The
  /// cache is LRU-bounded at config_.cache_max_entries.
  [[nodiscard]] const Bytes* apply_cache(const std::string& url_text, int status,
                                         const http::HttpResponse& response,
                                         bool* from_cache);
  /// Identity-partitioned cache key: bare URL for the default identity,
  /// "<identity>|<url>" otherwise — one identity's cached bodies (and ETag
  /// revalidations) are invisible to every other identity.
  [[nodiscard]] std::string cache_key(const std::string& url_text) const;
  void add_conditional_headers(const std::string& url_text, http::HttpRequest& request) const;
  void cache_store(const std::string& url_text, std::string etag, Bytes body);
  void cache_touch(CacheEntry& entry);

  sim::Simulator& sim_;
  BrowserConfig config_;
  BrowserExtension* extension_ = nullptr;  // null in direct mode
  net::Host* host_ = nullptr;              // direct mode
  dns::Resolver* resolver_ = nullptr;      // direct mode
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_ = nullptr;  // set before direct_pool_
  http::OriginPool direct_pool_;
  std::unordered_map<std::string, CacheEntry> cache_;
  std::list<std::string> cache_lru_;  // front = most recently used
};

}  // namespace pan::browser
