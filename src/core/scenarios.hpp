// Experiment worlds: the paper's local setup (Figure 2) and distributed
// setup (Figure 4), plus a ClientSession helper bundling a per-trial browser
// + extension + SKIP proxy on the client host.
//
// Local world (Figure 2): everything in one AS — the browser host, a
// SCION-enabled file server, and a TCP/IP-only file server, connected
// through the AS router with sub-millisecond access links.
//
// Remote world (Figure 4): two ISDs. The client's ISD 1 contains core-1 and
// the client leaf AS (plus a "near" leaf AS used by Figure 6). ISD 2
// contains two core ASes and the server leaf AS. The direct core-1<->core-2a
// link is short in AS hops but long in latency; the detour over core-2b has
// more hops but far lower latency. BGP (shortest AS path) therefore routes
// via the slow direct link while SCION path selection finds the fast detour
// — reproducing Figure 5's "SCION wins on distant single-origin pages".
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/browser.hpp"
#include "fault/injector.hpp"
#include "http/file_server.hpp"
#include "proxy/cluster.hpp"
#include "proxy/reverse_proxy.hpp"
#include "scion/topology.hpp"

namespace pan::browser {

struct WorldConfig {
  std::uint64_t seed = 42;
  /// Latency jitter fraction on inter-AS links (gives PLT distributions).
  double link_jitter = 0.05;
  Duration dns_latency = milliseconds(4);
  Duration daemon_latency = milliseconds(1);
  /// Core-link bandwidth (lowered by the multipath bench to create a
  /// bandwidth-bound regime where path aggregation pays off) and
  /// parent-child link bandwidth (the shared access segment).
  double core_bandwidth_bps = 10e9;
  double child_bandwidth_bps = 10e9;
  /// Random loss rate on every inter-AS link (loss-recovery stress).
  double inter_as_loss = 0.0;
  /// Configuration for every reverse proxy the world builders stand up
  /// (overload/admission knobs included) — the surge benches toggle
  /// shedding on the shared server-side infrastructure through this.
  proxy::ReverseProxyConfig reverse_proxy;
  /// Multi-access client (remote world only): adds a second browser host
  /// ("browser-lte") in near-as so the client has two upstream links into
  /// different first-hop ASes. ClientSession then registers it as the "lte"
  /// access on its SkipProxy. The lte knobs make the second access
  /// asymmetric — slower and narrower than the wired primary — so
  /// intent-aware scheduling has something to choose between.
  bool multi_access = false;
  Duration lte_latency = milliseconds(15);
  double lte_bandwidth_bps = 50e6;
  /// When set, every border router records its per-hop forward latency into
  /// a pre-registered `router.<ia>.forward_latency` histogram here. Must
  /// outlive the World.
  obs::MetricsRegistry* router_metrics = nullptr;
};

struct SiteOptions {
  bool legacy = true;             // serve over TCP-lite/IP (A record)
  bool native_scion = false;      // serve over QUIC-lite/SCION directly
  /// Publish the "scion=..." DNS TXT record for a native_scion site. false
  /// models an origin reachable over SCION but *detectable only via the
  /// learned Strict-SCION cache* (curated lists aside) — the fleet bench
  /// uses this to make cold-restart recovery genuinely expensive.
  bool advertise_scion_txt = true;
  bool strict_scion_header = false;
  Duration strict_scion_max_age = seconds(3600);
  Duration think_time = Duration::zero();
  std::uint16_t port = 80;
};

/// Owns the entire simulated world. Construct, add sites, then create
/// ClientSessions for trials.
class World {
 public:
  explicit World(WorldConfig config = {});
  ~World();

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  [[nodiscard]] sim::Simulator& sim() { return sim_; }
  [[nodiscard]] scion::Topology& topology() { return *topo_; }
  [[nodiscard]] dns::Zone& zone() { return zone_; }
  [[nodiscard]] dns::Resolver& resolver() { return *resolver_; }
  [[nodiscard]] const WorldConfig& config() const { return config_; }

  /// The designated client (browser) host; set by the builders below.
  scion::HostId client;
  /// Second access host ("browser-lte" in near-as) when
  /// WorldConfig::multi_access is set; empty otherwise.
  std::optional<scion::HostId> client_lte;

  /// Hosts a site on `host` under `domain` per the options. Returns the file
  /// server so callers can add pages/blobs.
  http::FileServer& add_site(scion::HostId host, const std::string& domain,
                             const SiteOptions& options = {});

  /// Adds a SCION reverse proxy on `proxy_host` fronting `backend_domain`'s
  /// legacy server on `backend_host`; updates DNS so SCION detection finds
  /// the proxy (the paper's deployment for legacy servers).
  proxy::ReverseProxy& add_reverse_proxy(scion::HostId proxy_host,
                                         const std::string& backend_domain,
                                         scion::HostId backend_host,
                                         const proxy::ReverseProxyConfig& config = {});

  [[nodiscard]] http::FileServer* site(const std::string& domain);

  /// The world's chaos controller. Topology is attached at construction;
  /// origins are attached lazily by schedule_chaos; session resolvers attach
  /// themselves (ClientSession does this automatically).
  [[nodiscard]] fault::FaultInjector& injector() { return *injector_; }

  /// Parses a fault-plan script (see fault/fault.hpp for the line format),
  /// attaches every known site as a fault target, and schedules the plan on
  /// the sim clock. Returns an error on a malformed plan.
  Status schedule_chaos(const std::string& plan_text);

 private:
  WorldConfig config_;
  sim::Simulator sim_;
  // Declared before (so destroyed after) everything the injector's pull
  // hooks may still reference through scheduled events.
  std::unique_ptr<fault::FaultInjector> injector_;
  dns::Zone zone_;
  std::unique_ptr<scion::Topology> topo_;
  std::unique_ptr<dns::Resolver> resolver_;
  std::vector<std::unique_ptr<http::FileServer>> file_servers_;
  std::unordered_map<std::string, http::FileServer*> sites_;
  std::vector<std::unique_ptr<http::LegacyHttpServer>> legacy_servers_;
  std::vector<std::unique_ptr<http::ScionHttpServer>> scion_servers_;
  std::vector<std::unique_ptr<proxy::ReverseProxy>> reverse_proxies_;
};

/// Figure 2's world. Hosts: "browser" (client), "scion-fs", "tcpip-fs".
/// Domains: scion-fs.local (SCION-only), tcpip-fs.local (IP-only).
/// (Returned by pointer: the World owns the simulator its members reference,
/// so it must never move.)
[[nodiscard]] std::unique_ptr<World> make_local_world(const WorldConfig& config = {});

/// Figure 4's world. Client in 1-ff00:0:111. Far site www.far.example in
/// 2-ff00:0:211 (legacy + SCION reverse proxy nearby), plus
/// static.far.example on a second host there. Near site www.near.example in
/// 1-ff00:0:112. BGP takes the slow direct core link; SCION can detour.
[[nodiscard]] std::unique_ptr<World> make_remote_world(const WorldConfig& config = {});

/// A per-trial client bundle: SKIP proxy + extension + browser on the
/// world's client host. Fresh per trial so connection setup counts toward
/// PLT, exactly like a cold browser visit.
class ClientSession {
 public:
  explicit ClientSession(World& world, proxy::ProxyConfig proxy_config = {},
                         BrowserConfig browser_config = {});

  [[nodiscard]] proxy::SkipProxy& proxy() { return *proxy_; }
  [[nodiscard]] BrowserExtension& extension() { return *extension_; }
  [[nodiscard]] Browser& browser() { return *browser_; }

  /// Loads a page and runs the simulator until it settles.
  PageLoadResult load(const std::string& url);

 private:
  World& world_;
  std::unique_ptr<dns::Resolver> resolver_;  // per-session resolver (cold cache)
  std::unique_ptr<proxy::SkipProxy> proxy_;
  std::unique_ptr<BrowserExtension> extension_;
  std::unique_ptr<Browser> browser_;
};

/// A proxy *fleet* on the world's client host: a proxy::ProxyCluster wired
/// into the world's chaos plumbing. The session translates the
/// replica-crash / replica-hang / replica-restart fault verbs into cluster
/// calls (it registers as the injector's replica hook) and attaches the
/// injector's DNS brownout table to every per-replica resolver the cluster
/// creates — including the fresh resolver a revived replica gets.
class FleetSession {
 public:
  explicit FleetSession(World& world, proxy::ClusterConfig config = {});
  ~FleetSession();

  FleetSession(const FleetSession&) = delete;
  FleetSession& operator=(const FleetSession&) = delete;

  [[nodiscard]] proxy::ProxyCluster& cluster() { return *cluster_; }

  /// Fetches `url` through the cluster and runs the sim until it settles.
  proxy::ProxyResult fetch(const std::string& url, bool strict = false);

 private:
  World& world_;
  std::unique_ptr<proxy::ProxyCluster> cluster_;
};

/// Deterministic load generator behind the `surge` fault verb: while a surge
/// event is active it launches `GET http://<domain><path>` requests through
/// a SKIP proxy (or a whole ProxyCluster) at the event's rate, capped at the
/// event's concurrency, tagged as probe-class traffic from the "surge"
/// client so admission control can recognize (and shed) it. One SurgeLoad
/// drives one world's surges; it registers itself as the injector's surge
/// hook.
class SurgeLoad {
 public:
  SurgeLoad(World& world, proxy::SkipProxy& proxy);
  /// Fleet variant: requests route through the cluster front (consistent
  /// hashing + failover) instead of a single proxy.
  SurgeLoad(World& world, proxy::ProxyCluster& cluster);
  ~SurgeLoad();

  SurgeLoad(const SurgeLoad&) = delete;
  SurgeLoad& operator=(const SurgeLoad&) = delete;

  /// Path requested on the surged domain (default "/").
  void set_target_path(std::string path) { path_ = std::move(path); }
  /// Per-request deadline budget (default 2s).
  void set_request_deadline(Duration deadline) { request_deadline_ = deadline; }

  struct Stats {
    std::uint64_t launched = 0;
    std::uint64_t completed = 0;  // 2xx
    std::uint64_t rejected = 0;   // 429 / 503 (admission or shed)
    std::uint64_t timed_out = 0;  // 504 (hung to deadline — the bad outcome)
    std::uint64_t failed = 0;     // everything else
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::size_t in_flight() const { return in_flight_; }

 private:
  void on_event(const fault::FaultEvent& event, bool active);
  void tick();

  World& world_;
  /// Erased fetch target: SkipProxy::fetch or ProxyCluster::fetch.
  std::function<void(http::HttpRequest, proxy::ProxyRequestOptions, proxy::SkipProxy::FetchFn)>
      fetch_;
  Stats stats_;
  std::string domain_;
  std::string path_ = "/";
  Duration request_deadline_ = seconds(2);
  double rate_ = 0.0;
  std::size_t concurrency_ = 0;
  std::size_t in_flight_ = 0;
  bool active_ = false;
  /// Flipped in the destructor so in-flight fetch callbacks and scheduled
  /// ticks become no-ops.
  std::shared_ptr<bool> alive_;
};

/// The extension-disabled baseline browser ("BGP/IP-Only").
class DirectSession {
 public:
  explicit DirectSession(World& world, BrowserConfig browser_config = {});

  [[nodiscard]] Browser& browser() { return *browser_; }
  PageLoadResult load(const std::string& url);

 private:
  World& world_;
  std::unique_ptr<dns::Resolver> resolver_;
  std::unique_ptr<Browser> browser_;
};

}  // namespace pan::browser
