#include "core/scenarios.hpp"

namespace pan::browser {

World::World(WorldConfig config) : config_(config) {
  injector_ = std::make_unique<fault::FaultInjector>(sim_);
  scion::TopologyConfig topo_config;
  topo_config.seed = config_.seed;
  topo_config.daemon.lookup_latency = config_.daemon_latency;
  topo_config.metrics = config_.router_metrics;
  topo_ = std::make_unique<scion::Topology>(sim_, topo_config);
  injector_->attach_topology(*topo_);
  resolver_ = std::make_unique<dns::Resolver>(
      sim_, zone_, dns::ResolverConfig{.lookup_latency = config_.dns_latency});
  injector_->attach_resolver(*resolver_);
}

World::~World() = default;

http::FileServer& World::add_site(scion::HostId host, const std::string& domain,
                                  const SiteOptions& options) {
  auto fs = std::make_unique<http::FileServer>(sim_);
  http::FileServer& ref = *fs;
  if (options.strict_scion_header) {
    ref.enable_strict_scion(options.strict_scion_max_age);
  }
  ref.set_think_time(options.think_time);
  file_servers_.push_back(std::move(fs));
  sites_[domain] = &ref;

  if (options.legacy) {
    legacy_servers_.push_back(std::make_unique<http::LegacyHttpServer>(
        topo_->host(host), options.port, ref.handler()));
    zone_.add_a(domain, topo_->ip(host));
  }
  if (options.native_scion) {
    scion_servers_.push_back(std::make_unique<http::ScionHttpServer>(
        topo_->scion_stack(host), options.port, ref.handler()));
    // Without the TXT advertisement the origin is SCION-reachable but only
    // discoverable through the learned Strict-SCION cache.
    if (options.advertise_scion_txt) {
      zone_.add_scion_txt(domain, topo_->scion_addr(host));
    }
  }
  return ref;
}

proxy::ReverseProxy& World::add_reverse_proxy(scion::HostId proxy_host,
                                              const std::string& backend_domain,
                                              scion::HostId backend_host,
                                              const proxy::ReverseProxyConfig& config) {
  reverse_proxies_.push_back(std::make_unique<proxy::ReverseProxy>(
      topo_->scion_stack(proxy_host), 80, net::Endpoint{topo_->ip(backend_host), 80},
      config));
  zone_.add_scion_txt(backend_domain, topo_->scion_addr(proxy_host));
  return *reverse_proxies_.back();
}

http::FileServer* World::site(const std::string& domain) {
  const auto it = sites_.find(domain);
  return it == sites_.end() ? nullptr : it->second;
}

Status World::schedule_chaos(const std::string& plan_text) {
  auto plan = fault::parse_fault_plan(plan_text);
  if (!plan.ok()) return Err(plan.error());
  for (const auto& [domain, server] : sites_) {
    injector_->attach_origin(domain, *server);
  }
  injector_->schedule(plan.value());
  return {};
}

std::unique_ptr<World> make_local_world(const WorldConfig& config) {
  auto world = std::make_unique<World>(config);
  scion::Topology& topo = world->topology();

  scion::AsSpec local;
  local.name = "local";
  local.ia = scion::IsdAsn{1, 0xff00'0000'0110ULL};
  local.core = true;
  local.meta.country = "CH";
  topo.add_as(local);

  // Everything on "one laptop": fast access links, tiny latency.
  net::LinkParams access;
  access.latency = microseconds(50);
  access.bandwidth_bps = 10e9;
  access.jitter_frac = config.link_jitter;
  world->client = topo.add_host("local", "browser", access);
  topo.add_host("local", "scion-fs", access);
  topo.add_host("local", "tcpip-fs", access);
  topo.finalize();

  world->add_site(topo.host_by_name("scion-fs"), "scion-fs.local",
                  SiteOptions{.legacy = false, .native_scion = true});
  world->add_site(topo.host_by_name("tcpip-fs"), "tcpip-fs.local",
                  SiteOptions{.legacy = true, .native_scion = false});
  return world;
}

std::unique_ptr<World> make_remote_world(const WorldConfig& config) {
  auto world = std::make_unique<World>(config);
  scion::Topology& topo = world->topology();

  const auto add_as = [&](const std::string& name, scion::Isd isd, scion::Asn asn,
                          bool core, const std::string& country) {
    scion::AsSpec spec;
    spec.name = name;
    spec.ia = scion::IsdAsn{isd, asn};
    spec.core = core;
    spec.meta.country = country;
    topo.add_as(spec);
  };
  add_as("core-1", 1, 0xff00'0000'0110ULL, true, "CH");
  add_as("client-as", 1, 0xff00'0000'0111ULL, false, "CH");
  add_as("near-as", 1, 0xff00'0000'0112ULL, false, "CH");
  add_as("core-2a", 2, 0xff00'0000'0210ULL, true, "US");
  add_as("core-2b", 2, 0xff00'0000'0220ULL, true, "US");
  add_as("server-as", 2, 0xff00'0000'0211ULL, false, "US");

  const auto link = [&](const std::string& a, const std::string& b, scion::LinkType type,
                        std::int64_t latency_ms, double co2, double cost) {
    scion::AsLinkSpec spec;
    spec.a = a;
    spec.b = b;
    spec.type = type;
    spec.params.latency = milliseconds(latency_ms);
    spec.params.bandwidth_bps = type == scion::LinkType::kCore ? config.core_bandwidth_bps
                                                               : config.child_bandwidth_bps;
    spec.params.jitter_frac = config.link_jitter;
    spec.params.loss_rate = config.inter_as_loss;
    spec.co2_g_per_gb = co2;
    spec.cost_per_gb = cost;
    topo.add_link(spec);
  };
  // The BGP trap: the direct inter-ISD core link is one AS hop but 80 ms;
  // the detour over core-2b is two hops totalling 30 ms. Shortest-AS-path
  // routing prefers the direct link; SCION's latency-sorted paths take the
  // detour. The direct link is a modern long-haul fiber — slow but green
  // and cheap — so latency, CO2, and cost orderings pick different paths.
  link("core-1", "core-2a", scion::LinkType::kCore, 80, 8, 4);
  link("core-1", "core-2b", scion::LinkType::kCore, 25, 40, 25);
  link("core-2b", "core-2a", scion::LinkType::kCore, 5, 15, 10);
  link("core-1", "client-as", scion::LinkType::kParentChild, 2, 5, 5);
  link("core-1", "near-as", scion::LinkType::kParentChild, 3, 5, 5);
  link("core-2a", "server-as", scion::LinkType::kParentChild, 2, 8, 8);
  link("core-2b", "server-as", scion::LinkType::kParentChild, 3, 8, 8);

  net::LinkParams access;
  access.latency = microseconds(200);
  access.bandwidth_bps = 1e9;
  access.jitter_frac = config.link_jitter;
  world->client = topo.add_host("client-as", "browser", access);
  if (config.multi_access) {
    // Second upstream link into a different first-hop AS: an LTE-class
    // access homed in near-as (client-as reaches core-1 at 2 ms, near-as at
    // 3 ms — the accesses are asymmetric end to end as well).
    net::LinkParams lte;
    lte.latency = config.lte_latency;
    lte.bandwidth_bps = config.lte_bandwidth_bps;
    lte.jitter_frac = config.link_jitter;
    world->client_lte = topo.add_host("near-as", "browser-lte", lte);
  }
  const scion::HostId far_www = topo.add_host("server-as", "far-www", access);
  const scion::HostId far_static = topo.add_host("server-as", "far-static", access);
  const scion::HostId far_rp1 = topo.add_host("server-as", "far-rp1", access);
  const scion::HostId far_rp2 = topo.add_host("server-as", "far-rp2", access);
  const scion::HostId near_www = topo.add_host("near-as", "near-www", access);
  const scion::HostId near_rp = topo.add_host("near-as", "near-rp", access);
  topo.finalize();

  world->add_site(far_www, "www.far.example", SiteOptions{.legacy = true});
  world->add_reverse_proxy(far_rp1, "www.far.example", far_www, config.reverse_proxy);
  world->add_site(far_static, "static.far.example", SiteOptions{.legacy = true});
  world->add_reverse_proxy(far_rp2, "static.far.example", far_static, config.reverse_proxy);
  world->add_site(near_www, "www.near.example", SiteOptions{.legacy = true});
  world->add_reverse_proxy(near_rp, "www.near.example", near_www, config.reverse_proxy);
  return world;
}

ClientSession::ClientSession(World& world, proxy::ProxyConfig proxy_config,
                             BrowserConfig browser_config)
    : world_(world) {
  scion::Topology& topo = world.topology();
  resolver_ = std::make_unique<dns::Resolver>(
      world.sim(), world.zone(),
      dns::ResolverConfig{.lookup_latency = world.config().dns_latency});
  world.injector().attach_resolver(*resolver_);
  proxy_ = std::make_unique<proxy::SkipProxy>(
      world.sim(), topo.host(world.client), topo.scion_stack(world.client),
      topo.daemon_for(world.client), *resolver_, proxy_config);
  // Fault counters land next to proxy stats so /skip/metrics and
  // /skip/health expose them.
  world.injector().set_metrics(&proxy_->metrics());
  if (world.client_lte.has_value()) {
    proxy_->add_access("lte", topo.host(*world.client_lte),
                       topo.scion_stack(*world.client_lte),
                       topo.daemon_for(*world.client_lte));
  }
  extension_ = std::make_unique<BrowserExtension>(world.sim(), *proxy_);
  browser_ = std::make_unique<Browser>(world.sim(), *extension_, browser_config);
}

PageLoadResult ClientSession::load(const std::string& url) {
  PageLoadResult result;
  bool done = false;
  browser_->load_page(url, [&](PageLoadResult r) {
    result = std::move(r);
    done = true;
  });
  world_.sim().run_until_condition([&] { return done; },
                                   world_.sim().now() + seconds(120));
  return result;
}

FleetSession::FleetSession(World& world, proxy::ClusterConfig config) : world_(world) {
  scion::Topology& topo = world.topology();
  if (config.resolver.lookup_latency == dns::ResolverConfig{}.lookup_latency) {
    config.resolver.lookup_latency = world.config().dns_latency;
  }
  // Every per-replica resolver — including the fresh one a revived replica
  // gets — pulls from the injector's DNS brownout table.
  config.on_resolver_created = [&world](dns::Resolver& resolver) {
    world.injector().attach_resolver(resolver);
  };
  cluster_ = std::make_unique<proxy::ProxyCluster>(
      world.sim(), topo.host(world.client), topo.scion_stack(world.client),
      topo.daemon_for(world.client), world.zone(), std::move(config));
  world.injector().set_metrics(&cluster_->metrics());
  world.injector().set_replica_hook(
      [this](const fault::FaultEvent& event, bool active) {
        switch (event.kind) {
          case fault::FaultKind::kReplicaCrash:
            if (active) {
              cluster_->crash_replica(event.a);
            } else {
              cluster_->revive_replica(event.a);
            }
            break;
          case fault::FaultKind::kReplicaHang:
            cluster_->set_replica_hung(event.a, active);
            break;
          case fault::FaultKind::kReplicaRestart:
            // A one-shot bounce; the revert (if dur= was given) is a no-op.
            if (active) cluster_->restart_replica(event.a);
            break;
          default:
            break;
        }
      });
}

FleetSession::~FleetSession() { world_.injector().set_replica_hook(nullptr); }

proxy::ProxyResult FleetSession::fetch(const std::string& url, bool strict) {
  proxy::ProxyResult result;
  bool done = false;
  http::HttpRequest request;
  request.method = "GET";
  request.target = url;
  proxy::ProxyRequestOptions options;
  options.strict = strict;
  cluster_->fetch(std::move(request), options, [&](proxy::ProxyResult r) {
    result = std::move(r);
    done = true;
  });
  world_.sim().run_until_condition([&] { return done; },
                                   world_.sim().now() + seconds(120));
  return result;
}

SurgeLoad::SurgeLoad(World& world, proxy::SkipProxy& proxy)
    : world_(world),
      fetch_([&proxy](http::HttpRequest request, proxy::ProxyRequestOptions options,
                      proxy::SkipProxy::FetchFn on_result) {
        proxy.fetch(std::move(request), std::move(options), std::move(on_result));
      }),
      alive_(std::make_shared<bool>(true)) {
  world_.injector().set_surge_hook(
      [this](const fault::FaultEvent& event, bool active) { on_event(event, active); });
}

SurgeLoad::SurgeLoad(World& world, proxy::ProxyCluster& cluster)
    : world_(world),
      fetch_([&cluster](http::HttpRequest request, proxy::ProxyRequestOptions options,
                        proxy::SkipProxy::FetchFn on_result) {
        cluster.fetch(std::move(request), std::move(options), std::move(on_result));
      }),
      alive_(std::make_shared<bool>(true)) {
  world_.injector().set_surge_hook(
      [this](const fault::FaultEvent& event, bool active) { on_event(event, active); });
}

SurgeLoad::~SurgeLoad() {
  *alive_ = false;
  world_.injector().set_surge_hook(nullptr);
}

void SurgeLoad::on_event(const fault::FaultEvent& event, bool active) {
  if (!active) {
    if (event.a == domain_) active_ = false;
    return;
  }
  // One surge at a time: a newer event retargets the generator.
  domain_ = event.a;
  rate_ = event.surge_rate;
  concurrency_ = event.surge_concurrency;
  if (!active_) {
    active_ = true;
    tick();
  }
}

void SurgeLoad::tick() {
  if (!active_) return;
  if (in_flight_ < concurrency_) {
    ++stats_.launched;
    ++in_flight_;
    http::HttpRequest request;
    request.method = "GET";
    request.target = "http://" + domain_ + path_;
    request.headers.set("Host", domain_);
    request.headers.set("User-Agent", "pan-surge/1.0");
    request.headers.set(std::string(proxy::kPriorityHeader), "probe");
    request.headers.set(std::string(proxy::kClientHeader), "surge");
    proxy::ProxyRequestOptions options;
    options.deadline = world_.sim().now() + request_deadline_;
    fetch_(std::move(request), options,
           [this, alive = alive_](proxy::ProxyResult result) {
                   if (!*alive) return;
                   --in_flight_;
                   const int status = result.response.status;
                   if (status >= 200 && status < 300) {
                     ++stats_.completed;
                   } else if (status == 429 || status == 503) {
                     ++stats_.rejected;
                   } else if (status == 504) {
                     ++stats_.timed_out;
                   } else {
                     ++stats_.failed;
                   }
                 });
  }
  const auto interval = Duration{static_cast<std::int64_t>(1e9 / rate_)};
  world_.sim().schedule_after(interval, [this, alive = alive_] {
    if (*alive) tick();
  });
}

DirectSession::DirectSession(World& world, BrowserConfig browser_config) : world_(world) {
  resolver_ = std::make_unique<dns::Resolver>(
      world.sim(), world.zone(),
      dns::ResolverConfig{.lookup_latency = world.config().dns_latency});
  world.injector().attach_resolver(*resolver_);
  browser_ = std::make_unique<Browser>(world.sim(), world.topology().host(world.client),
                                       *resolver_, browser_config);
}

PageLoadResult DirectSession::load(const std::string& url) {
  PageLoadResult result;
  bool done = false;
  browser_->load_page(url, [&](PageLoadResult r) {
    result = std::move(r);
    done = true;
  });
  world_.sim().run_until_condition([&] { return done; },
                                   world_.sim().now() + seconds(120));
  return result;
}

}  // namespace pan::browser
