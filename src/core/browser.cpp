#include "core/browser.hpp"

#include "net/multi_access.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace pan::browser {

namespace {
constexpr std::string_view kLog = "browser";
}

struct Browser::PageLoad {
  std::string url_text;
  http::Url url;
  LoadFn on_loaded;
  TimePoint started;
  PageLoadResult result;
  // Work queue of resource indices not yet started (index into
  // result.resources; 0 is the main document, handled separately).
  std::deque<std::size_t> queue;
  std::size_t in_flight = 0;
  std::size_t remaining = 0;  // resources not yet finished (incl. main doc)
  bool settled = false;
  /// Strict mode for the whole page (site toggle / Strict-SCION pin on the
  /// main document's host): every sub-resource request inherits it.
  bool page_strict = false;
  sim::EventId timeout_event = sim::kInvalidEventId;
};

http::OriginPoolConfig Browser::direct_pool_config(const BrowserConfig& config) {
  http::OriginPoolConfig pool;
  pool.name = "browser.direct";
  pool.max_conns_per_origin = config.max_conns_per_origin;
  pool.max_outstanding_per_conn = 1;  // browser-like: no pipelining
  pool.idle_ttl = config.pool_idle_ttl;
  return pool;
}

Browser::Browser(sim::Simulator& sim, BrowserExtension& extension, BrowserConfig config)
    : sim_(sim),
      config_(config),
      extension_(&extension),
      owned_metrics_(config.metrics == nullptr ? std::make_unique<obs::MetricsRegistry>()
                                               : nullptr),
      metrics_(config.metrics != nullptr ? config.metrics : owned_metrics_.get()),
      direct_pool_(sim, *metrics_, direct_pool_config(config_)) {}

Browser::Browser(sim::Simulator& sim, net::Host& host, dns::Resolver& resolver,
                 BrowserConfig config)
    : sim_(sim),
      config_(config),
      host_(&host),
      resolver_(&resolver),
      owned_metrics_(config.metrics == nullptr ? std::make_unique<obs::MetricsRegistry>()
                                               : nullptr),
      metrics_(config.metrics != nullptr ? config.metrics : owned_metrics_.get()),
      direct_pool_(sim, *metrics_, direct_pool_config(config_)) {}

Browser::~Browser() = default;

void Browser::load_page(const std::string& url, LoadFn on_loaded) {
  auto page = std::make_shared<PageLoad>();
  page->url_text = url;
  page->on_loaded = std::move(on_loaded);
  page->started = sim_.now();
  const auto parsed = http::parse_url(url);
  if (!parsed.ok()) {
    page->result.url = url;
    page->result.ok = false;
    page->on_loaded(std::move(page->result));
    return;
  }
  page->url = parsed.value();
  page->page_strict = extension_ != nullptr && extension_->strict_for(page->url.host);
  page->result.url = url;
  ResourceOutcome main_doc;
  main_doc.url = url;
  page->result.resources.push_back(std::move(main_doc));
  page->remaining = 1;

  page->timeout_event = sim_.schedule_after(config_.page_timeout, [this, page] {
    if (!page->settled) {
      PAN_WARN(kLog) << "page load timeout for " << page->url_text;
      settle(page);
    }
  });

  fetch_resource(page, 0);
}

void Browser::fetch_resource(const std::shared_ptr<PageLoad>& page, std::size_t index) {
  ResourceOutcome& outcome = page->result.resources[index];
  const auto url = index == 0 ? Result<http::Url>(page->url)
                              : resolve_resource_url(page->url, outcome.url);
  if (!url.ok()) {
    outcome.ok = false;
    outcome.status = 0;
    resource_done(page, index);
    return;
  }
  if (extension_ != nullptr) {
    fetch_via_extension(page, index, url.value());
  } else {
    fetch_direct(page, index, url.value());
  }
}

void Browser::fetch_via_extension(const std::shared_ptr<PageLoad>& page, std::size_t index,
                                  const http::Url& url) {
  http::HttpRequest request;
  request.method = "GET";
  request.target = url.to_string();  // absolute form toward the proxy
  request.headers.set("Host", url.authority());
  request.headers.set("User-Agent", "pan-browser/1.0");
  // Tag the priority class for the proxy's admission ladder and pool queue
  // ordering: the main document outranks its sub-resources.
  request.headers.set(std::string(proxy::kPriorityHeader),
                      index == 0 ? "document" : "subresource");
  // Socket-Intents-style access hint for a multi-access proxy: the document
  // is latency-critical, sub-resources are bulk transfers.
  request.headers.set(std::string(net::kIntentHeader),
                      index == 0 ? "latency-critical" : "bulk");
  add_conditional_headers(url.to_string(), request);

  const TimePoint begun = sim_.now();
  std::optional<TimePoint> deadline;
  if (config_.request_deadline > Duration::zero()) {
    deadline = begun + config_.request_deadline;
  }
  extension_->fetch(
      std::move(request), url.host, page->page_strict, extension_->make_trace(),
      [this, page, index, url, begun](proxy::ProxyResult result) {
        if (page->settled) return;
        extension_->observe_response(url.host, result.response);
        if (maybe_follow_redirect(page, index, url, result.response.status,
                                  result.response.headers.get("Location"))) {
          return;
        }
        ResourceOutcome& outcome = page->result.resources[index];
        bool from_cache = false;
        const Bytes* effective_body =
            apply_cache(url.to_string(), result.response.status, result.response, &from_cache);
        outcome.from_cache = from_cache;
        outcome.elapsed = sim_.now() - begun;
        outcome.status = result.response.status;
        outcome.transport = result.transport;
        outcome.policy_compliant = result.policy_compliant;
        outcome.path_fingerprint = result.path_fingerprint;
        outcome.spans = std::move(result.spans);
        outcome.bytes = effective_body->size();
        outcome.blocked = result.transport == proxy::TransportUsed::kBlocked;
        outcome.ok = (result.response.ok() || from_cache) &&
                     result.transport != proxy::TransportUsed::kBlocked &&
                     result.transport != proxy::TransportUsed::kError;
        if (index == 0 && outcome.ok) {
          // Discover sub-resources.
          const std::string body(reinterpret_cast<const char*>(effective_body->data()),
                                 effective_body->size());
          for (const std::string& res : parse_document(body)) {
            ResourceOutcome sub;
            sub.url = res;
            page->result.resources.push_back(std::move(sub));
            ++page->remaining;
            page->queue.push_back(page->result.resources.size() - 1);
          }
          sim_.schedule_after(config_.parse_delay, [this, page] { pump_queue(page); });
        }
        resource_done(page, index);
      },
      deadline, config_.identity);
}

void Browser::fetch_direct(const std::shared_ptr<PageLoad>& page, std::size_t index,
                           const http::Url& url) {
  const TimePoint begun = sim_.now();
  resolver_->resolve(url.host, [this, page, index, url,
                                begun](Result<dns::RecordSet> records) {
    if (page->settled) return;
    ResourceOutcome& outcome = page->result.resources[index];
    if (!records.ok() || records.value().a.empty()) {
      outcome.ok = false;
      outcome.status = 0;
      outcome.elapsed = sim_.now() - begun;
      resource_done(page, index);
      return;
    }
    const net::IpAddr ip = records.value().a.front();

    http::HttpRequest request;
    request.method = "GET";
    request.target = url.path;
    request.headers.set("Host", url.authority());
    request.headers.set("User-Agent", "pan-browser/1.0");
    add_conditional_headers(url.to_string(), request);

    // Proxy-less baseline still benefits from priority queue ordering and
    // deadline shedding in its own connection pool.
    http::SubmitOptions submit_options;
    submit_options.priority = index == 0 ? 0 : 1;
    if (config_.request_deadline > Duration::zero()) {
      submit_options.deadline = begun + config_.request_deadline;
    }
    // Identity-partitioned pooling: two identities never reuse each other's
    // direct TCP connections, mirroring the proxy-side isolation.
    const std::string origin_key = proxy::identity_key(config_.identity, url.authority());
    direct_pool_.submit(
        origin_key, std::move(request), submit_options,
        [this, page, index, url, begun](Result<http::HttpResponse> result) {
          if (page->settled) return;
          ResourceOutcome& res_outcome = page->result.resources[index];
          res_outcome.elapsed = sim_.now() - begun;
          if (!result.ok()) {
            res_outcome.ok = false;
            resource_done(page, index);
            return;
          }
          if (maybe_follow_redirect(page, index, url, result.value().status,
                                    result.value().headers.get("Location"))) {
            return;
          }
          const http::HttpResponse& response = result.value();
          bool from_cache = false;
          const Bytes* effective_body =
              apply_cache(url.to_string(), response.status, response, &from_cache);
          res_outcome.from_cache = from_cache;
          res_outcome.ok = response.ok() || from_cache;
          res_outcome.status = response.status;
          res_outcome.transport = proxy::TransportUsed::kIp;
          res_outcome.bytes = effective_body->size();
          if (index == 0 && res_outcome.ok) {
            const std::string body(reinterpret_cast<const char*>(effective_body->data()),
                                   effective_body->size());
            for (const std::string& res : parse_document(body)) {
              ResourceOutcome sub;
            sub.url = res;
            page->result.resources.push_back(std::move(sub));
              ++page->remaining;
              page->queue.push_back(page->result.resources.size() - 1);
            }
            sim_.schedule_after(config_.parse_delay, [this, page] { pump_queue(page); });
          }
          resource_done(page, index);
        },
        [this, ip, port = url.port]() {
          return std::make_unique<http::LegacyPooledConnection>(*host_,
                                                                net::Endpoint{ip, port});
        });
  });
}

std::string Browser::cache_key(const std::string& url_text) const {
  return proxy::identity_key(config_.identity, url_text);
}

void Browser::add_conditional_headers(const std::string& url_text,
                                      http::HttpRequest& request) const {
  if (!config_.enable_cache) return;
  const auto it = cache_.find(cache_key(url_text));
  if (it != cache_.end()) {
    request.headers.set("If-None-Match", "\"" + it->second.etag + "\"");
  }
}

void Browser::cache_touch(CacheEntry& entry) {
  cache_lru_.splice(cache_lru_.begin(), cache_lru_, entry.lru_it);
}

void Browser::cache_store(const std::string& url_text, std::string etag, Bytes body) {
  if (const auto it = cache_.find(url_text); it != cache_.end()) {
    it->second.etag = std::move(etag);
    it->second.body = std::move(body);
    cache_touch(it->second);
    return;
  }
  if (config_.cache_max_entries > 0 && cache_.size() >= config_.cache_max_entries) {
    // Evict the least-recently-used entry to stay within the cap.
    const std::string& victim = cache_lru_.back();
    PAN_DEBUG(kLog) << "cache evicting " << victim;
    cache_.erase(victim);
    cache_lru_.pop_back();
    metrics_->counter("browser.cache.evictions").inc();
  }
  cache_lru_.push_front(url_text);
  cache_.emplace(url_text,
                 CacheEntry{std::move(etag), std::move(body), cache_lru_.begin()});
}

const Bytes* Browser::apply_cache(const std::string& url_text, int status,
                                  const http::HttpResponse& response, bool* from_cache) {
  *from_cache = false;
  if (!config_.enable_cache) return &response.body;
  const std::string key = cache_key(url_text);
  if (status == 304) {
    const auto it = cache_.find(key);
    if (it != cache_.end()) {
      *from_cache = true;
      cache_touch(it->second);
      return &it->second.body;
    }
    return &response.body;  // 304 without a cache entry: treat as empty
  }
  if (status == 200) {
    if (const auto etag = response.headers.get("ETag")) {
      std::string value = *etag;
      if (value.size() >= 2 && value.front() == '"' && value.back() == '"') {
        value = value.substr(1, value.size() - 2);
      }
      cache_store(key, std::move(value), response.body);
    }
  }
  return &response.body;
}

bool Browser::maybe_follow_redirect(const std::shared_ptr<PageLoad>& page, std::size_t index,
                                    const http::Url& current_url, int status,
                                    const std::optional<std::string>& location) {
  const bool is_redirect =
      status == 301 || status == 302 || status == 303 || status == 307 || status == 308;
  if (!is_redirect || !location.has_value()) return false;
  ResourceOutcome& outcome = page->result.resources[index];
  if (outcome.redirects >= kMaxRedirects) {
    PAN_WARN(kLog) << "redirect limit reached for " << outcome.url;
    return false;
  }
  const auto target = resolve_resource_url(current_url, *location);
  if (!target.ok()) {
    PAN_DEBUG(kLog) << "unresolvable Location '" << *location << "': " << target.error();
    return false;
  }
  ++outcome.redirects;
  outcome.url = target.value().to_string();
  if (index == 0) {
    // The main document moved: relative resources resolve against the new
    // location, and page-level strictness follows the new host.
    page->url = target.value();
    page->page_strict =
        extension_ != nullptr && extension_->strict_for(target.value().host);
  }
  fetch_resource(page, index);
  return true;
}

void Browser::pump_queue(const std::shared_ptr<PageLoad>& page) {
  if (page->settled) return;
  while (page->in_flight < config_.max_concurrent_fetches && !page->queue.empty()) {
    const std::size_t index = page->queue.front();
    page->queue.pop_front();
    ++page->in_flight;
    fetch_resource(page, index);
  }
}

void Browser::resource_done(const std::shared_ptr<PageLoad>& page, std::size_t index) {
  if (page->settled) return;
  if (index != 0 && page->in_flight > 0) --page->in_flight;
  if (page->remaining > 0) --page->remaining;

  if (index == 0 && !page->result.resources[0].ok &&
      page->result.resources[0].blocked == false) {
    // Main document failed outright: settle immediately.
    settle(page);
    return;
  }
  if (page->remaining == 0) {
    settle(page);
    return;
  }
  pump_queue(page);
}

void Browser::settle(const std::shared_ptr<PageLoad>& page) {
  if (page->settled) return;
  page->settled = true;
  sim_.cancel(page->timeout_event);

  PageLoadResult& result = page->result;
  result.plt = sim_.now() - page->started;
  result.fully_policy_compliant = true;
  for (const ResourceOutcome& outcome : result.resources) {
    if (outcome.blocked) {
      ++result.blocked;
    } else if (!outcome.ok) {
      ++result.failed;
    } else if (outcome.transport == proxy::TransportUsed::kScion) {
      ++result.over_scion;
      if (!outcome.policy_compliant) result.fully_policy_compliant = false;
    } else {
      ++result.over_ip;
      result.fully_policy_compliant = false;  // IP has no path guarantees
    }
  }
  result.ok = result.resources[0].ok && result.failed == 0;
  result.complete = result.ok && result.blocked == 0;
  result.indicator =
      BrowserExtension::indicator(result.over_scion, result.resources.size());
  page->on_loaded(std::move(result));
}

}  // namespace pan::browser
