// Lamport one-time signatures over SHA-256.
//
// The SCION control plane authenticates beacons with its control-plane PKI.
// To keep this repository dependency-free we implement Lamport signatures:
// real, verifiable public-key signatures built only from a hash function.
//
// Caveat documented in DESIGN.md: Lamport keys are one-time keys; the
// simulator reuses them across beacons. That is cryptographically unsound
// for production but irrelevant for reproducing the paper's behaviour —
// what matters is that tampered beacons fail verification, which they do.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "crypto/sha256.hpp"
#include "util/result.hpp"
#include "util/rng.hpp"

namespace pan::crypto {

inline constexpr std::size_t kSignatureBits = 256;

/// 256 pairs of 32-byte hash preimages (the secret key) — 16 KiB.
struct PrivateKey {
  std::array<std::array<Digest, 2>, kSignatureBits> secrets;
};

/// Hashes of the preimages — 16 KiB. Identified compactly by fingerprint().
struct PublicKey {
  std::array<std::array<Digest, 2>, kSignatureBits> hashes;

  /// 32-byte identifier: SHA-256 over the serialized key material.
  [[nodiscard]] Digest fingerprint() const;

  bool operator==(const PublicKey& other) const { return hashes == other.hashes; }
};

/// One revealed preimage per message-digest bit — 8 KiB.
struct Signature {
  std::array<Digest, kSignatureBits> revealed;

  [[nodiscard]] Bytes serialize() const;
  [[nodiscard]] static Result<Signature> deserialize(std::span<const std::uint8_t> data);
};

struct KeyPair {
  PrivateKey private_key;
  PublicKey public_key;
};

/// Deterministic key generation from an Rng (the simulation seeds per-AS
/// generators, so topologies are reproducible end to end).
[[nodiscard]] KeyPair generate_keypair(Rng& rng);

[[nodiscard]] Signature sign(const PrivateKey& key, std::span<const std::uint8_t> message);
[[nodiscard]] Signature sign(const PrivateKey& key, std::string_view message);

/// Hasher for Digest keys in unordered containers (digests are uniformly
/// distributed, so the first machine word is already a good hash).
struct DigestHasher {
  std::size_t operator()(const Digest& d) const {
    std::size_t h = 0;
    for (std::size_t i = 0; i < sizeof(h); ++i) h |= static_cast<std::size_t>(d[i]) << (8 * i);
    return h;
  }
};

/// Memoizes sha256(preimage) for revealed signature preimages.
///
/// The simulator reuses Lamport keypairs across beacons (see the caveat
/// above), so each key position only ever reveals one of two preimages.
/// Once a preimage's hash is cached, every later verification that reveals
/// the same preimage costs a 32-byte map lookup + memcmp instead of a
/// SHA-256 compression — which is where nearly all of verify()'s time goes
/// (256 compressions per signature).
class PreimageCache {
 public:
  /// Returns sha256(preimage), computing and memoizing on first sight.
  const Digest& hash_of(const Digest& preimage);

  [[nodiscard]] std::size_t size() const { return cache_.size(); }
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }

 private:
  std::unordered_map<Digest, Digest, DigestHasher> cache_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

[[nodiscard]] bool verify(const PublicKey& key, std::span<const std::uint8_t> message,
                          const Signature& sig);
[[nodiscard]] bool verify(const PublicKey& key, std::string_view message, const Signature& sig);
/// Cache-assisted verification; `cache` may be nullptr (falls back to the
/// plain path).
[[nodiscard]] bool verify(const PublicKey& key, std::span<const std::uint8_t> message,
                          const Signature& sig, PreimageCache* cache);

/// One unit of work for verify_batch. `key` and `sig` are borrowed; the
/// message bytes are owned so callers can batch inputs built on the fly
/// (e.g. PathSegment::signing_input).
struct VerifyJob {
  const PublicKey* key = nullptr;
  Bytes message;
  const Signature* sig = nullptr;
};

/// Verifies a batch of signatures sharing one preimage cache, short-
/// circuiting on the first failure. Returns true iff every job verifies.
/// With a warm cache (reused keys), throughput approaches memcmp speed.
[[nodiscard]] bool verify_batch(std::span<const VerifyJob> jobs, PreimageCache* cache = nullptr);

}  // namespace pan::crypto
