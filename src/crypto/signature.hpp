// Lamport one-time signatures over SHA-256.
//
// The SCION control plane authenticates beacons with its control-plane PKI.
// To keep this repository dependency-free we implement Lamport signatures:
// real, verifiable public-key signatures built only from a hash function.
//
// Caveat documented in DESIGN.md: Lamport keys are one-time keys; the
// simulator reuses them across beacons. That is cryptographically unsound
// for production but irrelevant for reproducing the paper's behaviour —
// what matters is that tampered beacons fail verification, which they do.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <string_view>

#include "crypto/sha256.hpp"
#include "util/result.hpp"
#include "util/rng.hpp"

namespace pan::crypto {

inline constexpr std::size_t kSignatureBits = 256;

/// 256 pairs of 32-byte hash preimages (the secret key) — 16 KiB.
struct PrivateKey {
  std::array<std::array<Digest, 2>, kSignatureBits> secrets;
};

/// Hashes of the preimages — 16 KiB. Identified compactly by fingerprint().
struct PublicKey {
  std::array<std::array<Digest, 2>, kSignatureBits> hashes;

  /// 32-byte identifier: SHA-256 over the serialized key material.
  [[nodiscard]] Digest fingerprint() const;

  bool operator==(const PublicKey& other) const { return hashes == other.hashes; }
};

/// One revealed preimage per message-digest bit — 8 KiB.
struct Signature {
  std::array<Digest, kSignatureBits> revealed;

  [[nodiscard]] Bytes serialize() const;
  [[nodiscard]] static Result<Signature> deserialize(std::span<const std::uint8_t> data);
};

struct KeyPair {
  PrivateKey private_key;
  PublicKey public_key;
};

/// Deterministic key generation from an Rng (the simulation seeds per-AS
/// generators, so topologies are reproducible end to end).
[[nodiscard]] KeyPair generate_keypair(Rng& rng);

[[nodiscard]] Signature sign(const PrivateKey& key, std::span<const std::uint8_t> message);
[[nodiscard]] Signature sign(const PrivateKey& key, std::string_view message);

[[nodiscard]] bool verify(const PublicKey& key, std::span<const std::uint8_t> message,
                          const Signature& sig);
[[nodiscard]] bool verify(const PublicKey& key, std::string_view message, const Signature& sig);

}  // namespace pan::crypto
