// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Used for the SCION control-plane PKI substitute: beacon signatures, TRC
// digests, and as the PRF underlying hop-field MACs (via HMAC). The
// implementation is a straightforward streaming Merkle–Damgård compressor;
// correctness is pinned by the FIPS test vectors in tests/crypto.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>

#include "util/bytes.hpp"

namespace pan::crypto {

inline constexpr std::size_t kSha256DigestSize = 32;
using Digest = std::array<std::uint8_t, kSha256DigestSize>;

class Sha256 {
 public:
  Sha256();

  /// Feed more input; may be called any number of times.
  void update(std::span<const std::uint8_t> data);
  void update(std::string_view s);

  /// Finalizes and returns the digest. The object must not be reused after
  /// finalize() without reset().
  [[nodiscard]] Digest finalize();

  void reset();

 private:
  void compress(const std::uint8_t block[64]);

  std::array<std::uint32_t, 8> state_{};
  std::uint64_t total_bytes_ = 0;
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffered_ = 0;
};

/// One-shot helpers.
[[nodiscard]] Digest sha256(std::span<const std::uint8_t> data);
[[nodiscard]] Digest sha256(std::string_view s);

/// Digest as lowercase hex (for logs, TRC ids).
[[nodiscard]] std::string hex_digest(const Digest& d);

}  // namespace pan::crypto
