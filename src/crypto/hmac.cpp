#include "crypto/hmac.hpp"

#include <algorithm>

namespace pan::crypto {
namespace {

constexpr std::size_t kBlockSize = 64;

}  // namespace

Digest hmac_sha256(std::span<const std::uint8_t> key, std::span<const std::uint8_t> message) {
  std::array<std::uint8_t, kBlockSize> block_key{};
  if (key.size() > kBlockSize) {
    const Digest hashed = sha256(key);
    std::copy(hashed.begin(), hashed.end(), block_key.begin());
  } else {
    std::copy(key.begin(), key.end(), block_key.begin());
  }

  std::array<std::uint8_t, kBlockSize> ipad{};
  std::array<std::uint8_t, kBlockSize> opad{};
  for (std::size_t i = 0; i < kBlockSize; ++i) {
    ipad[i] = block_key[i] ^ 0x36;
    opad[i] = block_key[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.update(std::span<const std::uint8_t>(ipad));
  inner.update(message);
  const Digest inner_digest = inner.finalize();

  Sha256 outer;
  outer.update(std::span<const std::uint8_t>(opad));
  outer.update(std::span<const std::uint8_t>(inner_digest));
  return outer.finalize();
}

Digest hmac_sha256(std::span<const std::uint8_t> key, std::string_view message) {
  return hmac_sha256(
      key, std::span<const std::uint8_t>(reinterpret_cast<const std::uint8_t*>(message.data()),
                                         message.size()));
}

ShortMac short_mac(std::span<const std::uint8_t> key, std::span<const std::uint8_t> message) {
  const Digest full = hmac_sha256(key, message);
  ShortMac mac{};
  std::copy_n(full.begin(), kShortMacSize, mac.begin());
  return mac;
}

bool mac_equal(const ShortMac& a, const ShortMac& b) {
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < kShortMacSize; ++i) diff |= a[i] ^ b[i];
  return diff == 0;
}

}  // namespace pan::crypto
