#include "crypto/hmac.hpp"

#include <algorithm>

namespace pan::crypto {
namespace {

constexpr std::size_t kBlockSize = 64;

struct Pads {
  std::array<std::uint8_t, kBlockSize> ipad{};
  std::array<std::uint8_t, kBlockSize> opad{};
};

Pads derive_pads(std::span<const std::uint8_t> key) {
  std::array<std::uint8_t, kBlockSize> block_key{};
  if (key.size() > kBlockSize) {
    const Digest hashed = sha256(key);
    std::copy(hashed.begin(), hashed.end(), block_key.begin());
  } else {
    std::copy(key.begin(), key.end(), block_key.begin());
  }

  Pads pads;
  for (std::size_t i = 0; i < kBlockSize; ++i) {
    pads.ipad[i] = block_key[i] ^ 0x36;
    pads.opad[i] = block_key[i] ^ 0x5c;
  }
  return pads;
}

}  // namespace

Digest hmac_sha256(std::span<const std::uint8_t> key, std::span<const std::uint8_t> message) {
  const Pads pads = derive_pads(key);

  Sha256 inner;
  inner.update(std::span<const std::uint8_t>(pads.ipad));
  inner.update(message);
  const Digest inner_digest = inner.finalize();

  Sha256 outer;
  outer.update(std::span<const std::uint8_t>(pads.opad));
  outer.update(std::span<const std::uint8_t>(inner_digest));
  return outer.finalize();
}

HmacKey::HmacKey(std::span<const std::uint8_t> key) {
  // ipad/opad are exactly one block, so both updates compress immediately and
  // leave nothing buffered: inner_/outer_ hold pure midstates.
  const Pads pads = derive_pads(key);
  inner_.update(std::span<const std::uint8_t>(pads.ipad));
  outer_.update(std::span<const std::uint8_t>(pads.opad));
}

Digest HmacKey::mac(std::span<const std::uint8_t> message) const {
  Sha256 inner = inner_;
  inner.update(message);
  const Digest inner_digest = inner.finalize();

  Sha256 outer = outer_;
  outer.update(std::span<const std::uint8_t>(inner_digest));
  return outer.finalize();
}

ShortMac HmacKey::short_mac(std::span<const std::uint8_t> message) const {
  const Digest full = mac(message);
  ShortMac truncated{};
  std::copy_n(full.begin(), kShortMacSize, truncated.begin());
  return truncated;
}

Digest hmac_sha256(std::span<const std::uint8_t> key, std::string_view message) {
  return hmac_sha256(
      key, std::span<const std::uint8_t>(reinterpret_cast<const std::uint8_t*>(message.data()),
                                         message.size()));
}

ShortMac short_mac(std::span<const std::uint8_t> key, std::span<const std::uint8_t> message) {
  const Digest full = hmac_sha256(key, message);
  ShortMac mac{};
  std::copy_n(full.begin(), kShortMacSize, mac.begin());
  return mac;
}

bool mac_equal(const ShortMac& a, const ShortMac& b) {
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < kShortMacSize; ++i) diff |= a[i] ^ b[i];
  return diff == 0;
}

}  // namespace pan::crypto
