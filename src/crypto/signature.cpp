#include "crypto/signature.hpp"

#include <algorithm>

#include "util/result.hpp"

namespace pan::crypto {
namespace {

Digest random_digest(Rng& rng) {
  Digest d{};
  for (std::size_t i = 0; i < d.size(); i += 8) {
    const std::uint64_t word = rng.next_u64();
    for (std::size_t j = 0; j < 8; ++j) {
      d[i + j] = static_cast<std::uint8_t>(word >> (8 * j));
    }
  }
  return d;
}

bool digest_bit(const Digest& d, std::size_t bit) {
  return ((d[bit / 8] >> (bit % 8)) & 1) != 0;
}

}  // namespace

Digest PublicKey::fingerprint() const {
  Sha256 h;
  for (const auto& pair : hashes) {
    h.update(std::span<const std::uint8_t>(pair[0]));
    h.update(std::span<const std::uint8_t>(pair[1]));
  }
  return h.finalize();
}

Bytes Signature::serialize() const {
  Bytes out;
  out.reserve(kSignatureBits * kSha256DigestSize);
  for (const Digest& d : revealed) {
    out.insert(out.end(), d.begin(), d.end());
  }
  return out;
}

Result<Signature> Signature::deserialize(std::span<const std::uint8_t> data) {
  if (data.size() != kSignatureBits * kSha256DigestSize) {
    return Err("signature has wrong length");
  }
  Signature sig;
  for (std::size_t i = 0; i < kSignatureBits; ++i) {
    std::copy_n(data.begin() + static_cast<std::ptrdiff_t>(i * kSha256DigestSize),
                kSha256DigestSize, sig.revealed[i].begin());
  }
  return sig;
}

KeyPair generate_keypair(Rng& rng) {
  KeyPair kp;
  for (std::size_t i = 0; i < kSignatureBits; ++i) {
    for (std::size_t b = 0; b < 2; ++b) {
      kp.private_key.secrets[i][b] = random_digest(rng);
      kp.public_key.hashes[i][b] =
          sha256(std::span<const std::uint8_t>(kp.private_key.secrets[i][b]));
    }
  }
  return kp;
}

Signature sign(const PrivateKey& key, std::span<const std::uint8_t> message) {
  const Digest msg_digest = sha256(message);
  Signature sig;
  for (std::size_t i = 0; i < kSignatureBits; ++i) {
    sig.revealed[i] = key.secrets[i][digest_bit(msg_digest, i) ? 1 : 0];
  }
  return sig;
}

Signature sign(const PrivateKey& key, std::string_view message) {
  return sign(key, std::span<const std::uint8_t>(
                       reinterpret_cast<const std::uint8_t*>(message.data()), message.size()));
}

const Digest& PreimageCache::hash_of(const Digest& preimage) {
  const auto it = cache_.find(preimage);
  if (it != cache_.end()) {
    ++hits_;
    return it->second;
  }
  ++misses_;
  return cache_.emplace(preimage, sha256(std::span<const std::uint8_t>(preimage))).first->second;
}

bool verify(const PublicKey& key, std::span<const std::uint8_t> message, const Signature& sig) {
  return verify(key, message, sig, nullptr);
}

bool verify(const PublicKey& key, std::span<const std::uint8_t> message, const Signature& sig,
            PreimageCache* cache) {
  const Digest msg_digest = sha256(message);
  for (std::size_t i = 0; i < kSignatureBits; ++i) {
    const Digest hashed =
        cache != nullptr ? cache->hash_of(sig.revealed[i])
                         : sha256(std::span<const std::uint8_t>(sig.revealed[i]));
    const auto expected = key.hashes[i][digest_bit(msg_digest, i) ? 1 : 0];
    if (hashed != expected) return false;
  }
  return true;
}

bool verify_batch(std::span<const VerifyJob> jobs, PreimageCache* cache) {
  for (const VerifyJob& job : jobs) {
    if (job.key == nullptr || job.sig == nullptr) return false;
    if (!verify(*job.key, std::span<const std::uint8_t>(job.message), *job.sig, cache)) {
      return false;
    }
  }
  return true;
}

bool verify(const PublicKey& key, std::string_view message, const Signature& sig) {
  return verify(key,
                std::span<const std::uint8_t>(
                    reinterpret_cast<const std::uint8_t*>(message.data()), message.size()),
                sig);
}

}  // namespace pan::crypto
