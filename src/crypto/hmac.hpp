// HMAC-SHA256 (RFC 2104) and helpers for truncated MACs.
//
// SCION hop fields carry a short MAC computed by each AS with a secret
// forwarding key; we model that with HMAC-SHA256 truncated to 6 bytes, the
// same width the SCION data plane uses.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>

#include "crypto/sha256.hpp"

namespace pan::crypto {

using Key = Bytes;  // arbitrary-length secret key

[[nodiscard]] Digest hmac_sha256(std::span<const std::uint8_t> key,
                                 std::span<const std::uint8_t> message);
[[nodiscard]] Digest hmac_sha256(std::span<const std::uint8_t> key, std::string_view message);

/// SCION-style 48-bit MAC: the first 6 bytes of the HMAC digest.
inline constexpr std::size_t kShortMacSize = 6;
using ShortMac = std::array<std::uint8_t, kShortMacSize>;

[[nodiscard]] ShortMac short_mac(std::span<const std::uint8_t> key,
                                 std::span<const std::uint8_t> message);

/// Precomputed HMAC-SHA256 key: the SHA-256 midstates after absorbing the
/// ipad and opad blocks, captured once at construction. Each mac() then costs
/// two compressions instead of four — the forwarding key is fixed for the
/// lifetime of a border router, so the data plane verifies every hop-field
/// MAC through one of these. Produces bit-identical output to hmac_sha256().
class HmacKey {
 public:
  explicit HmacKey(std::span<const std::uint8_t> key);

  /// Allocation-free (stack-copies the midstates and finalizes).
  [[nodiscard]] Digest mac(std::span<const std::uint8_t> message) const;
  [[nodiscard]] ShortMac short_mac(std::span<const std::uint8_t> message) const;

 private:
  Sha256 inner_;  // state after update(ipad)
  Sha256 outer_;  // state after update(opad)
};

/// Constant-time comparison (the simulator does not need side-channel
/// resistance, but getting the idiom right costs nothing).
[[nodiscard]] bool mac_equal(const ShortMac& a, const ShortMac& b);

}  // namespace pan::crypto
