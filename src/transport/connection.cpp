#include "transport/connection.hpp"

#include <algorithm>
#include <cassert>

#include "util/log.hpp"

namespace pan::transport {

namespace {
constexpr std::string_view kLog = "transport";
/// Reserved bytes so an ACK frame can always piggyback on a data packet.
constexpr std::size_t kAckReserve = 2 + kMaxAckRanges * 16;
}  // namespace

// ---------------------------------------------------------------- Stream --

Stream::Stream(Connection& conn, std::uint32_t id) : conn_(conn), id_(id) {}

void Stream::write(std::span<const std::uint8_t> data) {
  if (broken_ || fin_queued_) return;
  Chunk chunk;
  chunk.offset = next_send_offset_;
  chunk.data.assign(data.begin(), data.end());
  next_send_offset_ += data.size();
  pending_.push_back(std::move(chunk));
  conn_.pump();
}

void Stream::finish() {
  if (broken_ || fin_queued_) return;
  fin_queued_ = true;
  Chunk chunk;
  chunk.offset = next_send_offset_;
  chunk.fin = true;
  pending_.push_back(std::move(chunk));
  conn_.pump();
  conn_.note_awaiting_response();
}

void Stream::set_on_data(DataFn on_data) {
  on_data_ = std::move(on_data);
  flush_reassembly();
}

bool Stream::broken() const { return broken_; }

void Stream::on_stream_frame(const StreamFrame& frame) {
  if (broken_ || fin_delivered_) return;
  if (frame.fin) {
    fin_offset_ = frame.offset + frame.data.size();
  }
  if (!frame.data.empty() && frame.offset + frame.data.size() > next_recv_offset_) {
    reassembly_[frame.offset] = frame.data;
  }
  flush_reassembly();
}

void Stream::flush_reassembly() {
  if (!on_data_ || broken_) return;
  for (;;) {
    const auto it = reassembly_.begin();
    bool delivered = false;
    if (it != reassembly_.end() && it->first <= next_recv_offset_) {
      const std::uint64_t offset = it->first;
      Bytes data = std::move(it->second);
      reassembly_.erase(it);
      if (offset + data.size() > next_recv_offset_) {
        const std::size_t skip = static_cast<std::size_t>(next_recv_offset_ - offset);
        const std::span<const std::uint8_t> fresh(data.data() + skip, data.size() - skip);
        next_recv_offset_ += fresh.size();
        const bool fin_now = next_recv_offset_ == fin_offset_;
        if (fin_now) fin_delivered_ = true;
        on_data_(fresh, fin_now);
        delivered = true;
      } else {
        delivered = true;  // fully duplicate chunk, consumed silently
      }
    }
    if (!delivered) break;
    if (fin_delivered_) return;
  }
  // Pure FIN (no trailing data).
  if (!fin_delivered_ && next_recv_offset_ == fin_offset_) {
    fin_delivered_ = true;
    on_data_({}, true);
  }
}

void Stream::mark_broken() {
  if (broken_) return;
  broken_ = true;
  if (on_data_ && !fin_delivered_) {
    fin_delivered_ = true;
    on_data_({}, true);
  }
}

// ------------------------------------------------------------ Connection --

Connection::Connection(sim::Simulator& sim, Conduit conduit, Role role, std::uint64_t conn_id,
                       TransportConfig config)
    : sim_(sim),
      conduit_(std::move(conduit)),
      role_(role),
      conn_id_(conn_id),
      config_(std::move(config)),
      next_local_stream_(role == Role::kClient ? 0 : 1),
      srtt_(config_.initial_rtt),
      rttvar_(config_.initial_rtt / 2),
      cwnd_(config_.initial_cwnd_packets * 1200),
      ssthresh_(SIZE_MAX),
      ack_timer_(sim, [this] { maybe_send_pure_ack(); }),
      pto_timer_(sim, [this] { on_pto(); }),
      idle_timer_(sim, [this] { close("idle timeout"); }),
      keep_alive_timer_(sim, [this] { on_keep_alive(); }) {
  if (role_ == Role::kServer) {
    state_ = State::kConnecting;
  }
}

Connection::~Connection() = default;

std::size_t Connection::mss() const { return conduit_.max_payload; }

void Connection::start() {
  assert(role_ == Role::kClient);
  if (state_ != State::kIdle) return;
  state_ = State::kConnecting;
  connect_started_at_ = sim_.now();
  idle_timer_.arm(config_.idle_timeout);
  send_hello(0);
  if (config_.zero_rtt && config_.extra_handshake_rtts == 0) {
    // Early data: the server accepts stream frames as soon as it sees the
    // INITIAL (same datagram ordering on FIFO links), so the client may
    // treat the connection as usable immediately.
    establish();
  }
}

void Connection::send_hello(std::uint8_t round) {
  TransportPacket packet;
  packet.kind = config_.kind;
  packet.type = role_ == Role::kClient ? PacketType::kInitial : PacketType::kHandshake;
  packet.conn_id = conn_id_;
  HelloFrame hello;
  hello.reply = role_ == Role::kServer;
  hello.round = round;
  hello.alpn = config_.alpn;
  packet.frames.emplace_back(hello);

  SentPacket record;
  record.hello = true;
  record.hello_round = round;
  record.ack_eliciting = true;
  send_packet(std::move(packet), std::move(record));
}

void Connection::establish() {
  if (state_ != State::kConnecting) return;
  state_ = State::kEstablished;
  established_at_ = sim_.now();
  PAN_DEBUG(kLog) << to_string(config_.kind) << " conn " << conn_id_ << " established ("
                  << (role_ == Role::kClient ? "client" : "server") << ")";
  if (on_established_) on_established_();
  pump();
}

Stream& Connection::open_stream() {
  if (config_.kind == TransportKind::kTcpLite) {
    assert(next_local_stream_ == 0 && role_ == Role::kClient &&
           "tcp-lite carries exactly one client-opened stream");
  }
  const std::uint32_t id = next_local_stream_;
  next_local_stream_ += 2;
  auto stream = std::make_unique<Stream>(*this, id);
  Stream& ref = *stream;
  streams_[id] = std::move(stream);
  send_order_.push_back(id);
  return ref;
}

Stream* Connection::stream(std::uint32_t id) {
  const auto it = streams_.find(id);
  return it == streams_.end() ? nullptr : it->second.get();
}

void Connection::close(const std::string& reason) {
  if (state_ == State::kClosed) return;
  if (state_ != State::kIdle && conduit_.send) {
    TransportPacket packet;
    packet.kind = config_.kind;
    packet.type = PacketType::kData;
    packet.conn_id = conn_id_;
    packet.packet_number = next_pn_++;
    packet.frames.emplace_back(CloseFrame{reason});
    ++stats_.packets_sent;
    conduit_.send(serialize_packet_view(packet, conduit_.headroom));
  }
  state_ = State::kClosed;
  ack_timer_.cancel();
  pto_timer_.cancel();
  idle_timer_.cancel();
  in_flight_.clear();
  bytes_in_flight_ = 0;
  for (auto& [id, stream] : streams_) stream->mark_broken();
  if (on_closed_) {
    // Move out so a re-entrant close cannot fire it twice.
    auto cb = std::move(on_closed_);
    on_closed_ = nullptr;
    cb(reason);
  }
}

void Connection::set_conduit(Conduit conduit) {
  conduit_ = std::move(conduit);
  on_path_migrated();
}

void Connection::on_path_migrated() {
  if (state_ != State::kEstablished) return;
  // RFC 9000 §9.4: on path migration, reset the congestion controller — the
  // old path's state (including an ssthresh crushed by blackhole PTOs) says
  // nothing about the new path.
  pto_count_ = 0;
  cwnd_ = config_.initial_cwnd_packets * 1200;
  ssthresh_ = SIZE_MAX;
  have_rtt_sample_ = false;
  srtt_ = config_.initial_rtt;
  rttvar_ = config_.initial_rtt / 2;
  loss_recovery_end_pn_ = next_pn_;
  retransmit_all_outstanding();
}

void Connection::on_datagram(std::span<const std::uint8_t> data) {
  if (state_ == State::kClosed) return;
  auto parsed = parse_packet(data);
  if (!parsed.ok()) {
    PAN_DEBUG(kLog) << "conn " << conn_id_ << ": " << parsed.error();
    return;
  }
  const TransportPacket& packet = parsed.value();
  if (packet.kind != config_.kind || packet.conn_id != conn_id_) return;

  ++stats_.packets_received;
  stats_.bytes_received += data.size();
  idle_timer_.arm(config_.idle_timeout);

  bool ack_eliciting = false;
  for (const Frame& frame : packet.frames) {
    process_frame(frame, &ack_eliciting);
    if (state_ == State::kClosed) return;
  }
  record_received(packet.packet_number, ack_eliciting);
  pump();
}

void Connection::process_frame(const Frame& frame, bool* ack_eliciting) {
  if (const auto* hello = std::get_if<HelloFrame>(&frame)) {
    *ack_eliciting = true;
    if (role_ == Role::kServer && !hello->reply) {
      // Respond to this round; establish after the final round.
      send_hello(hello->round);
      if (hello->round >= config_.extra_handshake_rtts) establish();
    } else if (role_ == Role::kClient && hello->reply) {
      if (hello->round >= config_.extra_handshake_rtts) {
        establish();
      } else if (hello->round >= hello_rounds_done_) {
        hello_rounds_done_ = static_cast<std::uint8_t>(hello->round + 1);
        send_hello(hello_rounds_done_);
      }
    }
  } else if (const auto* stream_frame = std::get_if<StreamFrame>(&frame)) {
    *ack_eliciting = true;
    Stream* target = stream(stream_frame->stream_id);
    if (target == nullptr) {
      // Peer-initiated stream.
      auto created = std::make_unique<Stream>(*this, stream_frame->stream_id);
      target = created.get();
      streams_[stream_frame->stream_id] = std::move(created);
      send_order_.push_back(stream_frame->stream_id);
      if (on_stream_) on_stream_(*target);
    }
    target->on_stream_frame(*stream_frame);
  } else if (const auto* ack = std::get_if<AckFrame>(&frame)) {
    process_ack(*ack);
  } else if (const auto* close_frame = std::get_if<CloseFrame>(&frame)) {
    const std::string reason = "peer closed: " + close_frame->reason;
    // Suppress our own CLOSE echo.
    conduit_.send = nullptr;
    close(reason);
  } else if (std::get_if<PingFrame>(&frame) != nullptr) {
    *ack_eliciting = true;
  }
}

void Connection::process_ack(const AckFrame& ack) {
  bool newly_acked_largest = false;
  TimePoint largest_sent_at;
  std::vector<std::uint64_t> lost;

  for (auto it = in_flight_.begin(); it != in_flight_.end();) {
    const std::uint64_t pn = it->first;
    if (ack.contains(pn)) {
      ++stats_.packets_acked;
      bytes_in_flight_ -= std::min(bytes_in_flight_, it->second.size);
      if (pn == ack.largest()) {
        newly_acked_largest = true;
        largest_sent_at = it->second.sent_at;
      }
      // Congestion control growth.
      if (cwnd_ < ssthresh_) {
        cwnd_ += it->second.size;  // slow start
      } else {
        cwnd_ += std::max<std::size_t>(1, mss() * it->second.size / cwnd_);
      }
      if (it->second.hello && role_ == Role::kClient) {
        // Handshake progress is driven by HELLO_REPLY frames, nothing to do.
      }
      it = in_flight_.erase(it);
    } else if (pn + config_.reorder_threshold <= ack.largest()) {
      lost.push_back(pn);
      ++it;
    } else {
      ++it;
    }
  }

  if (newly_acked_largest) {
    const Duration sample = sim_.now() - largest_sent_at;
    if (!have_rtt_sample_) {
      srtt_ = sample;
      rttvar_ = sample / 2;
      have_rtt_sample_ = true;
    } else {
      const Duration err = sample > srtt_ ? sample - srtt_ : srtt_ - sample;
      rttvar_ = Duration{(3 * rttvar_.nanos() + err.nanos()) / 4};
      srtt_ = Duration{(7 * srtt_.nanos() + sample.nanos()) / 8};
    }
    pto_count_ = 0;
  }

  for (const std::uint64_t pn : lost) {
    auto it = in_flight_.find(pn);
    if (it == in_flight_.end()) continue;
    SentPacket packet = std::move(it->second);
    in_flight_.erase(it);
    declare_lost(pn, std::move(packet));
  }

  if (in_flight_.empty()) {
    pto_timer_.cancel();
  } else {
    arm_pto();
  }
}

void Connection::on_loss_event(std::uint64_t pn) {
  if (pn < loss_recovery_end_pn_) return;  // already reacted this window
  loss_recovery_end_pn_ = next_pn_;
  ssthresh_ = std::max(cwnd_ / 2, config_.min_cwnd_packets * mss());
  cwnd_ = ssthresh_;
}

void Connection::declare_lost(std::uint64_t pn, SentPacket&& packet) {
  ++stats_.packets_lost;
  bytes_in_flight_ -= std::min(bytes_in_flight_, packet.size);
  on_loss_event(pn);
  if (packet.hello) {
    if (state_ == State::kConnecting) send_hello(packet.hello_round);
    return;
  }
  // Re-queue the chunks at the front of their streams.
  for (SentChunkRef& ref : packet.chunks) {
    Stream* target = stream(ref.stream_id);
    if (target == nullptr || target->broken_) continue;
    Stream::Chunk chunk;
    chunk.offset = ref.offset;
    chunk.data = std::move(ref.data);
    chunk.fin = ref.fin;
    target->pending_.push_front(std::move(chunk));
  }
}

void Connection::retransmit_all_outstanding() {
  // Everything outstanding is presumed lost. Re-queue all stream chunks
  // (walking in reverse pn order with push_front keeps offsets ascending
  // ahead of fresh data) and clear the in-flight accounting. Re-queueing
  // only part of it while the rest still counted against a collapsed cwnd
  // would deadlock the sender (nothing fits in the window).
  std::map<std::uint64_t, SentPacket> lost;
  lost.swap(in_flight_);
  bytes_in_flight_ = 0;
  stats_.packets_lost += lost.size();

  bool resend_hello = false;
  std::uint8_t hello_round = 0;
  for (auto it = lost.rbegin(); it != lost.rend(); ++it) {
    SentPacket& packet = it->second;
    if (packet.hello) {
      resend_hello = true;
      hello_round = packet.hello_round;
      continue;
    }
    for (auto ref = packet.chunks.rbegin(); ref != packet.chunks.rend(); ++ref) {
      Stream* target = stream(ref->stream_id);
      if (target == nullptr || target->broken_) continue;
      Stream::Chunk chunk;
      chunk.offset = ref->offset;
      chunk.data = std::move(ref->data);
      chunk.fin = ref->fin;
      target->pending_.push_front(std::move(chunk));
    }
  }
  if (resend_hello && state_ == State::kConnecting) send_hello(hello_round);
  pump();
  if (!in_flight_.empty()) arm_pto();
}

void Connection::on_pto() {
  if (state_ == State::kClosed || in_flight_.empty()) return;
  ++stats_.pto_fired;
  ++pto_count_;
  // RTO semantics: collapse the window, then go-back-n.
  ssthresh_ = std::max(cwnd_ / 2, config_.min_cwnd_packets * mss());
  cwnd_ = config_.min_cwnd_packets * mss();
  loss_recovery_end_pn_ = next_pn_;
  retransmit_all_outstanding();
}

bool Connection::awaiting_response() const {
  for (const auto& [id, stream] : streams_) {
    if (stream->fin_queued_ && stream->pending_.empty() && !stream->fin_delivered_ &&
        !stream->broken_) {
      return true;
    }
  }
  return false;
}

void Connection::note_awaiting_response() {
  if (config_.keep_alive > Duration::zero() && state_ != State::kClosed) {
    keep_alive_timer_.arm_if_idle(config_.keep_alive);
  }
}

void Connection::on_keep_alive() {
  if (state_ == State::kClosed || !awaiting_response()) return;  // stop probing
  if (state_ == State::kEstablished) {
    TransportPacket packet;
    packet.kind = config_.kind;
    packet.type = PacketType::kData;
    packet.conn_id = conn_id_;
    packet.frames.emplace_back(PingFrame{});
    if (ack_pending_) {
      packet.frames.emplace_back(build_ack());
      ack_pending_ = false;
      ack_eliciting_since_ack_ = 0;
      ack_timer_.cancel();
    }
    SentPacket record;
    record.ack_eliciting = true;
    send_packet(std::move(packet), std::move(record));
  }
  keep_alive_timer_.arm(config_.keep_alive);
}

Duration Connection::pto_interval() const {
  Duration base = srtt_ + Duration{4 * rttvar_.nanos()} + config_.max_ack_delay;
  for (std::uint32_t i = 0; i < pto_count_ && i < 8; ++i) base = base * 2;
  return base;
}

void Connection::arm_pto() { pto_timer_.arm(pto_interval()); }

void Connection::record_received(std::uint64_t pn, bool ack_eliciting) {
  // Merge pn into the descending range list.
  bool merged = false;
  for (std::size_t i = 0; i < recv_ranges_.size(); ++i) {
    AckRange& range = recv_ranges_[i];
    if (pn >= range.first && pn <= range.last) {
      merged = true;  // duplicate
      break;
    }
    if (pn == range.last + 1) {
      range.last = pn;
      if (i > 0 && recv_ranges_[i - 1].first == range.last + 1) {
        recv_ranges_[i - 1].first = range.first;
        recv_ranges_.erase(recv_ranges_.begin() + static_cast<std::ptrdiff_t>(i));
      }
      merged = true;
      break;
    }
    if (pn + 1 == range.first) {
      range.first = pn;
      if (i + 1 < recv_ranges_.size() && recv_ranges_[i + 1].last + 1 == range.first) {
        range.first = recv_ranges_[i + 1].first;
        recv_ranges_.erase(recv_ranges_.begin() + static_cast<std::ptrdiff_t>(i + 1));
      }
      merged = true;
      break;
    }
    if (pn > range.last) {
      recv_ranges_.insert(recv_ranges_.begin() + static_cast<std::ptrdiff_t>(i),
                          AckRange{pn, pn});
      merged = true;
      break;
    }
  }
  if (!merged) recv_ranges_.push_back(AckRange{pn, pn});
  if (recv_ranges_.size() > kMaxAckRanges) recv_ranges_.resize(kMaxAckRanges);

  if (ack_eliciting) {
    ack_pending_ = true;
    ++ack_eliciting_since_ack_;
    if (ack_eliciting_since_ack_ >= 2) {
      maybe_send_pure_ack();
    } else {
      ack_timer_.arm_if_idle(config_.max_ack_delay);
    }
  }
}

AckFrame Connection::build_ack() const {
  AckFrame ack;
  ack.ranges = recv_ranges_;
  return ack;
}

void Connection::maybe_send_pure_ack() {
  if (!ack_pending_ || state_ == State::kClosed) return;
  TransportPacket packet;
  packet.kind = config_.kind;
  packet.type = PacketType::kData;
  packet.conn_id = conn_id_;
  packet.packet_number = next_pn_++;
  packet.frames.emplace_back(build_ack());
  ack_pending_ = false;
  ack_eliciting_since_ack_ = 0;
  ack_timer_.cancel();
  ++stats_.packets_sent;
  net::PacketView wire = serialize_packet_view(packet, conduit_.headroom);
  stats_.bytes_sent += wire.size();
  if (conduit_.send) conduit_.send(std::move(wire));
}

void Connection::send_packet(TransportPacket packet, SentPacket record) {
  packet.packet_number = next_pn_++;
  net::PacketView wire = serialize_packet_view(packet, conduit_.headroom);
  record.sent_at = sim_.now();
  record.size = wire.size();
  ++stats_.packets_sent;
  stats_.bytes_sent += wire.size();
  if (record.ack_eliciting) {
    bytes_in_flight_ += record.size;
    in_flight_[packet.packet_number] = std::move(record);
    arm_pto();
  }
  if (conduit_.send) conduit_.send(std::move(wire));
}

void Connection::pump() {
  if (state_ != State::kEstablished) return;

  while (bytes_in_flight_ < cwnd_) {
    // Gather chunks round-robin across streams up to the datagram budget.
    std::size_t budget = mss();
    if (budget < packet_header_size() + kAckReserve + stream_frame_overhead() + 1) break;
    budget -= packet_header_size() + kAckReserve;

    TransportPacket packet;
    packet.kind = config_.kind;
    packet.type = PacketType::kData;
    packet.conn_id = conn_id_;
    SentPacket record;

    bool any = false;
    std::size_t visited = 0;
    while (budget > stream_frame_overhead() && visited < send_order_.size()) {
      if (send_order_.empty()) break;
      rr_cursor_ %= send_order_.size();
      Stream* target = stream(send_order_[rr_cursor_]);
      ++rr_cursor_;
      ++visited;
      if (target == nullptr || target->pending_.empty()) continue;

      Stream::Chunk& chunk = target->pending_.front();
      const std::size_t room = budget - stream_frame_overhead();
      StreamFrame frame;
      frame.stream_id = target->id_;
      frame.offset = chunk.offset;
      if (chunk.data.size() <= room) {
        frame.data = std::move(chunk.data);
        frame.fin = chunk.fin;
        target->pending_.pop_front();
      } else {
        frame.data.assign(chunk.data.begin(),
                          chunk.data.begin() + static_cast<std::ptrdiff_t>(room));
        chunk.data.erase(chunk.data.begin(), chunk.data.begin() + static_cast<std::ptrdiff_t>(room));
        chunk.offset += room;
      }
      budget -= stream_frame_overhead() + frame.data.size();
      record.chunks.push_back(
          SentChunkRef{frame.stream_id, frame.offset, frame.data, frame.fin});
      packet.frames.emplace_back(std::move(frame));
      any = true;
      visited = 0;  // a successful pull restarts the round-robin scan
    }

    if (!any) break;
    if (ack_pending_) {
      packet.frames.emplace_back(build_ack());
      ack_pending_ = false;
      ack_eliciting_since_ack_ = 0;
      ack_timer_.cancel();
    }
    record.ack_eliciting = true;
    send_packet(std::move(packet), std::move(record));
  }
}

}  // namespace pan::transport
