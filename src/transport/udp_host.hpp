// Transport-over-legacy-UDP glue: a client dialer and a server acceptor
// that demultiplex datagrams to Connection objects.
#pragma once

#include <memory>
#include <unordered_map>

#include "net/host.hpp"
#include "transport/connection.hpp"

namespace pan::transport {

/// Process-wide connection id source (single-threaded simulator).
[[nodiscard]] std::uint64_t next_conn_id();

class UdpTransportClient {
 public:
  UdpTransportClient(net::Host& host, net::Endpoint server, TransportConfig config);

  [[nodiscard]] Connection& connection() { return *conn_; }
  [[nodiscard]] net::Endpoint local_endpoint() const { return socket_->local_endpoint(); }

 private:
  std::unique_ptr<net::UdpSocket> socket_;
  std::unique_ptr<Connection> conn_;
};

class UdpTransportServer {
 public:
  using AcceptFn = std::function<void(Connection&)>;

  UdpTransportServer(net::Host& host, std::uint16_t port, TransportConfig config,
                     AcceptFn on_accept);

  [[nodiscard]] std::size_t connection_count() const { return conns_.size(); }
  [[nodiscard]] std::uint16_t port() const { return socket_->local_port(); }

  /// Drops closed connections (called opportunistically on new datagrams).
  void reap_closed();

 private:
  void on_datagram(const net::Endpoint& from, net::PacketView payload);

  net::Host& host_;
  TransportConfig config_;
  AcceptFn on_accept_;
  std::unique_ptr<net::UdpSocket> socket_;
  std::unordered_map<std::uint64_t, std::unique_ptr<Connection>> conns_;
};

}  // namespace pan::transport
