// Wire format of the transport (QUIC-lite / TCP-lite) packets.
//
// Layout: u8 kind magic, u8 packet type, u64 connection id, u64 packet
// number, then a sequence of frames until the end of the datagram.
// Frames: HELLO / HELLO_REPLY (handshake, carry the ALPN), STREAM
// (stream id, offset, fin, data), ACK (ranges of received packet numbers),
// CLOSE, PING.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "net/packet.hpp"
#include "util/bytes.hpp"
#include "util/result.hpp"

namespace pan::transport {

enum class TransportKind : std::uint8_t { kQuicLite = 0xA1, kTcpLite = 0xB2 };

[[nodiscard]] const char* to_string(TransportKind k);

enum class PacketType : std::uint8_t { kInitial = 0, kHandshake = 1, kData = 2 };

struct HelloFrame {
  bool reply = false;
  /// Handshake round (0-based); used to emulate extra handshake RTTs.
  std::uint8_t round = 0;
  std::string alpn;
};

struct StreamFrame {
  std::uint32_t stream_id = 0;
  std::uint64_t offset = 0;
  bool fin = false;
  Bytes data;
};

struct AckRange {
  std::uint64_t first = 0;  // inclusive
  std::uint64_t last = 0;   // inclusive
};

struct AckFrame {
  /// Ranges in descending order of packet number, at most kMaxAckRanges.
  std::vector<AckRange> ranges;

  [[nodiscard]] std::uint64_t largest() const {
    return ranges.empty() ? 0 : ranges.front().last;
  }
  [[nodiscard]] bool contains(std::uint64_t pn) const;
};

inline constexpr std::size_t kMaxAckRanges = 16;

struct CloseFrame {
  std::string reason;
};

struct PingFrame {};

using Frame = std::variant<HelloFrame, StreamFrame, AckFrame, CloseFrame, PingFrame>;

struct TransportPacket {
  TransportKind kind = TransportKind::kQuicLite;
  PacketType type = PacketType::kData;
  std::uint64_t conn_id = 0;
  std::uint64_t packet_number = 0;
  std::vector<Frame> frames;
};

[[nodiscard]] Bytes serialize_packet(const TransportPacket& packet);
[[nodiscard]] Result<TransportPacket> parse_packet(std::span<const std::uint8_t> data);

/// Exact wire size serialize_packet would produce (for pre-sizing buffers).
[[nodiscard]] std::size_t serialized_packet_size(const TransportPacket& packet);

/// Serializes into a fresh buffer with `headroom` bytes reserved in front,
/// so the layer below (the SCION stack) can prepend its header in place
/// instead of copying the datagram. Byte-identical to serialize_packet.
[[nodiscard]] net::PacketView serialize_packet_view(const TransportPacket& packet,
                                                    std::size_t headroom);

/// Size in bytes a STREAM frame with `data_len` payload will occupy.
[[nodiscard]] std::size_t stream_frame_overhead();
/// Fixed per-packet header size.
[[nodiscard]] std::size_t packet_header_size();

}  // namespace pan::transport
