// The byte-stream interface HTTP runs on.
//
// Both a TCP-lite connection (its single stream) and a QUIC-lite stream
// implement this, which is what lets the proxy map an HTTP/1 TCP stream
// onto a single bidirectional QUIC stream — the exact trick the paper's
// prototype uses ("we map the TCP data stream into a single bidirectional
// QUIC stream").
#pragma once

#include <cstdint>
#include <functional>
#include <span>

namespace pan::transport {

class Bytestream {
 public:
  virtual ~Bytestream() = default;

  /// Queues bytes for ordered, reliable delivery.
  virtual void write(std::span<const std::uint8_t> data) = 0;
  /// Half-closes the sending direction (FIN).
  virtual void finish() = 0;

  /// Registers the reader. `fin` is true exactly once, with the final chunk
  /// (possibly empty).
  using DataFn = std::function<void(std::span<const std::uint8_t> data, bool fin)>;
  virtual void set_on_data(DataFn on_data) = 0;

  /// True once the peer's FIN (or a connection close) has been seen.
  [[nodiscard]] virtual bool remote_finished() const = 0;
  /// True if the stream can no longer deliver or accept data (reset/closed).
  [[nodiscard]] virtual bool broken() const = 0;
};

}  // namespace pan::transport
