#include "transport/scion_host.hpp"

#include "scion/header.hpp"
#include "transport/udp_host.hpp"
#include "util/log.hpp"

namespace pan::transport {

namespace {
constexpr std::string_view kLog = "scion-host";
constexpr std::size_t kDefaultDatagram = 1200;
}  // namespace

std::size_t scion_max_payload(const scion::DataplanePath& path, std::size_t mtu) {
  const std::size_t header = scion::scion_header_size(path);
  if (mtu <= header + 64) return 576;  // degenerate, keep a usable floor
  return std::min(kDefaultDatagram, mtu - header);
}

ScionTransportClient::ScionTransportClient(scion::ScionStack& stack,
                                           scion::ScionEndpoint server,
                                           scion::DataplanePath path, TransportConfig config)
    : server_(server), path_(std::move(path)) {
  socket_ = stack.bind(0, [this](const scion::ScionEndpoint& /*from*/,
                                 const scion::DataplanePath& /*reply*/,
                                 net::PacketView payload) {
    conn_->on_datagram(payload.span());
  });
  conn_ = std::make_unique<Connection>(stack.host().simulator(), make_conduit(),
                                       Connection::Role::kClient, next_conn_id(), config);
}

Conduit ScionTransportClient::make_conduit() {
  Conduit conduit;
  conduit.max_payload = scion_max_payload(path_, 1500);
  // Reserve exactly the SCION header for this path in front of every
  // datagram: the stack prepends in place and nothing is ever re-copied.
  conduit.headroom = scion::scion_header_size(path_);
  conduit.send = [this](net::PacketView datagram) {
    socket_->send_to(server_, path_, std::move(datagram));
  };
  return conduit;
}

void ScionTransportClient::set_path(scion::DataplanePath path) {
  path_ = std::move(path);
  conn_->set_conduit(make_conduit());
}

ScionTransportServer::ScionTransportServer(scion::ScionStack& stack, std::uint16_t port,
                                           TransportConfig config, AcceptFn on_accept)
    : stack_(stack), config_(std::move(config)), on_accept_(std::move(on_accept)) {
  socket_ = stack.bind(port, [this](const scion::ScionEndpoint& from,
                                    const scion::DataplanePath& reply_path,
                                    net::PacketView payload) {
    on_datagram(from, reply_path, std::move(payload));
  });
}

void ScionTransportServer::on_datagram(const scion::ScionEndpoint& from,
                                       const scion::DataplanePath& reply_path,
                                       net::PacketView payload) {
  auto parsed = parse_packet(payload.span());
  if (!parsed.ok()) {
    PAN_DEBUG(kLog) << "undecodable SCION datagram from " << from.to_string();
    return;
  }
  const std::uint64_t conn_id = parsed.value().conn_id;
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) {
    if (parsed.value().type != PacketType::kInitial) return;
    reap_closed();
    PeerState state;
    state.from = from;
    state.reply_path = reply_path;
    Conduit conduit;
    conduit.max_payload = scion_max_payload(reply_path, 1500);
    conduit.headroom = scion::scion_header_size(reply_path);
    conduit.send = [this, conn_id](net::PacketView datagram) {
      const auto peer = conns_.find(conn_id);
      if (peer == conns_.end()) return;
      socket_->send_to(peer->second.from, peer->second.reply_path, std::move(datagram));
    };
    state.conn = std::make_unique<Connection>(stack_.host().simulator(), std::move(conduit),
                                              Connection::Role::kServer, conn_id, config_);
    it = conns_.emplace(conn_id, std::move(state)).first;
    if (on_accept_) on_accept_(*it->second.conn);
  } else {
    // Follow client path migration. When the reply path actually changed,
    // jump-start retransmission: our outstanding data was black-holing on
    // the old path and the PTO backoff may have grown large.
    const bool migrated = !(it->second.reply_path == reply_path);
    it->second.from = from;
    it->second.reply_path = reply_path;
    if (migrated) {
      // The new reply path needs a (possibly) different SCION header size in
      // front of future datagrams — keep the zero-copy prepend exact.
      it->second.conn->set_conduit_headroom(scion::scion_header_size(reply_path));
      it->second.conn->on_path_migrated();
    }
  }
  it->second.conn->on_datagram(payload.span());
}

void ScionTransportServer::reap_closed() {
  for (auto it = conns_.begin(); it != conns_.end();) {
    if (it->second.conn->state() == Connection::State::kClosed) {
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace pan::transport
