// Transport-over-SCION glue: dialer and acceptor running QUIC-lite over
// SCION/UDP sockets ("quic-go over pan", in the paper's terms).
//
// The client pins a selected dataplane path and can migrate it mid-
// connection (set_path). The server replies over the reversed path of the
// most recent client packet, so it needs no daemon and follows client path
// migration automatically.
#pragma once

#include <memory>
#include <unordered_map>

#include "scion/stack.hpp"
#include "transport/connection.hpp"

namespace pan::transport {

class ScionTransportClient {
 public:
  ScionTransportClient(scion::ScionStack& stack, scion::ScionEndpoint server,
                       scion::DataplanePath path, TransportConfig config);

  [[nodiscard]] Connection& connection() { return *conn_; }
  /// Migrates subsequent packets onto a different path.
  void set_path(scion::DataplanePath path);
  [[nodiscard]] const scion::DataplanePath& path() const { return path_; }

 private:
  [[nodiscard]] Conduit make_conduit();

  scion::ScionEndpoint server_;
  scion::DataplanePath path_;
  std::unique_ptr<scion::ScionSocket> socket_;
  std::unique_ptr<Connection> conn_;
};

class ScionTransportServer {
 public:
  using AcceptFn = std::function<void(Connection&)>;

  ScionTransportServer(scion::ScionStack& stack, std::uint16_t port, TransportConfig config,
                       AcceptFn on_accept);

  [[nodiscard]] std::size_t connection_count() const { return conns_.size(); }
  [[nodiscard]] std::uint16_t port() const { return socket_->local_port(); }
  void reap_closed();

 private:
  struct PeerState {
    std::unique_ptr<Connection> conn;
    scion::ScionEndpoint from;
    scion::DataplanePath reply_path;
  };

  void on_datagram(const scion::ScionEndpoint& from, const scion::DataplanePath& reply_path,
                   net::PacketView payload);

  scion::ScionStack& stack_;
  TransportConfig config_;
  AcceptFn on_accept_;
  std::unique_ptr<scion::ScionSocket> socket_;
  std::unordered_map<std::uint64_t, PeerState> conns_;
};

/// Largest transport datagram that fits the path MTU once the SCION header
/// for `path` and link framing are accounted for.
[[nodiscard]] std::size_t scion_max_payload(const scion::DataplanePath& path, std::size_t mtu);

}  // namespace pan::transport
