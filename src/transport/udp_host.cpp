#include "transport/udp_host.hpp"

#include "util/log.hpp"

namespace pan::transport {

namespace {
constexpr std::string_view kLog = "udp-host";
}

std::uint64_t next_conn_id() {
  static std::uint64_t counter = 0x1000;
  return ++counter;
}

UdpTransportClient::UdpTransportClient(net::Host& host, net::Endpoint server,
                                       TransportConfig config) {
  socket_ = host.udp_bind(0, [this](const net::Endpoint& /*from*/, net::PacketView payload) {
    conn_->on_datagram(payload.span());
  });
  Conduit conduit;
  conduit.max_payload = 1200;
  conduit.send = [socket = socket_.get(), server](net::PacketView datagram) {
    socket->send_to(server, std::move(datagram));
  };
  conn_ = std::make_unique<Connection>(host.simulator(), std::move(conduit),
                                       Connection::Role::kClient, next_conn_id(), config);
}

UdpTransportServer::UdpTransportServer(net::Host& host, std::uint16_t port,
                                       TransportConfig config, AcceptFn on_accept)
    : host_(host), config_(std::move(config)), on_accept_(std::move(on_accept)) {
  socket_ = host.udp_bind(port, [this](const net::Endpoint& from, net::PacketView payload) {
    on_datagram(from, std::move(payload));
  });
}

void UdpTransportServer::on_datagram(const net::Endpoint& from, net::PacketView payload) {
  auto parsed = parse_packet(payload.span());
  if (!parsed.ok()) {
    PAN_DEBUG(kLog) << "undecodable datagram from " << from.to_string();
    return;
  }
  const std::uint64_t conn_id = parsed.value().conn_id;
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) {
    if (parsed.value().type != PacketType::kInitial) {
      PAN_DEBUG(kLog) << "non-initial packet for unknown conn " << conn_id;
      return;
    }
    reap_closed();
    Conduit conduit;
    conduit.max_payload = 1200;
    conduit.send = [socket = socket_.get(), from](net::PacketView datagram) {
      socket->send_to(from, std::move(datagram));
    };
    auto conn = std::make_unique<Connection>(host_.simulator(), std::move(conduit),
                                             Connection::Role::kServer, conn_id, config_);
    it = conns_.emplace(conn_id, std::move(conn)).first;
    if (on_accept_) on_accept_(*it->second);
  }
  it->second->on_datagram(payload.span());
}

void UdpTransportServer::reap_closed() {
  for (auto it = conns_.begin(); it != conns_.end();) {
    if (it->second->state() == Connection::State::kClosed) {
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace pan::transport
