// The reliable transport engine shared by QUIC-lite and TCP-lite.
//
// One Connection speaks the frame format in frames.hpp over a datagram
// Conduit (plain UDP or UDP-over-SCION). It provides:
//   - a 1-RTT handshake (HELLO / HELLO_REPLY), with configurable extra
//     rounds to emulate e.g. TLS-over-TCP setup costs;
//   - ordered reliable byte streams with FIN semantics (Bytestream);
//   - ACK-based loss detection (packet-threshold reordering) plus a probe
//     timeout (PTO) with exponential backoff;
//   - NewReno congestion control (slow start, AIMD, collapse on PTO);
//   - delayed ACKs (every second ack-eliciting packet or max_ack_delay).
//
// TCP-lite is the same engine restricted to a single stream with its own
// wire magic: the paper maps HTTP/1 TCP bytestreams onto one bidirectional
// QUIC stream, so modeling both kinds over one engine mirrors the prototype
// while keeping the handshake/recovery dynamics that affect page load time.
//
// Flow control windows are not modeled (simulated endpoints have ample
// memory); congestion control alone limits data in flight. Documented in
// DESIGN.md.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>

#include "sim/timer.hpp"
#include "transport/bytestream.hpp"
#include "transport/frames.hpp"

namespace pan::transport {

/// Where datagrams go. `send` must deliver (or drop) asynchronously via the
/// simulator; `max_payload` bounds serialized packet size. `headroom` bytes
/// are reserved in front of every serialized datagram so the layer below
/// (the SCION stack) can prepend its header in place — the datagram is then
/// serialized exactly once on its whole way to the wire.
struct Conduit {
  std::function<void(net::PacketView)> send;
  std::size_t max_payload = 1200;
  std::size_t headroom = 0;
};

struct TransportConfig {
  TransportKind kind = TransportKind::kQuicLite;
  std::string alpn = "http/1.1";
  std::size_t initial_cwnd_packets = 10;
  std::size_t min_cwnd_packets = 2;
  Duration initial_rtt = milliseconds(100);
  Duration max_ack_delay = milliseconds(25);
  std::uint64_t reorder_threshold = 3;
  Duration idle_timeout = seconds(30);
  /// Additional handshake round trips before the connection is established
  /// (0 = QUIC-style 1-RTT; 1 emulates TLS-1.3-over-TCP's extra RTT).
  std::uint8_t extra_handshake_rtts = 0;
  /// Client-side 0-RTT (session resumption): the connection counts as
  /// established immediately at start(), so early data rides right behind
  /// the INITIAL packet and the response arrives one round trip sooner.
  /// Only valid with extra_handshake_rtts == 0 and when the application has
  /// a resumption ticket for the server (it has connected before).
  bool zero_rtt = false;
  /// When nonzero, the connection sends PING probes at this interval while
  /// any local stream awaits a response (request FIN sent, peer FIN not yet
  /// received). A pure receiver otherwise goes silent and would never learn
  /// that its path died (no ACKs to lose); the probes keep path failure
  /// detection (PTO, SCMP) alive. Probing stops once nothing is awaited.
  Duration keep_alive = Duration::zero();
};

class Connection;

class Stream final : public Bytestream {
 public:
  Stream(Connection& conn, std::uint32_t id);

  [[nodiscard]] std::uint32_t id() const { return id_; }

  void write(std::span<const std::uint8_t> data) override;
  void finish() override;
  void set_on_data(DataFn on_data) override;
  [[nodiscard]] bool remote_finished() const override { return fin_delivered_; }
  [[nodiscard]] bool broken() const override;

  /// Bytes received and delivered so far.
  [[nodiscard]] std::uint64_t bytes_received() const { return next_recv_offset_; }

 private:
  friend class Connection;

  struct Chunk {
    std::uint64_t offset = 0;
    Bytes data;
    bool fin = false;
  };

  void on_stream_frame(const StreamFrame& frame);
  void flush_reassembly();
  void mark_broken();

  Connection& conn_;
  std::uint32_t id_;

  // Send side.
  std::deque<Chunk> pending_;  // not yet (re)transmitted
  std::uint64_t next_send_offset_ = 0;
  bool fin_queued_ = false;

  // Receive side.
  std::map<std::uint64_t, Bytes> reassembly_;
  std::uint64_t next_recv_offset_ = 0;
  std::uint64_t fin_offset_ = UINT64_MAX;
  bool fin_delivered_ = false;
  bool broken_ = false;
  DataFn on_data_;
};

class Connection {
 public:
  enum class Role { kClient, kServer };
  enum class State { kIdle, kConnecting, kEstablished, kClosed };

  struct Stats {
    std::uint64_t packets_sent = 0;
    std::uint64_t packets_received = 0;
    std::uint64_t packets_lost = 0;
    std::uint64_t packets_acked = 0;
    std::uint64_t pto_fired = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t bytes_received = 0;
  };

  Connection(sim::Simulator& sim, Conduit conduit, Role role, std::uint64_t conn_id,
             TransportConfig config);
  ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  [[nodiscard]] State state() const { return state_; }
  [[nodiscard]] Role role() const { return role_; }
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] std::uint64_t conn_id() const { return conn_id_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] Duration smoothed_rtt() const { return srtt_; }
  /// When the client-side handshake started (start()) and completed
  /// (establish()); origin for connections that never reached the state.
  [[nodiscard]] TimePoint connect_started_at() const { return connect_started_at_; }
  [[nodiscard]] TimePoint established_at() const { return established_at_; }
  /// Client handshake wall time on the simulated clock (zero for 0-RTT
  /// resumption and for connections not yet established).
  [[nodiscard]] Duration handshake_time() const {
    return established_at_ < connect_started_at_ ? Duration::zero()
                                                 : established_at_ - connect_started_at_;
  }
  [[nodiscard]] std::size_t cwnd_bytes() const { return cwnd_; }
  [[nodiscard]] const TransportConfig& config() const { return config_; }

  /// Client: begins the handshake. Server connections establish on demand.
  void start();

  /// Feeds an incoming datagram (from the socket/demux layer).
  void on_datagram(std::span<const std::uint8_t> data);

  /// Opens a locally initiated bidirectional stream. TCP-lite connections
  /// allow exactly one. Streams are owned by the connection.
  Stream& open_stream();
  [[nodiscard]] Stream* stream(std::uint32_t id);

  void set_on_established(std::function<void()> fn) { on_established_ = std::move(fn); }
  /// Fires when the peer opens a stream.
  void set_on_stream(std::function<void(Stream&)> fn) { on_stream_ = std::move(fn); }
  void set_on_closed(std::function<void(const std::string&)> fn) {
    on_closed_ = std::move(fn);
  }

  void close(const std::string& reason);

  /// Swaps the conduit (SCION path migration); in-flight data redelivers via
  /// normal loss recovery, jump-started by on_path_migrated().
  void set_conduit(Conduit conduit);

  /// Adjusts only the reserved header headroom (server-side reply-path
  /// migration: the route changed under the same conduit, so future
  /// datagrams need a different SCION header size in front).
  void set_conduit_headroom(std::size_t headroom) { conduit_.headroom = headroom; }

  /// Signals that the underlying path changed (client conduit swap, or a
  /// server observing a new reply path): resets the PTO backoff — which may
  /// have grown exponentially while the old path was black-holing — and
  /// retransmits outstanding data immediately on the new path.
  void on_path_migrated();

 private:
  friend class Stream;

  struct SentChunkRef {
    std::uint32_t stream_id = 0;
    std::uint64_t offset = 0;
    Bytes data;
    bool fin = false;
  };
  struct SentPacket {
    TimePoint sent_at;
    std::size_t size = 0;
    std::vector<SentChunkRef> chunks;
    bool hello = false;
    std::uint8_t hello_round = 0;
    bool ack_eliciting = false;
  };

  void pump();
  void send_hello(std::uint8_t round);
  void establish();
  void note_awaiting_response();
  [[nodiscard]] bool awaiting_response() const;
  void on_keep_alive();
  void process_frame(const Frame& frame, bool* ack_eliciting);
  void process_ack(const AckFrame& ack);
  void declare_lost(std::uint64_t pn, SentPacket&& packet);
  void on_pto();
  /// Go-back-n: re-queues every outstanding chunk and pumps.
  void retransmit_all_outstanding();
  void record_received(std::uint64_t pn, bool ack_eliciting);
  [[nodiscard]] AckFrame build_ack() const;
  void maybe_send_pure_ack();
  void send_packet(TransportPacket packet, SentPacket record);
  [[nodiscard]] Duration pto_interval() const;
  void arm_pto();
  [[nodiscard]] std::size_t bytes_in_flight() const { return bytes_in_flight_; }
  void on_loss_event(std::uint64_t pn);
  [[nodiscard]] std::size_t mss() const;

  sim::Simulator& sim_;
  Conduit conduit_;
  Role role_;
  std::uint64_t conn_id_;
  TransportConfig config_;
  State state_ = State::kIdle;

  // Streams.
  std::unordered_map<std::uint32_t, std::unique_ptr<Stream>> streams_;
  std::vector<std::uint32_t> send_order_;  // round-robin cursor source
  std::size_t rr_cursor_ = 0;
  std::uint32_t next_local_stream_;

  // Packet number spaces (single space for simplicity).
  std::uint64_t next_pn_ = 1;
  std::map<std::uint64_t, SentPacket> in_flight_;
  std::size_t bytes_in_flight_ = 0;

  // ACK state (receiving side).
  std::vector<AckRange> recv_ranges_;  // descending, merged
  bool ack_pending_ = false;
  std::uint32_t ack_eliciting_since_ack_ = 0;

  // RTT / congestion.
  Duration srtt_;
  Duration rttvar_;
  bool have_rtt_sample_ = false;
  std::size_t cwnd_;
  std::size_t ssthresh_;
  std::uint64_t loss_recovery_end_pn_ = 0;
  std::uint32_t pto_count_ = 0;

  // Handshake.
  std::uint8_t hello_rounds_done_ = 0;
  TimePoint connect_started_at_ = TimePoint::origin();
  TimePoint established_at_ = TimePoint::origin();

  sim::Timer ack_timer_;
  sim::Timer pto_timer_;
  sim::Timer idle_timer_;
  sim::Timer keep_alive_timer_;

  std::function<void()> on_established_;
  std::function<void(Stream&)> on_stream_;
  std::function<void(const std::string&)> on_closed_;
  Stats stats_;
};

}  // namespace pan::transport
