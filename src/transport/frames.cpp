#include "transport/frames.hpp"

#include <cassert>

#include "util/buffer.hpp"

namespace pan::transport {
namespace {

enum class FrameType : std::uint8_t {
  kHello = 1,
  kStream = 3,
  kAck = 4,
  kClose = 5,
  kPing = 6,
};

// Templated over the writer so the growing (ByteWriter) and pre-sized
// headroom (util::SpanWriter) paths share one definition.
template <typename Writer>
void write_frame(Writer& w, const Frame& frame) {
  if (const auto* hello = std::get_if<HelloFrame>(&frame)) {
    w.u8(static_cast<std::uint8_t>(FrameType::kHello));
    w.u8(hello->reply ? 1 : 0);
    w.u8(hello->round);
    w.lp_str(hello->alpn);
  } else if (const auto* stream = std::get_if<StreamFrame>(&frame)) {
    w.u8(static_cast<std::uint8_t>(FrameType::kStream));
    w.u32(stream->stream_id);
    w.u64(stream->offset);
    w.u8(stream->fin ? 1 : 0);
    w.lp_bytes(stream->data);
  } else if (const auto* ack = std::get_if<AckFrame>(&frame)) {
    w.u8(static_cast<std::uint8_t>(FrameType::kAck));
    w.u8(static_cast<std::uint8_t>(ack->ranges.size()));
    for (const AckRange& range : ack->ranges) {
      w.u64(range.first);
      w.u64(range.last);
    }
  } else if (const auto* close = std::get_if<CloseFrame>(&frame)) {
    w.u8(static_cast<std::uint8_t>(FrameType::kClose));
    w.lp_str(close->reason);
  } else if (std::get_if<PingFrame>(&frame) != nullptr) {
    w.u8(static_cast<std::uint8_t>(FrameType::kPing));
  }
}

std::size_t frame_wire_size(const Frame& frame) {
  if (const auto* hello = std::get_if<HelloFrame>(&frame)) {
    return 1 + 1 + 1 + 2 + hello->alpn.size();
  }
  if (const auto* stream = std::get_if<StreamFrame>(&frame)) {
    return stream_frame_overhead() + stream->data.size();
  }
  if (const auto* ack = std::get_if<AckFrame>(&frame)) {
    return 1 + 1 + ack->ranges.size() * 16;
  }
  if (const auto* close = std::get_if<CloseFrame>(&frame)) {
    return 1 + 2 + close->reason.size();
  }
  return 1;  // PING
}

template <typename Writer>
void write_packet(Writer& w, const TransportPacket& packet) {
  w.u8(static_cast<std::uint8_t>(packet.kind));
  w.u8(static_cast<std::uint8_t>(packet.type));
  w.u64(packet.conn_id);
  w.u64(packet.packet_number);
  for (const Frame& frame : packet.frames) {
    write_frame(w, frame);
  }
}

Result<Frame> read_frame(ByteReader& r) {
  const auto type = static_cast<FrameType>(r.u8());
  switch (type) {
    case FrameType::kHello: {
      HelloFrame f;
      f.reply = r.u8() != 0;
      f.round = r.u8();
      f.alpn = r.lp_str();
      return Frame{f};
    }
    case FrameType::kStream: {
      StreamFrame f;
      f.stream_id = r.u32();
      f.offset = r.u64();
      f.fin = r.u8() != 0;
      f.data = r.lp_bytes();
      return Frame{std::move(f)};
    }
    case FrameType::kAck: {
      AckFrame f;
      const std::uint8_t n = r.u8();
      if (n > kMaxAckRanges) return Err("too many ack ranges");
      f.ranges.reserve(n);
      for (std::uint8_t i = 0; i < n; ++i) {
        AckRange range;
        range.first = r.u64();
        range.last = r.u64();
        f.ranges.push_back(range);
      }
      return Frame{std::move(f)};
    }
    case FrameType::kClose: {
      CloseFrame f;
      f.reason = r.lp_str();
      return Frame{std::move(f)};
    }
    case FrameType::kPing:
      return Frame{PingFrame{}};
  }
  return Err("unknown frame type " + std::to_string(static_cast<int>(type)));
}

}  // namespace

const char* to_string(TransportKind k) {
  switch (k) {
    case TransportKind::kQuicLite: return "quic-lite";
    case TransportKind::kTcpLite: return "tcp-lite";
  }
  return "?";
}

bool AckFrame::contains(std::uint64_t pn) const {
  for (const AckRange& range : ranges) {
    if (pn >= range.first && pn <= range.last) return true;
  }
  return false;
}

Bytes serialize_packet(const TransportPacket& packet) {
  ByteWriter w;
  write_packet(w, packet);
  return std::move(w).take();
}

std::size_t serialized_packet_size(const TransportPacket& packet) {
  std::size_t size = packet_header_size();
  for (const Frame& frame : packet.frames) {
    size += frame_wire_size(frame);
  }
  return size;
}

net::PacketView serialize_packet_view(const TransportPacket& packet, std::size_t headroom) {
  net::PacketView view =
      net::PacketView::with_headroom(headroom, serialized_packet_size(packet));
  util::SpanWriter w(view.mutable_span());
  write_packet(w, packet);
  assert(!w.failed() && w.remaining() == 0);
  return view;
}

Result<TransportPacket> parse_packet(std::span<const std::uint8_t> data) {
  ByteReader r(data);
  TransportPacket packet;
  const std::uint8_t kind = r.u8();
  if (kind != static_cast<std::uint8_t>(TransportKind::kQuicLite) &&
      kind != static_cast<std::uint8_t>(TransportKind::kTcpLite)) {
    return Err("bad transport magic");
  }
  packet.kind = static_cast<TransportKind>(kind);
  packet.type = static_cast<PacketType>(r.u8());
  packet.conn_id = r.u64();
  packet.packet_number = r.u64();
  while (!r.failed() && r.remaining() > 0) {
    auto frame = read_frame(r);
    if (!frame.ok()) return Err(frame.error());
    packet.frames.push_back(std::move(frame).take());
  }
  if (r.failed()) return Err("truncated transport packet");
  return packet;
}

std::size_t stream_frame_overhead() { return 1 + 4 + 8 + 1 + 2; }

std::size_t packet_header_size() { return 1 + 1 + 8 + 8; }

}  // namespace pan::transport
