#include "scion/segment.hpp"

#include "crypto/sha256.hpp"
#include "util/strings.hpp"

namespace pan::scion {
namespace {

void write_link_meta(ByteWriter& w, const LinkMeta& m) {
  w.u64(static_cast<std::uint64_t>(m.latency.nanos()));
  w.u64(static_cast<std::uint64_t>(m.bandwidth_bps));
  w.u32(static_cast<std::uint32_t>(m.mtu));
  w.u32(static_cast<std::uint32_t>(m.loss_rate * 1e9));
  w.u64(static_cast<std::uint64_t>(m.jitter.nanos()));
  w.u64(static_cast<std::uint64_t>(m.co2_g_per_gb * 1e3));
  w.u64(static_cast<std::uint64_t>(m.cost_per_gb * 1e3));
}

void write_as_meta(ByteWriter& w, const AsMeta& m) {
  w.lp_str(m.country);
  w.u32(static_cast<std::uint32_t>(m.ethics_rating * 1e3));
  w.u8(m.qos_capable ? 1 : 0);
  w.u8(m.allied ? 1 : 0);
  w.u64(static_cast<std::uint64_t>(m.internal_co2_g_per_gb * 1e3));
}

void write_entry(ByteWriter& w, const AsEntry& entry, bool include_signature) {
  serialize_hop_field(w, entry.hop);
  write_link_meta(w, entry.ingress_link);
  write_as_meta(w, entry.as_meta);
  w.u16(static_cast<std::uint16_t>(entry.peers.size()));
  for (const PeerEntry& peer : entry.peers) {
    serialize_hop_field(w, peer.hop);
    w.u64(peer.peer_as.packed());
    w.u16(peer.peer_if);
    write_link_meta(w, peer.peer_link);
  }
  if (include_signature) {
    const Bytes sig = entry.signature.serialize();
    w.lp_bytes(sig);
  }
}

}  // namespace

const char* to_string(SegmentType t) {
  switch (t) {
    case SegmentType::kCore: return "core";
    case SegmentType::kDown: return "down";
  }
  return "?";
}

std::string PathSegment::id() const {
  crypto::Sha256 h;
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(type));
  w.u64(origin.packed());
  w.u32(origin_ts);
  for (const AsEntry& entry : entries) {
    w.u64(entry.hop.isd_as.packed());
    w.u16(entry.hop.in_if);
    w.u16(entry.hop.out_if);
  }
  h.update(std::span<const std::uint8_t>(w.bytes()));
  return crypto::hex_digest(h.finalize()).substr(0, 16);
}

crypto::Digest PathSegment::content_digest() const {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(type));
  w.u64(origin.packed());
  w.u32(origin_ts);
  for (const AsEntry& entry : entries) {
    write_entry(w, entry, /*include_signature=*/true);
  }
  return crypto::sha256(std::span<const std::uint8_t>(w.bytes()));
}

Bytes PathSegment::signing_input(std::size_t index) const {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(type));
  w.u64(origin.packed());
  w.u32(origin_ts);
  for (std::size_t i = 0; i < index && i < entries.size(); ++i) {
    write_entry(w, entries[i], /*include_signature=*/true);
  }
  if (index < entries.size()) {
    write_entry(w, entries[index], /*include_signature=*/false);
  }
  return std::move(w).take();
}

bool verify_segment(const PathSegment& segment, const TrustStore& trust,
                    crypto::PreimageCache* cache) {
  if (segment.entries.empty()) return false;
  if (segment.origin != segment.entries.front().hop.isd_as) return false;
  std::vector<crypto::VerifyJob> jobs;
  jobs.reserve(segment.entries.size());
  for (std::size_t i = 0; i < segment.entries.size(); ++i) {
    const AsEntry& entry = segment.entries[i];
    const crypto::PublicKey* key = trust.verified_key(entry.hop.isd_as);
    if (key == nullptr) return false;
    jobs.push_back(crypto::VerifyJob{key, segment.signing_input(i), &entry.signature});
  }
  return crypto::verify_batch(jobs, cache);
}

}  // namespace pan::scion
