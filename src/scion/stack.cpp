#include "scion/stack.hpp"

#include <cassert>

#include "util/log.hpp"

namespace pan::scion {

namespace {
constexpr std::string_view kLog = "snet";
}

ScionStack::ScionStack(net::Host& host, IsdAsn local_as) : host_(host), local_as_(local_as) {
  host_.set_scion_handler(
      [this](net::Packet&& p, net::IfId in_if) { handle(std::move(p), in_if); });
}

std::unique_ptr<ScionSocket> ScionStack::bind(std::uint16_t port, RecvFn on_receive) {
  if (port == 0) {
    port = allocate_ephemeral_port();
    if (port == 0) return nullptr;
  } else if (sockets_.contains(port)) {
    return nullptr;
  }
  auto socket = std::make_unique<ScionSocket>(*this, port, std::move(on_receive));
  sockets_[port] = socket.get();
  return socket;
}

std::uint16_t ScionStack::allocate_ephemeral_port() {
  for (std::uint32_t attempt = 0; attempt < 20000; ++attempt) {
    const std::uint16_t candidate =
        static_cast<std::uint16_t>(45000 + (next_ephemeral_ - 45000 + attempt) % 20000);
    if (!sockets_.contains(candidate)) {
      next_ephemeral_ = static_cast<std::uint16_t>(candidate + 1);
      if (next_ephemeral_ >= 65000) next_ephemeral_ = 45000;
      return candidate;
    }
  }
  return 0;
}

void ScionStack::send(std::uint16_t src_port, const ScionEndpoint& dst,
                      const DataplanePath& path, net::PacketView payload,
                      ReservationId reservation) {
  ScionHeader header;
  header.src = local_addr();
  header.dst = dst.addr;
  header.src_port = src_port;
  header.dst_port = dst.port;
  header.reservation_id = reservation;
  header.path = path;
  header.cur_seg = 0;
  header.cur_hop = 0;

  net::Packet packet;
  packet.proto = net::Protocol::kScion;
  packet.src = host_.address();
  packet.dst = dst.addr.host;
  packet.src_port = src_port;
  packet.dst_port = dst.port;

  const std::size_t header_size = scion_header_size(header.path);
  if (payload.headroom() >= header_size) {
    // Zero-copy fast path: the transport serialized its frame into a buffer
    // with SCION headroom reserved, so the header is written in place right
    // in front of the datagram.
    util::SpanWriter w(payload.prepend(header_size));
    write_scion_header(w, header);
    assert(!w.failed() && w.remaining() == 0);
    packet.payload = std::move(payload);
  } else {
    packet.payload = serialize_scion_packet(header, payload.span());
  }
  ++sent_;
  host_.send_packet(std::move(packet));
}

void ScionStack::handle(net::Packet&& packet, net::IfId /*in_if*/) {
  auto parsed = parse_scion_packet(packet.payload.span());
  if (!parsed.ok()) {
    ++parse_errors_;
    PAN_DEBUG(kLog) << "parse error: " << parsed.error();
    return;
  }
  ScionHeader& header = parsed.value().header;
  if (header.dst.ia != local_as_ || header.dst.host != host_.address()) {
    PAN_DEBUG(kLog) << "misdelivered SCION packet for " << header.dst.to_string();
    return;
  }
  if (header.next_proto == kProtoScmp) {
    const auto message = ScmpMessage::parse(parsed.value().payload);
    if (!message.ok()) {
      ++parse_errors_;
      return;
    }
    ++scmp_received_;
    PAN_DEBUG(kLog) << "received " << message.value().to_string();
    // Copy the subscriber list: handlers may (un)subscribe re-entrantly.
    const auto subscribers = scmp_subscribers_;
    for (const auto& [id, fn] : subscribers) {
      if (fn) fn(message.value());
    }
    return;
  }
  const auto it = sockets_.find(header.dst_port);
  if (it == sockets_.end()) {
    PAN_DEBUG(kLog) << "no SCION socket on port " << header.dst_port;
    return;
  }
  ++received_;
  const ScionEndpoint from{header.src, header.src_port};
  const DataplanePath reply_path = header.path.reversed();
  // Zero-copy delivery: hand the receiver a sub-view of the packet buffer
  // starting at the payload (the header bytes stay in the shared storage).
  it->second->deliver(from, reply_path,
                      packet.payload.subview(parsed.value().payload_offset));
}

void ScionStack::unbind(std::uint16_t port) { sockets_.erase(port); }

std::uint64_t ScionStack::subscribe_scmp(ScmpFn on_message) {
  const std::uint64_t id = next_scmp_id_++;
  scmp_subscribers_[id] = std::move(on_message);
  return id;
}

void ScionStack::unsubscribe_scmp(std::uint64_t id) { scmp_subscribers_.erase(id); }

ScionSocket::ScionSocket(ScionStack& stack, std::uint16_t port, ScionStack::RecvFn on_receive)
    : stack_(stack), port_(port), on_receive_(std::move(on_receive)) {}

ScionSocket::~ScionSocket() { stack_.unbind(port_); }

void ScionSocket::send_to(const ScionEndpoint& dst, const DataplanePath& path,
                          net::PacketView payload, ReservationId reservation) {
  stack_.send(port_, dst, path, std::move(payload), reservation);
}

void ScionSocket::deliver(const ScionEndpoint& from, const DataplanePath& reply_path,
                          net::PacketView payload) {
  if (on_receive_) on_receive_(from, reply_path, std::move(payload));
}

}  // namespace pan::scion
