// Hop fields: the per-AS forwarding authorizations inside SCION paths.
//
// Each AS MACs its hop field with a local secret forwarding key during
// beaconing; border routers re-verify on every data packet, so end hosts can
// only use paths the control plane actually constructed (path authorization).
//
// Simplification vs. production SCION (documented in DESIGN.md): the MAC is
// computed over the direction-normalized interface pair (min, max) rather
// than a per-segment chained input. This keeps hop fields valid when a
// segment is traversed in reverse (up-segment use) without per-direction
// flags in the MAC input, while preserving the property tests care about:
// any tampering with ISD-AS, interfaces, or timestamp invalidates the MAC.
#pragma once

#include <cstdint>
#include <span>

#include "crypto/hmac.hpp"
#include "scion/types.hpp"
#include "util/bytes.hpp"

namespace pan::scion {

/// Secret forwarding key held by each AS's border routers.
using ForwardingKey = crypto::Key;

/// Wire size of one serialized hop field (isd_as + in_if + out_if + expiry +
/// short MAC).
inline constexpr std::size_t kHopFieldWireSize = 8 + 2 + 2 + 4 + crypto::kShortMacSize;

struct HopField {
  IsdAsn isd_as;
  /// Interface toward the beacon origin (0 at the origin AS).
  IfaceId in_if = kNoIface;
  /// Interface away from the beacon origin (0 at the segment's last AS).
  IfaceId out_if = kNoIface;
  /// Expiry of the authorization, seconds since the epoch of the beacon
  /// origination timestamp.
  std::uint32_t expiry_s = 0;
  crypto::ShortMac mac{};

  bool operator==(const HopField&) const = default;
};

/// The MAC input bytes for a hop field under origination timestamp `ts`.
[[nodiscard]] Bytes hop_mac_input(const HopField& hf, std::uint32_t origin_ts);

/// Computes (and installs) the MAC for `hf` using the AS forwarding key.
void seal_hop_field(HopField& hf, std::uint32_t origin_ts, const ForwardingKey& key);

[[nodiscard]] bool verify_hop_field(const HopField& hf, std::uint32_t origin_ts,
                                    const ForwardingKey& key);

/// Hot-path variants over a precomputed crypto::HmacKey: two SHA-256
/// compressions per MAC instead of four. Border routers hold one HmacKey for
/// their (fixed) forwarding key and verify every data packet through it.
void seal_hop_field(HopField& hf, std::uint32_t origin_ts, const crypto::HmacKey& key);

[[nodiscard]] bool verify_hop_field(const HopField& hf, std::uint32_t origin_ts,
                                    const crypto::HmacKey& key);

/// Serializes one hop field. Templated over the writer (ByteWriter grows a
/// Bytes, util::SpanWriter targets reserved headroom) so both paths emit
/// byte-identical output from one definition.
template <typename Writer>
void serialize_hop_field(Writer& w, const HopField& hf) {
  w.u64(hf.isd_as.packed());
  w.u16(hf.in_if);
  w.u16(hf.out_if);
  w.u32(hf.expiry_s);
  w.raw(std::span<const std::uint8_t>(hf.mac));
}

[[nodiscard]] HopField parse_hop_field(ByteReader& r);

/// Decodes one hop field from exactly kHopFieldWireSize bytes. Allocation
/// free (unlike parse_hop_field, whose ByteReader::raw heap-allocates the
/// MAC) — this is the hot-path decode used by ScionHeaderView. The caller
/// guarantees `wire.size() >= kHopFieldWireSize`.
[[nodiscard]] HopField decode_hop_field(const std::uint8_t* wire);

}  // namespace pan::scion
