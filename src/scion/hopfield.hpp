// Hop fields: the per-AS forwarding authorizations inside SCION paths.
//
// Each AS MACs its hop field with a local secret forwarding key during
// beaconing; border routers re-verify on every data packet, so end hosts can
// only use paths the control plane actually constructed (path authorization).
//
// Simplification vs. production SCION (documented in DESIGN.md): the MAC is
// computed over the direction-normalized interface pair (min, max) rather
// than a per-segment chained input. This keeps hop fields valid when a
// segment is traversed in reverse (up-segment use) without per-direction
// flags in the MAC input, while preserving the property tests care about:
// any tampering with ISD-AS, interfaces, or timestamp invalidates the MAC.
#pragma once

#include <cstdint>

#include "crypto/hmac.hpp"
#include "scion/types.hpp"
#include "util/bytes.hpp"

namespace pan::scion {

/// Secret forwarding key held by each AS's border routers.
using ForwardingKey = crypto::Key;

struct HopField {
  IsdAsn isd_as;
  /// Interface toward the beacon origin (0 at the origin AS).
  IfaceId in_if = kNoIface;
  /// Interface away from the beacon origin (0 at the segment's last AS).
  IfaceId out_if = kNoIface;
  /// Expiry of the authorization, seconds since the epoch of the beacon
  /// origination timestamp.
  std::uint32_t expiry_s = 0;
  crypto::ShortMac mac{};

  bool operator==(const HopField&) const = default;
};

/// The MAC input bytes for a hop field under origination timestamp `ts`.
[[nodiscard]] Bytes hop_mac_input(const HopField& hf, std::uint32_t origin_ts);

/// Computes (and installs) the MAC for `hf` using the AS forwarding key.
void seal_hop_field(HopField& hf, std::uint32_t origin_ts, const ForwardingKey& key);

[[nodiscard]] bool verify_hop_field(const HopField& hf, std::uint32_t origin_ts,
                                    const ForwardingKey& key);

void serialize_hop_field(ByteWriter& w, const HopField& hf);
[[nodiscard]] HopField parse_hop_field(ByteReader& r);

}  // namespace pan::scion
