// SCION border router: the data plane.
//
// Installed as the SCION handler of an AS's legacy router node. For every
// packet it parses the SCION header, checks the current hop field belongs to
// this AS, verifies the hop-field MAC against the AS forwarding key (path
// authorization), handles segment crossovers, and either forwards out the
// authorized egress interface or delivers to the destination host.
//
// SCION interface ids are the router's link interface ids offset by one
// (SCION reserves 0 for "no interface").
#pragma once

#include "net/router.hpp"
#include "scion/colibri.hpp"
#include "scion/header.hpp"
#include "scion/hopfield.hpp"
#include "scion/scmp.hpp"

namespace pan::scion {

struct BorderRouterConfig {
  bool verify_macs = true;
  /// Per-packet header processing time.
  Duration processing_delay = microseconds(5);
  /// When nonzero, hop fields whose expiry precedes this "current unix time"
  /// are rejected. (The simulator's beacon timestamps are synthetic, so the
  /// check is opt-in.)
  std::uint32_t current_unix_time = 0;
  /// Colibri reservation validation/policing (null = reservation ids are
  /// ignored and packets stay best-effort).
  ReservationManager* reservations = nullptr;
};

struct BorderRouterStats {
  std::uint64_t forwarded = 0;
  std::uint64_t delivered = 0;
  std::uint64_t drop_parse = 0;
  std::uint64_t drop_mac = 0;
  std::uint64_t drop_wrong_as = 0;
  std::uint64_t drop_malformed_path = 0;
  std::uint64_t drop_no_host = 0;
  std::uint64_t drop_expired = 0;
  std::uint64_t drop_link_down = 0;
  /// Packets with an invalid/over-rate reservation id.
  std::uint64_t drop_reservation = 0;
  /// SCMP error reports originated by this router.
  std::uint64_t scmp_sent = 0;

  [[nodiscard]] std::uint64_t total_drops() const {
    return drop_parse + drop_mac + drop_wrong_as + drop_malformed_path + drop_no_host +
           drop_expired + drop_link_down + drop_reservation;
  }
};

class BorderRouter {
 public:
  BorderRouter(net::Router& router, IsdAsn local, ForwardingKey key,
               BorderRouterConfig config = {});

  BorderRouter(const BorderRouter&) = delete;
  BorderRouter& operator=(const BorderRouter&) = delete;

  [[nodiscard]] IsdAsn local_as() const { return local_; }
  [[nodiscard]] const BorderRouterStats& stats() const { return stats_; }

  /// Updates the "current unix time" used for hop-field expiry checks
  /// (0 disables the check).
  void set_current_time(std::uint32_t unix_time) { config_.current_unix_time = unix_time; }

  /// Converts SCION interface id <-> router link interface id.
  [[nodiscard]] static net::IfId to_net_if(IfaceId scion_if) {
    return static_cast<net::IfId>(scion_if - 1);
  }
  [[nodiscard]] static IfaceId to_scion_if(net::IfId net_if) {
    return static_cast<IfaceId>(net_if + 1);
  }

 private:
  enum class HopCheck : std::uint8_t { kOk, kWrongAs, kBadMac, kExpired };

  void handle(net::Packet&& packet, net::IfId in_if);
  void process(net::Packet&& packet);
  void deliver_local(const ScionHeader& header, net::Packet&& packet);
  void send_out(const ScionHeader& header, IfaceId egress, std::uint8_t cur_seg,
                std::uint8_t cur_hop, net::Packet&& packet);
  [[nodiscard]] HopCheck check_hop(const DataplaneSegment& seg, std::size_t hop_index,
                                   bool is_scmp);
  /// Sends an SCMP failure report back toward the source over the reversed
  /// traversed prefix ending at (cur_seg, cur_hop). No-op for SCMP packets
  /// themselves (no error loops) and for unspecified sources.
  void send_scmp(const ScionHeader& original, std::size_t cur_seg, std::size_t cur_hop,
                 ScmpType type, IfaceId interface);

  net::Router& router_;
  IsdAsn local_;
  ForwardingKey key_;
  BorderRouterConfig config_;
  BorderRouterStats stats_;
};

}  // namespace pan::scion
