// SCION border router: the data plane.
//
// Installed as the SCION handler of an AS's legacy router node. For every
// packet it inspects the SCION header, checks the current hop field belongs
// to this AS, verifies the hop-field MAC against the AS forwarding key (path
// authorization), handles segment crossovers, and either forwards out the
// authorized egress interface or delivers to the destination host.
//
// The steady-state hop path is zero-copy and allocation-free: a lazy
// ScionHeaderView validates bounds once, decodes only the cursor and the
// current hop field, and the cursor advance patches two bytes in place
// (decide_hop below is that exact path, exposed for benches and tests). The
// eager full-reparse pipeline is kept behind BorderRouterConfig::
// legacy_reparse as the reference implementation for the forwarding
// equivalence tests and as the bench baseline.
//
// SCION interface ids are the router's link interface ids offset by one
// (SCION reserves 0 for "no interface").
#pragma once

#include "net/router.hpp"
#include "obs/metrics.hpp"
#include "scion/colibri.hpp"
#include "scion/header.hpp"
#include "scion/hopfield.hpp"
#include "scion/scmp.hpp"

namespace pan::scion {

struct BorderRouterConfig {
  bool verify_macs = true;
  /// Per-packet header processing time.
  Duration processing_delay = microseconds(5);
  /// When nonzero, hop fields whose expiry precedes this "current unix time"
  /// are rejected. (The simulator's beacon timestamps are synthetic, so the
  /// check is opt-in.)
  std::uint32_t current_unix_time = 0;
  /// Colibri reservation validation/policing (null = reservation ids are
  /// ignored and packets stay best-effort).
  ReservationManager* reservations = nullptr;
  /// Use the eager full-reparse pipeline (pre-zero-copy behaviour). Kept for
  /// the forwarding equivalence tests and as the bench baseline.
  bool legacy_reparse = false;
  /// Per-router forward-latency histogram (null = not recorded). Records
  /// now - packet.sent_at on every forward: the queueing + propagation +
  /// processing of the hop the packet just completed. The histogram is
  /// pre-registered by Topology::finalize, so recording stays allocation-free
  /// on the zero-copy hop path.
  obs::Histogram* forward_latency = nullptr;
};

struct BorderRouterStats {
  std::uint64_t forwarded = 0;
  std::uint64_t delivered = 0;
  std::uint64_t drop_parse = 0;
  std::uint64_t drop_mac = 0;
  std::uint64_t drop_wrong_as = 0;
  std::uint64_t drop_malformed_path = 0;
  std::uint64_t drop_no_host = 0;
  std::uint64_t drop_expired = 0;
  std::uint64_t drop_link_down = 0;
  /// Packets with an invalid/over-rate reservation id.
  std::uint64_t drop_reservation = 0;
  /// SCMP error reports originated by this router.
  std::uint64_t scmp_sent = 0;

  [[nodiscard]] std::uint64_t total_drops() const {
    return drop_parse + drop_mac + drop_wrong_as + drop_malformed_path + drop_no_host +
           drop_expired + drop_link_down + drop_reservation;
  }
};

/// The pure per-hop forwarding decision over raw packet bytes: everything
/// between "SCION bytes arrived" and "hand the packet back to the network",
/// minus router-state concerns (link liveness, reservation policing, SCMP
/// origination). Allocation-free; exercised directly by bench_micro and the
/// zero-allocation tests so they measure exactly what the router runs.
struct HopDecision {
  enum class Action : std::uint8_t {
    kForward,        // send out `egress`, cursor advanced to (next_seg, next_hop)
    kDeliver,        // destination AS reached; hand to `dst`
    kDropParse,
    kDropWrongAs,
    kDropMac,
    kDropExpired,    // hop authorization expired; originate SCMP expired-hop
    kDropMalformed,
  };
  Action action = Action::kDropParse;
  IfaceId egress = kNoIface;
  std::uint8_t next_seg = 0;
  std::uint8_t next_hop = 0;
  /// Destination address (kDeliver).
  ScionAddr dst;
  std::uint32_t reservation_id = 0;
};

[[nodiscard]] HopDecision decide_hop(std::span<const std::uint8_t> packet_bytes, IsdAsn local,
                                     const crypto::HmacKey& key, const BorderRouterConfig& config);

/// Convenience overload for tests: precomputes the HmacKey per call. The
/// router's steady state holds one HmacKey for the router's lifetime.
[[nodiscard]] HopDecision decide_hop(std::span<const std::uint8_t> packet_bytes, IsdAsn local,
                                     const ForwardingKey& key, const BorderRouterConfig& config);

class BorderRouter {
 public:
  BorderRouter(net::Router& router, IsdAsn local, ForwardingKey key,
               BorderRouterConfig config = {});

  BorderRouter(const BorderRouter&) = delete;
  BorderRouter& operator=(const BorderRouter&) = delete;

  [[nodiscard]] IsdAsn local_as() const { return local_; }
  [[nodiscard]] const BorderRouterStats& stats() const { return stats_; }

  /// Updates the "current unix time" used for hop-field expiry checks
  /// (0 disables the check).
  void set_current_time(std::uint32_t unix_time) { config_.current_unix_time = unix_time; }

  /// Converts SCION interface id <-> router link interface id.
  [[nodiscard]] static net::IfId to_net_if(IfaceId scion_if) {
    return static_cast<net::IfId>(scion_if - 1);
  }
  [[nodiscard]] static IfaceId to_scion_if(net::IfId net_if) {
    return static_cast<IfaceId>(net_if + 1);
  }

 private:
  enum class HopCheck : std::uint8_t { kOk, kWrongAs, kBadMac, kExpired };

  void handle(net::Packet&& packet, net::IfId in_if);
  void process(net::Packet&& packet);
  /// Zero-copy pipeline: decide_hop over the packet bytes, then act.
  void process_view(net::Packet&& packet);
  /// Eager full-reparse pipeline (config_.legacy_reparse).
  void process_legacy(net::Packet&& packet);
  [[nodiscard]] bool police_reservation(std::uint32_t reservation_id, net::Packet& packet);
  void deliver_local(const ScionAddr& dst, net::Packet&& packet);
  void send_out(IfaceId egress, std::uint8_t cur_seg, std::uint8_t cur_hop,
                net::Packet&& packet);
  [[nodiscard]] HopCheck check_hop(const DataplaneSegment& seg, std::size_t hop_index,
                                   bool is_scmp);
  /// Sends an SCMP failure report back toward the source over the reversed
  /// traversed prefix ending at (cur_seg, cur_hop). No-op for SCMP packets
  /// themselves (no error loops) and for unspecified sources.
  void send_scmp(const ScionHeader& original, std::size_t cur_seg, std::size_t cur_hop,
                 ScmpType type, IfaceId interface);
  /// Cold-path variant: materializes the header from the packet bytes.
  void send_scmp_from_bytes(std::span<const std::uint8_t> packet_bytes, ScmpType type,
                            IfaceId interface);

  net::Router& router_;
  IsdAsn local_;
  ForwardingKey key_;
  /// Precomputed HMAC midstates for key_: halves the per-packet MAC cost.
  crypto::HmacKey mac_key_;
  BorderRouterConfig config_;
  BorderRouterStats stats_;
};

}  // namespace pan::scion
