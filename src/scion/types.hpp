// Shared SCION value types: link classification and the metadata that
// beacons accumulate hop by hop (the "path decorations" the paper builds
// its property taxonomy on — latency, bandwidth, MTU, loss, jitter, carbon
// footprint, transit cost, geography, QoS capability, ethics rating).
#pragma once

#include <cstdint>
#include <string>

#include "scion/addr.hpp"
#include "util/types.hpp"

namespace pan::scion {

/// SCION interface id within an AS (0 means "none", e.g. at a segment end).
using IfaceId = std::uint16_t;
inline constexpr IfaceId kNoIface = 0;

enum class LinkType : std::uint8_t {
  kCore,        // core AS <-> core AS
  kParentChild, // provider -> customer within an ISD
  kPeering,     // non-core peering (kept for future work; unused by combiner)
};

[[nodiscard]] const char* to_string(LinkType t);

/// Static decorations of one inter-AS link, disseminated in beacons.
struct LinkMeta {
  Duration latency = milliseconds(1);
  double bandwidth_bps = 1e9;
  std::size_t mtu = 1500;
  double loss_rate = 0.0;
  Duration jitter = Duration::zero();
  /// Grams of CO2 emitted per gigabyte carried across this link.
  double co2_g_per_gb = 0.0;
  /// Transit price in micro-dollars per gigabyte.
  double cost_per_gb = 0.0;
};

/// Static per-AS decorations, also disseminated in beacons.
struct AsMeta {
  /// ISO country code of the AS's primary jurisdiction, e.g. "CH".
  std::string country;
  /// 0..100 score from an (external, simulated) ESG rating provider.
  double ethics_rating = 50.0;
  /// Whether the AS offers QoS (bandwidth reservation) service.
  bool qos_capable = false;
  /// Whether the AS belongs to the user's "allied" economic bloc.
  bool allied = false;
  /// Carbon intensity of the AS's internal infrastructure (gCO2/GB).
  double internal_co2_g_per_gb = 0.0;
};

}  // namespace pan::scion
