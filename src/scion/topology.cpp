#include "scion/topology.hpp"

#include <cassert>
#include <stdexcept>

#include "util/log.hpp"

namespace pan::scion {

namespace {
constexpr std::string_view kLog = "topo";
}

Topology::Topology(sim::Simulator& sim, TopologyConfig config)
    : sim_(sim), config_(config), network_(sim, config.seed ^ 0x6e657477ULL) {}

Topology::~Topology() = default;

void Topology::add_as(const AsSpec& spec) {
  assert(!finalized_);
  if (as_by_name_.contains(spec.name)) {
    throw std::invalid_argument("duplicate AS name: " + spec.name);
  }
  if (as_by_ia_.contains(spec.ia)) {
    throw std::invalid_argument("duplicate ISD-AS: " + spec.ia.to_string());
  }
  AsState state;
  state.spec = spec;
  state.router_node = network_.add_node("br-" + spec.name);
  state.router = std::make_unique<net::Router>(network_, state.router_node);
  const std::size_t index = ases_.size();
  as_by_name_[spec.name] = index;
  as_by_ia_[spec.ia] = index;
  ases_.push_back(std::move(state));
}

std::size_t Topology::as_index(const std::string& name) const {
  const auto it = as_by_name_.find(name);
  if (it == as_by_name_.end()) {
    throw std::invalid_argument("unknown AS name: " + name);
  }
  return it->second;
}

void Topology::add_link(const AsLinkSpec& spec) {
  assert(!finalized_);
  const std::size_t ia = as_index(spec.a);
  const std::size_t ib = as_index(spec.b);
  if (ia == ib) throw std::invalid_argument("self-link on AS " + spec.a);
  if (spec.type == LinkType::kParentChild &&
      ases_[ia].spec.ia.isd() != ases_[ib].spec.ia.isd()) {
    throw std::invalid_argument("parent-child links must stay within one ISD: " + spec.a +
                                " -> " + spec.b);
  }
  if (spec.type == LinkType::kCore && (!ases_[ia].spec.core || !ases_[ib].spec.core)) {
    throw std::invalid_argument("core links must connect core ASes: " + spec.a + " -- " +
                                spec.b);
  }
  if (spec.type == LinkType::kPeering && (ases_[ia].spec.core || ases_[ib].spec.core)) {
    throw std::invalid_argument("peering links connect non-core ASes: " + spec.a + " -- " +
                                spec.b);
  }

  const auto [if_a, if_b] =
      network_.connect(ases_[ia].router_node, ases_[ib].router_node, spec.params);
  const std::size_t link_index = link_specs_.size();
  link_specs_.push_back(spec);

  ases_[ia].adjacency.push_back(AsAdjacency{
      link_index, ib, BorderRouter::to_scion_if(if_a), spec.type, /*is_parent_side=*/true});
  ases_[ib].adjacency.push_back(AsAdjacency{
      link_index, ia, BorderRouter::to_scion_if(if_b), spec.type, /*is_parent_side=*/false});
}

HostId Topology::add_host(const std::string& as_name, const std::string& host_name) {
  return add_host(as_name, host_name, config_.host_access_link);
}

HostId Topology::add_host(const std::string& as_name, const std::string& host_name,
                          const net::LinkParams& access) {
  assert(!finalized_);
  if (host_by_name_.contains(host_name)) {
    throw std::invalid_argument("duplicate host name: " + host_name);
  }
  const std::size_t as_idx = as_index(as_name);
  AsState& as = ases_[as_idx];

  HostState state;
  state.name = host_name;
  state.as_index = as_idx;
  state.node = network_.add_node(host_name);
  state.ip = net::IpAddr{static_cast<std::uint32_t>(((as_idx + 1) << 16) |
                                                    (as.hosts.size() + 1))};
  // Host side first so the host's access interface is its interface 0.
  const auto [host_if, router_if] = network_.connect(state.node, as.router_node, access);
  (void)host_if;
  as.router->set_host_route(state.ip, router_if);

  state.host = std::make_unique<net::Host>(network_, state.node, state.ip);
  state.stack = std::make_unique<ScionStack>(*state.host, as.spec.ia);

  const HostId id{hosts_.size()};
  host_by_name_[host_name] = id.index;
  as.hosts.push_back(id.index);
  hosts_.push_back(std::move(state));
  return id;
}

LinkMeta Topology::link_meta(std::size_t link_spec_index) const {
  const AsLinkSpec& spec = link_specs_[link_spec_index];
  LinkMeta meta;
  meta.latency = spec.params.latency;
  meta.bandwidth_bps = spec.params.bandwidth_bps;
  meta.mtu = spec.params.mtu;
  meta.loss_rate = spec.params.loss_rate;
  meta.jitter = spec.params.latency.scaled(spec.params.jitter_frac);
  meta.co2_g_per_gb = spec.co2_g_per_gb;
  meta.cost_per_gb = spec.cost_per_gb;
  return meta;
}

void Topology::build_pki(Rng& rng) {
  // Keys.
  for (AsState& as : ases_) {
    as.forwarding_key.resize(16);
    for (auto& byte : as.forwarding_key) {
      byte = static_cast<std::uint8_t>(rng.next_below(256));
    }
    Rng key_rng = rng.fork(as.spec.ia.packed());
    as.keypair = crypto::generate_keypair(key_rng);
  }

  // TRCs: one per ISD, listing core AS keys.
  std::unordered_map<Isd, Trc> trcs;
  for (const AsState& as : ases_) {
    Trc& trc = trcs[as.spec.ia.isd()];
    trc.isd = as.spec.ia.isd();
    if (as.spec.core) {
      trc.core_keys[as.spec.ia] = as.keypair.public_key;
      infra_.register_core_as(as.spec.ia);
    }
  }
  for (auto& [isd, trc] : trcs) {
    if (trc.core_keys.empty()) {
      throw std::logic_error("ISD " + std::to_string(isd) + " has no core AS");
    }
    trust_.add_trc(std::move(trc));
  }

  // Certificates: issued by the lowest-numbered core AS of the subject's
  // ISD (core ASes self-issue), chaining every AS key to its TRC.
  for (const AsState& as : ases_) {
    const AsState* issuer = nullptr;
    if (as.spec.core) {
      issuer = &as;
    } else {
      for (const AsState& candidate : ases_) {
        if (!candidate.spec.core || candidate.spec.ia.isd() != as.spec.ia.isd()) continue;
        if (issuer == nullptr || candidate.spec.ia < issuer->spec.ia) issuer = &candidate;
      }
    }
    if (issuer == nullptr) {
      throw std::logic_error("no issuer for AS " + as.spec.ia.to_string());
    }
    trust_.add_certificate(issue_certificate(as.spec.ia, as.keypair.public_key,
                                             issuer->spec.ia, issuer->keypair.private_key));
  }
}

void Topology::build_legacy_routes() {
  // AS-level graph; edge tags carry the local egress (net) interface id.
  net::Adjacency adj(ases_.size());
  for (std::size_t i = 0; i < ases_.size(); ++i) {
    for (const AsAdjacency& a : ases_[i].adjacency) {
      double weight = 1.0;
      if (config_.legacy_latency_weight) {
        weight += link_specs_[a.link_spec_index].params.latency.millis() / 1000.0;
      }
      adj[i].push_back(net::GraphEdge{static_cast<std::uint32_t>(a.neighbor), weight,
                                      static_cast<std::uint32_t>(
                                          BorderRouter::to_net_if(a.scion_if))});
    }
  }
  for (std::size_t i = 0; i < ases_.size(); ++i) {
    const net::ShortestPaths paths = net::dijkstra(adj, static_cast<std::uint32_t>(i));
    for (std::size_t j = 0; j < ases_.size(); ++j) {
      if (i == j) continue;
      const std::uint32_t tag =
          net::first_hop_tag(paths, static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(j));
      if (tag == UINT32_MAX) {
        PAN_WARN(kLog) << ases_[i].spec.name << " has no legacy route to "
                       << ases_[j].spec.name;
        continue;
      }
      const std::uint16_t prefix = static_cast<std::uint16_t>(j + 1);
      ases_[i].router->set_prefix_route(prefix, static_cast<net::IfId>(tag));
    }
  }
}

void Topology::finalize() {
  assert(!finalized_);
  Rng rng(config_.seed);
  build_pki(rng);
  build_legacy_routes();
  run_beaconing();

  // Register directed-link capacities with the reservation service and hand
  // the routers a policing handle.
  for (const AsState& as : ases_) {
    for (const AsAdjacency& adj : as.adjacency) {
      reservations_.register_link(as.spec.ia, adj.scion_if,
                                  link_specs_[adj.link_spec_index].params.bandwidth_bps);
    }
  }
  BorderRouterConfig br_config = config_.border_router;
  br_config.reservations = &reservations_;
  for (AsState& as : ases_) {
    // Per-AS config copy: each router gets its own pre-registered
    // forward-latency histogram (distinct pointer per AS).
    BorderRouterConfig as_config = br_config;
    if (config_.metrics != nullptr) {
      as_config.forward_latency =
          &config_.metrics->histogram("router." + as.spec.ia.to_string() + ".forward_latency");
    }
    as.border_router = std::make_unique<BorderRouter>(*as.router, as.spec.ia,
                                                      as.forwarding_key, as_config);
    as.daemon = std::make_unique<Daemon>(sim_, infra_, as.spec.ia, config_.daemon);
  }
  finalized_ = true;
  PAN_INFO(kLog) << "topology finalized: " << ases_.size() << " ASes, " << hosts_.size()
                 << " hosts, " << infra_.segment_count() << " segments";
}

void Topology::rebeacon(std::uint32_t new_timestamp) {
  assert(finalized_);
  config_.beacon_timestamp = new_timestamp;
  infra_.clear_segments();
  run_beaconing();
  for (AsState& as : ases_) {
    as.daemon->flush_cache();
  }
  PAN_INFO(kLog) << "re-beaconed at ts=" << new_timestamp << ": "
                 << infra_.segment_count() << " segments";
}

void Topology::set_data_plane_time(std::uint32_t unix_time) {
  for (AsState& as : ases_) {
    if (as.border_router != nullptr) as.border_router->set_current_time(unix_time);
  }
}

std::vector<IsdAsn> Topology::all_ases() const {
  std::vector<IsdAsn> out;
  out.reserve(ases_.size());
  for (const AsState& as : ases_) out.push_back(as.spec.ia);
  return out;
}

IsdAsn Topology::as_by_name(const std::string& name) const {
  return ases_[as_index(name)].spec.ia;
}

const Topology::AsState& Topology::as_state(IsdAsn ia) const {
  const auto it = as_by_ia_.find(ia);
  if (it == as_by_ia_.end()) {
    throw std::invalid_argument("unknown ISD-AS: " + ia.to_string());
  }
  return ases_[it->second];
}

Topology::AsState& Topology::as_state(IsdAsn ia) {
  return const_cast<AsState&>(static_cast<const Topology*>(this)->as_state(ia));
}

const AsMeta& Topology::as_meta(IsdAsn ia) const { return as_state(ia).spec.meta; }

bool Topology::is_core(IsdAsn ia) const { return as_state(ia).spec.core; }

Daemon& Topology::daemon(IsdAsn ia) {
  assert(finalized_);
  return *as_state(ia).daemon;
}

const BorderRouterStats& Topology::border_router_stats(IsdAsn ia) const {
  return as_state(ia).border_router->stats();
}

const ForwardingKey& Topology::forwarding_key(IsdAsn ia) const {
  return as_state(ia).forwarding_key;
}

net::Host& Topology::host(HostId id) { return *hosts_.at(id.index).host; }

ScionStack& Topology::scion_stack(HostId id) { return *hosts_.at(id.index).stack; }

Daemon& Topology::daemon_for(HostId id) {
  return *ases_[hosts_.at(id.index).as_index].daemon;
}

net::IpAddr Topology::ip(HostId id) const { return hosts_.at(id.index).ip; }

IsdAsn Topology::as_of(HostId id) const {
  return ases_[hosts_.at(id.index).as_index].spec.ia;
}

ScionAddr Topology::scion_addr(HostId id) const {
  return ScionAddr{as_of(id), ip(id)};
}

const std::string& Topology::host_name(HostId id) const { return hosts_.at(id.index).name; }

HostId Topology::host_by_name(const std::string& name) const {
  const auto it = host_by_name_.find(name);
  if (it == host_by_name_.end()) {
    throw std::invalid_argument("unknown host name: " + name);
  }
  return HostId{it->second};
}

}  // namespace pan::scion
