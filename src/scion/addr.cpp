#include "scion/addr.hpp"

#include "util/strings.hpp"

namespace pan::scion {

std::string format_asn(Asn asn) {
  if (asn < (1ULL << 32)) {
    return std::to_string(asn);
  }
  return strings::format("%llx:%llx:%llx",
                         static_cast<unsigned long long>((asn >> 32) & 0xffff),
                         static_cast<unsigned long long>((asn >> 16) & 0xffff),
                         static_cast<unsigned long long>(asn & 0xffff));
}

Result<Asn> parse_asn(std::string_view s) {
  if (s.find(':') == std::string_view::npos) {
    const auto v = strings::parse_u64(s);
    if (!v.ok()) return Err("bad AS number: " + v.error());
    if (v.value() >= (1ULL << 32)) return Err("decimal AS number out of range");
    return v.value();
  }
  const auto groups = strings::split(s, ':');
  if (groups.size() != 3) return Err("hex AS number must have 3 groups: '" + std::string(s) + "'");
  Asn asn = 0;
  for (const auto& group : groups) {
    const auto v = strings::parse_hex_u64(group);
    if (!v.ok()) return Err("bad AS number group: " + v.error());
    if (v.value() > 0xffff) return Err("AS number group out of range");
    asn = (asn << 16) | v.value();
  }
  return asn;
}

std::string IsdAsn::to_string() const {
  return std::to_string(isd_) + "-" + format_asn(asn_);
}

Result<IsdAsn> IsdAsn::parse(std::string_view s) {
  const auto dash = s.find('-');
  if (dash == std::string_view::npos) return Err("ISD-AS must contain '-': '" + std::string(s) + "'");
  const auto isd = strings::parse_u64(s.substr(0, dash));
  if (!isd.ok()) return Err("bad ISD: " + isd.error());
  if (isd.value() > 0xffff) return Err("ISD out of range");
  const auto asn = parse_asn(s.substr(dash + 1));
  if (!asn.ok()) return Err(asn.error());
  return IsdAsn{static_cast<Isd>(isd.value()), asn.value()};
}

std::string ScionAddr::to_string() const {
  return ia.to_string() + "," + host.to_string();
}

Result<ScionAddr> ScionAddr::parse(std::string_view s) {
  const auto comma = s.find(',');
  if (comma == std::string_view::npos) {
    return Err("SCION address must contain ',': '" + std::string(s) + "'");
  }
  const auto ia = IsdAsn::parse(s.substr(0, comma));
  if (!ia.ok()) return Err(ia.error());
  const auto host = net::IpAddr::parse(s.substr(comma + 1));
  if (!host.ok()) return Err(host.error());
  return ScionAddr{ia.value(), host.value()};
}

std::string ScionEndpoint::to_string() const {
  return "[" + addr.to_string() + "]:" + std::to_string(port);
}

}  // namespace pan::scion
