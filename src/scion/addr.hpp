// SCION addressing: ISD (isolation domain) numbers, AS numbers, the
// combined ISD-AS identifier, and full SCION host addresses.
//
// Formatting follows SCION conventions: AS numbers render in the BGP-style
// decimal form for small values and the colon-grouped hex form
// ("ff00:0:110") otherwise; a full address renders as
// "1-ff00:0:110,10.0.0.1".
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "net/addr.hpp"
#include "util/result.hpp"

namespace pan::scion {

using Isd = std::uint16_t;
using Asn = std::uint64_t;  // 48-bit in real SCION; we keep 64 for simplicity

/// Combined ISD-AS identifier, e.g. "1-ff00:0:110".
class IsdAsn {
 public:
  constexpr IsdAsn() = default;
  constexpr IsdAsn(Isd isd, Asn asn) : isd_(isd), asn_(asn) {}

  [[nodiscard]] constexpr Isd isd() const { return isd_; }
  [[nodiscard]] constexpr Asn asn() const { return asn_; }
  [[nodiscard]] constexpr bool is_unspecified() const { return isd_ == 0 && asn_ == 0; }
  /// Packed form for hashing and wire encoding.
  [[nodiscard]] constexpr std::uint64_t packed() const {
    return (static_cast<std::uint64_t>(isd_) << 48) | (asn_ & 0xffff'ffff'ffffULL);
  }
  [[nodiscard]] static constexpr IsdAsn from_packed(std::uint64_t v) {
    return IsdAsn{static_cast<Isd>(v >> 48), v & 0xffff'ffff'ffffULL};
  }

  constexpr auto operator<=>(const IsdAsn&) const = default;

  [[nodiscard]] std::string to_string() const;
  /// Parses "isd-asn" where asn is decimal or colon-grouped hex.
  [[nodiscard]] static Result<IsdAsn> parse(std::string_view s);

 private:
  Isd isd_ = 0;
  Asn asn_ = 0;
};

[[nodiscard]] std::string format_asn(Asn asn);
[[nodiscard]] Result<Asn> parse_asn(std::string_view s);

/// Full SCION host address: (ISD-AS, host address). Rendered
/// "1-ff00:0:110,10.0.0.1".
struct ScionAddr {
  IsdAsn ia;
  net::IpAddr host;

  auto operator<=>(const ScionAddr&) const = default;
  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] static Result<ScionAddr> parse(std::string_view s);
};

/// A UDP endpoint over SCION.
struct ScionEndpoint {
  ScionAddr addr;
  std::uint16_t port = 0;

  auto operator<=>(const ScionEndpoint&) const = default;
  [[nodiscard]] std::string to_string() const;
};

}  // namespace pan::scion

template <>
struct std::hash<pan::scion::IsdAsn> {
  std::size_t operator()(const pan::scion::IsdAsn& ia) const noexcept {
    return std::hash<std::uint64_t>{}(ia.packed());
  }
};

template <>
struct std::hash<pan::scion::ScionAddr> {
  std::size_t operator()(const pan::scion::ScionAddr& a) const noexcept {
    return std::hash<std::uint64_t>{}(a.ia.packed() * 31 + a.host.value());
  }
};
