// SCMP-style control messages (SCION's ICMP analog), the mechanism behind
// fast path revocation: when a border router cannot forward a packet — the
// egress link is down or the hop field has expired — it reports the failure
// back to the source over the reversed traversed path prefix. End hosts
// subscribe to these messages and steer around the broken interface (see
// PathSelector::revoke / SkipProxy failover).
#pragma once

#include "scion/addr.hpp"
#include "scion/types.hpp"
#include "util/bytes.hpp"
#include "util/result.hpp"

namespace pan::scion {

/// Next-protocol value for SCMP payloads in the SCION header.
inline constexpr std::uint8_t kProtoScmp = 202;

enum class ScmpType : std::uint8_t {
  kLinkDown = 1,     // egress link unusable
  kExpiredHop = 2,   // hop-field authorization expired
};

[[nodiscard]] const char* to_string(ScmpType t);

struct ScmpMessage {
  ScmpType type = ScmpType::kLinkDown;
  /// The AS reporting the failure.
  IsdAsn origin_as;
  /// The interface that could not be used (0 for expiry reports).
  IfaceId interface = kNoIface;
  /// Original packet's destination, so receivers can map the failure onto
  /// the connection/origin it affects.
  ScionAddr original_dst;
  std::uint16_t original_dst_port = 0;

  /// Appends the wire encoding to an existing writer, so callers building a
  /// full packet (SCION header + SCMP payload) serialize into one buffer in
  /// one pass instead of concatenating intermediate byte strings.
  template <typename Writer>
  void serialize_into(Writer& w) const {
    w.u8(static_cast<std::uint8_t>(type));
    w.u64(origin_as.packed());
    w.u16(interface);
    w.u64(original_dst.ia.packed());
    w.u32(original_dst.host.value());
    w.u16(original_dst_port);
  }
  [[nodiscard]] Bytes serialize() const;
  [[nodiscard]] static Result<ScmpMessage> parse(std::span<const std::uint8_t> data);
  [[nodiscard]] std::string to_string() const;
};

}  // namespace pan::scion
