#include "scion/pki.hpp"

namespace pan::scion {

Bytes AsCertificate::signed_body() const {
  ByteWriter w;
  w.u64(subject.packed());
  w.u64(issuer.packed());
  const crypto::Digest fp = subject_key.fingerprint();
  w.raw(std::span<const std::uint8_t>(fp));
  return std::move(w).take();
}

void TrustStore::add_trc(Trc trc) {
  verified_cache_.clear();
  trcs_[trc.isd] = std::move(trc);
}

void TrustStore::add_certificate(AsCertificate cert) {
  verified_cache_.clear();
  certs_[cert.subject] = std::move(cert);
}

const Trc* TrustStore::trc(Isd isd) const {
  const auto it = trcs_.find(isd);
  return it == trcs_.end() ? nullptr : &it->second;
}

const AsCertificate* TrustStore::certificate(IsdAsn ia) const {
  const auto it = certs_.find(ia);
  return it == certs_.end() ? nullptr : &it->second;
}

bool TrustStore::validate_certificate(const AsCertificate& cert) const {
  const Trc* t = trc(cert.subject.isd());
  if (t == nullptr) return false;
  const auto issuer_it = t->core_keys.find(cert.issuer);
  if (issuer_it == t->core_keys.end()) return false;
  const Bytes body = cert.signed_body();
  ++chain_validations_;
  return crypto::verify(issuer_it->second, std::span<const std::uint8_t>(body),
                        cert.issuer_signature, &preimages_);
}

const crypto::PublicKey* TrustStore::verified_key(IsdAsn ia) const {
  const auto cached = verified_cache_.find(ia);
  if (cached != verified_cache_.end()) return cached->second;
  const AsCertificate* cert = certificate(ia);
  const crypto::PublicKey* key =
      (cert != nullptr && validate_certificate(*cert)) ? &cert->subject_key : nullptr;
  verified_cache_.emplace(ia, key);
  return key;
}

AsCertificate issue_certificate(IsdAsn subject, const crypto::PublicKey& subject_key,
                                IsdAsn issuer, const crypto::PrivateKey& issuer_key) {
  AsCertificate cert;
  cert.subject = subject;
  cert.subject_key = subject_key;
  cert.issuer = issuer;
  const Bytes body = cert.signed_body();
  cert.issuer_signature = crypto::sign(issuer_key, std::span<const std::uint8_t>(body));
  return cert;
}

}  // namespace pan::scion
