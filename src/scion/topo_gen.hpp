// Parameterized random topology generation: internet-like worlds for
// property tests and scale benches.
//
// Shape: `isds` isolation domains, each with `cores_per_isd` core ASes in a
// ring (plus chords when the ring is large) and `leaves_per_core` child
// ASes per core; inter-ISD core links connect a subset of core pairs. Link
// latencies/bandwidths and all metadata decorations are drawn from the rng,
// so every seed yields a distinct world with full metadata coverage.
#pragma once

#include "scion/topology.hpp"

namespace pan::scion {

struct TopoGenParams {
  std::uint64_t seed = 1;
  std::size_t isds = 2;
  std::size_t cores_per_isd = 3;
  std::size_t leaves_per_core = 2;
  /// Extra intra-ISD core chords beyond the ring (diversity).
  std::size_t core_chords = 1;
  /// Inter-ISD core link pairs per ISD pair.
  std::size_t inter_isd_links = 2;
  /// Fraction of leaves that are dual-homed to a second core.
  double dual_home_fraction = 0.4;
  /// Number of random leaf-to-leaf peering links (0 = none).
  std::size_t peering_links = 2;
  bool sign_beacons = false;  // signing is expensive; tests opt in
  std::size_t beacons_per_origin = 6;
  /// Border-router knobs (e.g. legacy_reparse for the zero-copy/legacy
  /// forwarding-equivalence tests).
  BorderRouterConfig border_router;
};

struct GeneratedTopology {
  std::unique_ptr<Topology> topo;
  std::vector<IsdAsn> core_ases;
  std::vector<IsdAsn> leaf_ases;
  /// One host per leaf AS, in leaf_ases order.
  std::vector<HostId> hosts;
};

/// Builds and finalizes a random world on `sim`.
[[nodiscard]] GeneratedTopology generate_topology(sim::Simulator& sim,
                                                  const TopoGenParams& params);

}  // namespace pan::scion
