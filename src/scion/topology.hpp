// Topology: builds a complete simulated inter-domain world.
//
// Declaratively add ISDs/ASes, typed inter-AS links (core, parent-child)
// with metadata decorations, and hosts. finalize() then:
//   1. generates per-AS forwarding keys and Lamport keypairs, builds one TRC
//      per ISD and chain-issues AS certificates (control-plane PKI);
//   2. computes legacy BGP-like routes (shortest AS-path) and fills the
//      routers' prefix tables;
//   3. runs beaconing — core beaconing across core links, down beaconing
//      along parent-child links — keeping the k best beacons per origin,
//      signing every AS entry, and registering verified segments with the
//      path-server infrastructure;
//   4. instantiates border routers, per-AS daemons, and per-host SCION
//      stacks.
//
// After finalize() the world is fully operational for both stacks: legacy
// UDP sockets route via BGP tables, SCION sockets forward along
// MAC-authorized paths obtained from the daemons.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "crypto/signature.hpp"
#include "net/graph.hpp"
#include "net/host.hpp"
#include "net/router.hpp"
#include "scion/border_router.hpp"
#include "scion/colibri.hpp"
#include "scion/daemon.hpp"
#include "scion/path_server.hpp"
#include "scion/stack.hpp"

namespace pan::scion {

struct AsSpec {
  std::string name;  // unique label, e.g. "ethz"
  IsdAsn ia;
  bool core = false;
  AsMeta meta;
};

struct AsLinkSpec {
  std::string a;  // AS name (the parent for kParentChild)
  std::string b;  // AS name (the child for kParentChild)
  LinkType type = LinkType::kCore;
  net::LinkParams params;
  double co2_g_per_gb = 20.0;
  double cost_per_gb = 10.0;
};

struct TopologyConfig {
  std::uint64_t seed = 1;
  /// Beacons kept per (origin, AS) during propagation — controls path choice.
  std::size_t beacons_per_origin = 8;
  /// Sign beacon entries / verify before registration.
  bool sign_beacons = true;
  bool verify_beacons = true;
  std::uint32_t beacon_timestamp = 1'000'000;
  std::uint32_t hop_expiry_s = 24 * 3600;
  net::LinkParams host_access_link = {
      .latency = microseconds(200),
      .bandwidth_bps = 1e9,
      .loss_rate = 0.0,
      .mtu = 1500,
  };
  DaemonConfig daemon;
  BorderRouterConfig border_router;
  /// When set, finalize() pre-registers a `router.<ia>.forward_latency`
  /// histogram per AS and wires it into that AS's border router, so hop-path
  /// recording never allocates (the registry lookup happens once, here).
  obs::MetricsRegistry* metrics = nullptr;
  /// Legacy route weight: AS hop count (BGP-like). When true, adds the link
  /// latency in ms as a secondary component (used by ablation benches to
  /// model a latency-aware IGP instead).
  bool legacy_latency_weight = false;
};

/// Opaque host handle.
struct HostId {
  std::size_t index = static_cast<std::size_t>(-1);
  [[nodiscard]] bool valid() const { return index != static_cast<std::size_t>(-1); }
  auto operator<=>(const HostId&) const = default;
};

class Topology {
 public:
  Topology(sim::Simulator& sim, TopologyConfig config = {});
  ~Topology();

  Topology(const Topology&) = delete;
  Topology& operator=(const Topology&) = delete;

  void add_as(const AsSpec& spec);
  void add_link(const AsLinkSpec& spec);
  HostId add_host(const std::string& as_name, const std::string& host_name);
  /// Host with non-default access-link parameters.
  HostId add_host(const std::string& as_name, const std::string& host_name,
                  const net::LinkParams& access);

  /// Builds keys, routes, beacons, routers, daemons. Must be called exactly
  /// once, after which add_* must not be called again.
  void finalize();
  [[nodiscard]] bool finalized() const { return finalized_; }

  /// Re-runs beaconing with a new origination timestamp: the segment store
  /// is replaced, hop fields get fresh MAC epochs/expiries, and every
  /// daemon's path cache is flushed — the control-plane refresh that keeps
  /// paths alive past hop-field expiry.
  void rebeacon(std::uint32_t new_timestamp);

  /// Sets the expiry-check clock on every border router (0 disables).
  void set_data_plane_time(std::uint32_t unix_time);

  // --- accessors (valid after finalize unless noted) ---
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] net::Network& network() { return network_; }
  [[nodiscard]] const PathServerInfra& path_infra() const { return infra_; }
  [[nodiscard]] const TrustStore& trust_store() const { return trust_; }
  /// Colibri-lite bandwidth reservations (admission + policing state).
  [[nodiscard]] ReservationManager& reservations() { return reservations_; }

  [[nodiscard]] std::size_t as_count() const { return ases_.size(); }
  [[nodiscard]] std::vector<IsdAsn> all_ases() const;
  [[nodiscard]] IsdAsn as_by_name(const std::string& name) const;
  [[nodiscard]] const AsMeta& as_meta(IsdAsn ia) const;
  [[nodiscard]] bool is_core(IsdAsn ia) const;
  [[nodiscard]] Daemon& daemon(IsdAsn ia);
  [[nodiscard]] const BorderRouterStats& border_router_stats(IsdAsn ia) const;
  [[nodiscard]] const ForwardingKey& forwarding_key(IsdAsn ia) const;

  /// Beacon-verification accounting. Each accepted beacon either costs one
  /// full verify_segment (beacon_verifications) or hits the verified-segment
  /// memo (beacon_memo_hits). rebeacon() with an unchanged timestamp
  /// rebuilds byte-identical segments, so it performs zero re-verifications.
  [[nodiscard]] std::uint64_t beacon_verifications() const { return beacon_verifications_; }
  [[nodiscard]] std::uint64_t beacon_memo_hits() const { return beacon_memo_hits_; }

  [[nodiscard]] net::Host& host(HostId id);
  [[nodiscard]] ScionStack& scion_stack(HostId id);
  [[nodiscard]] Daemon& daemon_for(HostId id);
  [[nodiscard]] net::IpAddr ip(HostId id) const;
  [[nodiscard]] IsdAsn as_of(HostId id) const;
  [[nodiscard]] ScionAddr scion_addr(HostId id) const;
  [[nodiscard]] const std::string& host_name(HostId id) const;
  [[nodiscard]] HostId host_by_name(const std::string& name) const;

 private:
  struct AsAdjacency {
    std::size_t link_spec_index;  // into link_specs_
    std::size_t neighbor;         // AS index
    IfaceId scion_if;             // local SCION interface id (net ifid + 1)
    LinkType type;
    bool is_parent_side;          // true when this AS is the parent (a side)
  };

  struct AsState {
    AsSpec spec;
    net::NodeId router_node = net::kInvalidNodeId;
    std::unique_ptr<net::Router> router;
    std::unique_ptr<BorderRouter> border_router;
    std::unique_ptr<Daemon> daemon;
    ForwardingKey forwarding_key;
    crypto::KeyPair keypair;
    std::vector<AsAdjacency> adjacency;
    std::vector<std::size_t> hosts;  // host indices
  };

  struct HostState {
    std::string name;
    std::size_t as_index = 0;
    net::NodeId node = net::kInvalidNodeId;
    net::IpAddr ip;
    std::unique_ptr<net::Host> host;
    std::unique_ptr<ScionStack> stack;
  };

  [[nodiscard]] std::size_t as_index(const std::string& name) const;
  [[nodiscard]] const AsState& as_state(IsdAsn ia) const;
  [[nodiscard]] AsState& as_state(IsdAsn ia);

  void build_pki(Rng& rng);
  void build_legacy_routes();
  void run_beaconing();
  [[nodiscard]] LinkMeta link_meta(std::size_t link_spec_index) const;

  // Beaconing internals (beaconing.cpp).
  struct BeaconHop {
    std::size_t as_index;
    IfaceId in_if = kNoIface;   // toward origin (0 at origin)
    IfaceId out_if = kNoIface;  // away from origin (0 at terminus)
    /// Link crossed to reach this AS (SIZE_MAX at the origin).
    std::size_t in_link_index = static_cast<std::size_t>(-1);
  };
  void propagate_beacons(std::size_t origin_index, bool core_beaconing);
  void register_beacon(const std::vector<BeaconHop>& hops, SegmentType type);
  [[nodiscard]] PathSegment build_segment(const std::vector<BeaconHop>& hops,
                                          SegmentType type) const;

  sim::Simulator& sim_;
  TopologyConfig config_;
  net::Network network_;
  PathServerInfra infra_;
  TrustStore trust_;
  ReservationManager reservations_;
  // Verified-segment memo keyed by content digest (covers signatures), plus
  // a preimage cache shared across all beacon verifications. Entries are
  // never invalidated: trust material is fixed after build_pki(), and a
  // content digest pins the exact signed bytes that were verified.
  std::unordered_set<crypto::Digest, crypto::DigestHasher> verified_segments_;
  crypto::PreimageCache beacon_preimages_;
  std::uint64_t beacon_verifications_ = 0;
  std::uint64_t beacon_memo_hits_ = 0;
  std::vector<AsState> ases_;
  std::vector<HostState> hosts_;
  std::vector<AsLinkSpec> link_specs_;
  std::unordered_map<std::string, std::size_t> as_by_name_;
  std::unordered_map<std::string, std::size_t> host_by_name_;
  std::unordered_map<IsdAsn, std::size_t> as_by_ia_;
  bool finalized_ = false;
};

}  // namespace pan::scion
