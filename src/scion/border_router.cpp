#include "scion/border_router.hpp"

#include "util/log.hpp"

namespace pan::scion {

namespace {

constexpr std::string_view kLog = "br";

enum class FieldCheck : std::uint8_t { kOk, kWrongAs, kBadMac, kExpired };

// Shared hop-field validation: AS ownership, MAC, expiry. SCMP error reports
// get an expiry grace: they travel the reversed prefix of the very path whose
// hops just expired, and the source must still learn about it. MAC validity
// (path authorization) is never waived.
FieldCheck check_hop_field(const HopField& hf, std::uint32_t origin_ts, bool is_scmp,
                           IsdAsn local, const crypto::HmacKey& key,
                           const BorderRouterConfig& config) {
  if (hf.isd_as != local) return FieldCheck::kWrongAs;
  if (config.verify_macs && !verify_hop_field(hf, origin_ts, key)) return FieldCheck::kBadMac;
  if (!is_scmp && config.current_unix_time != 0 &&
      origin_ts + hf.expiry_s < config.current_unix_time) {
    return FieldCheck::kExpired;
  }
  return FieldCheck::kOk;
}

HopDecision drop(HopDecision::Action action) {
  HopDecision d;
  d.action = action;
  return d;
}

HopDecision::Action to_drop_action(FieldCheck check) {
  switch (check) {
    case FieldCheck::kWrongAs: return HopDecision::Action::kDropWrongAs;
    case FieldCheck::kBadMac: return HopDecision::Action::kDropMac;
    case FieldCheck::kExpired: return HopDecision::Action::kDropExpired;
    case FieldCheck::kOk: break;
  }
  return HopDecision::Action::kDropParse;
}

}  // namespace

HopDecision decide_hop(std::span<const std::uint8_t> packet_bytes, IsdAsn local,
                       const ForwardingKey& key, const BorderRouterConfig& config) {
  return decide_hop(packet_bytes, local, crypto::HmacKey(key), config);
}

HopDecision decide_hop(std::span<const std::uint8_t> packet_bytes, IsdAsn local,
                       const crypto::HmacKey& key, const BorderRouterConfig& config) {
  const Result<ScionHeaderView> parsed = ScionHeaderView::parse(packet_bytes);
  if (!parsed.ok()) return drop(HopDecision::Action::kDropParse);
  const ScionHeaderView& view = parsed.value();

  HopDecision d;
  d.reservation_id = view.reservation_id();
  d.dst = view.dst();

  // Intra-AS packet: empty path, deliver directly.
  if (view.segment_count() == 0) {
    d.action = HopDecision::Action::kDeliver;
    return d;
  }

  const std::uint8_t seg_idx = view.cur_seg();
  const std::uint8_t hop_idx = view.cur_hop();
  if (seg_idx >= view.segment_count()) return drop(HopDecision::Action::kDropMalformed);
  const ScionHeaderView::SegmentInfo seg = view.segment(seg_idx);
  if (hop_idx >= seg.hop_count) return drop(HopDecision::Action::kDropMalformed);

  const bool is_scmp = view.next_proto() == kProtoScmp;
  const HopField hf = view.hop(seg, hop_idx);
  const FieldCheck check = check_hop_field(hf, seg.origin_ts, is_scmp, local, key, config);
  if (check != FieldCheck::kOk) return drop(to_drop_action(check));

  const IfaceId egress = ScionHeaderView::traversal_egress(seg, hf);
  if (egress != kNoIface) {
    // A nonzero egress at the segment's last hop is a peering crossing: the
    // next AS's hop field lives at the start of the next segment.
    d.egress = egress;
    d.next_seg = seg_idx;
    d.next_hop = static_cast<std::uint8_t>(hop_idx + 1);
    if (hop_idx + 1 == seg.hop_count) {
      if (seg_idx + 1 >= view.segment_count()) {
        return drop(HopDecision::Action::kDropMalformed);
      }
      d.next_seg = static_cast<std::uint8_t>(seg_idx + 1);
      d.next_hop = 0;
    }
    d.action = HopDecision::Action::kForward;
    return d;
  }

  // Segment end at this AS.
  if (seg_idx + 1 == view.segment_count()) {
    d.action = HopDecision::Action::kDeliver;
    return d;
  }

  // Crossover: the next segment must start here with no ingress interface.
  const ScionHeaderView::SegmentInfo next_seg =
      view.segment(static_cast<std::uint8_t>(seg_idx + 1));
  if (next_seg.hop_count == 0) return drop(HopDecision::Action::kDropMalformed);
  const HopField hop0 = view.hop(next_seg, 0);
  if (ScionHeaderView::traversal_ingress(next_seg, hop0) != kNoIface) {
    return drop(HopDecision::Action::kDropMalformed);
  }
  const FieldCheck next_check =
      check_hop_field(hop0, next_seg.origin_ts, is_scmp, local, key, config);
  if (next_check != FieldCheck::kOk) return drop(to_drop_action(next_check));

  const IfaceId next_egress = ScionHeaderView::traversal_egress(next_seg, hop0);
  if (next_egress == kNoIface) {
    if (seg_idx + 2 == view.segment_count()) {
      // A one-hop final segment ending right here.
      d.action = HopDecision::Action::kDeliver;
      return d;
    }
    return drop(HopDecision::Action::kDropMalformed);
  }
  d.action = HopDecision::Action::kForward;
  d.egress = next_egress;
  d.next_seg = static_cast<std::uint8_t>(seg_idx + 1);
  d.next_hop = 1;
  return d;
}

BorderRouter::BorderRouter(net::Router& router, IsdAsn local, ForwardingKey key,
                           BorderRouterConfig config)
    : router_(router), local_(local), key_(std::move(key)), mac_key_(key_), config_(config) {
  router_.set_scion_handler(
      [this](net::Packet&& p, net::IfId in_if) { handle(std::move(p), in_if); });
}

void BorderRouter::handle(net::Packet&& packet, net::IfId /*in_if*/) {
  if (config_.processing_delay > Duration::zero()) {
    auto& sim = router_.network().simulator();
    sim.schedule_after(config_.processing_delay,
                       [this, p = std::move(packet)]() mutable { process(std::move(p)); });
  } else {
    process(std::move(packet));
  }
}

BorderRouter::HopCheck BorderRouter::check_hop(const DataplaneSegment& seg,
                                               std::size_t hop_index, bool is_scmp) {
  const HopField& hf = seg.hop_at(hop_index);
  switch (check_hop_field(hf, seg.origin_ts, is_scmp, local_, mac_key_, config_)) {
    case FieldCheck::kWrongAs:
      ++stats_.drop_wrong_as;
      PAN_DEBUG(kLog) << local_.to_string() << ": hop field for " << hf.isd_as.to_string();
      return HopCheck::kWrongAs;
    case FieldCheck::kBadMac:
      ++stats_.drop_mac;
      PAN_DEBUG(kLog) << local_.to_string() << ": hop-field MAC verification failed";
      return HopCheck::kBadMac;
    case FieldCheck::kExpired:
      ++stats_.drop_expired;
      return HopCheck::kExpired;
    case FieldCheck::kOk:
      break;
  }
  return HopCheck::kOk;
}

void BorderRouter::send_scmp(const ScionHeader& original, std::size_t cur_seg,
                             std::size_t cur_hop, ScmpType type, IfaceId interface) {
  if (original.next_proto == kProtoScmp) return;  // never report on reports
  if (original.src.ia.is_unspecified()) return;

  ScmpMessage message;
  message.type = type;
  message.origin_as = local_;
  message.interface = interface;
  message.original_dst = original.dst;
  message.original_dst_port = original.dst_port;

  ScionHeader header;
  header.src = ScionAddr{local_, net::IpAddr{0}};
  header.dst = original.src;
  header.next_proto = kProtoScmp;
  header.path = original.path.reversed_prefix(cur_seg, cur_hop);
  header.cur_seg = 0;
  header.cur_hop = 0;

  net::Packet packet;
  packet.proto = net::Protocol::kScion;
  packet.dst = original.src.host;
  // Serialize the SCMP payload straight into the packet buffer after the
  // header — one buffer, one pass, no concatenation copy.
  ByteWriter w;
  write_scion_header(w, header);
  message.serialize_into(w);
  packet.payload = net::PacketView(std::move(w).take());
  ++stats_.scmp_sent;
  PAN_DEBUG(kLog) << local_.to_string() << ": originating " << message.to_string();
  // The report enters this router's own forwarding path: the first hop of
  // the reversed prefix is our hop field.
  process(std::move(packet));
}

void BorderRouter::send_scmp_from_bytes(std::span<const std::uint8_t> packet_bytes,
                                        ScmpType type, IfaceId interface) {
  // Cold path (errors only): materialize the full header to build the
  // reversed return route.
  const Result<ParsedScionPacket> parsed = parse_scion_packet(packet_bytes);
  if (!parsed.ok()) return;
  const ScionHeader& header = parsed.value().header;
  send_scmp(header, header.cur_seg, header.cur_hop, type, interface);
}

bool BorderRouter::police_reservation(std::uint32_t reservation_id, net::Packet& packet) {
  // Reservation validation and policing (Colibri-lite): conforming packets
  // ride priority; unknown/expired/over-rate reservations are dropped so a
  // forged or abusive id cannot claim priority capacity.
  if (reservation_id == 0 || config_.reservations == nullptr) return true;
  const PoliceResult verdict = config_.reservations->police(
      reservation_id, local_, router_.network().simulator().now(), packet.wire_size());
  if (verdict != PoliceResult::kAllow) {
    ++stats_.drop_reservation;
    PAN_DEBUG(kLog) << local_.to_string() << ": reservation drop ("
                    << static_cast<int>(verdict) << ") id " << reservation_id;
    return false;
  }
  packet.priority = true;
  return true;
}

void BorderRouter::process(net::Packet&& packet) {
  if (config_.legacy_reparse) {
    process_legacy(std::move(packet));
  } else {
    process_view(std::move(packet));
  }
}

void BorderRouter::process_view(net::Packet&& packet) {
  const HopDecision d = decide_hop(packet.payload.span(), local_, mac_key_, config_);
  switch (d.action) {
    case HopDecision::Action::kForward:
      if (!police_reservation(d.reservation_id, packet)) return;
      send_out(d.egress, d.next_seg, d.next_hop, std::move(packet));
      return;
    case HopDecision::Action::kDeliver:
      if (!police_reservation(d.reservation_id, packet)) return;
      deliver_local(d.dst, std::move(packet));
      return;
    case HopDecision::Action::kDropParse:
      ++stats_.drop_parse;
      PAN_DEBUG(kLog) << local_.to_string() << ": SCION parse failed";
      return;
    case HopDecision::Action::kDropWrongAs:
      ++stats_.drop_wrong_as;
      PAN_DEBUG(kLog) << local_.to_string() << ": hop field for another AS";
      return;
    case HopDecision::Action::kDropMac:
      ++stats_.drop_mac;
      PAN_DEBUG(kLog) << local_.to_string() << ": hop-field MAC verification failed";
      return;
    case HopDecision::Action::kDropExpired:
      ++stats_.drop_expired;
      send_scmp_from_bytes(packet.payload.span(), ScmpType::kExpiredHop, kNoIface);
      return;
    case HopDecision::Action::kDropMalformed:
      ++stats_.drop_malformed_path;
      return;
  }
}

void BorderRouter::process_legacy(net::Packet&& packet) {
  auto parsed = parse_scion_packet(packet.payload.span());
  if (!parsed.ok()) {
    ++stats_.drop_parse;
    PAN_DEBUG(kLog) << local_.to_string() << ": " << parsed.error();
    return;
  }
  const ScionHeader& header = parsed.value().header;

  if (!police_reservation(header.reservation_id, packet)) return;

  // Intra-AS packet: empty path, deliver directly.
  if (header.path.segments.empty()) {
    deliver_local(header.dst, std::move(packet));
    return;
  }

  const std::size_t seg_idx = header.cur_seg;
  const std::size_t hop_idx = header.cur_hop;
  if (seg_idx >= header.path.segments.size() ||
      hop_idx >= header.path.segments[seg_idx].length()) {
    ++stats_.drop_malformed_path;
    return;
  }
  const DataplaneSegment& seg = header.path.segments[seg_idx];
  const bool is_scmp = header.next_proto == kProtoScmp;
  switch (check_hop(seg, hop_idx, is_scmp)) {
    case HopCheck::kOk:
      break;
    case HopCheck::kExpired:
      send_scmp(header, seg_idx, hop_idx, ScmpType::kExpiredHop, kNoIface);
      return;
    default:
      return;
  }

  const IfaceId egress = seg.traversal_egress(hop_idx);
  if (egress != kNoIface) {
    // A nonzero egress at the segment's last hop is a peering crossing: the
    // next AS's hop field lives at the start of the next segment.
    std::uint8_t next_seg = static_cast<std::uint8_t>(seg_idx);
    std::uint8_t next_hop = static_cast<std::uint8_t>(hop_idx + 1);
    if (hop_idx + 1 == seg.length()) {
      if (seg_idx + 1 >= header.path.segments.size()) {
        ++stats_.drop_malformed_path;
        return;
      }
      next_seg = static_cast<std::uint8_t>(seg_idx + 1);
      next_hop = 0;
    }
    send_out(egress, next_seg, next_hop, std::move(packet));
    return;
  }

  // Segment end at this AS.
  const bool last_segment = seg_idx + 1 == header.path.segments.size();
  if (last_segment) {
    deliver_local(header.dst, std::move(packet));
    return;
  }

  // Crossover: the next segment must start here with no ingress interface.
  const DataplaneSegment& next_seg = header.path.segments[seg_idx + 1];
  if (next_seg.length() == 0 || next_seg.traversal_ingress(0) != kNoIface) {
    ++stats_.drop_malformed_path;
    return;
  }
  switch (check_hop(next_seg, 0, is_scmp)) {
    case HopCheck::kOk:
      break;
    case HopCheck::kExpired:
      // Report with the cursor still on our completed hop so the reversed
      // prefix ends at this AS.
      send_scmp(header, seg_idx, hop_idx, ScmpType::kExpiredHop, kNoIface);
      return;
    default:
      return;
  }
  const IfaceId next_egress = next_seg.traversal_egress(0);
  if (next_egress == kNoIface) {
    if (seg_idx + 2 == header.path.segments.size()) {
      // A one-hop final segment ending right here.
      deliver_local(header.dst, std::move(packet));
    } else {
      ++stats_.drop_malformed_path;
    }
    return;
  }
  send_out(next_egress, static_cast<std::uint8_t>(seg_idx + 1), 1, std::move(packet));
}

void BorderRouter::deliver_local(const ScionAddr& dst, net::Packet&& packet) {
  if (dst.ia != local_) {
    ++stats_.drop_wrong_as;
    return;
  }
  const auto access_if = router_.host_route(dst.host);
  if (!access_if.has_value()) {
    ++stats_.drop_no_host;
    PAN_DEBUG(kLog) << local_.to_string() << ": no host " << dst.host.to_string();
    return;
  }
  ++stats_.delivered;
  packet.dst = dst.host;
  router_.network().send(router_.node(), *access_if, std::move(packet));
}

void BorderRouter::send_out(IfaceId egress, std::uint8_t cur_seg, std::uint8_t cur_hop,
                            net::Packet&& packet) {
  const net::IfId out_if = to_net_if(egress);
  if (out_if >= router_.network().interface_count(router_.node())) {
    ++stats_.drop_malformed_path;
    return;
  }
  if (!router_.network().link_up(router_.node(), out_if)) {
    ++stats_.drop_link_down;
    // The failure happened while processing the hop *before* the advanced
    // cursor; the packet bytes still carry that cursor, so report from there.
    send_scmp_from_bytes(packet.payload.span(), ScmpType::kLinkDown, egress);
    return;
  }
  patch_cursor(packet.payload, cur_seg, cur_hop);
  ++stats_.forwarded;
  if (config_.forward_latency != nullptr) {
    config_.forward_latency->record(router_.network().simulator().now() - packet.sent_at);
  }
  router_.network().send(router_.node(), out_if, std::move(packet));
}

}  // namespace pan::scion
