#include "scion/border_router.hpp"

#include "util/log.hpp"

namespace pan::scion {

namespace {
constexpr std::string_view kLog = "br";
}

BorderRouter::BorderRouter(net::Router& router, IsdAsn local, ForwardingKey key,
                           BorderRouterConfig config)
    : router_(router), local_(local), key_(std::move(key)), config_(config) {
  router_.set_scion_handler(
      [this](net::Packet&& p, net::IfId in_if) { handle(std::move(p), in_if); });
}

void BorderRouter::handle(net::Packet&& packet, net::IfId /*in_if*/) {
  if (config_.processing_delay > Duration::zero()) {
    auto& sim = router_.network().simulator();
    sim.schedule_after(config_.processing_delay,
                       [this, p = std::move(packet)]() mutable { process(std::move(p)); });
  } else {
    process(std::move(packet));
  }
}

BorderRouter::HopCheck BorderRouter::check_hop(const DataplaneSegment& seg,
                                               std::size_t hop_index, bool is_scmp) {
  const HopField& hf = seg.hop_at(hop_index);
  if (hf.isd_as != local_) {
    ++stats_.drop_wrong_as;
    PAN_DEBUG(kLog) << local_.to_string() << ": hop field for " << hf.isd_as.to_string();
    return HopCheck::kWrongAs;
  }
  if (config_.verify_macs && !verify_hop_field(hf, seg.origin_ts, key_)) {
    ++stats_.drop_mac;
    PAN_DEBUG(kLog) << local_.to_string() << ": hop-field MAC verification failed";
    return HopCheck::kBadMac;
  }
  // SCMP error reports get an expiry grace: they travel the reversed prefix
  // of the very path whose hops just expired, and the source must still
  // learn about it. MAC validity (path authorization) is never waived.
  if (!is_scmp && config_.current_unix_time != 0 &&
      seg.origin_ts + hf.expiry_s < config_.current_unix_time) {
    ++stats_.drop_expired;
    return HopCheck::kExpired;
  }
  return HopCheck::kOk;
}

void BorderRouter::send_scmp(const ScionHeader& original, std::size_t cur_seg,
                             std::size_t cur_hop, ScmpType type, IfaceId interface) {
  if (original.next_proto == kProtoScmp) return;  // never report on reports
  if (original.src.ia.is_unspecified()) return;

  ScmpMessage message;
  message.type = type;
  message.origin_as = local_;
  message.interface = interface;
  message.original_dst = original.dst;
  message.original_dst_port = original.dst_port;

  ScionHeader header;
  header.src = ScionAddr{local_, net::IpAddr{0}};
  header.dst = original.src;
  header.next_proto = kProtoScmp;
  header.path = original.path.reversed_prefix(cur_seg, cur_hop);
  header.cur_seg = 0;
  header.cur_hop = 0;

  net::Packet packet;
  packet.proto = net::Protocol::kScion;
  packet.dst = original.src.host;
  packet.payload = serialize_scion_packet(header, message.serialize());
  ++stats_.scmp_sent;
  PAN_DEBUG(kLog) << local_.to_string() << ": originating " << message.to_string();
  // The report enters this router's own forwarding path: the first hop of
  // the reversed prefix is our hop field.
  process(std::move(packet));
}

void BorderRouter::process(net::Packet&& packet) {
  auto parsed = parse_scion_packet(packet.payload);
  if (!parsed.ok()) {
    ++stats_.drop_parse;
    PAN_DEBUG(kLog) << local_.to_string() << ": " << parsed.error();
    return;
  }
  const ScionHeader& header = parsed.value().header;

  // Reservation validation and policing (Colibri-lite): conforming packets
  // ride priority; unknown/expired/over-rate reservations are dropped so a
  // forged or abusive id cannot claim priority capacity.
  if (header.reservation_id != 0 && config_.reservations != nullptr) {
    const PoliceResult verdict =
        config_.reservations->police(header.reservation_id, local_,
                                     router_.network().simulator().now(), packet.wire_size());
    if (verdict != PoliceResult::kAllow) {
      ++stats_.drop_reservation;
      PAN_DEBUG(kLog) << local_.to_string() << ": reservation drop ("
                      << static_cast<int>(verdict) << ") id " << header.reservation_id;
      return;
    }
    packet.priority = true;
  }

  // Intra-AS packet: empty path, deliver directly.
  if (header.path.segments.empty()) {
    deliver_local(header, std::move(packet));
    return;
  }

  const std::size_t seg_idx = header.cur_seg;
  const std::size_t hop_idx = header.cur_hop;
  if (seg_idx >= header.path.segments.size() ||
      hop_idx >= header.path.segments[seg_idx].length()) {
    ++stats_.drop_malformed_path;
    return;
  }
  const DataplaneSegment& seg = header.path.segments[seg_idx];
  const bool is_scmp = header.next_proto == kProtoScmp;
  switch (check_hop(seg, hop_idx, is_scmp)) {
    case HopCheck::kOk:
      break;
    case HopCheck::kExpired:
      send_scmp(header, seg_idx, hop_idx, ScmpType::kExpiredHop, kNoIface);
      return;
    default:
      return;
  }

  const IfaceId egress = seg.traversal_egress(hop_idx);
  if (egress != kNoIface) {
    // A nonzero egress at the segment's last hop is a peering crossing: the
    // next AS's hop field lives at the start of the next segment.
    std::uint8_t next_seg = static_cast<std::uint8_t>(seg_idx);
    std::uint8_t next_hop = static_cast<std::uint8_t>(hop_idx + 1);
    if (hop_idx + 1 == seg.length()) {
      if (seg_idx + 1 >= header.path.segments.size()) {
        ++stats_.drop_malformed_path;
        return;
      }
      next_seg = static_cast<std::uint8_t>(seg_idx + 1);
      next_hop = 0;
    }
    send_out(header, egress, next_seg, next_hop, std::move(packet));
    return;
  }

  // Segment end at this AS.
  const bool last_segment = seg_idx + 1 == header.path.segments.size();
  if (last_segment) {
    deliver_local(header, std::move(packet));
    return;
  }

  // Crossover: the next segment must start here with no ingress interface.
  const DataplaneSegment& next_seg = header.path.segments[seg_idx + 1];
  if (next_seg.length() == 0 || next_seg.traversal_ingress(0) != kNoIface) {
    ++stats_.drop_malformed_path;
    return;
  }
  switch (check_hop(next_seg, 0, is_scmp)) {
    case HopCheck::kOk:
      break;
    case HopCheck::kExpired:
      // Report with the cursor still on our completed hop so the reversed
      // prefix ends at this AS.
      send_scmp(header, seg_idx, hop_idx, ScmpType::kExpiredHop, kNoIface);
      return;
    default:
      return;
  }
  const IfaceId next_egress = next_seg.traversal_egress(0);
  if (next_egress == kNoIface) {
    if (seg_idx + 2 == header.path.segments.size()) {
      // A one-hop final segment ending right here.
      deliver_local(header, std::move(packet));
    } else {
      ++stats_.drop_malformed_path;
    }
    return;
  }
  send_out(header, next_egress, static_cast<std::uint8_t>(seg_idx + 1), 1, std::move(packet));
}

void BorderRouter::deliver_local(const ScionHeader& header, net::Packet&& packet) {
  if (header.dst.ia != local_) {
    ++stats_.drop_wrong_as;
    return;
  }
  const auto access_if = router_.host_route(header.dst.host);
  if (!access_if.has_value()) {
    ++stats_.drop_no_host;
    PAN_DEBUG(kLog) << local_.to_string() << ": no host " << header.dst.host.to_string();
    return;
  }
  ++stats_.delivered;
  packet.dst = header.dst.host;
  router_.network().send(router_.node(), *access_if, std::move(packet));
}

void BorderRouter::send_out(const ScionHeader& header, IfaceId egress, std::uint8_t cur_seg,
                            std::uint8_t cur_hop, net::Packet&& packet) {
  const net::IfId out_if = to_net_if(egress);
  if (out_if >= router_.network().interface_count(router_.node())) {
    ++stats_.drop_malformed_path;
    return;
  }
  if (!router_.network().link_up(router_.node(), out_if)) {
    ++stats_.drop_link_down;
    // The failure happened while processing the hop *before* the advanced
    // cursor; report from there.
    send_scmp(header, header.cur_seg, header.cur_hop, ScmpType::kLinkDown, egress);
    return;
  }
  patch_cursor(packet.payload, cur_seg, cur_hop);
  ++stats_.forwarded;
  router_.network().send(router_.node(), out_if, std::move(packet));
}

}  // namespace pan::scion
