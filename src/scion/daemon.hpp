// The SCION daemon ("sciond"): the per-AS path service client that end-host
// applications query for candidate paths to a destination AS.
//
// It combines up / core / down segments from the path-server infrastructure
// into end-to-end paths, deduplicates, sorts (latency, then hop count), and
// caches results. Queries are asynchronous: a cache miss costs a configurable
// lookup latency (the local path-service round trip), a hit completes in the
// same event — the behaviour that matters for page-load timing.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "scion/path.hpp"
#include "scion/path_server.hpp"
#include "sim/simulator.hpp"

namespace pan::scion {

struct DaemonConfig {
  /// Round trip to the local path service on a cache miss.
  Duration lookup_latency = milliseconds(1);
  /// Maximum candidate paths returned per destination.
  std::size_t max_paths = 40;
  /// Cache entries expire after this long (re-query after).
  Duration cache_ttl = seconds(300);
};

class Daemon {
 public:
  Daemon(sim::Simulator& sim, const PathServerInfra& infra, IsdAsn local_as,
         DaemonConfig config = {});

  [[nodiscard]] IsdAsn local_as() const { return local_as_; }
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }

  /// Asynchronous query; callback fires after the simulated lookup latency
  /// (immediately within the current event when cached).
  void query(IsdAsn dst, std::function<void(std::vector<Path>)> callback);

  /// Synchronous combination without latency modeling (tests, setup code).
  [[nodiscard]] std::vector<Path> query_now(IsdAsn dst);

  [[nodiscard]] std::uint64_t cache_hits() const { return cache_hits_; }
  [[nodiscard]] std::uint64_t cache_misses() const { return cache_misses_; }

  /// Fault injection: a frozen daemon models path-server staleness — cached
  /// entries are served even past their TTL (stale answers), and cache
  /// misses come back empty after the lookup latency instead of consulting
  /// the path-server infrastructure.
  void set_frozen(bool frozen) { frozen_ = frozen; }
  [[nodiscard]] bool frozen() const { return frozen_; }
  /// Expired cache entries served while frozen.
  [[nodiscard]] std::uint64_t stale_serves() const { return stale_serves_; }
  /// Cache misses that failed (empty path set) while frozen.
  [[nodiscard]] std::uint64_t frozen_failures() const { return frozen_failures_; }

  /// Drops all cached entries (e.g. topology change in tests).
  void flush_cache();

 private:
  [[nodiscard]] std::vector<Path> combine(IsdAsn dst) const;

  struct CacheEntry {
    std::vector<Path> paths;
    TimePoint fetched_at;
  };

  sim::Simulator& sim_;
  const PathServerInfra& infra_;
  IsdAsn local_as_;
  DaemonConfig config_;
  std::unordered_map<IsdAsn, CacheEntry> cache_;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t cache_misses_ = 0;
  bool frozen_ = false;
  std::uint64_t stale_serves_ = 0;
  std::uint64_t frozen_failures_ = 0;
};

}  // namespace pan::scion
