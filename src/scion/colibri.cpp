#include "scion/colibri.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace pan::scion {

ReservationManager::ReservationManager(ColibriConfig config) : config_(config) {}

void ReservationManager::register_link(IsdAsn as, IfaceId egress, double capacity_bps) {
  link_capacity_[key_of(as, egress).packed] = capacity_bps;
}

double ReservationManager::capacity_of(const LinkKey& key) const {
  const auto it = link_capacity_.find(key.packed);
  return it == link_capacity_.end() ? 0.0 : it->second;
}

Result<ReservationId> ReservationManager::reserve(const Path& path, double bandwidth_bps,
                                                  TimePoint now, Duration lifetime) {
  if (bandwidth_bps <= 0) return Err("reservation bandwidth must be positive");
  if (path.hops().empty()) return Err("cannot reserve on an intra-AS path");
  if (lifetime <= Duration::zero()) lifetime = config_.default_lifetime;

  // Collect the directed links: each hop's egress except the last.
  std::vector<std::pair<IsdAsn, IfaceId>> links;
  for (const PathHop& hop : path.hops()) {
    if (hop.egress == kNoIface) continue;
    links.emplace_back(hop.isd_as, hop.egress);
  }
  if (links.empty()) return Err("path has no inter-AS links");

  // Admission check against every link's reservable budget.
  for (const auto& [as, egress] : links) {
    const LinkKey key = key_of(as, egress);
    const double capacity = capacity_of(key);
    if (capacity <= 0) {
      return Err("unknown link capacity at " + as.to_string() + "#" +
                 std::to_string(egress));
    }
    const double budget = capacity * config_.max_reservable_fraction;
    const double in_use = reserved_on(as, egress, now);
    if (in_use + bandwidth_bps > budget) {
      return Err(strings::format("admission denied at %s#%u: %.0f of %.0f bps budget in use",
                                 as.to_string().c_str(), egress, in_use, budget));
    }
  }

  Reservation reservation;
  reservation.bandwidth_bps = bandwidth_bps;
  reservation.expires = now + lifetime;
  reservation.links = links;
  for (const PathHop& hop : path.hops()) {
    reservation.ases.push_back(hop.isd_as);
  }
  for (const auto& [as, egress] : links) {
    link_reserved_[key_of(as, egress).packed] += bandwidth_bps;
  }
  const ReservationId id = next_id_++;
  reservations_[id] = std::move(reservation);
  return id;
}

void ReservationManager::expire_if_needed(ReservationId id, TimePoint now) {
  const auto it = reservations_.find(id);
  if (it == reservations_.end() || it->second.expires > now) return;
  for (const auto& [as, egress] : it->second.links) {
    double& reserved = link_reserved_[key_of(as, egress).packed];
    reserved = std::max(0.0, reserved - it->second.bandwidth_bps);
  }
  reservations_.erase(it);
}

void ReservationManager::release(ReservationId id, TimePoint now) {
  const auto it = reservations_.find(id);
  if (it == reservations_.end()) return;
  it->second.expires = now;  // force immediate expiry
  expire_if_needed(id, now);
}

Status ReservationManager::renew(ReservationId id, TimePoint now, Duration lifetime) {
  expire_if_needed(id, now);
  const auto it = reservations_.find(id);
  if (it == reservations_.end()) return Err("unknown or expired reservation");
  it->second.expires = now + lifetime;
  return {};
}

PoliceResult ReservationManager::police(ReservationId id, IsdAsn as, TimePoint now,
                                        std::size_t bytes) {
  expire_if_needed(id, now);
  const auto it = reservations_.find(id);
  if (it == reservations_.end()) return PoliceResult::kUnknownReservation;
  Reservation& reservation = it->second;
  if (reservation.expires <= now) return PoliceResult::kExpired;
  if (std::find(reservation.ases.begin(), reservation.ases.end(), as) ==
      reservation.ases.end()) {
    return PoliceResult::kWrongAs;
  }

  auto [bucket_it, inserted] = reservation.buckets.try_emplace(
      as, std::make_pair(reservation.bandwidth_bps / 8.0 * config_.burst_window.seconds(),
                         now));
  auto& [tokens, last] = bucket_it->second;
  if (!inserted) {
    const double refill = reservation.bandwidth_bps / 8.0 * (now - last).seconds();
    const double burst = reservation.bandwidth_bps / 8.0 * config_.burst_window.seconds();
    tokens = std::min(burst, tokens + refill);
    last = now;
  }
  if (tokens < static_cast<double>(bytes)) return PoliceResult::kOverRate;
  tokens -= static_cast<double>(bytes);
  return PoliceResult::kAllow;
}

std::size_t ReservationManager::active_reservations(TimePoint now) const {
  std::size_t count = 0;
  for (const auto& [id, reservation] : reservations_) {
    if (reservation.expires > now) ++count;
  }
  return count;
}

double ReservationManager::reserved_on(IsdAsn as, IfaceId egress, TimePoint now) const {
  // Recompute from live reservations so lazily-expired ones do not count.
  double total = 0;
  for (const auto& [id, reservation] : reservations_) {
    if (reservation.expires <= now) continue;
    for (const auto& [link_as, link_egress] : reservation.links) {
      if (link_as == as && link_egress == egress) total += reservation.bandwidth_bps;
    }
  }
  return total;
}

}  // namespace pan::scion
