// Path segments: the product of beaconing.
//
// A PathSegment is an authenticated record of one beacon's journey: segment
// info (origin AS, origination timestamp) plus one AsEntry per AS traversed.
// Each AsEntry carries the hop field (data-plane authorization), the
// metadata decorations of the link the beacon crossed to reach that AS, a
// snapshot of per-AS metadata, and a signature chaining over everything that
// precedes it — so a downstream AS cannot rewrite upstream history.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "crypto/signature.hpp"
#include "scion/hopfield.hpp"
#include "scion/pki.hpp"
#include "scion/types.hpp"

namespace pan::scion {

enum class SegmentType : std::uint8_t { kCore, kDown };

[[nodiscard]] const char* to_string(SegmentType t);

/// A peering shortcut offered by an AS: a second, alternatively-sealed hop
/// field whose ingress is the peering interface instead of the parent link.
/// Replacing the main hop field with it authorizes traffic to leave (or
/// enter) the segment sideways across the peering link — SCION's peering
/// path construction.
struct PeerEntry {
  /// in_if = local peering interface, out_if = the entry's beacon-direction
  /// egress (toward the leaf; 0 at the segment end). Sealed by this AS.
  HopField hop;
  IsdAsn peer_as;
  /// The peer's interface id on the peering link.
  IfaceId peer_if = kNoIface;
  LinkMeta peer_link;
};

struct AsEntry {
  HopField hop;
  /// Decorations of the link crossed from the previous AS in beacon
  /// direction (zeroed for the origin AS, which has no ingress link).
  LinkMeta ingress_link;
  AsMeta as_meta;
  /// Peering shortcuts this AS offers at this position in the segment.
  std::vector<PeerEntry> peers;
  crypto::Signature signature;
};

struct PathSegment {
  SegmentType type = SegmentType::kDown;
  IsdAsn origin;
  /// Origination timestamp, seconds (also the hop-field MAC epoch).
  std::uint32_t origin_ts = 0;

  std::vector<AsEntry> entries;

  [[nodiscard]] IsdAsn first_as() const { return entries.front().hop.isd_as; }
  [[nodiscard]] IsdAsn last_as() const { return entries.back().hop.isd_as; }
  [[nodiscard]] std::size_t length() const { return entries.size(); }

  /// Stable identifier: hash over the AS/interface sequence.
  [[nodiscard]] std::string id() const;

  /// Full-content digest covering every field *including signatures* —
  /// unlike id(), two segments share a content_digest() only if they are
  /// byte-identical on the wire. This is the key for verified-segment
  /// memos: a re-signed or tampered variant of the same AS path digests
  /// differently and therefore cannot hit a stale memo entry.
  [[nodiscard]] crypto::Digest content_digest() const;

  /// Bytes signed by entry `index`: segment info, all previous entries
  /// (including their signatures, forming the chain), and entry `index`
  /// itself without its signature.
  [[nodiscard]] Bytes signing_input(std::size_t index) const;
};

/// Verifies every entry's signature against chain-validated AS certificates
/// from `trust`. Returns false if any key is missing/invalid or any
/// signature fails. Verification runs as one crypto::verify_batch; pass a
/// PreimageCache to amortize preimage hashing across segments signed by the
/// same (reused) keys.
[[nodiscard]] bool verify_segment(const PathSegment& segment, const TrustStore& trust,
                                  crypto::PreimageCache* cache = nullptr);

}  // namespace pan::scion
