#include "scion/header.hpp"

#include <cassert>

namespace pan::scion {

Bytes serialize_scion_packet(const ScionHeader& header, std::span<const std::uint8_t> payload) {
  ByteWriter w;
  write_scion_header(w, header);
  w.raw(payload);
  return std::move(w).take();
}

Result<ParsedScionPacket> parse_scion_packet(std::span<const std::uint8_t> data) {
  ByteReader r(data);
  if (r.u8() != kScionMagic) return Err("bad SCION magic");
  ParsedScionPacket out;
  ScionHeader& h = out.header;
  h.cur_seg = r.u8();
  h.cur_hop = r.u8();
  h.next_proto = r.u8();
  h.src.ia = IsdAsn::from_packed(r.u64());
  h.src.host = net::IpAddr{r.u32()};
  h.dst.ia = IsdAsn::from_packed(r.u64());
  h.dst.host = net::IpAddr{r.u32()};
  h.src_port = r.u16();
  h.dst_port = r.u16();
  h.reservation_id = r.u32();
  const std::uint8_t seg_count = r.u8();
  h.path.segments.reserve(seg_count);
  for (std::uint8_t s = 0; s < seg_count; ++s) {
    DataplaneSegment seg;
    seg.reversed = (r.u8() & 1) != 0;
    seg.origin_ts = r.u32();
    const std::uint8_t hop_count = r.u8();
    seg.hops.reserve(hop_count);
    for (std::uint8_t i = 0; i < hop_count; ++i) {
      seg.hops.push_back(parse_hop_field(r));
    }
    h.path.segments.push_back(std::move(seg));
  }
  if (r.failed()) return Err("truncated SCION header");
  out.payload_offset = r.position();
  out.payload = data.subspan(r.position());
  return out;
}

Result<ScionHeaderView> ScionHeaderView::parse(std::span<const std::uint8_t> data) {
  if (data.size() < kScionFixedHeaderSize) return Err("truncated SCION header");
  if (data[0] != kScionMagic) return Err("bad SCION magic");
  const std::uint8_t seg_count = data[kScionFixedHeaderSize - 1];
  std::size_t off = kScionFixedHeaderSize;
  for (std::uint8_t s = 0; s < seg_count; ++s) {
    if (data.size() - off < kSegmentMetaSize) return Err("truncated SCION header");
    const std::uint8_t hop_count = data[off + 5];
    off += kSegmentMetaSize;
    const std::size_t hops_size = std::size_t{hop_count} * kHopFieldWireSize;
    if (data.size() - off < hops_size) return Err("truncated SCION header");
    off += hops_size;
  }
  ScionHeaderView v;
  v.data_ = data;
  v.header_size_ = off;
  v.seg_count_ = seg_count;
  return v;
}

ScionHeaderView::SegmentInfo ScionHeaderView::segment(std::uint8_t index) const {
  assert(index < seg_count_);
  std::size_t off = kScionFixedHeaderSize;
  for (std::uint8_t s = 0; s < index; ++s) {
    const std::uint8_t hop_count = data_[off + 5];
    off += kSegmentMetaSize + std::size_t{hop_count} * kHopFieldWireSize;
  }
  SegmentInfo info;
  info.reversed = (data_[off] & 1) != 0;
  info.origin_ts = read_be32(data_.data() + off + 1);
  info.hop_count = data_[off + 5];
  info.hops_offset = off + kSegmentMetaSize;
  return info;
}

HopField ScionHeaderView::hop(const SegmentInfo& seg, std::uint8_t traversal_index) const {
  assert(traversal_index < seg.hop_count);
  const std::size_t wire_index =
      seg.reversed ? std::size_t{seg.hop_count} - 1 - traversal_index : traversal_index;
  return decode_hop_field(data_.data() + seg.hops_offset + wire_index * kHopFieldWireSize);
}

ScionHeader ScionHeaderView::materialize() const {
  // The view validated bounds, so the eager parse cannot fail.
  Result<ParsedScionPacket> parsed = parse_scion_packet(data_);
  assert(parsed.ok());
  return std::move(parsed.value().header);
}

void patch_cursor(Bytes& packet, std::uint8_t cur_seg, std::uint8_t cur_hop) {
  if (packet.size() <= ParsedScionPacket::kCurHopOffset) return;
  packet[ParsedScionPacket::kCurSegOffset] = cur_seg;
  packet[ParsedScionPacket::kCurHopOffset] = cur_hop;
}

void patch_cursor(net::PacketView& packet, std::uint8_t cur_seg, std::uint8_t cur_hop) {
  if (packet.size() <= ParsedScionPacket::kCurHopOffset) return;
  std::span<std::uint8_t> bytes = packet.mutable_span();
  bytes[ParsedScionPacket::kCurSegOffset] = cur_seg;
  bytes[ParsedScionPacket::kCurHopOffset] = cur_hop;
}

std::size_t scion_header_size(const DataplanePath& path) {
  std::size_t size = kScionFixedHeaderSize;
  for (const DataplaneSegment& seg : path.segments) {
    size += kSegmentMetaSize + seg.hops.size() * kHopFieldWireSize;
  }
  return size;
}

}  // namespace pan::scion
