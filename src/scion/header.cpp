#include "scion/header.hpp"

namespace pan::scion {

Bytes serialize_scion_packet(const ScionHeader& header, std::span<const std::uint8_t> payload) {
  ByteWriter w;
  w.u8(kScionMagic);
  w.u8(header.cur_seg);
  w.u8(header.cur_hop);
  w.u8(header.next_proto);
  w.u64(header.src.ia.packed());
  w.u32(header.src.host.value());
  w.u64(header.dst.ia.packed());
  w.u32(header.dst.host.value());
  w.u16(header.src_port);
  w.u16(header.dst_port);
  w.u32(header.reservation_id);
  w.u8(static_cast<std::uint8_t>(header.path.segments.size()));
  for (const DataplaneSegment& seg : header.path.segments) {
    w.u8(seg.reversed ? 1 : 0);
    w.u32(seg.origin_ts);
    w.u8(static_cast<std::uint8_t>(seg.hops.size()));
    for (const HopField& hf : seg.hops) {
      serialize_hop_field(w, hf);
    }
  }
  w.raw(payload);
  return std::move(w).take();
}

Result<ParsedScionPacket> parse_scion_packet(std::span<const std::uint8_t> data) {
  ByteReader r(data);
  if (r.u8() != kScionMagic) return Err("bad SCION magic");
  ParsedScionPacket out;
  ScionHeader& h = out.header;
  h.cur_seg = r.u8();
  h.cur_hop = r.u8();
  h.next_proto = r.u8();
  h.src.ia = IsdAsn::from_packed(r.u64());
  h.src.host = net::IpAddr{r.u32()};
  h.dst.ia = IsdAsn::from_packed(r.u64());
  h.dst.host = net::IpAddr{r.u32()};
  h.src_port = r.u16();
  h.dst_port = r.u16();
  h.reservation_id = r.u32();
  const std::uint8_t seg_count = r.u8();
  h.path.segments.reserve(seg_count);
  for (std::uint8_t s = 0; s < seg_count; ++s) {
    DataplaneSegment seg;
    seg.reversed = (r.u8() & 1) != 0;
    seg.origin_ts = r.u32();
    const std::uint8_t hop_count = r.u8();
    seg.hops.reserve(hop_count);
    for (std::uint8_t i = 0; i < hop_count; ++i) {
      seg.hops.push_back(parse_hop_field(r));
    }
    h.path.segments.push_back(std::move(seg));
  }
  if (r.failed()) return Err("truncated SCION header");
  out.payload = r.raw(r.remaining());
  return out;
}

void patch_cursor(Bytes& packet, std::uint8_t cur_seg, std::uint8_t cur_hop) {
  if (packet.size() <= ParsedScionPacket::kCurHopOffset) return;
  packet[ParsedScionPacket::kCurSegOffset] = cur_seg;
  packet[ParsedScionPacket::kCurHopOffset] = cur_hop;
}

std::size_t scion_header_size(const DataplanePath& path) {
  // Fixed part: 4 + 12 + 12 + 4 + 4 (reservation) + 1 bytes.
  std::size_t size = 37;
  for (const DataplaneSegment& seg : path.segments) {
    size += 6;  // flags + ts + hop count
    size += seg.hops.size() * (8 + 2 + 2 + 4 + crypto::kShortMacSize);
  }
  return size;
}

}  // namespace pan::scion
