#include "scion/path.hpp"

#include <algorithm>
#include <limits>
#include <unordered_set>

#include "crypto/sha256.hpp"
#include "util/strings.hpp"

namespace pan::scion {

const HopField& DataplaneSegment::hop_at(std::size_t traversal_index) const {
  return reversed ? hops[hops.size() - 1 - traversal_index] : hops[traversal_index];
}

IfaceId DataplaneSegment::traversal_ingress(std::size_t traversal_index) const {
  const HopField& hf = hop_at(traversal_index);
  return reversed ? hf.out_if : hf.in_if;
}

IfaceId DataplaneSegment::traversal_egress(std::size_t traversal_index) const {
  const HopField& hf = hop_at(traversal_index);
  return reversed ? hf.in_if : hf.out_if;
}

std::size_t DataplanePath::total_hops() const {
  std::size_t n = 0;
  for (const DataplaneSegment& seg : segments) n += seg.hops.size();
  return n;
}

DataplanePath DataplanePath::reversed_prefix(std::size_t cur_seg, std::size_t cur_hop) const {
  DataplanePath prefix;
  for (std::size_t s = 0; s <= cur_seg && s < segments.size(); ++s) {
    DataplaneSegment seg = segments[s];
    if (s == cur_seg && cur_hop + 1 < seg.hops.size()) {
      // Keep traversal hops [0..cur_hop]: a prefix of the beacon-order list
      // for forward segments, a suffix for reversed ones.
      if (seg.reversed) {
        seg.hops.erase(seg.hops.begin(),
                       seg.hops.end() - static_cast<std::ptrdiff_t>(cur_hop + 1));
      } else {
        seg.hops.resize(cur_hop + 1);
      }
    }
    prefix.segments.push_back(std::move(seg));
  }
  return prefix.reversed();
}

DataplanePath DataplanePath::reversed() const {
  DataplanePath out;
  out.segments.reserve(segments.size());
  for (auto it = segments.rbegin(); it != segments.rend(); ++it) {
    DataplaneSegment seg = *it;
    seg.reversed = !seg.reversed;
    out.segments.push_back(std::move(seg));
  }
  return out;
}

Path::Path(IsdAsn src, IsdAsn dst, std::vector<PathHop> hops, PathMetadata meta,
           DataplanePath dataplane)
    : src_(src), dst_(dst), hops_(std::move(hops)), meta_(meta),
      dataplane_(std::move(dataplane)) {
  ByteWriter w;
  for (const PathHop& hop : hops_) {
    w.u64(hop.isd_as.packed());
    w.u16(hop.ingress);
    w.u16(hop.egress);
  }
  if (hops_.empty()) {
    fingerprint_ = "local-" + src_.to_string();
  } else {
    fingerprint_ =
        crypto::hex_digest(crypto::sha256(std::span<const std::uint8_t>(w.bytes()))).substr(0, 12);
  }
}

Path Path::local(IsdAsn ia) {
  PathMetadata meta;
  meta.mtu = 1500;
  meta.bandwidth_bps = std::numeric_limits<double>::infinity();
  meta.all_qos_capable = true;
  meta.all_allied = true;
  meta.expiry_s = std::numeric_limits<std::uint32_t>::max();
  return Path{ia, ia, {}, meta, DataplanePath{}};
}

bool Path::contains_as(IsdAsn ia) const {
  return std::any_of(hops_.begin(), hops_.end(),
                     [&](const PathHop& h) { return h.isd_as == ia; });
}

bool Path::uses_interface(IsdAsn ia, IfaceId iface) const {
  if (iface == kNoIface) return contains_as(ia);
  return std::any_of(hops_.begin(), hops_.end(), [&](const PathHop& h) {
    return h.isd_as == ia && (h.ingress == iface || h.egress == iface);
  });
}

bool Path::contains_isd(Isd isd) const {
  return std::any_of(hops_.begin(), hops_.end(),
                     [&](const PathHop& h) { return h.isd_as.isd() == isd; });
}

std::vector<std::string> Path::countries() const {
  std::vector<std::string> out;
  for (const PathHop& hop : hops_) {
    if (out.empty() || out.back() != hop.as_meta.country) {
      out.push_back(hop.as_meta.country);
    }
  }
  return out;
}

std::string Path::to_string() const {
  if (hops_.empty()) return "local(" + src_.to_string() + ")";
  // "A 1>3 B 2>1 C": egress interface of the previous AS, '>', ingress
  // interface of the next.
  std::string out = hops_.front().isd_as.to_string();
  for (std::size_t i = 1; i < hops_.size(); ++i) {
    out += " " + std::to_string(hops_[i - 1].egress) + ">" +
           std::to_string(hops_[i].ingress) + " " + hops_[i].isd_as.to_string();
  }
  return out;
}

namespace {

/// One segment in traversal orientation plus its source PathSegment.
struct OrientedSegment {
  const PathSegment* segment;
  bool reversed;

  [[nodiscard]] std::size_t length() const { return segment->entries.size(); }
  [[nodiscard]] const AsEntry& entry_at(std::size_t traversal_index) const {
    return reversed ? segment->entries[length() - 1 - traversal_index]
                    : segment->entries[traversal_index];
  }
  [[nodiscard]] IfaceId ingress_at(std::size_t i) const {
    const HopField& hf = entry_at(i).hop;
    return reversed ? hf.out_if : hf.in_if;
  }
  [[nodiscard]] IfaceId egress_at(std::size_t i) const {
    const HopField& hf = entry_at(i).hop;
    return reversed ? hf.in_if : hf.out_if;
  }
  [[nodiscard]] IsdAsn first_as() const { return entry_at(0).hop.isd_as; }
  [[nodiscard]] IsdAsn last_as() const { return entry_at(length() - 1).hop.isd_as; }
};

void accumulate_link(PathMetadata& meta, const LinkMeta& link) {
  meta.latency += link.latency;
  meta.bandwidth_bps = std::min(meta.bandwidth_bps, link.bandwidth_bps);
  meta.mtu = std::min(meta.mtu, link.mtu);
  meta.loss_rate = 1.0 - (1.0 - meta.loss_rate) * (1.0 - link.loss_rate);
  meta.jitter += link.jitter;
  meta.co2_g_per_gb += link.co2_g_per_gb;
  meta.cost_per_gb += link.cost_per_gb;
}

void accumulate_as(PathMetadata& meta, const AsMeta& as_meta, std::uint32_t hop_expiry,
                   std::uint32_t origin_ts) {
  meta.min_ethics_rating = std::min(meta.min_ethics_rating, as_meta.ethics_rating);
  meta.all_qos_capable = meta.all_qos_capable && as_meta.qos_capable;
  meta.all_allied = meta.all_allied && as_meta.allied;
  meta.co2_g_per_gb += as_meta.internal_co2_g_per_gb;
  const std::uint32_t abs_expiry = origin_ts + hop_expiry;
  meta.expiry_s = std::min(meta.expiry_s, abs_expiry);
}

}  // namespace

Result<Path> assemble_path(const PathSegment* up, const PathSegment* core,
                           const PathSegment* down, IsdAsn src, IsdAsn dst) {
  std::vector<OrientedSegment> parts;
  if (up != nullptr) parts.push_back({up, /*reversed=*/true});
  if (core != nullptr) parts.push_back({core, /*reversed=*/true});
  if (down != nullptr) parts.push_back({down, /*reversed=*/false});

  if (parts.empty()) {
    if (src != dst) return Err("no segments but src != dst");
    return Path::local(src);
  }

  // Endpoint checks.
  if (parts.front().first_as() != src) {
    return Err("path does not start at src: starts at " + parts.front().first_as().to_string());
  }
  if (parts.back().last_as() != dst) {
    return Err("path does not end at dst: ends at " + parts.back().last_as().to_string());
  }
  for (std::size_t p = 0; p + 1 < parts.size(); ++p) {
    if (parts[p].last_as() != parts[p + 1].first_as()) {
      return Err("segment junction mismatch: " + parts[p].last_as().to_string() + " vs " +
                 parts[p + 1].first_as().to_string());
    }
  }

  // Build the merged AS-level hop list and aggregate metadata.
  std::vector<PathHop> hops;
  PathMetadata meta;
  meta.bandwidth_bps = std::numeric_limits<double>::infinity();
  meta.mtu = std::numeric_limits<std::size_t>::max();
  meta.all_qos_capable = true;
  meta.all_allied = true;
  meta.expiry_s = std::numeric_limits<std::uint32_t>::max();

  for (std::size_t p = 0; p < parts.size(); ++p) {
    const OrientedSegment& part = parts[p];
    const std::uint32_t ts = part.segment->origin_ts;
    for (std::size_t i = 0; i < part.length(); ++i) {
      const AsEntry& entry = part.entry_at(i);
      // Each traversal step i>0 crosses a link; the link metadata lives on
      // the beacon-direction "downstream" entry of that link.
      if (i > 0) {
        const AsEntry& link_holder =
            part.reversed ? part.entry_at(i - 1) : part.entry_at(i);
        accumulate_link(meta, link_holder.ingress_link);
      }
      const bool is_junction_duplicate = p > 0 && i == 0;
      if (is_junction_duplicate) {
        // Merge with the previous part's last hop: keep its ingress, adopt
        // this part's egress.
        hops.back().egress = part.egress_at(0);
      } else {
        PathHop hop;
        hop.isd_as = entry.hop.isd_as;
        hop.ingress = part.ingress_at(i);
        hop.egress = part.egress_at(i);
        hop.as_meta = entry.as_meta;
        hops.push_back(std::move(hop));
      }
      accumulate_as(meta, entry.as_meta, entry.hop.expiry_s, ts);
    }
  }

  // Loop rejection.
  std::unordered_set<std::uint64_t> seen;
  for (const PathHop& hop : hops) {
    if (!seen.insert(hop.isd_as.packed()).second) {
      return Err("AS-level loop through " + hop.isd_as.to_string());
    }
  }

  // Dataplane representation mirrors the oriented segments.
  DataplanePath dataplane;
  for (const OrientedSegment& part : parts) {
    DataplaneSegment seg;
    seg.reversed = part.reversed;
    seg.origin_ts = part.segment->origin_ts;
    seg.hops.reserve(part.segment->entries.size());
    for (const AsEntry& entry : part.segment->entries) {
      seg.hops.push_back(entry.hop);
    }
    dataplane.segments.push_back(std::move(seg));
  }

  return Path{src, dst, std::move(hops), meta, std::move(dataplane)};
}

Result<Path> assemble_peering_path(const PathSegment& up, std::size_t up_pos,
                                   std::size_t up_peer, const PathSegment& down,
                                   std::size_t down_pos, std::size_t down_peer, IsdAsn src,
                                   IsdAsn dst) {
  if (up_pos >= up.entries.size() || down_pos >= down.entries.size()) {
    return Err("peering position out of range");
  }
  const AsEntry& x_entry = up.entries[up_pos];
  const AsEntry& y_entry = down.entries[down_pos];
  if (up_peer >= x_entry.peers.size() || down_peer >= y_entry.peers.size()) {
    return Err("peer entry index out of range");
  }
  const PeerEntry& x_peer = x_entry.peers[up_peer];
  const PeerEntry& y_peer = y_entry.peers[down_peer];
  // The two peer entries must describe the same link.
  if (x_peer.peer_as != y_entry.hop.isd_as || y_peer.peer_as != x_entry.hop.isd_as ||
      x_peer.peer_if != y_peer.hop.in_if || y_peer.peer_if != x_peer.hop.in_if) {
    return Err("peer entries do not describe a common peering link");
  }
  if (up.entries.back().hop.isd_as != src) {
    return Err("up segment does not end at src");
  }
  if (down.entries.back().hop.isd_as != dst) {
    return Err("down segment does not end at dst");
  }

  // Dataplane: beacon-order suffixes with the main hop at the peering
  // position replaced by the peer hop field.
  DataplaneSegment seg_up;
  seg_up.reversed = true;
  seg_up.origin_ts = up.origin_ts;
  for (std::size_t i = up_pos; i < up.entries.size(); ++i) {
    seg_up.hops.push_back(i == up_pos ? x_peer.hop : up.entries[i].hop);
  }
  DataplaneSegment seg_down;
  seg_down.reversed = false;
  seg_down.origin_ts = down.origin_ts;
  for (std::size_t j = down_pos; j < down.entries.size(); ++j) {
    seg_down.hops.push_back(j == down_pos ? y_peer.hop : down.entries[j].hop);
  }
  DataplanePath dataplane;
  dataplane.segments.push_back(std::move(seg_up));
  dataplane.segments.push_back(std::move(seg_down));

  // AS-level hops and metadata.
  std::vector<PathHop> hops;
  PathMetadata meta;
  meta.bandwidth_bps = std::numeric_limits<double>::infinity();
  meta.mtu = std::numeric_limits<std::size_t>::max();
  meta.all_qos_capable = true;
  meta.all_allied = true;
  meta.expiry_s = std::numeric_limits<std::uint32_t>::max();

  // Up part, traversal order src .. X (beacon positions end .. up_pos).
  for (std::size_t t = 0; t < dataplane.segments[0].hops.size(); ++t) {
    const std::size_t i = up.entries.size() - 1 - t;  // beacon position
    const AsEntry& entry = up.entries[i];
    PathHop hop;
    hop.isd_as = entry.hop.isd_as;
    hop.ingress = i == up.entries.size() - 1 ? kNoIface : entry.hop.out_if;
    hop.egress = i == up_pos ? x_peer.hop.in_if : entry.hop.in_if;
    hop.as_meta = entry.as_meta;
    hops.push_back(std::move(hop));
    accumulate_as(meta, entry.as_meta, entry.hop.expiry_s, up.origin_ts);
    if (i + 1 < up.entries.size()) {
      // Link between beacon positions i and i+1 (metadata on entry i+1).
      accumulate_link(meta, up.entries[i + 1].ingress_link);
    }
  }
  // The peering link itself.
  accumulate_link(meta, x_peer.peer_link);
  // Down part, traversal order Y .. dst (beacon positions down_pos .. end).
  for (std::size_t j = down_pos; j < down.entries.size(); ++j) {
    const AsEntry& entry = down.entries[j];
    PathHop hop;
    hop.isd_as = entry.hop.isd_as;
    hop.ingress = j == down_pos ? y_peer.hop.in_if : entry.hop.in_if;
    hop.egress = j + 1 < down.entries.size() ? entry.hop.out_if : kNoIface;
    hop.as_meta = entry.as_meta;
    hops.push_back(std::move(hop));
    accumulate_as(meta, entry.as_meta, entry.hop.expiry_s, down.origin_ts);
    if (j > down_pos) {
      accumulate_link(meta, entry.ingress_link);
    }
  }

  std::unordered_set<std::uint64_t> seen;
  for (const PathHop& hop : hops) {
    if (!seen.insert(hop.isd_as.packed()).second) {
      return Err("AS-level loop through " + hop.isd_as.to_string());
    }
  }
  return Path{src, dst, std::move(hops), meta, std::move(dataplane)};
}

}  // namespace pan::scion
