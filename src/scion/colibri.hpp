// Colibri-lite: cooperative inter-domain bandwidth reservations.
//
// The paper's QoS property row rests on reservation systems like Colibri
// (Giuliari et al., CoNEXT'21), which it cites. This is a lean but
// functional equivalent:
//   - admission control: a reservation for B bps along a path is granted
//     only if, on every directed inter-AS link it crosses, the sum of
//     admitted reservations stays below a configured fraction of the link
//     capacity;
//   - data-plane enforcement: packets carry the reservation id in the SCION
//     header; every on-path border router validates it and polices the rate
//     with a per-(reservation, AS) token bucket. Conforming packets are
//     marked priority (exempt from best-effort queue drops), over-rate or
//     unknown ids are dropped;
//   - lifetime: reservations expire and must be renewed.
//
// The manager is a logical control-plane service (like PathServerInfra):
// one instance per topology, shared by the admission API and the routers.
#pragma once

#include <unordered_map>

#include "scion/path.hpp"
#include "util/result.hpp"

namespace pan::scion {

using ReservationId = std::uint32_t;

struct ColibriConfig {
  /// Fraction of each link's capacity available to reservations.
  double max_reservable_fraction = 0.5;
  Duration default_lifetime = seconds(60);
  /// Token-bucket burst allowance, as time at the reserved rate.
  Duration burst_window = milliseconds(50);
};

enum class PoliceResult : std::uint8_t {
  kAllow,
  kUnknownReservation,
  kExpired,
  kOverRate,
  kWrongAs,  // reservation does not cover this AS
};

class ReservationManager {
 public:
  explicit ReservationManager(ColibriConfig config = {});

  /// Registers a directed link's capacity (topology calls this for every
  /// (AS, egress interface) at finalize time).
  void register_link(IsdAsn as, IfaceId egress, double capacity_bps);

  /// Admission: grants a reservation of `bandwidth_bps` along `path` for
  /// `lifetime` (default from config), or explains the refusal.
  [[nodiscard]] Result<ReservationId> reserve(const Path& path, double bandwidth_bps,
                                              TimePoint now,
                                              Duration lifetime = Duration::zero());

  /// Releases an active reservation (expired ones release lazily).
  void release(ReservationId id, TimePoint now);

  /// Extends an active reservation's expiry.
  [[nodiscard]] Status renew(ReservationId id, TimePoint now, Duration lifetime);

  /// Data-plane check at AS `as`: validates the id, checks coverage, and
  /// charges `bytes` against the per-(reservation, AS) token bucket.
  [[nodiscard]] PoliceResult police(ReservationId id, IsdAsn as, TimePoint now,
                                    std::size_t bytes);

  [[nodiscard]] std::size_t active_reservations(TimePoint now) const;
  /// Reserved bps currently admitted on a directed link.
  [[nodiscard]] double reserved_on(IsdAsn as, IfaceId egress, TimePoint now) const;

 private:
  struct LinkKey {
    std::uint64_t packed;
    bool operator==(const LinkKey&) const = default;
  };
  struct LinkKeyHash {
    std::size_t operator()(const LinkKey& k) const noexcept {
      return std::hash<std::uint64_t>{}(k.packed);
    }
  };
  static LinkKey key_of(IsdAsn as, IfaceId egress) {
    return LinkKey{(as.packed() << 16) ^ egress};
  }

  struct Reservation {
    double bandwidth_bps = 0;
    TimePoint expires;
    /// Directed links covered: (as, egress interface) pairs.
    std::vector<std::pair<IsdAsn, IfaceId>> links;
    /// ASes on the path (coverage check for policing).
    std::vector<IsdAsn> ases;
    /// Token buckets per AS: available bytes and last refill time.
    std::unordered_map<IsdAsn, std::pair<double, TimePoint>> buckets;
  };

  void expire_if_needed(ReservationId id, TimePoint now);
  [[nodiscard]] double capacity_of(const LinkKey& key) const;

  ColibriConfig config_;
  std::unordered_map<std::uint64_t, double> link_capacity_;  // key packed
  std::unordered_map<std::uint64_t, double> link_reserved_;
  std::unordered_map<ReservationId, Reservation> reservations_;
  ReservationId next_id_ = 1;
};

}  // namespace pan::scion
