// End-to-end SCION paths.
//
// A Path is what applications and the Path Policy Language reason about: an
// ordered list of AS-level hops plus aggregated metadata (latency, minimum
// bandwidth, MTU, loss, jitter, CO2, cost, countries, ...). It also carries
// the DataplanePath — the exact segment/hop-field structure the border
// routers will verify — so selecting a Path fully determines forwarding.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "scion/segment.hpp"
#include "util/result.hpp"

namespace pan::scion {

/// One segment as placed in a packet header. `reversed` means the segment is
/// traversed against its beaconing direction (up-segment usage).
struct DataplaneSegment {
  bool reversed = false;
  std::uint32_t origin_ts = 0;
  std::vector<HopField> hops;

  bool operator==(const DataplaneSegment&) const = default;

  /// Ingress/egress of hop `i` in traversal order.
  [[nodiscard]] const HopField& hop_at(std::size_t traversal_index) const;
  [[nodiscard]] std::size_t length() const { return hops.size(); }
  [[nodiscard]] IfaceId traversal_ingress(std::size_t traversal_index) const;
  [[nodiscard]] IfaceId traversal_egress(std::size_t traversal_index) const;
};

struct DataplanePath {
  std::vector<DataplaneSegment> segments;

  bool operator==(const DataplanePath&) const = default;

  [[nodiscard]] bool empty() const { return segments.empty(); }
  [[nodiscard]] std::size_t total_hops() const;
  /// The reply path: segments in reverse order, each flipped.
  [[nodiscard]] DataplanePath reversed() const;
  /// The reversed *traversed prefix* up to and including traversal position
  /// (cur_seg, cur_hop): the return route a router mid-path uses to send an
  /// SCMP error back toward the source. Hop-field MACs stay valid because
  /// they are direction-normalized.
  [[nodiscard]] DataplanePath reversed_prefix(std::size_t cur_seg, std::size_t cur_hop) const;
};

/// AS-level hop in traversal order (junction ASes merged into one hop).
struct PathHop {
  IsdAsn isd_as;
  IfaceId ingress = kNoIface;
  IfaceId egress = kNoIface;
  AsMeta as_meta;
};

struct PathMetadata {
  Duration latency = Duration::zero();
  double bandwidth_bps = 0;
  std::size_t mtu = 0;
  double loss_rate = 0;
  Duration jitter = Duration::zero();
  double co2_g_per_gb = 0;
  double cost_per_gb = 0;
  double min_ethics_rating = 100.0;
  bool all_qos_capable = false;
  bool all_allied = false;
  /// Expiry: minimum hop-field expiry across the path (absolute seconds).
  std::uint32_t expiry_s = 0;
};

class Path {
 public:
  Path() = default;
  Path(IsdAsn src, IsdAsn dst, std::vector<PathHop> hops, PathMetadata meta,
       DataplanePath dataplane);

  /// The trivial intra-AS path (no inter-AS hops, empty dataplane).
  [[nodiscard]] static Path local(IsdAsn ia);

  [[nodiscard]] IsdAsn src() const { return src_; }
  [[nodiscard]] IsdAsn dst() const { return dst_; }
  [[nodiscard]] const std::vector<PathHop>& hops() const { return hops_; }
  [[nodiscard]] const PathMetadata& meta() const { return meta_; }
  [[nodiscard]] const DataplanePath& dataplane() const { return dataplane_; }
  [[nodiscard]] bool is_local() const { return hops_.size() <= 1 && dataplane_.empty(); }

  [[nodiscard]] bool contains_as(IsdAsn ia) const;
  [[nodiscard]] bool contains_isd(Isd isd) const;
  /// True if the path crosses the given interface of the given AS (the
  /// granularity of SCMP revocations).
  [[nodiscard]] bool uses_interface(IsdAsn ia, IfaceId iface) const;
  /// Inter-AS hop count (number of links crossed).
  [[nodiscard]] std::size_t link_count() const {
    return hops_.empty() ? 0 : hops_.size() - 1;
  }
  /// Countries traversed, in order, consecutive duplicates removed.
  [[nodiscard]] std::vector<std::string> countries() const;

  /// Stable short identifier for statistics keys and logs.
  [[nodiscard]] const std::string& fingerprint() const { return fingerprint_; }
  /// Human-readable rendering: "1-110 0>2 ... 2-210".
  [[nodiscard]] std::string to_string() const;

 private:
  IsdAsn src_;
  IsdAsn dst_;
  std::vector<PathHop> hops_;
  PathMetadata meta_;
  DataplanePath dataplane_;
  std::string fingerprint_;
};

/// Assembles an end-to-end path from up to three segments:
///  - `up`:   a down-type segment from a core AS to `src`, traversed reversed
///            (nullptr when `src` is itself the source-side core);
///  - `core`: a core segment originated at the destination-side core and
///            ending at the source-side core, traversed reversed (nullptr
///            when both sides share the core AS);
///  - `down`: a down-type segment from the destination-side core to `dst`
///            (nullptr when `dst` is the destination-side core).
/// Fails on junction mismatches or AS-level loops.
[[nodiscard]] Result<Path> assemble_path(const PathSegment* up, const PathSegment* core,
                                         const PathSegment* down, IsdAsn src, IsdAsn dst);

/// Assembles a peering shortcut: the up segment is traversed from `src` up
/// to its entry at `up_pos` (whose main hop field is replaced by
/// `up.entries[up_pos].peers[up_peer]`), then the peering link is crossed,
/// then the down segment runs from its entry at `down_pos` (hop field
/// replaced by its matching peer entry) to `dst`. The peer entries must
/// reference each other's AS and interfaces.
[[nodiscard]] Result<Path> assemble_peering_path(const PathSegment& up, std::size_t up_pos,
                                                 std::size_t up_peer, const PathSegment& down,
                                                 std::size_t down_pos, std::size_t down_peer,
                                                 IsdAsn src, IsdAsn dst);

}  // namespace pan::scion
