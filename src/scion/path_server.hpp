// The path-server infrastructure: where beaconing registers segments and
// where daemons look them up.
//
// Simplification vs. production SCION (documented in DESIGN.md): a single
// logical segment store stands in for the distributed core/local path-server
// hierarchy. Lookup latency — the part that affects page load time — is
// modeled in the Daemon, not here.
#pragma once

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "scion/segment.hpp"

namespace pan::scion {

class PathServerInfra {
 public:
  /// Registers a segment produced by beaconing. Core segments are indexed by
  /// (origin, end); down segments by their leaf (last) AS.
  void register_segment(PathSegment segment);

  /// Drops all stored segments (re-beaconing replaces the whole store; core
  /// AS registrations survive).
  void clear_segments();

  void register_core_as(IsdAsn ia);
  [[nodiscard]] bool is_core(IsdAsn ia) const { return core_ases_.contains(ia); }
  [[nodiscard]] const std::unordered_set<IsdAsn>& core_ases() const { return core_ases_; }

  /// Down segments whose leaf AS is `leaf` (origins are core ASes).
  [[nodiscard]] const std::vector<PathSegment>& down_segments(IsdAsn leaf) const;

  /// Core segments originated at `origin` and ending at `end`.
  [[nodiscard]] std::vector<const PathSegment*> core_segments(IsdAsn origin, IsdAsn end) const;

  [[nodiscard]] std::size_t segment_count() const { return segment_count_; }
  [[nodiscard]] std::size_t down_segment_count() const;
  [[nodiscard]] std::size_t core_segment_count() const;

 private:
  std::unordered_map<IsdAsn, std::vector<PathSegment>> down_by_leaf_;
  // Key: origin.packed() hashed with end — use nested maps for clarity.
  std::unordered_map<IsdAsn, std::unordered_map<IsdAsn, std::vector<PathSegment>>>
      core_by_origin_end_;
  std::unordered_set<IsdAsn> core_ases_;
  std::size_t segment_count_ = 0;
};

}  // namespace pan::scion
