#include "scion/hopfield.hpp"

#include <algorithm>
#include <array>

#include "util/buffer.hpp"

namespace pan::scion {

namespace {

// u32 ts + u64 isd_as + u16 min + u16 max + u32 expiry.
using MacInput = std::array<std::uint8_t, 20>;

// Stack-allocated MAC input: the hop path verifies one MAC per forwarded
// packet, so this must not touch the heap.
MacInput mac_input(const HopField& hf, std::uint32_t origin_ts) {
  MacInput buf{};
  util::SpanWriter w(buf);
  w.u32(origin_ts);
  w.u64(hf.isd_as.packed());
  w.u16(std::min(hf.in_if, hf.out_if));
  w.u16(std::max(hf.in_if, hf.out_if));
  w.u32(hf.expiry_s);
  return buf;
}

}  // namespace

Bytes hop_mac_input(const HopField& hf, std::uint32_t origin_ts) {
  const MacInput buf = mac_input(hf, origin_ts);
  return Bytes(buf.begin(), buf.end());
}

void seal_hop_field(HopField& hf, std::uint32_t origin_ts, const ForwardingKey& key) {
  hf.mac = crypto::short_mac(key, mac_input(hf, origin_ts));
}

bool verify_hop_field(const HopField& hf, std::uint32_t origin_ts, const ForwardingKey& key) {
  const crypto::ShortMac expected = crypto::short_mac(key, mac_input(hf, origin_ts));
  return crypto::mac_equal(expected, hf.mac);
}

void seal_hop_field(HopField& hf, std::uint32_t origin_ts, const crypto::HmacKey& key) {
  hf.mac = key.short_mac(mac_input(hf, origin_ts));
}

bool verify_hop_field(const HopField& hf, std::uint32_t origin_ts, const crypto::HmacKey& key) {
  const crypto::ShortMac expected = key.short_mac(mac_input(hf, origin_ts));
  return crypto::mac_equal(expected, hf.mac);
}

HopField parse_hop_field(ByteReader& r) {
  HopField hf;
  hf.isd_as = IsdAsn::from_packed(r.u64());
  hf.in_if = r.u16();
  hf.out_if = r.u16();
  hf.expiry_s = r.u32();
  const Bytes mac = r.raw(crypto::kShortMacSize);
  if (mac.size() == crypto::kShortMacSize) {
    std::copy(mac.begin(), mac.end(), hf.mac.begin());
  }
  return hf;
}

HopField decode_hop_field(const std::uint8_t* wire) {
  HopField hf;
  hf.isd_as = IsdAsn::from_packed(read_be64(wire));
  hf.in_if = read_be16(wire + 8);
  hf.out_if = read_be16(wire + 10);
  hf.expiry_s = read_be32(wire + 12);
  std::copy(wire + 16, wire + 16 + crypto::kShortMacSize, hf.mac.begin());
  return hf;
}

}  // namespace pan::scion
