#include "scion/hopfield.hpp"

#include <algorithm>

namespace pan::scion {

Bytes hop_mac_input(const HopField& hf, std::uint32_t origin_ts) {
  ByteWriter w;
  w.u32(origin_ts);
  w.u64(hf.isd_as.packed());
  w.u16(std::min(hf.in_if, hf.out_if));
  w.u16(std::max(hf.in_if, hf.out_if));
  w.u32(hf.expiry_s);
  return std::move(w).take();
}

void seal_hop_field(HopField& hf, std::uint32_t origin_ts, const ForwardingKey& key) {
  hf.mac = crypto::short_mac(key, hop_mac_input(hf, origin_ts));
}

bool verify_hop_field(const HopField& hf, std::uint32_t origin_ts, const ForwardingKey& key) {
  const crypto::ShortMac expected = crypto::short_mac(key, hop_mac_input(hf, origin_ts));
  return crypto::mac_equal(expected, hf.mac);
}

void serialize_hop_field(ByteWriter& w, const HopField& hf) {
  w.u64(hf.isd_as.packed());
  w.u16(hf.in_if);
  w.u16(hf.out_if);
  w.u32(hf.expiry_s);
  w.raw(std::span<const std::uint8_t>(hf.mac));
}

HopField parse_hop_field(ByteReader& r) {
  HopField hf;
  hf.isd_as = IsdAsn::from_packed(r.u64());
  hf.in_if = r.u16();
  hf.out_if = r.u16();
  hf.expiry_s = r.u32();
  const Bytes mac = r.raw(crypto::kShortMacSize);
  if (mac.size() == crypto::kShortMacSize) {
    std::copy(mac.begin(), mac.end(), hf.mac.begin());
  }
  return hf;
}

}  // namespace pan::scion
