// Beaconing: the SCION control plane's path exploration.
//
// We model beacon propagation as a k-best loopless path enumeration per
// origin (priority queue ordered by hop count, then accumulated latency,
// then a deterministic sequence number): each AS accepts and re-propagates
// the k best beacons it sees per origin, exactly the candidate-selection
// role real beacon stores play. Propagation happens at topology build time
// (the paper's experiments run against a converged control plane; beacon
// *timing* is not part of any figure).

#include <queue>

#include "scion/topology.hpp"
#include "util/log.hpp"

namespace pan::scion {

namespace {
constexpr std::string_view kLog = "beacon";
}

void Topology::run_beaconing() {
  for (std::size_t i = 0; i < ases_.size(); ++i) {
    if (!ases_[i].spec.core) continue;
    // Core beaconing reaches other core ASes; down beaconing descends into
    // the ISD along parent->child links.
    propagate_beacons(i, /*core_beaconing=*/true);
    propagate_beacons(i, /*core_beaconing=*/false);
  }
  PAN_INFO(kLog) << "beaconing complete: " << infra_.core_segment_count() << " core + "
                 << infra_.down_segment_count() << " down segments";
}

void Topology::propagate_beacons(std::size_t origin_index, bool core_beaconing) {
  struct Candidate {
    std::size_t hop_count;
    std::int64_t latency_ns;
    std::uint64_t seq;  // deterministic tie-break
    std::vector<BeaconHop> hops;
  };
  struct Worse {
    bool operator()(const Candidate& a, const Candidate& b) const {
      if (a.hop_count != b.hop_count) return a.hop_count > b.hop_count;
      if (a.latency_ns != b.latency_ns) return a.latency_ns > b.latency_ns;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Candidate, std::vector<Candidate>, Worse> queue;
  std::vector<std::size_t> accepted(ases_.size(), 0);
  std::uint64_t seq = 0;

  queue.push(Candidate{1, 0, seq++, {BeaconHop{origin_index, kNoIface, kNoIface,
                                               static_cast<std::size_t>(-1)}}});

  while (!queue.empty()) {
    Candidate cand = queue.top();
    queue.pop();
    const std::size_t end_as = cand.hops.back().as_index;
    if (accepted[end_as] >= config_.beacons_per_origin) continue;
    ++accepted[end_as];

    // Register every accepted beacon that actually left the origin.
    if (cand.hops.size() > 1) {
      register_beacon(cand.hops, core_beaconing ? SegmentType::kCore : SegmentType::kDown);
    }

    // Re-propagate.
    for (const AsAdjacency& adj : ases_[end_as].adjacency) {
      const bool eligible = core_beaconing
                                ? adj.type == LinkType::kCore
                                : (adj.type == LinkType::kParentChild && adj.is_parent_side);
      if (!eligible) continue;
      const std::size_t next = adj.neighbor;
      bool loops = false;
      for (const BeaconHop& hop : cand.hops) {
        if (hop.as_index == next) {
          loops = true;
          break;
        }
      }
      if (loops) continue;
      if (accepted[next] >= config_.beacons_per_origin) continue;

      // Find the neighbor's interface on this link.
      IfaceId next_in_if = kNoIface;
      for (const AsAdjacency& back : ases_[next].adjacency) {
        if (back.link_spec_index == adj.link_spec_index) {
          next_in_if = back.scion_if;
          break;
        }
      }

      Candidate extended = cand;
      extended.hops.back().out_if = adj.scion_if;
      extended.hops.push_back(BeaconHop{next, next_in_if, kNoIface, adj.link_spec_index});
      extended.hop_count = extended.hops.size();
      extended.latency_ns += link_specs_[adj.link_spec_index].params.latency.nanos();
      extended.seq = seq++;
      queue.push(std::move(extended));
    }
  }
}

void Topology::register_beacon(const std::vector<BeaconHop>& hops, SegmentType type) {
  PathSegment segment = build_segment(hops, type);
  if (config_.sign_beacons && config_.verify_beacons) {
    // Memoize on the full content digest: a rebeacon over an unchanged
    // topology (same timestamp) rebuilds byte-identical segments, so their
    // signatures need no re-verification. Any change — new timestamp, new
    // metadata, tampering — alters the digest and forces a fresh verify.
    const crypto::Digest digest = segment.content_digest();
    if (verified_segments_.contains(digest)) {
      ++beacon_memo_hits_;
    } else {
      ++beacon_verifications_;
      if (!verify_segment(segment, trust_, &beacon_preimages_)) {
        PAN_ERROR(kLog) << "freshly built segment failed verification: " << segment.id();
        return;
      }
      verified_segments_.insert(digest);
    }
  }
  infra_.register_segment(std::move(segment));
}

PathSegment Topology::build_segment(const std::vector<BeaconHop>& hops,
                                    SegmentType type) const {
  PathSegment segment;
  segment.type = type;
  segment.origin = ases_[hops.front().as_index].spec.ia;
  segment.origin_ts = config_.beacon_timestamp;
  segment.entries.reserve(hops.size());

  for (const BeaconHop& hop : hops) {
    const AsState& as = ases_[hop.as_index];
    AsEntry entry;
    entry.hop.isd_as = as.spec.ia;
    entry.hop.in_if = hop.in_if;
    entry.hop.out_if = hop.out_if;
    entry.hop.expiry_s = config_.hop_expiry_s;
    seal_hop_field(entry.hop, segment.origin_ts, as.forwarding_key);
    if (hop.in_link_index != static_cast<std::size_t>(-1)) {
      entry.ingress_link = link_meta(hop.in_link_index);
    }
    entry.as_meta = as.spec.meta;
    // Advertise peering shortcuts: a second hop field whose ingress is the
    // peering interface, sealed with the same key/epoch. Only meaningful in
    // down segments (peering paths join an up and a down segment).
    if (type == SegmentType::kDown) {
      for (const AsAdjacency& adj : as.adjacency) {
        if (adj.type != LinkType::kPeering) continue;
        PeerEntry peer;
        peer.hop.isd_as = as.spec.ia;
        peer.hop.in_if = adj.scion_if;
        peer.hop.out_if = hop.out_if;
        peer.hop.expiry_s = config_.hop_expiry_s;
        seal_hop_field(peer.hop, segment.origin_ts, as.forwarding_key);
        peer.peer_as = ases_[adj.neighbor].spec.ia;
        for (const AsAdjacency& back : ases_[adj.neighbor].adjacency) {
          if (back.link_spec_index == adj.link_spec_index) {
            peer.peer_if = back.scion_if;
            break;
          }
        }
        peer.peer_link = link_meta(adj.link_spec_index);
        entry.peers.push_back(std::move(peer));
      }
    }
    segment.entries.push_back(std::move(entry));
    if (config_.sign_beacons) {
      const std::size_t index = segment.entries.size() - 1;
      const Bytes input = segment.signing_input(index);
      segment.entries.back().signature =
          crypto::sign(as.keypair.private_key, std::span<const std::uint8_t>(input));
    }
  }
  return segment;
}

}  // namespace pan::scion
