#include <unordered_set>

#include "scion/topo_gen.hpp"

#include "util/strings.hpp"

namespace pan::scion {

GeneratedTopology generate_topology(sim::Simulator& sim, const TopoGenParams& params) {
  Rng rng(params.seed);
  GeneratedTopology out;
  TopologyConfig config;
  config.seed = params.seed ^ 0x746f706fULL;
  config.sign_beacons = params.sign_beacons;
  config.verify_beacons = params.sign_beacons;
  config.beacons_per_origin = params.beacons_per_origin;
  config.border_router = params.border_router;
  out.topo = std::make_unique<Topology>(sim, config);
  Topology& topo = *out.topo;

  static constexpr const char* kCountries[] = {"CH", "DE", "US", "JP", "BR", "KE", "IN"};

  const auto random_as_meta = [&](Isd isd) {
    AsMeta meta;
    meta.country = kCountries[(isd + rng.next_below(3)) % std::size(kCountries)];
    meta.ethics_rating = 20 + rng.next_double() * 75;
    meta.qos_capable = rng.chance(0.5);
    meta.allied = rng.chance(0.5);
    meta.internal_co2_g_per_gb = rng.next_double() * 5;
    return meta;
  };
  const auto random_link = [&](std::int64_t min_ms, std::int64_t max_ms) {
    AsLinkSpec spec;
    spec.params.latency = milliseconds(rng.next_in(min_ms, max_ms));
    spec.params.bandwidth_bps = 1e9 * static_cast<double>(1 + rng.next_below(10));
    spec.params.mtu = rng.chance(0.2) ? 1400 : 1500;
    spec.params.loss_rate = rng.chance(0.15) ? rng.next_double() * 0.005 : 0.0;
    spec.co2_g_per_gb = 2 + rng.next_double() * 60;
    spec.cost_per_gb = 1 + rng.next_double() * 40;
    return spec;
  };

  // ASes.
  std::vector<std::vector<std::string>> cores(params.isds);
  for (std::size_t isd = 1; isd <= params.isds; ++isd) {
    for (std::size_t c = 0; c < params.cores_per_isd; ++c) {
      AsSpec spec;
      spec.name = strings::format("core-%zu-%zu", isd, c);
      spec.ia = IsdAsn{static_cast<Isd>(isd), 0x100 + c};
      spec.core = true;
      spec.meta = random_as_meta(static_cast<Isd>(isd));
      topo.add_as(spec);
      cores[isd - 1].push_back(spec.name);
      out.core_ases.push_back(spec.ia);

      for (std::size_t leaf = 0; leaf < params.leaves_per_core; ++leaf) {
        AsSpec leaf_spec;
        leaf_spec.name = strings::format("leaf-%zu-%zu-%zu", isd, c, leaf);
        leaf_spec.ia = IsdAsn{static_cast<Isd>(isd), 0x1000 + c * 16 + leaf};
        leaf_spec.core = false;
        leaf_spec.meta = random_as_meta(static_cast<Isd>(isd));
        topo.add_as(leaf_spec);
        out.leaf_ases.push_back(leaf_spec.ia);
      }
    }
  }

  // Intra-ISD core ring + chords.
  for (std::size_t isd = 0; isd < params.isds; ++isd) {
    const auto& ring = cores[isd];
    if (ring.size() >= 2) {
      for (std::size_t c = 0; c < ring.size(); ++c) {
        if (ring.size() == 2 && c == 1) break;  // avoid a duplicate pair
        AsLinkSpec spec = random_link(1, 20);
        spec.a = ring[c];
        spec.b = ring[(c + 1) % ring.size()];
        spec.type = LinkType::kCore;
        topo.add_link(spec);
      }
    }
    for (std::size_t chord = 0; chord < params.core_chords && ring.size() > 3; ++chord) {
      const std::size_t a = rng.next_below(ring.size());
      const std::size_t b = (a + 2 + rng.next_below(ring.size() - 3)) % ring.size();
      AsLinkSpec spec = random_link(1, 20);
      spec.a = ring[a];
      spec.b = ring[b];
      spec.type = LinkType::kCore;
      topo.add_link(spec);
    }
  }

  // Inter-ISD core links.
  for (std::size_t i = 0; i < params.isds; ++i) {
    for (std::size_t j = i + 1; j < params.isds; ++j) {
      for (std::size_t k = 0; k < params.inter_isd_links; ++k) {
        AsLinkSpec spec = random_link(20, 120);
        spec.a = cores[i][rng.next_below(cores[i].size())];
        spec.b = cores[j][rng.next_below(cores[j].size())];
        spec.type = LinkType::kCore;
        topo.add_link(spec);
      }
    }
  }

  // Parent-child links (+ optional dual-homing to another core of the ISD).
  for (std::size_t isd = 1; isd <= params.isds; ++isd) {
    for (std::size_t c = 0; c < params.cores_per_isd; ++c) {
      for (std::size_t leaf = 0; leaf < params.leaves_per_core; ++leaf) {
        const std::string leaf_name = strings::format("leaf-%zu-%zu-%zu", isd, c, leaf);
        AsLinkSpec spec = random_link(1, 10);
        spec.a = strings::format("core-%zu-%zu", isd, c);
        spec.b = leaf_name;
        spec.type = LinkType::kParentChild;
        topo.add_link(spec);
        if (params.cores_per_isd > 1 && rng.chance(params.dual_home_fraction)) {
          std::size_t other = rng.next_below(params.cores_per_isd);
          if (other == c) other = (other + 1) % params.cores_per_isd;
          AsLinkSpec second = random_link(1, 10);
          second.a = strings::format("core-%zu-%zu", isd, other);
          second.b = leaf_name;
          second.type = LinkType::kParentChild;
          topo.add_link(second);
        }
      }
    }
  }

  // Random leaf-to-leaf peering links (distinct pairs; possibly cross-ISD).
  std::unordered_set<std::uint64_t> peered;
  std::size_t placed = 0;
  for (std::size_t attempt = 0; attempt < params.peering_links * 8 &&
                                placed < params.peering_links && out.leaf_ases.size() >= 2;
       ++attempt) {
    const std::size_t a = rng.next_below(out.leaf_ases.size());
    const std::size_t b = rng.next_below(out.leaf_ases.size());
    if (a == b) continue;
    const std::uint64_t key = (static_cast<std::uint64_t>(std::min(a, b)) << 32) |
                              static_cast<std::uint64_t>(std::max(a, b));
    if (!peered.insert(key).second) continue;
    const auto leaf_name = [&](std::size_t index) {
      const IsdAsn ia = out.leaf_ases[index];
      return strings::format("leaf-%zu-%zu-%zu", static_cast<std::size_t>(ia.isd()),
                             (ia.asn() - 0x1000) / 16, (ia.asn() - 0x1000) % 16);
    };
    AsLinkSpec spec = random_link(2, 15);
    spec.a = leaf_name(a);
    spec.b = leaf_name(b);
    spec.type = LinkType::kPeering;
    topo.add_link(spec);
    ++placed;
  }

  // One host per leaf AS.
  std::size_t host_index = 0;
  for (const IsdAsn leaf : out.leaf_ases) {
    std::string as_name;
    // Recover the leaf name deterministically.
    const std::size_t isd = leaf.isd();
    const std::size_t c = (leaf.asn() - 0x1000) / 16;
    const std::size_t l = (leaf.asn() - 0x1000) % 16;
    as_name = strings::format("leaf-%zu-%zu-%zu", isd, c, l);
    out.hosts.push_back(topo.add_host(as_name, "host-" + std::to_string(host_index++)));
  }

  topo.finalize();
  return out;
}

}  // namespace pan::scion
