// SCION host stack: UDP-over-SCION sockets ("snet" equivalent).
//
// The stack registers itself as the host's SCION handler, demultiplexes
// incoming SCION/UDP packets to bound sockets, and hands each receiver the
// ready-reversed dataplane path so servers can reply without a path lookup —
// the property that makes SCION servers deployable without a daemon, which
// the paper's reverse proxy relies on.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>

#include "net/host.hpp"
#include "scion/colibri.hpp"
#include "scion/header.hpp"
#include "scion/scmp.hpp"

namespace pan::scion {

class ScionSocket;

class ScionStack {
 public:
  ScionStack(net::Host& host, IsdAsn local_as);

  ScionStack(const ScionStack&) = delete;
  ScionStack& operator=(const ScionStack&) = delete;

  [[nodiscard]] IsdAsn local_as() const { return local_as_; }
  [[nodiscard]] ScionAddr local_addr() const { return ScionAddr{local_as_, host_.address()}; }
  [[nodiscard]] net::Host& host() { return host_; }

  /// from + reply_path identify the peer; reply_path is already reversed
  /// (empty for intra-AS traffic). The payload view shares the received
  /// packet's buffer (zero-copy); call to_bytes() to own a copy.
  using RecvFn = std::function<void(const ScionEndpoint& from, const DataplanePath& reply_path,
                                    net::PacketView payload)>;

  /// Binds a SCION/UDP socket; port 0 picks an ephemeral port. Returns null
  /// if the port is in use.
  [[nodiscard]] std::unique_ptr<ScionSocket> bind(std::uint16_t port, RecvFn on_receive);

  /// SCMP error reports addressed to this host. Subscribers are notified of
  /// every message; unsubscribe with the returned id.
  using ScmpFn = std::function<void(const ScmpMessage&)>;
  std::uint64_t subscribe_scmp(ScmpFn on_message);
  void unsubscribe_scmp(std::uint64_t id);

  [[nodiscard]] std::uint64_t packets_sent() const { return sent_; }
  [[nodiscard]] std::uint64_t packets_received() const { return received_; }
  [[nodiscard]] std::uint64_t parse_errors() const { return parse_errors_; }
  [[nodiscard]] std::uint64_t scmp_received() const { return scmp_received_; }

 private:
  friend class ScionSocket;
  void handle(net::Packet&& packet, net::IfId in_if);
  void send(std::uint16_t src_port, const ScionEndpoint& dst, const DataplanePath& path,
            net::PacketView payload, ReservationId reservation);
  void unbind(std::uint16_t port);
  [[nodiscard]] std::uint16_t allocate_ephemeral_port();

  net::Host& host_;
  IsdAsn local_as_;
  std::unordered_map<std::uint16_t, ScionSocket*> sockets_;
  std::unordered_map<std::uint64_t, ScmpFn> scmp_subscribers_;
  std::uint64_t next_scmp_id_ = 1;
  std::uint16_t next_ephemeral_ = 45000;
  std::uint64_t sent_ = 0;
  std::uint64_t received_ = 0;
  std::uint64_t parse_errors_ = 0;
  std::uint64_t scmp_received_ = 0;
};

class ScionSocket {
 public:
  ScionSocket(ScionStack& stack, std::uint16_t port, ScionStack::RecvFn on_receive);
  ~ScionSocket();

  ScionSocket(const ScionSocket&) = delete;
  ScionSocket& operator=(const ScionSocket&) = delete;

  [[nodiscard]] std::uint16_t local_port() const { return port_; }
  [[nodiscard]] ScionEndpoint local_endpoint() const {
    return ScionEndpoint{stack_.local_addr(), port_};
  }
  [[nodiscard]] ScionStack& stack() { return stack_; }

  /// Sends a datagram along `path` (which must lead from the local AS to
  /// dst's AS; empty for intra-AS destinations). A nonzero reservation id
  /// claims Colibri priority bandwidth — routers validate and police it.
  /// If `payload` carries at least scion_header_size(path) bytes of headroom
  /// (see PacketView::with_headroom), the SCION header is prepended in place
  /// and the datagram is never copied; otherwise it is reserialized once.
  void send_to(const ScionEndpoint& dst, const DataplanePath& path, net::PacketView payload,
               ReservationId reservation = 0);

 private:
  friend class ScionStack;
  void deliver(const ScionEndpoint& from, const DataplanePath& reply_path,
               net::PacketView payload);

  ScionStack& stack_;
  std::uint16_t port_;
  ScionStack::RecvFn on_receive_;
};

}  // namespace pan::scion
