#include "scion/path_server.hpp"

namespace pan::scion {

namespace {
const std::vector<PathSegment> kNoSegments;
}

void PathServerInfra::register_segment(PathSegment segment) {
  if (segment.entries.empty()) return;
  ++segment_count_;
  if (segment.type == SegmentType::kCore) {
    core_by_origin_end_[segment.origin][segment.last_as()].push_back(std::move(segment));
  } else {
    down_by_leaf_[segment.last_as()].push_back(std::move(segment));
  }
}

void PathServerInfra::register_core_as(IsdAsn ia) { core_ases_.insert(ia); }

void PathServerInfra::clear_segments() {
  down_by_leaf_.clear();
  core_by_origin_end_.clear();
  segment_count_ = 0;
}

const std::vector<PathSegment>& PathServerInfra::down_segments(IsdAsn leaf) const {
  const auto it = down_by_leaf_.find(leaf);
  return it == down_by_leaf_.end() ? kNoSegments : it->second;
}

std::vector<const PathSegment*> PathServerInfra::core_segments(IsdAsn origin, IsdAsn end) const {
  std::vector<const PathSegment*> out;
  const auto origin_it = core_by_origin_end_.find(origin);
  if (origin_it == core_by_origin_end_.end()) return out;
  const auto end_it = origin_it->second.find(end);
  if (end_it == origin_it->second.end()) return out;
  out.reserve(end_it->second.size());
  for (const PathSegment& seg : end_it->second) out.push_back(&seg);
  return out;
}

std::size_t PathServerInfra::down_segment_count() const {
  std::size_t n = 0;
  for (const auto& [leaf, segs] : down_by_leaf_) n += segs.size();
  return n;
}

std::size_t PathServerInfra::core_segment_count() const {
  std::size_t n = 0;
  for (const auto& [origin, by_end] : core_by_origin_end_) {
    for (const auto& [end, segs] : by_end) n += segs.size();
  }
  return n;
}

}  // namespace pan::scion
