// The control-plane PKI substitute: TRCs and AS certificates.
//
// Each ISD has a Trust Root Configuration (TRC) listing its core ASes'
// public keys. Every AS holds a certificate binding its ISD-AS to its public
// key, signed by a core AS of its ISD. Beacon AS-entries are signed with the
// AS key and verified against this chain — exactly the trust layering SCION
// uses, instantiated with the Lamport scheme from src/crypto.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "crypto/signature.hpp"
#include "scion/addr.hpp"
#include "util/bytes.hpp"

namespace pan::scion {

/// Trust Root Configuration for one ISD.
struct Trc {
  Isd isd = 0;
  std::uint32_t version = 1;
  /// Core ASes and their public keys (the trust roots of the ISD).
  std::unordered_map<IsdAsn, crypto::PublicKey> core_keys;

  [[nodiscard]] bool is_core(IsdAsn ia) const { return core_keys.contains(ia); }
};

/// A certificate binding an AS to its public key, issued by a core AS.
struct AsCertificate {
  IsdAsn subject;
  crypto::PublicKey subject_key;
  IsdAsn issuer;  // a core AS of subject's ISD (core ASes self-issue)
  crypto::Signature issuer_signature;

  /// The bytes the issuer signs.
  [[nodiscard]] Bytes signed_body() const;
};

/// Holds TRCs and certificates and answers chain-validation queries.
///
/// Chain validations are memoized: verified_key() performs the full Lamport
/// verification of a certificate at most once per (TRC, certificate) state —
/// repeat lookups are a hash-map probe. Any add_trc/add_certificate flushes
/// the memo, so stale trust material can never satisfy a query.
class TrustStore {
 public:
  void add_trc(Trc trc);
  void add_certificate(AsCertificate cert);

  [[nodiscard]] const Trc* trc(Isd isd) const;
  [[nodiscard]] const AsCertificate* certificate(IsdAsn ia) const;

  /// Validates the chain: the issuer must be a core AS of the subject's ISD
  /// per the TRC, and the issuer's TRC key must verify the signature.
  [[nodiscard]] bool validate_certificate(const AsCertificate& cert) const;

  /// Returns the verified public key for `ia` (nullptr if the cert is
  /// missing or fails chain validation). Memoized; see class comment.
  [[nodiscard]] const crypto::PublicKey* verified_key(IsdAsn ia) const;

  /// Full chain validations performed so far (cache misses). A second
  /// verified_key() for the same AS must not bump this.
  [[nodiscard]] std::uint64_t chain_validations() const { return chain_validations_; }

 private:
  std::unordered_map<Isd, Trc> trcs_;
  std::unordered_map<IsdAsn, AsCertificate> certs_;
  // Memo of verified_key results (nullptr = known-bad/missing), flushed on
  // every trust-material mutation. Values point into certs_, whose mapped
  // references are stable across rehash (node-based container).
  mutable std::unordered_map<IsdAsn, const crypto::PublicKey*> verified_cache_;
  // Issuer keys are reused across every certificate they sign, so preimage
  // hashes repeat heavily across chain validations.
  mutable crypto::PreimageCache preimages_;
  mutable std::uint64_t chain_validations_ = 0;
};

/// Issues a certificate for `subject_key` signed by the core AS private key.
[[nodiscard]] AsCertificate issue_certificate(IsdAsn subject,
                                              const crypto::PublicKey& subject_key,
                                              IsdAsn issuer,
                                              const crypto::PrivateKey& issuer_key);

}  // namespace pan::scion
