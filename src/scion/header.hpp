// SCION packet header wire format.
//
// Every SCION packet in the simulator is a real byte string parsed at every
// border router, so header size (which grows with path length) feeds the
// bandwidth/serialization model for free.
//
// Layout (big endian):
//   u8  magic (0x5C)
//   u8  current segment index
//   u8  current hop index (within current segment, traversal order)
//   u8  next protocol (17 = UDP)
//   u64 src ISD-AS   u32 src host
//   u64 dst ISD-AS   u32 dst host
//   u16 src port     u16 dst port
//   u32 reservation id
//   u8  segment count
//   per segment: u8 flags (bit0 = reversed), u32 origin_ts, u8 hop count,
//                hop fields (see hopfield.cpp)
//   payload (rest of packet)
//
// Two parsers exist over this format:
//  - parse_scion_packet: materializes the full ScionHeader (every segment,
//    every hop field) into owning structures. Cold paths only — endpoints,
//    SCMP origination, and the legacy per-hop reparse kept for equivalence
//    testing.
//  - ScionHeaderView: the hot-path lazy view. One O(#segments) arithmetic
//    walk validates structural bounds, then accessors decode exactly the
//    fields a border router touches (the cursor and one hop field) straight
//    from the wire bytes. No heap allocation anywhere.
#pragma once

#include "net/packet.hpp"
#include "scion/addr.hpp"
#include "scion/path.hpp"
#include "util/buffer.hpp"
#include "util/bytes.hpp"
#include "util/result.hpp"

namespace pan::scion {

inline constexpr std::uint8_t kScionMagic = 0x5C;
inline constexpr std::uint8_t kProtoUdp = 17;

/// Size of the fixed (path-independent) header prefix.
inline constexpr std::size_t kScionFixedHeaderSize = 37;
/// Per-segment metadata: u8 flags + u32 origin_ts + u8 hop count.
inline constexpr std::size_t kSegmentMetaSize = 6;

struct ScionHeader {
  ScionAddr src;
  ScionAddr dst;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t next_proto = kProtoUdp;
  /// Colibri-style bandwidth reservation id (0 = best effort). Border
  /// routers validate and police it.
  std::uint32_t reservation_id = 0;
  DataplanePath path;
  /// Cursor: which segment / which traversal hop the next router processes.
  std::uint8_t cur_seg = 0;
  std::uint8_t cur_hop = 0;
};

/// Writes the header (no payload). Templated over the writer so the growing
/// (ByteWriter) and headroom-prepend (util::SpanWriter) paths emit
/// byte-identical output from one definition.
template <typename Writer>
void write_scion_header(Writer& w, const ScionHeader& header) {
  w.u8(kScionMagic);
  w.u8(header.cur_seg);
  w.u8(header.cur_hop);
  w.u8(header.next_proto);
  w.u64(header.src.ia.packed());
  w.u32(header.src.host.value());
  w.u64(header.dst.ia.packed());
  w.u32(header.dst.host.value());
  w.u16(header.src_port);
  w.u16(header.dst_port);
  w.u32(header.reservation_id);
  w.u8(static_cast<std::uint8_t>(header.path.segments.size()));
  for (const DataplaneSegment& seg : header.path.segments) {
    w.u8(seg.reversed ? 1 : 0);
    w.u32(seg.origin_ts);
    w.u8(static_cast<std::uint8_t>(seg.hops.size()));
    for (const HopField& hf : seg.hops) {
      serialize_hop_field(w, hf);
    }
  }
}

/// Serializes header + payload into one buffer.
[[nodiscard]] Bytes serialize_scion_packet(const ScionHeader& header,
                                           std::span<const std::uint8_t> payload);

struct ParsedScionPacket {
  ScionHeader header;
  /// Offset of the payload within the parsed bytes (== wire header size).
  std::size_t payload_offset = 0;
  /// View of the payload tail inside the input buffer — no copy. Valid only
  /// as long as the parsed bytes are; call payload_bytes() to own a copy.
  std::span<const std::uint8_t> payload;
  [[nodiscard]] Bytes payload_bytes() const { return Bytes(payload.begin(), payload.end()); }
  /// Byte offsets of the cursor fields, so routers can advance the cursor
  /// in place without reserializing the whole packet.
  static constexpr std::size_t kCurSegOffset = 1;
  static constexpr std::size_t kCurHopOffset = 2;
};

[[nodiscard]] Result<ParsedScionPacket> parse_scion_packet(std::span<const std::uint8_t> data);

/// Lazy, allocation-free view of a serialized SCION packet. parse() performs
/// one bounds-validation walk (arithmetic over segment metadata only — hop
/// fields are skipped, not decoded); accessors then read individual fields
/// at fixed offsets. The view borrows the packet bytes and must not outlive
/// them.
class ScionHeaderView {
 public:
  struct SegmentInfo {
    bool reversed = false;
    std::uint32_t origin_ts = 0;
    std::uint8_t hop_count = 0;
    /// Absolute offset of the segment's first wire hop field.
    std::size_t hops_offset = 0;
  };

  /// Validates magic, the fixed prefix, and that every segment's declared
  /// hop fields fit in the buffer. Does not decode hop fields or validate
  /// the cursor (routers check cursor range themselves, as with the eager
  /// parser).
  [[nodiscard]] static Result<ScionHeaderView> parse(std::span<const std::uint8_t> data);

  [[nodiscard]] std::uint8_t cur_seg() const { return data_[ParsedScionPacket::kCurSegOffset]; }
  [[nodiscard]] std::uint8_t cur_hop() const { return data_[ParsedScionPacket::kCurHopOffset]; }
  [[nodiscard]] std::uint8_t next_proto() const { return data_[3]; }
  [[nodiscard]] ScionAddr src() const {
    return ScionAddr{IsdAsn::from_packed(read_be64(data_.data() + 4)),
                     net::IpAddr{read_be32(data_.data() + 12)}};
  }
  [[nodiscard]] ScionAddr dst() const {
    return ScionAddr{IsdAsn::from_packed(read_be64(data_.data() + 16)),
                     net::IpAddr{read_be32(data_.data() + 24)}};
  }
  [[nodiscard]] std::uint16_t src_port() const { return read_be16(data_.data() + 28); }
  [[nodiscard]] std::uint16_t dst_port() const { return read_be16(data_.data() + 30); }
  [[nodiscard]] std::uint32_t reservation_id() const { return read_be32(data_.data() + 32); }
  [[nodiscard]] std::uint8_t segment_count() const { return seg_count_; }

  /// Metadata of segment `index` (skip-scan over preceding segments;
  /// `index < segment_count()`).
  [[nodiscard]] SegmentInfo segment(std::uint8_t index) const;

  /// Decodes exactly one hop field, addressed in traversal order (mirrors
  /// DataplaneSegment::hop_at: a reversed segment walks its wire hops
  /// back-to-front). `traversal_index < seg.hop_count`.
  [[nodiscard]] HopField hop(const SegmentInfo& seg, std::uint8_t traversal_index) const;

  /// Traversal-order ingress/egress of a decoded hop (mirrors
  /// DataplaneSegment::traversal_ingress/egress).
  [[nodiscard]] static IfaceId traversal_ingress(const SegmentInfo& seg, const HopField& hf) {
    return seg.reversed ? hf.out_if : hf.in_if;
  }
  [[nodiscard]] static IfaceId traversal_egress(const SegmentInfo& seg, const HopField& hf) {
    return seg.reversed ? hf.in_if : hf.out_if;
  }

  [[nodiscard]] std::size_t header_size() const { return header_size_; }
  [[nodiscard]] std::size_t payload_offset() const { return header_size_; }
  [[nodiscard]] std::span<const std::uint8_t> payload() const {
    return data_.subspan(header_size_);
  }

  /// Full eager decode, for cold paths (SCMP origination needs the whole
  /// path to compute the reversed prefix).
  [[nodiscard]] ScionHeader materialize() const;

 private:
  std::span<const std::uint8_t> data_;
  std::size_t header_size_ = 0;
  std::uint8_t seg_count_ = 0;
};

/// Patches the cursor bytes of a serialized SCION packet in place.
void patch_cursor(Bytes& packet, std::uint8_t cur_seg, std::uint8_t cur_hop);
/// View flavor: copy-on-write — storage is cloned first iff it is shared.
void patch_cursor(net::PacketView& packet, std::uint8_t cur_seg, std::uint8_t cur_hop);

/// Serialized header size for a path (for MTU math and headroom sizing).
[[nodiscard]] std::size_t scion_header_size(const DataplanePath& path);

}  // namespace pan::scion
