// SCION packet header wire format.
//
// Every SCION packet in the simulator is a real byte string parsed at every
// border router, so header size (which grows with path length) feeds the
// bandwidth/serialization model for free.
//
// Layout (big endian):
//   u8  magic (0x5C)
//   u8  current segment index
//   u8  current hop index (within current segment, traversal order)
//   u8  next protocol (17 = UDP)
//   u64 src ISD-AS   u32 src host
//   u64 dst ISD-AS   u32 dst host
//   u16 src port     u16 dst port
//   u8  segment count
//   per segment: u8 flags (bit0 = reversed), u32 origin_ts, u8 hop count,
//                hop fields (see hopfield.cpp)
//   payload (rest of packet)
#pragma once

#include "scion/addr.hpp"
#include "scion/path.hpp"
#include "util/bytes.hpp"
#include "util/result.hpp"

namespace pan::scion {

inline constexpr std::uint8_t kScionMagic = 0x5C;
inline constexpr std::uint8_t kProtoUdp = 17;

struct ScionHeader {
  ScionAddr src;
  ScionAddr dst;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t next_proto = kProtoUdp;
  /// Colibri-style bandwidth reservation id (0 = best effort). Border
  /// routers validate and police it.
  std::uint32_t reservation_id = 0;
  DataplanePath path;
  /// Cursor: which segment / which traversal hop the next router processes.
  std::uint8_t cur_seg = 0;
  std::uint8_t cur_hop = 0;
};

/// Serializes header + payload into one buffer.
[[nodiscard]] Bytes serialize_scion_packet(const ScionHeader& header,
                                           std::span<const std::uint8_t> payload);

struct ParsedScionPacket {
  ScionHeader header;
  Bytes payload;
  /// Byte offsets of the cursor fields, so routers can advance the cursor
  /// in place without reserializing the whole packet.
  static constexpr std::size_t kCurSegOffset = 1;
  static constexpr std::size_t kCurHopOffset = 2;
};

[[nodiscard]] Result<ParsedScionPacket> parse_scion_packet(std::span<const std::uint8_t> data);

/// Patches the cursor bytes of a serialized SCION packet in place.
void patch_cursor(Bytes& packet, std::uint8_t cur_seg, std::uint8_t cur_hop);

/// Serialized header size for a path (for MTU math in tests).
[[nodiscard]] std::size_t scion_header_size(const DataplanePath& path);

}  // namespace pan::scion
