#include "scion/scmp.hpp"

#include "util/strings.hpp"

namespace pan::scion {

const char* to_string(ScmpType t) {
  switch (t) {
    case ScmpType::kLinkDown: return "link-down";
    case ScmpType::kExpiredHop: return "expired-hop";
  }
  return "?";
}

Bytes ScmpMessage::serialize() const {
  ByteWriter w;
  serialize_into(w);
  return std::move(w).take();
}

Result<ScmpMessage> ScmpMessage::parse(std::span<const std::uint8_t> data) {
  ByteReader r(data);
  ScmpMessage msg;
  const std::uint8_t type = r.u8();
  if (type != static_cast<std::uint8_t>(ScmpType::kLinkDown) &&
      type != static_cast<std::uint8_t>(ScmpType::kExpiredHop)) {
    return Err("unknown SCMP type " + std::to_string(type));
  }
  msg.type = static_cast<ScmpType>(type);
  msg.origin_as = IsdAsn::from_packed(r.u64());
  msg.interface = r.u16();
  msg.original_dst.ia = IsdAsn::from_packed(r.u64());
  msg.original_dst.host = net::IpAddr{r.u32()};
  msg.original_dst_port = r.u16();
  if (!r.complete()) return Err("malformed SCMP message");
  return msg;
}

std::string ScmpMessage::to_string() const {
  return strings::format("SCMP %s at %s#%u (dst %s)", scion::to_string(type),
                         origin_as.to_string().c_str(), interface,
                         original_dst.to_string().c_str());
}

}  // namespace pan::scion
