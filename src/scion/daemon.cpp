#include "scion/daemon.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/log.hpp"

namespace pan::scion {

namespace {
constexpr std::string_view kLog = "sciond";
}

Daemon::Daemon(sim::Simulator& sim, const PathServerInfra& infra, IsdAsn local_as,
               DaemonConfig config)
    : sim_(sim), infra_(infra), local_as_(local_as), config_(config) {}

void Daemon::query(IsdAsn dst, std::function<void(std::vector<Path>)> callback) {
  const auto it = cache_.find(dst);
  if (it != cache_.end() && sim_.now() - it->second.fetched_at < config_.cache_ttl) {
    ++cache_hits_;
    callback(it->second.paths);
    return;
  }
  if (frozen_) {
    // Path-server staleness: whatever is cached keeps being served (TTL
    // ignored), and anything else cannot be fetched.
    if (it != cache_.end()) {
      ++stale_serves_;
      callback(it->second.paths);
      return;
    }
    ++frozen_failures_;
    sim_.schedule_after(config_.lookup_latency,
                        [cb = std::move(callback)] { cb({}); });
    return;
  }
  ++cache_misses_;
  sim_.schedule_after(config_.lookup_latency, [this, dst, cb = std::move(callback)] {
    std::vector<Path> paths = combine(dst);
    cache_[dst] = CacheEntry{paths, sim_.now()};
    cb(std::move(paths));
  });
}

std::vector<Path> Daemon::query_now(IsdAsn dst) { return combine(dst); }

void Daemon::flush_cache() { cache_.clear(); }

std::vector<Path> Daemon::combine(IsdAsn dst) const {
  std::vector<Path> out;
  if (dst == local_as_) {
    out.push_back(Path::local(local_as_));
    return out;
  }

  const bool src_is_core = infra_.is_core(local_as_);
  const bool dst_is_core = infra_.is_core(dst);

  // Candidate (up segment, source-side core) pairs. A null segment means the
  // traversal starts at the core itself.
  std::vector<std::pair<const PathSegment*, IsdAsn>> ups;
  if (src_is_core) {
    ups.emplace_back(nullptr, local_as_);
  } else {
    for (const PathSegment& seg : infra_.down_segments(local_as_)) {
      ups.emplace_back(&seg, seg.origin);
    }
  }

  std::vector<std::pair<const PathSegment*, IsdAsn>> downs;
  if (dst_is_core) {
    downs.emplace_back(nullptr, dst);
  } else {
    for (const PathSegment& seg : infra_.down_segments(dst)) {
      downs.emplace_back(&seg, seg.origin);
    }
  }

  std::unordered_set<std::string> fingerprints;
  const auto add_result = [&](Result<Path> result) {
    if (!result.ok()) {
      PAN_TRACE(kLog) << "combine rejected: " << result.error();
      return;
    }
    Path path = std::move(result).take();
    if (fingerprints.insert(path.fingerprint()).second) {
      out.push_back(std::move(path));
    }
  };
  const auto try_add = [&](const PathSegment* up, const PathSegment* core,
                           const PathSegment* down) {
    add_result(assemble_path(up, core, down, local_as_, dst));
  };

  for (const auto& [up_seg, src_core] : ups) {
    for (const auto& [down_seg, dst_core] : downs) {
      if (src_core == dst_core) {
        try_add(up_seg, nullptr, down_seg);
        continue;
      }
      // Core segments are traversed reversed, so we need beacons originated
      // at the destination-side core that reached the source-side core.
      for (const PathSegment* core_seg : infra_.core_segments(dst_core, src_core)) {
        try_add(up_seg, core_seg, down_seg);
      }
    }
  }

  // Peering shortcuts: join an up and a down segment across a peering link
  // advertised (with matching interfaces) in both segments' AS entries.
  if (!src_is_core && !dst_is_core) {
    for (const auto& [up_seg, src_core] : ups) {
      for (const auto& [down_seg, dst_core] : downs) {
        for (std::size_t i = 0; i < up_seg->entries.size(); ++i) {
          const AsEntry& x_entry = up_seg->entries[i];
          for (std::size_t pi = 0; pi < x_entry.peers.size(); ++pi) {
            const PeerEntry& x_peer = x_entry.peers[pi];
            for (std::size_t j = 0; j < down_seg->entries.size(); ++j) {
              const AsEntry& y_entry = down_seg->entries[j];
              if (y_entry.hop.isd_as != x_peer.peer_as) continue;
              for (std::size_t pj = 0; pj < y_entry.peers.size(); ++pj) {
                const PeerEntry& y_peer = y_entry.peers[pj];
                if (y_peer.peer_as != x_entry.hop.isd_as) continue;
                if (y_peer.peer_if != x_peer.hop.in_if ||
                    x_peer.peer_if != y_peer.hop.in_if) {
                  continue;
                }
                add_result(assemble_peering_path(*up_seg, i, pi, *down_seg, j, pj,
                                                 local_as_, dst));
              }
            }
          }
        }
      }
    }
  }

  std::sort(out.begin(), out.end(), [](const Path& a, const Path& b) {
    if (a.meta().latency != b.meta().latency) return a.meta().latency < b.meta().latency;
    if (a.link_count() != b.link_count()) return a.link_count() < b.link_count();
    return a.fingerprint() < b.fingerprint();
  });
  if (out.size() > config_.max_paths) out.resize(config_.max_paths);
  return out;
}

}  // namespace pan::scion
