#include "scion/types.hpp"

namespace pan::scion {

const char* to_string(LinkType t) {
  switch (t) {
    case LinkType::kCore: return "core";
    case LinkType::kParentChild: return "parent-child";
    case LinkType::kPeering: return "peering";
  }
  return "?";
}

}  // namespace pan::scion
