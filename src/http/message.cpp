#include "http/message.hpp"

#include "util/strings.hpp"

namespace pan::http {

void Headers::set(std::string name, std::string value) {
  remove(name);
  fields_.push_back(Field{std::move(name), std::move(value)});
}

void Headers::add(std::string name, std::string value) {
  fields_.push_back(Field{std::move(name), std::move(value)});
}

void Headers::remove(std::string_view name) {
  std::erase_if(fields_, [&](const Field& f) { return strings::iequals(f.name, name); });
}

std::optional<std::string> Headers::get(std::string_view name) const {
  for (const Field& f : fields_) {
    if (strings::iequals(f.name, name)) return f.value;
  }
  return std::nullopt;
}

bool Headers::contains(std::string_view name) const { return get(name).has_value(); }

std::vector<std::string> Headers::get_all(std::string_view name) const {
  std::vector<std::string> out;
  for (const Field& f : fields_) {
    if (strings::iequals(f.name, name)) out.push_back(f.value);
  }
  return out;
}

namespace {

void serialize_headers(std::string& out, const Headers& headers, std::size_t body_size) {
  bool has_content_length = false;
  for (const Headers::Field& f : headers.fields()) {
    if (strings::iequals(f.name, "Content-Length")) has_content_length = true;
    out += f.name;
    out += ": ";
    out += f.value;
    out += "\r\n";
  }
  if (!has_content_length) {
    out += "Content-Length: " + std::to_string(body_size) + "\r\n";
  }
  out += "\r\n";
}

}  // namespace

Bytes HttpRequest::serialize() const {
  std::string head = method + " " + target + " " + version + "\r\n";
  serialize_headers(head, headers, body.size());
  Bytes out = from_string(head);
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

std::string HttpRequest::host() const { return headers.get("Host").value_or(""); }

Bytes HttpResponse::serialize() const {
  std::string head = version + " " + std::to_string(status) + " " + reason + "\r\n";
  serialize_headers(head, headers, body.size());
  Bytes out = from_string(head);
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

std::string status_reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 204: return "No Content";
    case 301: return "Moved Permanently";
    case 302: return "Found";
    case 400: return "Bad Request";
    case 403: return "Forbidden";
    case 404: return "Not Found";
    case 421: return "Misdirected Request";
    case 500: return "Internal Server Error";
    case 502: return "Bad Gateway";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default: return "Unknown";
  }
}

HttpResponse make_response(int status, Bytes body, std::string content_type) {
  HttpResponse response;
  response.status = status;
  response.reason = status_reason(status);
  response.headers.set("Content-Type", std::move(content_type));
  response.body = std::move(body);
  return response;
}

HttpResponse make_text_response(int status, std::string_view text) {
  return make_response(status, from_string(text));
}

}  // namespace pan::http
