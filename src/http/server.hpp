// HTTP server core: parses requests off streams, invokes an (async-capable)
// handler, and writes responses back in request order.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "http/message.hpp"
#include "http/parser.hpp"
#include "transport/bytestream.hpp"

namespace pan::http {

class HttpServer {
 public:
  using Respond = std::function<void(HttpResponse)>;
  /// The handler may respond synchronously or hold Respond for later.
  using Handler = std::function<void(const HttpRequest&, Respond)>;

  explicit HttpServer(Handler handler);

  /// Attaches to an incoming stream for its lifetime. Responses are written
  /// in request order even when handlers complete out of order; the server
  /// half-closes after answering everything once the client has FIN'd.
  void serve(transport::Bytestream& stream);

  [[nodiscard]] std::uint64_t requests_handled() const { return requests_; }

 private:
  struct StreamContext;

  Handler handler_;
  std::uint64_t requests_ = 0;
};

}  // namespace pan::http
