#include "http/origin_pool.hpp"

#include <algorithm>

#include "util/log.hpp"
#include "util/strings.hpp"

namespace pan::http {

namespace {

constexpr std::string_view kLog = "pool";
constexpr std::size_t kNone = static_cast<std::size_t>(-1);
/// Deadline shedding stays off until the queue-wait histogram has this many
/// samples — a p90 computed from a handful of waits is noise.
constexpr std::uint64_t kShedMinSamples = 8;

}  // namespace

bool OriginPool::is_queue_timeout(const std::string& error) {
  return strings::starts_with(error, kQueueTimeoutError);
}

bool OriginPool::is_fast_fail(const std::string& error) {
  return strings::starts_with(error, kFastFailError);
}

bool OriginPool::is_shed(const std::string& error) {
  return strings::starts_with(error, kShedError);
}

bool OriginPool::is_expired(const std::string& error) {
  return strings::starts_with(error, kExpiredError);
}

bool OriginPool::is_pool_synthesized(const std::string& error) {
  return is_queue_timeout(error) || is_fast_fail(error) || is_shed(error) ||
         is_expired(error);
}

OriginPool::OriginPool(sim::Simulator& sim, obs::MetricsRegistry& metrics,
                       OriginPoolConfig config)
    : sim_(sim),
      metrics_(metrics),
      config_(std::move(config)),
      hits_(metrics.counter("pool." + config_.name + ".hits")),
      misses_(metrics.counter("pool." + config_.name + ".misses")),
      evictions_(metrics.counter("pool." + config_.name + ".evictions")),
      pruned_(metrics.counter("pool." + config_.name + ".pruned")),
      queue_timeouts_(metrics.counter("pool." + config_.name + ".queue_timeouts")),
      fastfails_(metrics.counter("pool." + config_.name + ".fastfails")),
      cooldowns_(metrics.counter("pool." + config_.name + ".cooldowns")),
      sheds_(metrics.counter("pool." + config_.name + ".sheds")),
      expired_dispatches_(metrics.counter("pool." + config_.name + ".expired_dispatches")),
      migrations_(metrics.counter("pool." + config_.name + ".migrations")),
      conns_gauge_(metrics.gauge("pool." + config_.name + ".conns")),
      queue_depth_(metrics.gauge("pool." + config_.name + ".queue_depth")),
      queue_wait_(metrics.histogram("pool.queue_wait")) {}

OriginPool::~OriginPool() { *alive_ = false; }

bool OriginPool::cooling_down(const Origin& origin) const {
  return config_.backoff_threshold > 0 && sim_.now() < origin.cooldown_until;
}

void OriginPool::set_conn_gauge() {
  conns_gauge_.set(static_cast<double>(total_conns_));
}

void OriginPool::fail_waiter(Waiter waiter, std::string_view error) {
  if (waiter.timeout_event != sim::kInvalidEventId) sim_.cancel(waiter.timeout_event);
  waiter.on_response(Err(std::string(error)));
}

void OriginPool::submit(const std::string& key, HttpRequest request,
                        HttpClientStream::ResponseFn on_response, ConnFactory factory) {
  submit(key, std::move(request), SubmitOptions{}, std::move(on_response),
         std::move(factory));
}

void OriginPool::submit(const std::string& key, HttpRequest request, SubmitOptions options,
                        HttpClientStream::ResponseFn on_response, ConnFactory factory) {
  Origin& origin = origins_[key];
  if (cooling_down(origin)) {
    fastfails_.inc();
    on_response(Err(std::string(kFastFailError) + ": " + key));
    return;
  }
  Waiter waiter;
  waiter.id = next_waiter_id_++;
  waiter.priority = options.priority;
  waiter.deadline = options.deadline;
  waiter.request = std::move(request);
  waiter.on_response = std::move(on_response);
  waiter.factory = std::move(factory);
  waiter.enqueued_at = sim_.now();
  if (config_.queue_timeout > Duration::zero()) {
    waiter.timeout_event = sim_.schedule_after(
        config_.queue_timeout, [this, alive = alive_, key, id = waiter.id] {
          if (!*alive) return;
          const auto it = origins_.find(key);
          if (it == origins_.end()) return;
          auto& waiting = it->second.waiting;
          const auto wit = std::find_if(waiting.begin(), waiting.end(),
                                        [id](const Waiter& w) { return w.id == id; });
          if (wit == waiting.end()) return;  // already dispatched
          Waiter timed_out = std::move(*wit);
          waiting.erase(wit);
          --total_queued_;
          queue_depth_.set(static_cast<double>(total_queued_));
          queue_timeouts_.inc();
          timed_out.timeout_event = sim::kInvalidEventId;  // this event; already fired
          PAN_DEBUG(kLog) << config_.name << "/" << key << ": queue-wait timeout";
          fail_waiter(std::move(timed_out), std::string(kQueueTimeoutError) + ": " + key);
        });
  }
  origin.waiting.push_back(std::move(waiter));
  ++total_queued_;
  queue_depth_.set(static_cast<double>(total_queued_));
  dispatch(key);
}

void OriginPool::release_deferred(std::unique_ptr<PooledConnection> conn) {
  // A completion callback on this connection may still be on the call stack
  // (fetch() can complete synchronously on a dead stream, and the transport
  // touches itself again after invoking the callback), so destruction is
  // deferred through the event loop.
  std::shared_ptr<PooledConnection> dead(std::move(conn));
  sim_.schedule_after(Duration::zero(), [dead] {});
}

void OriginPool::prune_closed(Origin& origin) {
  std::size_t removed = 0;
  for (auto it = origin.conns.begin(); it != origin.conns.end();) {
    if (!it->conn->usable() && it->outstanding == 0) {
      // A wedged-but-open connection (dead HTTP/1 stream) still holds
      // transport state; close it before letting go.
      if (it->conn->transport().state() != transport::Connection::State::kClosed) {
        it->conn->shutdown();
      }
      release_deferred(std::move(it->conn));
      it = origin.conns.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  if (removed > 0) {
    pruned_.inc(removed);
    total_conns_ -= removed;
    set_conn_gauge();
  }
}

std::size_t OriginPool::best_waiter(const Origin& origin) {
  std::size_t best = kNone;
  for (std::size_t i = 0; i < origin.waiting.size(); ++i) {
    // Strictly-less keeps FIFO order inside a priority class.
    if (best == kNone || origin.waiting[i].priority < origin.waiting[best].priority) {
      best = i;
    }
  }
  return best;
}

OriginPool::Waiter OriginPool::take_waiter(Origin& origin, std::size_t index) {
  Waiter waiter = std::move(origin.waiting[index]);
  origin.waiting.erase(origin.waiting.begin() + static_cast<std::ptrdiff_t>(index));
  --total_queued_;
  queue_depth_.set(static_cast<double>(total_queued_));
  return waiter;
}

std::size_t OriginPool::effective_limit(const std::string& key) const {
  if (config_.limiter == nullptr) return kNone;  // SIZE_MAX: static caps only
  return std::max<std::size_t>(1, config_.limiter->limit(key));
}

void OriginPool::dispatch(const std::string& key) {
  // Re-entrancy: fetch() can complete synchronously (dead stream), and the
  // completion path runs user callbacks that may submit() again — which can
  // rehash origins_ or grow this origin's connection vector. No reference
  // into the map survives across a fetch; every iteration re-looks-up.
  {
    const auto it = origins_.find(key);
    if (it == origins_.end()) return;
    prune_closed(it->second);
  }
  while (true) {
    auto it = origins_.find(key);
    if (it == origins_.end() || it->second.waiting.empty()) return;
    Origin& origin = it->second;
    if (cooling_down(origin)) {
      // The origin tripped its cool-down with requests still parked behind
      // it; fail them now rather than dialing a known-dead origin.
      Waiter waiter = take_waiter(origin, 0);
      fastfails_.inc();
      fail_waiter(std::move(waiter), std::string(kFastFailError) + ": " + key);
      continue;
    }

    // Dispatch-time expiry: a waiter whose deadline already passed gets an
    // immediate failure instead of a connection slot — its caller has long
    // answered 504, and dispatching it would burn origin capacity on a
    // request nobody is waiting for.
    {
      const auto expired = std::find_if(
          origin.waiting.begin(), origin.waiting.end(), [this](const Waiter& w) {
            return w.deadline.has_value() && *w.deadline <= sim_.now();
          });
      if (expired != origin.waiting.end()) {
        Waiter waiter = take_waiter(
            origin, static_cast<std::size_t>(expired - origin.waiting.begin()));
        expired_dispatches_.inc();
        metrics_.events().record(sim_.now(), "pool", "expired-dispatch",
                                 config_.name + "/" + key);
        fail_waiter(std::move(waiter), std::string(kExpiredError) + ": " + key);
        continue;
      }
    }

    // Capacity: the static per-conn caps plus the adaptive window. Only
    // usable connections count against max_conns_per_origin — a wedged
    // connection with requests still outstanding holds a pool slot until its
    // fetches drain, and counting it would let an all-wedged origin block
    // every new dial until queue timeout.
    std::size_t outstanding_total = 0;
    std::size_t usable_conns = 0;
    for (Entry& entry : origin.conns) {
      outstanding_total += entry.outstanding;
      if (entry.conn->usable()) ++usable_conns;
    }
    std::size_t chosen = kNone;
    if (outstanding_total < effective_limit(key)) {
      // Least-outstanding live connection.
      std::size_t best = kNone;
      for (std::size_t i = 0; i < origin.conns.size(); ++i) {
        Entry& entry = origin.conns[i];
        if (!entry.conn->usable()) continue;
        if (best == kNone || entry.outstanding < origin.conns[best].outstanding) best = i;
      }
      if (best != kNone && origin.conns[best].outstanding == 0) {
        chosen = best;  // idle connection: plain reuse
        hits_.inc();
      } else if (usable_conns < config_.max_conns_per_origin) {
        origin.conns.push_back(Entry{origin.waiting[best_waiter(origin)].factory(), 0, 0});
        chosen = origin.conns.size() - 1;
        ++total_conns_;
        set_conn_gauge();
        misses_.inc();
      } else if (best != kNone && (config_.max_outstanding_per_conn == 0 ||
                                   origin.conns[best].outstanding <
                                       config_.max_outstanding_per_conn)) {
        chosen = best;  // pool full: share the least-loaded live connection
        hits_.inc();
      }
    }
    if (chosen == kNone) {
      // At capacity. CoDel-style deadline shedding: a parked waiter whose
      // remaining budget cannot cover the observed p90 queue wait would
      // almost surely ripen into a 504 — fail it fast instead, so the
      // caller can retry elsewhere and the queue holds only viable work.
      if (!config_.deadline_shed || queue_wait_.count() < kShedMinSamples) return;
      const Duration p90 = queue_wait_.percentile(90.0);
      const auto hopeless = std::find_if(
          origin.waiting.begin(), origin.waiting.end(), [&](const Waiter& w) {
            return w.deadline.has_value() && sim_.now() + p90 >= *w.deadline;
          });
      if (hopeless == origin.waiting.end()) return;
      Waiter waiter = take_waiter(
          origin, static_cast<std::size_t>(hopeless - origin.waiting.begin()));
      sheds_.inc();
      metrics_.events().record(sim_.now(), "pool", "shed",
                               config_.name + "/" + key + " queue-wait p90 exceeds budget");
      PAN_DEBUG(kLog) << config_.name << "/" << key
                      << ": shedding waiter (queue-wait p90 exceeds budget)";
      fail_waiter(std::move(waiter), std::string(kShedError) + ": " + key);
      continue;  // the callback may have re-entered submit(); re-look-up
    }

    Waiter waiter = take_waiter(origin, best_waiter(origin));
    if (waiter.timeout_event != sim::kInvalidEventId) sim_.cancel(waiter.timeout_event);
    queue_wait_.record(sim_.now() - waiter.enqueued_at);

    Entry& entry = origin.conns[chosen];
    ++entry.outstanding;
    ++entry.idle_epoch;  // invalidates any pending idle-eviction check
    PooledConnection* conn = entry.conn.get();
    conn->fetch(waiter.request,
                [this, alive = alive_, key, conn, started = sim_.now(),
                 cb = std::move(waiter.on_response)](Result<HttpResponse> result) mutable {
                  if (!*alive) {
                    cb(std::move(result));
                    return;
                  }
                  if (config_.limiter != nullptr) {
                    config_.limiter->record(key, sim_.now() - started, result.ok());
                  }
                  on_fetch_done(key, conn, result.ok());
                  cb(std::move(result));
                  if (*alive) dispatch(key);
                });
  }
}

void OriginPool::on_fetch_done(const std::string& key, PooledConnection* conn, bool ok) {
  const auto it = origins_.find(key);
  if (it == origins_.end()) return;
  Origin& origin = it->second;
  for (Entry& entry : origin.conns) {
    if (entry.conn.get() != conn || entry.outstanding == 0) continue;
    --entry.outstanding;
    if (entry.outstanding == 0) arm_idle_eviction(key, entry);
    break;
  }
  if (ok) {
    origin.consecutive_failures = 0;
    return;
  }
  ++origin.consecutive_failures;
  if (config_.backoff_threshold > 0 &&
      origin.consecutive_failures >= config_.backoff_threshold &&
      !cooling_down(origin)) {
    origin.cooldown_until = sim_.now() + config_.backoff_cooldown;
    cooldowns_.inc();
    metrics_.events().record(
        sim_.now(), "pool", "cooldown",
        config_.name + "/" + key + " after " +
            std::to_string(origin.consecutive_failures) + " consecutive failures");
    PAN_DEBUG(kLog) << config_.name << "/" << key << ": " << origin.consecutive_failures
                    << " consecutive failures, cooling down";
  }
}

void OriginPool::arm_idle_eviction(const std::string& key, Entry& entry) {
  if (config_.idle_ttl <= Duration::zero()) return;
  const std::uint64_t epoch = entry.idle_epoch;
  PooledConnection* conn = entry.conn.get();
  sim_.schedule_after(config_.idle_ttl, [this, alive = alive_, key, conn, epoch] {
    if (!*alive) return;
    const auto it = origins_.find(key);
    if (it == origins_.end()) return;
    auto& conns = it->second.conns;
    const auto cit = std::find_if(conns.begin(), conns.end(),
                                  [conn](const Entry& e) { return e.conn.get() == conn; });
    if (cit == conns.end() || cit->outstanding != 0 || cit->idle_epoch != epoch) return;
    cit->conn->shutdown();
    release_deferred(std::move(cit->conn));
    conns.erase(cit);
    --total_conns_;
    evictions_.inc();
    ++it->second.evictions;
    set_conn_gauge();
  });
}

std::size_t OriginPool::migrate(const std::string& key, const scion::Path& path) {
  const auto it = origins_.find(key);
  if (it == origins_.end()) return 0;
  std::size_t migrated = 0;
  for (Entry& entry : it->second.conns) {
    auto* scion_conn = dynamic_cast<ScionPooledConnection*>(entry.conn.get());
    if (scion_conn == nullptr) continue;
    // A wedged-open connection (dead stream, transport still up) is waiting
    // to be pruned; moving it onto a fresh path would burn the path's first
    // impression on a connection that can never carry a request again.
    if (!entry.conn->usable()) continue;
    if (scion_conn->path().fingerprint() == path.fingerprint()) continue;
    scion_conn->set_path(path);
    ++migrated;
  }
  if (migrated > 0) migrations_.inc(migrated);
  return migrated;
}

std::size_t OriginPool::retire(const std::string& key) {
  const auto it = origins_.find(key);
  if (it == origins_.end()) return 0;
  std::size_t closed = 0;
  for (Entry& entry : it->second.conns) {
    if (entry.conn->transport().state() == transport::Connection::State::kClosed) continue;
    entry.conn->shutdown();
    ++closed;
  }
  if (closed > 0) {
    metrics_.events().record(sim_.now(), "pool", "retire",
                             config_.name + "/" + key + " closed " +
                                 std::to_string(closed) + " conns");
  }
  // Idle entries leave now; busy ones drain through their failing fetches.
  // Re-dispatch so parked waiters dial fresh connections immediately.
  dispatch(key);
  return closed;
}

OriginPool::PooledConnection* OriginPool::primary(const std::string& key) {
  const auto it = origins_.find(key);
  if (it == origins_.end()) return nullptr;
  for (const Entry& entry : it->second.conns) {
    if (entry.conn->transport().state() != transport::Connection::State::kClosed) {
      return entry.conn.get();
    }
  }
  return nullptr;
}

void OriginPool::for_each_connection(
    const std::function<void(const std::string& key, PooledConnection& conn)>& fn) {
  for (auto& [key, origin] : origins_) {
    for (Entry& entry : origin.conns) fn(key, *entry.conn);
  }
}

std::vector<OriginPool::OriginSnapshot> OriginPool::snapshot() const {
  std::vector<OriginSnapshot> out;
  out.reserve(origins_.size());
  for (const auto& [key, origin] : origins_) {
    OriginSnapshot snap;
    snap.key = key;
    snap.conns = origin.conns.size();
    for (const Entry& entry : origin.conns) {
      snap.outstanding += entry.outstanding;
      snap.per_conn_outstanding.push_back(entry.outstanding);
    }
    snap.queued = origin.waiting.size();
    if (config_.limiter != nullptr) snap.effective_limit = config_.limiter->limit(key);
    snap.evictions = origin.evictions;
    snap.consecutive_failures = origin.consecutive_failures;
    snap.cooling_down = cooling_down(origin);
    out.push_back(std::move(snap));
  }
  // Deterministic order for JSON dumps and tests.
  std::sort(out.begin(), out.end(),
            [](const OriginSnapshot& a, const OriginSnapshot& b) { return a.key < b.key; });
  return out;
}

std::string OriginPool::snapshot_json() const {
  std::string out = "[";
  bool first = true;
  for (const OriginSnapshot& snap : snapshot()) {
    if (!first) out += ",";
    first = false;
    out += "{\"origin\":" + strings::json_quote(snap.key);
    out += strings::format(
        ",\"conns\":%zu,\"outstanding\":%zu,\"queued\":%zu,\"limit\":%zu,"
        "\"evictions\":%llu,\"consecutive_failures\":%zu,\"cooling_down\":%s",
        snap.conns, snap.outstanding, snap.queued, snap.effective_limit,
        static_cast<unsigned long long>(snap.evictions), snap.consecutive_failures,
        snap.cooling_down ? "true" : "false");
    out += "}";
  }
  out += "]";
  return out;
}

}  // namespace pan::http
