// Tiny URL parser for the simulator's "http://host[:port]/path" world.
#pragma once

#include <cstdint>
#include <string>

#include "util/result.hpp"

namespace pan::http {

struct Url {
  std::string scheme = "http";
  std::string host;
  std::uint16_t port = 80;
  std::string path = "/";

  [[nodiscard]] std::string to_string() const;
  /// "host" or "host:port" when the port is non-default.
  [[nodiscard]] std::string authority() const;
  /// Scheme + authority: the origin for same-origin accounting.
  [[nodiscard]] std::string origin() const;
};

[[nodiscard]] Result<Url> parse_url(std::string_view input);

/// Splits an origin-form target at the first '?':
/// "/skip/metrics?prefix=slo." -> {"/skip/metrics", "prefix=slo."}. The query
/// is empty when there is no '?'.
struct SplitTarget {
  std::string_view path;
  std::string_view query;
};
[[nodiscard]] SplitTarget split_target(std::string_view target);

/// First value of `key` in an "a=1&b=2" query string, or empty when absent.
/// No percent-decoding — the simulator's control endpoints use plain values.
[[nodiscard]] std::string_view query_param(std::string_view query, std::string_view key);

}  // namespace pan::http
