// Tiny URL parser for the simulator's "http://host[:port]/path" world.
#pragma once

#include <cstdint>
#include <string>

#include "util/result.hpp"

namespace pan::http {

struct Url {
  std::string scheme = "http";
  std::string host;
  std::uint16_t port = 80;
  std::string path = "/";

  [[nodiscard]] std::string to_string() const;
  /// "host" or "host:port" when the port is non-default.
  [[nodiscard]] std::string authority() const;
  /// Scheme + authority: the origin for same-origin accounting.
  [[nodiscard]] std::string origin() const;
};

[[nodiscard]] Result<Url> parse_url(std::string_view input);

}  // namespace pan::http
