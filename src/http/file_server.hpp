// Static file server: the content host of the paper's experiments ("two file
// servers providing static content"). Resources are either explicit text
// (page documents) or generated blobs of a given size; responses can carry
// the Strict-SCION header and take a configurable server think time.
#pragma once

#include <string>
#include <unordered_map>

#include "http/server.hpp"
#include "http/strict_scion.hpp"
#include "sim/simulator.hpp"

namespace pan::http {

class FileServer {
 public:
  explicit FileServer(sim::Simulator& sim);

  /// Explicit body (page documents, manifests).
  void add_text(const std::string& path, std::string body,
                std::string content_type = "text/html");
  /// Deterministically generated blob of `size` bytes.
  void add_blob(const std::string& path, std::size_t size,
                std::string content_type = "application/octet-stream");
  /// HTTP redirect (301/302/307/308) to `location` (absolute or path).
  void add_redirect(const std::string& path, std::string location, int status = 302);
  void remove(const std::string& path);
  [[nodiscard]] bool has(const std::string& path) const { return resources_.contains(path); }

  /// All responses gain "Strict-SCION: max-age=...".
  void enable_strict_scion(Duration max_age);
  /// Adds a fixed header to every response (e.g. "Path-Preference" for
  /// server-side path negotiation).
  void set_extra_header(std::string name, std::string value);
  /// Server think time per request (default 0).
  void set_think_time(Duration d) { think_time_ = d; }

  /// The handler to plug into LegacyHttpServer / ScionHttpServer (both may
  /// share one FileServer, like a dual-stack host).
  [[nodiscard]] HttpServer::Handler handler();

  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  /// 304 Not Modified responses served (If-None-Match matches).
  [[nodiscard]] std::uint64_t revalidations() const { return revalidations_; }

 private:
  struct Resource {
    Bytes body;
    std::string content_type;
    std::string redirect_location;  // non-empty => redirect
    int redirect_status = 0;
  };

  [[nodiscard]] HttpResponse respond_to(const HttpRequest& request);

  sim::Simulator& sim_;
  std::unordered_map<std::string, Resource> resources_;
  std::optional<StrictScionDirective> strict_scion_;
  std::vector<Headers::Field> extra_headers_;
  Duration think_time_ = Duration::zero();
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t revalidations_ = 0;
};

/// The deterministic filler used for generated blobs (tests verify content
/// integrity end to end with it).
[[nodiscard]] Bytes generate_blob(std::size_t size, std::uint64_t seed_tag);

/// The strong validator the file server uses (first 16 hex chars of the
/// body's SHA-256); the browser cache compares against it.
[[nodiscard]] std::string etag_of(std::span<const std::uint8_t> body);

}  // namespace pan::http
