// Static file server: the content host of the paper's experiments ("two file
// servers providing static content"). Resources are either explicit text
// (page documents) or generated blobs of a given size; responses can carry
// the Strict-SCION header and take a configurable server think time.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>

#include "http/server.hpp"
#include "http/strict_scion.hpp"
#include "sim/simulator.hpp"

namespace pan::http {

/// Injected origin misbehavior, applied per response.
enum class OriginFaultMode : std::uint8_t {
  kNone,
  /// Truncate the response mid-wire and close the stream (a reset while the
  /// body is in flight; clients see a parse error / closed stream).
  kReset,
  /// Accept the request but respond only after a very long stall
  /// (slow-loris); clients must enforce their own deadline.
  kSlowLoris,
  /// Serve normally but with a malformed Strict-SCION header value, which
  /// compliant clients must ignore (no learned strictness).
  kBadStrictScion,
};

class FileServer {
 public:
  explicit FileServer(sim::Simulator& sim);

  /// Explicit body (page documents, manifests).
  void add_text(const std::string& path, std::string body,
                std::string content_type = "text/html");
  /// Deterministically generated blob of `size` bytes.
  void add_blob(const std::string& path, std::size_t size,
                std::string content_type = "application/octet-stream");
  /// HTTP redirect (301/302/307/308) to `location` (absolute or path).
  void add_redirect(const std::string& path, std::string location, int status = 302);
  void remove(const std::string& path);
  [[nodiscard]] bool has(const std::string& path) const { return resources_.contains(path); }

  /// All responses gain "Strict-SCION: max-age=...".
  void enable_strict_scion(Duration max_age);
  /// Adds a fixed header to every response (e.g. "Path-Preference" for
  /// server-side path negotiation).
  void set_extra_header(std::string name, std::string value);
  /// Server think time per request (default 0).
  void set_think_time(Duration d) { think_time_ = d; }

  /// Fault injection: fixed misbehavior mode for every response.
  void set_fault(OriginFaultMode mode) { fault_mode_ = mode; }
  /// Fault injection, pull-based: consulted per request (overrides the fixed
  /// mode when it returns non-kNone). nullptr detaches.
  using FaultHook = std::function<OriginFaultMode()>;
  void set_fault_hook(FaultHook hook) { fault_hook_ = std::move(hook); }
  /// Stall before responding in kSlowLoris mode (default 120s — far beyond
  /// any sane client deadline).
  void set_slow_loris_delay(Duration d) { slow_loris_delay_ = d; }
  /// Responses deliberately corrupted/stalled by an active fault.
  [[nodiscard]] std::uint64_t faulted_responses() const { return faulted_; }

  /// The handler to plug into LegacyHttpServer / ScionHttpServer (both may
  /// share one FileServer, like a dual-stack host).
  [[nodiscard]] HttpServer::Handler handler();

  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  /// 304 Not Modified responses served (If-None-Match matches).
  [[nodiscard]] std::uint64_t revalidations() const { return revalidations_; }

 private:
  struct Resource {
    Bytes body;
    std::string content_type;
    std::string redirect_location;  // non-empty => redirect
    int redirect_status = 0;
  };

  [[nodiscard]] HttpResponse respond_to(const HttpRequest& request);
  [[nodiscard]] OriginFaultMode current_fault();

  sim::Simulator& sim_;
  std::unordered_map<std::string, Resource> resources_;
  std::optional<StrictScionDirective> strict_scion_;
  std::vector<Headers::Field> extra_headers_;
  Duration think_time_ = Duration::zero();
  OriginFaultMode fault_mode_ = OriginFaultMode::kNone;
  FaultHook fault_hook_;
  Duration slow_loris_delay_ = seconds(120);
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t revalidations_ = 0;
  std::uint64_t faulted_ = 0;
};

/// The deterministic filler used for generated blobs (tests verify content
/// integrity end to end with it).
[[nodiscard]] Bytes generate_blob(std::size_t size, std::uint64_t seed_tag);

/// The strong validator the file server uses (first 16 hex chars of the
/// body's SHA-256); the browser cache compares against it.
[[nodiscard]] std::string etag_of(std::span<const std::uint8_t> body);

}  // namespace pan::http
