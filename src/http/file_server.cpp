#include "http/file_server.hpp"

#include <algorithm>

#include "crypto/sha256.hpp"

namespace pan::http {

std::string etag_of(std::span<const std::uint8_t> body) {
  return crypto::hex_digest(crypto::sha256(body)).substr(0, 16);
}

Bytes generate_blob(std::size_t size, std::uint64_t seed_tag) {
  Bytes out;
  out.reserve(size);
  // Repeating pattern keyed by the tag — cheap, deterministic, and content
  // differs per resource so misrouted bodies are detectable.
  std::uint64_t x = seed_tag * 0x9e3779b97f4a7c15ULL + 0x1234567;
  while (out.size() < size) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    for (int i = 0; i < 8 && out.size() < size; ++i) {
      out.push_back(static_cast<std::uint8_t>(x >> (8 * i)));
    }
  }
  return out;
}

FileServer::FileServer(sim::Simulator& sim) : sim_(sim) {}

void FileServer::add_text(const std::string& path, std::string body,
                          std::string content_type) {
  Resource resource;
  resource.body = from_string(body);
  resource.content_type = std::move(content_type);
  resources_[path] = std::move(resource);
}

void FileServer::add_blob(const std::string& path, std::size_t size,
                          std::string content_type) {
  const crypto::Digest tag = crypto::sha256(path);
  std::uint64_t seed = 0;
  for (int i = 0; i < 8; ++i) seed = (seed << 8) | tag[static_cast<std::size_t>(i)];
  Resource resource;
  resource.body = generate_blob(size, seed);
  resource.content_type = std::move(content_type);
  resources_[path] = std::move(resource);
}

void FileServer::add_redirect(const std::string& path, std::string location, int status) {
  Resource resource;
  resource.redirect_location = std::move(location);
  resource.redirect_status = status;
  resources_[path] = std::move(resource);
}

void FileServer::remove(const std::string& path) { resources_.erase(path); }

void FileServer::enable_strict_scion(Duration max_age) {
  strict_scion_ = StrictScionDirective{max_age};
}

void FileServer::set_extra_header(std::string name, std::string value) {
  extra_headers_.push_back(Headers::Field{std::move(name), std::move(value)});
}

HttpResponse FileServer::respond_to(const HttpRequest& request) {
  HttpResponse response;
  const auto it = resources_.find(request.target);
  if (it == resources_.end()) {
    ++misses_;
    response = make_text_response(404, "not found: " + request.target);
  } else if (!it->second.redirect_location.empty()) {
    ++hits_;
    response = make_text_response(it->second.redirect_status, "moved");
    response.reason = status_reason(it->second.redirect_status);
    response.headers.set("Location", it->second.redirect_location);
  } else {
    ++hits_;
    const std::string etag = "\"" + etag_of(it->second.body) + "\"";
    if (const auto inm = request.headers.get("If-None-Match"); inm == etag) {
      ++revalidations_;
      response.status = 304;
      response.reason = status_reason(304);
    } else {
      response = make_response(200, it->second.body, it->second.content_type);
    }
    response.headers.set("ETag", etag);
  }
  if (strict_scion_.has_value()) {
    set_strict_scion(response, *strict_scion_);
  }
  for (const Headers::Field& field : extra_headers_) {
    response.headers.set(field.name, field.value);
  }
  return response;
}

OriginFaultMode FileServer::current_fault() {
  if (fault_hook_) {
    const OriginFaultMode hooked = fault_hook_();
    if (hooked != OriginFaultMode::kNone) return hooked;
  }
  return fault_mode_;
}

HttpServer::Handler FileServer::handler() {
  return [this](const HttpRequest& request, HttpServer::Respond respond) {
    // The fault mode is sampled when the request arrives (a fault reverted
    // mid-think-time no longer corrupts the in-flight response, matching a
    // real origin recovering between requests).
    const OriginFaultMode fault = current_fault();
    Duration delay = think_time_;
    if (fault == OriginFaultMode::kSlowLoris) {
      ++faulted_;
      delay = std::max(delay, slow_loris_delay_);
    }
    auto finish = [this, request, fault,
                   respond = std::move(respond)]() mutable {
      HttpResponse response = respond_to(request);
      if (fault == OriginFaultMode::kReset) {
        ++faulted_;
        // Cut the wire halfway through what would have been sent.
        response.truncate_wire_at = response.serialize().size() / 2;
      } else if (fault == OriginFaultMode::kBadStrictScion) {
        ++faulted_;
        response.headers.set(std::string(kStrictScionHeader), "max-age=; ]]garbage[[");
      }
      respond(std::move(response));
    };
    if (delay > Duration::zero()) {
      sim_.schedule_after(delay, std::move(finish));
    } else {
      finish();
    }
  };
}

}  // namespace pan::http
