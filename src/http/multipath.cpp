#include "http/multipath.hpp"

#include "util/log.hpp"

namespace pan::http {

namespace {
constexpr std::string_view kLog = "multipath";
}

const char* to_string(MultipathConfig::Schedule s) {
  switch (s) {
    case MultipathConfig::Schedule::kRoundRobin: return "round-robin";
    case MultipathConfig::Schedule::kLeastOutstanding: return "least-outstanding";
    case MultipathConfig::Schedule::kWeightedLatency: return "weighted-latency";
  }
  return "?";
}

MultipathScionConnection::MultipathScionConnection(scion::ScionStack& stack,
                                                   scion::ScionEndpoint server,
                                                   std::vector<scion::Path> paths,
                                                   MultipathConfig config)
    : stack_(stack), server_(server), config_(std::move(config)) {
  channels_.reserve(paths.size());
  for (scion::Path& path : paths) add_channel(stack_, std::move(path));
}

MultipathScionConnection::~MultipathScionConnection() { *alive_ = false; }

void MultipathScionConnection::add_channel(scion::ScionStack& stack, scion::Path path,
                                           std::string access) {
  Channel channel;
  channel.conn =
      std::make_unique<ScionHttpConnection>(stack, server_, path.dataplane(), config_.quic);
  channel.stack = &stack;
  channel.stats.fingerprint = path.fingerprint();
  channel.stats.access = access;
  channel.path = std::move(path);
  channels_.push_back(std::move(channel));
}

bool MultipathScionConnection::channel_usable(const Channel& channel) const {
  return channel.conn != nullptr &&
         channel.conn->transport().state() != transport::Connection::State::kClosed;
}

std::size_t MultipathScionConnection::usable_count() const {
  std::size_t count = 0;
  for (const Channel& channel : channels_) {
    if (channel_usable(channel)) ++count;
  }
  return count;
}

void MultipathScionConnection::maybe_redial(std::size_t index) {
  Channel& channel = channels_[index];
  if (closed_ || config_.max_redials == 0 || channel.redial_pending) return;
  if (channel_usable(channel)) return;
  if (channel.redials >= config_.max_redials) return;  // budget exhausted
  Duration backoff = config_.redial_backoff;
  for (std::size_t i = 0; i < channel.redials; ++i) backoff = backoff * 2;
  channel.redial_pending = true;
  ++channel.redials;
  ++channel.stats.redials;
  PAN_DEBUG(kLog) << "channel " << channel.stats.fingerprint << " dead; re-dial "
                  << channel.redials << "/" << config_.max_redials << " in "
                  << to_string(backoff);
  auto alive = alive_;
  channel.stack->host().simulator().schedule_after(backoff, [this, alive, index] {
    if (!*alive || closed_) return;
    Channel& dead = channels_[index];
    dead.redial_pending = false;
    if (channel_usable(dead)) return;  // recovered on its own in the meantime
    dead.conn = std::make_unique<ScionHttpConnection>(*dead.stack, server_,
                                                      dead.path.dataplane(), config_.quic);
  });
}

std::size_t MultipathScionConnection::pick_channel() {
  const std::size_t n = channels_.size();
  std::size_t best = n;
  switch (config_.schedule) {
    case MultipathConfig::Schedule::kRoundRobin: {
      for (std::size_t step = 0; step < n; ++step) {
        const std::size_t candidate = (rr_cursor_ + step) % n;
        if (channel_usable(channels_[candidate])) {
          best = candidate;
          rr_cursor_ = candidate + 1;
          break;
        }
      }
      break;
    }
    case MultipathConfig::Schedule::kLeastOutstanding: {
      for (std::size_t i = 0; i < n; ++i) {
        if (!channel_usable(channels_[i])) continue;
        if (best == n || channels_[i].outstanding < channels_[best].outstanding) {
          best = i;
        }
      }
      break;
    }
    case MultipathConfig::Schedule::kWeightedLatency: {
      double best_score = 0;
      for (std::size_t i = 0; i < n; ++i) {
        if (!channel_usable(channels_[i])) continue;
        const double score = static_cast<double>(channels_[i].outstanding + 1) *
                             static_cast<double>(channels_[i].path.meta().latency.nanos());
        if (best == n || score < best_score) {
          best = i;
          best_score = score;
        }
      }
      break;
    }
  }
  return best;
}

std::size_t MultipathScionConnection::pick_for_intent(net::FetchIntent intent) {
  if (intent == net::FetchIntent::kBulk) return pick_channel();
  // Latency-critical wants the lowest-latency usable channel; background the
  // highest (staying off the fast ones). Ties keep the earliest channel.
  const std::size_t n = channels_.size();
  std::size_t best = n;
  for (std::size_t i = 0; i < n; ++i) {
    if (!channel_usable(channels_[i])) continue;
    if (best == n) {
      best = i;
      continue;
    }
    const auto latency = channels_[i].path.meta().latency;
    const auto best_latency = channels_[best].path.meta().latency;
    if (intent == net::FetchIntent::kLatencyCritical ? latency < best_latency
                                                     : latency > best_latency) {
      best = i;
    }
  }
  return best;
}

void MultipathScionConnection::fetch(const HttpRequest& request,
                                     HttpClientStream::ResponseFn on_response) {
  attempt(request, std::nullopt, std::move(on_response), config_.max_retries);
}

void MultipathScionConnection::fetch(const HttpRequest& request, net::FetchIntent intent,
                                     HttpClientStream::ResponseFn on_response) {
  attempt(request, intent, std::move(on_response), config_.max_retries);
}

void MultipathScionConnection::attempt(const HttpRequest& request,
                                       std::optional<net::FetchIntent> intent,
                                       HttpClientStream::ResponseFn on_response,
                                       std::size_t retries_left) {
  // Dead channels queue a re-dial on every scheduling pass, so striping
  // width recovers even while traffic keeps flowing on the survivors.
  for (std::size_t i = 0; i < channels_.size(); ++i) maybe_redial(i);
  const std::size_t index = intent.has_value() ? pick_for_intent(*intent) : pick_channel();
  if (index >= channels_.size()) {
    on_response(Err("multipath: no usable channel"));
    return;
  }
  Channel& channel = channels_[index];
  ++channel.outstanding;
  ++channel.stats.requests;
  channel.conn->fetch(request, [this, index, request, intent, retries_left,
                                cb = std::move(on_response)](Result<HttpResponse> result) mutable {
    Channel& done_channel = channels_[index];
    if (done_channel.outstanding > 0) --done_channel.outstanding;
    if (!result.ok()) {
      ++done_channel.stats.errors;
      maybe_redial(index);
      if (retries_left > 0) {
        PAN_DEBUG(kLog) << "channel " << done_channel.stats.fingerprint << " failed ("
                        << result.error() << "); failing over";
        attempt(request, intent, std::move(cb), retries_left - 1);
        return;
      }
      cb(std::move(result));
      return;
    }
    done_channel.redials = 0;  // the channel proved itself; refill the budget
    done_channel.stats.bytes += result.value().body.size();
    cb(std::move(result));
  });
}

std::vector<MultipathScionConnection::ChannelStats>
MultipathScionConnection::channel_stats() const {
  std::vector<ChannelStats> out;
  out.reserve(channels_.size());
  for (const Channel& channel : channels_) out.push_back(channel.stats);
  return out;
}

void MultipathScionConnection::close() {
  for (Channel& channel : channels_) {
    if (channel.conn != nullptr) channel.conn->close();
  }
}

}  // namespace pan::http
