// HTTP client machinery over an abstract Bytestream.
//
// HttpClientStream drives one stream: requests go out (pipelined FIFO) and
// responses come back in order. With close_after_request (the QUIC
// one-stream-per-request mapping) the stream is FIN'd after the request.
#pragma once

#include <deque>
#include <functional>
#include <memory>

#include "http/message.hpp"
#include "http/parser.hpp"
#include "transport/bytestream.hpp"

namespace pan::http {

class HttpClientStream {
 public:
  using ResponseFn = std::function<void(Result<HttpResponse>)>;

  HttpClientStream(transport::Bytestream& stream, bool close_after_request);
  /// Detaches from the stream: the stream outlives this object (it is owned
  /// by the transport connection), so the read callback must not dangle.
  ~HttpClientStream();

  HttpClientStream(const HttpClientStream&) = delete;
  HttpClientStream& operator=(const HttpClientStream&) = delete;

  void fetch(const HttpRequest& request, ResponseFn on_response);

  [[nodiscard]] std::size_t outstanding() const { return waiting_.size(); }
  /// The stream can never carry another exchange: it FIN'd, broke, or the
  /// parser choked mid-response (e.g. an origin reset truncated the wire).
  /// Pools use this to retire HTTP/1 connections whose transport is still
  /// nominally open but whose single stream is dead.
  [[nodiscard]] bool broken() const {
    return stream_done_ || parse_failed_ || stream_.broken();
  }

 private:
  void fail_all(const std::string& reason);

  transport::Bytestream& stream_;
  bool close_after_request_;
  HttpParser parser_{ParserMode::kResponse};
  std::deque<ResponseFn> waiting_;
  bool stream_done_ = false;
  bool parse_failed_ = false;
};

}  // namespace pan::http
