// HTTP-level multipath over SCION.
//
// PAN architectures "simultaneously also provid[e] native inter-domain
// multipath" (paper, Section 1): an end host can use several paths to the
// same destination at once. This client holds one QUIC-lite connection per
// selected path ("channel") and schedules each HTTP exchange onto a channel,
// aggregating bandwidth across paths and failing over when a channel's
// connection dies. Request-level striping (rather than packet-level) keeps
// each transport connection's congestion state on a single path, the same
// trade-off HTTP-level multipath CDN clients make.
#pragma once

#include "http/endpoints.hpp"
#include "scion/path.hpp"

namespace pan::http {

struct MultipathConfig {
  enum class Schedule {
    kRoundRobin,        // rotate channels per request
    kLeastOutstanding,  // least in-flight exchanges first
    kWeightedLatency,   // minimize (outstanding+1) * path latency
  };
  Schedule schedule = Schedule::kLeastOutstanding;
  /// Failover attempts on other channels when a fetch errors.
  std::size_t max_retries = 2;
  transport::TransportConfig quic = default_quic_config();
};

[[nodiscard]] const char* to_string(MultipathConfig::Schedule s);

class MultipathScionConnection {
 public:
  /// One channel per path; `paths` must all lead to `server`'s AS.
  MultipathScionConnection(scion::ScionStack& stack, scion::ScionEndpoint server,
                           std::vector<scion::Path> paths, MultipathConfig config = {});

  MultipathScionConnection(const MultipathScionConnection&) = delete;
  MultipathScionConnection& operator=(const MultipathScionConnection&) = delete;

  void fetch(const HttpRequest& request, HttpClientStream::ResponseFn on_response);

  [[nodiscard]] std::size_t path_count() const { return channels_.size(); }

  struct ChannelStats {
    std::string fingerprint;
    std::uint64_t requests = 0;
    std::uint64_t errors = 0;
    std::uint64_t bytes = 0;
  };
  [[nodiscard]] std::vector<ChannelStats> channel_stats() const;

  /// Closes every channel.
  void close();

  /// Test/diagnostic access to a channel's transport connection.
  [[nodiscard]] transport::Connection& channel_transport(std::size_t index) {
    return channels_[index].conn->transport();
  }

 private:
  struct Channel {
    std::unique_ptr<ScionHttpConnection> conn;
    scion::Path path;
    std::size_t outstanding = 0;
    ChannelStats stats;
  };

  /// Index of the channel to use, or channels_.size() if none is usable.
  [[nodiscard]] std::size_t pick_channel();
  void attempt(const HttpRequest& request, HttpClientStream::ResponseFn on_response,
               std::size_t retries_left);
  [[nodiscard]] bool channel_usable(const Channel& channel) const;

  scion::ScionStack& stack_;
  scion::ScionEndpoint server_;
  MultipathConfig config_;
  std::vector<Channel> channels_;
  std::size_t rr_cursor_ = 0;
};

}  // namespace pan::http
