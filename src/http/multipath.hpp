// HTTP-level multipath over SCION.
//
// PAN architectures "simultaneously also provid[e] native inter-domain
// multipath" (paper, Section 1): an end host can use several paths to the
// same destination at once. This client holds one QUIC-lite connection per
// selected path ("channel") and schedules each HTTP exchange onto a channel,
// aggregating bandwidth across paths and failing over when a channel's
// connection dies. Request-level striping (rather than packet-level) keeps
// each transport connection's congestion state on a single path, the same
// trade-off HTTP-level multipath CDN clients make.
#pragma once

#include "http/endpoints.hpp"
#include "net/multi_access.hpp"
#include "scion/path.hpp"

namespace pan::http {

struct MultipathConfig {
  enum class Schedule {
    kRoundRobin,        // rotate channels per request
    kLeastOutstanding,  // least in-flight exchanges first
    kWeightedLatency,   // minimize (outstanding+1) * path latency
  };
  Schedule schedule = Schedule::kLeastOutstanding;
  /// Failover attempts on other channels when a fetch errors.
  std::size_t max_retries = 2;
  /// Bounded re-dial: a channel whose transport dies is re-dialed on its
  /// path (exponential backoff: redial_backoff * 2^n) up to max_redials
  /// consecutive times, so a long transfer recovers full striping width
  /// after a transient instead of limping on a shrunken path set. A fetch
  /// completing over the channel resets its redial budget. 0 disables.
  std::size_t max_redials = 3;
  Duration redial_backoff = milliseconds(50);
  transport::TransportConfig quic = default_quic_config();
};

[[nodiscard]] const char* to_string(MultipathConfig::Schedule s);

class MultipathScionConnection {
 public:
  /// One channel per path; `paths` must all lead to `server`'s AS.
  MultipathScionConnection(scion::ScionStack& stack, scion::ScionEndpoint server,
                           std::vector<scion::Path> paths, MultipathConfig config = {});

  ~MultipathScionConnection();

  MultipathScionConnection(const MultipathScionConnection&) = delete;
  MultipathScionConnection& operator=(const MultipathScionConnection&) = delete;

  /// Adds a channel dialed through `stack` (a multi-access client passes a
  /// different stack per access); `access` labels the channel in stats and
  /// intent picks. The path must lead to the server's AS from that stack.
  void add_channel(scion::ScionStack& stack, scion::Path path, std::string access = {});

  void fetch(const HttpRequest& request, HttpClientStream::ResponseFn on_response);
  /// Intent-aware scheduling: latency-critical rides the lowest-latency
  /// usable channel, background the highest, bulk the configured schedule.
  void fetch(const HttpRequest& request, net::FetchIntent intent,
             HttpClientStream::ResponseFn on_response);

  [[nodiscard]] std::size_t path_count() const { return channels_.size(); }
  /// Channels whose transport is currently open (re-dials restore them).
  [[nodiscard]] std::size_t usable_count() const;

  struct ChannelStats {
    std::string fingerprint;
    std::string access;
    std::uint64_t requests = 0;
    std::uint64_t errors = 0;
    std::uint64_t bytes = 0;
    std::uint64_t redials = 0;
  };
  [[nodiscard]] std::vector<ChannelStats> channel_stats() const;

  /// Closes every channel.
  void close();

  /// Test/diagnostic access to a channel's transport connection.
  [[nodiscard]] transport::Connection& channel_transport(std::size_t index) {
    return channels_[index].conn->transport();
  }

 private:
  struct Channel {
    std::unique_ptr<ScionHttpConnection> conn;
    scion::ScionStack* stack = nullptr;  // stack this channel dials through
    scion::Path path;
    std::size_t outstanding = 0;
    std::size_t redials = 0;  // consecutive re-dials since the last success
    bool redial_pending = false;
    ChannelStats stats;
  };

  /// Index of the channel to use, or channels_.size() if none is usable.
  [[nodiscard]] std::size_t pick_channel();
  [[nodiscard]] std::size_t pick_for_intent(net::FetchIntent intent);
  void attempt(const HttpRequest& request, std::optional<net::FetchIntent> intent,
               HttpClientStream::ResponseFn on_response, std::size_t retries_left);
  [[nodiscard]] bool channel_usable(const Channel& channel) const;
  /// Schedules a backoff re-dial of a dead channel when budget remains.
  void maybe_redial(std::size_t index);

  scion::ScionStack& stack_;
  scion::ScionEndpoint server_;
  MultipathConfig config_;
  std::vector<Channel> channels_;
  std::size_t rr_cursor_ = 0;
  bool closed_ = false;
  /// Flipped in the destructor so pending re-dial timers become no-ops.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace pan::http
