#include "http/parser.hpp"

#include "util/strings.hpp"

namespace pan::http {

HttpParser::HttpParser(ParserMode mode) : mode_(mode) {}

void HttpParser::feed(std::span<const std::uint8_t> data) {
  if (failed_) return;
  buffer_.append(reinterpret_cast<const char*>(data.data()), data.size());
  process();
}

void HttpParser::finish() {
  if (failed_) return;
  if (state_ == State::kBody && body_until_eof_) {
    response_.body = from_string(buffer_);
    buffer_.clear();
    emit();
    return;
  }
  if (state_ == State::kBody || !buffer_.empty()) {
    fail("stream ended mid-message");
  }
}

void HttpParser::process() {
  for (;;) {
    if (failed_) return;
    if (state_ == State::kHead) {
      const std::size_t end = buffer_.find("\r\n\r\n");
      if (end == std::string::npos) {
        if (buffer_.size() > 64 * 1024) fail("header section too large");
        return;
      }
      const std::string head = buffer_.substr(0, end);
      buffer_.erase(0, end + 4);
      if (!parse_head(head)) return;
      state_ = State::kBody;
    }
    if (state_ == State::kBody) {
      if (body_until_eof_) return;  // wait for finish()
      if (buffer_.size() < body_expected_) return;
      Bytes body = from_string(std::string_view(buffer_).substr(0, body_expected_));
      buffer_.erase(0, body_expected_);
      if (mode_ == ParserMode::kRequest) {
        request_.body = std::move(body);
      } else {
        response_.body = std::move(body);
      }
      emit();
      if (failed_) return;
      state_ = State::kHead;
    }
  }
}

bool HttpParser::parse_head(std::string_view head) {
  const auto lines = strings::split(head, '\n');
  if (lines.empty()) {
    fail("empty head");
    return false;
  }
  std::string_view start_line = strings::trim(lines[0]);

  Headers headers;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const std::string_view line = strings::trim(lines[i]);
    if (line.empty()) continue;
    const auto colon = line.find(':');
    if (colon == std::string_view::npos) {
      fail("malformed header line: '" + std::string(line) + "'");
      return false;
    }
    headers.add(std::string(strings::trim(line.substr(0, colon))),
                std::string(strings::trim(line.substr(colon + 1))));
  }

  body_expected_ = 0;
  body_until_eof_ = false;
  if (const auto content_length = headers.get("Content-Length")) {
    const auto parsed = strings::parse_u64(*content_length);
    if (!parsed.ok()) {
      fail("bad Content-Length: " + parsed.error());
      return false;
    }
    body_expected_ = parsed.value();
  } else if (mode_ == ParserMode::kResponse) {
    body_until_eof_ = true;
  }

  if (mode_ == ParserMode::kRequest) {
    // "METHOD SP target SP version"
    const auto parts = strings::split(start_line, ' ');
    if (parts.size() != 3) {
      fail("malformed request line: '" + std::string(start_line) + "'");
      return false;
    }
    request_ = HttpRequest{};
    request_.method = std::string(parts[0]);
    request_.target = std::string(parts[1]);
    request_.version = std::string(parts[2]);
    request_.headers = std::move(headers);
  } else {
    // "version SP status SP reason..."
    const auto sp1 = start_line.find(' ');
    const auto sp2 = sp1 == std::string_view::npos ? std::string_view::npos
                                                   : start_line.find(' ', sp1 + 1);
    if (sp1 == std::string_view::npos) {
      fail("malformed status line: '" + std::string(start_line) + "'");
      return false;
    }
    response_ = HttpResponse{};
    response_.version = std::string(start_line.substr(0, sp1));
    const std::string_view status_str =
        sp2 == std::string_view::npos ? start_line.substr(sp1 + 1)
                                      : start_line.substr(sp1 + 1, sp2 - sp1 - 1);
    const auto status = strings::parse_u64(strings::trim(status_str));
    if (!status.ok() || status.value() < 100 || status.value() > 599) {
      fail("bad status code: '" + std::string(status_str) + "'");
      return false;
    }
    response_.status = static_cast<int>(status.value());
    response_.reason = sp2 == std::string_view::npos
                           ? std::string()
                           : std::string(strings::trim(start_line.substr(sp2 + 1)));
    response_.headers = std::move(headers);
  }
  return true;
}

void HttpParser::emit() {
  ++parsed_;
  if (mode_ == ParserMode::kRequest) {
    if (on_request) on_request(std::move(request_));
    request_ = HttpRequest{};
  } else {
    if (on_response) on_response(std::move(response_));
    response_ = HttpResponse{};
  }
}

void HttpParser::fail(const std::string& reason) {
  failed_ = true;
  if (on_error) on_error(reason);
}

}  // namespace pan::http
