// HTTP endpoint adapters binding the HTTP layer to concrete transports:
//   - LegacyHttpServer / LegacyHttpConnection: HTTP over TCP-lite over
//     legacy UDP/IP (the paper's BGP/IP baseline stack);
//   - ScionHttpServer / ScionHttpConnection: HTTP over QUIC-lite over SCION
//     (the paper's SCION transport: "we exclusively use QUIC ... for all web
//     traffic over SCION", one bidirectional stream per mapped request).
#pragma once

#include <memory>
#include <unordered_map>

#include "http/client.hpp"
#include "http/server.hpp"
#include "transport/scion_host.hpp"
#include "transport/udp_host.hpp"

namespace pan::http {

[[nodiscard]] transport::TransportConfig default_tcp_config();
[[nodiscard]] transport::TransportConfig default_quic_config();

/// Synthesizes a load-shed / unavailability response (429 or 503). Every
/// rejection path — admission control, circuit breaker, strict-mode
/// degradation, pool fast-fail, queue shed — goes through this one helper so
/// none of them can omit the Retry-After header. `retry_after` is rounded up
/// to whole seconds (minimum 1, per RFC 9110 delay-seconds).
[[nodiscard]] HttpResponse make_retry_after_response(int status, Duration retry_after,
                                                     const std::string& message);

class LegacyHttpServer {
 public:
  LegacyHttpServer(net::Host& host, std::uint16_t port, HttpServer::Handler handler,
                   transport::TransportConfig config = default_tcp_config());

  [[nodiscard]] HttpServer& http() { return server_; }
  [[nodiscard]] std::uint16_t port() const { return transport_.port(); }

 private:
  HttpServer server_;
  transport::UdpTransportServer transport_;
};

class ScionHttpServer {
 public:
  ScionHttpServer(scion::ScionStack& stack, std::uint16_t port, HttpServer::Handler handler,
                  transport::TransportConfig config = default_quic_config());

  [[nodiscard]] HttpServer& http() { return server_; }
  [[nodiscard]] std::uint16_t port() const { return transport_.port(); }

 private:
  HttpServer server_;
  transport::ScionTransportServer transport_;
};

/// One keep-alive HTTP connection over TCP-lite (sequential exchanges on the
/// single stream).
class LegacyHttpConnection {
 public:
  LegacyHttpConnection(net::Host& host, net::Endpoint server,
                       transport::TransportConfig config = default_tcp_config());

  void fetch(const HttpRequest& request, HttpClientStream::ResponseFn on_response);
  [[nodiscard]] transport::Connection& transport() { return client_.connection(); }
  /// An HTTP/1 connection rides a single stream: once that stream is dead
  /// (FIN, break, or a parse error from a truncated response) the connection
  /// can never serve again even while the transport stays open.
  [[nodiscard]] bool usable() const { return !http_->broken(); }
  void close();

 private:
  transport::UdpTransportClient client_;
  transport::Stream* stream_ = nullptr;
  std::unique_ptr<HttpClientStream> http_;
};

/// One QUIC-lite-over-SCION connection; each fetch runs on a fresh stream.
class ScionHttpConnection {
 public:
  ScionHttpConnection(scion::ScionStack& stack, scion::ScionEndpoint server,
                      scion::DataplanePath path,
                      transport::TransportConfig config = default_quic_config());
  ~ScionHttpConnection();

  void fetch(const HttpRequest& request, HttpClientStream::ResponseFn on_response);
  /// Migrates the connection to a different path.
  void set_path(scion::DataplanePath path) { client_.set_path(std::move(path)); }
  [[nodiscard]] transport::Connection& transport() { return client_.connection(); }
  void close();

 private:
  transport::ScionTransportClient client_;
  std::unordered_map<std::uint32_t, std::unique_ptr<HttpClientStream>> exchanges_;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace pan::http
