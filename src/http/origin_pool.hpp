// Keyed per-origin HTTP connection pool — the one connection manager every
// layer dispatches through (Socket-Intents-style centralization: reuse,
// failover and measurement live behind one policy-aware API instead of being
// re-implemented per caller).
//
// Users of the pool:
//   - Browser direct mode ("BGP/IP-Only"): per-origin LegacyHttpConnection
//     fan-out with browser-like no-pipelining dispatch;
//   - SkipProxy legacy pool: same shape, per ProxyConfig caps;
//   - SkipProxy SCION pool: one multiplexed ScionHttpConnection per origin
//     (max_conns_per_origin = 1, unlimited outstanding), with live path
//     migration (`migrate`) driven by SCMP;
//   - ReverseProxy backend pool: capped fan-out that, once full, pipelines
//     onto the *least-outstanding* live connection.
//
// The pool owns: the per-origin connection cap, the FIFO waiter queue,
// closed-connection pruning, least-outstanding dispatch, idle-connection
// eviction on a configurable TTL, a queue-wait timeout for parked waiters,
// and per-origin failure backoff (consecutive errors trip a cool-down during
// which submissions fast-fail instead of dialing a dead origin).
//
// Observability: every pool reports into an obs::MetricsRegistry —
// `pool.<name>.{hits,misses,evictions,pruned,queue_timeouts,fastfails,
// cooldowns}` counters, `pool.<name>.{conns,queue_depth}` gauges, and the
// registry-wide `pool.queue_wait` latency histogram (time a request spends
// parked before dispatch; surfaces in the fig3/fig5 bench phase tables).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "http/endpoints.hpp"
#include "obs/metrics.hpp"
#include "scion/path.hpp"
#include "sim/simulator.hpp"

namespace pan::http {

/// Adaptive per-origin concurrency governor (implemented by the proxy layer:
/// proxy::AimdController). The pool consults `limit` before every dispatch —
/// the origin's total outstanding requests never exceed it — and feeds back
/// every attempt's dispatch-to-completion latency through `record`, which is
/// what lets the controller narrow the window when latency inflates and
/// reopen it on recovery.
class ConcurrencyLimiter {
 public:
  virtual ~ConcurrencyLimiter() = default;
  /// Current cap on total outstanding requests for `key` (>= 1).
  [[nodiscard]] virtual std::size_t limit(const std::string& key) = 0;
  virtual void record(const std::string& key, Duration latency, bool ok) = 0;
};

struct OriginPoolConfig {
  /// Metric namespace: instruments register as `pool.<name>.*`.
  std::string name = "pool";
  std::size_t max_conns_per_origin = 6;
  /// Requests a single connection may carry at once. 1 = browser-style "no
  /// pipelining"; 0 = unlimited (QUIC-style multiplexing, or HTTP/1
  /// pipelining as the reverse proxy's overload valve).
  std::size_t max_outstanding_per_conn = 1;
  /// Evict a connection idle for this long (zero = keep forever).
  Duration idle_ttl = Duration::zero();
  /// Fail a waiter still parked in the queue after this long with
  /// `kQueueTimeoutError` (zero = wait indefinitely).
  Duration queue_timeout = Duration::zero();
  /// Consecutive fetch failures against one origin that trip its cool-down
  /// (zero = backoff disabled).
  std::size_t backoff_threshold = 0;
  /// While cooling down, submissions fast-fail with `kFastFailError`.
  Duration backoff_cooldown = seconds(5);
  /// Adaptive concurrency governor (non-owning; must outlive the pool).
  /// When set, an origin's total outstanding requests are additionally
  /// capped at `limiter->limit(key)` and every completion feeds back its
  /// latency. Null keeps the static caps only.
  ConcurrencyLimiter* limiter = nullptr;
  /// CoDel-style deadline shedding: when the origin is at capacity, queued
  /// waiters whose remaining deadline budget cannot cover the observed
  /// `pool.queue_wait` p90 are failed fast with `kShedError` instead of
  /// being left to ripen into a 504.
  bool deadline_shed = true;
};

/// Per-request options for OriginPool::submit.
struct SubmitOptions {
  /// Queue ordering class: lower dispatches first (0 = document/pinned,
  /// 1 = sub-resource, 2 = probe/background). Ties dispatch FIFO.
  std::uint8_t priority = 1;
  /// Absolute deadline for the request. Drives dispatch-time expiry (the
  /// waiter fails with `kExpiredError` instead of wasting a slot) and
  /// deadline shedding. Absent: the waiter never expires or sheds.
  std::optional<TimePoint> deadline;
};

class OriginPool {
 public:
  /// The erased connection kind the pool manages. Adapters below wrap the
  /// concrete LegacyHttpConnection / ScionHttpConnection endpoints.
  class PooledConnection {
   public:
    virtual ~PooledConnection() = default;
    virtual void fetch(const HttpRequest& request,
                       HttpClientStream::ResponseFn on_response) = 0;
    [[nodiscard]] virtual transport::Connection& transport() = 0;
    /// Whether the pool may still dispatch onto this connection. Default:
    /// the transport is not closed. HTTP/1 adapters also report unusable
    /// when their single stream died (parse error, truncated response)
    /// while the transport stayed open — otherwise the pool would keep
    /// dispatching onto a permanently wedged connection.
    [[nodiscard]] virtual bool usable() {
      return transport().state() != transport::Connection::State::kClosed;
    }
    /// Closes the underlying transport (idle eviction, pool teardown).
    virtual void shutdown() = 0;
  };
  /// Called when the pool decides a new connection is needed for the waiter
  /// being dispatched (the waiter carries its own factory: endpoint details
  /// are per-request knowledge of the caller).
  using ConnFactory = std::function<std::unique_ptr<PooledConnection>()>;

  /// Error strings surfaced through waiter callbacks. Callers map them to
  /// protocol responses (the SKIP proxy answers 504 / 503).
  static constexpr std::string_view kQueueTimeoutError = "pool queue-wait timeout";
  static constexpr std::string_view kFastFailError = "pool origin cooling down";
  static constexpr std::string_view kShedError = "pool shed on deadline pressure";
  static constexpr std::string_view kExpiredError = "pool deadline expired in queue";
  [[nodiscard]] static bool is_queue_timeout(const std::string& error);
  [[nodiscard]] static bool is_fast_fail(const std::string& error);
  [[nodiscard]] static bool is_shed(const std::string& error);
  [[nodiscard]] static bool is_expired(const std::string& error);
  /// Any error string the pool synthesizes itself (the request never reached
  /// the origin): callers use this to skip path-blame on such failures.
  [[nodiscard]] static bool is_pool_synthesized(const std::string& error);

  OriginPool(sim::Simulator& sim, obs::MetricsRegistry& metrics, OriginPoolConfig config);
  ~OriginPool();

  OriginPool(const OriginPool&) = delete;
  OriginPool& operator=(const OriginPool&) = delete;

  /// Queues `request` for `key` and dispatches as capacity allows. The
  /// response callback fires exactly once: with the origin's response, a
  /// transport error, `kQueueTimeoutError`, `kFastFailError`, `kShedError`,
  /// or `kExpiredError`.
  void submit(const std::string& key, HttpRequest request,
              HttpClientStream::ResponseFn on_response, ConnFactory factory);
  /// As above, with a queue priority and an absolute deadline (dispatch-time
  /// expiry + deadline shedding).
  void submit(const std::string& key, HttpRequest request, SubmitOptions options,
              HttpClientStream::ResponseFn on_response, ConnFactory factory);

  /// Moves every usable SCION connection for `key` onto `path` (no-op for
  /// fingerprint-identical paths, non-SCION entries, and wedged or closed
  /// connections). Returns the number of connections actually migrated
  /// (counted in `pool.<name>.migrations`). In-flight data redelivers over
  /// the new path via normal loss recovery.
  std::size_t migrate(const std::string& key, const scion::Path& path);

  /// Force-closes every connection pooled for `key` (identity rotation: the
  /// old path assignments must not survive into the next brokering). Idle
  /// connections are pruned immediately; in-flight fetches fail through
  /// normal transport-error handling and parked waiters re-dispatch onto
  /// fresh dials. Returns the number of connections shut down.
  std::size_t retire(const std::string& key);

  /// First live connection pooled for `key` (nullptr when none). The caller
  /// knows what it pooled; downcast via `primary_as<T>`.
  [[nodiscard]] PooledConnection* primary(const std::string& key);
  template <typename T>
  [[nodiscard]] T* primary_as(const std::string& key) {
    return dynamic_cast<T*>(primary(key));
  }

  void for_each_connection(
      const std::function<void(const std::string& key, PooledConnection& conn)>& fn);

  struct OriginSnapshot {
    std::string key;
    std::size_t conns = 0;
    std::size_t outstanding = 0;  // sum over connections
    std::size_t queued = 0;
    /// Adaptive concurrency cap currently in force (0 = no limiter).
    std::size_t effective_limit = 0;
    std::uint64_t evictions = 0;  // idle-TTL evictions on this origin
    std::size_t consecutive_failures = 0;
    bool cooling_down = false;
    /// Per-connection outstanding counts (dispatch-balance introspection).
    std::vector<std::size_t> per_conn_outstanding;
  };
  [[nodiscard]] std::vector<OriginSnapshot> snapshot() const;
  /// Snapshot rendered as a JSON array (served by `GET /skip/pool`).
  [[nodiscard]] std::string snapshot_json() const;

  [[nodiscard]] std::size_t origin_count() const { return origins_.size(); }
  [[nodiscard]] const OriginPoolConfig& config() const { return config_; }

 private:
  struct Entry {
    std::unique_ptr<PooledConnection> conn;
    std::size_t outstanding = 0;
    /// Bumped on every dispatch; an idle-eviction event only fires if the
    /// connection is still on the epoch it went idle with.
    std::uint64_t idle_epoch = 0;
  };
  struct Waiter {
    std::uint64_t id = 0;
    std::uint8_t priority = 1;
    HttpRequest request;
    HttpClientStream::ResponseFn on_response;
    ConnFactory factory;
    TimePoint enqueued_at;
    std::optional<TimePoint> deadline;
    sim::EventId timeout_event = sim::kInvalidEventId;
  };
  struct Origin {
    std::vector<Entry> conns;
    std::deque<Waiter> waiting;
    std::size_t consecutive_failures = 0;
    TimePoint cooldown_until = TimePoint::origin();
    std::uint64_t evictions = 0;
  };

  void dispatch(const std::string& key);
  void fail_waiter(Waiter waiter, std::string_view error);
  [[nodiscard]] bool cooling_down(const Origin& origin) const;
  /// Best queued waiter by (priority, arrival): lowest class first, FIFO
  /// inside a class. Index into `waiting`, or kNone when empty.
  [[nodiscard]] static std::size_t best_waiter(const Origin& origin);
  /// Removes `waiting[index]` with queue bookkeeping (gauge + timer).
  Waiter take_waiter(Origin& origin, std::size_t index);
  /// Adaptive cap in force for this origin (SIZE_MAX without a limiter).
  [[nodiscard]] std::size_t effective_limit(const std::string& key) const;
  void on_fetch_done(const std::string& key, PooledConnection* conn, bool ok);
  void arm_idle_eviction(const std::string& key, Entry& entry);
  void prune_closed(Origin& origin);
  /// Destroys `conn` from the event loop, never synchronously: a completion
  /// callback on it may still be on the call stack.
  void release_deferred(std::unique_ptr<PooledConnection> conn);
  void set_conn_gauge();

  sim::Simulator& sim_;
  obs::MetricsRegistry& metrics_;
  OriginPoolConfig config_;
  std::unordered_map<std::string, Origin> origins_;
  std::uint64_t next_waiter_id_ = 1;
  std::size_t total_conns_ = 0;
  std::size_t total_queued_ = 0;
  // Cached instruments (registry references are stable).
  obs::Counter& hits_;
  obs::Counter& misses_;
  obs::Counter& evictions_;
  obs::Counter& pruned_;
  obs::Counter& queue_timeouts_;
  obs::Counter& fastfails_;
  obs::Counter& cooldowns_;
  obs::Counter& sheds_;
  obs::Counter& expired_dispatches_;
  obs::Counter& migrations_;
  obs::Gauge& conns_gauge_;
  obs::Gauge& queue_depth_;
  obs::Histogram& queue_wait_;
  /// Guards simulator events (queue timeouts, idle eviction) and in-flight
  /// fetch callbacks against pool teardown.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

/// LegacyHttpConnection (HTTP over TCP-lite/IP) pool adapter.
class LegacyPooledConnection final : public OriginPool::PooledConnection {
 public:
  LegacyPooledConnection(net::Host& host, net::Endpoint server,
                         transport::TransportConfig config = default_tcp_config())
      : conn_(host, server, std::move(config)) {}

  void fetch(const HttpRequest& request, HttpClientStream::ResponseFn on_response) override {
    conn_.fetch(request, std::move(on_response));
  }
  [[nodiscard]] transport::Connection& transport() override { return conn_.transport(); }
  [[nodiscard]] bool usable() override {
    return PooledConnection::usable() && conn_.usable();
  }
  void shutdown() override { conn_.close(); }

 private:
  LegacyHttpConnection conn_;
};

/// ScionHttpConnection (HTTP over QUIC-lite/SCION) pool adapter. Carries the
/// origin metadata the proxy needs back out of the pool: the path the
/// connection currently uses and the host/port as parsed at insert time (the
/// SCMP reroute path and the policy router consume these instead of
/// re-splitting the pool key, which breaks for hosts containing a colon).
class ScionPooledConnection : public OriginPool::PooledConnection {
 public:
  ScionPooledConnection(scion::ScionStack& stack, scion::ScionEndpoint server,
                        scion::Path path, std::string host, std::uint16_t port,
                        transport::TransportConfig config = default_quic_config())
      : conn_(stack, server, path.dataplane(), std::move(config)),
        path_(std::move(path)),
        addr_(server.addr),
        host_(std::move(host)),
        port_(port) {}

  void fetch(const HttpRequest& request, HttpClientStream::ResponseFn on_response) override {
    conn_.fetch(request, std::move(on_response));
  }
  [[nodiscard]] transport::Connection& transport() override { return conn_.transport(); }
  void shutdown() override { conn_.close(); }

  /// Migrates the connection onto `path` (unconditionally; OriginPool::migrate
  /// performs the fingerprint comparison).
  void set_path(scion::Path path) {
    conn_.set_path(path.dataplane());
    path_ = std::move(path);
  }
  [[nodiscard]] const scion::Path& path() const { return path_; }
  [[nodiscard]] const scion::ScionAddr& addr() const { return addr_; }
  [[nodiscard]] const std::string& host() const { return host_; }
  [[nodiscard]] std::uint16_t port() const { return port_; }

 private:
  ScionHttpConnection conn_;
  scion::Path path_;
  scion::ScionAddr addr_;
  std::string host_;
  std::uint16_t port_;
};

}  // namespace pan::http
