#include "http/url.hpp"

#include "util/strings.hpp"

namespace pan::http {

std::string Url::authority() const {
  if (port == 80) return host;
  return host + ":" + std::to_string(port);
}

std::string Url::origin() const { return scheme + "://" + authority(); }

std::string Url::to_string() const { return origin() + path; }

Result<Url> parse_url(std::string_view input) {
  Url url;
  std::string_view rest = input;
  const auto scheme_end = rest.find("://");
  if (scheme_end != std::string_view::npos) {
    url.scheme = std::string(rest.substr(0, scheme_end));
    rest = rest.substr(scheme_end + 3);
  }
  if (url.scheme != "http") {
    return Err("unsupported scheme: '" + url.scheme + "'");
  }
  const auto path_start = rest.find('/');
  std::string_view authority = rest;
  if (path_start != std::string_view::npos) {
    authority = rest.substr(0, path_start);
    url.path = std::string(rest.substr(path_start));
  }
  if (authority.empty()) return Err("URL missing host: '" + std::string(input) + "'");
  const auto colon = authority.find(':');
  if (colon != std::string_view::npos) {
    url.host = std::string(authority.substr(0, colon));
    const auto port = strings::parse_u64(authority.substr(colon + 1));
    if (!port.ok() || port.value() == 0 || port.value() > 65535) {
      return Err("bad port in URL: '" + std::string(input) + "'");
    }
    url.port = static_cast<std::uint16_t>(port.value());
  } else {
    url.host = std::string(authority);
  }
  if (url.host.empty()) return Err("URL missing host: '" + std::string(input) + "'");
  return url;
}

SplitTarget split_target(std::string_view target) {
  const auto q = target.find('?');
  if (q == std::string_view::npos) return {target, {}};
  return {target.substr(0, q), target.substr(q + 1)};
}

std::string_view query_param(std::string_view query, std::string_view key) {
  for (const std::string_view pair : strings::split(query, '&')) {
    const auto eq = pair.find('=');
    if (eq == std::string_view::npos) {
      if (pair == key) return std::string_view{"", 0};
      continue;
    }
    if (pair.substr(0, eq) == key) return pair.substr(eq + 1);
  }
  return {};
}

}  // namespace pan::http
