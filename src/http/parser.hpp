// Incremental HTTP/1.1 parser.
//
// Feed raw bytes as they arrive off a stream; complete messages pop out via
// callbacks. One parser instance handles a sequence of messages on a
// keep-alive stream. Bodies are Content-Length delimited; a response with no
// Content-Length is taken to end at stream FIN (signalled via finish()).
#pragma once

#include <functional>
#include <string>

#include "http/message.hpp"
#include "util/result.hpp"

namespace pan::http {

enum class ParserMode { kRequest, kResponse };

class HttpParser {
 public:
  explicit HttpParser(ParserMode mode);

  /// Called for each complete request (request mode).
  std::function<void(HttpRequest)> on_request;
  /// Called for each complete response (response mode).
  std::function<void(HttpResponse)> on_response;
  /// Called on an unrecoverable parse error; the stream should be dropped.
  std::function<void(const std::string&)> on_error;

  void feed(std::span<const std::uint8_t> data);
  /// Signals end of stream (delimits a response without Content-Length).
  void finish();

  [[nodiscard]] bool failed() const { return failed_; }
  [[nodiscard]] std::size_t messages_parsed() const { return parsed_; }

 private:
  enum class State { kHead, kBody };

  void process();
  bool parse_head(std::string_view head);
  void emit();
  void fail(const std::string& reason);

  ParserMode mode_;
  State state_ = State::kHead;
  std::string buffer_;
  HttpRequest request_;
  HttpResponse response_;
  std::size_t body_expected_ = 0;
  bool body_until_eof_ = false;
  bool failed_ = false;
  std::size_t parsed_ = 0;
};

}  // namespace pan::http
