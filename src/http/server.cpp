#include "http/server.hpp"

namespace pan::http {

struct HttpServer::StreamContext : std::enable_shared_from_this<HttpServer::StreamContext> {
  explicit StreamContext(transport::Bytestream& stream)
      : stream(&stream), parser(ParserMode::kRequest) {}

  transport::Bytestream* stream;
  HttpParser parser;
  // Response slots, in request order; filled as handlers complete.
  std::vector<std::optional<HttpResponse>> slots;
  std::size_t next_to_send = 0;
  bool client_finished = false;
  bool finished_our_side = false;

  void flush() {
    while (next_to_send < slots.size() && slots[next_to_send].has_value()) {
      const Bytes wire = slots[next_to_send]->serialize();
      const std::size_t cut = slots[next_to_send]->truncate_wire_at;
      if (cut < wire.size()) {
        // Injected origin reset: emit a prefix of the wire bytes and slam
        // the stream shut; everything queued behind this response dies with
        // the connection.
        stream->write(std::span<const std::uint8_t>(wire.data(), cut));
        slots[next_to_send].reset();
        ++next_to_send;
        finished_our_side = true;
        stream->finish();
        return;
      }
      stream->write(wire);
      slots[next_to_send].reset();
      ++next_to_send;
    }
    if (client_finished && next_to_send == slots.size() && !finished_our_side) {
      finished_our_side = true;
      stream->finish();
    }
  }
};

HttpServer::HttpServer(Handler handler) : handler_(std::move(handler)) {}

void HttpServer::serve(transport::Bytestream& stream) {
  auto ctx = std::make_shared<StreamContext>(stream);

  // Ownership: the stream's on_data closure (below) holds the only
  // persistent shared_ptr. The parser lives inside the context, so its
  // callbacks may capture a raw pointer — capturing the shared_ptr there
  // would create a ctx -> parser -> closure -> ctx cycle and leak.
  StreamContext* raw = ctx.get();
  raw->parser.on_request = [this, raw](HttpRequest request) {
    ++requests_;
    const std::size_t slot = raw->slots.size();
    raw->slots.emplace_back();
    // The Respond closure may outlive the exchange (async handlers); it
    // keeps the context alive via the weak self reference.
    handler_(request, [weak = raw->weak_from_this(), slot](HttpResponse response) {
      const auto ctx_locked = weak.lock();
      if (ctx_locked == nullptr) return;
      if (slot >= ctx_locked->slots.size() || ctx_locked->slots[slot].has_value()) return;
      if (ctx_locked->stream->broken()) return;
      ctx_locked->slots[slot] = std::move(response);
      ctx_locked->flush();
    });
  };
  raw->parser.on_error = [raw](const std::string& /*reason*/) {
    if (!raw->stream->broken() && !raw->finished_our_side) {
      const Bytes wire = make_text_response(400, "bad request").serialize();
      raw->stream->write(wire);
      raw->stream->finish();
      raw->finished_our_side = true;
    }
  };

  stream.set_on_data([ctx](std::span<const std::uint8_t> data, bool fin) {
    ctx->parser.feed(data);
    if (fin) {
      ctx->client_finished = true;
      ctx->flush();
    }
  });
}

}  // namespace pan::http
