// The Strict-SCION response header (Section 4.2 of the paper).
//
// Modeled on HTTP Strict Transport Security: a server that is fully
// reachable over SCION (including its third-party resources) sends
// "Strict-SCION: max-age=<seconds>"; the browser then enforces strict mode
// for that host until the expiry. The header also doubles as a SCION
// availability advertisement (Section 4.3), like Onion-Location for Tor.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "http/message.hpp"
#include "util/types.hpp"

namespace pan::http {

inline constexpr std::string_view kStrictScionHeader = "Strict-SCION";

/// Upper bound applied to parsed max-age values (two years, as is customary
/// for HSTS deployments). Without the clamp a huge advertised max-age would
/// overflow the nanosecond Duration and wrap negative, expiring the pin in
/// the past and silently disabling Strict-SCION for the origin.
inline constexpr std::int64_t kStrictScionMaxAgeSeconds = 2LL * 365 * 24 * 3600;

struct StrictScionDirective {
  /// Lifetime of the strict-mode pin.
  Duration max_age = seconds(3600);

  [[nodiscard]] std::string serialize() const;
};

/// Parses "max-age=<seconds>" (whitespace-tolerant). Returns nullopt on a
/// malformed value — callers must ignore bad headers, not fail the response.
[[nodiscard]] std::optional<StrictScionDirective> parse_strict_scion(std::string_view value);

/// Reads the directive off a response, if present and well-formed.
[[nodiscard]] std::optional<StrictScionDirective> strict_scion_of(const HttpResponse& response);

/// Stamps the directive onto a response.
void set_strict_scion(HttpResponse& response, const StrictScionDirective& directive);

}  // namespace pan::http
