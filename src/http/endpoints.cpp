#include "http/endpoints.hpp"

#include <algorithm>

namespace pan::http {

transport::TransportConfig default_tcp_config() {
  transport::TransportConfig config;
  config.kind = transport::TransportKind::kTcpLite;
  config.alpn = "http/1.1";
  return config;
}

transport::TransportConfig default_quic_config() {
  transport::TransportConfig config;
  config.kind = transport::TransportKind::kQuicLite;
  config.alpn = "h3-lite";
  // Probe while awaiting responses so path failures surface even on
  // receive-only connections (see TransportConfig::keep_alive).
  config.keep_alive = milliseconds(250);
  return config;
}

HttpResponse make_retry_after_response(int status, Duration retry_after,
                                       const std::string& message) {
  HttpResponse response = make_text_response(status, message);
  response.headers.set("X-Skip-Error", message);
  const std::int64_t millis = static_cast<std::int64_t>(retry_after.millis());
  const std::int64_t secs = std::max<std::int64_t>(1, (millis + 999) / 1000);
  response.headers.set("Retry-After", std::to_string(secs));
  return response;
}

LegacyHttpServer::LegacyHttpServer(net::Host& host, std::uint16_t port,
                                   HttpServer::Handler handler,
                                   transport::TransportConfig config)
    : server_(std::move(handler)),
      transport_(host, port, std::move(config), [this](transport::Connection& conn) {
        conn.set_on_stream([this](transport::Stream& stream) { server_.serve(stream); });
      }) {}

ScionHttpServer::ScionHttpServer(scion::ScionStack& stack, std::uint16_t port,
                                 HttpServer::Handler handler,
                                 transport::TransportConfig config)
    : server_(std::move(handler)),
      transport_(stack, port, std::move(config), [this](transport::Connection& conn) {
        conn.set_on_stream([this](transport::Stream& stream) { server_.serve(stream); });
      }) {}

LegacyHttpConnection::LegacyHttpConnection(net::Host& host, net::Endpoint server,
                                           transport::TransportConfig config)
    : client_(host, server, std::move(config)) {
  stream_ = &client_.connection().open_stream();
  http_ = std::make_unique<HttpClientStream>(*stream_, /*close_after_request=*/false);
  client_.connection().start();
}

void LegacyHttpConnection::fetch(const HttpRequest& request,
                                 HttpClientStream::ResponseFn on_response) {
  http_->fetch(request, std::move(on_response));
}

void LegacyHttpConnection::close() { client_.connection().close("done"); }

ScionHttpConnection::ScionHttpConnection(scion::ScionStack& stack,
                                         scion::ScionEndpoint server,
                                         scion::DataplanePath path,
                                         transport::TransportConfig config)
    : client_(stack, server, std::move(path), std::move(config)) {
  client_.connection().start();
}

void ScionHttpConnection::fetch(const HttpRequest& request,
                                HttpClientStream::ResponseFn on_response) {
  transport::Stream& stream = client_.connection().open_stream();
  auto exchange = std::make_unique<HttpClientStream>(stream, /*close_after_request=*/true);
  HttpClientStream* raw = exchange.get();
  exchanges_[stream.id()] = std::move(exchange);
  const std::uint32_t id = stream.id();
  // Destruction is deferred through the event loop: the completion callback
  // runs inside the HttpClientStream's own parser callback, so erasing the
  // exchange synchronously (even from a later fetch() on this connection,
  // which can be invoked re-entrantly from `cb`) would free an object that
  // is still on the call stack.
  raw->fetch(request, [this, id, alive = alive_,
                       cb = std::move(on_response)](Result<HttpResponse> result) {
    cb(std::move(result));
    client_.connection().simulator().schedule_after(Duration::zero(), [this, id, alive] {
      if (*alive) exchanges_.erase(id);
    });
  });
}

ScionHttpConnection::~ScionHttpConnection() { *alive_ = false; }

void ScionHttpConnection::close() { client_.connection().close("done"); }

}  // namespace pan::http
