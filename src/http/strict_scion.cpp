#include "http/strict_scion.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace pan::http {

std::string StrictScionDirective::serialize() const {
  return "max-age=" + std::to_string(static_cast<long long>(max_age.seconds()));
}

std::optional<StrictScionDirective> parse_strict_scion(std::string_view value) {
  for (const std::string_view part : strings::split_trimmed(value, ';')) {
    const auto eq = part.find('=');
    if (eq == std::string_view::npos) continue;
    const std::string_view key = strings::trim(part.substr(0, eq));
    if (!strings::iequals(key, "max-age")) continue;
    const auto secs = strings::parse_u64(strings::trim(part.substr(eq + 1)));
    if (!secs.ok()) return std::nullopt;
    // Clamp before the signed conversion: a value above INT64_MAX (or merely
    // large enough to overflow when scaled to nanoseconds) must not wrap into
    // a negative duration that expires the directive in the past.
    const std::uint64_t clamped =
        std::min(secs.value(), static_cast<std::uint64_t>(kStrictScionMaxAgeSeconds));
    return StrictScionDirective{seconds(static_cast<std::int64_t>(clamped))};
  }
  return std::nullopt;
}

std::optional<StrictScionDirective> strict_scion_of(const HttpResponse& response) {
  const auto value = response.headers.get(kStrictScionHeader);
  if (!value.has_value()) return std::nullopt;
  return parse_strict_scion(*value);
}

void set_strict_scion(HttpResponse& response, const StrictScionDirective& directive) {
  response.headers.set(std::string(kStrictScionHeader), directive.serialize());
}

}  // namespace pan::http
