// HTTP/1.1 message model: requests, responses, and case-insensitive headers.
//
// Bodies are always delimited by Content-Length (the serializer sets it);
// chunked transfer encoding is not implemented — every component in this
// repository knows body sizes up front. Documented in DESIGN.md.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/bytes.hpp"

namespace pan::http {

/// Ordered, case-insensitive multimap of header fields.
class Headers {
 public:
  void set(std::string name, std::string value);   // replaces existing
  void add(std::string name, std::string value);   // appends
  void remove(std::string_view name);
  [[nodiscard]] std::optional<std::string> get(std::string_view name) const;
  [[nodiscard]] bool contains(std::string_view name) const;
  [[nodiscard]] std::vector<std::string> get_all(std::string_view name) const;

  struct Field {
    std::string name;
    std::string value;
  };
  [[nodiscard]] const std::vector<Field>& fields() const { return fields_; }
  [[nodiscard]] std::size_t size() const { return fields_.size(); }

 private:
  std::vector<Field> fields_;
};

struct HttpRequest {
  std::string method = "GET";
  std::string target = "/";
  std::string version = "HTTP/1.1";
  Headers headers;
  Bytes body;

  [[nodiscard]] Bytes serialize() const;
  [[nodiscard]] std::string host() const;  // Host header (empty if absent)
};

struct HttpResponse {
  int status = 200;
  std::string reason = "OK";
  std::string version = "HTTP/1.1";
  Headers headers;
  Bytes body;

  /// Fault injection (simulation-only, never serialized): when below the
  /// serialized size, the server writes only this many bytes and then closes
  /// the stream — an origin resetting mid-response. Clients observe a parse
  /// error or a stream closed with responses outstanding.
  std::size_t truncate_wire_at = static_cast<std::size_t>(-1);

  [[nodiscard]] Bytes serialize() const;
  [[nodiscard]] bool ok() const { return status >= 200 && status < 300; }
};

[[nodiscard]] std::string status_reason(int status);

[[nodiscard]] HttpResponse make_response(int status, Bytes body = {},
                                         std::string content_type = "text/plain");
[[nodiscard]] HttpResponse make_text_response(int status, std::string_view text);

}  // namespace pan::http
