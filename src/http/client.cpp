#include "http/client.hpp"

namespace pan::http {

HttpClientStream::HttpClientStream(transport::Bytestream& stream, bool close_after_request)
    : stream_(stream), close_after_request_(close_after_request) {
  parser_.on_response = [this](HttpResponse response) {
    if (waiting_.empty()) return;  // unsolicited response; drop
    ResponseFn cb = std::move(waiting_.front());
    waiting_.pop_front();
    cb(Result<HttpResponse>(std::move(response)));
  };
  parser_.on_error = [this](const std::string& reason) {
    parse_failed_ = true;
    fail_all("parse error: " + reason);
  };
  stream_.set_on_data([this](std::span<const std::uint8_t> data, bool fin) {
    if (stream_done_) return;
    parser_.feed(data);
    if (fin) {
      stream_done_ = true;
      parser_.finish();
      if (!waiting_.empty()) fail_all("stream closed with responses outstanding");
    }
  });
}

HttpClientStream::~HttpClientStream() { stream_.set_on_data(nullptr); }

void HttpClientStream::fetch(const HttpRequest& request, ResponseFn on_response) {
  if (stream_done_ || stream_.broken()) {
    on_response(Err("stream is closed"));
    return;
  }
  waiting_.push_back(std::move(on_response));
  const Bytes wire = request.serialize();
  stream_.write(wire);
  if (close_after_request_) stream_.finish();
}

void HttpClientStream::fail_all(const std::string& reason) {
  while (!waiting_.empty()) {
    ResponseFn cb = std::move(waiting_.front());
    waiting_.pop_front();
    cb(Err(reason));
  }
}

}  // namespace pan::http
