#include "dns/dns.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace pan::dns {

void Zone::add_a(const std::string& domain, net::IpAddr addr) {
  records_[domain].a.push_back(addr);
}

void Zone::add_txt(const std::string& domain, std::string txt) {
  records_[domain].txt.push_back(std::move(txt));
}

void Zone::add_scion_txt(const std::string& domain, const scion::ScionAddr& addr) {
  add_txt(domain, "scion=" + addr.to_string());
}

void Zone::remove(const std::string& domain) { records_.erase(domain); }

const RecordSet* Zone::lookup(const std::string& domain) const {
  const auto it = records_.find(domain);
  return it == records_.end() ? nullptr : &it->second;
}

Resolver::Resolver(sim::Simulator& sim, const Zone& zone, ResolverConfig config)
    : sim_(sim), zone_(zone), config_(config) {}

void Resolver::resolve(const std::string& domain,
                       std::function<void(Result<RecordSet>)> callback) {
  const auto it = cache_.find(domain);
  if (it != cache_.end()) {
    const Duration age = sim_.now() - it->second.fetched_at;
    const Duration ttl =
        it->second.records.has_value() ? config_.cache_ttl : config_.negative_ttl;
    if (age < ttl) {
      ++hits_;
      if (it->second.records.has_value()) {
        callback(Result<RecordSet>(*it->second.records));
      } else {
        callback(Err("NXDOMAIN: " + domain));
      }
      return;
    }
  }
  ++misses_;
  if (fault_hook_) {
    if (const auto fault = fault_hook_(domain); fault.has_value()) {
      // A brownout is a transient upstream failure, not an answer: nothing
      // is cached, so the very next lookup after the fault lifts succeeds.
      const Duration wait = fault->servfail
                                ? std::max(config_.lookup_latency, fault->delay)
                                : std::max(config_.query_timeout, fault->delay);
      const bool servfail = fault->servfail;
      sim_.schedule_after(wait, [this, domain, servfail, cb = std::move(callback)] {
        ++fault_errors_;
        cb(Err((servfail ? "SERVFAIL: " : "DNS timeout: ") + domain));
      });
      return;
    }
  }
  sim_.schedule_after(config_.lookup_latency, [this, domain, cb = std::move(callback)] {
    const RecordSet* records = zone_.lookup(domain);
    CacheEntry entry;
    entry.fetched_at = sim_.now();
    if (records != nullptr) {
      entry.records = *records;
      cache_[domain] = entry;
      cb(Result<RecordSet>(*records));
    } else {
      cache_[domain] = entry;
      cb(Err("NXDOMAIN: " + domain));
    }
  });
}

Result<RecordSet> Resolver::resolve_now(const std::string& domain) const {
  const RecordSet* records = zone_.lookup(domain);
  if (records == nullptr) return Err("NXDOMAIN: " + domain);
  return *records;
}

void Resolver::flush_cache() { cache_.clear(); }

std::optional<scion::ScionAddr> scion_addr_from_txt(const RecordSet& records) {
  for (const std::string& txt : records.txt) {
    if (!strings::starts_with(txt, "scion=")) continue;
    const auto parsed = scion::ScionAddr::parse(std::string_view(txt).substr(6));
    if (parsed.ok()) return parsed.value();
  }
  return std::nullopt;
}

}  // namespace pan::dns
