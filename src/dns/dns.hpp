// Minimal DNS: a global zone store plus per-client resolvers with lookup
// latency and caching.
//
// SCION availability is advertised exactly as in the paper's Section 4.3:
// a TXT record of the form "scion=<isd>-<as>,<ip>" on the domain. The
// resolver exposes a helper that extracts it.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/addr.hpp"
#include "scion/addr.hpp"
#include "sim/simulator.hpp"
#include "util/result.hpp"

namespace pan::dns {

struct RecordSet {
  std::vector<net::IpAddr> a;
  std::vector<std::string> txt;

  [[nodiscard]] bool empty() const { return a.empty() && txt.empty(); }
};

/// The authoritative store for all simulated domains.
class Zone {
 public:
  void add_a(const std::string& domain, net::IpAddr addr);
  void add_txt(const std::string& domain, std::string txt);
  /// Convenience: adds the paper's SCION TXT record for `domain`.
  void add_scion_txt(const std::string& domain, const scion::ScionAddr& addr);
  void remove(const std::string& domain);

  [[nodiscard]] const RecordSet* lookup(const std::string& domain) const;
  [[nodiscard]] std::size_t size() const { return records_.size(); }

 private:
  std::unordered_map<std::string, RecordSet> records_;
};

struct ResolverConfig {
  /// Round trip to the (recursive) resolver on a cache miss.
  Duration lookup_latency = milliseconds(5);
  Duration cache_ttl = seconds(300);
  /// Cache negative answers too (NXDOMAIN), for this long.
  Duration negative_ttl = seconds(30);
  /// Upper bound on a lookup before it surfaces as "DNS timeout" (used when
  /// a brownout fault swallows the query instead of answering SERVFAIL).
  Duration query_timeout = seconds(5);
};

/// An injected resolver failure (brownout): the lookup either times out or
/// answers SERVFAIL after `delay`. Brownout errors are transient server
/// failures, NOT negative answers — they are never cached, so recovery is
/// immediate once the fault lifts.
struct ResolverFault {
  bool servfail = false;  // false = the query times out instead
  Duration delay = Duration::zero();
};

class Resolver {
 public:
  Resolver(sim::Simulator& sim, const Zone& zone, ResolverConfig config = {});

  /// Asynchronous lookup; an NXDOMAIN surfaces as an error Result.
  void resolve(const std::string& domain,
               std::function<void(Result<RecordSet>)> callback);
  [[nodiscard]] Result<RecordSet> resolve_now(const std::string& domain) const;

  /// Fault injection: consulted on every cache miss; a returned fault fails
  /// the lookup (fresh cache entries keep being served). nullptr detaches.
  using FaultHook = std::function<std::optional<ResolverFault>(const std::string& domain)>;
  void set_fault_hook(FaultHook hook) { fault_hook_ = std::move(hook); }
  /// Lookups failed by an injected fault.
  [[nodiscard]] std::uint64_t fault_errors() const { return fault_errors_; }

  [[nodiscard]] std::uint64_t cache_hits() const { return hits_; }
  [[nodiscard]] std::uint64_t cache_misses() const { return misses_; }
  void flush_cache();

 private:
  struct CacheEntry {
    std::optional<RecordSet> records;  // nullopt = negative entry
    TimePoint fetched_at;
  };

  sim::Simulator& sim_;
  const Zone& zone_;
  ResolverConfig config_;
  FaultHook fault_hook_;
  std::unordered_map<std::string, CacheEntry> cache_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t fault_errors_ = 0;
};

/// Extracts the SCION address advertised in TXT records ("scion=..."), if any.
[[nodiscard]] std::optional<scion::ScionAddr> scion_addr_from_txt(const RecordSet& records);

}  // namespace pan::dns
