// The unit of transmission in the simulated network.
//
// A Packet carries either a legacy UDP datagram (proto kUdp: src/dst address
// and ports are authoritative, payload is the transport frame) or a SCION
// packet (proto kScion: the payload is the fully serialized SCION header +
// payload and border routers parse it hop by hop; the legacy fields are
// ignored in transit and only used for intra-AS delivery bookkeeping).
#pragma once

#include <cstdint>
#include <string>

#include "net/addr.hpp"
#include "util/bytes.hpp"

namespace pan::net {

enum class Protocol : std::uint8_t { kUdp, kScion };

[[nodiscard]] const char* to_string(Protocol p);

struct Packet {
  Protocol proto = Protocol::kUdp;
  IpAddr src;
  IpAddr dst;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  Bytes payload;
  /// Unique id for tracing; assigned by the sender.
  std::uint64_t id = 0;
  /// Priority (reserved-bandwidth) traffic: exempt from best-effort queue
  /// admission (never tail-dropped), set by border routers for packets
  /// covered by an admitted reservation. Aggregate priority load is bounded
  /// by the reservation admission control, not by the queue.
  bool priority = false;

  /// Bytes on the wire: payload plus link/IP/UDP framing overhead. SCION
  /// packets carry their (variable-size) header inside `payload`, so the
  /// same fixed framing overhead applies.
  [[nodiscard]] std::size_t wire_size() const;

  [[nodiscard]] std::string describe() const;
};

/// Ethernet + IP + UDP framing overhead applied to every simulated packet.
inline constexpr std::size_t kFramingOverhead = 42;

}  // namespace pan::net
