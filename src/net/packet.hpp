// The unit of transmission in the simulated network.
//
// A Packet carries either a legacy UDP datagram (proto kUdp: src/dst address
// and ports are authoritative, payload is the transport frame) or a SCION
// packet (proto kScion: the payload is the fully serialized SCION header +
// payload and border routers advance it hop by hop; the legacy fields are
// ignored in transit and only used for intra-AS delivery bookkeeping).
//
// Payload bytes live in a PacketView: a window into shared, refcounted
// storage (util::Buffer). A packet is serialized once at the transport edge
// — into a buffer with headroom reserved for the SCION header — and the same
// bytes then travel through sockets, border routers, and link queues by
// moving the view, never by copying. Sub-views (payload delivery, peeks)
// share the storage with a refcount bump.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <string>

#include "net/addr.hpp"
#include "util/buffer.hpp"
#include "util/bytes.hpp"
#include "util/types.hpp"

namespace pan::net {

/// A [offset, offset+length) window into a refcounted util::Buffer. The
/// bytes before `offset` are headroom: space reserved at allocation time so
/// lower layers can prepend their headers in place (skbuff-style) instead of
/// reserializing the packet.
class PacketView {
 public:
  PacketView() = default;
  /// Adopts a byte vector (no copy, no headroom). Implicit on purpose: the
  /// edge layers that still build Bytes hand them straight to the view.
  PacketView(Bytes bytes)  // NOLINT(google-explicit-constructor)
      : len_(bytes.size()), buf_(util::Buffer::adopt(std::move(bytes))) {}

  /// Allocates storage with `headroom` bytes reserved in front of a
  /// writable `length`-byte data region.
  [[nodiscard]] static PacketView with_headroom(std::size_t headroom, std::size_t length) {
    PacketView v;
    v.buf_ = util::Buffer(headroom + length);
    v.off_ = headroom;
    v.len_ = length;
    return v;
  }

  [[nodiscard]] std::span<const std::uint8_t> span() const {
    return {buf_.data() + off_, len_};
  }
  [[nodiscard]] std::size_t size() const { return len_; }
  [[nodiscard]] bool empty() const { return len_ == 0; }
  [[nodiscard]] std::size_t headroom() const { return off_; }
  [[nodiscard]] std::uint8_t operator[](std::size_t i) const { return buf_.data()[off_ + i]; }

  /// Writable window over the data region; copies the storage first when it
  /// is shared (copy-on-write), so concurrent viewers are never mutated.
  [[nodiscard]] std::span<std::uint8_t> mutable_span() {
    return {buf_.mutable_data() + off_, len_};
  }

  /// Shrinks the view to its first `new_len` bytes (after serializing into
  /// an over-allocated region).
  void truncate(std::size_t new_len) {
    if (new_len < len_) len_ = new_len;
  }

  /// Grows the view `n` bytes into the headroom and returns a writable span
  /// over the newly exposed front (the prepended header region).
  [[nodiscard]] std::span<std::uint8_t> prepend(std::size_t n) {
    assert(off_ >= n);
    off_ -= n;
    len_ += n;
    return {buf_.mutable_data() + off_, n};
  }

  /// A sub-window sharing the same storage (refcount bump, no copy).
  [[nodiscard]] PacketView subview(std::size_t offset, std::size_t length) const {
    assert(offset + length <= len_);
    PacketView v;
    v.buf_ = buf_;
    v.off_ = off_ + offset;
    v.len_ = length;
    return v;
  }
  [[nodiscard]] PacketView subview(std::size_t offset) const {
    return subview(offset, len_ - offset);
  }

  /// Materializes an owning copy (edge consumers that outlive the packet).
  [[nodiscard]] Bytes to_bytes() const {
    const auto s = span();
    return Bytes(s.begin(), s.end());
  }

  [[nodiscard]] bool operator==(const PacketView& other) const {
    const auto a = span();
    const auto b = other.span();
    return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
  }

 private:
  std::size_t off_ = 0;
  std::size_t len_ = 0;
  util::Buffer buf_;
};

enum class Protocol : std::uint8_t { kUdp, kScion };

[[nodiscard]] const char* to_string(Protocol p);

struct Packet {
  Protocol proto = Protocol::kUdp;
  IpAddr src;
  IpAddr dst;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  PacketView payload;
  /// Unique id for tracing; assigned by the sender.
  std::uint64_t id = 0;
  /// Stamped by Network::send on each hop; a border router's forward-latency
  /// histogram reads it to measure queueing + propagation + processing of
  /// the hop it just completed.
  TimePoint sent_at;
  /// Priority (reserved-bandwidth) traffic: exempt from best-effort queue
  /// admission (never tail-dropped), set by border routers for packets
  /// covered by an admitted reservation. Aggregate priority load is bounded
  /// by the reservation admission control, not by the queue.
  bool priority = false;

  /// Bytes on the wire: payload plus link/IP/UDP framing overhead. SCION
  /// packets carry their (variable-size) header inside `payload`, so the
  /// same fixed framing overhead applies.
  [[nodiscard]] std::size_t wire_size() const;

  [[nodiscard]] std::string describe() const;
};

/// Ethernet + IP + UDP framing overhead applied to every simulated packet.
inline constexpr std::size_t kFramingOverhead = 42;

}  // namespace pan::net
