// The Network ties nodes and links to the simulator: it owns topology
// structure, moves packets between node handlers with realistic timing, and
// keeps per-link statistics.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "net/link.hpp"
#include "net/packet.hpp"
#include "net/trace.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace pan::net {

class Network {
 public:
  /// Handler invoked when a packet arrives at a node on interface `in_if`.
  using Handler = std::function<void(Packet&&, IfId in_if)>;

  Network(sim::Simulator& sim, std::uint64_t seed);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  [[nodiscard]] sim::Simulator& simulator() { return sim_; }

  NodeId add_node(std::string name);
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] const std::string& node_name(NodeId id) const;
  /// Node lookup by name (linear scan — topology-sized, setup/fault-injection
  /// use only). Returns kInvalidNodeId when absent.
  [[nodiscard]] NodeId find_node(std::string_view name) const;
  void set_handler(NodeId id, Handler handler);

  /// Creates a bidirectional link; returns the interface ids assigned on
  /// each side (interface ids are per-node and dense from 0).
  std::pair<IfId, IfId> connect(NodeId a, NodeId b, const LinkParams& params);

  /// Sends a packet out of `out_if` of `from`. The packet may be dropped
  /// (loss, queue overflow, MTU); delivery happens via the peer's handler
  /// after serialization + propagation delay.
  void send(NodeId from, IfId out_if, Packet packet);

  /// The node on the other end of (node, ifid).
  [[nodiscard]] NodeId neighbor(NodeId node, IfId ifid) const;
  /// The peer's interface id for the link at (node, ifid).
  [[nodiscard]] IfId neighbor_ifid(NodeId node, IfId ifid) const;
  [[nodiscard]] std::size_t interface_count(NodeId node) const;
  [[nodiscard]] const LinkParams& link_params(NodeId node, IfId ifid) const;
  /// Mutable link parameters (fault injection: loss/latency bursts). Changes
  /// affect packets sent after the call; in-flight deliveries keep the
  /// timing they were scheduled with.
  [[nodiscard]] LinkParams& mutable_link_params(NodeId node, IfId ifid);
  [[nodiscard]] const Link& link_at(NodeId node, IfId ifid) const;

  /// Takes a link administratively up/down (failure injection).
  void set_link_up(NodeId node, IfId ifid, bool up);
  [[nodiscard]] bool link_up(NodeId node, IfId ifid) const;

  /// Installs a packet tracer (nullptr detaches). See net/trace.hpp.
  void set_tracer(TraceFn tracer) { tracer_ = std::move(tracer); }

  /// Aggregate drop counters across all links (telemetry for tests/benches).
  struct DropTotals {
    std::uint64_t loss = 0;
    std::uint64_t queue = 0;
    std::uint64_t mtu = 0;
    std::uint64_t down = 0;
  };
  [[nodiscard]] DropTotals drop_totals() const;
  [[nodiscard]] std::uint64_t total_bytes_sent() const;

 private:
  struct NodeState {
    std::string name;
    Handler handler;
    // Interface i of this node maps to links_[interfaces[i]].
    std::vector<LinkId> interfaces;
  };

  [[nodiscard]] const NodeState& node(NodeId id) const;
  [[nodiscard]] NodeState& node(NodeId id);
  [[nodiscard]] LinkId link_id_at(NodeId node, IfId ifid) const;

  void trace(TraceEvent::Kind kind, TimePoint time, NodeId from, NodeId to,
             const Packet& packet) const;

  sim::Simulator& sim_;
  Rng rng_;
  std::vector<NodeState> nodes_;
  std::vector<Link> links_;
  TraceFn tracer_;
  std::uint64_t next_packet_id_ = 1;
};

}  // namespace pan::net
