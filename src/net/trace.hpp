// Packet tracing: a tcpdump-style observation hook on the simulated network.
//
// Install a tracer on the Network to receive one event per packet decision
// (transmission start, delivery, each drop cause). TraceRecorder is a
// ready-made sink that stores events and renders summaries — used by tests
// to assert on wire behaviour and by anyone debugging a scenario.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "net/packet.hpp"
#include "util/types.hpp"

namespace pan::net {

using NodeId = std::uint32_t;

struct TraceEvent {
  enum class Kind : std::uint8_t {
    kSend,       // packet left the sender's interface (after queueing)
    kDeliver,    // packet handed to the receiving node
    kDropLoss,
    kDropQueue,
    kDropMtu,
    kDropLinkDown,
  };

  TimePoint time;
  Kind kind = Kind::kSend;
  NodeId from = 0;
  NodeId to = 0;
  Protocol proto = Protocol::kUdp;
  std::size_t wire_bytes = 0;
  std::uint64_t packet_id = 0;
  /// The packet being traced. Valid only for the duration of the tracer
  /// callback — snapshot (`packet->payload.to_bytes()`) to retain. Used by
  /// the forwarding-equivalence tests to compare wire bytes hop by hop.
  const Packet* packet = nullptr;
};

[[nodiscard]] const char* to_string(TraceEvent::Kind k);

using TraceFn = std::function<void(const TraceEvent&)>;

/// Stores events; answers count/byte queries; renders text.
class TraceRecorder {
 public:
  /// The callback to hand to Network::set_tracer. The recorder must outlive
  /// the network (or be detached by set_tracer(nullptr)).
  [[nodiscard]] TraceFn callback();

  [[nodiscard]] const std::vector<TraceEvent>& events() const { return events_; }
  [[nodiscard]] std::size_t count(TraceEvent::Kind kind) const;
  [[nodiscard]] std::uint64_t bytes(TraceEvent::Kind kind) const;
  [[nodiscard]] std::size_t count_between(NodeId from, NodeId to) const;
  void clear() { events_.clear(); }

  /// "time kind from->to proto bytes id" lines, most recent `limit` events.
  [[nodiscard]] std::string render(std::size_t limit = 50) const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace pan::net
