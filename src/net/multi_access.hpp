// Multi-access clients: several upstream links ("accesses") into different
// first-hop ASes, Socket-Intents style (Tiesel et al.). Each access is a
// full host attachment — its own IP, its own access link, its own first-hop
// AS — and MultiAccessHost bundles them behind per-access health tracking
// plus intent-aware access picks:
//
//   - latency-critical (main documents) pins to the fastest usable access
//     by probe-RTT EWMA;
//   - bulk (images/scripts) stripes across all usable accesses with smooth
//     weighted round-robin, weights inverse to probe RTT (ratio-clamped so a
//     slow-but-fat access still pulls a meaningful share);
//   - background (detector probes, synthetic load) rides the spare — the
//     slowest usable access — keeping the fast one clear.
//
// Health is tracked like fleet replicas: an active probe loop (a
// self-addressed UDP datagram reflected off the AS router, so a dead or
// brown-out access link is observed, not signaled) drives the
// healthy/degraded/down state machine, and passive per-fetch feedback
// (record_result) catches brownouts the probe's small datagrams slip
// through. Consumers subscribe to health transitions — the SKIP proxy uses
// the down transition to fail in-flight fetches over to a surviving access
// inside their original deadline budget.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/host.hpp"

namespace pan::net {

/// What the page model implies about a fetch (Socket Intents): documents
/// are latency-critical, sub-resources are bulk, probes are background.
enum class FetchIntent : std::uint8_t { kLatencyCritical, kBulk, kBackground };

[[nodiscard]] const char* to_string(FetchIntent intent);
/// Parses "latency-critical" / "bulk" / "background"; nullopt on anything
/// else (callers keep their priority-derived default).
[[nodiscard]] std::optional<FetchIntent> parse_fetch_intent(std::string_view text);

/// Request header carrying an explicit intent from the browser; absent means
/// the proxy derives the intent from the X-Skip-Priority class.
inline constexpr std::string_view kIntentHeader = "X-Skip-Intent";

enum class AccessHealth : std::uint8_t { kHealthy, kDegraded, kDown };

[[nodiscard]] const char* to_string(AccessHealth health);

struct MultiAccessConfig {
  /// Active probe loop: one self-addressed datagram per access per interval.
  Duration probe_interval = milliseconds(100);
  /// A probe unanswered after this long counts as a miss (must exceed twice
  /// the slowest access-link latency). A reply that straggles in later still
  /// resets the miss streak: lateness (queueing) is not silence (outage).
  Duration probe_timeout = milliseconds(250);
  /// Consecutive probe misses before an access is declared down, and
  /// consecutive probe replies before a down access is declared back up.
  std::size_t down_after_misses = 3;
  std::size_t up_after_hits = 2;
  /// Probe-RTT EWMA smoothing factor.
  double ewma_alpha = 0.3;
  /// EWMA above best-observed * factor flags the access degraded (brownout);
  /// recovery below 0.8 * the degrade threshold (hysteresis) restores it.
  double degrade_rtt_factor = 4.0;
  /// Absolute floor on the brownout threshold: the EWMA must also exceed
  /// best + this excess. A sub-millisecond wired access would otherwise flap
  /// degraded on microseconds of queueing that no page load can feel.
  Duration degrade_min_excess = milliseconds(10);
  /// Consecutive passive fetch failures that flag a healthy access degraded
  /// even while its (small) probes still get through.
  std::size_t degrade_after_failures = 3;
  /// The latency-critical pick compares accesses by EWMA with degraded ones
  /// handicapped by this factor: a brownout access that is still several
  /// times faster than the healthy alternative keeps the documents (its
  /// queueing is self-inflicted load, not an outage), while a genuinely slow
  /// brownout loses the pin. Degraded accesses with an active failure streak
  /// are avoided outright — their fetches are failing, not just slow.
  double degraded_latency_penalty = 2.0;
  /// Bulk striping weights are inverse probe RTT, but clamped to at most
  /// this ratio between the heaviest and lightest access: striping is about
  /// aggregating bandwidth, and raw inverse RTT would starve a slow-but-fat
  /// access of its useful share.
  double max_weight_ratio = 4.0;
};

/// A bundle of named access attachments with health tracking and per-intent
/// access picks. Accesses are registered in priority order: the first one is
/// the "primary" and wins deterministic ties.
class MultiAccessHost {
 public:
  explicit MultiAccessHost(sim::Simulator& sim, MultiAccessConfig config = {});
  ~MultiAccessHost();

  MultiAccessHost(const MultiAccessHost&) = delete;
  MultiAccessHost& operator=(const MultiAccessHost&) = delete;

  /// Registers an access. `host` must outlive this bundle.
  void add_access(const std::string& name, Host& host);
  /// Starts the probe loop on every access that has none yet (idempotent).
  void start_probes();

  [[nodiscard]] std::size_t access_count() const { return accesses_.size(); }
  [[nodiscard]] std::vector<std::string> access_names() const;
  [[nodiscard]] bool has_access(const std::string& name) const;
  [[nodiscard]] Host* host(const std::string& name);
  [[nodiscard]] AccessHealth health(const std::string& name) const;
  /// Probe-RTT EWMA (zero until the first probe reply). Probe-driven only:
  /// fetch latencies measure the whole path to the origin, not the access.
  [[nodiscard]] Duration ewma_rtt(const std::string& name) const;

  /// Passive feedback from the fetch path: failures push a still-probing
  /// access toward degraded; successes clear the failure streak (the
  /// latency is informational — see ewma_rtt).
  void record_result(const std::string& name, bool ok, Duration latency);

  /// The access to use for `intent`, or "" when every access is down
  /// (callers fail closed). `avoid` soft-excludes one access — the one a
  /// previous attempt just failed on — unless it is the only one usable.
  [[nodiscard]] std::string pick(FetchIntent intent, const std::string& avoid = {});
  /// Fastest not-down access by effective EWMA — degraded accesses carry the
  /// configured latency handicap — i.e. the latency-critical pin, or "".
  [[nodiscard]] std::string fastest_usable() const;
  /// Normalized bulk striping weights over the usable set (ratio-clamped
  /// inverse EWMA), in registration order.
  [[nodiscard]] std::vector<std::pair<std::string, double>> striping_weights() const;

  /// Health-transition subscription: (name, previous, current). Fired
  /// synchronously from the probe/feedback paths.
  using HealthFn = std::function<void(const std::string&, AccessHealth, AccessHealth)>;
  [[nodiscard]] std::uint64_t subscribe(HealthFn fn);
  void unsubscribe(std::uint64_t id);

  /// Per-access state for the /skip/access endpoint.
  [[nodiscard]] std::string snapshot_json() const;

 private:
  struct Access {
    std::string name;
    Host* host = nullptr;
    std::unique_ptr<UdpSocket> probe_socket;
    bool probing = false;
    AccessHealth health = AccessHealth::kHealthy;
    Duration ewma = Duration::zero();
    Duration best = Duration::zero();  // floor of the EWMA seen so far
    std::size_t misses = 0;
    std::size_t hits = 0;
    /// Last probe reply (on-time or late); down requires a silent window
    /// since this, not just a miss streak. Initialized when probing starts.
    TimePoint last_reply{};
    std::size_t failure_streak = 0;
    std::uint64_t probes_sent = 0;
    std::uint64_t probes_acked = 0;
    std::uint64_t next_seq = 1;
    std::map<std::uint64_t, TimePoint> outstanding;  // seq -> sent at
    /// Probes that timed out but may still straggle in: a late reply counts
    /// as liveness (queueing delay is not an outage), bounded to 16 entries.
    std::map<std::uint64_t, TimePoint> late;
    double wrr_credit = 0.0;                         // smooth WRR accumulator
  };

  [[nodiscard]] Access* find(const std::string& name);
  [[nodiscard]] const Access* find(const std::string& name) const;
  /// Usable = not down; healthy accesses shadow degraded ones. Used for the
  /// bulk/background picks, where a degraded access should shed its load.
  [[nodiscard]] std::vector<std::size_t> usable_set() const;
  /// Every access that is not down, shadowing aside — the latency-critical
  /// candidate set, compared by effective_ewma().
  [[nodiscard]] std::vector<std::size_t> not_down_set() const;
  /// EWMA with the degraded handicap applied; infinite for a degraded access
  /// that is failing fetches (or has no measurement to trust).
  [[nodiscard]] Duration effective_ewma(const Access& access) const;
  [[nodiscard]] std::vector<std::pair<std::size_t, double>> weights_over(
      const std::vector<std::size_t>& usable) const;
  void set_health(Access& access, AccessHealth health);
  void fold_rtt(Access& access, Duration rtt);
  void send_probe(std::size_t index);
  void on_probe_reply(std::size_t index, std::uint64_t seq);
  void on_probe_timeout(std::size_t index, std::uint64_t seq);
  [[nodiscard]] std::string pick_bulk(const std::vector<std::size_t>& usable);

  sim::Simulator& sim_;
  MultiAccessConfig config_;
  std::vector<std::unique_ptr<Access>> accesses_;
  std::map<std::uint64_t, HealthFn> subscribers_;
  std::uint64_t next_subscriber_ = 1;
  /// Flipped in the destructor so scheduled probe ticks become no-ops.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace pan::net
