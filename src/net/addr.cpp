#include "net/addr.hpp"

#include "util/strings.hpp"

namespace pan::net {

std::string IpAddr::to_string() const {
  return strings::format("%u.%u.%u.%u", (value_ >> 24) & 0xff, (value_ >> 16) & 0xff,
                         (value_ >> 8) & 0xff, value_ & 0xff);
}

Result<IpAddr> IpAddr::parse(std::string_view s) {
  const auto parts = strings::split(s, '.');
  if (parts.size() != 4) return Err("IP address must have 4 octets: '" + std::string(s) + "'");
  std::uint32_t value = 0;
  for (const auto& part : parts) {
    const auto octet = strings::parse_u64(part);
    if (!octet.ok()) return Err("bad IP octet: " + octet.error());
    if (octet.value() > 255) return Err("IP octet out of range: '" + std::string(s) + "'");
    value = (value << 8) | static_cast<std::uint32_t>(octet.value());
  }
  return IpAddr{value};
}

std::string Endpoint::to_string() const {
  return addr.to_string() + ":" + std::to_string(port);
}

}  // namespace pan::net
