#include "net/packet.hpp"

#include "util/strings.hpp"

namespace pan::net {

const char* to_string(Protocol p) {
  switch (p) {
    case Protocol::kUdp: return "udp";
    case Protocol::kScion: return "scion";
  }
  return "?";
}

std::size_t Packet::wire_size() const { return payload.size() + kFramingOverhead; }

std::string Packet::describe() const {
  return strings::format("%s pkt#%llu %s:%u -> %s:%u (%zu B)", to_string(proto),
                         static_cast<unsigned long long>(id), src.to_string().c_str(), src_port,
                         dst.to_string().c_str(), dst_port, wire_size());
}

}  // namespace pan::net
