#include "net/trace.hpp"

#include "util/strings.hpp"

namespace pan::net {

const char* to_string(TraceEvent::Kind k) {
  switch (k) {
    case TraceEvent::Kind::kSend: return "send";
    case TraceEvent::Kind::kDeliver: return "deliver";
    case TraceEvent::Kind::kDropLoss: return "drop-loss";
    case TraceEvent::Kind::kDropQueue: return "drop-queue";
    case TraceEvent::Kind::kDropMtu: return "drop-mtu";
    case TraceEvent::Kind::kDropLinkDown: return "drop-down";
  }
  return "?";
}

TraceFn TraceRecorder::callback() {
  return [this](const TraceEvent& event) {
    events_.push_back(event);
    // The packet pointer is only valid during the callback; never retain it.
    events_.back().packet = nullptr;
  };
}

std::size_t TraceRecorder::count(TraceEvent::Kind kind) const {
  std::size_t n = 0;
  for (const TraceEvent& e : events_) {
    if (e.kind == kind) ++n;
  }
  return n;
}

std::uint64_t TraceRecorder::bytes(TraceEvent::Kind kind) const {
  std::uint64_t n = 0;
  for (const TraceEvent& e : events_) {
    if (e.kind == kind) n += e.wire_bytes;
  }
  return n;
}

std::size_t TraceRecorder::count_between(NodeId from, NodeId to) const {
  std::size_t n = 0;
  for (const TraceEvent& e : events_) {
    if (e.from == from && e.to == to) ++n;
  }
  return n;
}

std::string TraceRecorder::render(std::size_t limit) const {
  std::string out;
  const std::size_t start = events_.size() > limit ? events_.size() - limit : 0;
  for (std::size_t i = start; i < events_.size(); ++i) {
    const TraceEvent& e = events_[i];
    out += strings::format("%10.3fms %-10s %u->%u %-5s %5zu B pkt#%llu\n", e.time.millis(),
                           to_string(e.kind), e.from, e.to, net::to_string(e.proto),
                           e.wire_bytes, static_cast<unsigned long long>(e.packet_id));
  }
  return out;
}

}  // namespace pan::net
