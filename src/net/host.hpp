// End hosts: own an IP address, attach to their AS router through interface
// 0, and demultiplex incoming traffic to UDP sockets (legacy) or the SCION
// host stack (installed by the SCION module).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

#include "net/network.hpp"
#include "util/result.hpp"

namespace pan::net {

class UdpSocket;

class Host {
 public:
  Host(Network& network, NodeId node, IpAddr addr);

  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  [[nodiscard]] NodeId node() const { return node_; }
  [[nodiscard]] IpAddr address() const { return addr_; }
  [[nodiscard]] Network& network() { return network_; }
  [[nodiscard]] sim::Simulator& simulator() { return network_.simulator(); }

  /// Binds a UDP socket. port == 0 picks an ephemeral port. Returns null if
  /// the port is taken. The socket unbinds itself on destruction. The
  /// payload view shares the packet's buffer — copy (to_bytes) to retain it
  /// past the callback only if the receiver mutates shared state.
  using ReceiveFn = std::function<void(const Endpoint& from, PacketView payload)>;
  [[nodiscard]] std::unique_ptr<UdpSocket> udp_bind(std::uint16_t port, ReceiveFn on_receive);

  /// Raw send of a prepared packet out of the access interface.
  void send_packet(Packet packet);

  /// Handler for kScion packets reaching this host (the SCION host stack).
  void set_scion_handler(Network::Handler handler);

 private:
  friend class UdpSocket;
  void handle(Packet&& packet, IfId in_if);
  void unbind(std::uint16_t port);
  std::uint16_t allocate_ephemeral_port();

  Network& network_;
  NodeId node_;
  IpAddr addr_;
  std::unordered_map<std::uint16_t, UdpSocket*> udp_sockets_;
  Network::Handler scion_handler_;
  std::uint16_t next_ephemeral_ = 40000;
};

/// A bound UDP socket. send_to() builds a kUdp packet and pushes it out the
/// host's access link; received datagrams arrive via the bound callback.
class UdpSocket {
 public:
  UdpSocket(Host& host, std::uint16_t port, Host::ReceiveFn on_receive);
  ~UdpSocket();

  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  [[nodiscard]] std::uint16_t local_port() const { return port_; }
  [[nodiscard]] Endpoint local_endpoint() const { return Endpoint{host_.address(), port_}; }
  [[nodiscard]] Host& host() { return host_; }

  /// `priority` marks the datagram for priority queue admission (never
  /// tail-dropped): tiny control traffic — health probes — that must survive
  /// a saturated access link. It still waits out the transmit backlog, so
  /// congestion shows up as delay rather than silence.
  void send_to(const Endpoint& dst, PacketView payload, bool priority = false);

 private:
  friend class Host;
  void deliver(const Endpoint& from, PacketView payload);

  Host& host_;
  std::uint16_t port_;
  Host::ReceiveFn on_receive_;
};

}  // namespace pan::net
