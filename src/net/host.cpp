#include "net/host.hpp"

#include "util/log.hpp"

namespace pan::net {

namespace {
constexpr std::string_view kLog = "host";
}

Host::Host(Network& network, NodeId node, IpAddr addr)
    : network_(network), node_(node), addr_(addr) {
  network_.set_handler(node_, [this](Packet&& p, IfId in_if) { handle(std::move(p), in_if); });
}

std::unique_ptr<UdpSocket> Host::udp_bind(std::uint16_t port, ReceiveFn on_receive) {
  if (port == 0) {
    port = allocate_ephemeral_port();
    if (port == 0) return nullptr;
  } else if (udp_sockets_.contains(port)) {
    return nullptr;
  }
  auto socket = std::make_unique<UdpSocket>(*this, port, std::move(on_receive));
  udp_sockets_[port] = socket.get();
  return socket;
}

std::uint16_t Host::allocate_ephemeral_port() {
  // Linear probe from the ephemeral base; ~25k ports is plenty per host.
  for (std::uint32_t attempt = 0; attempt < 25000; ++attempt) {
    const std::uint16_t candidate =
        static_cast<std::uint16_t>(40000 + (next_ephemeral_ - 40000 + attempt) % 25000);
    if (!udp_sockets_.contains(candidate)) {
      next_ephemeral_ = static_cast<std::uint16_t>(candidate + 1);
      if (next_ephemeral_ >= 65000) next_ephemeral_ = 40000;
      return candidate;
    }
  }
  return 0;
}

void Host::send_packet(Packet packet) {
  if (network_.interface_count(node_) == 0) {
    PAN_WARN(kLog) << network_.node_name(node_) << ": no access link";
    return;
  }
  network_.send(node_, 0, std::move(packet));
}

void Host::set_scion_handler(Network::Handler handler) { scion_handler_ = std::move(handler); }

void Host::handle(Packet&& packet, IfId in_if) {
  if (packet.proto == Protocol::kScion) {
    if (scion_handler_) {
      scion_handler_(std::move(packet), in_if);
    } else {
      PAN_DEBUG(kLog) << network_.node_name(node_) << ": SCION packet but no SCION stack";
    }
    return;
  }
  if (packet.dst != addr_) {
    PAN_DEBUG(kLog) << network_.node_name(node_) << ": misdelivered " << packet.describe();
    return;
  }
  const auto it = udp_sockets_.find(packet.dst_port);
  if (it == udp_sockets_.end()) {
    PAN_DEBUG(kLog) << network_.node_name(node_) << ": no socket on port " << packet.dst_port;
    return;
  }
  it->second->deliver(Endpoint{packet.src, packet.src_port}, std::move(packet.payload));
}

void Host::unbind(std::uint16_t port) { udp_sockets_.erase(port); }

UdpSocket::UdpSocket(Host& host, std::uint16_t port, Host::ReceiveFn on_receive)
    : host_(host), port_(port), on_receive_(std::move(on_receive)) {}

UdpSocket::~UdpSocket() { host_.unbind(port_); }

void UdpSocket::send_to(const Endpoint& dst, PacketView payload, bool priority) {
  Packet packet;
  packet.proto = Protocol::kUdp;
  packet.src = host_.address();
  packet.src_port = port_;
  packet.dst = dst.addr;
  packet.dst_port = dst.port;
  packet.priority = priority;
  packet.payload = std::move(payload);
  host_.send_packet(std::move(packet));
}

void UdpSocket::deliver(const Endpoint& from, PacketView payload) {
  if (on_receive_) on_receive_(from, std::move(payload));
}

}  // namespace pan::net
