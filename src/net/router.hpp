// Legacy (BGP/IP-style) packet forwarding.
//
// A Router forwards kUdp packets by destination address: an exact host route
// (hosts inside its own AS) takes precedence over a 16-bit prefix route
// (remote ASes). SCION packets are handed to a pluggable handler installed
// by the SCION border-router logic, mirroring how a production border router
// runs both stacks side by side.
#pragma once

#include <functional>
#include <optional>
#include <unordered_map>

#include "net/network.hpp"

namespace pan::net {

class Router {
 public:
  Router(Network& network, NodeId node);

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  [[nodiscard]] NodeId node() const { return node_; }
  [[nodiscard]] Network& network() { return network_; }

  /// Route for a remote AS prefix (upper 16 address bits).
  void set_prefix_route(std::uint16_t prefix, IfId out_if);
  /// Route for a directly attached host.
  void set_host_route(IpAddr host, IfId out_if);
  void clear_routes();

  /// Installed by the SCION border router; receives all kScion packets.
  void set_scion_handler(Network::Handler handler);

  /// Access interface for a directly attached host (nullopt if unknown).
  [[nodiscard]] std::optional<IfId> host_route(IpAddr host) const;

  /// Sends a packet from this router (used by forwarding and by locally
  /// originated control traffic).
  void forward(Packet&& packet);

  [[nodiscard]] std::uint64_t forwarded_packets() const { return forwarded_; }
  [[nodiscard]] std::uint64_t dropped_no_route() const { return no_route_; }

 private:
  void handle(Packet&& packet, IfId in_if);

  Network& network_;
  NodeId node_;
  std::unordered_map<std::uint16_t, IfId> prefix_routes_;
  std::unordered_map<IpAddr, IfId> host_routes_;
  Network::Handler scion_handler_;
  std::uint64_t forwarded_ = 0;
  std::uint64_t no_route_ = 0;
};

}  // namespace pan::net
