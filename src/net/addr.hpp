// Legacy (IPv4-style) addressing.
//
// The simulator assigns every host a 32-bit address of the form
// (AS index + 1) << 16 | (host index + 1); the upper 16 bits act as the AS's
// address prefix, which keeps legacy forwarding tables small and readable.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "util/result.hpp"

namespace pan::net {

class IpAddr {
 public:
  constexpr IpAddr() = default;
  constexpr explicit IpAddr(std::uint32_t value) : value_(value) {}

  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }
  [[nodiscard]] constexpr bool is_unspecified() const { return value_ == 0; }
  /// The 16-bit AS prefix of this address.
  [[nodiscard]] constexpr std::uint16_t prefix() const {
    return static_cast<std::uint16_t>(value_ >> 16);
  }

  constexpr auto operator<=>(const IpAddr&) const = default;

  /// Dotted-quad rendering, e.g. "10.1.0.5" — the simulator maps the 32-bit
  /// value straight onto four octets.
  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] static Result<IpAddr> parse(std::string_view s);

 private:
  std::uint32_t value_ = 0;
};

/// A (host, UDP port) endpoint.
struct Endpoint {
  IpAddr addr;
  std::uint16_t port = 0;

  auto operator<=>(const Endpoint&) const = default;
  [[nodiscard]] std::string to_string() const;
};

}  // namespace pan::net

template <>
struct std::hash<pan::net::IpAddr> {
  std::size_t operator()(const pan::net::IpAddr& a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value());
  }
};

template <>
struct std::hash<pan::net::Endpoint> {
  std::size_t operator()(const pan::net::Endpoint& e) const noexcept {
    return std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(e.addr.value()) << 16) | e.port);
  }
};
