#include "net/multi_access.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "net/packet.hpp"
#include "sim/simulator.hpp"
#include "util/log.hpp"

namespace pan::net {
namespace {

constexpr std::string_view kProbePrefix = "ma-probe:";

}  // namespace

const char* to_string(FetchIntent intent) {
  switch (intent) {
    case FetchIntent::kLatencyCritical: return "latency-critical";
    case FetchIntent::kBulk: return "bulk";
    case FetchIntent::kBackground: return "background";
  }
  return "bulk";
}

std::optional<FetchIntent> parse_fetch_intent(std::string_view text) {
  if (text == "latency-critical") return FetchIntent::kLatencyCritical;
  if (text == "bulk") return FetchIntent::kBulk;
  if (text == "background") return FetchIntent::kBackground;
  return std::nullopt;
}

const char* to_string(AccessHealth health) {
  switch (health) {
    case AccessHealth::kHealthy: return "healthy";
    case AccessHealth::kDegraded: return "degraded";
    case AccessHealth::kDown: return "down";
  }
  return "down";
}

MultiAccessHost::MultiAccessHost(sim::Simulator& sim, MultiAccessConfig config)
    : sim_(sim), config_(config) {}

MultiAccessHost::~MultiAccessHost() { *alive_ = false; }

void MultiAccessHost::add_access(const std::string& name, Host& host) {
  if (find(name) != nullptr) return;
  auto access = std::make_unique<Access>();
  access->name = name;
  access->host = &host;
  accesses_.push_back(std::move(access));
}

void MultiAccessHost::start_probes() {
  for (std::size_t i = 0; i < accesses_.size(); ++i) {
    Access& access = *accesses_[i];
    if (access.probing) continue;
    access.probing = true;
    access.last_reply = sim_.now();  // baseline for the silence window
    // The probe is a datagram addressed to ourselves: it rides the access
    // link to the first-hop AS router and comes back over the host route, so
    // the RTT measures the access link and a dead link swallows it.
    access.probe_socket = access.host->udp_bind(
        0, [this, i](const Endpoint& /*from*/, PacketView payload) {
          const auto bytes = payload.span();
          std::string text(bytes.begin(), bytes.end());
          if (text.rfind(kProbePrefix, 0) != 0) return;
          const std::uint64_t seq =
              std::strtoull(text.c_str() + kProbePrefix.size(), nullptr, 10);
          on_probe_reply(i, seq);
        });
    send_probe(i);
  }
}

std::vector<std::string> MultiAccessHost::access_names() const {
  std::vector<std::string> names;
  names.reserve(accesses_.size());
  for (const auto& access : accesses_) names.push_back(access->name);
  return names;
}

bool MultiAccessHost::has_access(const std::string& name) const {
  return find(name) != nullptr;
}

Host* MultiAccessHost::host(const std::string& name) {
  Access* access = find(name);
  return access != nullptr ? access->host : nullptr;
}

AccessHealth MultiAccessHost::health(const std::string& name) const {
  const Access* access = find(name);
  return access != nullptr ? access->health : AccessHealth::kDown;
}

Duration MultiAccessHost::ewma_rtt(const std::string& name) const {
  const Access* access = find(name);
  return access != nullptr ? access->ewma : Duration::zero();
}

void MultiAccessHost::record_result(const std::string& name, bool ok, Duration /*latency*/) {
  Access* access = find(name);
  if (access == nullptr) return;
  // Fetch latency is deliberately NOT folded into the access EWMA: it
  // measures the whole path to the origin, and a 60 ms far-path fetch would
  // swamp the sub-millisecond access-link signal the probes maintain.
  // Passive feedback contributes reachability evidence only.
  if (ok) {
    access->failure_streak = 0;
    // A real fetch succeeding over a degraded access is stronger evidence
    // than the RTT hysteresis: restore it once the streak clears.
    if (access->health == AccessHealth::kDegraded &&
        (access->best == Duration::zero() ||
         access->ewma <= access->best.scaled(config_.degrade_rtt_factor))) {
      set_health(*access, AccessHealth::kHealthy);
    }
    return;
  }
  ++access->failure_streak;
  if (access->health == AccessHealth::kHealthy &&
      access->failure_streak >= config_.degrade_after_failures) {
    set_health(*access, AccessHealth::kDegraded);
  }
}

std::string MultiAccessHost::pick(FetchIntent intent, const std::string& avoid) {
  // Latency-critical considers every not-down access (a degraded-but-fastest
  // access keeps the documents, handicap permitting); bulk and background
  // use the shadowed set so a degraded access sheds its load.
  std::vector<std::size_t> usable =
      intent == FetchIntent::kLatencyCritical ? not_down_set() : usable_set();
  if (usable.empty()) return {};
  if (!avoid.empty() && usable.size() > 1) {
    std::vector<std::size_t> filtered;
    for (std::size_t i : usable) {
      if (accesses_[i]->name != avoid) filtered.push_back(i);
    }
    if (!filtered.empty()) usable = std::move(filtered);
  }
  switch (intent) {
    case FetchIntent::kLatencyCritical: {
      // Zero EWMA = unmeasured; it sorts first, so before any probe lands
      // the primary (first-registered) access wins deterministically.
      std::size_t best = usable.front();
      for (std::size_t i : usable) {
        if (effective_ewma(*accesses_[i]) < effective_ewma(*accesses_[best])) best = i;
      }
      return accesses_[best]->name;
    }
    case FetchIntent::kBackground: {
      // The spare: slowest usable access, ties to the latest registered so
      // background traffic stays off the primary even before measurements.
      std::size_t spare = usable.front();
      for (std::size_t i : usable) {
        if (accesses_[i]->ewma >= accesses_[spare]->ewma) spare = i;
      }
      return accesses_[spare]->name;
    }
    case FetchIntent::kBulk: return pick_bulk(usable);
  }
  return accesses_[usable.front()]->name;
}

std::string MultiAccessHost::fastest_usable() const {
  const std::vector<std::size_t> usable = not_down_set();
  if (usable.empty()) return {};
  std::size_t best = usable.front();
  for (std::size_t i : usable) {
    if (effective_ewma(*accesses_[i]) < effective_ewma(*accesses_[best])) best = i;
  }
  return accesses_[best]->name;
}

std::vector<std::pair<std::string, double>> MultiAccessHost::striping_weights() const {
  std::vector<std::pair<std::string, double>> out;
  const std::vector<std::size_t> usable = usable_set();
  for (const auto& [index, weight] : weights_over(usable)) {
    out.emplace_back(accesses_[index]->name, weight);
  }
  return out;
}

std::uint64_t MultiAccessHost::subscribe(HealthFn fn) {
  const std::uint64_t id = next_subscriber_++;
  subscribers_[id] = std::move(fn);
  return id;
}

void MultiAccessHost::unsubscribe(std::uint64_t id) { subscribers_.erase(id); }

std::string MultiAccessHost::snapshot_json() const {
  std::ostringstream out;
  out << "{\"accesses\":[";
  bool first = true;
  for (const auto& access : accesses_) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"" << access->name << "\""
        << ",\"health\":\"" << to_string(access->health) << "\""
        << ",\"ewma_rtt_us\":" << access->ewma.micros()
        << ",\"probes_sent\":" << access->probes_sent
        << ",\"probes_acked\":" << access->probes_acked
        << ",\"failure_streak\":" << access->failure_streak << "}";
  }
  out << "],\"weights\":[";
  first = true;
  for (const auto& [name, weight] : striping_weights()) {
    if (!first) out << ",";
    first = false;
    out << "{\"access\":\"" << name << "\",\"weight\":" << weight << "}";
  }
  out << "]}";
  return out.str();
}

MultiAccessHost::Access* MultiAccessHost::find(const std::string& name) {
  for (auto& access : accesses_) {
    if (access->name == name) return access.get();
  }
  return nullptr;
}

const MultiAccessHost::Access* MultiAccessHost::find(const std::string& name) const {
  for (const auto& access : accesses_) {
    if (access->name == name) return access.get();
  }
  return nullptr;
}

std::vector<std::size_t> MultiAccessHost::usable_set() const {
  std::vector<std::size_t> healthy;
  std::vector<std::size_t> degraded;
  for (std::size_t i = 0; i < accesses_.size(); ++i) {
    switch (accesses_[i]->health) {
      case AccessHealth::kHealthy: healthy.push_back(i); break;
      case AccessHealth::kDegraded: degraded.push_back(i); break;
      case AccessHealth::kDown: break;
    }
  }
  return healthy.empty() ? degraded : healthy;
}

std::vector<std::size_t> MultiAccessHost::not_down_set() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < accesses_.size(); ++i) {
    if (accesses_[i]->health != AccessHealth::kDown) out.push_back(i);
  }
  return out;
}

Duration MultiAccessHost::effective_ewma(const Access& access) const {
  if (access.health != AccessHealth::kDegraded) return access.ewma;
  // Degraded by failing fetches (or degraded with nothing measured yet):
  // nothing a latency comparison can vouch for — avoid unless it is the
  // only access left.
  if (access.failure_streak > 0 || access.ewma == Duration::zero()) return Duration::max();
  return access.ewma.scaled(config_.degraded_latency_penalty);
}

std::vector<std::pair<std::size_t, double>> MultiAccessHost::weights_over(
    const std::vector<std::size_t>& usable) const {
  std::vector<std::pair<std::size_t, double>> weights;
  if (usable.empty()) return weights;
  // Inverse-EWMA raw weights; unmeasured accesses take the fastest measured
  // EWMA (optimistic: no evidence they are slow), or 1.0 when nothing has
  // been measured yet (equal striping).
  Duration fastest = Duration::zero();
  for (std::size_t i : usable) {
    const Duration ewma = accesses_[i]->ewma;
    if (ewma > Duration::zero() && (fastest == Duration::zero() || ewma < fastest)) {
      fastest = ewma;
    }
  }
  double max_weight = 0.0;
  for (std::size_t i : usable) {
    Duration ewma = accesses_[i]->ewma;
    if (ewma == Duration::zero()) ewma = fastest;
    const double w = ewma == Duration::zero() ? 1.0 : 1.0 / ewma.seconds();
    weights.emplace_back(i, w);
    max_weight = std::max(max_weight, w);
  }
  // Ratio clamp: striping is about aggregating bandwidth, so a slow access
  // keeps at least max/ratio — raw inverse RTT would starve it.
  double total = 0.0;
  for (auto& [index, w] : weights) {
    if (config_.max_weight_ratio > 1.0) {
      w = std::max(w, max_weight / config_.max_weight_ratio);
    }
    total += w;
  }
  for (auto& [index, w] : weights) w /= total;
  return weights;
}

void MultiAccessHost::set_health(Access& access, AccessHealth health) {
  if (access.health == health) return;
  const AccessHealth previous = access.health;
  access.health = health;
  access.hits = 0;
  if (health != AccessHealth::kDown) access.misses = 0;
  if (health == AccessHealth::kHealthy) access.failure_streak = 0;
  PAN_DEBUG("multiaccess") << "access " << access.name << " " << to_string(previous)
                           << " -> " << to_string(health);
  // Copy before firing: a subscriber may (un)subscribe from its callback.
  auto subscribers = subscribers_;
  for (auto& [id, fn] : subscribers) fn(access.name, previous, health);
}

void MultiAccessHost::fold_rtt(Access& access, Duration rtt) {
  if (access.ewma == Duration::zero()) {
    access.ewma = rtt;
  } else {
    const double alpha = config_.ewma_alpha;
    access.ewma = rtt.scaled(alpha) + access.ewma.scaled(1.0 - alpha);
  }
  if (access.best == Duration::zero() || access.ewma < access.best) {
    access.best = access.ewma;
  }
  // Brownout detection with hysteresis: degrade above
  // max(best * factor, best + min_excess) — the absolute floor keeps a
  // sub-millisecond access from flapping on queueing no page load can feel.
  const Duration threshold = std::max(access.best.scaled(config_.degrade_rtt_factor),
                                      access.best + config_.degrade_min_excess);
  if (access.health == AccessHealth::kHealthy && access.ewma > threshold) {
    set_health(access, AccessHealth::kDegraded);
  } else if (access.health == AccessHealth::kDegraded && access.failure_streak == 0 &&
             access.ewma < threshold.scaled(0.8)) {
    set_health(access, AccessHealth::kHealthy);
  }
}

void MultiAccessHost::send_probe(std::size_t index) {
  Access& access = *accesses_[index];
  if (access.probe_socket == nullptr) return;
  const std::uint64_t seq = access.next_seq++;
  access.outstanding[seq] = sim_.now();
  ++access.probes_sent;
  // Priority admission: the probe must not be tail-dropped behind a bulk
  // transfer saturating the access link — congestion has to surface as a
  // late reply (inflated RTT -> degraded), not as silence (-> down).
  access.probe_socket->send_to(access.probe_socket->local_endpoint(),
                               from_string(std::string(kProbePrefix) + std::to_string(seq)),
                               /*priority=*/true);
  auto alive = alive_;
  sim_.schedule_after(config_.probe_timeout, [this, alive, index, seq] {
    if (!*alive) return;
    on_probe_timeout(index, seq);
  });
  sim_.schedule_after(config_.probe_interval, [this, alive, index] {
    if (!*alive) return;
    send_probe(index);
  });
}

void MultiAccessHost::on_probe_reply(std::size_t index, std::uint64_t seq) {
  Access& access = *accesses_[index];
  auto it = access.outstanding.find(seq);
  if (it == access.outstanding.end()) {
    // Late reply: the probe already counted as a miss, but lateness is not
    // silence — a bulk transfer saturating the access link queues the probe
    // behind megabytes of data without the link being down. Count it as
    // liveness (reset the miss streak, fold the inflated RTT so the EWMA
    // degrade machinery sees the bufferbloat) instead of dropping it, or a
    // failover onto a surviving access would immediately declare that
    // access dead under its own load.
    auto late_it = access.late.find(seq);
    if (late_it == access.late.end()) return;
    const Duration rtt = sim_.now() - late_it->second;
    access.late.erase(late_it);
    ++access.probes_acked;
    access.misses = 0;
    access.last_reply = sim_.now();
    if (access.health == AccessHealth::kDown &&
        ++access.hits >= config_.up_after_hits) {
      set_health(access, AccessHealth::kHealthy);
    }
    fold_rtt(access, rtt);
    return;
  }
  const Duration rtt = sim_.now() - it->second;
  access.outstanding.erase(it);
  ++access.probes_acked;
  access.misses = 0;
  access.last_reply = sim_.now();
  if (access.health == AccessHealth::kDown) {
    if (++access.hits >= config_.up_after_hits) {
      set_health(access, AccessHealth::kHealthy);
    }
  }
  fold_rtt(access, rtt);
}

void MultiAccessHost::on_probe_timeout(std::size_t index, std::uint64_t seq) {
  Access& access = *accesses_[index];
  auto it = access.outstanding.find(seq);
  if (it == access.outstanding.end()) return;  // answered in time
  // Keep the send time around so a reply that eventually straggles in still
  // counts as liveness (bounded: a truly dead link accumulates these, so
  // evict the oldest beyond a small window).
  access.late[seq] = it->second;
  while (access.late.size() > 16) access.late.erase(access.late.begin());
  access.outstanding.erase(it);
  access.hits = 0;
  ++access.misses;
  // Down means silence, not lateness: require both the miss streak AND a
  // reply-free window covering it. Replies straggling in through a
  // saturated queue keep resetting the streak, so a loaded-but-alive
  // access never flaps down under its own traffic.
  const Duration silence_window =
      config_.probe_timeout +
      config_.probe_interval * static_cast<std::int64_t>(config_.down_after_misses);
  if (access.misses >= config_.down_after_misses &&
      sim_.now() - access.last_reply >= silence_window &&
      access.health != AccessHealth::kDown) {
    set_health(access, AccessHealth::kDown);
  }
}

std::string MultiAccessHost::pick_bulk(const std::vector<std::size_t>& usable) {
  // Smooth weighted round-robin (nginx-style): each pick adds the weight to
  // every credit, takes the largest, and charges it the total. Produces the
  // maximally interleaved sequence for any weight vector.
  const auto weights = weights_over(usable);
  double total = 0.0;
  for (const auto& [index, w] : weights) total += w;
  std::size_t chosen = weights.front().first;
  double best_credit = -1.0;
  for (const auto& [index, w] : weights) {
    Access& access = *accesses_[index];
    access.wrr_credit += w;
    if (access.wrr_credit > best_credit) {
      best_credit = access.wrr_credit;
      chosen = index;
    }
  }
  accesses_[chosen]->wrr_credit -= total;
  return accesses_[chosen]->name;
}

}  // namespace pan::net
