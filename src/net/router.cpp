#include "net/router.hpp"

#include "util/log.hpp"

namespace pan::net {

namespace {
constexpr std::string_view kLog = "router";
}

Router::Router(Network& network, NodeId node) : network_(network), node_(node) {
  network_.set_handler(node_, [this](Packet&& p, IfId in_if) { handle(std::move(p), in_if); });
}

void Router::set_prefix_route(std::uint16_t prefix, IfId out_if) {
  prefix_routes_[prefix] = out_if;
}

void Router::set_host_route(IpAddr host, IfId out_if) { host_routes_[host] = out_if; }

void Router::clear_routes() {
  prefix_routes_.clear();
  host_routes_.clear();
}

void Router::set_scion_handler(Network::Handler handler) {
  scion_handler_ = std::move(handler);
}

std::optional<IfId> Router::host_route(IpAddr host) const {
  const auto it = host_routes_.find(host);
  if (it == host_routes_.end()) return std::nullopt;
  return it->second;
}

void Router::handle(Packet&& packet, IfId in_if) {
  if (packet.proto == Protocol::kScion) {
    if (scion_handler_) {
      scion_handler_(std::move(packet), in_if);
    } else {
      PAN_WARN(kLog) << network_.node_name(node_) << ": SCION packet but no SCION stack";
    }
    return;
  }
  forward(std::move(packet));
}

void Router::forward(Packet&& packet) {
  if (const auto host_it = host_routes_.find(packet.dst); host_it != host_routes_.end()) {
    ++forwarded_;
    network_.send(node_, host_it->second, std::move(packet));
    return;
  }
  if (const auto prefix_it = prefix_routes_.find(packet.dst.prefix());
      prefix_it != prefix_routes_.end()) {
    ++forwarded_;
    network_.send(node_, prefix_it->second, std::move(packet));
    return;
  }
  ++no_route_;
  PAN_DEBUG(kLog) << network_.node_name(node_) << ": no route for " << packet.describe();
}

}  // namespace pan::net
