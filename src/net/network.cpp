#include "net/network.hpp"

#include <cassert>
#include <utility>

#include "util/log.hpp"

namespace pan::net {

namespace {
constexpr std::string_view kLog = "net";
}

Network::Network(sim::Simulator& sim, std::uint64_t seed) : sim_(sim), rng_(seed) {}

NodeId Network::add_node(std::string name) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(NodeState{std::move(name), nullptr, {}});
  return id;
}

const Network::NodeState& Network::node(NodeId id) const {
  assert(id < nodes_.size());
  return nodes_[id];
}

Network::NodeState& Network::node(NodeId id) {
  assert(id < nodes_.size());
  return nodes_[id];
}

const std::string& Network::node_name(NodeId id) const { return node(id).name; }

NodeId Network::find_node(std::string_view name) const {
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (nodes_[id].name == name) return id;
  }
  return kInvalidNodeId;
}

void Network::set_handler(NodeId id, Handler handler) {
  node(id).handler = std::move(handler);
}

std::pair<IfId, IfId> Network::connect(NodeId a, NodeId b, const LinkParams& params) {
  assert(a != b);
  const LinkId link_id = static_cast<LinkId>(links_.size());
  const IfId if_a = static_cast<IfId>(node(a).interfaces.size());
  const IfId if_b = static_cast<IfId>(node(b).interfaces.size());
  links_.push_back(Link{a, b, if_a, if_b, params, {}, {}});
  node(a).interfaces.push_back(link_id);
  node(b).interfaces.push_back(link_id);
  return {if_a, if_b};
}

LinkId Network::link_id_at(NodeId node_id, IfId ifid) const {
  const NodeState& n = node(node_id);
  assert(ifid < n.interfaces.size());
  return n.interfaces[ifid];
}

const Link& Network::link_at(NodeId node_id, IfId ifid) const {
  return links_[link_id_at(node_id, ifid)];
}

NodeId Network::neighbor(NodeId node_id, IfId ifid) const {
  const Link& link = link_at(node_id, ifid);
  return link.node_a == node_id ? link.node_b : link.node_a;
}

IfId Network::neighbor_ifid(NodeId node_id, IfId ifid) const {
  const Link& link = link_at(node_id, ifid);
  return link.node_a == node_id ? link.if_b : link.if_a;
}

std::size_t Network::interface_count(NodeId node_id) const {
  return node(node_id).interfaces.size();
}

const LinkParams& Network::link_params(NodeId node_id, IfId ifid) const {
  return link_at(node_id, ifid).params;
}

LinkParams& Network::mutable_link_params(NodeId node_id, IfId ifid) {
  return links_[link_id_at(node_id, ifid)].params;
}

void Network::trace(TraceEvent::Kind kind, TimePoint time, NodeId from, NodeId to,
                    const Packet& packet) const {
  if (!tracer_) return;
  TraceEvent event;
  event.time = time;
  event.kind = kind;
  event.from = from;
  event.to = to;
  event.proto = packet.proto;
  event.wire_bytes = packet.wire_size();
  event.packet_id = packet.id;
  event.packet = &packet;
  tracer_(event);
}

void Network::send(NodeId from, IfId out_if, Packet packet) {
  Link& link = links_[link_id_at(from, out_if)];
  const bool forward = link.node_a == from;
  LinkDirection& dir = forward ? link.a_to_b : link.b_to_a;
  const NodeId to = forward ? link.node_b : link.node_a;
  const IfId in_if = forward ? link.if_b : link.if_a;

  if (packet.id == 0) packet.id = next_packet_id_++;
  packet.sent_at = sim_.now();
  const std::size_t wire = packet.wire_size();

  if (link.down) {
    ++dir.drops_down;
    trace(TraceEvent::Kind::kDropLinkDown, sim_.now(), from, to, packet);
    PAN_TRACE(kLog) << "link down: " << packet.describe();
    return;
  }

  if (wire > link.params.mtu + kFramingOverhead) {
    ++dir.drops_mtu;
    trace(TraceEvent::Kind::kDropMtu, sim_.now(), from, to, packet);
    PAN_DEBUG(kLog) << "MTU drop on " << node(from).name << "->" << node(to).name << ": "
                    << packet.describe();
    return;
  }
  if (rng_.chance(link.params.loss_rate)) {
    ++dir.drops_loss;
    trace(TraceEvent::Kind::kDropLoss, sim_.now(), from, to, packet);
    PAN_TRACE(kLog) << "random loss: " << packet.describe();
    return;
  }

  const TimePoint now = sim_.now();
  const TimePoint depart_earliest = dir.busy_until > now ? dir.busy_until : now;
  if (!packet.priority && depart_earliest - now > link.params.max_queue_delay) {
    ++dir.drops_queue;
    trace(TraceEvent::Kind::kDropQueue, sim_.now(), from, to, packet);
    PAN_TRACE(kLog) << "queue overflow: " << packet.describe();
    return;
  }

  const Duration tx = link.params.transmit_time(wire);
  const TimePoint depart = depart_earliest + tx;
  dir.busy_until = depart;
  ++dir.packets_sent;
  dir.bytes_sent += wire;

  Duration propagation = link.params.latency;
  if (link.params.jitter_frac > 0) {
    propagation = rng_.jittered(propagation, link.params.jitter_frac);
  }
  TimePoint arrive = depart + propagation;
  // FIFO discipline: jitter must not reorder packets on one link, or the
  // transports see phantom loss (packet-threshold detectors fire).
  if (arrive < dir.last_arrival) arrive = dir.last_arrival;
  dir.last_arrival = arrive;

  trace(TraceEvent::Kind::kSend, depart, from, to, packet);
  sim_.schedule_at(arrive, [this, from, to, in_if, p = std::move(packet)]() mutable {
    trace(TraceEvent::Kind::kDeliver, sim_.now(), from, to, p);
    NodeState& dst = node(to);
    if (dst.handler) {
      dst.handler(std::move(p), in_if);
    } else {
      PAN_WARN(kLog) << "packet dropped at handler-less node " << dst.name;
    }
  });
}

void Network::set_link_up(NodeId node_id, IfId ifid, bool up) {
  links_[link_id_at(node_id, ifid)].down = !up;
}

bool Network::link_up(NodeId node_id, IfId ifid) const {
  return !link_at(node_id, ifid).down;
}

Network::DropTotals Network::drop_totals() const {
  DropTotals t;
  for (const Link& link : links_) {
    for (const LinkDirection* dir : {&link.a_to_b, &link.b_to_a}) {
      t.loss += dir->drops_loss;
      t.queue += dir->drops_queue;
      t.mtu += dir->drops_mtu;
      t.down += dir->drops_down;
    }
  }
  return t;
}

std::uint64_t Network::total_bytes_sent() const {
  std::uint64_t total = 0;
  for (const Link& link : links_) {
    total += link.a_to_b.bytes_sent + link.b_to_a.bytes_sent;
  }
  return total;
}

}  // namespace pan::net
