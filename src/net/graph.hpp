// Shortest-path computation used to populate legacy (BGP-like) forwarding
// tables. Deliberately simple: Dijkstra over a weighted digraph with a
// deterministic tie-break (lower node index wins), which emulates BGP's
// stable-but-not-latency-optimal route choice when weights are hop counts.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace pan::net {

struct GraphEdge {
  std::uint32_t to = 0;
  double weight = 1.0;
  /// Caller-defined payload (we store the egress interface id).
  std::uint32_t tag = 0;
};

using Adjacency = std::vector<std::vector<GraphEdge>>;

struct ShortestPaths {
  static constexpr double kUnreachable = std::numeric_limits<double>::infinity();
  std::vector<double> distance;
  /// Predecessor node on the best path (UINT32_MAX for src/unreachable).
  std::vector<std::uint32_t> parent;
  /// Tag of the edge entering each node along its best path.
  std::vector<std::uint32_t> parent_edge_tag;

  [[nodiscard]] bool reachable(std::uint32_t node) const {
    return distance[node] != kUnreachable;
  }
  /// Reconstructs src -> dst as a node sequence (empty if unreachable).
  [[nodiscard]] std::vector<std::uint32_t> path_to(std::uint32_t dst) const;
};

[[nodiscard]] ShortestPaths dijkstra(const Adjacency& adj, std::uint32_t src);

/// For routing tables: the tag of the *first* edge on the best src->dst path
/// (i.e. which interface src should send out of), or UINT32_MAX.
[[nodiscard]] std::uint32_t first_hop_tag(const ShortestPaths& paths, std::uint32_t src,
                                          std::uint32_t dst);

}  // namespace pan::net
