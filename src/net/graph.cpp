#include "net/graph.hpp"

#include <algorithm>
#include <queue>

namespace pan::net {

std::vector<std::uint32_t> ShortestPaths::path_to(std::uint32_t dst) const {
  if (!reachable(dst)) return {};
  std::vector<std::uint32_t> path;
  std::uint32_t cur = dst;
  while (cur != UINT32_MAX) {
    path.push_back(cur);
    cur = parent[cur];
  }
  std::reverse(path.begin(), path.end());
  return path;
}

ShortestPaths dijkstra(const Adjacency& adj, std::uint32_t src) {
  const std::size_t n = adj.size();
  ShortestPaths out;
  out.distance.assign(n, ShortestPaths::kUnreachable);
  out.parent.assign(n, UINT32_MAX);
  out.parent_edge_tag.assign(n, UINT32_MAX);

  using Entry = std::pair<double, std::uint32_t>;  // (distance, node)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  out.distance[src] = 0;
  heap.emplace(0.0, src);

  while (!heap.empty()) {
    const auto [dist, node] = heap.top();
    heap.pop();
    if (dist > out.distance[node]) continue;  // stale entry
    for (const GraphEdge& edge : adj[node]) {
      const double candidate = dist + edge.weight;
      // Deterministic tie-break: strictly better distance, or equal distance
      // with a lower-index predecessor.
      const bool better = candidate < out.distance[edge.to] ||
                          (candidate == out.distance[edge.to] && node < out.parent[edge.to]);
      if (better) {
        out.distance[edge.to] = candidate;
        out.parent[edge.to] = node;
        out.parent_edge_tag[edge.to] = edge.tag;
        heap.emplace(candidate, edge.to);
      }
    }
  }
  return out;
}

std::uint32_t first_hop_tag(const ShortestPaths& paths, std::uint32_t src, std::uint32_t dst) {
  if (dst == src || !paths.reachable(dst)) return UINT32_MAX;
  std::uint32_t cur = dst;
  while (paths.parent[cur] != src) {
    cur = paths.parent[cur];
    if (cur == UINT32_MAX) return UINT32_MAX;
  }
  return paths.parent_edge_tag[cur];
}

}  // namespace pan::net
