// Point-to-point links with serialization delay, propagation latency,
// bounded queueing, random loss, and MTU enforcement.
//
// Queueing model: each link direction tracks when its transmitter becomes
// free (`busy_until`). A packet departs at max(now, busy_until) and the
// backlog (depart - now) is capped by max_queue_delay — beyond that the
// packet is tail-dropped, which produces loss under sustained overload just
// like a bounded FIFO in a real NIC.
#pragma once

#include <cstdint>

#include "net/packet.hpp"
#include "util/types.hpp"

namespace pan::net {

using NodeId = std::uint32_t;
using IfId = std::uint16_t;
using LinkId = std::uint32_t;

inline constexpr NodeId kInvalidNodeId = static_cast<NodeId>(-1);
inline constexpr IfId kInvalidIfId = static_cast<IfId>(-1);

struct LinkParams {
  Duration latency = milliseconds(1);
  /// Bits per second.
  double bandwidth_bps = 1e9;
  /// Independent per-packet loss probability.
  double loss_rate = 0.0;
  std::size_t mtu = 1500;
  /// Maximum tolerated transmit backlog before tail drop.
  Duration max_queue_delay = milliseconds(50);
  /// Uniform latency jitter as a fraction of `latency` (0 = deterministic).
  double jitter_frac = 0.0;

  [[nodiscard]] Duration transmit_time(std::size_t wire_bytes) const {
    const double secs = static_cast<double>(wire_bytes) * 8.0 / bandwidth_bps;
    return Duration{static_cast<std::int64_t>(secs * 1e9)};
  }
};

/// Per-direction transmit state and counters.
struct LinkDirection {
  TimePoint busy_until = TimePoint::origin();
  /// Links are FIFO: jitter varies delay but never reorders packets.
  TimePoint last_arrival = TimePoint::origin();
  std::uint64_t packets_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t drops_loss = 0;
  std::uint64_t drops_queue = 0;
  std::uint64_t drops_mtu = 0;
  std::uint64_t drops_down = 0;
};

struct Link {
  NodeId node_a = kInvalidNodeId;
  NodeId node_b = kInvalidNodeId;
  IfId if_a = kInvalidIfId;
  IfId if_b = kInvalidIfId;
  LinkParams params;
  LinkDirection a_to_b;
  LinkDirection b_to_a;
  /// Administratively/physically down: everything sent on it is dropped
  /// (failure injection for revocation and failover testing).
  bool down = false;
};

}  // namespace pan::net
