#include "sim/timer.hpp"

#include <memory>
#include <utility>

namespace pan::sim {

Timer::Timer(Simulator& sim, std::function<void()> on_fire)
    : sim_(sim), on_fire_(std::move(on_fire)), alive_(std::make_shared<bool>(true)) {}

Timer::~Timer() {
  *alive_ = false;
  cancel();
}

void Timer::arm(Duration delay) {
  cancel();
  pending_ = true;
  deadline_ = sim_.now() + delay;
  const std::shared_ptr<bool> alive = alive_;
  event_ = sim_.schedule_after(delay, [this, alive] {
    if (!*alive) return;
    fire();
  });
}

void Timer::arm_if_idle(Duration delay) {
  if (!pending_) arm(delay);
}

void Timer::cancel() {
  if (pending_) {
    sim_.cancel(event_);
    pending_ = false;
  }
}

void Timer::fire() {
  pending_ = false;
  on_fire_();
}

PeriodicTimer::PeriodicTimer(Simulator& sim, std::function<void()> on_fire)
    : sim_(sim), on_fire_(std::move(on_fire)), alive_(std::make_shared<bool>(true)) {}

PeriodicTimer::~PeriodicTimer() {
  *alive_ = false;
  stop();
}

void PeriodicTimer::start(Duration initial_delay, Duration period) {
  stop();
  running_ = true;
  period_ = period;
  const std::shared_ptr<bool> alive = alive_;
  event_ = sim_.schedule_after(initial_delay, [this, alive] {
    if (!*alive) return;
    fire();
  });
}

void PeriodicTimer::stop() {
  if (running_) {
    sim_.cancel(event_);
    running_ = false;
  }
}

void PeriodicTimer::fire() {
  if (!running_) return;
  const std::shared_ptr<bool> alive = alive_;
  event_ = sim_.schedule_after(period_, [this, alive] {
    if (!*alive) return;
    fire();
  });
  on_fire_();
}

}  // namespace pan::sim
