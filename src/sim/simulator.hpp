// Deterministic discrete-event simulation engine.
//
// The whole system — links, transports, proxies, the browser model — runs on
// one Simulator. Events are (time, sequence, closure) triples ordered by time
// with the sequence number breaking ties FIFO, which makes runs bit-for-bit
// reproducible. Everything is single-threaded by design: handlers run to
// completion and schedule follow-up events.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "util/types.hpp"

namespace pan::sim {

/// Identifies a scheduled event so it can be cancelled.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEventId = 0;

class Simulator {
 public:
  Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] TimePoint now() const { return now_; }

  /// Schedules `fn` to run at the absolute time `when` (>= now, else clamped
  /// to now). Returns an id usable with cancel().
  EventId schedule_at(TimePoint when, std::function<void()> fn);

  /// Schedules `fn` to run `delay` after now (negative delays clamp to 0).
  EventId schedule_after(Duration delay, std::function<void()> fn);

  /// Cancels a pending event. Cancelling an already-fired or unknown id is a
  /// harmless no-op. Returns true iff the event was pending.
  bool cancel(EventId id);

  /// Runs events until the queue drains. Returns the number of events run.
  std::size_t run();

  /// Runs events with time <= deadline. The clock always ends at the
  /// deadline, even when the queue drains early, so repeated calls advance
  /// monotonically. Returns the number of events run.
  std::size_t run_until(TimePoint deadline);

  /// Runs for `span` of simulated time from now.
  std::size_t run_for(Duration span);

  /// Runs events until `pred()` becomes true (checked after each event) or
  /// the queue drains or `deadline` passes. Returns true iff pred held.
  bool run_until_condition(const std::function<bool()>& pred, TimePoint deadline);

  [[nodiscard]] std::size_t pending_events() const { return queue_.size() - cancelled_live_; }
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

 private:
  struct Event {
    TimePoint when;
    std::uint64_t seq;
    EventId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  /// Pops and runs the next event; returns false if the queue is empty or the
  /// next event is beyond `deadline` (clock untouched in that case).
  bool step(TimePoint deadline);

  TimePoint now_ = TimePoint::origin();
  std::uint64_t next_seq_ = 1;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  // Cancelled ids are tombstoned and skipped on pop; cancelled_live_ counts
  // tombstones still in the queue so pending_events() stays accurate.
  std::unordered_set<EventId> cancelled_;
  std::size_t cancelled_live_ = 0;
};

}  // namespace pan::sim
