#include "sim/simulator.hpp"

#include <utility>

#include "util/log.hpp"

namespace pan::sim {

namespace {
TimePoint clock_hook(const void* ctx) {
  return static_cast<const Simulator*>(ctx)->now();
}
}  // namespace

Simulator::Simulator() {
  // Make log records carry simulated timestamps. The last-constructed
  // simulator wins, which matches the one-simulator-per-process usage.
  Logger::set_clock(&clock_hook, this);
}

EventId Simulator::schedule_at(TimePoint when, std::function<void()> fn) {
  if (when < now_) when = now_;
  const EventId id = next_id_++;
  queue_.push(Event{when, next_seq_++, id, std::move(fn)});
  return id;
}

EventId Simulator::schedule_after(Duration delay, std::function<void()> fn) {
  if (delay < Duration::zero()) delay = Duration::zero();
  return schedule_at(now_ + delay, std::move(fn));
}

bool Simulator::cancel(EventId id) {
  if (id == kInvalidEventId || id >= next_id_) return false;
  const bool inserted = cancelled_.insert(id).second;
  if (inserted) ++cancelled_live_;
  return inserted;
}

bool Simulator::step(TimePoint deadline) {
  while (!queue_.empty()) {
    if (queue_.top().when > deadline) return false;
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    if (auto it = cancelled_.find(ev.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      --cancelled_live_;
      continue;
    }
    now_ = ev.when;
    ++executed_;
    ev.fn();
    return true;
  }
  return false;
}

std::size_t Simulator::run() {
  std::size_t n = 0;
  while (step(TimePoint::max())) ++n;
  return n;
}

std::size_t Simulator::run_until(TimePoint deadline) {
  std::size_t n = 0;
  while (step(deadline)) ++n;
  if (now_ < deadline) now_ = deadline;
  return n;
}

std::size_t Simulator::run_for(Duration span) { return run_until(now_ + span); }

bool Simulator::run_until_condition(const std::function<bool()>& pred, TimePoint deadline) {
  if (pred()) return true;
  while (step(deadline)) {
    if (pred()) return true;
  }
  return pred();
}

}  // namespace pan::sim
