// RAII timers on top of the Simulator.
//
// Timer: a one-shot, re-armable timer (retransmission timeouts, idle
// timeouts). PeriodicTimer: fires at a fixed period until stopped
// (keep-alives, beacon origination). Both cancel themselves on destruction,
// so owning objects can be destroyed without leaving dangling callbacks.
#pragma once

#include <functional>
#include <memory>

#include "sim/simulator.hpp"

namespace pan::sim {

class Timer {
 public:
  Timer(Simulator& sim, std::function<void()> on_fire);
  ~Timer();

  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  /// (Re)arms the timer to fire `delay` from now; cancels any pending firing.
  void arm(Duration delay);
  /// Arms only if not already pending (useful for RTO-style timers).
  void arm_if_idle(Duration delay);
  void cancel();
  [[nodiscard]] bool pending() const { return pending_; }
  [[nodiscard]] TimePoint deadline() const { return deadline_; }

 private:
  void fire();

  Simulator& sim_;
  std::function<void()> on_fire_;
  EventId event_ = kInvalidEventId;
  bool pending_ = false;
  TimePoint deadline_;
  // Guards against the closure firing after *this is gone: the scheduled
  // closure captures a shared liveness token.
  std::shared_ptr<bool> alive_;
};

class PeriodicTimer {
 public:
  PeriodicTimer(Simulator& sim, std::function<void()> on_fire);
  ~PeriodicTimer();

  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  /// Starts firing every `period`, first firing after `initial_delay`.
  void start(Duration initial_delay, Duration period);
  void stop();
  [[nodiscard]] bool running() const { return running_; }

 private:
  void fire();

  Simulator& sim_;
  std::function<void()> on_fire_;
  Duration period_ = Duration::zero();
  bool running_ = false;
  EventId event_ = kInvalidEventId;
  std::shared_ptr<bool> alive_;
};

}  // namespace pan::sim
