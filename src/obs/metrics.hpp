// Observability: the metrics registry.
//
// A MetricsRegistry is the measurement substrate for the reproduction's
// performance work: every subsystem that wants attribution registers named
// instruments here — monotonic counters, gauges, and fixed-bucket latency
// histograms with percentile snapshots. The registry is deliberately simple
// and deterministic (instruments live in ordered maps, so a JSON dump of the
// same run is byte-identical), single-threaded like the simulator itself,
// and allocation-light on the hot path (instrument lookup returns a stable
// reference that callers cache).
//
// The SKIP proxy owns a registry (or shares one injected through
// ProxyConfig::metrics, which is how the figure benches aggregate across
// per-trial proxies) and serves a dump at the /skip/metrics endpoint.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "util/types.hpp"

namespace pan::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// A value that can go up and down (pool sizes, active revocations, ...).
class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double delta) { value_ += delta; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_ = 0;
};

/// Point-in-time view of a histogram, with the percentiles the paper's
/// latency analysis needs. Percentiles are estimated by linear interpolation
/// inside the containing bucket and clamped to the observed min/max.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  Duration sum = Duration::zero();
  Duration min = Duration::zero();
  Duration max = Duration::zero();
  Duration p50 = Duration::zero();
  Duration p95 = Duration::zero();
  Duration p99 = Duration::zero();

  [[nodiscard]] Duration mean() const {
    return count == 0 ? Duration::zero() : sum / static_cast<std::int64_t>(count);
  }
};

/// Fixed-bucket latency histogram. Bucket bounds are upper-inclusive and
/// ascending; an implicit overflow bucket catches everything above the last
/// bound. Recording is O(log buckets); snapshots are O(buckets).
class Histogram {
 public:
  Histogram() : Histogram(default_latency_buckets()) {}
  explicit Histogram(std::vector<Duration> bounds);

  void record(Duration value);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] HistogramSnapshot snapshot() const;
  /// Percentile in [0, 100], estimated from the buckets.
  [[nodiscard]] Duration percentile(double pct) const;

  [[nodiscard]] const std::vector<Duration>& bounds() const { return bounds_; }
  /// Per-bucket counts; size is bounds().size() + 1 (last = overflow).
  [[nodiscard]] const std::vector<std::uint64_t>& bucket_counts() const { return counts_; }

  /// 10 us .. 60 s in a 1-2-5 progression: spans IPC crossings through
  /// request timeouts.
  [[nodiscard]] static std::vector<Duration> default_latency_buckets();

 private:
  std::vector<Duration> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  Duration sum_ = Duration::zero();
  Duration min_ = Duration::zero();
  Duration max_ = Duration::zero();
};

/// Named instruments. References returned by counter()/gauge()/histogram()
/// remain valid for the registry's lifetime (node-stable maps).
class MetricsRegistry {
 public:
  [[nodiscard]] Counter& counter(const std::string& name) { return counters_[name]; }
  [[nodiscard]] Gauge& gauge(const std::string& name) { return gauges_[name]; }
  [[nodiscard]] Histogram& histogram(const std::string& name) { return histograms_[name]; }

  [[nodiscard]] const Counter* find_counter(const std::string& name) const;
  [[nodiscard]] const Gauge* find_gauge(const std::string& name) const;
  [[nodiscard]] const Histogram* find_histogram(const std::string& name) const;

  /// Counter value, or 0 when the counter was never touched.
  [[nodiscard]] std::uint64_t counter_value(const std::string& name) const;

  [[nodiscard]] const std::map<std::string, Counter>& counters() const { return counters_; }
  [[nodiscard]] const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  [[nodiscard]] const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  /// Full dump: {"counters": {...}, "gauges": {...}, "histograms": {...}}.
  /// Durations are reported in milliseconds; the overflow bucket's bound is
  /// the string "+Inf". Deterministic (name-ordered) output.
  [[nodiscard]] std::string to_json() const;

  /// The flight recorder rides on the registry so every component that
  /// already holds a registry pointer can record control-plane events
  /// without new plumbing. See obs/flight_recorder.hpp.
  [[nodiscard]] FlightRecorder& events() { return events_; }
  [[nodiscard]] const FlightRecorder& events() const { return events_; }

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
  FlightRecorder events_;
};

}  // namespace pan::obs
