// Observability: the metrics registry.
//
// A MetricsRegistry is the measurement substrate for the reproduction's
// performance work: every subsystem that wants attribution registers named
// instruments here — monotonic counters, gauges, and fixed-bucket latency
// histograms with percentile snapshots. The registry is deliberately simple
// and deterministic (instruments live in ordered maps, so a JSON dump of the
// same run is byte-identical), single-threaded like the simulator itself,
// and allocation-light on the hot path (instrument lookup returns a stable
// reference that callers cache).
//
// Histograms are *mergeable*: the default bucket layout is log-linear (nine
// linear sub-buckets per decade), identical for every default histogram in
// the fleet, so merging two histograms is a count-wise sum — associative and
// commutative — and a fleet-merged histogram is bit-identical to a histogram
// fed the pooled samples. Each histogram additionally keeps a bounded set of
// exemplar slots: tail records tagged with a trace id, the one-hop bridge
// from a p99.9 bucket to the offending /skip/trace/<id>.
//
// The SKIP proxy owns a registry (or shares one injected through
// ProxyConfig::metrics, which is how the figure benches aggregate across
// per-trial proxies) and serves a dump at the /skip/metrics endpoint (JSON)
// and /skip/metrics.prom (Prometheus text exposition).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "util/types.hpp"

namespace pan::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// A value that can go up and down (pool sizes, active revocations, ...).
class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double delta) { value_ += delta; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_ = 0;
};

/// Point-in-time view of a histogram, with the percentiles the paper's
/// latency analysis needs. Percentiles are estimated by linear interpolation
/// inside the containing bucket and clamped to the observed min/max.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  Duration sum = Duration::zero();
  Duration min = Duration::zero();
  Duration max = Duration::zero();
  Duration p50 = Duration::zero();
  Duration p95 = Duration::zero();
  Duration p99 = Duration::zero();
  Duration p999 = Duration::zero();

  [[nodiscard]] Duration mean() const {
    return count == 0 ? Duration::zero() : sum / static_cast<std::int64_t>(count);
  }
};

/// One exemplar: a recorded value tagged with the trace that produced it.
/// Slots keep the largest tagged values seen, so the surviving exemplars are
/// exactly the tail outliers an operator wants to drill into.
struct Exemplar {
  Duration value = Duration::zero();
  std::uint64_t trace_id = 0;
  TimePoint at;
};

/// Fixed-bucket latency histogram. Bucket bounds are upper-inclusive and
/// ascending; an implicit overflow bucket catches everything above the last
/// bound. Recording is O(log buckets) and allocation-free; snapshots are
/// O(buckets).
class Histogram {
 public:
  /// Bounded exemplar slots per histogram (fixed array: no allocation).
  static constexpr std::size_t kExemplarSlots = 4;

  Histogram() : Histogram(default_latency_buckets()) {}
  explicit Histogram(std::vector<Duration> bounds);

  void record(Duration value);
  /// Records a value and offers it as an exemplar tagged with `trace_id`
  /// (0 = untagged: plain record). A slot is claimed when the value exceeds
  /// the smallest currently held exemplar — largest values win.
  void record(Duration value, std::uint64_t trace_id, TimePoint at);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] Duration sum() const { return sum_; }
  [[nodiscard]] HistogramSnapshot snapshot() const;
  /// Percentile in [0, 100], estimated from the buckets.
  [[nodiscard]] Duration percentile(double pct) const;

  [[nodiscard]] const std::vector<Duration>& bounds() const { return bounds_; }
  /// Per-bucket counts; size is bounds().size() + 1 (last = overflow).
  [[nodiscard]] const std::vector<std::uint64_t>& bucket_counts() const { return counts_; }

  /// Merges `other` into this histogram: count-wise bucket sum, summed
  /// totals, extreme min/max, and the union's largest exemplars. Requires an
  /// identical bucket layout (guaranteed for default-constructed histograms);
  /// returns false — and merges nothing — when the layouts differ.
  /// Associative and commutative: any merge order yields the same state, and
  /// the result is identical to one histogram fed the pooled samples.
  [[nodiscard]] bool merge(const Histogram& other);

  /// The valid exemplars, ordered largest value first.
  [[nodiscard]] std::vector<Exemplar> exemplars() const;

  /// Log-linear default layout: nine linear sub-buckets per decade from
  /// 10 us through 10 s (10,20,...,90 us; 100,200,...,900 us; ...), then
  /// 10..60 s. Within a decade every bucket is one decade-width wide, which
  /// is the merged-percentile error bound the property tests assert. The
  /// layout is universal so any two default histograms merge.
  [[nodiscard]] static std::vector<Duration> default_latency_buckets();

 private:
  void offer_exemplar(Duration value, std::uint64_t trace_id, TimePoint at);

  std::vector<Duration> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  Duration sum_ = Duration::zero();
  Duration min_ = Duration::zero();
  Duration max_ = Duration::zero();
  std::array<Exemplar, kExemplarSlots> exemplars_{};
  std::uint8_t exemplar_count_ = 0;
};

/// Named instruments. References returned by counter()/gauge()/histogram()
/// remain valid for the registry's lifetime (node-stable maps).
class MetricsRegistry {
 public:
  [[nodiscard]] Counter& counter(const std::string& name) { return counters_[name]; }
  [[nodiscard]] Gauge& gauge(const std::string& name) { return gauges_[name]; }
  [[nodiscard]] Histogram& histogram(const std::string& name) { return histograms_[name]; }

  [[nodiscard]] const Counter* find_counter(const std::string& name) const;
  [[nodiscard]] const Gauge* find_gauge(const std::string& name) const;
  [[nodiscard]] const Histogram* find_histogram(const std::string& name) const;

  /// Counter value, or 0 when the counter was never touched.
  [[nodiscard]] std::uint64_t counter_value(const std::string& name) const;

  [[nodiscard]] const std::map<std::string, Counter>& counters() const { return counters_; }
  [[nodiscard]] const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  [[nodiscard]] const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  /// Full dump: {"counters": {...}, "gauges": {...}, "histograms": {...}}.
  /// Durations are reported in milliseconds; the overflow bucket's bound is
  /// the string "+Inf". Deterministic (name-ordered) output. A non-empty
  /// `prefix` keeps only instruments whose name starts with it (the
  /// /skip/metrics?prefix= filter).
  [[nodiscard]] std::string to_json(std::string_view prefix = {}) const;

  /// Prometheus-style text exposition (counters, gauges, histograms with
  /// cumulative le buckets in seconds, OpenMetrics exemplar annotations on
  /// tail buckets). Instrument names are sanitized into the prom grammar
  /// ("proxy.request_total" -> "pan_proxy_request_total"); a name carrying
  /// an embedded "{key=value,...}" suffix becomes prom labels. `base_labels`
  /// are stamped on every series (replica / fleet scope); `prefix` filters
  /// like to_json.
  [[nodiscard]] std::string to_prom(
      std::string_view prefix = {},
      const std::vector<std::pair<std::string, std::string>>& base_labels = {}) const;

  /// The flight recorder rides on the registry so every component that
  /// already holds a registry pointer can record control-plane events
  /// without new plumbing. See obs/flight_recorder.hpp.
  [[nodiscard]] FlightRecorder& events() { return events_; }
  [[nodiscard]] const FlightRecorder& events() const { return events_; }

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
  FlightRecorder events_;
};

/// Sanitizes an instrument name into the prom name grammar
/// `[a-zA-Z_:][a-zA-Z0-9_:]*` with a "pan_" namespace prefix; any embedded
/// "{...}" suffix is split off and returned as label pairs.
[[nodiscard]] std::string prom_name(std::string_view name);
[[nodiscard]] std::vector<std::pair<std::string, std::string>> prom_labels_of(
    std::string_view name);

}  // namespace pan::obs
