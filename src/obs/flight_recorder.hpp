// Observability: the flight recorder.
//
// A fixed-size ring buffer of structured control-plane events — breaker
// trips, brownout transitions, AIMD floor hits, path quarantines, pool
// sheds, fault apply/revert. Metrics count *how often* these happen; the
// flight recorder keeps *the last N in order*, so a failed chaos scenario
// comes with the event sequence that led up to it. The ring is snapshotted
// by GET /skip/debug and attached to any trace that finalizes with a 5xx.
//
// Events also go through util/log at debug level, so a PAN_LOG_LEVEL=debug
// run interleaves them with the rest of the log on the simulator clock.
// Single-threaded like the simulator; "lock-free-ish" here means the ring
// never allocates after construction and recording is O(1).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/types.hpp"

namespace pan::obs {

/// One recorded control-plane event.
struct FlightEvent {
  std::uint64_t seq = 0;  ///< Monotonic; survives ring wrap (gap = dropped).
  TimePoint at;
  std::string component;  ///< "breaker", "overload", "selector", "pool", "fault", "slo", "proxy".
  std::string kind;       ///< e.g. "trip", "brownout-enter", "quarantine".
  std::string detail;     ///< Free-form: origin, path fingerprint, verb args.
};

class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 256;

  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {
    ring_.reserve(capacity_);
  }

  void record(TimePoint at, std::string_view component, std::string_view kind,
              std::string_view detail);

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t size() const { return ring_.size(); }
  [[nodiscard]] std::uint64_t total_recorded() const { return next_seq_; }

  /// Events in recording order, oldest first. O(size) copy.
  [[nodiscard]] std::vector<FlightEvent> snapshot() const;
  /// The most recent `n` events, oldest first.
  [[nodiscard]] std::vector<FlightEvent> last(std::size_t n) const;

  /// `[{"seq":..,"at_ms":..,"component":..,"kind":..,"detail":..},...]`,
  /// oldest first, all strings escaped.
  [[nodiscard]] std::string snapshot_json() const;

 private:
  std::size_t capacity_;
  std::vector<FlightEvent> ring_;  ///< Circular once full; head_ = oldest.
  std::size_t head_ = 0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace pan::obs
