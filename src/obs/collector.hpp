// Observability: the trace collector and exporters.
//
// A TraceCollector assembles spans from every hop of a request (client
// process, reverse proxy) into per-trace span trees, bounded in both
// directions: head sampling by priority class decides up front whether a
// trace is worth keeping (errors, sheds and fallbacks are always kept —
// the decision is revisited at finalize time), and a retention ring caps
// how many finished traces stay resident.
//
// Exports:
//   - chrome_trace_json(): Chrome trace_event JSON ("X" complete events,
//     microsecond timestamps), loadable in about:tracing and Perfetto.
//     Components map to tids under one pid, flight-recorder events attached
//     to a trace become "i" instant events.
//   - spans_jsonl(): one compact JSON object per span, for grep/jq.
// Served by GET /skip/traces (JSONL) and GET /skip/trace/<id> (Chrome JSON,
// single trace); the figure benches dump Chrome JSON per scenario.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "util/types.hpp"

namespace pan::obs {

/// One span as exported: ids, hop component, wall-clock, attributes.
struct CollectedSpan {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;  ///< 0 = root of the trace.
  std::string name;
  std::string component;  ///< "skip-proxy", "revproxy", ...
  TimePoint start;
  Duration duration = Duration::zero();
  std::vector<std::pair<std::string, std::string>> attrs;
};

/// A finished, retained trace: its span tree plus any flight-recorder
/// context attached when it ended badly.
struct TraceRecord {
  std::uint64_t trace_id = 0;
  std::string outcome;
  std::vector<CollectedSpan> spans;
  std::vector<FlightEvent> events;
};

struct CollectorConfig {
  std::size_t max_traces = 128;          ///< Retained finished traces (ring).
  std::size_t max_spans_per_trace = 64;  ///< Excess spans are counted, dropped.
  std::size_t max_pending = 256;         ///< In-flight traces (oldest evicted).
  /// Head-sampling rates per priority class: keep 1 in N. 1 = keep all,
  /// 0 = keep none (errors still force retention at finalize).
  std::uint32_t sample_document = 1;
  std::uint32_t sample_subresource = 1;
  std::uint32_t sample_probe = 4;
};

class TraceCollector {
 public:
  explicit TraceCollector(CollectorConfig config = {}) : config_(config) {}

  /// Head-sampling decision for a new trace of the given priority class
  /// (0 = document, 1 = subresource, 2+ = probe). Deterministic: a
  /// per-class counter keeps every Nth trace.
  [[nodiscard]] bool head_sample(unsigned priority);

  /// Buffers a span under its trace id. Spans arrive from any hop in any
  /// order; sampling is not consulted here (an unsampled trace may still be
  /// forced at finalize by an error), only finalize discards.
  void record_span(CollectedSpan span);

  /// Ends a trace: retains its spans as a TraceRecord when `keep`, discards
  /// them otherwise. Idempotent per trace id (later spans for the same id
  /// would start a new pending entry — bounded by max_pending).
  void finalize(std::uint64_t trace_id, std::string_view outcome, bool keep);

  /// Attaches flight-recorder events to a finished trace (the 5xx auto-dump
  /// path). No-op when the trace was not retained.
  void attach_events(std::uint64_t trace_id, std::vector<FlightEvent> events);

  [[nodiscard]] const TraceRecord* find(std::uint64_t trace_id) const;
  [[nodiscard]] const std::deque<TraceRecord>& traces() const { return done_; }

  /// Chrome trace_event JSON for every retained trace (or one).
  [[nodiscard]] std::string chrome_trace_json() const;
  [[nodiscard]] static std::string chrome_trace_json(const TraceRecord& trace);

  /// One JSON object per span per line, every retained trace, trace order.
  [[nodiscard]] std::string spans_jsonl() const;

  /// {"retained":N,"pending":N,"spans_recorded":N,"spans_dropped":N,
  ///  "sampled_out":N,"evicted":N}
  [[nodiscard]] std::string stats_json() const;

 private:
  static void collect_chrome_events(const TraceRecord& trace, std::map<std::string, int>& tids,
                                    std::vector<std::pair<double, std::string>>& out);
  static std::string wrap_chrome_events(const std::map<std::string, int>& tids,
                                        std::vector<std::pair<double, std::string>> events);
  CollectorConfig config_;
  std::map<std::uint64_t, std::vector<CollectedSpan>> pending_;
  std::deque<std::uint64_t> pending_order_;
  std::deque<TraceRecord> done_;
  std::vector<std::uint64_t> sample_seen_ = {0, 0, 0};
  std::uint64_t spans_recorded_ = 0;
  std::uint64_t spans_dropped_ = 0;
  std::uint64_t sampled_out_ = 0;
  std::uint64_t evicted_ = 0;
};

}  // namespace pan::obs
