// Observability: SLO burn-rate monitoring.
//
// Declarative service-level objectives evaluated over sliding windows on a
// MetricsRegistry, with multi-window burn-rate alerting (the SRE-workbook
// shape): an objective targets a good-event fraction (e.g. 99% of requests
// neither error nor time out); the burn rate is how fast the error budget is
// being consumed (burn 1 = exactly at target, burn 10 = budget gone 10x
// early). An alert fires only when BOTH a short window (fast reaction, noisy
// alone) and a long window (evidence, slow alone) exceed the threshold, and
// clears as soon as the short window recovers — so a transient blip neither
// fires nor wedges the alert on.
//
// The simulator is event-driven with no background ticks (a periodic timer
// would keep Simulator::run() alive forever), so evaluation is explicit:
// callers — the /skip/health endpoint, the chaos bench, tests — call
// evaluate(now) whenever they want fresh verdicts. Samples are cumulative
// counter readings, so sparse evaluation still sees everything in between.
//
// Objectives are either counter-ratio (bad counters / total counters) or
// latency (samples of a histogram above a threshold are bad — e.g. PLT p95:
// target 95% of requests under 2 s).
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "util/types.hpp"

namespace pan::obs {

struct SloObjective {
  std::string name;
  /// Counter-ratio mode: sum(bad_counters) / sum(total_counters).
  std::vector<std::string> bad_counters;
  std::vector<std::string> total_counters;
  /// Latency mode (when `latency_histogram` is set): bad = samples of the
  /// histogram above `latency_threshold`, total = all samples. The threshold
  /// should sit on a bucket bound; it is resolved against the cumulative
  /// bucket counts.
  std::string latency_histogram;
  Duration latency_threshold = Duration::zero();

  double target = 0.99;  ///< Good fraction objective in (0, 1).
  Duration short_window = seconds(5);
  Duration long_window = seconds(30);
  double burn_threshold = 2.0;     ///< Fire when both windows burn >= this.
  std::uint64_t min_events = 10;   ///< Ignore windows with fewer total events.
};

class SloMonitor {
 public:
  explicit SloMonitor(MetricsRegistry& registry) : registry_(registry) {}

  void add(SloObjective objective);
  [[nodiscard]] std::size_t size() const { return states_.size(); }

  /// Samples every objective's counters at `now` and updates alert states.
  /// Fire/clear transitions bump slo.<name>.fired/.cleared counters and
  /// land in the flight recorder.
  void evaluate(TimePoint now);

  [[nodiscard]] bool firing(std::string_view name) const;
  [[nodiscard]] bool any_firing() const;

  /// [{"name":..,"firing":..,"burn_short":..,"burn_long":..,
  ///   "target":..,"fired":N,"cleared":N}, ...]
  [[nodiscard]] std::string snapshot_json() const;

  /// The stock SKIP-proxy objectives: availability (errors + timeouts +
  /// strict-unavailable), shed rate (admission rejects + deadline sheds),
  /// and request latency (proxy.request_total above 2 s).
  [[nodiscard]] static std::vector<SloObjective> default_proxy_objectives();

 private:
  struct Sample {
    TimePoint at;
    double bad = 0;
    double total = 0;
  };
  struct State {
    SloObjective objective;
    std::deque<Sample> samples;
    bool firing = false;
    std::uint64_t fired = 0;
    std::uint64_t cleared = 0;
    double burn_short = 0;
    double burn_long = 0;
  };

  [[nodiscard]] Sample read(const SloObjective& objective, TimePoint now) const;
  /// Burn rate over [now - window, now]; 0 when too few events.
  [[nodiscard]] static double burn_over(const State& state, TimePoint now, Duration window);

  MetricsRegistry& registry_;
  std::vector<State> states_;
};

}  // namespace pan::obs
