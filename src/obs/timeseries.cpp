#include "obs/timeseries.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace pan::obs {

TimeSeriesStore::TimeSeriesStore(const MetricsRegistry& registry, TimeSeriesConfig config,
                                 TimePoint start)
    : registry_(registry), config_(std::move(config)), last_tick_(start) {
  if (config_.retention_slots == 0) config_.retention_slots = 1;
}

std::size_t TimeSeriesStore::retention_slots_for(std::string_view name) const {
  std::size_t slots = config_.retention_slots;
  std::size_t best_len = 0;
  for (const auto& [prefix, override_slots] : config_.retention_overrides) {
    if (prefix.size() >= best_len && strings::starts_with(name, prefix)) {
      best_len = prefix.size();
      slots = std::max<std::size_t>(1, override_slots);
    }
  }
  return slots;
}

void TimeSeriesStore::observe(TimePoint now) {
  if (config_.interval <= Duration::zero()) return;
  // Catch up across every boundary crossed since the last tick. The registry
  // is read at catch-up time, so the first missed slot absorbs the whole
  // accumulated delta and the remaining slots record empty deltas — slot
  // timestamps stay aligned to the interval grid.
  while (now - last_tick_ >= config_.interval) {
    last_tick_ = last_tick_ + config_.interval;
    capture();
  }
}

void TimeSeriesStore::capture() {
  ++ticks_;
  for (const auto& [name, counter] : registry_.counters()) {
    capture_value(name, counter.value());
  }
  for (const auto& [name, histogram] : registry_.histograms()) {
    capture_value(name + ".count", histogram.count());
  }
}

void TimeSeriesStore::capture_value(const std::string& name, std::uint64_t cumulative) {
  auto it = series_.find(name);
  if (it == series_.end()) {
    it = series_.emplace(name, Series{}).first;
    it->second.ring.assign(retention_slots_for(name), 0);
  }
  Series& series = it->second;
  std::uint64_t delta;
  if (cumulative < series.previous) {
    // The instrument restarted (replica bounce): the new cumulative value is
    // everything that happened since, and the base resets with it.
    delta = cumulative;
    ++series.resets;
  } else {
    delta = cumulative - series.previous;
  }
  series.previous = cumulative;
  series.ring[series.head] = delta;
  series.head = (series.head + 1) % series.ring.size();
  series.filled = std::min(series.filled + 1, series.ring.size());
}

SeriesWindow TimeSeriesStore::query(const std::string& name, Duration window) const {
  SeriesWindow out;
  const auto it = series_.find(name);
  if (it == series_.end() || config_.interval <= Duration::zero()) return out;
  const Series& series = it->second;
  out.known = true;
  out.resets = series.resets;
  if (window <= Duration::zero() || series.filled == 0) return out;
  // Ceil-divide: a 250 ms window over 100 ms slots covers 3 slots.
  const std::int64_t interval_ns = config_.interval.nanos();
  std::size_t want =
      static_cast<std::size_t>((window.nanos() + interval_ns - 1) / interval_ns);
  const std::size_t covered_slots = std::min(want, series.filled);
  const std::size_t capacity = series.ring.size();
  for (std::size_t i = 0; i < covered_slots; ++i) {
    const std::size_t slot = (series.head + capacity - 1 - i) % capacity;
    out.delta += series.ring[slot];
  }
  out.covered = config_.interval * static_cast<std::int64_t>(covered_slots);
  if (out.covered > Duration::zero()) {
    out.rate_per_s = static_cast<double>(out.delta) / out.covered.seconds();
  }
  return out;
}

std::string TimeSeriesStore::query_json(std::string_view prefix, Duration window) const {
  std::string out = "{\"interval_ms\":" + strings::format("%.3f", config_.interval.millis()) +
                    ",\"window_ms\":" + strings::format("%.3f", window.millis()) +
                    ",\"ticks\":" + std::to_string(ticks_) + ",\"series\":{";
  bool first = true;
  for (const auto& [name, series] : series_) {
    (void)series;
    if (!prefix.empty() && !strings::starts_with(name, prefix)) continue;
    const SeriesWindow w = query(name, window);
    if (!first) out += ',';
    first = false;
    out += strings::json_quote(name) + ":{\"delta\":" + std::to_string(w.delta) +
           ",\"rate_per_s\":" + strings::format("%.6f", w.rate_per_s) +
           ",\"covered_ms\":" + strings::format("%.3f", w.covered.millis()) +
           ",\"resets\":" + std::to_string(w.resets) + "}";
  }
  out += "}}";
  return out;
}

}  // namespace pan::obs
