#include "obs/trace.hpp"

#include "obs/collector.hpp"
#include "util/strings.hpp"

namespace pan::obs {

std::string TraceContext::to_header() const {
  return strings::format("%016llx-%016llx-%02x",
                         static_cast<unsigned long long>(trace_id),
                         static_cast<unsigned long long>(parent_span_id),
                         sampled ? 1u : 0u);
}

std::optional<TraceContext> parse_trace_context(std::string_view value) {
  const std::vector<std::string_view> fields = strings::split(strings::trim(value), '-');
  if (fields.size() != 3) return std::nullopt;
  if (fields[0].size() != 16 || fields[1].size() != 16 || fields[2].size() != 2) {
    return std::nullopt;
  }
  const auto trace_id = strings::parse_hex_u64(fields[0]);
  const auto parent = strings::parse_hex_u64(fields[1]);
  const auto flags = strings::parse_hex_u64(fields[2]);
  if (!trace_id.ok() || !parent.ok() || !flags.ok()) return std::nullopt;
  if (trace_id.value() == 0) return std::nullopt;
  TraceContext ctx;
  ctx.trace_id = trace_id.value();
  ctx.parent_span_id = parent.value();
  ctx.sampled = (flags.value() & 1) != 0;
  return ctx;
}

void RequestTrace::begin(std::string_view phase) {
  open_.push_back(OpenSpan{std::string(phase), sim_.now(), kHopClient | next_span_seq_++});
}

void RequestTrace::end(std::string_view phase) {
  for (auto it = open_.rbegin(); it != open_.rend(); ++it) {
    if (it->name != phase) continue;
    finished_.push_back(
        SpanRecord{std::move(it->name), it->start, sim_.now() - it->start, it->span_id});
    open_.erase(std::next(it).base());
    return;
  }
}

void RequestTrace::cancel(std::string_view phase) {
  for (auto it = open_.rbegin(); it != open_.rend(); ++it) {
    if (it->name != phase) continue;
    open_.erase(std::next(it).base());
    return;
  }
}

void RequestTrace::end_all() {
  const TimePoint now = sim_.now();
  // Close inner (most recent) spans first so records keep start order.
  while (!open_.empty()) {
    OpenSpan& span = open_.back();
    finished_.push_back(SpanRecord{std::move(span.name), span.start, now - span.start,
                                   span.span_id});
    open_.pop_back();
  }
}

void RequestTrace::add(std::string_view phase, TimePoint start, Duration duration) {
  finished_.push_back(
      SpanRecord{std::string(phase), start, duration, kHopClient | next_span_seq_++});
}

Duration RequestTrace::total(std::string_view phase) const {
  Duration sum = Duration::zero();
  for (const SpanRecord& span : finished_) {
    if (span.name == phase) sum += span.duration;
  }
  return sum;
}

bool RequestTrace::open(std::string_view phase) const {
  return open_span_id(phase) != 0;
}

std::uint64_t RequestTrace::open_span_id(std::string_view phase) const {
  for (auto it = open_.rbegin(); it != open_.rend(); ++it) {
    if (it->name == phase) return it->span_id;
  }
  return 0;
}

void RequestTrace::adopt(const TraceContext& ctx) {
  id_ = ctx.trace_id;
  parent_span_id_ = ctx.parent_span_id;
  sampled_ = ctx.sampled;
}

TraceContext RequestTrace::context(std::uint64_t parent_span) const {
  TraceContext ctx;
  ctx.trace_id = id_;
  ctx.parent_span_id = parent_span == 0 ? root_span_id() : parent_span;
  ctx.sampled = sampled_;
  return ctx;
}

void RequestTrace::set_attribute(std::string_view key, std::string_view value) {
  for (auto& [k, v] : attrs_) {
    if (k == key) {
      v = std::string(value);
      return;
    }
  }
  attrs_.emplace_back(std::string(key), std::string(value));
}

std::string_view RequestTrace::attribute(std::string_view key) const {
  for (const auto& [k, v] : attrs_) {
    if (k == key) return v;
  }
  return {};
}

void RequestTrace::set_outcome(std::string_view outcome) {
  if (outcome_.empty()) outcome_ = std::string(outcome);
}

void RequestTrace::flush_to(MetricsRegistry& registry, std::string_view prefix,
                            std::uint64_t exemplar_trace_id) const {
  for (const SpanRecord& span : finished_) {
    registry.histogram(std::string(prefix) + span.name)
        .record(span.duration, exemplar_trace_id, span.start);
  }
}

void RequestTrace::report_to(TraceCollector& collector, std::string_view component,
                             TimePoint end) const {
  CollectedSpan root;
  root.trace_id = id_;
  root.span_id = root_span_id();
  root.parent_id = parent_span_id_;
  root.name = "request";
  root.component = std::string(component);
  root.start = created_at_;
  root.duration = end - created_at_;
  root.attrs = attrs_;
  if (!outcome_.empty()) root.attrs.emplace_back("outcome", outcome_);
  collector.record_span(std::move(root));

  for (const SpanRecord& span : finished_) {
    CollectedSpan out;
    out.trace_id = id_;
    out.span_id = span.span_id;
    out.parent_id = root_span_id();
    out.name = span.name;
    out.component = std::string(component);
    out.start = span.start;
    out.duration = span.duration;
    collector.record_span(std::move(out));
  }
}

std::string RequestTrace::to_string() const {
  std::string out;
  for (const SpanRecord& span : finished_) {
    if (!out.empty()) out += ' ';
    out += span.name + "=" + strings::format("%.2fms", span.duration.millis());
  }
  return out;
}

}  // namespace pan::obs
