#include "obs/trace.hpp"

#include "util/strings.hpp"

namespace pan::obs {

void RequestTrace::begin(std::string_view phase) {
  open_.push_back(OpenSpan{std::string(phase), sim_.now()});
}

void RequestTrace::end(std::string_view phase) {
  for (auto it = open_.rbegin(); it != open_.rend(); ++it) {
    if (it->name != phase) continue;
    finished_.push_back(SpanRecord{std::move(it->name), it->start, sim_.now() - it->start});
    open_.erase(std::next(it).base());
    return;
  }
}

void RequestTrace::cancel(std::string_view phase) {
  for (auto it = open_.rbegin(); it != open_.rend(); ++it) {
    if (it->name != phase) continue;
    open_.erase(std::next(it).base());
    return;
  }
}

void RequestTrace::end_all() {
  const TimePoint now = sim_.now();
  // Close inner (most recent) spans first so records keep start order.
  while (!open_.empty()) {
    OpenSpan& span = open_.back();
    finished_.push_back(SpanRecord{std::move(span.name), span.start, now - span.start});
    open_.pop_back();
  }
}

void RequestTrace::add(std::string_view phase, TimePoint start, Duration duration) {
  finished_.push_back(SpanRecord{std::string(phase), start, duration});
}

Duration RequestTrace::total(std::string_view phase) const {
  Duration sum = Duration::zero();
  for (const SpanRecord& span : finished_) {
    if (span.name == phase) sum += span.duration;
  }
  return sum;
}

bool RequestTrace::open(std::string_view phase) const {
  for (const OpenSpan& span : open_) {
    if (span.name == phase) return true;
  }
  return false;
}

void RequestTrace::flush_to(MetricsRegistry& registry, std::string_view prefix) const {
  for (const SpanRecord& span : finished_) {
    registry.histogram(std::string(prefix) + span.name).record(span.duration);
  }
}

std::string RequestTrace::to_string() const {
  std::string out;
  for (const SpanRecord& span : finished_) {
    if (!out.empty()) out += ' ';
    out += span.name + "=" + strings::format("%.2fms", span.duration.millis());
  }
  return out;
}

}  // namespace pan::obs
