#include "obs/slo.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace pan::obs {

void SloMonitor::add(SloObjective objective) {
  State state;
  state.objective = std::move(objective);
  states_.push_back(std::move(state));
}

SloMonitor::Sample SloMonitor::read(const SloObjective& objective, TimePoint now) const {
  Sample sample;
  sample.at = now;
  if (!objective.latency_histogram.empty()) {
    const Histogram* histogram = registry_.find_histogram(objective.latency_histogram);
    if (histogram == nullptr) return sample;
    sample.total = static_cast<double>(histogram->count());
    // Bad = samples above the threshold: total minus the cumulative count of
    // buckets whose (upper-inclusive) bound is within the threshold.
    std::uint64_t within = 0;
    const auto& bounds = histogram->bounds();
    const auto& counts = histogram->bucket_counts();
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      if (bounds[i] > objective.latency_threshold) break;
      within += counts[i];
    }
    sample.bad = sample.total - static_cast<double>(within);
    return sample;
  }
  for (const std::string& name : objective.bad_counters) {
    sample.bad += static_cast<double>(registry_.counter_value(name));
  }
  for (const std::string& name : objective.total_counters) {
    sample.total += static_cast<double>(registry_.counter_value(name));
  }
  return sample;
}

double SloMonitor::burn_over(const State& state, TimePoint now, Duration window) {
  if (state.samples.empty()) return 0;
  const TimePoint cutoff = now - window;
  // Baseline: the latest sample at or before the window start (counters are
  // cumulative, so the delta from it covers exactly the window). Fall back
  // to the oldest sample when history is shorter than the window.
  const Sample* baseline = &state.samples.front();
  for (const Sample& sample : state.samples) {
    if (sample.at > cutoff) break;
    baseline = &sample;
  }
  const Sample& latest = state.samples.back();
  const double total = latest.total - baseline->total;
  const double bad = latest.bad - baseline->bad;
  if (total < static_cast<double>(state.objective.min_events)) return 0;
  const double budget = 1.0 - state.objective.target;
  if (budget <= 0) return 0;
  return (bad / total) / budget;
}

void SloMonitor::evaluate(TimePoint now) {
  for (State& state : states_) {
    // Drop samples that can no longer serve as a long-window baseline
    // (keep one sample at or before the cutoff).
    const TimePoint cutoff = now - state.objective.long_window;
    while (state.samples.size() >= 2 && state.samples[1].at <= cutoff) {
      state.samples.pop_front();
    }
    state.samples.push_back(read(state.objective, now));

    state.burn_short = burn_over(state, now, state.objective.short_window);
    state.burn_long = burn_over(state, now, state.objective.long_window);

    const std::string prefix = "slo." + state.objective.name;
    if (!state.firing && state.burn_short >= state.objective.burn_threshold &&
        state.burn_long >= state.objective.burn_threshold) {
      state.firing = true;
      ++state.fired;
      registry_.counter(prefix + ".fired").inc();
      registry_.events().record(
          now, "slo", "fire",
          strings::format("%s burn short=%.2f long=%.2f", state.objective.name.c_str(),
                          state.burn_short, state.burn_long));
    } else if (state.firing && state.burn_short < state.objective.burn_threshold) {
      state.firing = false;
      ++state.cleared;
      registry_.counter(prefix + ".cleared").inc();
      registry_.events().record(
          now, "slo", "clear",
          strings::format("%s burn short=%.2f long=%.2f", state.objective.name.c_str(),
                          state.burn_short, state.burn_long));
    }
    registry_.gauge(prefix + ".firing").set(state.firing ? 1 : 0);
    registry_.gauge(prefix + ".burn_short").set(state.burn_short);
    registry_.gauge(prefix + ".burn_long").set(state.burn_long);
  }
}

bool SloMonitor::firing(std::string_view name) const {
  for (const State& state : states_) {
    if (state.objective.name == name) return state.firing;
  }
  return false;
}

bool SloMonitor::any_firing() const {
  return std::any_of(states_.begin(), states_.end(),
                     [](const State& state) { return state.firing; });
}

std::string SloMonitor::snapshot_json() const {
  std::string out = "[";
  bool first = true;
  for (const State& state : states_) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":" + strings::json_quote(state.objective.name);
    out += strings::format(
        ",\"firing\":%s,\"burn_short\":%.3f,\"burn_long\":%.3f,\"target\":%.4f,"
        "\"fired\":%llu,\"cleared\":%llu}",
        state.firing ? "true" : "false", state.burn_short, state.burn_long,
        state.objective.target, static_cast<unsigned long long>(state.fired),
        static_cast<unsigned long long>(state.cleared));
  }
  out += "]";
  return out;
}

std::vector<SloObjective> SloMonitor::default_proxy_objectives() {
  std::vector<SloObjective> objectives;

  SloObjective availability;
  availability.name = "availability";
  availability.bad_counters = {"proxy.errors", "proxy.timeouts", "proxy.strict_unavailable"};
  availability.total_counters = {"proxy.requests"};
  availability.target = 0.9;
  availability.burn_threshold = 2.0;  // fires at >20% bad over both windows
  objectives.push_back(std::move(availability));

  SloObjective shed;
  shed.name = "shed-rate";
  shed.bad_counters = {"overload.rejected_rate", "overload.rejected_capacity",
                       "overload.shed_requests"};
  shed.total_counters = {"proxy.requests"};
  shed.target = 0.9;
  shed.burn_threshold = 2.0;
  objectives.push_back(std::move(shed));

  SloObjective latency;
  latency.name = "plt-p95";
  latency.latency_histogram = "proxy.request_total";
  latency.latency_threshold = seconds(2);
  latency.target = 0.95;
  latency.burn_threshold = 2.0;  // fires when >10% of requests run over 2 s
  objectives.push_back(std::move(latency));

  return objectives;
}

}  // namespace pan::obs
