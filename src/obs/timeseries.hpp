// Observability: time-series deltas over a MetricsRegistry.
//
// A TimeSeriesStore turns the registry's lifetime-cumulative counters (and
// histogram counts) into bounded rings of periodic delta snapshots, so "shed
// rate over the last second" or "access failovers in the last 5 s" are
// queryable instead of requiring two manual dumps and a subtraction.
//
// Ticking is *lazy*: there is no self-rescheduling sim event (which would
// keep Simulator::run() from ever draining). Callers invoke observe(now) at
// natural touch points — request completion, endpoint reads, the fleet's
// probe heartbeat — and the store catches up on every interval boundary
// crossed since the last observation. A catch-up attributes the whole
// accumulated delta to the first missed slot and records empty deltas for
// the rest, which keeps slot timestamps honest.
//
// Counter resets (a replica restart re-creating its registry) are detected
// per series: a cumulative value below the previous one restarts the series
// base at zero, so the recorded delta is the new value — never negative.
//
// Retention is per-series: ring capacity is picked at series creation from
// the longest matching prefix override (e.g. keep more history for "slo."
// than for "proxy.phase."), defaulting to TimeSeriesConfig::retention_slots.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "util/types.hpp"

namespace pan::obs {

struct TimeSeriesConfig {
  /// Delta snapshot period (<= 0 disables the store entirely).
  Duration interval = milliseconds(100);
  /// Ring slots kept per series (default retention = interval * slots).
  std::size_t retention_slots = 64;
  /// Longest-prefix retention overrides: ("slo.", 256) keeps 256 slots for
  /// every series whose name starts with "slo.".
  std::vector<std::pair<std::string, std::size_t>> retention_overrides;
};

/// Result of a windowed query. `covered` is the stretch of history that
/// actually backed the answer: a window larger than the ring's retention is
/// clamped, and callers can tell from covered < window.
struct SeriesWindow {
  bool known = false;          ///< Series exists (was ever captured).
  std::uint64_t delta = 0;     ///< Sum of deltas over the covered slots.
  double rate_per_s = 0;       ///< delta / covered seconds (0 when empty).
  Duration covered = Duration::zero();
  std::uint64_t resets = 0;    ///< Counter restarts seen over the series' life.
};

class TimeSeriesStore {
 public:
  TimeSeriesStore(const MetricsRegistry& registry, TimeSeriesConfig config,
                  TimePoint start);

  /// Catches up on every interval boundary in (last, now]. O(1) when no
  /// boundary was crossed; cheap enough to call per request.
  void observe(TimePoint now);

  /// Delta/rate over the trailing `window` ending at the last captured tick.
  /// Counter series are named as in the registry; a histogram named H
  /// contributes the series "H.count".
  [[nodiscard]] SeriesWindow query(const std::string& name, Duration window) const;

  /// {"interval_ms":..,"window_ms":..,"series":{name:{"delta":..,
  /// "rate_per_s":..,"covered_ms":..,"resets":..}}} for every series matching
  /// `prefix` (deterministic name order).
  [[nodiscard]] std::string query_json(std::string_view prefix, Duration window) const;

  [[nodiscard]] std::size_t series_count() const { return series_.size(); }
  [[nodiscard]] std::uint64_t ticks() const { return ticks_; }
  [[nodiscard]] const TimeSeriesConfig& config() const { return config_; }
  /// Ring capacity a series with this name gets (prefix overrides applied).
  [[nodiscard]] std::size_t retention_slots_for(std::string_view name) const;

 private:
  struct Series {
    std::uint64_t previous = 0;       ///< Cumulative value at the last capture.
    std::uint64_t resets = 0;
    std::vector<std::uint64_t> ring;  ///< Fixed capacity, filled circularly.
    std::size_t head = 0;             ///< Next write position.
    std::size_t filled = 0;           ///< Slots holding real data (<= capacity).
  };

  void capture();
  void capture_value(const std::string& name, std::uint64_t cumulative);

  const MetricsRegistry& registry_;
  TimeSeriesConfig config_;
  TimePoint last_tick_;
  std::uint64_t ticks_ = 0;
  std::map<std::string, Series> series_;
};

}  // namespace pan::obs
