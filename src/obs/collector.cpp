#include "obs/collector.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace pan::obs {

namespace {

std::string hex_id(std::uint64_t id) {
  return strings::format("0x%016llx", static_cast<unsigned long long>(id));
}

void append_attrs(std::string& out, const std::vector<std::pair<std::string, std::string>>& attrs) {
  for (const auto& [key, value] : attrs) {
    out += ',' + strings::json_quote(key) + ':' + strings::json_quote(value);
  }
}

}  // namespace

bool TraceCollector::head_sample(unsigned priority) {
  const std::size_t cls = priority >= 2 ? 2 : priority;
  const std::uint32_t rate = cls == 0   ? config_.sample_document
                             : cls == 1 ? config_.sample_subresource
                                        : config_.sample_probe;
  const std::uint64_t seen = sample_seen_[cls]++;
  if (rate == 0) return false;
  return seen % rate == 0;
}

void TraceCollector::record_span(CollectedSpan span) {
  ++spans_recorded_;
  auto it = pending_.find(span.trace_id);
  if (it == pending_.end()) {
    // New in-flight trace; evict the oldest when over budget so a hop that
    // keeps emitting after finalize (late reverse-proxy spans) stays bounded.
    while (pending_order_.size() >= config_.max_pending) {
      pending_.erase(pending_order_.front());
      pending_order_.pop_front();
      ++evicted_;
    }
    pending_order_.push_back(span.trace_id);
    it = pending_.emplace(span.trace_id, std::vector<CollectedSpan>{}).first;
  }
  if (it->second.size() >= config_.max_spans_per_trace) {
    ++spans_dropped_;
    return;
  }
  it->second.push_back(std::move(span));
}

void TraceCollector::finalize(std::uint64_t trace_id, std::string_view outcome, bool keep) {
  const auto it = pending_.find(trace_id);
  if (it == pending_.end()) return;
  std::vector<CollectedSpan> spans = std::move(it->second);
  pending_.erase(it);
  pending_order_.erase(
      std::find(pending_order_.begin(), pending_order_.end(), trace_id));
  if (!keep) {
    ++sampled_out_;
    return;
  }
  TraceRecord record;
  record.trace_id = trace_id;
  record.outcome = std::string(outcome);
  // Spans arrive in completion order; sort by start (stable, so equal starts
  // keep arrival order) so exports read chronologically.
  std::stable_sort(spans.begin(), spans.end(),
                   [](const CollectedSpan& a, const CollectedSpan& b) { return a.start < b.start; });
  record.spans = std::move(spans);
  done_.push_back(std::move(record));
  while (done_.size() > config_.max_traces) {
    done_.pop_front();
    ++evicted_;
  }
}

void TraceCollector::attach_events(std::uint64_t trace_id, std::vector<FlightEvent> events) {
  for (auto it = done_.rbegin(); it != done_.rend(); ++it) {
    if (it->trace_id != trace_id) continue;
    it->events = std::move(events);
    return;
  }
}

const TraceRecord* TraceCollector::find(std::uint64_t trace_id) const {
  for (auto it = done_.rbegin(); it != done_.rend(); ++it) {
    if (it->trace_id == trace_id) return &*it;
  }
  return nullptr;
}

void TraceCollector::collect_chrome_events(const TraceRecord& trace,
                                           std::map<std::string, int>& tids,
                                           std::vector<std::pair<double, std::string>>& out) {
  for (const CollectedSpan& span : trace.spans) {
    auto [it, inserted] = tids.emplace(span.component, 0);
    if (inserted) it->second = static_cast<int>(tids.size());
    const double ts = span.start.nanos() / 1e3;  // trace_event wants microseconds
    std::string event = "{\"ph\":\"X\",\"name\":" + strings::json_quote(span.name);
    event += ",\"cat\":" + strings::json_quote(span.component);
    event += strings::format(",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%d", ts,
                             span.duration.nanos() / 1e3, it->second);
    event += ",\"args\":{\"trace\":" + strings::json_quote(hex_id(span.trace_id));
    event += ",\"span\":" + strings::json_quote(hex_id(span.span_id));
    event += ",\"parent\":" + strings::json_quote(hex_id(span.parent_id));
    append_attrs(event, span.attrs);
    event += "}}";
    out.emplace_back(ts, std::move(event));
  }
  for (const FlightEvent& fe : trace.events) {
    const double ts = fe.at.nanos() / 1e3;
    std::string event = "{\"ph\":\"i\",\"s\":\"g\",\"name\":" +
                        strings::json_quote(fe.component + ":" + fe.kind);
    event += strings::format(",\"ts\":%.3f,\"pid\":1,\"tid\":0", ts);
    event += ",\"args\":{\"trace\":" + strings::json_quote(hex_id(trace.trace_id));
    event += ",\"detail\":" + strings::json_quote(fe.detail) + "}}";
    out.emplace_back(ts, std::move(event));
  }
}

std::string TraceCollector::wrap_chrome_events(const std::map<std::string, int>& tids,
                                               std::vector<std::pair<double, std::string>> events) {
  std::stable_sort(events.begin(), events.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const auto& [component, tid] : tids) {
    if (!first) out += ',';
    first = false;
    out += strings::format("{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":%d", tid);
    out += ",\"args\":{\"name\":" + strings::json_quote(component) + "}}";
  }
  for (const auto& [ts, event] : events) {
    if (!first) out += ',';
    first = false;
    out += event;
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

std::string TraceCollector::chrome_trace_json() const {
  std::map<std::string, int> tids;
  std::vector<std::pair<double, std::string>> events;
  for (const TraceRecord& trace : done_) collect_chrome_events(trace, tids, events);
  return wrap_chrome_events(tids, std::move(events));
}

std::string TraceCollector::chrome_trace_json(const TraceRecord& trace) {
  std::map<std::string, int> tids;
  std::vector<std::pair<double, std::string>> events;
  collect_chrome_events(trace, tids, events);
  return wrap_chrome_events(tids, std::move(events));
}

std::string TraceCollector::spans_jsonl() const {
  std::string out;
  for (const TraceRecord& trace : done_) {
    for (const CollectedSpan& span : trace.spans) {
      out += "{\"trace\":" + strings::json_quote(hex_id(span.trace_id));
      out += ",\"span\":" + strings::json_quote(hex_id(span.span_id));
      out += ",\"parent\":" + strings::json_quote(hex_id(span.parent_id));
      out += ",\"name\":" + strings::json_quote(span.name);
      out += ",\"component\":" + strings::json_quote(span.component);
      out += strings::format(",\"start_ms\":%.6f,\"dur_ms\":%.6f", span.start.millis(),
                             span.duration.millis());
      out += ",\"outcome\":" + strings::json_quote(trace.outcome);
      append_attrs(out, span.attrs);
      out += "}\n";
    }
  }
  return out;
}

std::string TraceCollector::stats_json() const {
  return strings::format(
      "{\"retained\":%zu,\"pending\":%zu,\"spans_recorded\":%llu,\"spans_dropped\":%llu,"
      "\"sampled_out\":%llu,\"evicted\":%llu}",
      done_.size(), pending_.size(), static_cast<unsigned long long>(spans_recorded_),
      static_cast<unsigned long long>(spans_dropped_),
      static_cast<unsigned long long>(sampled_out_),
      static_cast<unsigned long long>(evicted_));
}

}  // namespace pan::obs
