#include "obs/flight_recorder.hpp"

#include "util/log.hpp"
#include "util/strings.hpp"

namespace pan::obs {

void FlightRecorder::record(TimePoint at, std::string_view component, std::string_view kind,
                            std::string_view detail) {
  PAN_DEBUG("flight") << component << ' ' << kind << (detail.empty() ? "" : " ") << detail;
  FlightEvent event{next_seq_++, at, std::string(component), std::string(kind),
                    std::string(detail)};
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
    return;
  }
  ring_[head_] = std::move(event);
  head_ = (head_ + 1) % capacity_;
}

std::vector<FlightEvent> FlightRecorder::snapshot() const {
  std::vector<FlightEvent> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

std::vector<FlightEvent> FlightRecorder::last(std::size_t n) const {
  std::vector<FlightEvent> all = snapshot();
  if (all.size() > n) all.erase(all.begin(), all.end() - static_cast<std::ptrdiff_t>(n));
  return all;
}

std::string FlightRecorder::snapshot_json() const {
  std::string out = "[";
  bool first = true;
  for (const FlightEvent& event : snapshot()) {
    if (!first) out += ',';
    first = false;
    out += "{\"seq\":" + std::to_string(event.seq);
    out += strings::format(",\"at_ms\":%.3f", event.at.millis());
    out += ",\"component\":" + strings::json_quote(event.component);
    out += ",\"kind\":" + strings::json_quote(event.kind);
    out += ",\"detail\":" + strings::json_quote(event.detail) + "}";
  }
  out += "]";
  return out;
}

}  // namespace pan::obs
