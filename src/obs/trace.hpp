// Observability: request-scoped tracing.
//
// A RequestTrace follows one request through the stack — browser, extension,
// SKIP proxy, transport — and records a named span per phase (ipc, detect,
// select, handshake, fetch, fallback), timed on the simulator clock. The
// callback-driven request path cannot use RAII scoping, so spans are opened
// and closed explicitly; end() of a span that is not open is a harmless
// no-op, and end_all() truncates whatever is still open when a request is
// finalized early (timeout, error).
//
// Finished spans are flushed into a MetricsRegistry as per-phase latency
// histograms and attached to the ProxyResult so callers (the browser, the
// figure benches) can attribute where a request's time went.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/simulator.hpp"

namespace pan::obs {

/// One completed span of a request trace.
struct SpanRecord {
  std::string name;
  TimePoint start;
  Duration duration = Duration::zero();

  [[nodiscard]] TimePoint end() const { return start + duration; }
};

class RequestTrace {
 public:
  RequestTrace(sim::Simulator& sim, std::uint64_t id)
      : sim_(sim), id_(id), created_at_(sim.now()) {}

  [[nodiscard]] std::uint64_t id() const { return id_; }
  [[nodiscard]] TimePoint created_at() const { return created_at_; }

  /// Opens a span. Phases may repeat (e.g. the two IPC crossings of one
  /// request each contribute an "ipc" span) and may overlap.
  void begin(std::string_view phase);
  /// Closes the most recently opened span with this name; no-op when no such
  /// span is open (end() is idempotent: a double close records nothing).
  void end(std::string_view phase);
  /// Discards the most recently opened span with this name without recording
  /// it — for abandoned work (e.g. a handshake that failed) whose duration
  /// would otherwise skew the phase histogram. No-op when not open.
  void cancel(std::string_view phase);
  /// Closes every open span (request finalized early).
  void end_all();
  /// Appends an externally timed span.
  void add(std::string_view phase, TimePoint start, Duration duration);

  [[nodiscard]] const std::vector<SpanRecord>& spans() const { return finished_; }
  /// Sum of finished spans named `phase`.
  [[nodiscard]] Duration total(std::string_view phase) const;
  [[nodiscard]] bool open(std::string_view phase) const;

  /// Records every finished span into `registry` as a sample of the
  /// histogram named `<prefix><phase>`.
  void flush_to(MetricsRegistry& registry, std::string_view prefix) const;

  /// "detect=1.20ms select=0.35ms fetch=12.41ms" (finished spans, in order).
  [[nodiscard]] std::string to_string() const;

 private:
  struct OpenSpan {
    std::string name;
    TimePoint start;
  };

  sim::Simulator& sim_;
  std::uint64_t id_;
  TimePoint created_at_;
  std::vector<OpenSpan> open_;
  std::vector<SpanRecord> finished_;
};

using TracePtr = std::shared_ptr<RequestTrace>;

}  // namespace pan::obs
