// Observability: request-scoped tracing.
//
// A RequestTrace follows one request through the stack — browser, extension,
// SKIP proxy, transport — and records a named span per phase (ipc, detect,
// select, handshake, fetch, fallback), timed on the simulator clock. The
// callback-driven request path cannot use RAII scoping, so spans are opened
// and closed explicitly; end() of a span that is not open is a harmless
// no-op, and end_all() truncates whatever is still open when a request is
// finalized early (timeout, error).
//
// Traces cross process hops: the extension injects an X-Skip-Trace header
// (trace id, parent span id, sampled bit — a W3C-traceparent shape) that the
// SKIP proxy forwards and the reverse proxy honours, so the reverse-proxy
// and backend spans parent correctly under the originating request. Span ids
// are hop-prefixed (top byte = hop number) so two hops never collide without
// coordination.
//
// Finished spans are flushed into a MetricsRegistry as per-phase latency
// histograms, attached to the ProxyResult, and reported to a TraceCollector
// (obs/collector.hpp) which assembles the cross-hop span tree and exports
// Chrome trace_event JSON.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/simulator.hpp"

namespace pan::obs {

class TraceCollector;

/// The cross-hop propagation context carried by the X-Skip-Trace header:
/// `<16-hex trace id>-<16-hex parent span id>-<2-hex flags>` (flags bit 0 =
/// sampled), e.g. "000000000000002a-0100000000000003-01".
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span_id = 0;
  bool sampled = true;

  [[nodiscard]] std::string to_header() const;
};

inline constexpr std::string_view kTraceHeader = "X-Skip-Trace";

/// Parses an X-Skip-Trace header value; nullopt on any malformation (wrong
/// field count, bad hex, zero trace id) — a broken header starts a fresh
/// single-hop trace rather than poisoning the tree.
[[nodiscard]] std::optional<TraceContext> parse_trace_context(std::string_view value);

/// One completed span of a request trace.
struct SpanRecord {
  std::string name;
  TimePoint start;
  Duration duration = Duration::zero();
  std::uint64_t span_id = 0;

  [[nodiscard]] TimePoint end() const { return start + duration; }
};

class RequestTrace {
 public:
  /// Span ids minted by a RequestTrace live in hop 1 (the client process:
  /// browser + extension + SKIP proxy). The reverse proxy mints ids in hop 2.
  static constexpr std::uint64_t kHopClient = 1ULL << 56;

  RequestTrace(sim::Simulator& sim, std::uint64_t id)
      : sim_(sim), id_(id), created_at_(sim.now()) {}

  [[nodiscard]] std::uint64_t id() const { return id_; }
  [[nodiscard]] TimePoint created_at() const { return created_at_; }

  /// The id of the implicit root ("request") span that phase spans parent to.
  [[nodiscard]] std::uint64_t root_span_id() const { return kHopClient | 1; }

  /// Opens a span. Phases may repeat (e.g. the two IPC crossings of one
  /// request each contribute an "ipc" span) and may overlap.
  void begin(std::string_view phase);
  /// Closes the most recently opened span with this name; no-op when no such
  /// span is open (end() is idempotent: a double close records nothing).
  void end(std::string_view phase);
  /// Discards the most recently opened span with this name without recording
  /// it — for abandoned work (e.g. a handshake that failed) whose duration
  /// would otherwise skew the phase histogram. No-op when not open.
  void cancel(std::string_view phase);
  /// Closes every open span (request finalized early).
  void end_all();
  /// Appends an externally timed span.
  void add(std::string_view phase, TimePoint start, Duration duration);

  [[nodiscard]] const std::vector<SpanRecord>& spans() const { return finished_; }
  /// Sum of finished spans named `phase`.
  [[nodiscard]] Duration total(std::string_view phase) const;
  [[nodiscard]] bool open(std::string_view phase) const;
  /// Span id of the most recently opened span with this name; 0 if not open.
  [[nodiscard]] std::uint64_t open_span_id(std::string_view phase) const;

  // -- cross-hop context ----------------------------------------------------

  /// Adopts an upstream context: the trace id and sampled bit come from the
  /// caller's hop and the root span parents under `ctx.parent_span_id`.
  void adopt(const TraceContext& ctx);
  /// The context to propagate downstream, parenting the next hop under
  /// `parent_span` (typically the open "fetch" span).
  [[nodiscard]] TraceContext context(std::uint64_t parent_span) const;

  void set_sampled(bool sampled) { sampled_ = sampled; }
  [[nodiscard]] bool sampled() const { return sampled_; }
  [[nodiscard]] std::uint64_t parent_span() const { return parent_span_id_; }

  // -- annotations ----------------------------------------------------------

  /// Sets a trace-level attribute (path fingerprint, fallback reason,
  /// breaker state, ...) surfaced on the root span in exports. Last write to
  /// a key wins.
  void set_attribute(std::string_view key, std::string_view value);
  [[nodiscard]] const std::vector<std::pair<std::string, std::string>>& attributes() const {
    return attrs_;
  }
  [[nodiscard]] std::string_view attribute(std::string_view key) const;

  /// Terminal outcome (ok / timeout / shed / breaker-open / fault / blocked).
  /// First writer wins: the code that *decided* the fate of the request sets
  /// it; later generic finalization can't overwrite it.
  void set_outcome(std::string_view outcome);
  [[nodiscard]] std::string_view outcome() const { return outcome_; }

  /// Records every finished span into `registry` as a sample of the
  /// histogram named `<prefix><phase>`. When `exemplar_trace_id` is nonzero
  /// each sample is also offered as an exemplar under that trace id — pass
  /// the trace's id only when the trace is being *kept* by the collector, so
  /// a surviving exemplar always resolves at /skip/trace/<id>.
  void flush_to(MetricsRegistry& registry, std::string_view prefix,
                std::uint64_t exemplar_trace_id = 0) const;

  /// Emits the root span plus all finished phase spans to the collector,
  /// tagged with `component`. The root span runs created_at() .. `end` and
  /// carries the attributes and outcome. Call after end_all().
  void report_to(TraceCollector& collector, std::string_view component, TimePoint end) const;

  /// "detect=1.20ms select=0.35ms fetch=12.41ms" (finished spans, in order).
  [[nodiscard]] std::string to_string() const;

 private:
  struct OpenSpan {
    std::string name;
    TimePoint start;
    std::uint64_t span_id;
  };

  sim::Simulator& sim_;
  std::uint64_t id_;
  TimePoint created_at_;
  std::vector<OpenSpan> open_;
  std::vector<SpanRecord> finished_;
  std::uint64_t parent_span_id_ = 0;  ///< Adopted upstream parent; 0 = root.
  bool sampled_ = true;
  std::uint64_t next_span_seq_ = 2;  ///< 1 is the root span.
  std::vector<std::pair<std::string, std::string>> attrs_;
  std::string outcome_;
};

using TracePtr = std::shared_ptr<RequestTrace>;

}  // namespace pan::obs
