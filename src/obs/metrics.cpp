#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>

#include "util/strings.hpp"

namespace pan::obs {

namespace {

void append_json_string(std::string& out, std::string_view s) {
  out += strings::json_quote(s);
}

void append_ms(std::string& out, Duration d) { out += strings::format("%.6f", d.millis()); }

}  // namespace

Histogram::Histogram(std::vector<Duration> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  counts_.assign(bounds_.size() + 1, 0);
}

std::vector<Duration> Histogram::default_latency_buckets() {
  std::vector<Duration> bounds;
  // 1-2-5 decades from 10 us up to 60 s.
  for (const std::int64_t decade :
       {10'000LL, 100'000LL, 1'000'000LL, 10'000'000LL, 100'000'000LL, 1'000'000'000LL,
        10'000'000'000LL}) {
    bounds.push_back(Duration{decade});
    bounds.push_back(Duration{decade * 2});
    bounds.push_back(Duration{decade * 5});
  }
  bounds.push_back(Duration{60'000'000'000LL});
  return bounds;
}

void Histogram::record(Duration value) {
  if (value < Duration::zero()) value = Duration::zero();
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  if (count_ == 0 || value < min_) min_ = value;
  if (count_ == 0 || value > max_) max_ = value;
  sum_ += value;
  ++count_;
}

Duration Histogram::percentile(double pct) const {
  if (count_ == 0) return Duration::zero();
  pct = std::clamp(pct, 0.0, 100.0);
  const double target = pct / 100.0 * static_cast<double>(count_);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const std::uint64_t before = cumulative;
    cumulative += counts_[i];
    if (static_cast<double>(cumulative) < target) continue;
    // Interpolate within [lower, upper] of bucket i; the overflow bucket has
    // no upper bound, so report the observed max for it.
    if (i == bounds_.size()) return max_;
    const Duration lower = i == 0 ? Duration::zero() : bounds_[i - 1];
    const Duration upper = bounds_[i];
    const double frac =
        (target - static_cast<double>(before)) / static_cast<double>(counts_[i]);
    Duration estimate = lower + (upper - lower).scaled(std::clamp(frac, 0.0, 1.0));
    // The true extremes are known exactly; keep estimates inside them.
    estimate = std::clamp(estimate, min_, max_);
    return estimate;
  }
  return max_;
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.count = count_;
  snap.sum = sum_;
  snap.min = min_;
  snap.max = max_;
  snap.p50 = percentile(50);
  snap.p95 = percentile(95);
  snap.p99 = percentile(99);
  return snap;
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const Histogram* MetricsRegistry::find_histogram(const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

std::uint64_t MetricsRegistry::counter_value(const std::string& name) const {
  const Counter* counter = find_counter(name);
  return counter == nullptr ? 0 : counter->value();
}

std::string MetricsRegistry::to_json() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    out += ':';
    out += std::to_string(counter.value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    out += ':';
    out += strings::format("%.6f", gauge.value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    const HistogramSnapshot snap = histogram.snapshot();
    out += ":{\"count\":" + std::to_string(snap.count);
    out += ",\"sum_ms\":";
    append_ms(out, snap.sum);
    out += ",\"min_ms\":";
    append_ms(out, snap.min);
    out += ",\"max_ms\":";
    append_ms(out, snap.max);
    out += ",\"p50_ms\":";
    append_ms(out, snap.p50);
    out += ",\"p95_ms\":";
    append_ms(out, snap.p95);
    out += ",\"p99_ms\":";
    append_ms(out, snap.p99);
    out += ",\"buckets\":[";
    const auto& bounds = histogram.bounds();
    const auto& counts = histogram.bucket_counts();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (i != 0) out += ',';
      out += "{\"le_ms\":";
      if (i == bounds.size()) {
        out += "\"+Inf\"";
      } else {
        append_ms(out, bounds[i]);
      }
      out += ",\"count\":" + std::to_string(counts[i]) + "}";
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

}  // namespace pan::obs
