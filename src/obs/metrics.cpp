#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <set>

#include "util/strings.hpp"

namespace pan::obs {

namespace {

void append_json_string(std::string& out, std::string_view s) {
  out += strings::json_quote(s);
}

void append_ms(std::string& out, Duration d) { out += strings::format("%.6f", d.millis()); }

/// Prom label values escape backslash, double quote, and newline.
std::string prom_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// Renders `{a="1",b="2"}` (or "" when empty).
std::string prom_label_block(const std::vector<std::pair<std::string, std::string>>& labels) {
  if (labels.empty()) return {};
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ',';
    first = false;
    out += key;
    out += "=\"";
    out += prom_escape(value);
    out += '"';
  }
  out += '}';
  return out;
}

std::string prom_seconds(Duration d) {
  return strings::format("%.9g", d.nanos() / 1e9);
}

}  // namespace

Histogram::Histogram(std::vector<Duration> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  counts_.assign(bounds_.size() + 1, 0);
}

std::vector<Duration> Histogram::default_latency_buckets() {
  std::vector<Duration> bounds;
  // Nine linear sub-buckets per decade, 10 us .. 9 s. Every default
  // histogram shares this layout, which is what makes merge() a plain
  // count-wise sum.
  for (const std::int64_t decade :
       {10'000LL, 100'000LL, 1'000'000LL, 10'000'000LL, 100'000'000LL, 1'000'000'000LL}) {
    for (std::int64_t k = 1; k <= 9; ++k) bounds.push_back(Duration{decade * k});
  }
  // The top decade is cut at the 60 s request-timeout ceiling.
  for (std::int64_t k = 1; k <= 6; ++k) bounds.push_back(Duration{10'000'000'000LL * k});
  return bounds;
}

void Histogram::record(Duration value) {
  if (value < Duration::zero()) value = Duration::zero();
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  if (count_ == 0 || value < min_) min_ = value;
  if (count_ == 0 || value > max_) max_ = value;
  sum_ += value;
  ++count_;
}

void Histogram::record(Duration value, std::uint64_t trace_id, TimePoint at) {
  record(value);
  if (trace_id != 0) offer_exemplar(value < Duration::zero() ? Duration::zero() : value,
                                    trace_id, at);
}

void Histogram::offer_exemplar(Duration value, std::uint64_t trace_id, TimePoint at) {
  if (exemplar_count_ < kExemplarSlots) {
    exemplars_[exemplar_count_++] = Exemplar{value, trace_id, at};
    return;
  }
  // Full: displace the smallest held value when the new one beats it, so the
  // slots converge on the largest (tail) samples.
  std::size_t smallest = 0;
  for (std::size_t i = 1; i < kExemplarSlots; ++i) {
    if (exemplars_[i].value < exemplars_[smallest].value) smallest = i;
  }
  if (exemplars_[smallest].value < value) {
    exemplars_[smallest] = Exemplar{value, trace_id, at};
  }
}

std::vector<Exemplar> Histogram::exemplars() const {
  std::vector<Exemplar> out(exemplars_.begin(), exemplars_.begin() + exemplar_count_);
  std::sort(out.begin(), out.end(), [](const Exemplar& a, const Exemplar& b) {
    if (a.value != b.value) return b.value < a.value;
    return a.trace_id < b.trace_id;  // deterministic tie-break
  });
  return out;
}

bool Histogram::merge(const Histogram& other) {
  if (bounds_ != other.bounds_) return false;
  if (other.count_ == 0) return true;
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  if (count_ == 0 || other.max_ > max_) max_ = other.max_;
  sum_ += other.sum_;
  count_ += other.count_;
  for (std::uint8_t i = 0; i < other.exemplar_count_; ++i) {
    offer_exemplar(other.exemplars_[i].value, other.exemplars_[i].trace_id,
                   other.exemplars_[i].at);
  }
  return true;
}

Duration Histogram::percentile(double pct) const {
  if (count_ == 0) return Duration::zero();
  pct = std::clamp(pct, 0.0, 100.0);
  const double target = pct / 100.0 * static_cast<double>(count_);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const std::uint64_t before = cumulative;
    cumulative += counts_[i];
    if (static_cast<double>(cumulative) < target) continue;
    // Interpolate within [lower, upper] of bucket i; the overflow bucket has
    // no upper bound, so report the observed max for it.
    if (i == bounds_.size()) return max_;
    const Duration lower = i == 0 ? Duration::zero() : bounds_[i - 1];
    const Duration upper = bounds_[i];
    const double frac =
        (target - static_cast<double>(before)) / static_cast<double>(counts_[i]);
    Duration estimate = lower + (upper - lower).scaled(std::clamp(frac, 0.0, 1.0));
    // The true extremes are known exactly; keep estimates inside them.
    estimate = std::clamp(estimate, min_, max_);
    return estimate;
  }
  return max_;
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.count = count_;
  snap.sum = sum_;
  snap.min = min_;
  snap.max = max_;
  snap.p50 = percentile(50);
  snap.p95 = percentile(95);
  snap.p99 = percentile(99);
  snap.p999 = percentile(99.9);
  return snap;
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const Histogram* MetricsRegistry::find_histogram(const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

std::uint64_t MetricsRegistry::counter_value(const std::string& name) const {
  const Counter* counter = find_counter(name);
  return counter == nullptr ? 0 : counter->value();
}

std::string MetricsRegistry::to_json(std::string_view prefix) const {
  const auto matches = [prefix](const std::string& name) {
    return prefix.empty() || strings::starts_with(name, prefix);
  };
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!matches(name)) continue;
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    out += ':';
    out += std::to_string(counter.value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    if (!matches(name)) continue;
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    out += ':';
    out += strings::format("%.6f", gauge.value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    if (!matches(name)) continue;
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    const HistogramSnapshot snap = histogram.snapshot();
    out += ":{\"count\":" + std::to_string(snap.count);
    out += ",\"sum_ms\":";
    append_ms(out, snap.sum);
    out += ",\"min_ms\":";
    append_ms(out, snap.min);
    out += ",\"max_ms\":";
    append_ms(out, snap.max);
    out += ",\"p50_ms\":";
    append_ms(out, snap.p50);
    out += ",\"p95_ms\":";
    append_ms(out, snap.p95);
    out += ",\"p99_ms\":";
    append_ms(out, snap.p99);
    out += ",\"p999_ms\":";
    append_ms(out, snap.p999);
    out += ",\"buckets\":[";
    const auto& bounds = histogram.bounds();
    const auto& counts = histogram.bucket_counts();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (i != 0) out += ',';
      out += "{\"le_ms\":";
      if (i == bounds.size()) {
        out += "\"+Inf\"";
      } else {
        append_ms(out, bounds[i]);
      }
      out += ",\"count\":" + std::to_string(counts[i]) + "}";
    }
    out += "],\"exemplars\":[";
    bool first_ex = true;
    for (const Exemplar& ex : histogram.exemplars()) {
      if (!first_ex) out += ',';
      first_ex = false;
      out += "{\"value_ms\":";
      append_ms(out, ex.value);
      out += ",\"trace_id\":\"" + std::to_string(ex.trace_id) + "\"";
      out += ",\"at_ms\":";
      out += strings::format("%.6f", ex.at.millis());
      out += "}";
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

std::string prom_name(std::string_view name) {
  const auto brace = name.find('{');
  if (brace != std::string_view::npos) name = name.substr(0, brace);
  std::string out = "pan_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

std::vector<std::pair<std::string, std::string>> prom_labels_of(std::string_view name) {
  std::vector<std::pair<std::string, std::string>> labels;
  const auto brace = name.find('{');
  if (brace == std::string_view::npos) return labels;
  std::string_view inner = name.substr(brace + 1);
  if (!inner.empty() && inner.back() == '}') inner.remove_suffix(1);
  for (const std::string_view part : strings::split_trimmed(inner, ',')) {
    const auto eq = part.find('=');
    std::string key;
    std::string value;
    if (eq == std::string_view::npos) {
      key = "tag";
      value = std::string(part);
    } else {
      value = std::string(part.substr(eq + 1));
      // Keys must fit the prom label grammar; values are escaped at render.
      for (const char c : part.substr(0, eq)) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_';
        key += ok ? c : '_';
      }
      if (key.empty() || (key[0] >= '0' && key[0] <= '9')) key = "_" + key;
    }
    labels.emplace_back(std::move(key), std::move(value));
  }
  return labels;
}

std::string MetricsRegistry::to_prom(
    std::string_view prefix,
    const std::vector<std::pair<std::string, std::string>>& base_labels) const {
  const auto matches = [prefix](const std::string& name) {
    return prefix.empty() || strings::starts_with(name, prefix);
  };
  const auto labels_for = [&base_labels](const std::string& name) {
    std::vector<std::pair<std::string, std::string>> labels = base_labels;
    for (auto& extra : prom_labels_of(name)) labels.push_back(std::move(extra));
    return labels;
  };
  std::string out;
  // Instruments whose names differ only in the embedded "{key=value}" label
  // suffix (per-path counters, per-replica series) collapse into one prom
  // family; the text format allows exactly one TYPE line per family, so
  // remember what has been declared. Name-ordered iteration keeps a family's
  // samples adjacent.
  std::set<std::string> declared;
  for (const auto& [name, counter] : counters_) {
    if (!matches(name)) continue;
    const std::string pname = prom_name(name);
    if (declared.insert(pname).second) out += "# TYPE " + pname + " counter\n";
    out += pname + prom_label_block(labels_for(name)) + " " +
           std::to_string(counter.value()) + "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    if (!matches(name)) continue;
    const std::string pname = prom_name(name);
    if (declared.insert(pname).second) out += "# TYPE " + pname + " gauge\n";
    out += pname + prom_label_block(labels_for(name)) + " " +
           strings::format("%.6f", gauge.value()) + "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    if (!matches(name)) continue;
    const std::string pname = prom_name(name);
    const auto labels = labels_for(name);
    if (declared.insert(pname).second) out += "# TYPE " + pname + " histogram\n";
    const auto& bounds = histogram.bounds();
    const auto& counts = histogram.bucket_counts();
    // OpenMetrics allows one exemplar per bucket line; attach each held
    // exemplar to the first bucket that contains its value.
    const std::vector<Exemplar> exemplars = histogram.exemplars();
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
      cumulative += counts[i];
      std::vector<std::pair<std::string, std::string>> bucket_labels = labels;
      bucket_labels.emplace_back(
          "le", i == bounds.size() ? std::string("+Inf") : prom_seconds(bounds[i]));
      out += pname + "_bucket" + prom_label_block(bucket_labels) + " " +
             std::to_string(cumulative);
      const Duration lower = i == 0 ? Duration{-1} : bounds[i - 1];
      for (const Exemplar& ex : exemplars) {
        const bool in_bucket =
            ex.value > lower && (i == bounds.size() || ex.value <= bounds[i]);
        if (!in_bucket) continue;
        out += " # {trace_id=\"" + std::to_string(ex.trace_id) + "\"} " +
               prom_seconds(ex.value);
        break;  // one exemplar per line
      }
      out += "\n";
    }
    out += pname + "_sum" + prom_label_block(labels) + " " + prom_seconds(histogram.sum()) +
           "\n";
    out += pname + "_count" + prom_label_block(labels) + " " +
           std::to_string(histogram.count()) + "\n";
  }
  return out;
}

}  // namespace pan::obs
