#include "ppl/ast.hpp"

#include <algorithm>
#include <cmath>

#include "util/strings.hpp"

namespace pan::ppl {

// ------------------------------------------------------------ predicates --

bool HopPredicate::matches_as(scion::IsdAsn ia) const {
  if (isd.has_value() && *isd != ia.isd()) return false;
  if (asn.has_value() && *asn != ia.asn()) return false;
  return true;
}

bool HopPredicate::matches(const scion::PathHop& hop) const {
  if (!matches_as(hop.isd_as)) return false;
  if (in_if != 0 && in_if != hop.ingress) return false;
  if (out_if != 0 && out_if != hop.egress) return false;
  return true;
}

std::string HopPredicate::to_string() const {
  std::string out;
  out += isd.has_value() ? std::to_string(*isd) : "*";
  out += "-";
  out += asn.has_value() ? scion::format_asn(*asn) : "*";
  if (in_if != 0 || out_if != 0) {
    out += "#" + std::to_string(in_if) + "." + std::to_string(out_if);
  }
  return out;
}

Result<HopPredicate> HopPredicate::parse(std::string_view s) {
  HopPredicate pred;
  // Optional "#in.out" (or "#in,out") interface qualifier.
  const auto hash = s.find('#');
  if (hash != std::string_view::npos) {
    const std::string_view ifs = s.substr(hash + 1);
    auto comma = ifs.find(',');
    if (comma == std::string_view::npos) comma = ifs.find('.');
    const std::string_view in_str = comma == std::string_view::npos ? ifs : ifs.substr(0, comma);
    const auto in_val = strings::parse_u64(strings::trim(in_str));
    if (!in_val.ok() || in_val.value() > 0xffff) {
      return Err("bad interface in hop predicate: '" + std::string(s) + "'");
    }
    pred.in_if = static_cast<scion::IfaceId>(in_val.value());
    if (comma != std::string_view::npos) {
      const auto out_val = strings::parse_u64(strings::trim(ifs.substr(comma + 1)));
      if (!out_val.ok() || out_val.value() > 0xffff) {
        return Err("bad interface in hop predicate: '" + std::string(s) + "'");
      }
      pred.out_if = static_cast<scion::IfaceId>(out_val.value());
    }
    s = s.substr(0, hash);
  }
  s = strings::trim(s);
  if (s.empty()) return Err("empty hop predicate");
  if (s == "*" || s == "0" || s == "0-0") return pred;  // fully wildcard

  const auto dash = s.find('-');
  const std::string_view isd_str = dash == std::string_view::npos ? s : s.substr(0, dash);
  if (isd_str != "*" && isd_str != "0") {
    const auto isd_val = strings::parse_u64(isd_str);
    if (!isd_val.ok() || isd_val.value() > 0xffff) {
      return Err("bad ISD in hop predicate: '" + std::string(s) + "'");
    }
    pred.isd = static_cast<scion::Isd>(isd_val.value());
  }
  if (dash != std::string_view::npos) {
    const std::string_view asn_str = s.substr(dash + 1);
    if (asn_str != "*" && asn_str != "0") {
      const auto asn_val = scion::parse_asn(asn_str);
      if (!asn_val.ok()) return Err(asn_val.error());
      pred.asn = asn_val.value();
    }
  }
  return pred;
}

// ------------------------------------------------------------------- ACL --

bool Acl::permits_hop(const scion::PathHop& hop) const {
  for (const AclEntry& entry : entries) {
    if (entry.predicate.matches(hop)) return entry.allow;
  }
  return false;  // default deny, like SCION PPL
}

bool Acl::permits(const scion::Path& path) const {
  return std::all_of(path.hops().begin(), path.hops().end(),
                     [&](const scion::PathHop& hop) { return permits_hop(hop); });
}

// -------------------------------------------------------------- sequence --

bool Sequence::matches(const scion::Path& path) const {
  const auto& hops = path.hops();
  const std::size_t n = hops.size();
  const std::size_t m = elems.size();
  // dp[j] = pattern prefix j can match the hop prefix consumed so far.
  std::vector<char> dp(m + 1, 0);
  dp[0] = 1;
  for (std::size_t j = 1; j <= m; ++j) {
    const Quantifier q = elems[j - 1].quantifier;
    dp[j] = (dp[j - 1] != 0 && (q == Quantifier::kOptional || q == Quantifier::kStar)) ? 1 : 0;
  }
  for (std::size_t i = 1; i <= n; ++i) {
    std::vector<char> next(m + 1, 0);
    for (std::size_t j = 1; j <= m; ++j) {
      const SequenceElem& elem = elems[j - 1];
      const bool hit = elem.predicate.matches(hops[i - 1]);
      switch (elem.quantifier) {
        case Quantifier::kOne:
        case Quantifier::kOptional:
          next[j] = (hit && dp[j - 1] != 0) ? 1 : 0;
          break;
        case Quantifier::kStar:
        case Quantifier::kPlus:
          next[j] = (hit && (dp[j - 1] != 0 || dp[j] != 0)) ? 1 : 0;
          break;
      }
    }
    // Epsilon closure: optional/star elements can be skipped.
    for (std::size_t j = 1; j <= m; ++j) {
      const Quantifier q = elems[j - 1].quantifier;
      if (next[j] == 0 && next[j - 1] != 0 &&
          (q == Quantifier::kOptional || q == Quantifier::kStar)) {
        next[j] = 1;
      }
    }
    dp = std::move(next);
  }
  return dp[m] != 0;
}

Result<Sequence> Sequence::parse(std::string_view pattern) {
  Sequence seq;
  for (std::string_view token : strings::split_trimmed(pattern, ' ')) {
    SequenceElem elem;
    // Quantifier suffix — but a bare "*" means the any-hop star.
    if (token == "*") {
      elem.quantifier = Quantifier::kStar;
      seq.elems.push_back(elem);
      continue;
    }
    if (token.size() > 1) {
      const char last = token.back();
      const char before = token[token.size() - 2];
      if (last == '?') {
        elem.quantifier = Quantifier::kOptional;
        token.remove_suffix(1);
      } else if (last == '+') {
        elem.quantifier = Quantifier::kPlus;
        token.remove_suffix(1);
      } else if (last == '*' && before != '-') {
        // A '*' straight after '-' is the ASN wildcard ("1-*"), not a
        // quantifier; "2-**" is the wildcard plus a star quantifier.
        elem.quantifier = Quantifier::kStar;
        token.remove_suffix(1);
      }
    }
    auto pred = HopPredicate::parse(token);
    if (!pred.ok()) return Err("in sequence: " + pred.error());
    elem.predicate = pred.value();
    seq.elems.push_back(elem);
  }
  if (seq.elems.empty()) return Err("empty sequence pattern");
  return seq;
}

// --------------------------------------------------------------- metrics --

const char* to_string(Metric m) {
  switch (m) {
    case Metric::kLatency: return "latency";
    case Metric::kBandwidth: return "bandwidth";
    case Metric::kHops: return "hops";
    case Metric::kCo2: return "co2";
    case Metric::kCost: return "cost";
    case Metric::kLoss: return "loss";
    case Metric::kJitter: return "jitter";
    case Metric::kMtu: return "mtu";
    case Metric::kEthics: return "ethics";
    case Metric::kQos: return "qos";
    case Metric::kAllied: return "allied";
  }
  return "?";
}

Result<Metric> parse_metric(std::string_view s) {
  static constexpr std::pair<std::string_view, Metric> kTable[] = {
      {"latency", Metric::kLatency}, {"bandwidth", Metric::kBandwidth},
      {"hops", Metric::kHops},       {"co2", Metric::kCo2},
      {"cost", Metric::kCost},       {"loss", Metric::kLoss},
      {"jitter", Metric::kJitter},   {"mtu", Metric::kMtu},
      {"ethics", Metric::kEthics},   {"qos", Metric::kQos},
      {"allied", Metric::kAllied},
  };
  for (const auto& [name, metric] : kTable) {
    if (name == s) return metric;
  }
  return Err("unknown metric: '" + std::string(s) + "'");
}

double metric_value(const scion::Path& path, Metric m) {
  const scion::PathMetadata& meta = path.meta();
  switch (m) {
    case Metric::kLatency: return static_cast<double>(meta.latency.nanos());
    case Metric::kBandwidth: return meta.bandwidth_bps;
    case Metric::kHops: return static_cast<double>(path.link_count());
    case Metric::kCo2: return meta.co2_g_per_gb;
    case Metric::kCost: return meta.cost_per_gb;
    case Metric::kLoss: return meta.loss_rate;
    case Metric::kJitter: return static_cast<double>(meta.jitter.nanos());
    case Metric::kMtu: return static_cast<double>(meta.mtu);
    case Metric::kEthics: return meta.min_ethics_rating;
    case Metric::kQos: return meta.all_qos_capable ? 1.0 : 0.0;
    case Metric::kAllied: return meta.all_allied ? 1.0 : 0.0;
  }
  return 0;
}

bool Requirement::satisfied_by(const scion::Path& path) const {
  const double v = metric_value(path, metric);
  switch (cmp) {
    case Cmp::kLe: return v <= value;
    case Cmp::kGe: return v >= value;
    case Cmp::kLt: return v < value;
    case Cmp::kGt: return v > value;
    case Cmp::kEq: return v == value;
    case Cmp::kNe: return v != value;
  }
  return false;
}

std::string Requirement::to_string() const {
  const char* op = "?";
  switch (cmp) {
    case Cmp::kLe: op = "<="; break;
    case Cmp::kGe: op = ">="; break;
    case Cmp::kLt: op = "<"; break;
    case Cmp::kGt: op = ">"; break;
    case Cmp::kEq: op = "=="; break;
    case Cmp::kNe: op = "!="; break;
  }
  return strings::format("require %s %s %g", ppl::to_string(metric), op, value);
}

// ---------------------------------------------------------------- policy --

bool Policy::permits(const scion::Path& path) const {
  if (acl.has_value() && !acl->permits(path)) return false;
  if (sequence.has_value() && !sequence->matches(path)) return false;
  for (const Requirement& req : requirements) {
    if (!req.satisfied_by(path)) return false;
  }
  return true;
}

void order_paths(std::vector<scion::Path>& paths, std::span<const OrderKey> ordering) {
  if (ordering.empty()) return;
  std::sort(paths.begin(), paths.end(), [&](const scion::Path& a, const scion::Path& b) {
    for (const OrderKey& key : ordering) {
      const double va = metric_value(a, key.metric);
      const double vb = metric_value(b, key.metric);
      if (va != vb) return key.ascending ? va < vb : va > vb;
    }
    return a.fingerprint() < b.fingerprint();
  });
}

std::vector<scion::Path> Policy::apply(std::vector<scion::Path> paths) const {
  std::erase_if(paths, [&](const scion::Path& p) { return !permits(p); });
  order_paths(paths, ordering);
  return paths;
}

std::string Policy::to_string() const {
  std::string out = "policy \"" + name + "\" {\n";
  if (acl.has_value()) {
    out += "  acl {\n";
    for (const AclEntry& entry : acl->entries) {
      out += std::string("    ") + (entry.allow ? "allow " : "deny ") +
             entry.predicate.to_string() + ";\n";
    }
    out += "  }\n";
  }
  if (sequence.has_value()) {
    out += "  sequence \"";
    for (std::size_t i = 0; i < sequence->elems.size(); ++i) {
      if (i > 0) out += " ";
      out += sequence->elems[i].predicate.to_string();
      switch (sequence->elems[i].quantifier) {
        case Quantifier::kOne: break;
        case Quantifier::kOptional: out += "?"; break;
        case Quantifier::kStar: out += "*"; break;
        case Quantifier::kPlus: out += "+"; break;
      }
    }
    out += "\";\n";
  }
  for (const Requirement& req : requirements) {
    out += "  " + req.to_string() + ";\n";
  }
  if (!ordering.empty()) {
    out += "  order ";
    for (std::size_t i = 0; i < ordering.size(); ++i) {
      if (i > 0) out += ", ";
      out += ppl::to_string(ordering[i].metric);
      out += ordering[i].ascending ? " asc" : " desc";
    }
    out += ";\n";
  }
  out += "}";
  return out;
}

bool PolicySet::permits(const scion::Path& path) const {
  return std::all_of(policies_.begin(), policies_.end(),
                     [&](const Policy& p) { return p.permits(path); });
}

std::vector<OrderKey> PolicySet::combined_ordering() const {
  std::vector<OrderKey> ordering;
  for (const Policy& p : policies_) {
    ordering.insert(ordering.end(), p.ordering.begin(), p.ordering.end());
  }
  return ordering;
}

std::vector<scion::Path> PolicySet::apply(std::vector<scion::Path> paths) const {
  std::erase_if(paths, [&](const scion::Path& p) { return !permits(p); });
  order_paths(paths, combined_ordering());
  return paths;
}

}  // namespace pan::ppl
