// PPL lexer: turns policy source text into a token stream with positions
// for error reporting. Comments run from '#' to end of line.
#pragma once

#include <string>
#include <vector>

#include "util/result.hpp"

namespace pan::ppl {

enum class TokenType : std::uint8_t {
  kAtom,     // identifiers, hop predicates, numbers with units
  kString,   // "..." (no escapes)
  kLBrace,
  kRBrace,
  kSemi,
  kComma,
  kCompare,  // <= >= < > == !=
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;
  std::size_t line = 1;
  std::size_t column = 1;

  [[nodiscard]] std::string location() const {
    return std::to_string(line) + ":" + std::to_string(column);
  }
};

[[nodiscard]] Result<std::vector<Token>> tokenize(std::string_view source);

}  // namespace pan::ppl
