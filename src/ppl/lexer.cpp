#include "ppl/lexer.hpp"

#include <cctype>

namespace pan::ppl {

namespace {

bool is_atom_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == ':' || c == '-' ||
         c == '*' || c == '.' || c == '_' || c == '#' || c == '?' || c == '+' || c == '/';
}

}  // namespace

Result<std::vector<Token>> tokenize(std::string_view source) {
  std::vector<Token> tokens;
  std::size_t line = 1;
  std::size_t column = 1;
  std::size_t i = 0;

  const auto advance = [&](std::size_t n) {
    for (std::size_t k = 0; k < n; ++k) {
      if (source[i + k] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    i += n;
  };

  while (i < source.size()) {
    const char c = source[i];
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      advance(1);
      continue;
    }
    if (c == '#') {
      // Comment — but '#' can also appear inside a hop predicate atom; a
      // comment '#' only starts at a token boundary, which is where we are.
      // However hop predicates like "1-2#3,4" are lexed as one atom below,
      // so a standalone '#' here is always a comment.
      while (i < source.size() && source[i] != '\n') advance(1);
      continue;
    }
    Token token;
    token.line = line;
    token.column = column;
    if (c == '{') {
      token.type = TokenType::kLBrace;
      token.text = "{";
      advance(1);
    } else if (c == '}') {
      token.type = TokenType::kRBrace;
      token.text = "}";
      advance(1);
    } else if (c == ';') {
      token.type = TokenType::kSemi;
      token.text = ";";
      advance(1);
    } else if (c == ',') {
      token.type = TokenType::kComma;
      token.text = ",";
      advance(1);
    } else if (c == '"') {
      token.type = TokenType::kString;
      advance(1);
      const std::size_t start = i;
      while (i < source.size() && source[i] != '"' && source[i] != '\n') advance(1);
      if (i >= source.size() || source[i] != '"') {
        return Err("unterminated string at " + token.location());
      }
      token.text = std::string(source.substr(start, i - start));
      advance(1);
    } else if (c == '<' || c == '>' || c == '=' || c == '!') {
      token.type = TokenType::kCompare;
      if (i + 1 < source.size() && source[i + 1] == '=') {
        token.text = std::string(source.substr(i, 2));
        advance(2);
      } else if (c == '<' || c == '>') {
        token.text = std::string(1, c);
        advance(1);
      } else {
        return Err(std::string("unexpected character '") + c + "' at " + token.location());
      }
    } else if (is_atom_char(c)) {
      const std::size_t start = i;
      while (i < source.size() && is_atom_char(source[i])) advance(1);
      token.type = TokenType::kAtom;
      token.text = std::string(source.substr(start, i - start));
    } else {
      return Err(std::string("unexpected character '") + c + "' at line " +
                 std::to_string(line) + ":" + std::to_string(column));
    }
    tokens.push_back(std::move(token));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.line = line;
  end.column = column;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace pan::ppl
