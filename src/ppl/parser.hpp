// PPL parser: source text -> Policy. See ast.hpp for the grammar by example.
//
// Values in `require` clauses take unit suffixes:
//   latency/jitter: ns, us, ms, s        bandwidth: bps, kbps, mbps, gbps
//   mtu: bytes (B optional)              co2: g (per GB)   cost: plain number
//   loss/ethics: plain numbers           qos/allied: no value ("require qos;")
#pragma once

#include "ppl/ast.hpp"

namespace pan::ppl {

/// Parses exactly one policy block. Errors carry line:column positions.
[[nodiscard]] Result<Policy> parse_policy(std::string_view source);

/// Parses a file of several policy blocks.
[[nodiscard]] Result<std::vector<Policy>> parse_policies(std::string_view source);

}  // namespace pan::ppl
