#include "ppl/parser.hpp"

#include <cmath>

#include "ppl/lexer.hpp"
#include "util/strings.hpp"

namespace pan::ppl {
namespace {

/// Parses "50ms", "1gbps", "1400", ... into the metric's canonical unit.
Result<double> parse_value(std::string_view text) {
  std::size_t split = text.size();
  while (split > 0 && (std::isalpha(static_cast<unsigned char>(text[split - 1])) != 0)) {
    --split;
  }
  const std::string_view number = text.substr(0, split);
  const std::string unit = strings::to_lower(text.substr(split));
  if (number.empty()) return Err("missing number in value: '" + std::string(text) + "'");

  double base = 0;
  // Manual parse: integer or decimal.
  const auto dot = number.find('.');
  if (dot == std::string_view::npos) {
    const auto v = strings::parse_u64(number);
    if (!v.ok()) return Err("bad number: " + v.error());
    base = static_cast<double>(v.value());
  } else {
    const auto whole = strings::parse_u64(number.substr(0, dot));
    const auto frac = strings::parse_u64(number.substr(dot + 1));
    if (!whole.ok() || !frac.ok()) return Err("bad decimal: '" + std::string(number) + "'");
    base = static_cast<double>(whole.value()) +
           static_cast<double>(frac.value()) /
               std::pow(10.0, static_cast<double>(number.size() - dot - 1));
  }

  if (unit.empty() || unit == "b") return base;
  if (unit == "ns") return base;
  if (unit == "us") return base * 1e3;
  if (unit == "ms") return base * 1e6;
  if (unit == "s") return base * 1e9;
  if (unit == "bps") return base;
  if (unit == "kbps") return base * 1e3;
  if (unit == "mbps") return base * 1e6;
  if (unit == "gbps") return base * 1e9;
  if (unit == "g") return base;
  if (unit == "kb") return base * 1e3;
  if (unit == "mb") return base * 1e6;
  return Err("unknown unit: '" + std::string(text) + "'");
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Policy> parse_one() {
    auto policy = parse_block();
    if (!policy.ok()) return policy;
    if (!at(TokenType::kEnd)) {
      return Err("trailing input after policy at " + peek().location());
    }
    return policy;
  }

  Result<std::vector<Policy>> parse_all() {
    std::vector<Policy> out;
    while (!at(TokenType::kEnd)) {
      auto policy = parse_block();
      if (!policy.ok()) return Err(policy.error());
      out.push_back(std::move(policy).take());
    }
    return out;
  }

 private:
  [[nodiscard]] const Token& peek() const { return tokens_[pos_]; }
  [[nodiscard]] bool at(TokenType t) const { return peek().type == t; }
  const Token& next() { return tokens_[pos_++]; }

  [[nodiscard]] bool accept_atom(std::string_view text) {
    if (at(TokenType::kAtom) && peek().text == text) {
      next();
      return true;
    }
    return false;
  }

  Status expect(TokenType t, const char* what) {
    if (!at(t)) {
      return Err(std::string("expected ") + what + " at " + peek().location() + ", got '" +
                 peek().text + "'");
    }
    next();
    return {};
  }

  Result<Policy> parse_block() {
    Policy policy;
    if (!accept_atom("policy")) {
      return Err("expected 'policy' at " + peek().location());
    }
    if (at(TokenType::kString)) {
      policy.name = next().text;
    }
    if (auto s = expect(TokenType::kLBrace, "'{'"); !s.ok()) return Err(s.error());

    while (!at(TokenType::kRBrace)) {
      if (at(TokenType::kEnd)) return Err("unterminated policy block");
      if (accept_atom("acl")) {
        auto acl = parse_acl();
        if (!acl.ok()) return Err(acl.error());
        policy.acl = std::move(acl).take();
      } else if (accept_atom("sequence")) {
        if (!at(TokenType::kString)) {
          return Err("sequence expects a quoted pattern at " + peek().location());
        }
        auto seq = Sequence::parse(next().text);
        if (!seq.ok()) return Err(seq.error());
        policy.sequence = std::move(seq).take();
        if (auto s = expect(TokenType::kSemi, "';'"); !s.ok()) return Err(s.error());
      } else if (accept_atom("order")) {
        auto ordering = parse_ordering();
        if (!ordering.ok()) return Err(ordering.error());
        policy.ordering = std::move(ordering).take();
      } else if (accept_atom("require")) {
        auto req = parse_requirement();
        if (!req.ok()) return Err(req.error());
        policy.requirements.push_back(std::move(req).take());
      } else {
        return Err("unexpected token '" + peek().text + "' at " + peek().location());
      }
    }
    next();  // consume '}'
    return policy;
  }

  Result<Acl> parse_acl() {
    Acl acl;
    if (auto s = expect(TokenType::kLBrace, "'{' after acl"); !s.ok()) return Err(s.error());
    while (!at(TokenType::kRBrace)) {
      if (at(TokenType::kEnd)) return Err("unterminated acl block");
      AclEntry entry;
      if (accept_atom("allow")) {
        entry.allow = true;
      } else if (accept_atom("deny")) {
        entry.allow = false;
      } else {
        return Err("expected allow/deny at " + peek().location());
      }
      if (!at(TokenType::kAtom)) {
        return Err("expected hop predicate at " + peek().location());
      }
      auto pred = HopPredicate::parse(next().text);
      if (!pred.ok()) return Err(pred.error());
      entry.predicate = pred.value();
      acl.entries.push_back(entry);
      if (auto s = expect(TokenType::kSemi, "';'"); !s.ok()) return Err(s.error());
    }
    next();  // '}'
    if (acl.entries.empty()) return Err("acl block is empty");
    return acl;
  }

  Result<std::vector<OrderKey>> parse_ordering() {
    std::vector<OrderKey> out;
    for (;;) {
      if (!at(TokenType::kAtom)) {
        return Err("expected metric name at " + peek().location());
      }
      auto metric = parse_metric(next().text);
      if (!metric.ok()) return Err(metric.error());
      OrderKey key;
      key.metric = metric.value();
      if (accept_atom("asc")) {
        key.ascending = true;
      } else if (accept_atom("desc")) {
        key.ascending = false;
      }
      out.push_back(key);
      if (at(TokenType::kComma)) {
        next();
        continue;
      }
      break;
    }
    if (auto s = expect(TokenType::kSemi, "';'"); !s.ok()) return Err(s.error());
    return out;
  }

  Result<Requirement> parse_requirement() {
    if (!at(TokenType::kAtom)) {
      return Err("expected metric name at " + peek().location());
    }
    auto metric = parse_metric(next().text);
    if (!metric.ok()) return Err(metric.error());
    Requirement req;
    req.metric = metric.value();

    if (req.metric == Metric::kQos || req.metric == Metric::kAllied) {
      // "require qos;" — boolean shorthand.
      req.cmp = Cmp::kEq;
      req.value = 1.0;
      if (at(TokenType::kSemi)) {
        next();
        return req;
      }
    }
    if (!at(TokenType::kCompare)) {
      return Err("expected comparison at " + peek().location());
    }
    const std::string op = next().text;
    if (op == "<=") req.cmp = Cmp::kLe;
    else if (op == ">=") req.cmp = Cmp::kGe;
    else if (op == "<") req.cmp = Cmp::kLt;
    else if (op == ">") req.cmp = Cmp::kGt;
    else if (op == "==") req.cmp = Cmp::kEq;
    else if (op == "!=") req.cmp = Cmp::kNe;
    else return Err("bad comparison '" + op + "'");

    if (!at(TokenType::kAtom)) {
      return Err("expected value at " + peek().location());
    }
    auto value = parse_value(next().text);
    if (!value.ok()) return Err(value.error());
    req.value = value.value();
    if (auto s = expect(TokenType::kSemi, "';'"); !s.ok()) return Err(s.error());
    return req;
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<Policy> parse_policy(std::string_view source) {
  auto tokens = tokenize(source);
  if (!tokens.ok()) return Err(tokens.error());
  Parser parser(std::move(tokens).take());
  return parser.parse_one();
}

Result<std::vector<Policy>> parse_policies(std::string_view source) {
  auto tokens = tokenize(source);
  if (!tokens.ok()) return Err(tokens.error());
  Parser parser(std::move(tokens).take());
  return parser.parse_all();
}

}  // namespace pan::ppl
