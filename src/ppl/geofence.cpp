#include "ppl/geofence.hpp"

namespace pan::ppl {

bool Geofence::permits(const scion::Path& path) const {
  for (const scion::PathHop& hop : path.hops()) {
    const bool listed = isds.contains(hop.isd_as.isd());
    if (mode == GeofenceMode::kAllowlist && !listed) return false;
    if (mode == GeofenceMode::kBlocklist && listed) return false;
  }
  return true;
}

Policy Geofence::compile(std::string name) const {
  Policy policy;
  policy.name = std::move(name);
  Acl acl;
  for (const scion::Isd isd : isds) {
    AclEntry entry;
    entry.allow = mode == GeofenceMode::kAllowlist;
    entry.predicate.isd = isd;
    acl.entries.push_back(entry);
  }
  // Catch-all with the opposite action.
  AclEntry rest;
  rest.allow = mode == GeofenceMode::kBlocklist;
  acl.entries.push_back(rest);
  policy.acl = std::move(acl);
  return policy;
}

std::string Geofence::to_string() const {
  std::string out = mode == GeofenceMode::kAllowlist ? "allow-only ISDs {" : "block ISDs {";
  bool first = true;
  for (const scion::Isd isd : isds) {
    if (!first) out += ", ";
    out += std::to_string(isd);
    first = false;
  }
  out += "}";
  return out;
}

}  // namespace pan::ppl
