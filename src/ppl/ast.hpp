// Path Policy Language (PPL) — abstract syntax and evaluation.
//
// Modeled on the Path Policy Language the paper cites (Anapaya/SCION PPL):
// a policy filters candidate paths through an ACL (ordered allow/deny hop
// predicates, first match wins, default deny), an optional sequence (a
// regex-like pattern over the AS-level hop list), and metric requirements;
// surviving paths are sorted by an ordering over path metadata.
//
// Example concrete syntax (see parser.hpp):
//
//   policy "geofenced-low-latency" {
//     acl {
//       deny 3-*;          # never cross ISD 3
//       allow *;
//     }
//     sequence "1-ff00:0:110 * 2-*";
//     require mtu >= 1400;
//     require latency <= 80ms;
//     order latency asc, co2 asc;
//   }
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "scion/path.hpp"
#include "util/result.hpp"

namespace pan::ppl {

/// Matches one AS-level hop. Wildcards: missing ISD/ASN match anything; a
/// zero interface matches any interface (SCION PPL convention).
struct HopPredicate {
  std::optional<scion::Isd> isd;
  std::optional<scion::Asn> asn;
  scion::IfaceId in_if = 0;   // 0 = any
  scion::IfaceId out_if = 0;  // 0 = any

  [[nodiscard]] bool matches(const scion::PathHop& hop) const;
  [[nodiscard]] bool matches_as(scion::IsdAsn ia) const;
  [[nodiscard]] std::string to_string() const;

  /// Parses "*", "1", "1-*", "1-ff00:0:110", optionally "#in,out" suffix.
  [[nodiscard]] static Result<HopPredicate> parse(std::string_view s);
};

struct AclEntry {
  bool allow = true;
  HopPredicate predicate;
};

/// First matching entry decides per hop; a hop matching no entry is denied.
/// A path is permitted iff every hop is allowed.
struct Acl {
  std::vector<AclEntry> entries;

  [[nodiscard]] bool permits(const scion::Path& path) const;
  [[nodiscard]] bool permits_hop(const scion::PathHop& hop) const;
};

enum class Quantifier : std::uint8_t {
  kOne,       // exactly one hop
  kOptional,  // ? — zero or one
  kStar,      // * — zero or more
  kPlus,      // + — one or more
};

struct SequenceElem {
  HopPredicate predicate;
  Quantifier quantifier = Quantifier::kOne;
};

/// Regex-style match over the full hop list.
struct Sequence {
  std::vector<SequenceElem> elems;

  [[nodiscard]] bool matches(const scion::Path& path) const;

  /// Parses a space-separated pattern, e.g. "1-ff00:0:110 *? 2-*+".
  /// A bare "*" element is shorthand for the any-hop star ("0*" in SCION
  /// PPL); quantifiers attach as a suffix character.
  [[nodiscard]] static Result<Sequence> parse(std::string_view pattern);
};

enum class Metric : std::uint8_t {
  kLatency,    // ns
  kBandwidth,  // bps
  kHops,       // link count
  kCo2,        // g/GB
  kCost,       // micro-$/GB
  kLoss,       // probability
  kJitter,     // ns
  kMtu,        // bytes
  kEthics,     // min rating on path
  kQos,        // boolean: all hops QoS capable
  kAllied,     // boolean: all hops allied
};

[[nodiscard]] const char* to_string(Metric m);
[[nodiscard]] Result<Metric> parse_metric(std::string_view s);
[[nodiscard]] double metric_value(const scion::Path& path, Metric m);

enum class Cmp : std::uint8_t { kLe, kGe, kLt, kGt, kEq, kNe };

struct Requirement {
  Metric metric = Metric::kLatency;
  Cmp cmp = Cmp::kLe;
  double value = 0;

  [[nodiscard]] bool satisfied_by(const scion::Path& path) const;
  [[nodiscard]] std::string to_string() const;
};

struct OrderKey {
  Metric metric = Metric::kLatency;
  bool ascending = true;
};

/// Stable lexicographic sort by ordering keys (fingerprint tie-break keeps
/// results deterministic). Shared by Policy, PolicySet, and the proxy's
/// negotiated server preferences.
void order_paths(std::vector<scion::Path>& paths, std::span<const OrderKey> ordering);

struct Policy {
  std::string name;
  std::optional<Acl> acl;
  std::optional<Sequence> sequence;
  std::vector<Requirement> requirements;
  std::vector<OrderKey> ordering;

  /// ACL + sequence + requirements.
  [[nodiscard]] bool permits(const scion::Path& path) const;
  /// Filters then sorts (stable; fingerprint tie-break keeps determinism).
  [[nodiscard]] std::vector<scion::Path> apply(std::vector<scion::Path> paths) const;

  [[nodiscard]] std::string to_string() const;
};

/// Combination of policies (the paper: "multiple policies can be combined
/// for fine-grained configuration, e.g., optimizing the CO2 footprint while
/// excluding particular regions"): a path must satisfy every member; the
/// concatenated orderings sort lexicographically.
class PolicySet {
 public:
  PolicySet() = default;
  explicit PolicySet(std::vector<Policy> policies) : policies_(std::move(policies)) {}

  void add(Policy policy) { policies_.push_back(std::move(policy)); }
  [[nodiscard]] const std::vector<Policy>& policies() const { return policies_; }
  [[nodiscard]] bool empty() const { return policies_.empty(); }

  [[nodiscard]] bool permits(const scion::Path& path) const;
  [[nodiscard]] std::vector<scion::Path> apply(std::vector<scion::Path> paths) const;
  /// All member orderings concatenated in policy order.
  [[nodiscard]] std::vector<OrderKey> combined_ordering() const;

 private:
  std::vector<Policy> policies_;
};

}  // namespace pan::ppl
