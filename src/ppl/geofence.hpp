// Geofencing (Section 4.1): ISD-level allow/block lists, compiled to PPL.
//
// ISDs bound regions sharing a legal framework, so ISD granularity gives the
// paper's "balanced degree of customization". The compiler produces a plain
// PPL Policy, demonstrating that the extension UI's geofence toggles are
// just sugar over the policy language.
#pragma once

#include <set>
#include <string>

#include "ppl/ast.hpp"

namespace pan::ppl {

enum class GeofenceMode : std::uint8_t {
  /// Paths may only cross the listed ISDs.
  kAllowlist,
  /// Paths must avoid the listed ISDs.
  kBlocklist,
};

struct Geofence {
  GeofenceMode mode = GeofenceMode::kBlocklist;
  std::set<scion::Isd> isds;

  [[nodiscard]] bool permits(const scion::Path& path) const;

  /// Compiles to an ACL-only PPL policy.
  [[nodiscard]] Policy compile(std::string name) const;

  [[nodiscard]] std::string to_string() const;
};

}  // namespace pan::ppl
