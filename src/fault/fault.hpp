// Deterministic fault model: scheduled, scriptable failure events.
//
// A FaultPlan is an ordered list of FaultEvents, each applied at a sim-clock
// instant and (optionally) reverted after a duration. Plans are written in a
// tiny line-oriented text format so chaos scenarios are data, not code:
//
//   # active inter-ISD path dies for two seconds
//   at=150ms dur=2s link-down core-1 core-2b
//   at=0ms dur=3s link-degrade core-1 core-2b loss=0.25 latency-factor=4
//   at=1s as-outage core-2b
//   at=0ms dur=5s path-server-stale
//   at=0ms dur=2s dns-brownout www.far.example mode=servfail delay=400ms
//   at=0ms dur=2s origin-reset www.far.example
//   at=0ms origin-slow-loris www.far.example
//   at=0ms origin-bad-strict-scion www.far.example
//   at=0ms dur=4s surge www.far.example rate=160 conc=64
//   at=2s dur=1s replica-crash rep-0
//   at=2s dur=500ms replica-hang rep-1
//   at=4s replica-restart rep-0
//   at=1s dur=2s access-down browser
//   at=1s dur=2s access-degrade browser-lte latency-factor=8 loss=0.2
//
// `at` is mandatory; `dur` is optional (absent or 0 means the fault holds
// until the end of the run). Blank lines and `#` comments are ignored. The
// parser is total (never throws/crashes on garbage) — it is a fuzz target.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.hpp"
#include "util/types.hpp"

namespace pan::fault {

enum class FaultKind : std::uint8_t {
  kLinkDown,             // inter-AS link administratively down
  kLinkDegrade,          // loss / latency burst on an inter-AS link
  kAsOutage,             // all interfaces of an AS border router down
  kPathServerStale,      // daemons serve stale cached paths, misses fail
  kDnsBrownout,          // resolver lookups time out / SERVFAIL for a domain
  kOriginReset,          // origin truncates responses mid-wire and closes
  kOriginSlowLoris,      // origin accepts requests but responds glacially
  kOriginBadStrictScion, // origin emits a malformed Strict-SCION header
  kSurge,                // synthetic request surge against a domain
  kReplicaCrash,         // proxy-fleet replica process dies (state lost)
  kReplicaHang,          // replica wedges: accepts work, never answers
  kReplicaRestart,       // replica bounces: down, then revived (warm/cold)
  kAccessDown,           // a host's access link (first hop) goes dark
  kAccessDegrade,        // access-link brownout: loss / latency burst
};

[[nodiscard]] std::string_view to_string(FaultKind kind);

struct FaultEvent {
  FaultKind kind = FaultKind::kLinkDown;
  TimePoint at;
  /// Zero = never reverted.
  Duration duration = Duration::zero();

  /// Link faults: the two AS names; AS outage: `a` only; DNS and origin
  /// faults: `a` is the domain; replica faults: `a` is the replica name;
  /// access faults: `a` is the host name whose access link is hit.
  std::string a;
  std::string b;

  // --- kLinkDegrade knobs ---
  double loss = 0.0;
  double latency_factor = 1.0;
  Duration extra_latency = Duration::zero();

  // --- kDnsBrownout knobs ---
  bool servfail = false;  // false = lookups time out instead
  Duration dns_delay = Duration::zero();

  // --- kSurge knobs ---
  /// Synthetic requests per second launched against domain `a` while the
  /// surge holds, and the cap on how many may be in flight at once.
  double surge_rate = 50.0;
  std::size_t surge_concurrency = 32;

  /// One-line human-readable description (used as the active-fault key and
  /// in trace annotations).
  [[nodiscard]] std::string describe() const;
};

struct FaultPlan {
  std::vector<FaultEvent> events;

  [[nodiscard]] bool empty() const { return events.empty(); }
  [[nodiscard]] std::size_t size() const { return events.size(); }
};

/// Parses "250ms", "1.5s", "40us", "900ns" (also a bare "0"). Rejects
/// negatives, trailing garbage, and values that overflow the int64 nanos.
[[nodiscard]] Result<Duration> parse_duration(std::string_view text);

/// Parses a full plan; fails on the first malformed line with a message
/// naming the line number.
[[nodiscard]] Result<FaultPlan> parse_fault_plan(std::string_view text);

}  // namespace pan::fault
