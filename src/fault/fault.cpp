#include "fault/fault.hpp"

#include <cmath>
#include <cstdlib>
#include <limits>

#include "util/strings.hpp"

namespace pan::fault {
namespace {

struct KindSpec {
  std::string_view token;
  FaultKind kind;
  int positional;  // required positional args after the kind token
};

constexpr KindSpec kKinds[] = {
    {"link-down", FaultKind::kLinkDown, 2},
    {"link-degrade", FaultKind::kLinkDegrade, 2},
    {"as-outage", FaultKind::kAsOutage, 1},
    {"path-server-stale", FaultKind::kPathServerStale, 0},
    {"dns-brownout", FaultKind::kDnsBrownout, 1},
    {"origin-reset", FaultKind::kOriginReset, 1},
    {"origin-slow-loris", FaultKind::kOriginSlowLoris, 1},
    {"origin-bad-strict-scion", FaultKind::kOriginBadStrictScion, 1},
    {"surge", FaultKind::kSurge, 1},
    {"replica-crash", FaultKind::kReplicaCrash, 1},
    {"replica-hang", FaultKind::kReplicaHang, 1},
    {"replica-restart", FaultKind::kReplicaRestart, 1},
    {"access-down", FaultKind::kAccessDown, 1},
    {"access-degrade", FaultKind::kAccessDegrade, 1},
};

/// Strict decimal parse of the full string; rejects inf/nan/empty/garbage.
Result<double> parse_double(std::string_view s) {
  if (s.empty() || s.size() > 32) return Err("bad number: '" + std::string(s) + "'");
  char buf[33];
  s.copy(buf, s.size());
  buf[s.size()] = '\0';
  char* end = nullptr;
  const double v = std::strtod(buf, &end);
  if (end != buf + s.size() || !std::isfinite(v)) {
    return Err("bad number: '" + std::string(s) + "'");
  }
  return v;
}

}  // namespace

std::string_view to_string(FaultKind kind) {
  for (const KindSpec& spec : kKinds) {
    if (spec.kind == kind) return spec.token;
  }
  return "unknown";
}

std::string FaultEvent::describe() const {
  std::string out(to_string(kind));
  if (!a.empty()) out += " " + a;
  if (!b.empty()) out += " " + b;
  return out;
}

Result<Duration> parse_duration(std::string_view text) {
  const std::string_view s = strings::trim(text);
  if (s == "0") return Duration::zero();
  double scale = 0.0;
  std::string_view digits;
  if (strings::ends_with(s, "ns")) {
    scale = 1.0;
    digits = s.substr(0, s.size() - 2);
  } else if (strings::ends_with(s, "us")) {
    scale = 1e3;
    digits = s.substr(0, s.size() - 2);
  } else if (strings::ends_with(s, "ms")) {
    scale = 1e6;
    digits = s.substr(0, s.size() - 2);
  } else if (strings::ends_with(s, "s")) {
    scale = 1e9;
    digits = s.substr(0, s.size() - 1);
  } else {
    return Err("duration needs a unit (ns/us/ms/s): '" + std::string(s) + "'");
  }
  const auto value = parse_double(digits);
  if (!value.ok()) return Err("bad duration: '" + std::string(s) + "'");
  const double nanos = value.value() * scale;
  if (nanos < 0.0 || nanos > 9.0e18) {
    return Err("duration out of range: '" + std::string(s) + "'");
  }
  return Duration{static_cast<std::int64_t>(nanos)};
}

Result<FaultPlan> parse_fault_plan(std::string_view text) {
  FaultPlan plan;
  std::size_t line_no = 0;
  for (const std::string_view raw_line : strings::split(text, '\n')) {
    ++line_no;
    std::string_view line = raw_line;
    if (const auto hash = line.find('#'); hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    line = strings::trim(line);
    if (line.empty()) continue;

    const auto err = [&](const std::string& what) {
      return Err("fault plan line " + std::to_string(line_no) + ": " + what);
    };

    std::vector<std::string_view> tokens;
    for (const std::string_view tok : strings::split(line, ' ')) {
      if (!strings::trim(tok).empty()) tokens.push_back(strings::trim(tok));
    }

    FaultEvent event;
    bool have_at = false;
    bool have_kind = false;
    int positional_needed = 0;
    int positional_seen = 0;

    for (const std::string_view tok : tokens) {
      const auto eq = tok.find('=');
      if (!have_kind && eq == std::string_view::npos) {
        // The kind token.
        bool known = false;
        for (const KindSpec& spec : kKinds) {
          if (tok == spec.token) {
            event.kind = spec.kind;
            positional_needed = spec.positional;
            known = true;
            break;
          }
        }
        if (!known) return err("unknown fault kind '" + std::string(tok) + "'");
        have_kind = true;
        continue;
      }
      if (have_kind && eq == std::string_view::npos) {
        // Positional argument (AS name or domain).
        if (positional_seen == 0) {
          event.a = std::string(tok);
        } else if (positional_seen == 1) {
          event.b = std::string(tok);
        } else {
          return err("too many arguments");
        }
        ++positional_seen;
        continue;
      }

      const std::string_view key = tok.substr(0, eq);
      const std::string_view value = tok.substr(eq + 1);
      if (key == "at") {
        const auto d = parse_duration(value);
        if (!d.ok()) return err(d.error());
        event.at = TimePoint::origin() + d.value();
        have_at = true;
      } else if (key == "dur") {
        const auto d = parse_duration(value);
        if (!d.ok()) return err(d.error());
        event.duration = d.value();
      } else if (key == "loss") {
        const auto v = parse_double(value);
        if (!v.ok() || v.value() < 0.0 || v.value() > 1.0) {
          return err("loss must be in [0,1]");
        }
        event.loss = v.value();
      } else if (key == "latency-factor") {
        const auto v = parse_double(value);
        if (!v.ok() || v.value() < 0.0 || v.value() > 1e6) {
          return err("bad latency-factor");
        }
        event.latency_factor = v.value();
      } else if (key == "extra-latency") {
        const auto d = parse_duration(value);
        if (!d.ok()) return err(d.error());
        event.extra_latency = d.value();
      } else if (key == "mode") {
        if (value == "servfail") {
          event.servfail = true;
        } else if (value == "timeout") {
          event.servfail = false;
        } else {
          return err("mode must be timeout|servfail");
        }
      } else if (key == "delay") {
        const auto d = parse_duration(value);
        if (!d.ok()) return err(d.error());
        event.dns_delay = d.value();
      } else if (key == "rate") {
        const auto v = parse_double(value);
        if (!v.ok() || v.value() <= 0.0 || v.value() > 1e6) {
          return err("rate must be in (0, 1e6] requests/s");
        }
        event.surge_rate = v.value();
      } else if (key == "conc") {
        const auto v = parse_double(value);
        if (!v.ok() || v.value() < 1.0 || v.value() > 1e6 ||
            v.value() != std::floor(v.value())) {
          return err("conc must be a whole number >= 1");
        }
        event.surge_concurrency = static_cast<std::size_t>(v.value());
      } else {
        return err("unknown option '" + std::string(key) + "'");
      }
    }

    if (!have_kind) return err("missing fault kind");
    if (!have_at) return err("missing at=<time>");
    if (positional_seen != positional_needed) {
      return err(std::string(to_string(event.kind)) + " takes " +
                 std::to_string(positional_needed) + " argument(s)");
    }
    plan.events.push_back(std::move(event));
  }
  return plan;
}

}  // namespace pan::fault
