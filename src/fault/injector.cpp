#include "fault/injector.hpp"

#include <algorithm>

#include "net/network.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace pan::fault {

namespace {
constexpr std::string_view kLog = "fault";

/// "link-down" -> "fault.link_down" (metric-name friendly).
std::string kind_metric(FaultKind kind) {
  std::string name(to_string(kind));
  std::replace(name.begin(), name.end(), '-', '_');
  return "fault." + name;
}
}  // namespace

FaultInjector::FaultInjector(sim::Simulator& sim) : sim_(sim) {}

void FaultInjector::attach_resolver(dns::Resolver& resolver) {
  resolver.set_fault_hook([this](const std::string& domain)
                              -> std::optional<dns::ResolverFault> {
    const auto it = dns_faults_.find(domain);
    if (it == dns_faults_.end()) return std::nullopt;
    count("fault.dns.failed_lookups");
    return it->second;
  });
}

void FaultInjector::attach_origin(const std::string& domain, http::FileServer& server) {
  server.set_fault_hook([this, domain]() {
    const auto it = origin_faults_.find(domain);
    if (it == origin_faults_.end()) return http::OriginFaultMode::kNone;
    count("fault.origin.faulted_responses");
    return it->second;
  });
}

void FaultInjector::schedule(const FaultPlan& plan) {
  for (const FaultEvent& event : plan.events) {
    sim_.schedule_at(event.at, [this, event] { apply(event); });
    if (event.duration > Duration::zero()) {
      sim_.schedule_at(event.at + event.duration, [this, event] { revert(event); });
    }
  }
}

std::vector<std::pair<net::NodeId, net::IfId>> FaultInjector::links_between(
    const std::string& a, const std::string& b) const {
  std::vector<std::pair<net::NodeId, net::IfId>> out;
  if (topo_ == nullptr) return out;
  net::Network& net = topo_->network();
  const net::NodeId na = net.find_node("br-" + a);
  const net::NodeId nb = net.find_node("br-" + b);
  if (na == net::kInvalidNodeId || nb == net::kInvalidNodeId) return out;
  for (net::IfId ifid = 0; ifid < net.interface_count(na); ++ifid) {
    if (net.neighbor(na, ifid) == nb) out.emplace_back(na, ifid);
  }
  return out;
}

void FaultInjector::set_all_daemons_frozen(bool frozen) {
  if (topo_ == nullptr) return;
  for (const scion::IsdAsn ia : topo_->all_ases()) {
    topo_->daemon(ia).set_frozen(frozen);
  }
}

void FaultInjector::apply(const FaultEvent& event) {
  const std::string key = event.describe();
  if (active_.contains(key)) {
    // Overlapping duplicate (two plans, or a flap tighter than its own
    // duration): keep the first application's backups, skip re-applying.
    count("fault.overlap_skipped");
    return;
  }
  ActiveFault active{event, sim_.now(), {}};

  switch (event.kind) {
    case FaultKind::kLinkDown: {
      for (const auto& [node, ifid] : links_between(event.a, event.b)) {
        topo_->network().set_link_up(node, ifid, false);
      }
      break;
    }
    case FaultKind::kLinkDegrade: {
      for (const auto& [node, ifid] : links_between(event.a, event.b)) {
        net::LinkParams& params = topo_->network().mutable_link_params(node, ifid);
        active.backups.push_back({node, ifid, params});
        if (event.loss > 0.0) params.loss_rate = std::max(params.loss_rate, event.loss);
        params.latency = params.latency.scaled(event.latency_factor) + event.extra_latency;
      }
      break;
    }
    case FaultKind::kAsOutage: {
      if (topo_ != nullptr) {
        net::Network& net = topo_->network();
        const net::NodeId node = net.find_node("br-" + event.a);
        if (node != net::kInvalidNodeId) {
          for (net::IfId ifid = 0; ifid < net.interface_count(node); ++ifid) {
            net.set_link_up(node, ifid, false);
          }
        }
      }
      break;
    }
    case FaultKind::kPathServerStale:
      set_all_daemons_frozen(true);
      break;
    case FaultKind::kDnsBrownout:
      dns_faults_[event.a] = dns::ResolverFault{event.servfail, event.dns_delay};
      break;
    case FaultKind::kOriginReset:
      origin_faults_[event.a] = http::OriginFaultMode::kReset;
      break;
    case FaultKind::kOriginSlowLoris:
      origin_faults_[event.a] = http::OriginFaultMode::kSlowLoris;
      break;
    case FaultKind::kOriginBadStrictScion:
      origin_faults_[event.a] = http::OriginFaultMode::kBadStrictScion;
      break;
    case FaultKind::kSurge:
      if (surge_hook_) surge_hook_(event, /*active=*/true);
      break;
    case FaultKind::kReplicaCrash:
    case FaultKind::kReplicaHang:
    case FaultKind::kReplicaRestart:
      if (replica_hook_) replica_hook_(event, /*active=*/true);
      break;
    case FaultKind::kAccessDown: {
      // `a` is a host name; the access link is always interface 0.
      if (topo_ != nullptr) {
        net::Network& net = topo_->network();
        const net::NodeId node = net.find_node(event.a);
        if (node != net::kInvalidNodeId) net.set_link_up(node, 0, false);
      }
      break;
    }
    case FaultKind::kAccessDegrade: {
      if (topo_ != nullptr) {
        net::Network& net = topo_->network();
        const net::NodeId node = net.find_node(event.a);
        if (node != net::kInvalidNodeId) {
          net::LinkParams& params = net.mutable_link_params(node, 0);
          active.backups.push_back({node, 0, params});
          if (event.loss > 0.0) params.loss_rate = std::max(params.loss_rate, event.loss);
          params.latency = params.latency.scaled(event.latency_factor) + event.extra_latency;
        }
      }
      break;
    }
  }

  active_.emplace(key, std::move(active));
  ++injected_;
  count("fault.injected");
  count(kind_metric(event.kind));
  update_active_gauge();
  if (metrics_ != nullptr) metrics_->events().record(sim_.now(), "fault", "apply", key);
  PAN_TRACE(kLog) << "apply: " << key;
}

void FaultInjector::revert(const FaultEvent& event) {
  const auto it = active_.find(event.describe());
  if (it == active_.end()) return;
  const ActiveFault& active = it->second;

  switch (event.kind) {
    case FaultKind::kLinkDown: {
      for (const auto& [node, ifid] : links_between(event.a, event.b)) {
        topo_->network().set_link_up(node, ifid, true);
      }
      break;
    }
    case FaultKind::kLinkDegrade: {
      for (const LinkBackup& backup : active.backups) {
        topo_->network().mutable_link_params(backup.node, backup.ifid) = backup.original;
      }
      break;
    }
    case FaultKind::kAsOutage: {
      if (topo_ != nullptr) {
        net::Network& net = topo_->network();
        const net::NodeId node = net.find_node("br-" + event.a);
        if (node != net::kInvalidNodeId) {
          for (net::IfId ifid = 0; ifid < net.interface_count(node); ++ifid) {
            net.set_link_up(node, ifid, true);
          }
        }
      }
      break;
    }
    case FaultKind::kPathServerStale:
      set_all_daemons_frozen(false);
      break;
    case FaultKind::kDnsBrownout:
      dns_faults_.erase(event.a);
      break;
    case FaultKind::kOriginReset:
    case FaultKind::kOriginSlowLoris:
    case FaultKind::kOriginBadStrictScion:
      origin_faults_.erase(event.a);
      break;
    case FaultKind::kSurge:
      if (surge_hook_) surge_hook_(event, /*active=*/false);
      break;
    case FaultKind::kReplicaCrash:
    case FaultKind::kReplicaHang:
    case FaultKind::kReplicaRestart:
      if (replica_hook_) replica_hook_(event, /*active=*/false);
      break;
    case FaultKind::kAccessDown: {
      if (topo_ != nullptr) {
        net::Network& net = topo_->network();
        const net::NodeId node = net.find_node(event.a);
        if (node != net::kInvalidNodeId) net.set_link_up(node, 0, true);
      }
      break;
    }
    case FaultKind::kAccessDegrade: {
      for (const LinkBackup& backup : active.backups) {
        topo_->network().mutable_link_params(backup.node, backup.ifid) = backup.original;
      }
      break;
    }
  }

  active_.erase(it);
  ++reverted_;
  count("fault.reverted");
  update_active_gauge();
  if (metrics_ != nullptr) {
    metrics_->events().record(sim_.now(), "fault", "revert", event.describe());
  }
  PAN_TRACE(kLog) << "revert: " << event.describe();
}

std::string FaultInjector::active_json() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [key, active] : active_) {
    if (!first) out += ",";
    first = false;
    out += strings::json_quote(key) + ":{\"applied_ms\":" +
           strings::format("%.3f", active.applied_at.millis());
    if (active.event.duration > Duration::zero()) {
      out += ",\"until_ms\":" +
             strings::format("%.3f", (active.event.at + active.event.duration).millis());
    }
    out += "}";
  }
  out += "}";
  return out;
}

void FaultInjector::count(const std::string& name) {
  if (metrics_ != nullptr) metrics_->counter(name).inc();
}

void FaultInjector::update_active_gauge() {
  if (metrics_ != nullptr) {
    metrics_->gauge("fault.active").set(static_cast<double>(active_.size()));
  }
}

}  // namespace pan::fault
