// FaultInjector: applies and reverts FaultEvents against the live world.
//
// The injector is attached to the subsystems it can break — the topology
// (links, border routers, daemons), resolvers, and origin file servers — and
// then driven by the sim clock via schedule(plan). Resolver and origin
// attachments are *pull-based*: the injector installs a hook that consults
// its active-fault table on every lookup/request, so attachees may outlive
// or predecease the plan freely (the injector holds no pointers back to
// them beyond plan application on topology, which it owns no lifetime of
// but which scenario worlds keep alive for the whole run).
//
// Every applied fault increments `fault.injected` plus a per-kind counter
// (`fault.link_down`, `fault.dns_brownout`, ...) in the attached metrics
// registry; `fault.active` is a gauge of currently-applied faults. Share the
// registry with the SKIP proxy under test (ProxyConfig::metrics) and every
// fault class becomes visible through /skip/metrics.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "dns/dns.hpp"
#include "fault/fault.hpp"
#include "http/file_server.hpp"
#include "obs/metrics.hpp"
#include "scion/topology.hpp"
#include "sim/simulator.hpp"

namespace pan::fault {

class FaultInjector {
 public:
  explicit FaultInjector(sim::Simulator& sim);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Counters/gauges land here (nullptr detaches). Typically the proxy's
  /// registry, so faults show up in /skip/metrics next to proxy stats.
  void set_metrics(obs::MetricsRegistry* metrics) { metrics_ = metrics; }

  /// Link / AS-outage / path-server faults need the topology. The topology
  /// must outlive scheduled plans (scenario worlds guarantee this).
  void attach_topology(scion::Topology& topo) { topo_ = &topo; }

  /// Installs the brownout hook on a resolver. Call per resolver (sessions
  /// own private resolvers). The hook pulls from this injector's table, so
  /// the resolver may be destroyed at any time.
  void attach_resolver(dns::Resolver& resolver);

  /// Installs the misbehavior hook on an origin's file server; `domain` is
  /// the name fault events address it by.
  void attach_origin(const std::string& domain, http::FileServer& server);

  /// Called with active=true when a kSurge event applies and active=false
  /// when it reverts. Load generation itself lives with the scenario world
  /// (it needs a proxy/client to push requests through); the injector only
  /// keeps surges on the same deterministic clock as every other fault.
  using SurgeHook = std::function<void(const FaultEvent& event, bool active)>;
  void set_surge_hook(SurgeHook hook) { surge_hook_ = std::move(hook); }

  /// Called with active=true when a replica fault (kReplicaCrash /
  /// kReplicaHang / kReplicaRestart) applies and active=false when it
  /// reverts. The proxy fleet (proxy::ProxyCluster) registers itself here;
  /// like the surge hook, the injector only keeps replica chaos on the
  /// deterministic clock — crash/revive mechanics live with the cluster.
  using ReplicaHook = std::function<void(const FaultEvent& event, bool active)>;
  void set_replica_hook(ReplicaHook hook) { replica_hook_ = std::move(hook); }

  /// Schedules apply (and revert, when duration > 0) for every event.
  void schedule(const FaultPlan& plan);

  void apply(const FaultEvent& event);
  void revert(const FaultEvent& event);

  [[nodiscard]] std::size_t active_count() const { return active_.size(); }
  [[nodiscard]] std::uint64_t injected() const { return injected_; }
  [[nodiscard]] std::uint64_t reverted() const { return reverted_; }
  /// {"<fault description>": {"applied_ms": ..}, ...} (deterministic order).
  [[nodiscard]] std::string active_json() const;

 private:
  struct LinkBackup {
    net::NodeId node;
    net::IfId ifid;
    net::LinkParams original;
  };
  struct ActiveFault {
    FaultEvent event;
    TimePoint applied_at;
    std::vector<LinkBackup> backups;  // kLinkDegrade only
  };

  /// (node, ifid) pairs on br-`a` whose neighbor is br-`b`; empty when
  /// either AS is unknown.
  [[nodiscard]] std::vector<std::pair<net::NodeId, net::IfId>> links_between(
      const std::string& a, const std::string& b) const;
  void set_all_daemons_frozen(bool frozen);
  void count(const std::string& name);
  void update_active_gauge();

  sim::Simulator& sim_;
  obs::MetricsRegistry* metrics_ = nullptr;
  scion::Topology* topo_ = nullptr;

  std::map<std::string, ActiveFault> active_;
  SurgeHook surge_hook_;
  ReplicaHook replica_hook_;
  std::unordered_map<std::string, dns::ResolverFault> dns_faults_;
  std::unordered_map<std::string, http::OriginFaultMode> origin_faults_;
  std::uint64_t injected_ = 0;
  std::uint64_t reverted_ = 0;
};

}  // namespace pan::fault
