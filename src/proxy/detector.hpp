// SCION detection for domains (Section 4.3 of the paper).
//
// Three sources, in precedence order:
//   1. a curated list shipped with the proxy (fast but does not scale),
//   2. a learned cache fed by Strict-SCION response headers,
//   3. DNS TXT records ("scion=<isd>-<as>,<ip>") resolved on demand.
// Resolution always also returns the legacy A record so the caller can fall
// back to IPv4/6.
//
// The learned cache is scoped per network identity: what one browser tab
// learns from a Strict-SCION header must not leak into another tab's
// resolution (a cross-identity cache probe would link the two). The curated
// list and DNS TXT records are public data and stay global.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "dns/dns.hpp"

namespace pan::proxy {

enum class ScionSource : std::uint8_t { kNone, kCurated, kLearned, kDnsTxt };

[[nodiscard]] const char* to_string(ScionSource s);

struct ResolvedHost {
  std::optional<net::IpAddr> ip;
  std::optional<scion::ScionAddr> scion;
  ScionSource scion_source = ScionSource::kNone;
};

class ScionDetector {
 public:
  ScionDetector(sim::Simulator& sim, dns::Resolver& resolver);

  /// Curated availability list (the "reasonable starting point").
  void add_curated(const std::string& domain, const scion::ScionAddr& addr);

  /// Records availability learned from a Strict-SCION header (address from
  /// the connection we fetched over). A max_age <= 0 removes any learned
  /// entry for the domain (HSTS-style explicit withdrawal). `identity`
  /// scopes the entry; empty or "default" is the shared default scope.
  void learn(const std::string& domain, const scion::ScionAddr& addr, Duration max_age,
             const std::string& identity = {});

  /// Observer fired on every learn(), withdrawals included (max_age <= 0).
  /// A proxy fleet uses this to broadcast learned availability to peer
  /// replicas; apply_learned() below bypasses the hook so a broadcast can
  /// never echo back through the replica it lands on.
  using LearnHook = std::function<void(const std::string& domain, const scion::ScionAddr& addr,
                                       Duration max_age, const std::string& identity)>;
  void set_learn_hook(LearnHook hook) { learn_hook_ = std::move(hook); }

  /// Hook-free learn: same cache mutation as learn() without notifying the
  /// observer (the import side of a fleet broadcast).
  void apply_learned(const std::string& domain, const scion::ScionAddr& addr, Duration max_age,
                     const std::string& identity = {});

  /// Warm-handoff snapshot of the learned cache (expired entries skipped).
  struct ExportedEntry {
    std::string key;  ///< identity-scoped key, as stored
    scion::ScionAddr addr;
    TimePoint expires;
  };
  [[nodiscard]] std::vector<ExportedEntry> export_learned() const;
  /// Restores a snapshot without firing the learn hook. An imported entry
  /// never downgrades a fresher local one; already-expired entries are
  /// dropped rather than stored.
  void import_learned(const std::vector<ExportedEntry>& entries);

  /// Full resolution: legacy + SCION addressing for `domain`, consulting the
  /// learned entries of `identity` (empty / "default" = default scope).
  void resolve(const std::string& domain, std::function<void(ResolvedHost)> callback);
  void resolve(const std::string& domain, const std::string& identity,
               std::function<void(ResolvedHost)> callback);

  [[nodiscard]] std::size_t curated_size() const { return curated_.size(); }
  [[nodiscard]] std::size_t learned_size() const { return learned_.size(); }

 private:
  struct LearnedEntry {
    scion::ScionAddr addr;
    TimePoint expires;
  };

  /// Curated/learned lookup at callback time (NOT resolve-call time): a
  /// withdrawal racing the DNS round trip must win.
  [[nodiscard]] ResolvedHost lookup(const std::string& domain, const std::string& identity);

  sim::Simulator& sim_;
  dns::Resolver& resolver_;
  LearnHook learn_hook_;
  std::unordered_map<std::string, scion::ScionAddr> curated_;
  std::unordered_map<std::string, LearnedEntry> learned_;  // identity-scoped key
};

}  // namespace pan::proxy
