#include "proxy/overload.hpp"

#include <algorithm>
#include <cmath>

#include "util/log.hpp"
#include "util/strings.hpp"

namespace pan::proxy {

namespace {
constexpr std::string_view kLog = "overload";
}  // namespace

const char* to_string(RequestPriority priority) {
  switch (priority) {
    case RequestPriority::kDocument: return "document";
    case RequestPriority::kSubresource: return "subresource";
    case RequestPriority::kProbe: return "probe";
  }
  return "?";
}

RequestPriority parse_priority(std::string_view text) {
  if (text == "document") return RequestPriority::kDocument;
  if (text == "probe") return RequestPriority::kProbe;
  return RequestPriority::kSubresource;
}

RequestPriority priority_of(const http::HttpRequest& request) {
  const auto header = request.headers.get(kPriorityHeader);
  return header.has_value() ? parse_priority(*header) : RequestPriority::kSubresource;
}

std::string client_of(const http::HttpRequest& request) {
  return request.headers.get(kClientHeader).value_or("local");
}

// --- AimdController ---------------------------------------------------------

AimdController::AimdController(std::string name, AimdConfig config,
                               obs::MetricsRegistry& metrics)
    : name_(name),
      config_(config),
      metrics_(metrics),
      narrowed_(metrics.counter("overload." + name + ".narrowed")),
      widened_(metrics.counter("overload." + name + ".widened")),
      limit_min_(metrics.gauge("overload." + name + ".limit_min")) {}

AimdController::Window& AimdController::window(const std::string& key) {
  auto [it, inserted] = windows_.try_emplace(key);
  if (inserted) it->second.limit = static_cast<double>(config_.max_limit);
  return it->second;
}

void AimdController::set_min_gauge() {
  double min_limit = static_cast<double>(config_.max_limit);
  for (const auto& [key, w] : windows_) min_limit = std::min(min_limit, w.limit);
  limit_min_.set(std::floor(min_limit));
}

std::size_t AimdController::limit(const std::string& key) {
  const double floor_limit = std::floor(window(key).limit);
  return std::max(config_.min_limit,
                  std::max<std::size_t>(1, static_cast<std::size_t>(floor_limit)));
}

void AimdController::record(const std::string& key, Duration latency, bool ok) {
  Window& w = window(key);
  const double min_limit = static_cast<double>(std::max<std::size_t>(1, config_.min_limit));
  const double max_limit = static_cast<double>(config_.max_limit);
  if (!ok || latency > config_.latency_target) {
    // Multiplicative decrease: the origin is sick or saturated; narrow the
    // window so queued work waits at the pool instead of piling onto it.
    const double next = std::max(min_limit, w.limit * config_.decrease_factor);
    if (next < w.limit) {
      const bool hit_floor = next <= min_limit && w.limit > min_limit;
      w.limit = next;
      ++w.narrowed;
      narrowed_.inc();
      // Only the floor-hit transition is a flight event: recording every
      // narrow would wash the ring with routine AIMD adjustments.
      if (hit_floor && sim_ != nullptr) {
        metrics_.events().record(sim_->now(), "aimd", "floor",
                                 name_ + " " + key + " window at min");
      }
      PAN_DEBUG(kLog) << key << ": window narrowed to " << w.limit;
    }
  } else {
    const double next = std::min(max_limit, w.limit + config_.increase_step);
    if (next > w.limit) {
      w.limit = next;
      widened_.inc();
    }
  }
  set_min_gauge();
}

std::string AimdController::snapshot_json() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [key, w] : windows_) {
    if (!first) out += ",";
    first = false;
    out += strings::json_quote(key) + ":" +
           strings::format("{\"limit\":%zu,\"narrowed\":%llu}",
                           static_cast<std::size_t>(std::floor(w.limit)),
                           static_cast<unsigned long long>(w.narrowed));
  }
  out += "}";
  return out;
}

// --- OverloadController -----------------------------------------------------

OverloadController::OverloadController(sim::Simulator& sim, obs::MetricsRegistry& metrics,
                                       OverloadConfig config, std::string prefix)
    : sim_(sim),
      config_(config),
      metrics_(metrics),
      prefix_(prefix),
      pressure_updated_(sim.now()),
      admitted_(metrics.counter(prefix + ".admitted")),
      rejected_rate_(metrics.counter(prefix + ".rejected_rate")),
      rejected_capacity_(metrics.counter(prefix + ".rejected_capacity")),
      brownout_entered_(metrics.counter(prefix + ".brownout_entered")),
      brownout_exited_(metrics.counter(prefix + ".brownout_exited")),
      in_flight_gauge_(metrics.gauge(prefix + ".in_flight")),
      pressure_gauge_(metrics.gauge(prefix + ".pressure")),
      brownout_gauge_(metrics.gauge(prefix + ".brownout")) {}

OverloadController::Bucket& OverloadController::refill(const std::string& client) {
  const double burst =
      config_.client_burst > 0.0 ? config_.client_burst : std::max(1.0, config_.client_rate);
  auto [it, inserted] = buckets_.try_emplace(client);
  Bucket& bucket = it->second;
  if (inserted) {
    bucket.tokens = burst;
    bucket.updated = sim_.now();
    return bucket;
  }
  const double elapsed_s = (sim_.now() - bucket.updated).millis() / 1000.0;
  bucket.tokens = std::min(burst, bucket.tokens + elapsed_s * config_.client_rate);
  bucket.updated = sim_.now();
  return bucket;
}

std::size_t OverloadController::admit_threshold(RequestPriority priority) const {
  const double cap = static_cast<double>(config_.max_in_flight);
  double fraction = 1.0;
  if (priority == RequestPriority::kSubresource) {
    fraction = config_.subresource_admit_fraction;
  } else if (priority == RequestPriority::kProbe) {
    fraction = config_.probe_admit_fraction;
  }
  return std::max<std::size_t>(1, static_cast<std::size_t>(cap * fraction));
}

void OverloadController::update_pressure() {
  if (config_.max_in_flight == 0) return;  // no cap: pressure undefined
  const Duration elapsed = sim_.now() - pressure_updated_;
  pressure_updated_ = sim_.now();
  const double utilization =
      static_cast<double>(in_flight_) / static_cast<double>(config_.max_in_flight);
  if (elapsed > Duration::zero()) {
    const double tau = std::max(1.0, config_.pressure_tau.millis());
    const double alpha = 1.0 - std::exp(-elapsed.millis() / tau);
    pressure_ += alpha * (utilization - pressure_);
  }
  pressure_gauge_.set(pressure_);

  if (!config_.enabled) return;
  // Brownout hysteresis: sustained pressure trips it, a lower exit
  // threshold clears it.
  if (pressure_ >= config_.brownout_enter) {
    if (!above_enter_since_.has_value()) above_enter_since_ = sim_.now();
    if (!brownout_ && sim_.now() - *above_enter_since_ >= config_.brownout_hold) {
      brownout_ = true;
      brownout_entered_.inc();
      brownout_gauge_.set(1.0);
      metrics_.events().record(sim_.now(), "overload", "brownout-enter",
                               strings::format("%s pressure=%.2f", prefix_.c_str(), pressure_));
      PAN_DEBUG(kLog) << "brownout entered (pressure " << pressure_ << ")";
    }
  } else {
    above_enter_since_.reset();
    if (brownout_ && pressure_ <= config_.brownout_exit) {
      brownout_ = false;
      brownout_exited_.inc();
      brownout_gauge_.set(0.0);
      metrics_.events().record(sim_.now(), "overload", "brownout-exit",
                               strings::format("%s pressure=%.2f", prefix_.c_str(), pressure_));
      PAN_DEBUG(kLog) << "brownout exited (pressure " << pressure_ << ")";
    }
  }
}

OverloadController::Admission OverloadController::admit(const std::string& client,
                                                        RequestPriority priority) {
  update_pressure();
  if (config_.enabled) {
    if (config_.client_rate > 0.0) {
      Bucket& bucket = refill(client);
      if (bucket.tokens < 1.0) {
        rejected_rate_.inc();
        // Advertise when the next token lands (at least the configured
        // floor) so well-behaved clients pace themselves.
        const double wait_s = (1.0 - bucket.tokens) / config_.client_rate;
        const Duration wait = milliseconds(static_cast<std::int64_t>(wait_s * 1000.0) + 1);
        return Admission{Verdict::kRejectRate, std::max(config_.retry_after, wait)};
      }
      bucket.tokens -= 1.0;
    }
    if (config_.max_in_flight > 0 && in_flight_ >= admit_threshold(priority)) {
      rejected_capacity_.inc();
      return Admission{Verdict::kRejectCapacity, config_.retry_after};
    }
  }
  ++in_flight_;
  admitted_.inc();
  in_flight_gauge_.set(static_cast<double>(in_flight_));
  update_pressure();
  return Admission{Verdict::kAdmit, Duration::zero()};
}

void OverloadController::release() {
  if (in_flight_ > 0) --in_flight_;
  in_flight_gauge_.set(static_cast<double>(in_flight_));
  update_pressure();
}

bool OverloadController::brownout() {
  update_pressure();
  return brownout_;
}

std::string OverloadController::snapshot_json() const {
  return strings::format(
      "{\"enabled\":%s,\"in_flight\":%zu,\"max_in_flight\":%zu,\"pressure\":%.3f,"
      "\"brownout\":%s,\"admitted\":%llu,\"rejected_rate\":%llu,"
      "\"rejected_capacity\":%llu}",
      config_.enabled ? "true" : "false", in_flight_, config_.max_in_flight, pressure_,
      brownout_ ? "true" : "false", static_cast<unsigned long long>(admitted_.value()),
      static_cast<unsigned long long>(rejected_rate_.value()),
      static_cast<unsigned long long>(rejected_capacity_.value()));
}

}  // namespace pan::proxy
