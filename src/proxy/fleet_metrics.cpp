#include "proxy/fleet_metrics.hpp"

#include "util/strings.hpp"

namespace pan::proxy {

void FleetMetricsAggregator::ingest(const std::string& name, std::uint64_t generation,
                                    const obs::MetricsRegistry& registry, TimePoint now) {
  Slot& slot = slots_[name];
  if (slot.seen && slot.generation != generation) {
    // The replica restarted since the last snapshot: its cumulative state
    // reset to zero. Fold what the dead generation reported into the
    // monotonic base so the fleet totals never step backward.
    ++folds_;
    ++slot.folds;
    for (const auto& [cname, value] : slot.counter_latest) slot.counter_base[cname] += value;
    for (const auto& [hname, hist] : slot.hist_latest) {
      auto it = slot.hist_base.find(hname);
      if (it == slot.hist_base.end()) {
        slot.hist_base.emplace(hname, hist);
      } else if (!it->second.merge(hist)) {
        ++layout_conflicts_;
      }
    }
    slot.counter_latest.clear();
    slot.gauge_latest.clear();
    slot.hist_latest.clear();
  }
  slot.seen = true;
  slot.generation = generation;
  slot.last_ingest = now;
  ++ingests_;
  for (const auto& [cname, counter] : registry.counters()) {
    slot.counter_latest[cname] = counter.value();
  }
  for (const auto& [gname, gauge] : registry.gauges()) {
    slot.gauge_latest[gname] = gauge.value();
  }
  slot.hist_latest.clear();
  for (const auto& [hname, hist] : registry.histograms()) {
    slot.hist_latest.emplace(hname, hist);
  }
}

void FleetMetricsAggregator::merge_histogram(const std::string& name,
                                             const obs::Histogram& h,
                                             obs::MetricsRegistry& out) const {
  obs::Histogram& target = out.histogram(name);
  if (target.merge(h)) return;
  if (target.count() == 0) {
    // Foreign (explicit-bounds) layout and nothing merged yet: adopt it.
    target = h;
  } else {
    ++layout_conflicts_;
  }
}

void FleetMetricsAggregator::merge_slot_into(const Slot& slot,
                                             obs::MetricsRegistry& out) const {
  for (const auto& [name, value] : slot.counter_base) out.counter(name).inc(value);
  for (const auto& [name, value] : slot.counter_latest) out.counter(name).inc(value);
  for (const auto& [name, value] : slot.gauge_latest) out.gauge(name).add(value);
  for (const auto& [name, hist] : slot.hist_base) merge_histogram(name, hist, out);
  for (const auto& [name, hist] : slot.hist_latest) merge_histogram(name, hist, out);
}

void FleetMetricsAggregator::build_merged(obs::MetricsRegistry& out) const {
  for (const auto& [name, slot] : slots_) {
    (void)name;
    merge_slot_into(slot, out);
  }
}

bool FleetMetricsAggregator::build_replica(const std::string& name,
                                           obs::MetricsRegistry& out) const {
  const auto it = slots_.find(name);
  if (it == slots_.end()) return false;
  merge_slot_into(it->second, out);
  return true;
}

std::string FleetMetricsAggregator::fleet_json(std::string_view prefix) const {
  std::string out = "{\"replicas\":{";
  bool first = true;
  for (const auto& [name, slot] : slots_) {
    if (!first) out += ',';
    first = false;
    obs::MetricsRegistry view;
    merge_slot_into(slot, view);
    out += strings::json_quote(name) +
           ":{\"generation\":" + std::to_string(slot.generation) +
           ",\"folds\":" + std::to_string(slot.folds) +
           ",\"last_ingest_ms\":" + strings::format("%.3f", slot.last_ingest.millis()) +
           ",\"metrics\":" + view.to_json(prefix) + "}";
  }
  obs::MetricsRegistry merged;
  build_merged(merged);
  out += "},\"fleet\":" + merged.to_json(prefix);
  out += ",\"ingests\":" + std::to_string(ingests_);
  out += ",\"generation_folds\":" + std::to_string(folds_);
  out += ",\"layout_conflicts\":" + std::to_string(layout_conflicts_) + "}";
  return out;
}

std::string FleetMetricsAggregator::fleet_prom(std::string_view prefix) const {
  obs::MetricsRegistry merged;
  build_merged(merged);
  return merged.to_prom(prefix, {{"scope", "fleet"}});
}

}  // namespace pan::proxy
