#include "proxy/reverse_proxy.hpp"

#include <algorithm>
#include <cstdlib>

namespace pan::proxy {

namespace {
/// The pool key for the single configured backend.
constexpr const char* kBackendKey = "backend";
}  // namespace

http::OriginPoolConfig ReverseProxy::backend_pool_config(const ReverseProxyConfig& config,
                                                         http::ConcurrencyLimiter* limiter) {
  http::OriginPoolConfig pool;
  pool.name = "revproxy.backend";
  pool.max_conns_per_origin = config.max_backend_conns;
  // Unlimited outstanding per connection: once the pool is full, requests
  // pipeline onto the *least-outstanding* live connection instead of
  // convoying behind the first one.
  pool.max_outstanding_per_conn = 0;
  pool.idle_ttl = config.pool_idle_ttl;
  pool.limiter = limiter;
  pool.deadline_shed = config.overload.enabled;
  return pool;
}

TimePoint ReverseProxy::relay_deadline(const http::HttpRequest& request) const {
  Duration budget = config_.backend_budget;
  if (const auto header = request.headers.get(kDeadlineHeader)) {
    char* end = nullptr;
    const long long ms = std::strtoll(header->c_str(), &end, 10);
    if (end != header->c_str() && ms > 0) {
      budget = std::min(budget, milliseconds(static_cast<std::int64_t>(ms)));
    }
  }
  return stack_.host().simulator().now() + budget;
}

ReverseProxy::ReverseProxy(scion::ScionStack& stack, std::uint16_t listen_port,
                           net::Endpoint backend, ReverseProxyConfig config)
    : stack_(stack),
      backend_(backend),
      config_(std::move(config)),
      owned_metrics_(config_.metrics == nullptr ? std::make_unique<obs::MetricsRegistry>()
                                                : nullptr),
      metrics_(config_.metrics != nullptr ? config_.metrics : owned_metrics_.get()),
      collector_(config_.collector),
      overload_(stack.host().simulator(), *metrics_, config_.overload, "revproxy.overload"),
      backend_limiter_("revproxy.backend", config_.backend_aimd, *metrics_),
      backend_pool_(stack.host().simulator(), *metrics_,
                    backend_pool_config(config_, config_.overload.enabled &&
                                                         config_.backend_aimd.max_limit > 0
                                                     ? &backend_limiter_
                                                     : nullptr)) {
  backend_limiter_.set_simulator(&stack_.host().simulator());
  server_ = std::make_unique<http::ScionHttpServer>(
      stack_, listen_port,
      [this](const http::HttpRequest& request, http::HttpServer::Respond respond) {
        relay(request, std::move(respond));
      },
      config_.quic);
}

void ReverseProxy::record_hop(const HopTrace& hop, int status, std::string_view outcome,
                              bool backend_ran) {
  const TimePoint now = stack_.host().simulator().now();
  if (backend_ran) {
    obs::CollectedSpan backend;
    backend.trace_id = hop.ctx.trace_id;
    backend.span_id = hop.backend_span;
    backend.parent_id = hop.relay_span;
    backend.name = "backend";
    backend.component = "revproxy";
    backend.start = hop.backend_start;
    backend.duration = now - hop.backend_start;
    backend.attrs.emplace_back("status", std::to_string(status));
    collector_->record_span(std::move(backend));
  }
  obs::CollectedSpan relay;
  relay.trace_id = hop.ctx.trace_id;
  relay.span_id = hop.relay_span;
  relay.parent_id = hop.ctx.parent_span_id;
  relay.name = "relay";
  relay.component = "revproxy";
  relay.start = hop.ingress;
  relay.duration = now - hop.ingress;
  relay.attrs.emplace_back("status", std::to_string(status));
  relay.attrs.emplace_back("outcome", std::string(outcome));
  collector_->record_span(std::move(relay));
}

void ReverseProxy::relay(const http::HttpRequest& request,
                         http::HttpServer::Respond respond) {
  // Honor the client hop's trace context: this hop's spans parent under the
  // SKIP proxy's fetch span. Span ids live in this process's hop prefix, so
  // they can't collide with ids minted on the client side.
  std::shared_ptr<HopTrace> hop;
  if (collector_ != nullptr) {
    if (const auto header = request.headers.get(std::string(obs::kTraceHeader))) {
      if (const auto ctx = obs::parse_trace_context(*header)) {
        hop = std::make_shared<HopTrace>();
        hop->ctx = *ctx;
        hop->ingress = stack_.host().simulator().now();
        hop->relay_span = kHopReverseProxy | next_span_seq_++;
        hop->backend_span = kHopReverseProxy | next_span_seq_++;
      }
    }
  }

  // Admission before any work is queued: a rejected request costs one
  // synthesized response, not a backend slot.
  const OverloadController::Admission admission =
      overload_.admit(client_of(request), priority_of(request));
  if (admission.verdict != OverloadController::Verdict::kAdmit) {
    ++rejected_;
    const bool rate = admission.verdict == OverloadController::Verdict::kRejectRate;
    if (hop != nullptr) record_hop(*hop, rate ? 429 : 503, "shed", /*backend_ran=*/false);
    respond(http::make_retry_after_response(
        rate ? 429 : 503, admission.retry_after,
        rate ? "reverse proxy: per-client rate limit exceeded"
             : "reverse proxy: over capacity"));
    return;
  }

  http::SubmitOptions options;
  options.priority = static_cast<std::uint8_t>(priority_of(request));
  options.deadline = relay_deadline(request);
  auto forward = [this, request, options, hop, respond = std::move(respond)]() mutable {
    if (hop != nullptr) hop->backend_start = stack_.host().simulator().now();
    backend_pool_.submit(
        kBackendKey, request, options,
        [this, hop, respond = std::move(respond)](Result<http::HttpResponse> result) {
          overload_.release();
          ++relayed_;
          if (!result.ok()) {
            ++backend_errors_;
            if (http::OriginPool::is_shed(result.error())) {
              metrics_->counter("revproxy.overload.shed_requests").inc();
              if (hop != nullptr) record_hop(*hop, 503, "shed", /*backend_ran=*/true);
              respond(http::make_retry_after_response(
                  503, config_.overload.retry_after,
                  "reverse proxy shed under load: " + result.error()));
            } else if (http::OriginPool::is_expired(result.error()) ||
                       http::OriginPool::is_queue_timeout(result.error())) {
              if (hop != nullptr) record_hop(*hop, 504, "timeout", /*backend_ran=*/true);
              respond(http::make_text_response(
                  504, "reverse proxy: deadline expired: " + result.error()));
            } else {
              if (hop != nullptr) record_hop(*hop, 502, "fault", /*backend_ran=*/true);
              respond(http::make_text_response(502, "reverse proxy: " + result.error()));
            }
            return;
          }
          http::HttpResponse response = std::move(result).take();
          if (config_.inject_strict_scion.has_value()) {
            http::set_strict_scion(response, *config_.inject_strict_scion);
          }
          if (config_.inject_path_preference.has_value()) {
            response.headers.set("Path-Preference", *config_.inject_path_preference);
          }
          response.headers.set("Via", "pan-reverse-proxy");
          if (hop != nullptr) {
            record_hop(*hop, response.status, response.status >= 400 ? "error" : "ok",
                       /*backend_ran=*/true);
          }
          respond(std::move(response));
        },
        [this]() {
          return std::make_unique<http::LegacyPooledConnection>(stack_.host(), backend_,
                                                                config_.tcp);
        });
  };
  if (config_.processing_overhead > Duration::zero()) {
    stack_.host().simulator().schedule_after(config_.processing_overhead, std::move(forward));
  } else {
    forward();
  }
}

}  // namespace pan::proxy
