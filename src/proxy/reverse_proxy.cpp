#include "proxy/reverse_proxy.hpp"

#include <algorithm>
#include <cstdlib>

namespace pan::proxy {

namespace {
/// The pool key for the single configured backend.
constexpr const char* kBackendKey = "backend";
}  // namespace

http::OriginPoolConfig ReverseProxy::backend_pool_config(const ReverseProxyConfig& config,
                                                         http::ConcurrencyLimiter* limiter) {
  http::OriginPoolConfig pool;
  pool.name = "revproxy.backend";
  pool.max_conns_per_origin = config.max_backend_conns;
  // Unlimited outstanding per connection: once the pool is full, requests
  // pipeline onto the *least-outstanding* live connection instead of
  // convoying behind the first one.
  pool.max_outstanding_per_conn = 0;
  pool.idle_ttl = config.pool_idle_ttl;
  pool.limiter = limiter;
  pool.deadline_shed = config.overload.enabled;
  return pool;
}

TimePoint ReverseProxy::relay_deadline(const http::HttpRequest& request) const {
  Duration budget = config_.backend_budget;
  if (const auto header = request.headers.get(kDeadlineHeader)) {
    char* end = nullptr;
    const long long ms = std::strtoll(header->c_str(), &end, 10);
    if (end != header->c_str() && ms > 0) {
      budget = std::min(budget, milliseconds(static_cast<std::int64_t>(ms)));
    }
  }
  return stack_.host().simulator().now() + budget;
}

ReverseProxy::ReverseProxy(scion::ScionStack& stack, std::uint16_t listen_port,
                           net::Endpoint backend, ReverseProxyConfig config)
    : stack_(stack),
      backend_(backend),
      config_(std::move(config)),
      owned_metrics_(config_.metrics == nullptr ? std::make_unique<obs::MetricsRegistry>()
                                                : nullptr),
      metrics_(config_.metrics != nullptr ? config_.metrics : owned_metrics_.get()),
      overload_(stack.host().simulator(), *metrics_, config_.overload, "revproxy.overload"),
      backend_limiter_("revproxy.backend", config_.backend_aimd, *metrics_),
      backend_pool_(stack.host().simulator(), *metrics_,
                    backend_pool_config(config_, config_.overload.enabled &&
                                                         config_.backend_aimd.max_limit > 0
                                                     ? &backend_limiter_
                                                     : nullptr)) {
  server_ = std::make_unique<http::ScionHttpServer>(
      stack_, listen_port,
      [this](const http::HttpRequest& request, http::HttpServer::Respond respond) {
        relay(request, std::move(respond));
      },
      config_.quic);
}

void ReverseProxy::relay(const http::HttpRequest& request,
                         http::HttpServer::Respond respond) {
  // Admission before any work is queued: a rejected request costs one
  // synthesized response, not a backend slot.
  const OverloadController::Admission admission =
      overload_.admit(client_of(request), priority_of(request));
  if (admission.verdict != OverloadController::Verdict::kAdmit) {
    ++rejected_;
    const bool rate = admission.verdict == OverloadController::Verdict::kRejectRate;
    respond(http::make_retry_after_response(
        rate ? 429 : 503, admission.retry_after,
        rate ? "reverse proxy: per-client rate limit exceeded"
             : "reverse proxy: over capacity"));
    return;
  }

  http::SubmitOptions options;
  options.priority = static_cast<std::uint8_t>(priority_of(request));
  options.deadline = relay_deadline(request);
  auto forward = [this, request, options, respond = std::move(respond)]() mutable {
    backend_pool_.submit(
        kBackendKey, request, options,
        [this, respond = std::move(respond)](Result<http::HttpResponse> result) {
          overload_.release();
          ++relayed_;
          if (!result.ok()) {
            ++backend_errors_;
            if (http::OriginPool::is_shed(result.error())) {
              metrics_->counter("revproxy.overload.shed_requests").inc();
              respond(http::make_retry_after_response(
                  503, config_.overload.retry_after,
                  "reverse proxy shed under load: " + result.error()));
            } else if (http::OriginPool::is_expired(result.error()) ||
                       http::OriginPool::is_queue_timeout(result.error())) {
              respond(http::make_text_response(
                  504, "reverse proxy: deadline expired: " + result.error()));
            } else {
              respond(http::make_text_response(502, "reverse proxy: " + result.error()));
            }
            return;
          }
          http::HttpResponse response = std::move(result).take();
          if (config_.inject_strict_scion.has_value()) {
            http::set_strict_scion(response, *config_.inject_strict_scion);
          }
          if (config_.inject_path_preference.has_value()) {
            response.headers.set("Path-Preference", *config_.inject_path_preference);
          }
          response.headers.set("Via", "pan-reverse-proxy");
          respond(std::move(response));
        },
        [this]() {
          return std::make_unique<http::LegacyPooledConnection>(stack_.host(), backend_,
                                                                config_.tcp);
        });
  };
  if (config_.processing_overhead > Duration::zero()) {
    stack_.host().simulator().schedule_after(config_.processing_overhead, std::move(forward));
  } else {
    forward();
  }
}

}  // namespace pan::proxy
