#include "proxy/reverse_proxy.hpp"

namespace pan::proxy {

namespace {
/// The pool key for the single configured backend.
constexpr const char* kBackendKey = "backend";
}  // namespace

http::OriginPoolConfig ReverseProxy::backend_pool_config(const ReverseProxyConfig& config) {
  http::OriginPoolConfig pool;
  pool.name = "revproxy.backend";
  pool.max_conns_per_origin = config.max_backend_conns;
  // Unlimited outstanding per connection: once the pool is full, requests
  // pipeline onto the *least-outstanding* live connection instead of
  // convoying behind the first one.
  pool.max_outstanding_per_conn = 0;
  pool.idle_ttl = config.pool_idle_ttl;
  return pool;
}

ReverseProxy::ReverseProxy(scion::ScionStack& stack, std::uint16_t listen_port,
                           net::Endpoint backend, ReverseProxyConfig config)
    : stack_(stack),
      backend_(backend),
      config_(std::move(config)),
      owned_metrics_(config_.metrics == nullptr ? std::make_unique<obs::MetricsRegistry>()
                                                : nullptr),
      metrics_(config_.metrics != nullptr ? config_.metrics : owned_metrics_.get()),
      backend_pool_(stack.host().simulator(), *metrics_, backend_pool_config(config_)) {
  server_ = std::make_unique<http::ScionHttpServer>(
      stack_, listen_port,
      [this](const http::HttpRequest& request, http::HttpServer::Respond respond) {
        relay(request, std::move(respond));
      },
      config_.quic);
}

void ReverseProxy::relay(const http::HttpRequest& request,
                         http::HttpServer::Respond respond) {
  auto forward = [this, request, respond = std::move(respond)]() mutable {
    backend_pool_.submit(
        kBackendKey, request,
        [this, respond = std::move(respond)](Result<http::HttpResponse> result) {
          ++relayed_;
          if (!result.ok()) {
            ++backend_errors_;
            respond(http::make_text_response(502, "reverse proxy: " + result.error()));
            return;
          }
          http::HttpResponse response = std::move(result).take();
          if (config_.inject_strict_scion.has_value()) {
            http::set_strict_scion(response, *config_.inject_strict_scion);
          }
          if (config_.inject_path_preference.has_value()) {
            response.headers.set("Path-Preference", *config_.inject_path_preference);
          }
          response.headers.set("Via", "pan-reverse-proxy");
          respond(std::move(response));
        },
        [this]() {
          return std::make_unique<http::LegacyPooledConnection>(stack_.host(), backend_,
                                                                config_.tcp);
        });
  };
  if (config_.processing_overhead > Duration::zero()) {
    stack_.host().simulator().schedule_after(config_.processing_overhead, std::move(forward));
  } else {
    forward();
  }
}

}  // namespace pan::proxy
