#include "proxy/reverse_proxy.hpp"

namespace pan::proxy {

ReverseProxy::ReverseProxy(scion::ScionStack& stack, std::uint16_t listen_port,
                           net::Endpoint backend, ReverseProxyConfig config)
    : stack_(stack), backend_(backend), config_(std::move(config)) {
  server_ = std::make_unique<http::ScionHttpServer>(
      stack_, listen_port,
      [this](const http::HttpRequest& request, http::HttpServer::Respond respond) {
        relay(request, std::move(respond));
      },
      config_.quic);
}

http::LegacyHttpConnection* ReverseProxy::idle_backend_conn() {
  std::erase_if(backend_conns_, [](const BackendEntry& e) {
    return e.conn->transport().state() == transport::Connection::State::kClosed &&
           e.outstanding == 0;
  });
  for (BackendEntry& entry : backend_conns_) {
    if (entry.outstanding == 0 &&
        entry.conn->transport().state() != transport::Connection::State::kClosed) {
      ++entry.outstanding;
      return entry.conn.get();
    }
  }
  if (backend_conns_.size() >= config_.max_backend_conns) {
    // Pipeline on the first live connection rather than dropping.
    for (BackendEntry& entry : backend_conns_) {
      if (entry.conn->transport().state() != transport::Connection::State::kClosed) {
        ++entry.outstanding;
        return entry.conn.get();
      }
    }
    return nullptr;
  }
  backend_conns_.push_back(BackendEntry{
      std::make_unique<http::LegacyHttpConnection>(stack_.host(), backend_, config_.tcp), 1});
  return backend_conns_.back().conn.get();
}

void ReverseProxy::relay(const http::HttpRequest& request,
                         http::HttpServer::Respond respond) {
  auto forward = [this, request, respond = std::move(respond)]() mutable {
    http::LegacyHttpConnection* conn = idle_backend_conn();
    if (conn == nullptr) {
      respond(http::make_text_response(503, "reverse proxy: backend pool exhausted"));
      return;
    }
    conn->fetch(request, [this, conn,
                          respond = std::move(respond)](Result<http::HttpResponse> result) {
      for (BackendEntry& entry : backend_conns_) {
        if (entry.conn.get() == conn && entry.outstanding > 0) {
          --entry.outstanding;
          break;
        }
      }
      ++relayed_;
      if (!result.ok()) {
        ++backend_errors_;
        respond(http::make_text_response(502, "reverse proxy: " + result.error()));
        return;
      }
      http::HttpResponse response = std::move(result).take();
      if (config_.inject_strict_scion.has_value()) {
        http::set_strict_scion(response, *config_.inject_strict_scion);
      }
      if (config_.inject_path_preference.has_value()) {
        response.headers.set("Path-Preference", *config_.inject_path_preference);
      }
      response.headers.set("Via", "pan-reverse-proxy");
      respond(std::move(response));
    });
  };
  if (config_.processing_overhead > Duration::zero()) {
    stack_.host().simulator().schedule_after(config_.processing_overhead, std::move(forward));
  } else {
    forward();
  }
}

}  // namespace pan::proxy
