#include "proxy/cluster.hpp"

#include <algorithm>

#include "http/url.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace pan::proxy {

namespace {
constexpr std::string_view kLog = "fleet";

/// FNV-1a over the key, finished with a splitmix round so nearby keys
/// ("rep-0#1" / "rep-0#2") land far apart on the ring.
std::uint64_t ring_hash(std::string_view key) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

http::HttpResponse fleet_error(int status, const std::string& message) {
  http::HttpResponse response = http::make_text_response(status, message);
  response.headers.set("X-Skip-Error", message);
  return response;
}

}  // namespace

const char* to_string(ReplicaHealth health) {
  switch (health) {
    case ReplicaHealth::kHealthy: return "healthy";
    case ReplicaHealth::kDegraded: return "degraded";
    case ReplicaHealth::kDraining: return "draining";
    case ReplicaHealth::kDown: return "down";
  }
  return "?";
}

ProxyCluster::ProxyCluster(sim::Simulator& sim, net::Host& host, scion::ScionStack& stack,
                           scion::Daemon& daemon, const dns::Zone& zone, ClusterConfig config)
    : sim_(sim),
      host_(host),
      stack_(stack),
      daemon_(daemon),
      zone_(zone),
      config_(std::move(config)),
      owned_metrics_(config_.metrics == nullptr ? std::make_unique<obs::MetricsRegistry>()
                                                : nullptr),
      metrics_(config_.metrics != nullptr ? config_.metrics : owned_metrics_.get()),
      fleet_series_(*metrics_, config_.timeseries, sim.now()),
      alive_(std::make_shared<bool>(true)) {
  config_.replicas = std::max<std::size_t>(1, config_.replicas);
  config_.vnodes_per_replica = std::max<std::size_t>(1, config_.vnodes_per_replica);
  replicas_.resize(config_.replicas);
  for (std::size_t i = 0; i < config_.replicas; ++i) {
    replicas_[i].name = config_.replica_name_prefix + std::to_string(i);
    build_replica(i);
    for (std::size_t v = 0; v < config_.vnodes_per_replica; ++v) {
      ring_.emplace_back(ring_hash(replicas_[i].name + "#" + std::to_string(v)), i);
    }
  }
  std::sort(ring_.begin(), ring_.end());
  update_health_gauges();
  // The prober heartbeat; runs for the cluster's whole life.
  if (config_.probe_interval > Duration::zero()) {
    sim_.schedule_after(config_.probe_interval, [this, alive = alive_] {
      if (*alive) probe_all();
    });
  }
}

ProxyCluster::~ProxyCluster() { *alive_ = false; }

void ProxyCluster::build_replica(std::size_t index) {
  Replica& rep = replicas_[index];
  rep.resolver = std::make_unique<dns::Resolver>(sim_, zone_, config_.resolver);
  if (config_.on_resolver_created) config_.on_resolver_created(*rep.resolver);
  ProxyConfig proxy_config = config_.proxy;
  // Each replica's .prom exposition carries its own instance label so a
  // fleet scrape can tell the series apart.
  proxy_config.prom_instance = rep.name;
  rep.proxy =
      std::make_unique<SkipProxy>(sim_, host_, stack_, daemon_, *rep.resolver, proxy_config);
  rep.crashed = false;
  rep.hung = false;
  rep.probe_misses = 0;
  rep.error_ewma = 0.0;
  install_learn_hook(index);
}

void ProxyCluster::install_learn_hook(std::size_t index) {
  replicas_[index].proxy->detector().set_learn_hook(
      [this, index, alive = alive_](const std::string& domain, const scion::ScionAddr& addr,
                                    Duration max_age, const std::string& identity) {
        if (*alive) broadcast_learn(index, domain, addr, max_age, identity);
      });
}

void ProxyCluster::broadcast_learn(std::size_t from, const std::string& domain,
                                   const scion::ScionAddr& addr, Duration max_age,
                                   const std::string& identity) {
  // Fan the learn (or withdrawal) out to every live peer through the
  // hook-free import path — a broadcast must never echo.
  bool any = false;
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (i == from || replicas_[i].crashed || replicas_[i].proxy == nullptr) continue;
    replicas_[i].proxy->detector().apply_learned(domain, addr, max_age, identity);
    any = true;
  }
  if (!any) return;
  if (max_age <= Duration::zero()) {
    count("fleet.cache_invalidations");
    event("cache-invalidate", replicas_[from].name + " withdrew " + domain);
  } else {
    count("fleet.cache_broadcasts");
  }
}

// --- routing ---------------------------------------------------------------

bool ProxyCluster::accepts(const Replica& rep, const std::string& origin_key) const {
  if (rep.crashed || rep.proxy == nullptr) return false;
  if (rep.health == ReplicaHealth::kDown) return false;
  if (rep.draining) {
    // Draining replicas finish the origins they own; nothing new.
    const auto it = owners_.find(origin_key);
    return it != owners_.end() && replicas_[it->second].name == rep.name;
  }
  return true;
}

int ProxyCluster::route(const std::string& origin_key,
                        const std::vector<std::size_t>& tried) const {
  if (ring_.empty()) return -1;
  const std::uint64_t h = ring_hash(origin_key);
  auto it = std::lower_bound(ring_.begin(), ring_.end(),
                             std::make_pair(h, std::size_t{0}));
  for (std::size_t step = 0; step < ring_.size(); ++step, ++it) {
    if (it == ring_.end()) it = ring_.begin();
    const std::size_t index = it->second;
    if (std::find(tried.begin(), tried.end(), index) != tried.end()) continue;
    if (accepts(replicas_[index], origin_key)) return static_cast<int>(index);
  }
  return -1;
}

std::string ProxyCluster::origin_key_of(const http::HttpRequest& request) const {
  if (const auto url = http::parse_url(request.target); url.ok()) {
    return url.value().authority();
  }
  if (const std::string host = request.host(); !host.empty()) return host;
  return request.target;
}

std::string ProxyCluster::owner_of(const std::string& origin_key) {
  const int index = route(origin_key, {});
  return index < 0 ? std::string{} : replicas_[static_cast<std::size_t>(index)].name;
}

// --- the request path ------------------------------------------------------

void ProxyCluster::fetch(http::HttpRequest request, ProxyRequestOptions options,
                         SkipProxy::FetchFn on_result) {
  if (strings::starts_with(request.target, "/skip/")) {
    if (strings::starts_with(request.target, "/skip/fleet")) {
      serve_fleet(request, std::move(options), on_result);
      return;
    }
    forward_internal(std::move(request), std::move(options), std::move(on_result));
    return;
  }

  count("fleet.requests");
  auto pending = std::make_shared<PendingRequest>();
  pending->id = next_request_id_++;
  pending->origin_key = origin_key_of(request);
  pending->request = std::move(request);
  pending->options = std::move(options);
  pending->on_result = std::move(on_result);
  pending->deadline = pending->options.deadline.value_or(
      sim_.now() + config_.proxy.request_timeout);
  pending->options.deadline = pending->deadline;

  const int index = route(pending->origin_key, pending->tried);
  if (index < 0) {
    count("fleet.no_replica");
    shed(pending, "no live replica for " + pending->origin_key);
    return;
  }
  pending_[pending->id] = pending;
  dispatch(pending, static_cast<std::size_t>(index));
}

void ProxyCluster::dispatch(const PendingPtr& pending, std::size_t replica_index) {
  Replica& rep = replicas_[replica_index];
  pending->replica_index = replica_index;
  pending->replica_generation = rep.generation;
  pending->tried.push_back(replica_index);
  ++pending->attempt;
  ++rep.dispatched;

  // Ownership accounting: the first dispatch of an origin to a different
  // replica than last time is a handoff (rebalance or failover rehash).
  const auto owner = owners_.find(pending->origin_key);
  if (owner == owners_.end()) {
    owners_[pending->origin_key] = replica_index;
  } else if (owner->second != replica_index) {
    count("fleet.handoffs");
    event("handoff", pending->origin_key + ": " + replicas_[owner->second].name + " -> " +
                         rep.name);
    owner->second = replica_index;
  }

  ProxyRequestOptions options = pending->options;
  if (pending->attempt > 1) {
    // A hedged retry must not re-enter the original request's trace: the
    // replica mints a fresh one.
    options.trace = nullptr;
  }
  const std::uint64_t generation = rep.generation;
  const std::uint64_t attempt = pending->attempt;
  rep.proxy->fetch(
      pending->request, std::move(options),
      [this, alive = alive_, pending, replica_index, generation,
       attempt](ProxyResult result) {
        if (!*alive) return;
        Replica& from = replicas_[replica_index];
        // Answers from a dead process generation died with it; answers from
        // a wedged replica never make it out of the box.
        if (from.generation != generation) return;
        if (from.hung) return;
        ++from.answered;
        const bool error = result.transport == TransportUsed::kError ||
                           result.response.status >= 500;
        record_answer(replica_index, error);
        if (pending->done) return;  // a hedge already answered (first wins)
        (void)attempt;
        deliver(pending, std::move(result));
      });
  arm_failover_timer(pending);
}

void ProxyCluster::arm_failover_timer(const PendingPtr& pending) {
  const TimePoint final_check = pending->deadline - config_.failover_margin;
  TimePoint when = std::min(final_check, sim_.now() + config_.failover_timeout);
  if (when < sim_.now()) when = sim_.now();
  const std::uint64_t attempt = pending->attempt;
  sim_.schedule_at(when, [this, alive = alive_, pending, attempt] {
    if (!*alive || pending->done) return;
    if (pending->attempt != attempt) return;  // a newer attempt owns the timer
    on_unanswered(pending, "timeout");
  });
}

void ProxyCluster::on_unanswered(const PendingPtr& pending, const char* reason) {
  if (pending->done) return;
  // An unanswered attempt is a passive health strike against its replica.
  record_answer(pending->replica_index, /*error=*/true);

  const TimePoint final_check = pending->deadline - config_.failover_margin;
  const bool budget_left = sim_.now() < final_check;
  const int next =
      budget_left && pending->failovers < config_.max_failovers
          ? route(pending->origin_key, pending->tried)
          : -1;
  if (next >= 0) {
    ++pending->failovers;
    count("fleet.failovers");
    event("failover", pending->origin_key + ": " + replicas_[pending->replica_index].name +
                          " (" + reason + ") -> " +
                          replicas_[static_cast<std::size_t>(next)].name);
    dispatch(pending, static_cast<std::size_t>(next));
    return;
  }
  if (budget_left) {
    // Out of replicas (or failovers) but not out of time: the in-flight
    // attempt may still answer. Re-arm a last check at the final instant.
    const std::uint64_t attempt = pending->attempt;
    sim_.schedule_at(final_check, [this, alive = alive_, pending, attempt] {
      if (!*alive || pending->done || pending->attempt != attempt) return;
      shed(pending, "deadline exhausted at " + replicas_[pending->replica_index].name);
    });
    return;
  }
  shed(pending, std::string("deadline exhausted (") + reason + ")");
}

void ProxyCluster::shed(const PendingPtr& pending, const std::string& why) {
  if (pending->done) return;
  count("fleet.shed");
  event("shed", pending->origin_key + ": " + why);
  // Fail closed: strict or not, the fleet never answers with a downgraded
  // transport — the terminal answer is an honest 503 + Retry-After, inside
  // the deadline.
  ProxyResult result;
  result.transport = TransportUsed::kError;
  result.outcome = "fleet-shed";
  result.response =
      http::make_retry_after_response(503, config_.shed_retry_after, "fleet: " + why);
  deliver(pending, std::move(result));
}

void ProxyCluster::deliver(const PendingPtr& pending, ProxyResult result) {
  if (pending->done) return;
  pending->done = true;
  pending_.erase(pending->id);
  if (pending->on_result) pending->on_result(std::move(result));
}

// --- /skip/* control space -------------------------------------------------

void ProxyCluster::refresh_fleet_metrics() {
  // Scrape-time pull: live replicas contribute their current registry
  // directly; crashed ones keep whatever the probe channel last shipped.
  for (Replica& rep : replicas_) {
    if (rep.crashed || rep.proxy == nullptr) continue;
    aggregator_.ingest(rep.name, rep.generation, rep.proxy->metrics(), sim_.now());
  }
  fleet_series_.observe(sim_.now());
}

void ProxyCluster::serve_fleet(const http::HttpRequest& request, ProxyRequestOptions options,
                               const SkipProxy::FetchFn& on_result) {
  (void)options;
  count("fleet.internal");
  fleet_series_.observe(sim_.now());
  ProxyResult result;
  result.transport = TransportUsed::kInternal;
  const auto [path_view, query] = http::split_target(request.target);
  const std::string path(path_view);
  if (request.method != "GET") {
    result.response = fleet_error(405, "method not allowed: " + request.method);
    result.response.headers.set("Allow", "GET");
  } else if (path == "/skip/fleet") {
    result.response =
        http::make_response(200, from_string(fleet_json()), "application/json");
  } else if (path == "/skip/fleet/metrics") {
    const std::string_view prefix = http::query_param(query, "prefix");
    const std::string_view window = http::query_param(query, "window");
    refresh_fleet_metrics();
    if (!window.empty()) {
      const auto window_ms = strings::parse_u64(window);
      if (!window_ms.ok()) {
        result.response = fleet_error(400, "bad window (want milliseconds): " +
                                               std::string(window));
      } else {
        result.response = http::make_response(
            200,
            from_string(fleet_series_.query_json(
                prefix, milliseconds(static_cast<std::int64_t>(window_ms.value())))),
            "application/json");
      }
    } else {
      result.response = http::make_response(200, from_string(aggregator_.fleet_json(prefix)),
                                            "application/json");
    }
  } else if (path == "/skip/fleet/metrics.prom") {
    refresh_fleet_metrics();
    const std::string_view prefix = http::query_param(query, "prefix");
    result.response = http::make_response(200, from_string(aggregator_.fleet_prom(prefix)),
                                          "text/plain; version=0.0.4");
  } else {
    result.response = fleet_error(404, "unknown fleet endpoint: " + path);
  }
  if (on_result) on_result(std::move(result));
}

void ProxyCluster::forward_internal(http::HttpRequest request, ProxyRequestOptions options,
                                    SkipProxy::FetchFn on_result) {
  count("fleet.internal");
  // Control requests go to the first replica that can answer at all
  // (draining replicas still serve their control surface).
  for (Replica& rep : replicas_) {
    if (rep.crashed || rep.proxy == nullptr || rep.hung) continue;
    if (rep.health == ReplicaHealth::kDown) continue;
    rep.proxy->fetch(std::move(request), std::move(options), std::move(on_result));
    return;
  }
  ProxyResult result;
  result.transport = TransportUsed::kError;
  result.outcome = "fleet-shed";
  result.response = http::make_retry_after_response(503, config_.shed_retry_after,
                                                    "fleet: no live replica");
  if (on_result) on_result(std::move(result));
}

// --- chaos surface ---------------------------------------------------------

ProxyCluster::Replica* ProxyCluster::find(const std::string& name) {
  for (Replica& rep : replicas_) {
    if (rep.name == name) return &rep;
  }
  return nullptr;
}

void ProxyCluster::crash_replica(const std::string& name) {
  Replica* rep = find(name);
  if (rep == nullptr || rep->crashed) return;
  count("fleet.crashes");
  event("crash", name);
  PAN_TRACE(kLog) << "crash: " << name;
  rep->crashed = true;
  rep->hung = false;
  ++rep->generation;
  // Never destroy a live SkipProxy mid-run: scheduled sim events (deadline
  // timers, pool sweeps) hold raw pointers into it. Park it instead.
  proxy_graveyard_.push_back(std::move(rep->proxy));
  resolver_graveyard_.push_back(std::move(rep->resolver));
  set_health(*rep, ReplicaHealth::kDown, "crash");

  // In-flight requests on this replica will never answer; fail them over
  // now instead of waiting for their timers.
  const std::size_t index = static_cast<std::size_t>(rep - replicas_.data());
  std::vector<PendingPtr> orphans;
  for (const auto& [id, pending] : pending_) {
    if (!pending->done && pending->replica_index == index) orphans.push_back(pending);
  }
  for (const PendingPtr& pending : orphans) on_unanswered(pending, "crash");
}

void ProxyCluster::revive_replica(const std::string& name) {
  Replica* rep = find(name);
  if (rep == nullptr || !rep->crashed) return;
  ++rep->generation;
  build_replica(static_cast<std::size_t>(rep - replicas_.data()));
  rep->draining = false;
  if (config_.warm_handoff) {
    restore_warm(*rep);
    count("fleet.restarts_warm");
  } else {
    count("fleet.restarts_cold");
  }
  set_health(*rep, ReplicaHealth::kHealthy,
             config_.warm_handoff ? "revive-warm" : "revive-cold");
  event("restart", name + (config_.warm_handoff ? " (warm)" : " (cold)"));
  PAN_TRACE(kLog) << "revive: " << name;
}

void ProxyCluster::restart_replica(const std::string& name) {
  crash_replica(name);
  revive_replica(name);
}

void ProxyCluster::set_replica_hung(const std::string& name, bool hung) {
  Replica* rep = find(name);
  if (rep == nullptr || rep->crashed || rep->hung == hung) return;
  rep->hung = hung;
  event(hung ? "hang" : "unhang", name);
  if (hung) {
    count("fleet.hangs");
  } else {
    // The wedge cleared with no state loss; probes will restore health.
    rep->probe_misses = 0;
  }
}

void ProxyCluster::drain_replica(const std::string& name) {
  Replica* rep = find(name);
  if (rep == nullptr || rep->crashed || rep->draining) return;
  count("fleet.drains");
  rep->draining = true;
  set_health(*rep, ReplicaHealth::kDraining, "drain");
  event("drain", name);
  // Snapshot now: a drained replica's warm state is the handoff payload.
  const std::size_t index = static_cast<std::size_t>(rep - replicas_.data());
  rep->snapshot.learned = rep->proxy->detector().export_learned();
  rep->snapshot.breakers = rep->proxy->breaker().export_entries();
  rep->snapshot.quarantines = rep->proxy->selector().quarantine_snapshot();
  rep->snapshot.taken = true;
  rep->snapshot.taken_at = sim_.now();
  const std::uint64_t generation = rep->generation;
  sim_.schedule_after(config_.drain_grace, [this, alive = alive_, index, generation] {
    if (*alive) complete_drain(index, generation);
  });
}

void ProxyCluster::complete_drain(std::size_t index, std::uint64_t generation) {
  Replica& rep = replicas_[index];
  if (!rep.draining || rep.crashed || rep.generation != generation) return;
  // Hand the owned origins off: erasing ownership lets the next request
  // re-route (and count the handoff); retiring the pooled SCION connections
  // force-closes what the grace period didn't finish.
  std::size_t handed_off = 0;
  for (auto it = owners_.begin(); it != owners_.end();) {
    if (it->second == index) {
      it = owners_.erase(it);
      ++handed_off;
    } else {
      ++it;
    }
  }
  for (const SkipProxy::PooledScionOrigin& origin : rep.proxy->scion_pool_snapshot()) {
    rep.proxy->scion_pool().retire(origin.key);
  }
  event("drain-complete", rep.name + ": " + std::to_string(handed_off) + " origin(s) handed off");
}

void ProxyCluster::undrain_replica(const std::string& name) {
  Replica* rep = find(name);
  if (rep == nullptr || rep->crashed || !rep->draining) return;
  rep->draining = false;
  set_health(*rep, ReplicaHealth::kHealthy, "undrain");
  event("undrain", name);
}

void ProxyCluster::restore_warm(Replica& rep) {
  // Learned Strict-SCION availability: prefer a live peer's cache (the
  // shared-cache path — strictly fresher than any snapshot), fall back to
  // the replica's own last probe snapshot.
  bool imported = false;
  for (const Replica& peer : replicas_) {
    if (peer.name == rep.name || peer.crashed || peer.proxy == nullptr) continue;
    rep.proxy->detector().import_learned(peer.proxy->detector().export_learned());
    imported = true;
    break;
  }
  if (!imported && rep.snapshot.taken) {
    rep.proxy->detector().import_learned(rep.snapshot.learned);
  }
  // Breaker and quarantine state is replica-local; the snapshot is the only
  // source. Restoring it keeps a revived replica from re-probing origins
  // and paths the fleet already knows are sick.
  if (rep.snapshot.taken) {
    rep.proxy->breaker().import_entries(rep.snapshot.breakers);
    for (const auto& [fingerprint, expires] : rep.snapshot.quarantines) {
      rep.proxy->selector().restore_quarantine(fingerprint, expires);
    }
  }
}

// --- health ----------------------------------------------------------------

void ProxyCluster::probe_all() {
  for (std::size_t i = 0; i < replicas_.size(); ++i) probe(i);
  fleet_series_.observe(sim_.now());
  sim_.schedule_after(config_.probe_interval, [this, alive = alive_] {
    if (*alive) probe_all();
  });
}

void ProxyCluster::probe(std::size_t index) {
  Replica& rep = replicas_[index];
  if (rep.crashed || rep.proxy == nullptr) return;  // already down
  count("fleet.probes");
  auto answered = std::make_shared<bool>(false);
  const std::uint64_t generation = rep.generation;

  http::HttpRequest ping;
  ping.method = "GET";
  ping.target = "/skip/ping";
  ProxyRequestOptions options;
  options.deadline = sim_.now() + config_.probe_timeout;
  rep.proxy->fetch(std::move(ping), std::move(options),
                   [this, alive = alive_, index, generation, answered](ProxyResult result) {
                     if (!*alive) return;
                     Replica& rep = replicas_[index];
                     if (rep.generation != generation || rep.hung) return;
                     if (result.response.status == 200) *answered = true;
                   });

  sim_.schedule_after(config_.probe_timeout, [this, alive = alive_, index, generation,
                                              answered] {
    if (!*alive) return;
    Replica& rep = replicas_[index];
    if (rep.crashed || rep.generation != generation) return;
    if (*answered) {
      rep.probe_misses = 0;
      // A live, answering replica: ship its warm state off-box. This is the
      // snapshot a later replica-restart revives from.
      rep.snapshot.learned = rep.proxy->detector().export_learned();
      rep.snapshot.breakers = rep.proxy->breaker().export_entries();
      rep.snapshot.quarantines = rep.proxy->selector().quarantine_snapshot();
      rep.snapshot.taken = true;
      rep.snapshot.taken_at = sim_.now();
      // Ship the replica's metrics registry on the same probe channel, so
      // the fleet view keeps the last-known state of replicas that later
      // crash without answering a scrape.
      aggregator_.ingest(rep.name, rep.generation, rep.proxy->metrics(), sim_.now());
      // A successful probe is a success sample: without this, a replica
      // whose EWMA was driven up by a since-cleared wedge would never earn
      // its way back (nobody routes to it, so no answers decay the EWMA).
      rep.error_ewma *= 1.0 - config_.error_ewma_alpha;
      if (!rep.draining &&
          (rep.health == ReplicaHealth::kDegraded || rep.health == ReplicaHealth::kDown) &&
          rep.error_ewma <= config_.degraded_error_rate) {
        set_health(rep, ReplicaHealth::kHealthy, "probe-ok");
      }
      return;
    }
    ++rep.probe_misses;
    count("fleet.probe_misses");
    if (rep.probe_misses >= config_.probe_miss_down) {
      if (rep.health != ReplicaHealth::kDown) {
        set_health(rep, ReplicaHealth::kDown,
                   "probe-miss x" + std::to_string(rep.probe_misses));
      }
    } else if (rep.probe_misses >= config_.probe_miss_degraded && !rep.draining &&
               rep.health == ReplicaHealth::kHealthy) {
      set_health(rep, ReplicaHealth::kDegraded,
                 "probe-miss x" + std::to_string(rep.probe_misses));
    }
  });
}

void ProxyCluster::record_answer(std::size_t index, bool error) {
  Replica& rep = replicas_[index];
  rep.error_ewma = (1.0 - config_.error_ewma_alpha) * rep.error_ewma +
                   config_.error_ewma_alpha * (error ? 1.0 : 0.0);
  if (rep.crashed || rep.draining) return;
  if (rep.health == ReplicaHealth::kHealthy &&
      rep.error_ewma > config_.degraded_error_rate) {
    set_health(rep, ReplicaHealth::kDegraded,
               "error-ewma " + strings::format("%.2f", rep.error_ewma));
  } else if (rep.health == ReplicaHealth::kDegraded && rep.probe_misses == 0 &&
             rep.error_ewma < config_.degraded_error_rate / 2.0) {
    set_health(rep, ReplicaHealth::kHealthy,
               "error-ewma " + strings::format("%.2f", rep.error_ewma));
  }
}

void ProxyCluster::set_health(Replica& rep, ReplicaHealth health, const std::string& why) {
  if (rep.health == health) return;
  event("health", rep.name + ": " + to_string(rep.health) + " -> " + to_string(health) +
                      " (" + why + ")");
  PAN_TRACE(kLog) << rep.name << ": " << to_string(rep.health) << " -> "
                  << to_string(health) << " (" << why << ")";
  rep.health = health;
  update_health_gauges();
}

void ProxyCluster::update_health_gauges() {
  std::size_t counts[4] = {0, 0, 0, 0};
  for (const Replica& rep : replicas_) {
    ++counts[static_cast<std::size_t>(rep.health)];
  }
  metrics_->gauge("fleet.replicas_healthy").set(static_cast<double>(counts[0]));
  metrics_->gauge("fleet.replicas_degraded").set(static_cast<double>(counts[1]));
  metrics_->gauge("fleet.replicas_draining").set(static_cast<double>(counts[2]));
  metrics_->gauge("fleet.replicas_down").set(static_cast<double>(counts[3]));
}

// --- introspection ---------------------------------------------------------

std::vector<std::string> ProxyCluster::replica_names() const {
  std::vector<std::string> names;
  names.reserve(replicas_.size());
  for (const Replica& rep : replicas_) names.push_back(rep.name);
  return names;
}

ReplicaHealth ProxyCluster::replica_health(const std::string& name) const {
  for (const Replica& rep : replicas_) {
    if (rep.name == name) return rep.health;
  }
  return ReplicaHealth::kDown;
}

SkipProxy* ProxyCluster::replica(const std::string& name) {
  Replica* rep = find(name);
  return rep == nullptr ? nullptr : rep->proxy.get();
}

std::string ProxyCluster::fleet_json() {
  std::string body = "{\"replicas\":{";
  bool first = true;
  for (const Replica& rep : replicas_) {
    if (!first) body += ",";
    first = false;
    body += strings::json_quote(rep.name) + ":{\"health\":\"" +
            std::string(to_string(rep.health)) + "\"" +
            ",\"generation\":" + std::to_string(rep.generation) +
            ",\"draining\":" + (rep.draining ? "true" : "false") +
            ",\"hung\":" + (rep.hung ? "true" : "false") +
            ",\"probe_misses\":" + std::to_string(rep.probe_misses) +
            ",\"error_ewma\":" + strings::format("%.4f", rep.error_ewma) +
            ",\"dispatched\":" + std::to_string(rep.dispatched) +
            ",\"answered\":" + std::to_string(rep.answered) +
            ",\"warm_snapshot\":" + (rep.snapshot.taken ? "true" : "false") + "}";
  }
  body += "},\"ring\":{\"vnodes\":" + std::to_string(ring_.size()) +
          ",\"replicas\":" + std::to_string(replicas_.size()) + "},\"owners\":{";
  first = true;
  for (const auto& [origin, index] : owners_) {
    if (!first) body += ",";
    first = false;
    body += strings::json_quote(origin) + ":" + strings::json_quote(replicas_[index].name);
  }
  const FleetStats stats = this->stats();
  body += "},\"stats\":{\"requests\":" + std::to_string(stats.requests) +
          ",\"failovers\":" + std::to_string(stats.failovers) +
          ",\"handoffs\":" + std::to_string(stats.handoffs) +
          ",\"shed\":" + std::to_string(stats.shed) +
          ",\"no_replica\":" + std::to_string(stats.no_replica) +
          ",\"crashes\":" + std::to_string(stats.crashes) +
          ",\"restarts_warm\":" + std::to_string(stats.restarts_warm) +
          ",\"restarts_cold\":" + std::to_string(stats.restarts_cold) +
          ",\"probes\":" + std::to_string(stats.probes) +
          ",\"probe_misses\":" + std::to_string(stats.probe_misses) +
          ",\"cache_broadcasts\":" + std::to_string(stats.cache_broadcasts) +
          ",\"cache_invalidations\":" + std::to_string(stats.cache_invalidations) +
          ",\"drains\":" + std::to_string(stats.drains) +
          ",\"in_flight\":" + std::to_string(pending_.size()) + "}}";
  return body;
}

FleetStats ProxyCluster::stats() const {
  FleetStats stats;
  stats.requests = metrics_->counter_value("fleet.requests");
  stats.internal = metrics_->counter_value("fleet.internal");
  stats.failovers = metrics_->counter_value("fleet.failovers");
  stats.handoffs = metrics_->counter_value("fleet.handoffs");
  stats.shed = metrics_->counter_value("fleet.shed");
  stats.no_replica = metrics_->counter_value("fleet.no_replica");
  stats.crashes = metrics_->counter_value("fleet.crashes");
  stats.restarts_warm = metrics_->counter_value("fleet.restarts_warm");
  stats.restarts_cold = metrics_->counter_value("fleet.restarts_cold");
  stats.probes = metrics_->counter_value("fleet.probes");
  stats.probe_misses = metrics_->counter_value("fleet.probe_misses");
  stats.cache_broadcasts = metrics_->counter_value("fleet.cache_broadcasts");
  stats.cache_invalidations = metrics_->counter_value("fleet.cache_invalidations");
  stats.drains = metrics_->counter_value("fleet.drains");
  return stats;
}

void ProxyCluster::count(const std::string& name) { metrics_->counter(name).inc(); }

void ProxyCluster::event(std::string_view kind, std::string detail) {
  metrics_->events().record(sim_.now(), "fleet", kind, std::move(detail));
}

}  // namespace pan::proxy
