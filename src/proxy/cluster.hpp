// ProxyCluster: a sharded SKIP proxy fleet (ROADMAP item 1).
//
// N SkipProxy replicas behind a consistent-hash-by-origin front. The paper's
// deployment model — one local proxy per browser — caps at a single user;
// this front scales the same pipeline horizontally while keeping the SKIP
// layer's degradation story intact:
//
//   * Routing: each origin hashes onto a vnode ring (vnodes_per_replica
//     points per replica), so adding or losing a replica remaps only the
//     origins it owned. Requests for /skip/* control endpoints go to the
//     first live replica; GET /skip/fleet is answered by the cluster itself.
//
//   * Health: a per-replica state machine (healthy -> degraded -> draining
//     -> down) driven by active /skip/ping probes (probe_interval apart,
//     probe_timeout budget) plus a passive error/timeout EWMA over the
//     replica's answers. Crashes (the replica-crash fault verb) drop a
//     replica straight to down.
//
//   * Failover: an in-flight request unanswered after failover_timeout is
//     hedged onto the next live replica on the ring, within the request's
//     original deadline budget — never past it. When the budget (or the
//     replica set) is exhausted the request sheds with 503 + Retry-After.
//     Strict-mode origins fail closed exactly like the single-proxy
//     pipeline: the cluster never downgrades a Strict-SCION pin to IP.
//
//   * Shared detection cache: every replica's ScionDetector learn() is
//     broadcast (hook-free apply_learned) to its peers, withdrawals
//     included, so one replica learning a Strict-SCION origin teaches the
//     fleet — and a successor replica inherits learned origins instead of
//     re-probing them.
//
//   * Warm handoff: the prober snapshots each replica's warm state (learned
//     detector cache, circuit-breaker entries, path quarantines) on every
//     successful probe. replica-restart revives a replica from the freshest
//     of a live peer's cache and that snapshot (warm_handoff=true), or
//     completely cold (false) for ablation.
//
//   * Draining: drain_replica() stops routing *new* origins to a replica;
//     origins it already owns keep flowing for drain_grace, then ownership
//     is handed off and its pooled SCION connections are retired.
//
// Every transition lands in the fleet registry's FlightRecorder ring and
// the fleet.* counters; GET /skip/fleet dumps replica health, ring and
// ownership state, and the counters as JSON.
//
// The cluster deliberately does not depend on src/fault: scenario worlds
// translate the replica-crash / replica-hang / replica-restart fault verbs
// into the crash/hang/restart calls below (see browser::FleetSession).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dns/dns.hpp"
#include "proxy/fleet_metrics.hpp"
#include "proxy/skip_proxy.hpp"

namespace pan::proxy {

enum class ReplicaHealth : std::uint8_t { kHealthy, kDegraded, kDraining, kDown };

[[nodiscard]] const char* to_string(ReplicaHealth health);

struct ClusterConfig {
  std::size_t replicas = 4;
  /// Replica names are "<prefix><index>" ("rep-0", ...). Tests inject
  /// hostile prefixes to exercise /skip/fleet JSON quoting.
  std::string replica_name_prefix = "rep-";
  /// Consistent-hash ring points per replica (more = smoother spread).
  std::size_t vnodes_per_replica = 16;

  // --- active health probes ---
  Duration probe_interval = milliseconds(250);
  Duration probe_timeout = milliseconds(200);
  /// Consecutive probe misses that mark a replica degraded / down.
  std::size_t probe_miss_degraded = 1;
  std::size_t probe_miss_down = 3;

  // --- passive health signal ---
  /// EWMA weight of each answer (1 = error/timeout, 0 = success).
  double error_ewma_alpha = 0.2;
  /// EWMA above this marks a healthy replica degraded; recovery at half.
  double degraded_error_rate = 0.5;

  // --- failover ---
  /// Hedged re-dispatches per request after the first attempt.
  std::size_t max_failovers = 2;
  /// How long an attempt may go unanswered before hedging to the next
  /// replica (clamped so the last check still beats the deadline).
  Duration failover_timeout = milliseconds(400);
  /// Slack kept before the request deadline: the terminal 503 must win the
  /// race against the replica's own 504 deadline timer.
  Duration failover_margin = milliseconds(50);
  /// Retry-After advertised on a terminal fleet shed (503).
  Duration shed_retry_after = seconds(1);

  // --- drain / warm handoff ---
  /// How long a draining replica keeps serving the origins it owns before
  /// ownership is handed off and its pooled connections are retired.
  Duration drain_grace = milliseconds(500);
  /// Restore learned/breaker/quarantine state on replica-restart; false =
  /// cold restart (the ablation arm of bench_fleet_scale).
  bool warm_handoff = true;

  /// Per-replica SkipProxy configuration (metrics/collector semantics as in
  /// ProxyConfig: null = each replica owns a private registry).
  ProxyConfig proxy;
  /// Per-replica resolver configuration. Each replica owns its resolver —
  /// a restarted replica loses its DNS cache like a real process would.
  dns::ResolverConfig resolver;
  /// Called for every resolver the cluster creates (construction and every
  /// replica revival). Scenario worlds hook the fault injector's DNS
  /// brownout table in here without the proxy layer depending on src/fault.
  std::function<void(dns::Resolver&)> on_resolver_created;
  /// Fleet-level registry for fleet.* counters, health gauges, and the
  /// FlightRecorder ring (null = the cluster owns a private one).
  obs::MetricsRegistry* metrics = nullptr;
  /// Time-series deltas over the fleet registry (fleet.* counters), ticked
  /// by the probe heartbeat and queried via /skip/fleet/metrics?window=.
  obs::TimeSeriesConfig timeseries;
};

/// Fleet counters, read back from the registry for ergonomic assertions.
struct FleetStats {
  std::uint64_t requests = 0;
  std::uint64_t internal = 0;
  std::uint64_t failovers = 0;
  std::uint64_t handoffs = 0;
  std::uint64_t shed = 0;
  std::uint64_t no_replica = 0;
  std::uint64_t crashes = 0;
  std::uint64_t restarts_warm = 0;
  std::uint64_t restarts_cold = 0;
  std::uint64_t probes = 0;
  std::uint64_t probe_misses = 0;
  std::uint64_t cache_broadcasts = 0;
  std::uint64_t cache_invalidations = 0;
  std::uint64_t drains = 0;
};

class ProxyCluster {
 public:
  ProxyCluster(sim::Simulator& sim, net::Host& host, scion::ScionStack& stack,
               scion::Daemon& daemon, const dns::Zone& zone, ClusterConfig config = {});
  ~ProxyCluster();

  ProxyCluster(const ProxyCluster&) = delete;
  ProxyCluster& operator=(const ProxyCluster&) = delete;

  /// Same shape as SkipProxy::fetch so browsers / load generators can drive
  /// either. Routes by origin, fails over, and never outlives the deadline.
  void fetch(http::HttpRequest request, ProxyRequestOptions options,
             SkipProxy::FetchFn on_result);

  // --- chaos surface (wired to the replica-* fault verbs by the world) ---
  /// Kills the replica process: its state is lost, in-flight requests fail
  /// over immediately, and the ring routes around it.
  void crash_replica(const std::string& name);
  /// Revives a crashed replica (the revert of replica-crash): a fresh
  /// process, warm or cold per ClusterConfig::warm_handoff.
  void revive_replica(const std::string& name);
  /// Wedges (true) / unwedges (false) a replica: it keeps accepting work
  /// but none of its answers ever arrive. Probes miss; failover rescues.
  void set_replica_hung(const std::string& name, bool hung);
  /// One-shot bounce: crash + revive at once (the replica-restart verb).
  void restart_replica(const std::string& name);
  /// Starts draining: no new origins; owned origins hand off after
  /// drain_grace and pooled SCION connections are retired.
  void drain_replica(const std::string& name);
  /// Returns a draining (not crashed) replica to service.
  void undrain_replica(const std::string& name);

  // --- introspection ---
  [[nodiscard]] std::size_t replica_count() const { return replicas_.size(); }
  [[nodiscard]] std::vector<std::string> replica_names() const;
  [[nodiscard]] ReplicaHealth replica_health(const std::string& name) const;
  /// The live SkipProxy behind `name` (nullptr when crashed or unknown).
  [[nodiscard]] SkipProxy* replica(const std::string& name);
  /// The replica `origin_key` ("host" or "host:port") currently routes to
  /// (empty when no replica accepts it). Does not change ownership.
  [[nodiscard]] std::string owner_of(const std::string& origin_key);
  /// The GET /skip/fleet payload.
  [[nodiscard]] std::string fleet_json();
  [[nodiscard]] FleetStats stats() const;
  [[nodiscard]] obs::MetricsRegistry& metrics() { return *metrics_; }
  [[nodiscard]] const ClusterConfig& config() const { return config_; }
  /// The merged fleet metrics plane. Snapshots ship on the probe channel;
  /// refresh_fleet_metrics() additionally pulls every live replica now
  /// (what a GET /skip/fleet/metrics scrape does before answering).
  [[nodiscard]] FleetMetricsAggregator& fleet_metrics() { return aggregator_; }
  void refresh_fleet_metrics();
  /// Time-series store over the fleet registry's counters.
  [[nodiscard]] obs::TimeSeriesStore& timeseries() { return fleet_series_; }

 private:
  struct WarmState {
    std::vector<ScionDetector::ExportedEntry> learned;
    std::vector<CircuitBreaker::ExportedEntry> breakers;
    std::vector<std::pair<std::string, TimePoint>> quarantines;
    bool taken = false;
    TimePoint taken_at;
  };

  struct Replica {
    std::string name;
    std::unique_ptr<dns::Resolver> resolver;
    std::unique_ptr<SkipProxy> proxy;
    ReplicaHealth health = ReplicaHealth::kHealthy;
    bool crashed = false;
    bool hung = false;
    bool draining = false;
    /// Bumped on crash and restart; answers from an older generation are
    /// from a process that no longer exists and are dropped.
    std::uint64_t generation = 0;
    std::size_t probe_misses = 0;
    double error_ewma = 0.0;
    /// Last warm snapshot the prober shipped off-box.
    WarmState snapshot;
    std::uint64_t dispatched = 0;
    std::uint64_t answered = 0;
  };

  struct PendingRequest {
    std::uint64_t id = 0;
    http::HttpRequest request;  ///< original, re-submitted on failover
    ProxyRequestOptions options;
    SkipProxy::FetchFn on_result;
    TimePoint deadline;
    std::string origin_key;
    std::size_t replica_index = 0;
    std::uint64_t replica_generation = 0;
    std::size_t failovers = 0;
    /// Attempt sequence; stale failover timers check it and stand down.
    std::uint64_t attempt = 0;
    std::vector<std::size_t> tried;
    bool done = false;
  };
  using PendingPtr = std::shared_ptr<PendingRequest>;

  /// True when `rep` may take a *new* request for `origin_key`.
  [[nodiscard]] bool accepts(const Replica& rep, const std::string& origin_key) const;
  /// Ring walk from hash(origin_key); skips `tried` indices. -1 = nobody.
  [[nodiscard]] int route(const std::string& origin_key,
                          const std::vector<std::size_t>& tried) const;
  [[nodiscard]] std::string origin_key_of(const http::HttpRequest& request) const;

  void dispatch(const PendingPtr& pending, std::size_t replica_index);
  void arm_failover_timer(const PendingPtr& pending);
  /// A failover check fired (or a crash forced one): hedge or shed.
  void on_unanswered(const PendingPtr& pending, const char* reason);
  void shed(const PendingPtr& pending, const std::string& why);
  void deliver(const PendingPtr& pending, ProxyResult result);

  void serve_fleet(const http::HttpRequest& request, ProxyRequestOptions options,
                   const SkipProxy::FetchFn& on_result);
  /// Forwards a non-fleet /skip/* control request to the first live replica.
  void forward_internal(http::HttpRequest request, ProxyRequestOptions options,
                        SkipProxy::FetchFn on_result);

  void build_replica(std::size_t index);
  void install_learn_hook(std::size_t index);
  void broadcast_learn(std::size_t from, const std::string& domain,
                       const scion::ScionAddr& addr, Duration max_age,
                       const std::string& identity);
  void restore_warm(Replica& rep);
  void complete_drain(std::size_t index, std::uint64_t generation);

  void probe_all();
  void probe(std::size_t index);
  void record_answer(std::size_t index, bool error);
  void set_health(Replica& rep, ReplicaHealth health, const std::string& why);
  void update_health_gauges();
  void count(const std::string& name);
  void event(std::string_view kind, std::string detail);

  [[nodiscard]] Replica* find(const std::string& name);

  sim::Simulator& sim_;
  net::Host& host_;
  scion::ScionStack& stack_;
  scion::Daemon& daemon_;
  const dns::Zone& zone_;
  ClusterConfig config_;
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_ = nullptr;
  FleetMetricsAggregator aggregator_;
  obs::TimeSeriesStore fleet_series_;  // over *metrics_; must follow it

  std::vector<Replica> replicas_;
  /// Crashed replicas' proxies and resolvers are parked here, never
  /// destroyed mid-run: scheduled sim events hold raw pointers into them.
  std::vector<std::unique_ptr<SkipProxy>> proxy_graveyard_;
  std::vector<std::unique_ptr<dns::Resolver>> resolver_graveyard_;

  /// (hash, replica index), sorted by hash.
  std::vector<std::pair<std::uint64_t, std::size_t>> ring_;
  /// origin_key -> replica index of the last dispatch (handoff accounting
  /// and drain stickiness). std::map for deterministic /skip/fleet dumps.
  std::map<std::string, std::size_t> owners_;

  std::map<std::uint64_t, PendingPtr> pending_;
  std::uint64_t next_request_id_ = 1;

  /// Flipped in the destructor; scheduled timers and wrapped callbacks
  /// check it and become no-ops.
  std::shared_ptr<bool> alive_;
};

}  // namespace pan::proxy
