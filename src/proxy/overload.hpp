// Overload-resilience subsystem shared by the SKIP proxy and the reverse
// proxy: the pieces that keep a proxy responsive when offered load exceeds
// capacity (PR 3 covered faults; this covers pressure).
//
//   - RequestPriority: the per-request intent signal (Socket-Intents-style),
//     carried in the X-Skip-Priority header. Main documents and
//     Strict-SCION-pinned requests outrank sub-resources, which outrank
//     probes/background load — at admission and in pool queue ordering.
//   - OverloadController: ingress admission control. A per-client token
//     bucket (429) plus a global in-flight cap with a priority ladder
//     (probes rejected first, then sub-resources, documents last; 503),
//     both answered with Retry-After *before* any work is queued. It also
//     tracks a load-pressure EWMA and trips a brownout past a sustained
//     threshold: optional work (opportunistic SCION upgrades) is disabled
//     and requests ride the legacy path until pressure clears.
//   - AimdController: adaptive per-origin concurrency implementing
//     http::ConcurrencyLimiter. Additive-increase on on-target completions,
//     multiplicative-decrease when attempt latency inflates past the target
//     (or the attempt fails) — replacing the pool's static max_conns as the
//     effective cap, and reopening on recovery.
//
// Everything reports into the shared metrics registry under `overload.*`
// and surfaces in /skip/health.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "http/message.hpp"
#include "http/origin_pool.hpp"
#include "obs/metrics.hpp"
#include "sim/simulator.hpp"

namespace pan::proxy {

/// Lower value = more important = admitted and dispatched first.
enum class RequestPriority : std::uint8_t {
  kDocument = 0,     // main document / Strict-SCION-pinned
  kSubresource = 1,  // page sub-resources (the default)
  kProbe = 2,        // detector probes, background/synthetic load
};

/// Request header carrying the priority class ("document" / "subresource" /
/// "probe"), tagged by the browser and upgraded by the extension for pinned
/// hosts. Unknown or absent values default to kSubresource.
inline constexpr std::string_view kPriorityHeader = "X-Skip-Priority";
/// Request header identifying the client for per-client rate limiting;
/// absent requests share the "local" bucket.
inline constexpr std::string_view kClientHeader = "X-Skip-Client";
/// Request header carrying the remaining deadline budget (whole ms) across
/// proxy hops, so the reverse proxy sheds against the *end-to-end* deadline
/// rather than its own local default.
inline constexpr std::string_view kDeadlineHeader = "X-Skip-Deadline-Ms";

[[nodiscard]] const char* to_string(RequestPriority priority);
[[nodiscard]] RequestPriority parse_priority(std::string_view text);
/// Priority class of `request` per its X-Skip-Priority header.
[[nodiscard]] RequestPriority priority_of(const http::HttpRequest& request);
/// Rate-limit bucket key of `request` per its X-Skip-Client header.
[[nodiscard]] std::string client_of(const http::HttpRequest& request);

struct AimdConfig {
  std::size_t min_limit = 1;
  /// Upper bound and initial value; 0 disables the controller entirely
  /// (callers skip wiring it into the pool).
  std::size_t max_limit = 6;
  /// Completions slower than this (or failed) shrink the window.
  Duration latency_target = milliseconds(750);
  /// Multiplicative decrease factor per over-target completion.
  double decrease_factor = 0.7;
  /// Additive increase per on-target completion (fractional: ~1/step
  /// completions reopen the window by one slot).
  double increase_step = 0.1;
};

/// AIMD concurrency controller, one window per origin key.
class AimdController final : public http::ConcurrencyLimiter {
 public:
  /// `name` scopes the metrics: `overload.<name>.{narrowed,widened}`
  /// counters and the `overload.<name>.limit_min` gauge (the tightest
  /// window across origins — the interesting one under pressure).
  AimdController(std::string name, AimdConfig config, obs::MetricsRegistry& metrics);

  [[nodiscard]] std::size_t limit(const std::string& key) override;
  void record(const std::string& key, Duration latency, bool ok) override;

  /// Clock for flight-recorder timestamps (the ConcurrencyLimiter interface
  /// has no time parameter). Unset: floor-hit events are not recorded.
  void set_simulator(sim::Simulator* sim) { sim_ = sim; }

  /// {"<origin>":{"limit":N,"narrowed":N},...} in key order.
  [[nodiscard]] std::string snapshot_json() const;
  [[nodiscard]] const AimdConfig& config() const { return config_; }

 private:
  struct Window {
    double limit = 0.0;
    std::uint64_t narrowed = 0;  // decrease events on this origin
  };
  Window& window(const std::string& key);
  void set_min_gauge();

  std::string name_;
  AimdConfig config_;
  obs::MetricsRegistry& metrics_;
  sim::Simulator* sim_ = nullptr;
  std::map<std::string, Window> windows_;  // ordered: deterministic JSON
  obs::Counter& narrowed_;
  obs::Counter& widened_;
  obs::Gauge& limit_min_;
};

struct OverloadConfig {
  /// Master switch: when false the controller admits everything (it still
  /// tracks in-flight for observability) and brownout never trips.
  bool enabled = true;
  /// Per-client token bucket: sustained requests/second (0 disables rate
  /// limiting) and burst size (0 = max(1, client_rate)).
  double client_rate = 0.0;
  double client_burst = 0.0;
  /// Global cap on admitted in-flight requests (0 disables the cap).
  std::size_t max_in_flight = 0;
  /// Priority ladder: fraction of max_in_flight at which the class is
  /// rejected. Documents always get the full cap.
  double subresource_admit_fraction = 0.9;
  double probe_admit_fraction = 0.5;
  /// Retry-After advertised on 429/503 rejections.
  Duration retry_after = seconds(1);
  /// Brownout: load-pressure EWMA (in-flight / cap) must sit at or above
  /// `brownout_enter` for `brownout_hold` to trip; clears at or below
  /// `brownout_exit` (hysteresis so it does not flap).
  double brownout_enter = 0.9;
  double brownout_exit = 0.6;
  Duration brownout_hold = milliseconds(250);
  /// EWMA time constant: pressure closes ~63% of the gap to the current
  /// utilization per tau of elapsed sim time.
  Duration pressure_tau = milliseconds(100);
};

/// Ingress admission control + brownout for one proxy.
class OverloadController {
 public:
  enum class Verdict : std::uint8_t {
    kAdmit,
    kRejectRate,      // per-client token bucket empty -> 429
    kRejectCapacity,  // in-flight cap (per priority ladder) -> 503
  };
  struct Admission {
    Verdict verdict = Verdict::kAdmit;
    Duration retry_after = Duration::zero();
  };

  /// `prefix` scopes the metrics (`<prefix>.admitted`, ...): "overload" for
  /// the SKIP proxy, "revproxy.overload" for the reverse proxy, so a shared
  /// registry keeps the two controllers apart.
  OverloadController(sim::Simulator& sim, obs::MetricsRegistry& metrics,
                     OverloadConfig config, std::string prefix = "overload");

  /// Admission decision for one request. On kAdmit the request counts
  /// in-flight until the matching release().
  [[nodiscard]] Admission admit(const std::string& client, RequestPriority priority);
  void release();

  /// Whether brownout is in force (updates pressure decay first).
  [[nodiscard]] bool brownout();
  [[nodiscard]] std::size_t in_flight() const { return in_flight_; }
  [[nodiscard]] double pressure() const { return pressure_; }
  [[nodiscard]] const OverloadConfig& config() const { return config_; }

  /// {"enabled":..,"in_flight":..,"max_in_flight":..,"pressure":..,
  ///  "brownout":..,"admitted":..,"rejected_rate":..,"rejected_capacity":..}
  [[nodiscard]] std::string snapshot_json() const;

 private:
  struct Bucket {
    double tokens = 0.0;
    TimePoint updated;
  };
  /// Refills `client`'s bucket to now and returns it.
  Bucket& refill(const std::string& client);
  /// In-flight count at which `priority` is rejected (the ladder).
  [[nodiscard]] std::size_t admit_threshold(RequestPriority priority) const;
  /// Advances the pressure EWMA to now and runs the brownout hysteresis.
  void update_pressure();

  sim::Simulator& sim_;
  OverloadConfig config_;
  obs::MetricsRegistry& metrics_;
  std::string prefix_;
  std::size_t in_flight_ = 0;
  std::map<std::string, Bucket> buckets_;
  double pressure_ = 0.0;
  TimePoint pressure_updated_;
  /// Brownout hysteresis: when pressure first crossed brownout_enter
  /// (tracked only while continuously above it).
  std::optional<TimePoint> above_enter_since_;
  bool brownout_ = false;
  obs::Counter& admitted_;
  obs::Counter& rejected_rate_;
  obs::Counter& rejected_capacity_;
  obs::Counter& brownout_entered_;
  obs::Counter& brownout_exited_;
  obs::Gauge& in_flight_gauge_;
  obs::Gauge& pressure_gauge_;
  obs::Gauge& brownout_gauge_;
};

}  // namespace pan::proxy
