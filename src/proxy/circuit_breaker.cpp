#include "proxy/circuit_breaker.hpp"

#include "util/strings.hpp"

namespace pan::proxy {

CircuitBreaker::CircuitBreaker(sim::Simulator& sim, CircuitBreakerConfig config,
                               obs::MetricsRegistry* metrics)
    : sim_(sim), config_(config), metrics_(metrics) {}

bool CircuitBreaker::allow(const std::string& key) {
  if (config_.failure_threshold == 0) return true;
  const auto it = entries_.find(key);
  if (it == entries_.end()) return true;
  Entry& entry = it->second;
  switch (entry.state) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (sim_.now() - entry.opened_at < config_.open_ttl) return false;
      entry.state = State::kHalfOpen;
      entry.probe_in_flight = false;
      [[fallthrough]];
    case State::kHalfOpen:
      if (entry.probe_in_flight) return false;
      entry.probe_in_flight = true;
      count("breaker.probes");
      event("probe", key);
      return true;
  }
  return true;
}

void CircuitBreaker::record_success(const std::string& key) {
  if (config_.failure_threshold == 0) return;
  const auto it = entries_.find(key);
  if (it == entries_.end()) return;
  if (it->second.state != State::kClosed) {
    count("breaker.closes");
    event("close", key);
  }
  entries_.erase(it);
}

void CircuitBreaker::record_failure(const std::string& key) {
  if (config_.failure_threshold == 0) return;
  Entry& entry = entries_[key];
  ++entry.consecutive_failures;
  if (entry.state == State::kHalfOpen ||
      (entry.state == State::kClosed &&
       entry.consecutive_failures >= config_.failure_threshold)) {
    // A failed probe re-opens; enough consecutive failures trip a closed
    // breaker.
    entry.state = State::kOpen;
    entry.opened_at = sim_.now();
    entry.probe_in_flight = false;
    count("breaker.trips");
    event("trip", key + " after " + std::to_string(entry.consecutive_failures) + " failures");
  }
}

bool CircuitBreaker::is_open(const std::string& key) const {
  const auto it = entries_.find(key);
  return it != entries_.end() && it->second.state == State::kOpen;
}

std::size_t CircuitBreaker::open_count() const {
  std::size_t count = 0;
  for (const auto& [key, entry] : entries_) {
    if (entry.state == State::kOpen) ++count;
  }
  return count;
}

std::string_view CircuitBreaker::state_name(State state) {
  switch (state) {
    case State::kClosed: return "closed";
    case State::kOpen: return "open";
    case State::kHalfOpen: return "half-open";
  }
  return "?";
}

std::string CircuitBreaker::snapshot_json() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [key, entry] : entries_) {
    if (!first) out += ",";
    first = false;
    out += strings::json_quote(key) + ":{\"state\":\"" + std::string(state_name(entry.state)) +
           "\",\"consecutive_failures\":" + std::to_string(entry.consecutive_failures);
    if (entry.state != State::kClosed) {
      out += ",\"opened_at_ms\":" + strings::format("%.3f", entry.opened_at.millis());
    }
    out += "}";
  }
  out += "}";
  return out;
}

std::vector<CircuitBreaker::ExportedEntry> CircuitBreaker::export_entries() const {
  std::vector<ExportedEntry> out;
  out.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    out.push_back(ExportedEntry{key, static_cast<std::uint8_t>(entry.state),
                                entry.consecutive_failures, entry.opened_at});
  }
  return out;
}

void CircuitBreaker::import_entries(const std::vector<ExportedEntry>& entries) {
  for (const auto& imported : entries) {
    if (imported.state > static_cast<std::uint8_t>(State::kHalfOpen)) continue;
    Entry& entry = entries_[imported.key];
    entry.state = static_cast<State>(imported.state);
    entry.consecutive_failures = imported.consecutive_failures;
    entry.opened_at = imported.opened_at;
    // The exporting instance's probe (if any) died with it.
    entry.probe_in_flight = false;
  }
}

void CircuitBreaker::count(const std::string& name) {
  if (metrics_ != nullptr) metrics_->counter(name).inc();
}

void CircuitBreaker::event(std::string_view kind, std::string detail) {
  if (metrics_ != nullptr) {
    metrics_->events().record(sim_.now(), "breaker", kind, std::move(detail));
  }
}

}  // namespace pan::proxy
