// Server-side reverse proxy ("we have implemented a simple reverse proxy to
// add SCION support to web servers", Section 5.1).
//
// Accepts QUIC-lite/SCION connections and relays each request to a legacy
// HTTP backend over TCP-lite/IP, returning the backend's response. It can
// inject the Strict-SCION header on behalf of operators whose sites are
// fully SCION-capable (Section 4.2).
#pragma once

#include <memory>

#include "http/endpoints.hpp"
#include "http/strict_scion.hpp"

namespace pan::proxy {

struct ReverseProxyConfig {
  /// Inject "Strict-SCION: max-age=..." into all responses.
  std::optional<http::StrictScionDirective> inject_strict_scion;
  /// Inject a "Path-Preference: ..." header (server-side path negotiation)
  /// on behalf of the backend operator.
  std::optional<std::string> inject_path_preference;
  /// Per-request processing overhead of the reverse proxy.
  Duration processing_overhead = microseconds(150);
  transport::TransportConfig quic = http::default_quic_config();
  transport::TransportConfig tcp = http::default_tcp_config();
  std::size_t max_backend_conns = 8;
};

class ReverseProxy {
 public:
  /// `stack` is the proxy host's SCION stack (the listening side); the
  /// legacy backend is reached from the same host.
  ReverseProxy(scion::ScionStack& stack, std::uint16_t listen_port,
               net::Endpoint backend, ReverseProxyConfig config = {});

  [[nodiscard]] std::uint64_t requests_relayed() const { return relayed_; }
  [[nodiscard]] std::uint64_t backend_errors() const { return backend_errors_; }

 private:
  void relay(const http::HttpRequest& request, http::HttpServer::Respond respond);
  http::LegacyHttpConnection* idle_backend_conn();

  scion::ScionStack& stack_;
  net::Endpoint backend_;
  ReverseProxyConfig config_;
  struct BackendEntry {
    std::unique_ptr<http::LegacyHttpConnection> conn;
    std::size_t outstanding = 0;
  };
  std::vector<BackendEntry> backend_conns_;
  std::unique_ptr<http::ScionHttpServer> server_;
  std::uint64_t relayed_ = 0;
  std::uint64_t backend_errors_ = 0;
};

}  // namespace pan::proxy
