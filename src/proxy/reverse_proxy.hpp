// Server-side reverse proxy ("we have implemented a simple reverse proxy to
// add SCION support to web servers", Section 5.1).
//
// Accepts QUIC-lite/SCION connections and relays each request to a legacy
// HTTP backend over TCP-lite/IP, returning the backend's response. It can
// inject the Strict-SCION header on behalf of operators whose sites are
// fully SCION-capable (Section 4.2).
#pragma once

#include <memory>

#include "http/endpoints.hpp"
#include "http/origin_pool.hpp"
#include "http/strict_scion.hpp"
#include "obs/collector.hpp"
#include "obs/trace.hpp"
#include "proxy/overload.hpp"

namespace pan::proxy {

struct ReverseProxyConfig {
  /// Inject "Strict-SCION: max-age=..." into all responses.
  std::optional<http::StrictScionDirective> inject_strict_scion;
  /// Inject a "Path-Preference: ..." header (server-side path negotiation)
  /// on behalf of the backend operator.
  std::optional<std::string> inject_path_preference;
  /// Per-request processing overhead of the reverse proxy.
  Duration processing_overhead = microseconds(150);
  transport::TransportConfig quic = http::default_quic_config();
  transport::TransportConfig tcp = http::default_tcp_config();
  std::size_t max_backend_conns = 8;
  /// Backend connections idle longer than this are evicted (zero = never).
  Duration pool_idle_ttl = seconds(60);
  /// Ingress admission control + brownout-pressure tracking (metrics under
  /// `revproxy.overload.*`). Defaults admit everything; benches cap
  /// max_in_flight to exercise shedding.
  OverloadConfig overload;
  /// Adaptive concurrency for the backend pool: narrows the pipelining
  /// fan-out when the backend's latency inflates (max_limit 0 disables).
  AimdConfig backend_aimd = {.min_limit = 4, .max_limit = 64,
                             .latency_target = milliseconds(1500)};
  /// Local deadline budget per relayed request: the queue-shedding deadline
  /// is now + min(backend_budget, X-Skip-Deadline-Ms from the client hop).
  Duration backend_budget = seconds(8);
  /// Shared metrics registry (`pool.revproxy.backend.*` instruments). When
  /// null the proxy owns a private one.
  obs::MetricsRegistry* metrics = nullptr;
  /// Trace collector for this hop's spans. When a relayed request carries an
  /// X-Skip-Trace header, the reverse proxy records a "relay" span (parented
  /// under the client hop's fetch span) and a "backend" span beneath it.
  /// Null disables recording. Sharing the client proxy's collector is what
  /// assembles the two hops into one tree.
  obs::TraceCollector* collector = nullptr;
};

class ReverseProxy {
 public:
  /// `stack` is the proxy host's SCION stack (the listening side); the
  /// legacy backend is reached from the same host.
  ReverseProxy(scion::ScionStack& stack, std::uint16_t listen_port,
               net::Endpoint backend, ReverseProxyConfig config = {});

  [[nodiscard]] std::uint64_t requests_relayed() const { return relayed_; }
  [[nodiscard]] std::uint64_t backend_errors() const { return backend_errors_; }
  /// Requests rejected at ingress by admission control (429/503).
  [[nodiscard]] std::uint64_t rejected() const { return rejected_; }
  /// The ingress overload controller (tests / introspection).
  [[nodiscard]] OverloadController& overload() { return overload_; }
  /// The backend connection pool (introspection for tests). Once the pool
  /// is at max_backend_conns, further requests pipeline onto the
  /// least-outstanding live connection.
  [[nodiscard]] http::OriginPool& backend_pool() { return backend_pool_; }

 private:
  /// Span-id hop prefix for this process (the client process mints under
  /// obs::RequestTrace::kHopClient = 1<<56).
  static constexpr std::uint64_t kHopReverseProxy = 2ULL << 56;

  /// Per-relay tracing state (present when the request carried a parseable
  /// X-Skip-Trace header and a collector is configured).
  struct HopTrace {
    obs::TraceContext ctx;
    TimePoint ingress;
    TimePoint backend_start;
    std::uint64_t relay_span = 0;
    std::uint64_t backend_span = 0;
  };

  void relay(const http::HttpRequest& request, http::HttpServer::Respond respond);
  /// Records the relay (and optionally backend) spans for a finished relay.
  void record_hop(const HopTrace& hop, int status, std::string_view outcome,
                  bool backend_ran);
  [[nodiscard]] static http::OriginPoolConfig backend_pool_config(
      const ReverseProxyConfig& config, http::ConcurrencyLimiter* limiter);
  /// Queue-shedding deadline for one relayed request (backend_budget capped
  /// by the client hop's X-Skip-Deadline-Ms, when present).
  [[nodiscard]] TimePoint relay_deadline(const http::HttpRequest& request) const;

  scion::ScionStack& stack_;
  net::Endpoint backend_;
  ReverseProxyConfig config_;
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_ = nullptr;  // set before the overload layer
  obs::TraceCollector* collector_ = nullptr;
  OverloadController overload_;
  AimdController backend_limiter_;
  http::OriginPool backend_pool_;
  std::unique_ptr<http::ScionHttpServer> server_;
  std::uint64_t next_span_seq_ = 1;
  std::uint64_t relayed_ = 0;
  std::uint64_t backend_errors_ = 0;
  std::uint64_t rejected_ = 0;
};

}  // namespace pan::proxy
