// Server-side reverse proxy ("we have implemented a simple reverse proxy to
// add SCION support to web servers", Section 5.1).
//
// Accepts QUIC-lite/SCION connections and relays each request to a legacy
// HTTP backend over TCP-lite/IP, returning the backend's response. It can
// inject the Strict-SCION header on behalf of operators whose sites are
// fully SCION-capable (Section 4.2).
#pragma once

#include <memory>

#include "http/endpoints.hpp"
#include "http/origin_pool.hpp"
#include "http/strict_scion.hpp"

namespace pan::proxy {

struct ReverseProxyConfig {
  /// Inject "Strict-SCION: max-age=..." into all responses.
  std::optional<http::StrictScionDirective> inject_strict_scion;
  /// Inject a "Path-Preference: ..." header (server-side path negotiation)
  /// on behalf of the backend operator.
  std::optional<std::string> inject_path_preference;
  /// Per-request processing overhead of the reverse proxy.
  Duration processing_overhead = microseconds(150);
  transport::TransportConfig quic = http::default_quic_config();
  transport::TransportConfig tcp = http::default_tcp_config();
  std::size_t max_backend_conns = 8;
  /// Backend connections idle longer than this are evicted (zero = never).
  Duration pool_idle_ttl = seconds(60);
  /// Shared metrics registry (`pool.revproxy.backend.*` instruments). When
  /// null the proxy owns a private one.
  obs::MetricsRegistry* metrics = nullptr;
};

class ReverseProxy {
 public:
  /// `stack` is the proxy host's SCION stack (the listening side); the
  /// legacy backend is reached from the same host.
  ReverseProxy(scion::ScionStack& stack, std::uint16_t listen_port,
               net::Endpoint backend, ReverseProxyConfig config = {});

  [[nodiscard]] std::uint64_t requests_relayed() const { return relayed_; }
  [[nodiscard]] std::uint64_t backend_errors() const { return backend_errors_; }
  /// The backend connection pool (introspection for tests). Once the pool
  /// is at max_backend_conns, further requests pipeline onto the
  /// least-outstanding live connection.
  [[nodiscard]] http::OriginPool& backend_pool() { return backend_pool_; }

 private:
  void relay(const http::HttpRequest& request, http::HttpServer::Respond respond);
  [[nodiscard]] static http::OriginPoolConfig backend_pool_config(
      const ReverseProxyConfig& config);

  scion::ScionStack& stack_;
  net::Endpoint backend_;
  ReverseProxyConfig config_;
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_ = nullptr;  // set before backend_pool_
  http::OriginPool backend_pool_;
  std::unique_ptr<http::ScionHttpServer> server_;
  std::uint64_t relayed_ = 0;
  std::uint64_t backend_errors_ = 0;
};

}  // namespace pan::proxy
