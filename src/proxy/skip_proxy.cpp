#include "proxy/skip_proxy.hpp"

#include "http/strict_scion.hpp"
#include "proxy/negotiation.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace pan::proxy {

namespace {
constexpr std::string_view kLog = "skip";

http::HttpResponse synthetic_error(int status, const std::string& message) {
  http::HttpResponse response = http::make_text_response(status, message);
  response.headers.set("X-Skip-Error", message);
  return response;
}

}  // namespace

const char* to_string(TransportUsed t) {
  switch (t) {
    case TransportUsed::kScion: return "scion";
    case TransportUsed::kIp: return "ip";
    case TransportUsed::kBlocked: return "blocked";
    case TransportUsed::kError: return "error";
  }
  return "?";
}

SkipProxy::SkipProxy(sim::Simulator& sim, net::Host& host, scion::ScionStack& stack,
                     scion::Daemon& daemon, dns::Resolver& resolver, ProxyConfig config)
    : sim_(sim),
      host_(host),
      stack_(stack),
      resolver_(resolver),
      config_(config),
      detector_(sim, resolver),
      selector_(daemon) {
  scmp_subscription_ = stack_.subscribe_scmp(
      [this](const scion::ScmpMessage& message) { on_scmp(message); });
}

SkipProxy::~SkipProxy() { stack_.unsubscribe_scmp(scmp_subscription_); }

void SkipProxy::on_scmp(const scion::ScmpMessage& message) {
  ++stats_.scmp_reports;
  selector_.revoke(message.origin_as, message.interface, config_.revocation_ttl);
  PAN_DEBUG(kLog) << "revoking after " << message.to_string();
  // Migrate every pooled connection whose current path crosses the broken
  // interface: re-select and switch the QUIC connection's conduit; loss
  // recovery redelivers in-flight data over the new path.
  for (auto& [key, origin] : scion_pool_) {
    if (origin.conn == nullptr ||
        origin.conn->transport().state() == transport::Connection::State::kClosed) {
      continue;
    }
    if (!origin.path.uses_interface(message.origin_as, message.interface)) continue;
    const std::string origin_key = key;
    std::optional<ppl::PolicySet> per_site_policies;
    if (policy_router_.rule_count() > 0) {
      const std::string host = origin_key.substr(0, origin_key.find(':'));
      per_site_policies = policy_router_.match(host);
    }
    selector_.choose(origin.addr.ia, {}, [this, origin_key](PathChoice choice) {
      const auto it = scion_pool_.find(origin_key);
      if (it == scion_pool_.end() || it->second.conn == nullptr) return;
      const scion::Path* replacement = nullptr;
      if (choice.compliant.has_value()) {
        replacement = &*choice.compliant;
      } else if (choice.any.has_value()) {
        replacement = &*choice.any;
      }
      if (replacement == nullptr ||
          replacement->fingerprint() == it->second.path.fingerprint()) {
        return;  // nothing better available
      }
      ++stats_.scmp_reroutes;
      PAN_DEBUG(kLog) << origin_key << ": migrating to " << replacement->to_string();
      it->second.conn->set_path(replacement->dataplane());
      it->second.path = *replacement;
    },
                     std::move(per_site_policies));
  }
}

http::HttpRequest SkipProxy::to_origin_form(const http::Url& url, http::HttpRequest request) {
  request.target = url.path;
  request.headers.set("Host", url.authority());
  return request;
}

void SkipProxy::fetch(http::HttpRequest request, ProxyRequestOptions options,
                      FetchFn on_result) {
  ++stats_.requests;
  auto shared_cb = std::make_shared<FetchFn>(std::move(on_result));
  auto done = std::make_shared<bool>(false);

  // Per-request timeout.
  sim_.schedule_after(config_.request_timeout, [this, shared_cb, done] {
    if (*done) return;
    ++stats_.timeouts;
    ProxyResult result;
    result.transport = TransportUsed::kError;
    result.response = synthetic_error(504, "proxy request timeout");
    finish(shared_cb, done, std::move(result));
  });

  // Browser -> proxy IPC crossing plus proxy processing.
  sim_.schedule_after(config_.ipc_overhead + config_.processing_overhead,
                      [this, request = std::move(request), options, shared_cb, done]() mutable {
                        process(std::move(request), options, shared_cb, done);
                      });
}

void SkipProxy::finish(std::shared_ptr<FetchFn> on_result, std::shared_ptr<bool> done,
                       ProxyResult result) {
  if (*done) return;
  *done = true;
  switch (result.transport) {
    case TransportUsed::kScion: ++stats_.over_scion; break;
    case TransportUsed::kIp: ++stats_.over_ip; break;
    case TransportUsed::kBlocked: ++stats_.blocked; break;
    case TransportUsed::kError: ++stats_.errors; break;
  }
  // Proxy -> browser IPC crossing.
  sim_.schedule_after(config_.ipc_overhead,
                      [on_result, result = std::move(result)]() mutable {
                        (*on_result)(std::move(result));
                      });
}

void SkipProxy::process(http::HttpRequest request, ProxyRequestOptions options,
                        std::shared_ptr<FetchFn> on_result, std::shared_ptr<bool> done) {
  // Determine the URL: absolute-form target (proxy convention) or Host header.
  std::string url_text = request.target;
  if (!strings::starts_with(url_text, "http://")) {
    url_text = "http://" + request.host() + request.target;
  }
  const auto url = http::parse_url(url_text);
  if (!url.ok()) {
    ProxyResult result;
    result.response = synthetic_error(400, "bad proxy request URL: " + url.error());
    finish(on_result, done, std::move(result));
    return;
  }

  detector_.resolve(url.value().host, [this, url = url.value(), request = std::move(request),
                                       options, on_result, done](ResolvedHost host) mutable {
    const bool scion_possible = host.scion.has_value() && config_.prefer_scion;
    if (!scion_possible) {
      if (options.strict) {
        ProxyResult result;
        result.transport = TransportUsed::kBlocked;
        result.response =
            synthetic_error(502, "strict mode: " + url.host + " is not reachable over SCION");
        finish(on_result, done, std::move(result));
        return;
      }
      if (!host.ip.has_value()) {
        ProxyResult result;
        result.response = synthetic_error(502, "cannot resolve " + url.host);
        finish(on_result, done, std::move(result));
        return;
      }
      fetch_over_ip(url, std::move(request), *host.ip, /*fell_back=*/false, on_result, done);
      return;
    }

    // Apply any negotiated server preference for this origin (user policies
    // still rank first inside the selector).
    std::vector<ppl::OrderKey> server_pref;
    if (const auto pref = origin_preferences_.find(url.authority());
        pref != origin_preferences_.end()) {
      server_pref = pref->second;
    }
    std::optional<ppl::PolicySet> per_site_policies;
    if (policy_router_.rule_count() > 0) {
      per_site_policies = policy_router_.match(url.host);
    }
    selector_.choose(host.scion->ia, std::move(server_pref),
                     [this, url, request = std::move(request), options, host,
                      on_result, done](PathChoice choice) mutable {
      const bool local_dst = stack_.local_as() == host.scion->ia;
      if (local_dst) {
        // Intra-AS destination: the empty path is trivially compliant.
        fetch_over_scion(url, std::move(request), *host.scion,
                         scion::Path::local(stack_.local_as()), /*compliant=*/true,
                         host.ip, on_result, done);
        return;
      }
      if (options.strict) {
        if (!choice.compliant.has_value()) {
          ProxyResult result;
          result.transport = TransportUsed::kBlocked;
          result.response = synthetic_error(
              502, "strict mode: no policy-compliant SCION path to " + url.host);
          finish(on_result, done, std::move(result));
          return;
        }
        fetch_over_scion(url, std::move(request), *host.scion, *choice.compliant,
                         /*compliant=*/true, std::nullopt, on_result, done);
        return;
      }
      // Opportunistic: compliant if possible, else any path (flagged), else IP.
      if (choice.compliant.has_value()) {
        fetch_over_scion(url, std::move(request), *host.scion, *choice.compliant,
                         /*compliant=*/true, host.ip, on_result, done);
      } else if (choice.any.has_value()) {
        PAN_DEBUG(kLog) << url.host << ": no policy-compliant path, using non-compliant";
        fetch_over_scion(url, std::move(request), *host.scion, *choice.any,
                         /*compliant=*/false, host.ip, on_result, done);
      } else if (host.ip.has_value()) {
        fetch_over_ip(url, std::move(request), *host.ip, /*fell_back=*/true, on_result, done);
      } else {
        ProxyResult result;
        result.response = synthetic_error(502, "no SCION path and no legacy address for " +
                                                   url.host);
        finish(on_result, done, std::move(result));
      }
    },
                     std::move(per_site_policies));
  });
}

void SkipProxy::fetch_over_scion(const http::Url& url, http::HttpRequest request,
                                 const scion::ScionAddr& addr, const scion::Path& path,
                                 bool compliant, std::optional<net::IpAddr> fallback_ip,
                                 std::shared_ptr<FetchFn> on_result,
                                 std::shared_ptr<bool> done) {
  const std::string key = url.authority();
  ScionOrigin& origin = scion_pool_[key];
  if (origin.conn == nullptr ||
      origin.conn->transport().state() == transport::Connection::State::kClosed) {
    // 0-RTT resumption: origins we have spoken SCION to before accept early
    // data, saving a handshake round trip on reconnects.
    transport::TransportConfig quic = config_.quic;
    quic.zero_rtt = resumption_tickets_.contains(key);
    origin.conn = std::make_unique<http::ScionHttpConnection>(
        stack_, scion::ScionEndpoint{addr, url.port}, path.dataplane(), quic);
    origin.path = path;
    origin.addr = addr;
  } else if (origin.path.fingerprint() != path.fingerprint()) {
    origin.conn->set_path(path.dataplane());
    origin.path = path;
  }

  http::HttpRequest origin_request = to_origin_form(url, std::move(request));
  origin.conn->fetch(origin_request, [this, url, origin_request, addr, path, compliant,
                                      fallback_ip, on_result,
                                      done](Result<http::HttpResponse> result) {
    if (*done) return;
    if (!result.ok()) {
      if (fallback_ip.has_value()) {
        ++stats_.fallbacks;
        PAN_DEBUG(kLog) << url.host << ": SCION fetch failed (" << result.error()
                        << "), falling back to IP";
        fetch_over_ip(url, origin_request, *fallback_ip, /*fell_back=*/true, on_result, done);
        return;
      }
      ProxyResult out;
      out.response = synthetic_error(502, "SCION fetch failed: " + result.error());
      finish(on_result, done, std::move(out));
      return;
    }
    http::HttpResponse response = std::move(result).take();
    // Learn availability advertised via Strict-SCION.
    if (const auto directive = http::strict_scion_of(response)) {
      detector_.learn(url.host, addr, directive->max_age);
    }
    // Path negotiation: remember the server's advertised preference.
    if (const auto pref_header = response.headers.get(std::string(kPathPreferenceHeader))) {
      if (auto parsed_pref = parse_path_preference(*pref_header); parsed_pref.ok()) {
        origin_preferences_[url.authority()] = std::move(parsed_pref).take();
      } else {
        PAN_DEBUG(kLog) << url.host << ": ignoring bad Path-Preference: "
                        << parsed_pref.error();
      }
    }
    // Report the path the connection *ended up on* — an SCMP-driven
    // migration may have moved it off the path chosen at selection time.
    const scion::Path* final_path = &path;
    if (const auto pool_it = scion_pool_.find(url.authority());
        pool_it != scion_pool_.end() && pool_it->second.conn != nullptr) {
      if (!pool_it->second.path.fingerprint().empty()) {
        final_path = &pool_it->second.path;
      }
      selector_.record_rtt(*final_path, pool_it->second.conn->transport().smoothed_rtt());
    }
    selector_.record_use(*final_path, response.body.size(), sim_.now());
    resumption_tickets_.insert(url.authority());
    stats_.bytes_scion += response.body.size();

    response.headers.set("X-Skip-Transport", "scion");
    response.headers.set("X-Skip-Path", final_path->fingerprint());
    response.headers.set("X-Skip-Compliant", compliant ? "yes" : "no");

    ProxyResult out;
    out.transport = TransportUsed::kScion;
    out.policy_compliant = compliant;
    out.path_fingerprint = final_path->fingerprint();
    out.response = std::move(response);
    finish(on_result, done, std::move(out));
  });
}

void SkipProxy::fetch_over_ip(const http::Url& url, http::HttpRequest request, net::IpAddr ip,
                              bool fell_back, std::shared_ptr<FetchFn> on_result,
                              std::shared_ptr<bool> done) {
  const std::string key = url.authority();
  http::HttpRequest origin_request = to_origin_form(url, std::move(request));
  LegacyOrigin& origin = legacy_pool_[key];
  origin.waiting.emplace_back(
      std::move(origin_request),
      [this, fell_back, on_result, done](Result<http::HttpResponse> result) {
        if (*done) return;
        if (!result.ok()) {
          ProxyResult out;
          out.response = synthetic_error(502, "legacy fetch failed: " + result.error());
          out.fell_back = fell_back;
          finish(on_result, done, std::move(out));
          return;
        }
        http::HttpResponse response = std::move(result).take();
        stats_.bytes_ip += response.body.size();
        response.headers.set("X-Skip-Transport", "ip");
        ProxyResult out;
        out.transport = TransportUsed::kIp;
        out.fell_back = fell_back;
        out.response = std::move(response);
        finish(on_result, done, std::move(out));
      });
  dispatch_legacy(key, ip, url.port);
}

void SkipProxy::dispatch_legacy(const std::string& origin_key, net::IpAddr ip,
                                std::uint16_t port) {
  LegacyOrigin& origin = legacy_pool_[origin_key];
  // Drop dead connections.
  std::erase_if(origin.conns, [](const LegacyPoolEntry& e) {
    return e.conn->transport().state() == transport::Connection::State::kClosed &&
           e.outstanding == 0;
  });
  while (!origin.waiting.empty()) {
    // Find an idle connection (browser-style: no pipelining on one conn).
    LegacyPoolEntry* chosen = nullptr;
    for (LegacyPoolEntry& entry : origin.conns) {
      if (entry.outstanding == 0 &&
          entry.conn->transport().state() != transport::Connection::State::kClosed) {
        chosen = &entry;
        break;
      }
    }
    if (chosen == nullptr) {
      if (origin.conns.size() >= config_.max_legacy_conns_per_origin) return;  // queue
      origin.conns.push_back(LegacyPoolEntry{
          std::make_unique<http::LegacyHttpConnection>(host_, net::Endpoint{ip, port},
                                                       config_.tcp),
          0});
      chosen = &origin.conns.back();
    }

    auto [request, cb] = std::move(origin.waiting.front());
    origin.waiting.pop_front();
    ++chosen->outstanding;
    // Index-stable capture: connections vector may grow; capture the conn
    // pointer and a weak count reference via origin_key lookup on completion.
    http::LegacyHttpConnection* conn = chosen->conn.get();
    conn->fetch(request, [this, origin_key, ip, port, conn,
                          cb = std::move(cb)](Result<http::HttpResponse> result) {
      LegacyOrigin& o = legacy_pool_[origin_key];
      for (LegacyPoolEntry& entry : o.conns) {
        if (entry.conn.get() == conn && entry.outstanding > 0) {
          --entry.outstanding;
          break;
        }
      }
      cb(std::move(result));
      dispatch_legacy(origin_key, ip, port);
    });
  }
}

}  // namespace pan::proxy
