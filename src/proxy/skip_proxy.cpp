#include "proxy/skip_proxy.hpp"

#include <algorithm>

#include "http/strict_scion.hpp"
#include "proxy/negotiation.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace pan::proxy {

namespace {
constexpr std::string_view kLog = "skip";
constexpr std::string_view kInternalPrefix = "/skip/";
/// Name the ctor's host/stack take in the access bundle once add_access()
/// turns multi-access on.
constexpr std::string_view kPrimaryAccess = "primary";

http::HttpResponse synthetic_error(int status, const std::string& message) {
  http::HttpResponse response = http::make_text_response(status, message);
  response.headers.set("X-Skip-Error", message);
  return response;
}

/// A fleet of replicas shares the configured retry_jitter_seed default, and
/// identically-seeded Rngs would make every replica compute the *same*
/// backoff jitter — after a shared fault the whole fleet retries in
/// synchronized waves, defeating the jitter. Salt the seed with a
/// process-wide instance number (same device as make_trace()'s trace-id
/// salt; the sim is single-threaded, so this stays deterministic).
std::uint64_t salted_jitter_seed(std::uint64_t seed) {
  static std::uint64_t instance_seq = 0;
  return seed ^ (0x9e3779b97f4a7c15ULL * ++instance_seq);
}

/// The /skip/ control space is GET-only: exact endpoints plus the two
/// parameterized prefixes. Used to answer 405 (not 404) on known paths.
bool is_known_internal_endpoint(std::string_view target) {
  static constexpr std::string_view kExact[] = {
      "/skip/metrics", "/skip/pool",     "/skip/health", "/skip/traces",
      "/skip/identity", "/skip/debug",   "/skip/ping",   "/skip/access",
      "/skip/metrics.prom",
  };
  static constexpr std::string_view kPrefixes[] = {"/skip/trace/", "/skip/identity/rotate/"};
  for (const std::string_view endpoint : kExact) {
    if (target == endpoint) return true;
  }
  for (const std::string_view prefix : kPrefixes) {
    if (strings::starts_with(target, prefix)) return true;
  }
  return false;
}

}  // namespace

const char* to_string(TransportUsed t) {
  switch (t) {
    case TransportUsed::kScion: return "scion";
    case TransportUsed::kIp: return "ip";
    case TransportUsed::kBlocked: return "blocked";
    case TransportUsed::kError: return "error";
    case TransportUsed::kInternal: return "internal";
  }
  return "?";
}

Duration ProxyResult::phase_total(std::string_view phase) const {
  Duration sum = Duration::zero();
  for (const obs::SpanRecord& span : spans) {
    if (span.name == phase) sum += span.duration;
  }
  return sum;
}

http::OriginPoolConfig SkipProxy::legacy_pool_config(const ProxyConfig& config,
                                                     http::ConcurrencyLimiter* limiter) {
  http::OriginPoolConfig pool;
  pool.name = "legacy";
  pool.max_conns_per_origin = config.max_legacy_conns_per_origin;
  pool.max_outstanding_per_conn = 1;  // browser-like: no pipelining
  pool.idle_ttl = config.pool_idle_ttl;
  pool.queue_timeout = config.request_timeout;
  pool.backoff_threshold = config.pool_backoff_threshold;
  pool.backoff_cooldown = config.pool_backoff_cooldown;
  pool.limiter = limiter;
  pool.deadline_shed = config.overload.enabled;
  return pool;
}

http::OriginPoolConfig SkipProxy::scion_pool_config(const ProxyConfig& config,
                                                    http::ConcurrencyLimiter* limiter) {
  http::OriginPoolConfig pool;
  pool.name = "scion";
  pool.max_conns_per_origin = 1;     // one QUIC connection per origin...
  pool.max_outstanding_per_conn = 0;  // ...multiplexing all requests
  pool.idle_ttl = config.pool_idle_ttl;
  pool.queue_timeout = config.request_timeout;
  pool.backoff_threshold = config.pool_backoff_threshold;
  pool.backoff_cooldown = config.pool_backoff_cooldown;
  pool.limiter = limiter;
  pool.deadline_shed = config.overload.enabled;
  return pool;
}

http::SubmitOptions SkipProxy::submit_options(const RequestState& req) const {
  http::SubmitOptions options;
  // With the overload layer ablated, queue ordering degrades to plain FIFO
  // (all one class); the deadline still rides along for the always-on
  // expired-dispatch check.
  if (config_.overload.enabled) {
    options.priority = static_cast<std::uint8_t>(req.priority);
  }
  options.deadline = req.deadline;
  return options;
}

SkipProxy::SkipProxy(sim::Simulator& sim, net::Host& host, scion::ScionStack& stack,
                     scion::Daemon& daemon, dns::Resolver& resolver, ProxyConfig config)
    : sim_(sim),
      host_(host),
      stack_(stack),
      resolver_(resolver),
      config_(config),
      owned_metrics_(config.metrics == nullptr ? std::make_unique<obs::MetricsRegistry>()
                                               : nullptr),
      metrics_(config.metrics != nullptr ? config.metrics : owned_metrics_.get()),
      owned_collector_(config.collector == nullptr
                           ? std::make_unique<obs::TraceCollector>(config.collector_config)
                           : nullptr),
      collector_(config.collector != nullptr ? config.collector : owned_collector_.get()),
      slo_(*metrics_),
      timeseries_(*metrics_, config.timeseries, sim.now()),
      detector_(sim, resolver),
      selector_(daemon, metrics_),
      breaker_(sim, CircuitBreakerConfig{config_.breaker_threshold, config_.breaker_open_ttl},
               metrics_),
      identities_(sim, *metrics_, config_.identity_audit_cap),
      retry_rng_(salted_jitter_seed(config_.retry_jitter_seed)),
      overload_(sim, *metrics_, config_.overload),
      legacy_limiter_("legacy", config_.legacy_aimd, *metrics_),
      scion_limiter_("scion", config_.scion_aimd, *metrics_),
      legacy_pool_(sim, *metrics_,
                   legacy_pool_config(config_, config_.overload.enabled &&
                                                       config_.legacy_aimd.max_limit > 0
                                                   ? &legacy_limiter_
                                                   : nullptr)),
      scion_pool_(sim, *metrics_,
                  scion_pool_config(config_, config_.overload.enabled &&
                                                     config_.scion_aimd.max_limit > 0
                                                 ? &scion_limiter_
                                                 : nullptr)) {
  legacy_limiter_.set_simulator(&sim_);
  scion_limiter_.set_simulator(&sim_);
  scmp_subscription_ = stack_.subscribe_scmp(
      [this](const scion::ScmpMessage& message) { on_scmp(message); });
  std::vector<obs::SloObjective> objectives =
      config_.slos.empty() ? obs::SloMonitor::default_proxy_objectives() : config_.slos;
  for (obs::SloObjective& objective : objectives) slo_.add(std::move(objective));
}

SkipProxy::~SkipProxy() {
  stack_.unsubscribe_scmp(scmp_subscription_);
  for (const auto& [stack, subscription] : access_scmp_subscriptions_) {
    stack->unsubscribe_scmp(subscription);
  }
}

void SkipProxy::add_access(const std::string& name, net::Host& host,
                           scion::ScionStack& stack, scion::Daemon& daemon) {
  if (multi_access_ == nullptr) {
    multi_access_ = std::make_unique<net::MultiAccessHost>(sim_, config_.access);
    // The constructor attachment is the primary access; it keeps winning
    // deterministic ties until the probes measure otherwise.
    multi_access_->add_access(std::string(kPrimaryAccess), host_);
    access_stacks_[std::string(kPrimaryAccess)] = &stack_;
    access_health_subscription_ = multi_access_->subscribe(
        [this](const std::string& access, net::AccessHealth previous,
               net::AccessHealth current) { on_access_health(access, previous, current); });
  }
  if (multi_access_->has_access(name)) return;
  multi_access_->add_access(name, host);
  access_stacks_[name] = &stack;
  selector_.add_access_daemon(name, daemon);
  // SCMP arriving over the new access feeds the same revocation/migration
  // handler as the primary stack's.
  access_scmp_subscriptions_.emplace_back(
      &stack,
      stack.subscribe_scmp([this](const scion::ScmpMessage& message) { on_scmp(message); }));
  multi_access_->start_probes();
}

std::string SkipProxy::pick_access(const RequestState& req) {
  const net::FetchIntent effective =
      config_.intent_aware ? req.intent : net::FetchIntent::kBulk;
  if (const auto pin = config_.pin_intent_access.find(to_string(effective));
      pin != config_.pin_intent_access.end()) {
    if (multi_access_->has_access(pin->second) &&
        multi_access_->health(pin->second) != net::AccessHealth::kDown) {
      return pin->second;
    }
  }
  // Soft-avoid the access the previous attempt rode: a retry should try the
  // other first-hop AS when one is usable.
  return multi_access_->pick(effective, req.access);
}

scion::ScionStack& SkipProxy::stack_for(const std::string& access) {
  if (const auto it = access_stacks_.find(access); it != access_stacks_.end()) {
    return *it->second;
  }
  return stack_;
}

net::Host& SkipProxy::host_for(const std::string& access) {
  if (multi_access_ != nullptr) {
    if (net::Host* host = multi_access_->host(access); host != nullptr) return *host;
  }
  return host_;
}

std::string SkipProxy::access_authority(const std::string& authority,
                                        const std::string& access) {
  return access.empty() ? authority : authority + "#" + access;
}

void SkipProxy::fail_no_access(const RequestPtr& req, const std::string& host) {
  metrics_->counter("proxy.no_access").inc();
  if (req->strict) {
    fail_strict_unavailable(req, host, "all access links down");
    return;
  }
  req->trace->set_outcome("fault");
  ProxyResult result;
  result.response = http::make_retry_after_response(
      503, config_.strict_retry_after, "all access links down for " + host);
  finish(req, std::move(result));
}

void SkipProxy::on_access_health(const std::string& name, net::AccessHealth /*previous*/,
                                 net::AccessHealth current) {
  metrics_->gauge("access." + name + ".health")
      .set(current == net::AccessHealth::kHealthy    ? 2.0
           : current == net::AccessHealth::kDegraded ? 1.0
                                                     : 0.0);
  metrics_->events().record(sim_.now(), "access", std::string(to_string(current)), name);
  if (current != net::AccessHealth::kDown) return;
  metrics_->counter("proxy.access_down_events").inc();
  // Retire pooled connections riding the dead access: their conduits are
  // gone, and parked waiters must re-dispatch onto fresh dials elsewhere.
  const std::string suffix = "#" + name;
  std::vector<std::string> dead_keys;
  scion_pool_.for_each_connection(
      [&](const std::string& key, http::OriginPool::PooledConnection&) {
        if (strings::ends_with(key, suffix)) dead_keys.push_back(key);
      });
  for (const std::string& key : dead_keys) {
    scion_pool_.retire(key);
    resumption_tickets_.erase(key);
  }
  dead_keys.clear();
  legacy_pool_.for_each_connection(
      [&](const std::string& key, http::OriginPool::PooledConnection&) {
        if (strings::ends_with(key, suffix)) dead_keys.push_back(key);
      });
  for (const std::string& key : dead_keys) legacy_pool_.retire(key);
  // Mid-flight failover: every in-flight SCION attempt on the dead access is
  // abandoned (epoch bump invalidates its callbacks and attempt timer) and
  // re-run immediately — the fresh attempt picks a surviving access and must
  // still land inside the request's original deadline budget.
  std::vector<std::pair<ScionContextPtr, RequestPtr>> to_failover;
  for (const auto& [ptr, entry] : inflight_scion_) {
    if (!entry.second->done && entry.second->access == name) to_failover.push_back(entry);
  }
  for (auto& [ctx, req] : to_failover) {
    ++req->epoch;
    req->trace->end("fetch");
    req->trace->cancel("handshake");
    req->trace->set_attribute("access_failover", name);
    metrics_->counter("proxy.access_failovers").inc();
    PAN_DEBUG(kLog) << ctx->url.host << ": access " << name
                    << " down, failing over mid-flight";
    start_scion_attempt(ctx, req);
  }
}

obs::TracePtr SkipProxy::make_trace() {
  // Trace ids must stay unique when several proxy instances share one
  // TraceCollector (the figure benches build a fresh session per trial):
  // salt the per-proxy sequence with a process-wide instance number. The
  // sim is single-threaded, so this stays deterministic run to run.
  static std::uint64_t instance_seq = 0;
  if (trace_id_base_ == 0) trace_id_base_ = ++instance_seq << 32;
  return std::make_shared<obs::RequestTrace>(sim_, trace_id_base_ | next_trace_id_++);
}

ProxyStats SkipProxy::stats() const {
  ProxyStats stats;
  stats.requests = metrics_->counter_value("proxy.requests");
  stats.over_scion = metrics_->counter_value("proxy.over_scion");
  stats.over_ip = metrics_->counter_value("proxy.over_ip");
  stats.blocked = metrics_->counter_value("proxy.blocked");
  stats.errors = metrics_->counter_value("proxy.errors");
  stats.internal = metrics_->counter_value("proxy.internal");
  stats.fallbacks = metrics_->counter_value("proxy.fallbacks");
  stats.timeouts = metrics_->counter_value("proxy.timeouts");
  stats.bytes_scion = metrics_->counter_value("proxy.bytes_scion");
  stats.bytes_ip = metrics_->counter_value("proxy.bytes_ip");
  stats.scmp_reports = metrics_->counter_value("proxy.scmp_reports");
  stats.scmp_reroutes = metrics_->counter_value("proxy.scmp_reroutes");
  stats.scion_failures = metrics_->counter_value("proxy.scion_failures");
  stats.gateway_errors = metrics_->counter_value("proxy.gateway_errors");
  stats.retries = metrics_->counter_value("proxy.retries");
  stats.attempt_timeouts = metrics_->counter_value("proxy.attempt_timeouts");
  stats.breaker_short_circuits = metrics_->counter_value("proxy.breaker_short_circuits");
  stats.strict_unavailable = metrics_->counter_value("proxy.strict_unavailable");
  stats.admitted = metrics_->counter_value("overload.admitted");
  stats.rejected_rate = metrics_->counter_value("overload.rejected_rate");
  stats.rejected_capacity = metrics_->counter_value("overload.rejected_capacity");
  stats.shed = metrics_->counter_value("overload.shed_requests");
  stats.brownout_bypasses = metrics_->counter_value("overload.brownout_bypass");
  stats.access_down_events = metrics_->counter_value("proxy.access_down_events");
  stats.access_failovers = metrics_->counter_value("proxy.access_failovers");
  return stats;
}

std::vector<SkipProxy::PooledScionOrigin> SkipProxy::scion_pool_snapshot() {
  std::vector<PooledScionOrigin> out;
  scion_pool_.for_each_connection(
      [&out](const std::string& key, http::OriginPool::PooledConnection& conn) {
        auto* scion_conn = dynamic_cast<http::ScionPooledConnection*>(&conn);
        if (scion_conn == nullptr) return;
        out.push_back(PooledScionOrigin{key, scion_conn->host(), scion_conn->port(),
                                        scion_conn->path().fingerprint()});
      });
  return out;
}

void SkipProxy::on_scmp(const scion::ScmpMessage& message) {
  metrics_->counter("proxy.scmp_reports").inc();
  selector_.revoke(message.origin_as, message.interface, config_.revocation_ttl);
  PAN_DEBUG(kLog) << "revoking after " << message.to_string();
  // Migrate every pooled connection whose current path crosses the broken
  // interface: re-select and switch the QUIC connection's conduit via the
  // pool; loss recovery redelivers in-flight data over the new path.
  struct Affected {
    std::string key;
    scion::IsdAsn ia;
    std::string host;
    std::string authority;
    std::string identity;
    std::string access;
  };
  std::vector<Affected> affected;
  scion_pool_.for_each_connection(
      [&](const std::string& key, http::OriginPool::PooledConnection& conn) {
        auto* scion_conn = dynamic_cast<http::ScionPooledConnection*>(&conn);
        if (scion_conn == nullptr ||
            scion_conn->transport().state() == transport::Connection::State::kClosed) {
          return;
        }
        if (!scion_conn->path().uses_interface(message.origin_as, message.interface)) return;
        // The host was parsed once at pool-insert time; splitting the key at
        // its first ':' would mis-handle any host containing a colon. The
        // identity, in contrast, is unambiguous: sanitized ids cannot
        // contain the '|' scope separator.
        std::string authority = scion_conn->host();
        if (scion_conn->port() != 80) {
          authority += ":" + std::to_string(scion_conn->port());
        }
        // Multi-access keys suffix the authority with "#<access>"; a URL
        // authority cannot contain '#', so the split is unambiguous. The
        // replacement path must come from that access's daemon.
        std::string access;
        if (const auto hash = key.rfind('#'); hash != std::string::npos) {
          access = key.substr(hash + 1);
        }
        affected.push_back(Affected{key, scion_conn->addr().ia, scion_conn->host(),
                                    std::move(authority), identity_of_key(key),
                                    std::move(access)});
      });
  for (const Affected& origin : affected) {
    std::optional<ppl::PolicySet> per_site_policies;
    if (policy_router_.rule_count() > 0) {
      per_site_policies = policy_router_.match(origin.host);
    }
    if (!per_site_policies.has_value()) {
      per_site_policies = identities_.policies_for(origin.identity);
    }
    // Re-selection honors the identity broker: the replacement path must
    // stay disjoint from other identities' paths to this origin, and the
    // migration re-commits the assignment (collision-counted on fallback).
    selector_.choose(origin.ia, {},
                     [this, key = origin.key, identity = origin.identity,
                      authority = origin.authority](PathChoice choice) {
      const scion::Path* replacement = nullptr;
      bool excluded = false;
      if (choice.compliant.has_value()) {
        replacement = &*choice.compliant;
        excluded = choice.compliant_excluded;
      } else if (choice.any.has_value()) {
        replacement = &*choice.any;
        excluded = choice.any_excluded;
      }
      if (replacement == nullptr) return;  // nothing better available
      const std::size_t migrated = scion_pool_.migrate(key, *replacement);
      if (migrated == 0) return;  // already on (or equal to) this path
      identities_.commit(identity, authority, replacement->fingerprint(), excluded);
      metrics_->counter("proxy.scmp_reroutes").inc(migrated);
      PAN_DEBUG(kLog) << key << ": migrating to " << replacement->to_string();
    },
                     std::move(per_site_policies),
                     identities_.exclusion(origin.identity, origin.authority),
                     origin.access);
  }
}

void SkipProxy::rotate_identity(const std::string& id) {
  const std::string identity = sanitize_identity(id);
  const auto released = identities_.rotate(identity, config_.identity_quarantine_ttl);
  for (const auto& [origin, fingerprint] : released) {
    // No connection carrying a pre-rotation path may survive: retire the
    // identity's pooled SCION connections (in-flight fetches fail over to
    // fresh dials) and forget its 0-RTT tickets, which would otherwise link
    // the rotated identity to its earlier sessions.
    const std::string key = identity_key(identity, origin);
    scion_pool_.retire(key);
    resumption_tickets_.erase(key);
    // Multi-access pools scope the authority per access; retire those too.
    if (multi_access_ != nullptr) {
      for (const std::string& access : multi_access_->access_names()) {
        const std::string access_key = identity_key(identity, origin + "#" + access);
        scion_pool_.retire(access_key);
        resumption_tickets_.erase(access_key);
      }
    }
  }
  PAN_DEBUG(kLog) << "rotated identity " << identity << " (" << released.size()
                  << " assignments released)";
}

http::HttpRequest SkipProxy::to_origin_form(const http::Url& url, http::HttpRequest request) {
  request.target = url.path;
  request.headers.set("Host", url.authority());
  return request;
}

void SkipProxy::fetch(http::HttpRequest request, ProxyRequestOptions options,
                      FetchFn on_result) {
  metrics_->counter("proxy.requests").inc();
  auto req = std::make_shared<RequestState>();
  req->on_result = std::move(on_result);
  req->trace = options.trace != nullptr ? options.trace : make_trace();
  req->strict = options.strict;
  req->deadline = options.deadline.value_or(sim_.now() + config_.request_timeout);
  // Strict-pinned requests outrank their header class: the user pinned the
  // host, so its requests ride in the document band.
  req->priority = options.strict ? RequestPriority::kDocument : priority_of(request);
  req->identity = identity_of(request);
  // Socket intent: derived from the priority class the page model already
  // tags, overridable via X-Skip-Intent; strict pins ride the fast access.
  switch (req->priority) {
    case RequestPriority::kDocument: req->intent = net::FetchIntent::kLatencyCritical; break;
    case RequestPriority::kSubresource: req->intent = net::FetchIntent::kBulk; break;
    case RequestPriority::kProbe: req->intent = net::FetchIntent::kBackground; break;
  }
  if (const auto intent_header = request.headers.get(std::string(net::kIntentHeader))) {
    if (const auto parsed = net::parse_fetch_intent(*intent_header)) req->intent = *parsed;
  }
  if (options.strict) req->intent = net::FetchIntent::kLatencyCritical;

  // Cross-hop trace context: a request arriving with an X-Skip-Trace header
  // but no in-process trace object joins the caller's trace (id, parent
  // span, sampled bit). Fresh traces get a head-sampling verdict by
  // priority class; errors/sheds/fallbacks force retention at finalize
  // regardless.
  bool adopted = false;
  if (options.trace == nullptr) {
    if (const auto header = request.headers.get(std::string(obs::kTraceHeader))) {
      if (const auto ctx = obs::parse_trace_context(*header)) {
        req->trace->adopt(*ctx);
        adopted = true;
      }
    }
  }
  if (!adopted) {
    req->trace->set_sampled(collector_->head_sample(static_cast<unsigned>(req->priority)));
  }
  if (req->identity != kDefaultIdentity) {
    req->trace->set_attribute("identity", req->identity);
  }

  // Admission control runs before any work (timer, IPC defer) is queued:
  // rejected requests cost one synthesized response and nothing else. The
  // proxy's own control endpoints are never load-shed — they are how
  // operators observe the overload state.
  if (!strings::starts_with(request.target, kInternalPrefix)) {
    const OverloadController::Admission admission =
        overload_.admit(client_of(request), req->priority);
    if (admission.verdict != OverloadController::Verdict::kAdmit) {
      const bool rate = admission.verdict == OverloadController::Verdict::kRejectRate;
      ProxyResult result;
      result.transport = TransportUsed::kError;
      result.response = http::make_retry_after_response(
          rate ? 429 : 503,
          admission.retry_after,
          rate ? "admission: per-client rate limit exceeded"
               : std::string("admission: proxy over capacity (") +
                     to_string(req->priority) + " band full)");
      req->trace->set_outcome("shed");
      req->trace->begin("ipc");
      finish(req, std::move(result));
      return;
    }
    req->admitted = true;
  }
  req->trace->begin("ipc");

  // Per-request deadline: whatever state the pipeline is in, the request
  // resolves by then.
  sim_.schedule_at(req->deadline, [this, req] {
    if (req->done) return;
    metrics_->counter("proxy.timeouts").inc();
    req->trace->set_outcome("timeout");
    ProxyResult result;
    result.transport = TransportUsed::kError;
    result.response = synthetic_error(504, "proxy request deadline exceeded");
    finish(req, std::move(result));
  });

  // Browser -> proxy IPC crossing plus proxy processing.
  sim_.schedule_after(config_.ipc_overhead + config_.processing_overhead,
                      [this, request = std::move(request), options, req]() mutable {
                        req->trace->end("ipc");
                        process(std::move(request), options, req);
                      });
}

void SkipProxy::finish(const RequestPtr& req, ProxyResult result) {
  if (req->done) return;
  req->done = true;
  inflight_scion_.erase(req.get());
  if (req->admitted) {
    overload_.release();
    req->admitted = false;
  }
  result.scion_attempts = req->attempts;
  result.identity = req->identity;
  result.access = req->access;
  if (!req->access.empty() &&
      (result.transport == TransportUsed::kScion || result.transport == TransportUsed::kIp)) {
    result.response.headers.set("X-Skip-Access", req->access);
  }
  // Per-identity stats count requests actually carried to an origin.
  if (result.transport == TransportUsed::kScion || result.transport == TransportUsed::kIp) {
    identities_.record_result(req->identity, result.transport == TransportUsed::kScion,
                              result.response.body.size());
  }
  switch (result.transport) {
    case TransportUsed::kScion: metrics_->counter("proxy.over_scion").inc(); break;
    case TransportUsed::kIp: metrics_->counter("proxy.over_ip").inc(); break;
    case TransportUsed::kBlocked: metrics_->counter("proxy.blocked").inc(); break;
    case TransportUsed::kError: metrics_->counter("proxy.errors").inc(); break;
    case TransportUsed::kInternal: metrics_->counter("proxy.internal").inc(); break;
  }
  // Truncate phases still open (timeout / early error), then time the
  // response-side crossing as one more ipc span.
  req->trace->end_all();
  req->trace->begin("ipc");
  // Proxy -> browser IPC crossing.
  sim_.schedule_after(config_.ipc_overhead, [this, req,
                                             result = std::move(result)]() mutable {
    req->trace->end("ipc");
    // Terminal outcome: the site that decided the request's fate set it
    // (timeout / shed / breaker-open / ...); derive from the response for
    // the paths that end without one.
    if (req->trace->outcome().empty()) {
      const int status = result.response.status;
      if (result.transport == TransportUsed::kBlocked) {
        req->trace->set_outcome("blocked");
      } else if (status == 504) {
        req->trace->set_outcome("timeout");
      } else if (status >= 500) {
        req->trace->set_outcome("fault");
      } else if (status >= 400) {
        req->trace->set_outcome("error");
      } else {
        req->trace->set_outcome("ok");
      }
    }
    // Decide *before* flushing whether the collector keeps this trace: only
    // kept trace ids ride into histogram exemplars, so every exemplar that
    // surfaces in /skip/metrics resolves at /skip/trace/<id>.
    const bool internal = result.transport == TransportUsed::kInternal;
    const bool keep = !internal && (req->trace->sampled() ||
                                    result.response.status >= 400 || result.fell_back);
    const std::uint64_t exemplar_id = keep ? req->trace->id() : 0;
    req->trace->flush_to(*metrics_, "proxy.phase.", exemplar_id);
    metrics_->histogram("proxy.request_total")
        .record(sim_.now() - req->trace->created_at(), exemplar_id,
                req->trace->created_at());
    timeseries_.observe(sim_.now());
    result.outcome = std::string(req->trace->outcome());
    result.trace_id = req->trace->id();
    result.spans = req->trace->spans();
    // Export the span tree. The proxy's own control endpoints are not
    // traced — /skip/trace reading the collector must not grow it.
    if (!internal) {
      if (result.fell_back) req->trace->set_attribute("fell_back", "true");
      req->trace->report_to(*collector_, "skip-proxy", sim_.now());
      const int status = result.response.status;
      collector_->finalize(req->trace->id(), req->trace->outcome(), keep);
      if (status >= 500) {
        // 5xx auto-dump: the flight recorder's recent history rides with the
        // trace, so a failed chaos scenario carries its own context.
        metrics_->events().record(
            sim_.now(), "proxy", "5xx",
            strings::format("status=%d trace=%llu outcome=%s", status,
                            static_cast<unsigned long long>(req->trace->id()),
                            result.outcome.c_str()));
        collector_->attach_events(req->trace->id(), metrics_->events().last(32));
      }
    }
    req->on_result(std::move(result));
  });
}

void SkipProxy::serve_internal(const http::HttpRequest& request, const RequestPtr& req) {
  // Endpoints take query parameters (?prefix=, ?window=); dispatch on the
  // path component only so "/skip/metrics?prefix=slo." still routes.
  const auto [path_view, query] = http::split_target(request.target);
  const std::string path(path_view);
  timeseries_.observe(sim_.now());
  ProxyResult result;
  result.transport = TransportUsed::kInternal;
  // Method gate first: a non-GET on a *known* endpoint is 405 + Allow, not
  // 404 — fleet front-ends and load balancers probe with HEAD/POST and must
  // be able to tell "wrong verb" from "no such endpoint".
  if (request.method != "GET" && is_known_internal_endpoint(path)) {
    result.response = synthetic_error(405, "method not allowed: " + request.method);
    result.response.headers.set("Allow", "GET");
    finish(req, std::move(result));
    return;
  }
  if (path == "/skip/ping") {
    // Liveness probe (the fleet's health prober hits this): cheap, constant,
    // and served even when every origin-facing subsystem is on fire.
    result.response =
        http::make_response(200, from_string("{\"ok\":true}"), "application/json");
  } else if (path == "/skip/metrics") {
    metrics_->gauge("proxy.scion_pool_size")
        .set(static_cast<double>(scion_pool_.origin_count()));
    metrics_->gauge("proxy.legacy_pool_size")
        .set(static_cast<double>(legacy_pool_.origin_count()));
    const std::string prefix(http::query_param(query, "prefix"));
    const std::string_view window_text = http::query_param(query, "window");
    if (!window_text.empty()) {
      // ?window=<ms>: rate/delta over the trailing window from the
      // time-series store instead of the lifetime-cumulative dump.
      const auto window_ms = strings::parse_u64(window_text);
      if (!window_ms.ok()) {
        result.response = synthetic_error(400, "bad window (want milliseconds): " +
                                                   std::string(window_text));
      } else {
        result.response = http::make_response(
            200,
            from_string(timeseries_.query_json(
                prefix, milliseconds(static_cast<std::int64_t>(window_ms.value())))),
            "application/json");
      }
    } else {
      result.response = http::make_response(200, from_string(metrics_->to_json(prefix)),
                                            "application/json");
    }
  } else if (path == "/skip/metrics.prom") {
    std::vector<std::pair<std::string, std::string>> labels;
    if (!config_.prom_instance.empty()) labels.emplace_back("instance", config_.prom_instance);
    const std::string prefix(http::query_param(query, "prefix"));
    result.response = http::make_response(200, from_string(metrics_->to_prom(prefix, labels)),
                                          "text/plain; version=0.0.4");
  } else if (path == "/skip/pool") {
    // Per-origin pool state; the scion side additionally reports the path
    // each pooled connection currently rides.
    std::string body = "{\"legacy\":" + legacy_pool_.snapshot_json() + ",\"scion\":" +
                       scion_pool_.snapshot_json() + ",\"scion_paths\":{";
    bool first = true;
    for (const PooledScionOrigin& origin : scion_pool_snapshot()) {
      if (!first) body += ",";
      first = false;
      body += strings::json_quote(origin.key) + ":" +
              strings::json_quote(origin.path_fingerprint);
    }
    body += "}}";
    result.response = http::make_response(200, from_string(body), "application/json");
  } else if (path == "/skip/health") {
    // Resilience-state dump: circuit breakers, quarantined paths, active
    // revocations, and every fault.* counter the injector shares with us.
    std::string body = "{\"breaker\":" + breaker_.snapshot_json() +
                       ",\"breaker_open\":" + std::to_string(breaker_.open_count()) +
                       ",\"quarantines\":{";
    bool first = true;
    for (const auto& [fingerprint, expires] : selector_.quarantine_snapshot()) {
      if (!first) body += ",";
      first = false;
      body += strings::json_quote(fingerprint) + ":" +
              strings::format("%.3f", expires.millis());
    }
    body += "},\"revocations_active\":" + std::to_string(selector_.active_revocations());
    body += ",\"overload\":" + overload_.snapshot_json();
    body += ",\"adaptive\":{\"legacy\":" + legacy_limiter_.snapshot_json() +
            ",\"scion\":" + scion_limiter_.snapshot_json() + "}";
    slo_.evaluate(sim_.now());
    body += ",\"slo\":" + slo_.snapshot_json();
    body += ",\"faults\":{";
    first = true;
    for (const auto& [name, counter] : metrics_->counters()) {
      if (!strings::starts_with(name, "fault.")) continue;
      if (!first) body += ",";
      first = false;
      body += strings::json_quote(name) + ":" + std::to_string(counter.value());
    }
    body += "}}";
    result.response = http::make_response(200, from_string(body), "application/json");
  } else if (path == "/skip/traces") {
    result.response = http::make_response(200, from_string(collector_->spans_jsonl()),
                                          "application/x-ndjson");
  } else if (strings::starts_with(path, "/skip/trace/")) {
    const auto id = strings::parse_u64(
        std::string_view(path).substr(std::string_view("/skip/trace/").size()));
    const obs::TraceRecord* record = id.ok() ? collector_->find(id.value()) : nullptr;
    if (record == nullptr) {
      result.response = synthetic_error(404, "no such trace: " + request.target);
    } else {
      result.response = http::make_response(
          200, from_string(obs::TraceCollector::chrome_trace_json(*record)),
          "application/json");
    }
  } else if (path == "/skip/access") {
    // Multi-access state: per-access health, probe EWMA, striping weights.
    result.response = http::make_response(
        200,
        from_string(multi_access_ != nullptr ? multi_access_->snapshot_json()
                                             : std::string("{\"accesses\":[]}")),
        "application/json");
  } else if (path == "/skip/identity") {
    // Per-identity isolation state: stats, live path assignments, audit.
    result.response = http::make_response(200, from_string(identities_.snapshot_json()),
                                          "application/json");
  } else if (strings::starts_with(path, "/skip/identity/rotate/")) {
    const std::string id = sanitize_identity(std::string_view(path)
                                                 .substr(std::string_view(
                                                             "/skip/identity/rotate/")
                                                             .size()));
    rotate_identity(id);
    result.response = http::make_response(
        200, from_string("{\"rotated\":" + strings::json_quote(id) + "}"),
        "application/json");
  } else if (path == "/skip/debug") {
    // The flight-recorder snapshot plus collector and SLO state — the first
    // stop when a scenario goes sideways.
    slo_.evaluate(sim_.now());
    std::string body = "{\"events\":" + metrics_->events().snapshot_json();
    body += ",\"collector\":" + collector_->stats_json();
    body += ",\"slo\":" + slo_.snapshot_json() + "}";
    result.response = http::make_response(200, from_string(body), "application/json");
  } else {
    result.response = synthetic_error(404, "unknown proxy endpoint: " + request.target);
  }
  finish(req, std::move(result));
}

void SkipProxy::process(http::HttpRequest request, ProxyRequestOptions options,
                        RequestPtr req) {
  // Proxy-internal control endpoints (origin-form, reserved /skip/ space).
  if (strings::starts_with(request.target, kInternalPrefix)) {
    serve_internal(request, req);
    return;
  }

  // Determine the URL: absolute-form target (proxy convention) or Host
  // header. Parse the scheme properly — an absolute-form target with any
  // scheme other than http (e.g. https) is rejected with a 400 rather than
  // being glued onto the Host header and mangled.
  std::string url_text = request.target;
  const auto scheme_end = url_text.find("://");
  if (scheme_end != std::string::npos) {
    const std::string scheme = url_text.substr(0, scheme_end);
    if (scheme != "http") {
      metrics_->counter("proxy.bad_requests").inc();
      ProxyResult result;
      result.response =
          synthetic_error(400, "unsupported scheme in proxy request: '" + scheme + "'");
      finish(req, std::move(result));
      return;
    }
  } else {
    url_text = "http://" + request.host() + request.target;
  }
  const auto url = http::parse_url(url_text);
  if (!url.ok()) {
    metrics_->counter("proxy.bad_requests").inc();
    ProxyResult result;
    result.response = synthetic_error(400, "bad proxy request URL: " + url.error());
    finish(req, std::move(result));
    return;
  }

  req->trace->begin("detect");
  detector_.resolve(url.value().host, req->identity, [this, url = url.value(),
                                                     request = std::move(request), options,
                                                     req](ResolvedHost host) mutable {
    if (req->done) return;
    req->trace->end("detect");
    const bool scion_possible = host.scion.has_value() && config_.prefer_scion;
    if (!scion_possible) {
      if (options.strict) {
        ProxyResult result;
        result.transport = TransportUsed::kBlocked;
        result.response =
            synthetic_error(502, "strict mode: " + url.host + " is not reachable over SCION");
        finish(req, std::move(result));
        return;
      }
      if (!host.ip.has_value()) {
        ProxyResult result;
        result.response = synthetic_error(502, "cannot resolve " + url.host);
        finish(req, std::move(result));
        return;
      }
      fetch_over_ip(url, std::move(request), *host.ip, /*fell_back=*/false, req);
      return;
    }

    // Brownout: under sustained pressure the opportunistic SCION upgrade is
    // optional work — skip selection/handshake entirely and ride the legacy
    // path until pressure clears. Strict requests keep their guarantee.
    if (!options.strict && host.ip.has_value() && overload_.brownout()) {
      metrics_->counter("overload.brownout_bypass").inc();
      req->trace->set_attribute("brownout", "bypass");
      fetch_over_ip(url, std::move(request), *host.ip, /*fell_back=*/false, req);
      return;
    }

    auto ctx = std::make_shared<ScionContext>();
    ctx->url = url;
    ctx->request = std::move(request);
    ctx->addr = *host.scion;
    // Strict mode never falls back to legacy.
    ctx->fallback_ip = options.strict ? std::nullopt : host.ip;

    // Routing-layer circuit breaker: while this origin's breaker is open,
    // skip the SCION attempt entirely.
    if (!breaker_.allow(ctx->url.authority())) {
      metrics_->counter("proxy.breaker_short_circuits").inc();
      req->trace->set_attribute("breaker", "open");
      if (req->strict) {
        req->trace->set_outcome("breaker-open");
        fail_strict_unavailable(req, ctx->url.host, "circuit breaker open");
        return;
      }
      if (ctx->fallback_ip.has_value()) {
        metrics_->counter("proxy.fallbacks").inc();
        req->trace->set_attribute("fallback_reason", "breaker-open");
        req->trace->begin("fallback");
        fetch_over_ip(ctx->url, std::move(ctx->request), *ctx->fallback_ip,
                      /*fell_back=*/true, req);
        return;
      }
      req->trace->set_outcome("breaker-open");
      ProxyResult result;
      result.response = http::make_retry_after_response(
          503, config_.breaker_open_ttl,
          "circuit breaker open for " + ctx->url.host + ", no legacy address");
      finish(req, std::move(result));
      return;
    }

    start_scion_attempt(ctx, req);
  });
}

void SkipProxy::start_scion_attempt(const ScionContextPtr& ctx, const RequestPtr& req) {
  ++req->attempts;
  ++req->epoch;
  if (multi_access_ != nullptr) {
    const std::string access = pick_access(*req);
    if (access.empty()) {
      fail_no_access(req, ctx->url.host);
      return;
    }
    if (!req->access.empty() && req->access != access) {
      req->trace->set_attribute("access_switched", access);
    }
    req->access = access;
    req->trace->set_attribute("access", access);
  }
  scion::ScionStack& stack = stack_for(req->access);
  if (stack.local_as() == ctx->addr.ia) {
    // Intra-AS destination: the empty path is trivially compliant.
    fetch_over_scion(ctx, scion::Path::local(stack.local_as()), /*compliant=*/true,
                     /*excluded=*/false, req);
    return;
  }
  // Apply any negotiated server preference for this origin (user policies
  // still rank first inside the selector). Recomputed per attempt — a
  // response between attempts may have updated the negotiation state.
  std::vector<ppl::OrderKey> server_pref;
  if (const auto pref = origin_preferences_.find(ctx->url.authority());
      pref != origin_preferences_.end()) {
    server_pref = pref->second;
  }
  std::optional<ppl::PolicySet> per_site_policies;
  if (policy_router_.rule_count() > 0) {
    per_site_policies = policy_router_.match(ctx->url.host);
  }
  // Per-identity policies apply when no per-site rule claimed the host: a
  // site-specific rule is more specific than the identity's blanket policy.
  if (!per_site_policies.has_value()) {
    per_site_policies = identities_.policies_for(req->identity);
  }
  req->trace->begin("select");
  selector_.choose(ctx->addr.ia, std::move(server_pref), [this, ctx,
                                                          req](PathChoice choice) {
    if (req->done) return;
    req->trace->end("select");
    if (req->strict) {
      if (!choice.compliant.has_value()) {
        // Transient until proven otherwise: revocations expire, quarantines
        // lift, beacons refresh — retry within budget, then degrade.
        if (schedule_scion_retry(ctx, req)) return;
        fail_strict_unavailable(req, ctx->url.host,
                                "no policy-compliant SCION path");
        return;
      }
      fetch_over_scion(ctx, *choice.compliant, /*compliant=*/true,
                       choice.compliant_excluded, req);
      return;
    }
    // Opportunistic: compliant if possible, else any path (flagged), else IP.
    if (choice.compliant.has_value()) {
      fetch_over_scion(ctx, *choice.compliant, /*compliant=*/true,
                       choice.compliant_excluded, req);
    } else if (choice.any.has_value()) {
      PAN_DEBUG(kLog) << ctx->url.host
                      << ": no policy-compliant path, using non-compliant";
      fetch_over_scion(ctx, *choice.any, /*compliant=*/false, choice.any_excluded, req);
    } else if (ctx->fallback_ip.has_value()) {
      metrics_->counter("proxy.fallbacks").inc();
      req->trace->begin("fallback");
      fetch_over_ip(ctx->url, ctx->request, *ctx->fallback_ip, /*fell_back=*/true, req);
    } else if (schedule_scion_retry(ctx, req)) {
      // No path and no legacy address: a later attempt is the only hope.
    } else {
      ProxyResult result;
      result.response = synthetic_error(
          502, "no SCION path and no legacy address for " + ctx->url.host);
      finish(req, std::move(result));
    }
  },
                   std::move(per_site_policies),
                   identities_.exclusion(req->identity, ctx->url.authority()), req->access);
}

Duration SkipProxy::deadline_margin(const ScionContext& ctx, const RequestState& req) const {
  // Opportunistic requests with a legacy address keep enough budget to
  // complete the fallback fetch; otherwise just enough slack that the
  // terminal 502/503 beats the 504 deadline timer.
  if (!req.strict && ctx.fallback_ip.has_value()) return config_.fallback_margin;
  return milliseconds(1);
}

Duration SkipProxy::retry_backoff(std::uint32_t attempt) {
  Duration backoff = config_.retry_backoff_base;
  for (std::uint32_t i = 1; i < attempt; ++i) {
    backoff = backoff.scaled(config_.retry_backoff_factor);
  }
  return retry_rng_.jittered(backoff, config_.retry_jitter_frac);
}

bool SkipProxy::schedule_scion_retry(const ScionContextPtr& ctx, const RequestPtr& req) {
  if (req->attempts > config_.max_scion_retries) return false;
  const Duration backoff = retry_backoff(req->attempts);
  if (sim_.now() + backoff + deadline_margin(*ctx, *req) >= req->deadline) {
    return false;  // not enough deadline budget for another attempt
  }
  metrics_->counter("proxy.retries").inc();
  req->trace->begin("backoff");
  const std::uint64_t epoch = req->epoch;
  sim_.schedule_after(backoff, [this, ctx, req, epoch] {
    if (req->done || req->epoch != epoch) return;
    req->trace->end("backoff");
    start_scion_attempt(ctx, req);
  });
  return true;
}

void SkipProxy::fail_strict_unavailable(const RequestPtr& req, const std::string& host,
                                        const std::string& why) {
  metrics_->counter("proxy.strict_unavailable").inc();
  req->trace->set_attribute("strict_unavailable", why);
  req->trace->set_outcome("fault");
  ProxyResult result;
  result.transport = TransportUsed::kBlocked;
  result.response = http::make_retry_after_response(
      503, config_.strict_retry_after,
      "strict mode: SCION temporarily unavailable for " + host + " (" + why + ")");
  finish(req, std::move(result));
}

void SkipProxy::handle_scion_failure(const ScionContextPtr& ctx, const RequestPtr& req,
                                     const scion::Path& path, const std::string& error) {
  metrics_->counter("proxy.scion_failures").inc();
  // Passive access feedback: transport-level failures push the access that
  // carried the attempt toward degraded (our own load state does not).
  if (multi_access_ != nullptr && !req->access.empty() &&
      !http::OriginPool::is_pool_synthesized(error)) {
    multi_access_->record_result(req->access, /*ok=*/false, Duration::zero());
  }
  // Pool-synthesized failures (queue timeout, shed, cooldown fast-fail,
  // expired-in-queue) describe our own load state, not path health — a
  // perfectly good path must not be quarantined for them.
  if (!path.fingerprint().empty() && !http::OriginPool::is_pool_synthesized(error)) {
    selector_.quarantine(path, config_.quarantine_ttl);
  }
  breaker_.record_failure(ctx->url.authority());
  PAN_DEBUG(kLog) << ctx->url.host << ": SCION attempt " << req->attempts
                  << " failed (" << error << ")";
  if (schedule_scion_retry(ctx, req)) return;
  if (!req->strict && ctx->fallback_ip.has_value()) {
    metrics_->counter("proxy.fallbacks").inc();
    req->trace->set_attribute("fallback_reason", error);
    req->trace->begin("fallback");
    fetch_over_ip(ctx->url, ctx->request, *ctx->fallback_ip, /*fell_back=*/true, req);
    return;
  }
  if (req->strict) {
    fail_strict_unavailable(req, ctx->url.host, error);
    return;
  }
  req->trace->set_outcome("fault");
  ProxyResult out;
  out.response = synthetic_error(502, "SCION fetch failed: " + error);
  finish(req, std::move(out));
}

void SkipProxy::fetch_over_scion(const ScionContextPtr& ctx, const scion::Path& path,
                                 bool compliant, bool excluded, const RequestPtr& req) {
  const std::uint64_t my_epoch = req->epoch;
  const http::Url& url = ctx->url;
  const scion::ScionAddr addr = ctx->addr;
  const TimePoint attempt_started = sim_.now();
  // Pool submissions are keyed by (identity, origin): two identities fetching
  // the same origin never share a pooled connection. On a multi-access host
  // the origin is additionally scoped by access — the conduit is physically
  // bound to one access link, so accesses never share one either.
  const std::string key =
      identity_key(req->identity, access_authority(url.authority(), req->access));
  // A live pooled connection follows the freshly selected path (the pool
  // no-ops when the fingerprint is unchanged).
  scion_pool_.migrate(key, path);
  // Claim the path in the identity ledger. `excluded` means the selector had
  // to fall back into another identity's live set (path space exhausted) —
  // recorded as a collision, never silently.
  identities_.commit(req->identity, url.authority(), path.fingerprint(), excluded);

  http::HttpRequest origin_request = to_origin_form(url, ctx->request);
  // Propagate the remaining deadline budget so a reverse proxy downstream
  // sheds against the end-to-end deadline rather than its own local default.
  const Duration remaining_budget = req->deadline - sim_.now();
  if (remaining_budget > Duration::zero()) {
    origin_request.headers.set(
        std::string(kDeadlineHeader),
        std::to_string(static_cast<std::int64_t>(remaining_budget.millis())));
  }
  req->trace->begin("fetch");
  // Propagate the trace context so the reverse proxy's spans parent under
  // this hop's fetch span; annotate the trace with the path actually chosen.
  origin_request.headers.set(
      std::string(obs::kTraceHeader),
      req->trace->context(req->trace->open_span_id("fetch")).to_header());
  req->trace->set_attribute("path", path.fingerprint());
  std::string isd_seq;
  for (const scion::PathHop& hop : path.hops()) {
    if (!isd_seq.empty()) isd_seq += '>';
    isd_seq += std::to_string(hop.isd_as.isd());
  }
  req->trace->set_attribute("isd_seq", isd_seq);
  req->trace->set_attribute("compliant", compliant ? "yes" : "no");
  auto factory = [this, key, url, addr, path, req]() {
    // 0-RTT resumption: origins we have spoken SCION to before accept early
    // data, saving a handshake round trip on reconnects.
    transport::TransportConfig quic = config_.quic;
    quic.zero_rtt = resumption_tickets_.contains(key);
    req->trace->begin("handshake");
    auto pooled = std::make_unique<http::ScionPooledConnection>(
        stack_for(req->access), scion::ScionEndpoint{addr, url.port}, path, url.host,
        url.port, quic);
    transport::Connection& conn = pooled->transport();
    if (conn.state() == transport::Connection::State::kEstablished) {
      // 0-RTT: established synchronously inside start().
      req->trace->end("handshake");
      metrics_->histogram("transport.handshake").record(conn.handshake_time());
    } else {
      conn.set_on_established([this, trace = req->trace, &conn] {
        trace->end("handshake");
        metrics_->histogram("transport.handshake").record(conn.handshake_time());
      });
    }
    return pooled;
  };
  auto on_response = [this, ctx, url, addr, path, compliant, req, my_epoch,
                      attempt_started](Result<http::HttpResponse> result) {
    if (req->done || req->epoch != my_epoch) return;  // superseded by a retry
    req->trace->end("fetch");
    if (!result.ok()) {
      // Discard any half-open handshake span — a failed attempt's dial time
      // must not pollute the handshake histogram via flush.
      req->trace->cancel("handshake");
      handle_scion_failure(ctx, req, path, result.error());
      return;
    }
    http::HttpResponse response = std::move(result).take();
    // Gateway errors are a sick upstream (e.g. the reverse proxy's backend
    // died mid-response), not a sick path: retry the idempotent fetch — on
    // another attempt or the legacy fallback — before surfacing them. The
    // path is not quarantined (it delivered the response fine) but the
    // origin does feed its circuit breaker.
    if (response.status == 502 || response.status == 503 || response.status == 504) {
      metrics_->counter("proxy.scion_failures").inc();
      metrics_->counter("proxy.gateway_errors").inc();
      breaker_.record_failure(url.authority());
      if (schedule_scion_retry(ctx, req)) return;
      if (!req->strict && ctx->fallback_ip.has_value()) {
        metrics_->counter("proxy.fallbacks").inc();
        req->trace->set_attribute("fallback_reason",
                                  strings::format("gateway-%d", response.status));
        req->trace->begin("fallback");
        fetch_over_ip(ctx->url, ctx->request, *ctx->fallback_ip, /*fell_back=*/true, req);
        return;
      }
      // Out of options: the upstream's own error is the most truthful
      // answer — deliver it instead of synthesizing one.
      ProxyResult out;
      out.transport = TransportUsed::kScion;
      out.policy_compliant = compliant;
      out.path_fingerprint = path.fingerprint();
      out.response = std::move(response);
      finish(req, std::move(out));
      return;
    }
    breaker_.record_success(url.authority());
    // Passive access feedback: the fetch latency the access just delivered.
    if (multi_access_ != nullptr && !req->access.empty()) {
      multi_access_->record_result(req->access, /*ok=*/true, sim_.now() - attempt_started);
    }
    // Learn availability advertised via Strict-SCION, scoped to the identity
    // that observed it (a per-identity cache, like the browser's HSTS
    // partitioning, keeps one identity's browsing from priming another's).
    if (const auto directive = http::strict_scion_of(response)) {
      detector_.learn(url.host, addr, directive->max_age, req->identity);
    }
    // Path negotiation: remember the server's advertised preference.
    if (const auto pref_header = response.headers.get(std::string(kPathPreferenceHeader))) {
      if (auto parsed_pref = parse_path_preference(*pref_header); parsed_pref.ok()) {
        origin_preferences_[url.authority()] = std::move(parsed_pref).take();
      } else {
        PAN_DEBUG(kLog) << url.host << ": ignoring bad Path-Preference: "
                        << parsed_pref.error();
      }
    }
    // Report the path the connection *ended up on* — an SCMP-driven
    // migration may have moved it off the path chosen at selection time.
    const scion::Path* final_path = &path;
    const std::string key =
        identity_key(req->identity, access_authority(url.authority(), req->access));
    if (auto* pooled = scion_pool_.primary_as<http::ScionPooledConnection>(key)) {
      if (!pooled->path().fingerprint().empty()) {
        final_path = &pooled->path();
      }
      selector_.record_rtt(*final_path, pooled->transport().smoothed_rtt());
    }
    selector_.record_use(*final_path, response.body.size(), sim_.now(),
                         req->identity == kDefaultIdentity
                             ? std::string_view{}
                             : std::string_view(req->identity));
    resumption_tickets_.insert(key);
    metrics_->counter("proxy.bytes_scion").inc(response.body.size());
    // An SCMP-driven migration may have moved the connection off the path
    // chosen at selection time; the trace reports the one actually used.
    req->trace->set_attribute("path", final_path->fingerprint());

    response.headers.set("X-Skip-Transport", "scion");
    response.headers.set("X-Skip-Path", final_path->fingerprint());
    response.headers.set("X-Skip-Compliant", compliant ? "yes" : "no");

    ProxyResult out;
    out.transport = TransportUsed::kScion;
    out.policy_compliant = compliant;
    out.path_fingerprint = final_path->fingerprint();
    out.response = std::move(response);
    finish(req, std::move(out));
  };
  // Register before submit: a synchronous pool failure finishes the request
  // and must find (and erase) its registry entry. While registered, an
  // access-down transition can abandon this attempt and re-run it elsewhere.
  if (multi_access_ != nullptr) inflight_scion_[req.get()] = {ctx, req};
  scion_pool_.submit(key, origin_request, submit_options(*req), std::move(on_response),
                     std::move(factory));

  // Per-attempt timer: abandon an attempt that is eating the deadline budget
  // (e.g. a slow-loris origin) while there is still time to retry or fall
  // back. Bumping the epoch makes the late on_response a no-op. When
  // abandoning early could not buy anything — no fallback and no time for
  // another attempt — the timer stays unarmed and the request-deadline 504
  // remains the terminal answer.
  const Duration remaining = req->deadline - sim_.now();
  const bool can_fall_back = !req->strict && ctx->fallback_ip.has_value();
  Duration limit = Duration::zero();
  if (can_fall_back) {
    limit = remaining - config_.fallback_margin;
    if (config_.attempt_timeout > Duration::zero()) {
      limit = std::min(limit, config_.attempt_timeout);
    }
  } else if (config_.attempt_timeout > Duration::zero() &&
             config_.attempt_timeout < remaining) {
    limit = config_.attempt_timeout;
  }
  if (limit <= Duration::zero()) return;
  sim_.schedule_after(limit, [this, ctx, req, path, my_epoch] {
    if (req->done || req->epoch != my_epoch) return;
    metrics_->counter("proxy.attempt_timeouts").inc();
    ++req->epoch;  // invalidate the in-flight on_response
    req->trace->end("fetch");
    req->trace->cancel("handshake");
    handle_scion_failure(ctx, req, path, "attempt timed out");
  });
}

void SkipProxy::fetch_over_ip(const http::Url& url, http::HttpRequest request, net::IpAddr ip,
                              bool fell_back, RequestPtr req) {
  // Legacy fetches ride an access link too: pick one when the request has
  // none yet (direct-to-IP and brownout paths), fail closed when every
  // access is down.
  if (multi_access_ != nullptr && req->access.empty()) {
    req->access = pick_access(*req);
    if (req->access.empty()) {
      fail_no_access(req, url.host);
      return;
    }
    req->trace->set_attribute("access", req->access);
  }
  // Legacy fetches are identity-partitioned too: the fallback path must not
  // leak a shared TCP connection across identities.
  const std::string key =
      identity_key(req->identity, access_authority(url.authority(), req->access));
  http::HttpRequest origin_request = to_origin_form(url, std::move(request));
  req->trace->begin("fetch");
  legacy_pool_.submit(
      key, std::move(origin_request), submit_options(*req),
      [this, fell_back, req](Result<http::HttpResponse> result) {
        if (req->done) return;
        req->trace->end("fetch");
        if (fell_back) req->trace->end("fallback");
        if (!result.ok()) {
          ProxyResult out;
          out.fell_back = fell_back;
          if (http::OriginPool::is_shed(result.error())) {
            // Deadline-aware shed: failed fast while retrying elsewhere (or
            // backing off) could still help — a 503, never a hung 504.
            metrics_->counter("overload.shed_requests").inc();
            req->trace->set_outcome("shed");
            out.response = http::make_retry_after_response(
                503, config_.overload.retry_after, "shed under load: " + result.error());
          } else if (http::OriginPool::is_expired(result.error())) {
            metrics_->counter("proxy.timeouts").inc();
            req->trace->set_outcome("timeout");
            out.response = synthetic_error(504, "deadline expired: " + result.error());
          } else if (http::OriginPool::is_queue_timeout(result.error())) {
            metrics_->counter("proxy.timeouts").inc();
            req->trace->set_outcome("timeout");
            out.response = synthetic_error(504, "legacy fetch timed out: " + result.error());
          } else if (http::OriginPool::is_fast_fail(result.error())) {
            req->trace->set_outcome("fault");
            out.response = http::make_retry_after_response(
                503, config_.pool_backoff_cooldown, "origin unavailable: " + result.error());
          } else {
            req->trace->set_outcome("fault");
            out.response = synthetic_error(502, "legacy fetch failed: " + result.error());
          }
          finish(req, std::move(out));
          return;
        }
        http::HttpResponse response = std::move(result).take();
        metrics_->counter("proxy.bytes_ip").inc(response.body.size());
        response.headers.set("X-Skip-Transport", "ip");
        ProxyResult out;
        out.transport = TransportUsed::kIp;
        out.fell_back = fell_back;
        out.response = std::move(response);
        finish(req, std::move(out));
      },
      [this, ip, port = url.port, req]() {
        return std::make_unique<http::LegacyPooledConnection>(
            host_for(req->access), net::Endpoint{ip, port}, config_.tcp);
      });
}

}  // namespace pan::proxy
