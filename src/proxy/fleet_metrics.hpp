// Fleet-wide metrics aggregation (the cluster metrics plane).
//
// A FleetMetricsAggregator collects per-replica registry snapshots — shipped
// on the cluster's existing probe channel, plus an on-demand pull when the
// /skip/fleet/metrics endpoint is scraped — and merges them into one
// fleet-scope view: counters summed, gauges summed, histograms bucket-merged
// (obs::Histogram::merge), exemplars pooled. Because every default histogram
// shares the universal log-linear layout, the merged histogram is identical
// to one fed the pooled samples, so fleet percentiles carry the same
// one-bucket-width error bound as any single replica's.
//
// Restarts: each snapshot arrives tagged with the replica's process
// generation. A generation change folds the previous snapshot into the
// replica's monotonic *base* before the fresh (reset-to-zero) cumulative
// state is adopted, so fleet-merged counters never step backward across a
// replica-restart and windowed rates computed over them never go negative.
//
// Crashed replicas keep contributing their last shipped state (base +
// latest) until they re-ingest under a new generation — exactly what the
// probe-channel shipping buys: the fleet view survives the process.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "obs/metrics.hpp"
#include "util/types.hpp"

namespace pan::proxy {

class FleetMetricsAggregator {
 public:
  /// Ingests replica `name`'s cumulative registry state under `generation`.
  void ingest(const std::string& name, std::uint64_t generation,
              const obs::MetricsRegistry& registry, TimePoint now);

  /// Forgets a replica entirely (not used by restart — only by tests).
  void forget(const std::string& name) { slots_.erase(name); }

  [[nodiscard]] std::size_t replica_count() const { return slots_.size(); }
  [[nodiscard]] std::uint64_t ingest_count() const { return ingests_; }
  /// Generation folds observed (replica restarts absorbed into bases).
  [[nodiscard]] std::uint64_t generation_folds() const { return folds_; }
  /// Merges dropped because two layouts of one histogram name disagreed.
  [[nodiscard]] std::uint64_t layout_conflicts() const { return layout_conflicts_; }

  /// Rebuilds the merged fleet-wide registry into `out` (expected empty).
  void build_merged(obs::MetricsRegistry& out) const;
  /// Rebuilds one replica's view (base folded with latest) into `out`.
  /// Returns false for an unknown replica.
  bool build_replica(const std::string& name, obs::MetricsRegistry& out) const;

  /// {"replicas":{name:{"generation":..,"folds":..,"last_ingest_ms":..,
  /// "metrics":{...}}},"fleet":{...}} — merged percentiles plus per-replica
  /// drill-down, both filtered by `prefix` like MetricsRegistry::to_json.
  [[nodiscard]] std::string fleet_json(std::string_view prefix) const;
  /// Prometheus exposition of the merged view, every series labeled
  /// scope="fleet".
  [[nodiscard]] std::string fleet_prom(std::string_view prefix) const;

 private:
  struct Slot {
    std::uint64_t generation = 0;
    bool seen = false;
    std::uint64_t folds = 0;
    TimePoint last_ingest;
    /// Monotonic carry-over from previous process generations.
    std::map<std::string, std::uint64_t> counter_base;
    std::map<std::string, obs::Histogram> hist_base;
    /// Latest cumulative snapshot of the current generation.
    std::map<std::string, std::uint64_t> counter_latest;
    std::map<std::string, double> gauge_latest;
    std::map<std::string, obs::Histogram> hist_latest;
  };

  void merge_slot_into(const Slot& slot, obs::MetricsRegistry& out) const;
  void merge_histogram(const std::string& name, const obs::Histogram& h,
                       obs::MetricsRegistry& out) const;

  std::map<std::string, Slot> slots_;
  std::uint64_t ingests_ = 0;
  std::uint64_t folds_ = 0;
  mutable std::uint64_t layout_conflicts_ = 0;
};

}  // namespace pan::proxy
