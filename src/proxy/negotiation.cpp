#include "proxy/negotiation.hpp"

#include "util/strings.hpp"

namespace pan::proxy {

Result<std::vector<ppl::OrderKey>> parse_path_preference(std::string_view value) {
  std::vector<ppl::OrderKey> keys;
  for (const std::string_view entry : strings::split_trimmed(value, ',')) {
    const auto parts = strings::split_trimmed(entry, ' ');
    if (parts.empty() || parts.size() > 2) {
      return Err("malformed path preference entry: '" + std::string(entry) + "'");
    }
    const auto metric = ppl::parse_metric(parts[0]);
    if (!metric.ok()) return Err(metric.error());
    ppl::OrderKey key;
    key.metric = metric.value();
    if (parts.size() == 2) {
      if (parts[1] == "asc") {
        key.ascending = true;
      } else if (parts[1] == "desc") {
        key.ascending = false;
      } else {
        return Err("bad direction in path preference: '" + std::string(parts[1]) + "'");
      }
    }
    keys.push_back(key);
  }
  if (keys.empty()) return Err("empty path preference");
  return keys;
}

std::string serialize_path_preference(const std::vector<ppl::OrderKey>& keys) {
  std::string out;
  for (const ppl::OrderKey& key : keys) {
    if (!out.empty()) out += ", ";
    out += ppl::to_string(key.metric);
    out += key.ascending ? " asc" : " desc";
  }
  return out;
}

}  // namespace pan::proxy
