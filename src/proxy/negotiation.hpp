// Server <-> browser path negotiation (the paper's "interesting future
// direction ... enabling another dimension of achievable properties").
//
// A SCION-capable server (or its reverse proxy) advertises how it would
// like clients to reach it via a response header:
//
//   Path-Preference: co2 asc, latency asc
//
// The SKIP proxy remembers the preference per origin and applies it as a
// tie-breaking ordering AFTER the user's own policies — the user always
// wins, but where the user expresses no opinion the server's preference
// steers path selection (e.g. an operator steering bulk traffic onto its
// green transit).
#pragma once

#include <string>
#include <vector>

#include "ppl/ast.hpp"

namespace pan::proxy {

inline constexpr std::string_view kPathPreferenceHeader = "Path-Preference";

/// Parses "metric [asc|desc], ..." into ordering keys. Unknown metrics or
/// malformed entries fail the whole header (servers must not get partial
/// application of a preference they never expressed).
[[nodiscard]] Result<std::vector<ppl::OrderKey>> parse_path_preference(std::string_view value);

[[nodiscard]] std::string serialize_path_preference(const std::vector<ppl::OrderKey>& keys);

}  // namespace pan::proxy
