// The SKIP-style local HTTP proxy (Section 5.1 of the paper).
//
// The browser extension forwards every request here. For each request the
// proxy resolves the target domain (legacy A record + SCION detection),
// selects a SCION path subject to the user's policies/geofence, and carries
// the request over QUIC-lite/SCION — falling back to TCP-lite/IPv4-6 when
// the host has no SCION connectivity (opportunistic mode). In strict mode
// the request is only allowed over a policy-compliant SCION path; otherwise
// it is blocked.
//
// Responses are annotated with X-Skip-Transport / X-Skip-Path /
// X-Skip-Compliant headers so the extension can render the UI indicator,
// and Strict-SCION headers feed the availability detector.
//
// Browser <-> proxy IPC costs a configurable per-crossing overhead, modeling
// the localhost proxy hop the paper identifies as the source of its ~100 ms
// page-load overhead.
//
// Observability: every request runs under an obs::RequestTrace with spans
// for the ipc / detect / select / handshake / fetch / fallback phases; the
// finished breakdown rides on the ProxyResult and is flushed into the
// proxy's obs::MetricsRegistry as per-phase latency histograms. Requests
// whose origin-form target starts with "/skip/" address the proxy itself:
// GET /skip/metrics returns the registry as JSON, GET /skip/pool the
// per-origin connection-pool state, GET /skip/health the resilience
// state (circuit breakers, path quarantines, active revocations, fault.*
// counters), and GET /skip/identity the per-identity isolation state
// (assignments, stats, audit trail; /skip/identity/rotate/<id> rotates).
//
// Per-identity isolation: requests carry an X-Skip-Identity header (absent =
// "default"); the proxy keys its connection pools, 0-RTT tickets, learned
// detector cache, and path-usage accounting by (identity, origin), and an
// IdentityPathBroker keeps concurrent identities on disjoint SCION paths.
//
// Resilience layer: every request runs under a deadline budget (threaded
// from the browser or defaulted from request_timeout). A failed SCION fetch
// quarantines the path in the selector and retries over an alternate path
// with exponential backoff + jitter — before any legacy fallback. Strict
// mode degrades to 503 + Retry-After after bounded retries instead of an
// instant 502, and a per-origin circuit breaker short-circuits repeated
// SCION failures to legacy (opportunistic) or fast-fails (strict) until a
// half-open probe succeeds.
//
// Connection management lives in http::OriginPool: one pool of legacy
// (TCP-lite/IP) connections with browser-like per-origin fan-out, and one
// pool of multiplexed QUIC-lite/SCION connections (a single connection per
// origin) whose live path the SCMP handler migrates via the pool.
#pragma once

#include <map>
#include <memory>
#include <unordered_set>

#include "http/endpoints.hpp"
#include "http/file_server.hpp"
#include "http/origin_pool.hpp"
#include "http/url.hpp"
#include "net/multi_access.hpp"
#include "obs/collector.hpp"
#include "obs/slo.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "proxy/circuit_breaker.hpp"
#include "proxy/detector.hpp"
#include "proxy/identity.hpp"
#include "proxy/overload.hpp"
#include "proxy/path_selector.hpp"
#include "proxy/policy_router.hpp"
#include "util/rng.hpp"

namespace pan::proxy {

struct ProxyConfig {
  /// One-way browser<->proxy crossing cost, applied to request and response.
  Duration ipc_overhead = microseconds(400);
  /// Per-request processing in the proxy itself.
  Duration processing_overhead = microseconds(150);
  Duration request_timeout = seconds(15);
  /// Prefer SCION when available (the paper's opportunistic default).
  bool prefer_scion = true;
  /// Max parallel legacy connections per origin (browser-like).
  std::size_t max_legacy_conns_per_origin = 6;
  /// Idle pooled connections (legacy and SCION) are evicted after this long
  /// (zero = keep forever).
  Duration pool_idle_ttl = seconds(60);
  /// Consecutive fetch failures against one origin before its pool trips a
  /// cool-down during which requests fast-fail (zero disables backoff).
  std::size_t pool_backoff_threshold = 3;
  Duration pool_backoff_cooldown = seconds(5);
  /// How long an SCMP-revoked interface stays excluded from selection.
  Duration revocation_ttl = seconds(30);

  // --- resilience layer (retry / quarantine / circuit breaker) ---
  /// Additional SCION attempts (re-select + fetch) after a failed one before
  /// giving up on SCION. 0 restores the old single-shot behaviour.
  std::size_t max_scion_retries = 2;
  /// Exponential backoff between SCION attempts: base * factor^(attempt-1),
  /// with deterministic +/- jitter so retries across requests decorrelate.
  Duration retry_backoff_base = milliseconds(40);
  double retry_backoff_factor = 2.0;
  double retry_jitter_frac = 0.2;
  std::uint64_t retry_jitter_seed = 0x5eed;
  /// Per-attempt cap: a SCION attempt still unresolved after this long is
  /// abandoned and treated as a failure (0 = bounded only by the deadline).
  Duration attempt_timeout = seconds(4);
  /// Deadline budget reserved for the legacy fallback: opportunistic
  /// requests with a legacy address stop retrying SCION early enough to
  /// still complete over IP within the deadline.
  Duration fallback_margin = seconds(2);
  /// Paths whose fetch failed are quarantined in the selector for this long
  /// (soft exclusion; 0 disables).
  Duration quarantine_ttl = seconds(10);
  /// Retry-After advertised when strict mode exhausts its retries (503).
  Duration strict_retry_after = seconds(1);
  /// Per-origin circuit breaker: consecutive SCION failures that open it
  /// (0 disables) and how long it rejects before a half-open probe.
  std::size_t breaker_threshold = 4;
  Duration breaker_open_ttl = seconds(5);

  // --- per-identity isolation (X-Skip-Identity) ---
  /// After rotate_identity(), the released fingerprints stay off-limits to
  /// the rotating identity for this long so re-brokering lands on fresh
  /// paths instead of trivially re-claiming the old ones.
  Duration identity_quarantine_ttl = seconds(30);
  /// Bounded per-identity audit-trail length (0 = unbounded).
  std::size_t identity_audit_cap = 64;

  // --- multi-access (Socket-Intents-style access scheduling) ---
  /// Intent-aware access picks: latency-critical pinned to the fastest
  /// healthy access, bulk striped, background on the spare. false = the
  /// intent-blind ablation: every request stripes like bulk.
  bool intent_aware = true;
  /// Probe/health knobs for the access bundle (used once add_access() turns
  /// multi-access on; single-access proxies never create the bundle).
  net::MultiAccessConfig access;
  /// Per-intent access pins overriding the scheduler, keyed by intent name
  /// ("latency-critical" / "bulk" / "background"). A pinned access that is
  /// down falls back to the scheduler's pick.
  std::map<std::string, std::string> pin_intent_access;

  // --- overload resilience (admission / shedding / adaptive concurrency) ---
  /// Ingress admission control + brownout. The default knobs (rate 0,
  /// in-flight cap 0) admit everything; `enabled = false` additionally
  /// turns off pool deadline shedding and the AIMD controllers, restoring
  /// the static behaviour for ablation runs.
  OverloadConfig overload;
  /// Adaptive per-origin concurrency for the legacy pool (AIMD; max_limit 0
  /// disables and keeps the static max_legacy_conns_per_origin cap).
  AimdConfig legacy_aimd;
  /// Same for the multiplexed SCION pool, whose outstanding requests were
  /// previously unbounded.
  AimdConfig scion_aimd = {.min_limit = 2, .max_limit = 64};
  /// Shared metrics registry. When null the proxy owns a private one; the
  /// figure benches inject a long-lived registry here so per-phase latency
  /// aggregates across per-trial proxies.
  obs::MetricsRegistry* metrics = nullptr;
  /// Shared trace collector. When null the proxy owns a private one; the
  /// benches and the two-hop scenarios share a collector between the SKIP
  /// proxy and the reverse proxy so a trace's spans assemble in one place.
  obs::TraceCollector* collector = nullptr;
  /// Head-sampling knobs for the owned collector (ignored when `collector`
  /// is injected — the injected collector keeps its own config).
  obs::CollectorConfig collector_config;
  /// SLO objectives evaluated on the registry; empty installs
  /// obs::SloMonitor::default_proxy_objectives().
  std::vector<obs::SloObjective> slos;
  /// Time-series delta snapshots over the registry (lazy sim-clock ticking;
  /// see obs/timeseries.hpp). Queried via GET /skip/metrics?window=...;
  /// interval <= 0 disables the store.
  obs::TimeSeriesConfig timeseries;
  /// Value of the `instance` label stamped on /skip/metrics.prom series
  /// (empty = no label). The cluster sets each replica's name here.
  std::string prom_instance;
  transport::TransportConfig tcp = http::default_tcp_config();
  transport::TransportConfig quic = http::default_quic_config();
};

enum class TransportUsed : std::uint8_t { kScion, kIp, kBlocked, kError, kInternal };

[[nodiscard]] const char* to_string(TransportUsed t);

struct ProxyRequestOptions {
  /// Strict-SCION mode for this request (decided by the extension).
  bool strict = false;
  /// Request-scoped trace carried in from the browser/extension; the proxy
  /// creates one when absent.
  obs::TracePtr trace;
  /// Absolute deadline budget for the whole request (detect + select +
  /// handshake + fetch + retries), threaded down from the browser. Absent:
  /// now + ProxyConfig::request_timeout.
  std::optional<TimePoint> deadline;
};

struct ProxyResult {
  http::HttpResponse response;
  TransportUsed transport = TransportUsed::kError;
  bool policy_compliant = false;
  /// Fingerprint of the SCION path used (empty over IP).
  std::string path_fingerprint;
  /// True when SCION was attempted and the request fell back to IP.
  bool fell_back = false;
  /// SCION attempts (selection + fetch cycles) this request made; > 1 means
  /// the resilience layer retried over alternate paths.
  std::uint32_t scion_attempts = 0;
  /// Per-phase span breakdown of this request (ipc / detect / select /
  /// handshake / fetch / fallback), in completion order.
  std::vector<obs::SpanRecord> spans;
  std::uint64_t trace_id = 0;
  /// Terminal outcome (ok / timeout / shed / breaker-open / fault / blocked),
  /// as recorded on the trace.
  std::string outcome;
  /// Network identity the request ran under (X-Skip-Identity; "default"
  /// when the header was absent).
  std::string identity;
  /// Access attachment that carried the final attempt (empty on a
  /// single-access proxy).
  std::string access;

  /// Sum of the finished spans named `phase` (zero when absent).
  [[nodiscard]] Duration phase_total(std::string_view phase) const;
};

/// Snapshot of the proxy's top-level counters, read from the metrics
/// registry (kept as a struct for ergonomic assertions and display).
struct ProxyStats {
  std::uint64_t requests = 0;
  std::uint64_t over_scion = 0;
  std::uint64_t over_ip = 0;
  std::uint64_t blocked = 0;
  std::uint64_t errors = 0;
  std::uint64_t internal = 0;
  std::uint64_t fallbacks = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t bytes_scion = 0;
  std::uint64_t bytes_ip = 0;
  /// SCMP reports received and live connections migrated to new paths.
  std::uint64_t scmp_reports = 0;
  std::uint64_t scmp_reroutes = 0;
  /// Resilience layer: failed SCION attempts, retries scheduled, attempts
  /// abandoned on the per-attempt timer, breaker short-circuits, and strict
  /// requests degraded to 503 + Retry-After.
  std::uint64_t scion_failures = 0;
  /// 502/503/504 responses received over SCION and treated as retryable
  /// attempt failures (sick upstream, healthy path).
  std::uint64_t gateway_errors = 0;
  std::uint64_t retries = 0;
  std::uint64_t attempt_timeouts = 0;
  std::uint64_t breaker_short_circuits = 0;
  std::uint64_t strict_unavailable = 0;
  /// Overload layer: admissions, 429/503 rejections at ingress, requests
  /// answered from a pool shed (fast 503), and brownout legacy bypasses.
  std::uint64_t admitted = 0;
  std::uint64_t rejected_rate = 0;
  std::uint64_t rejected_capacity = 0;
  std::uint64_t shed = 0;
  std::uint64_t brownout_bypasses = 0;
  /// Multi-access layer: access-down transitions observed and in-flight
  /// fetches migrated to a surviving access mid-attempt.
  std::uint64_t access_down_events = 0;
  std::uint64_t access_failovers = 0;
};

class SkipProxy {
 public:
  SkipProxy(sim::Simulator& sim, net::Host& host, scion::ScionStack& stack,
            scion::Daemon& daemon, dns::Resolver& resolver, ProxyConfig config = {});
  ~SkipProxy();

  SkipProxy(const SkipProxy&) = delete;
  SkipProxy& operator=(const SkipProxy&) = delete;

  using FetchFn = std::function<void(ProxyResult)>;
  /// The extension-facing API: request.target may be in absolute form
  /// ("http://host/path") or origin form plus a Host header. Origin-form
  /// targets under /skip/ are the proxy's own control endpoints.
  void fetch(http::HttpRequest request, ProxyRequestOptions options, FetchFn on_result);

  /// Creates a request trace bound to this proxy's id space; callers up the
  /// stack (browser/extension) open it before handing the request over.
  [[nodiscard]] obs::TracePtr make_trace();

  /// Extension-facing configuration API (the "specific API calls to the
  /// HTTP proxy to apply path policies chosen by users").
  void set_policies(ppl::PolicySet policies) {
    policy_router_.set_default(policies);
    selector_.set_policies(std::move(policies));
  }
  void set_geofence(std::optional<ppl::Geofence> geofence) {
    selector_.set_geofence(std::move(geofence));
  }
  /// Per-destination policies ("geofence my bank, green-route video"): rules
  /// take precedence over the default set for matching hosts.
  [[nodiscard]] PolicyRouter& policy_router() { return policy_router_; }

  /// Per-identity isolation state (the circuit-style path broker).
  [[nodiscard]] IdentityPathBroker& identities() { return identities_; }
  /// rotate_paths() for one identity: quarantines its current path
  /// assignments, retires its pooled SCION connections and 0-RTT tickets,
  /// and lets the next request re-broker onto fresh, still-disjoint paths.
  /// Other identities' assignments are untouched. Also reachable as
  /// `GET /skip/identity/rotate/<id>`.
  void rotate_identity(const std::string& id);
  /// Per-identity PPL policy set, consulted when no per-site router rule
  /// matches (rules > identity policies > the selector default).
  void set_identity_policies(const std::string& id, ppl::PolicySet policies) {
    identities_.identity(sanitize_identity(id)).set_policies(std::move(policies));
  }

  /// Registers an additional access attachment (e.g. "lte"): another host
  /// with its own access link, SCION stack, and daemon rooted in a different
  /// first-hop AS. The first call turns on multi-access scheduling — the
  /// constructor attachment becomes access "primary" — and starts the
  /// health-probe loops. All three references must outlive the proxy.
  void add_access(const std::string& name, net::Host& host, scion::ScionStack& stack,
                  scion::Daemon& daemon);
  /// The access bundle, or null while the proxy is single-access.
  [[nodiscard]] net::MultiAccessHost* multi_access() { return multi_access_.get(); }

  [[nodiscard]] ScionDetector& detector() { return detector_; }
  [[nodiscard]] PathSelector& selector() { return selector_; }
  [[nodiscard]] CircuitBreaker& breaker() { return breaker_; }
  /// The retry-jitter stream. Effectively seeded by retry_jitter_seed XOR a
  /// per-instance salt so fleet replicas sharing a config (and the default
  /// seed) do not retry in lockstep; exposed for the divergence regression.
  [[nodiscard]] Rng& retry_rng() { return retry_rng_; }
  [[nodiscard]] OverloadController& overload() { return overload_; }
  [[nodiscard]] obs::TraceCollector& collector() { return *collector_; }
  [[nodiscard]] obs::SloMonitor& slo() { return slo_; }
  [[nodiscard]] obs::TimeSeriesStore& timeseries() { return timeseries_; }
  [[nodiscard]] obs::MetricsRegistry& metrics() { return *metrics_; }
  [[nodiscard]] const obs::MetricsRegistry& metrics() const { return *metrics_; }
  [[nodiscard]] ProxyStats stats() const;
  [[nodiscard]] const ProxyConfig& config() const { return config_; }
  /// Negotiated per-origin server path preferences (from Path-Preference
  /// response headers).
  [[nodiscard]] const std::unordered_map<std::string, std::vector<ppl::OrderKey>>&
  origin_preferences() const {
    return origin_preferences_;
  }

  /// Pooled-origin introspection for tests and the metrics endpoint.
  struct PooledScionOrigin {
    std::string key;
    std::string host;
    std::uint16_t port = 80;
    std::string path_fingerprint;
  };
  [[nodiscard]] std::vector<PooledScionOrigin> scion_pool_snapshot();
  /// The underlying pools (tests and the /skip/pool endpoint).
  [[nodiscard]] http::OriginPool& legacy_pool() { return legacy_pool_; }
  [[nodiscard]] http::OriginPool& scion_pool() { return scion_pool_; }

 private:
  /// Per-request state threaded through the async pipeline.
  struct RequestState {
    FetchFn on_result;
    bool done = false;
    obs::TracePtr trace;
    /// Absolute budget: the request finishes (one way or another) by then.
    TimePoint deadline;
    bool strict = false;
    /// Priority class (admission ladder + pool queue ordering).
    RequestPriority priority = RequestPriority::kSubresource;
    /// Network identity (X-Skip-Identity, sanitized) keying the pools, the
    /// learned detector cache, and the path broker for this request.
    std::string identity = std::string(kDefaultIdentity);
    /// Socket intent (priority-derived, X-Skip-Intent override) driving the
    /// access pick, and the access carrying the current attempt ("" on a
    /// single-access proxy).
    net::FetchIntent intent = net::FetchIntent::kBulk;
    std::string access;
    /// Counted in-flight by the overload controller until finish().
    bool admitted = false;
    /// SCION attempts started (selection + fetch cycles).
    std::uint32_t attempts = 0;
    /// Bumped whenever a new attempt starts or an old one is abandoned, so
    /// callbacks from stale attempts can detect they lost the race.
    std::uint64_t epoch = 0;
  };
  using RequestPtr = std::shared_ptr<RequestState>;

  /// Everything needed to re-run selection + fetch on retry.
  struct ScionContext {
    http::Url url;
    http::HttpRequest request;  // pre-origin-form; copied per attempt
    scion::ScionAddr addr;
    std::optional<net::IpAddr> fallback_ip;
  };
  using ScionContextPtr = std::shared_ptr<ScionContext>;

  void process(http::HttpRequest request, ProxyRequestOptions options, RequestPtr req);
  /// Serves the proxy's own /skip/* control endpoints.
  void serve_internal(const http::HttpRequest& request, const RequestPtr& req);
  void finish(const RequestPtr& req, ProxyResult result);
  /// One SCION attempt: path selection then fetch. Called for the first
  /// attempt and again on every retry.
  void start_scion_attempt(const ScionContextPtr& ctx, const RequestPtr& req);
  /// `excluded` flags a selection that fell back to a path the identity
  /// broker excluded (path set too small): the commit records a collision.
  void fetch_over_scion(const ScionContextPtr& ctx, const scion::Path& path,
                        bool compliant, bool excluded, const RequestPtr& req);
  /// A SCION attempt failed: quarantine the path, feed the breaker, then
  /// retry / fall back / degrade per mode and remaining budget.
  void handle_scion_failure(const ScionContextPtr& ctx, const RequestPtr& req,
                            const scion::Path& path, const std::string& error);
  /// Schedules the next attempt after backoff when attempt and deadline
  /// budgets allow; false means the caller must terminate the request.
  bool schedule_scion_retry(const ScionContextPtr& ctx, const RequestPtr& req);
  /// Strict-mode graceful degradation: 503 + Retry-After (never a hang).
  void fail_strict_unavailable(const RequestPtr& req, const std::string& host,
                               const std::string& why);
  /// Deadline slack an attempt must leave unspent: room for the legacy
  /// fallback in opportunistic mode, or (strict) for the 503 to beat the
  /// 504 deadline timer.
  [[nodiscard]] Duration deadline_margin(const ScionContext& ctx,
                                         const RequestState& req) const;
  [[nodiscard]] Duration retry_backoff(std::uint32_t attempt);
  void fetch_over_ip(const http::Url& url, http::HttpRequest request, net::IpAddr ip,
                     bool fell_back, RequestPtr req);
  /// Pool submit options carrying the request's priority and deadline
  /// (priority flattens to FIFO when the overload layer is ablated).
  [[nodiscard]] http::SubmitOptions submit_options(const RequestState& req) const;
  [[nodiscard]] static http::OriginPoolConfig legacy_pool_config(
      const ProxyConfig& config, http::ConcurrencyLimiter* limiter);
  [[nodiscard]] static http::OriginPoolConfig scion_pool_config(
      const ProxyConfig& config, http::ConcurrencyLimiter* limiter);
  [[nodiscard]] static http::HttpRequest to_origin_form(const http::Url& url,
                                                        http::HttpRequest request);
  /// SCMP handler: revokes the reported interface and migrates affected
  /// pooled connections onto fresh paths.
  void on_scmp(const scion::ScmpMessage& message);

  // --- multi-access plumbing (no-ops while multi_access_ is null) ---
  /// Access pick for the request's (effective) intent: pins first, then the
  /// scheduler, soft-avoiding the access the previous attempt rode.
  [[nodiscard]] std::string pick_access(const RequestState& req);
  /// Stack / host serving an access ("" or "primary" = the ctor's).
  [[nodiscard]] scion::ScionStack& stack_for(const std::string& access);
  [[nodiscard]] net::Host& host_for(const std::string& access);
  /// Pool-key authority scoped by access ("host:port#access") so two
  /// accesses to one origin never share a pooled connection. The suffix
  /// rides the authority, not the identity, keeping identity_of_key() exact.
  [[nodiscard]] static std::string access_authority(const std::string& authority,
                                                    const std::string& access);
  /// Health-transition hook: on kDown, retires the access's pooled
  /// connections and re-runs in-flight SCION attempts on a survivor.
  void on_access_health(const std::string& name, net::AccessHealth previous,
                        net::AccessHealth current);
  /// Terminal answer when every access is down (strict and opportunistic
  /// alike fail closed: there is no link left to carry any fallback).
  void fail_no_access(const RequestPtr& req, const std::string& host);

  sim::Simulator& sim_;
  net::Host& host_;
  scion::ScionStack& stack_;
  dns::Resolver& resolver_;
  ProxyConfig config_;
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_ = nullptr;  // set before detector_/selector_
  std::unique_ptr<obs::TraceCollector> owned_collector_;
  obs::TraceCollector* collector_ = nullptr;
  obs::SloMonitor slo_;
  obs::TimeSeriesStore timeseries_;  // over *metrics_; must follow it
  ScionDetector detector_;
  PathSelector selector_;
  CircuitBreaker breaker_;
  PolicyRouter policy_router_;
  IdentityPathBroker identities_;
  Rng retry_rng_;
  // Overload layer: constructed before the pools, which hold limiter
  // pointers into the AIMD controllers.
  OverloadController overload_;
  AimdController legacy_limiter_;
  AimdController scion_limiter_;
  http::OriginPool legacy_pool_;
  http::OriginPool scion_pool_;
  std::unordered_map<std::string, std::vector<ppl::OrderKey>> origin_preferences_;
  /// Origins we have completed a SCION exchange with (0-RTT tickets).
  std::unordered_set<std::string> resumption_tickets_;
  /// Multi-access state: the bundle (null = single-access), per-access SCION
  /// stacks, extra SCMP subscriptions, and the registry of in-flight SCION
  /// attempts that an access-down transition must fail over.
  std::unique_ptr<net::MultiAccessHost> multi_access_;
  std::unordered_map<std::string, scion::ScionStack*> access_stacks_;
  std::vector<std::pair<scion::ScionStack*, std::uint64_t>> access_scmp_subscriptions_;
  std::uint64_t access_health_subscription_ = 0;
  std::unordered_map<RequestState*, std::pair<ScionContextPtr, RequestPtr>> inflight_scion_;
  std::uint64_t scmp_subscription_ = 0;
  std::uint64_t trace_id_base_ = 0;  ///< Process-unique salt, set lazily.
  std::uint64_t next_trace_id_ = 1;
};

}  // namespace pan::proxy
