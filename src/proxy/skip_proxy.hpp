// The SKIP-style local HTTP proxy (Section 5.1 of the paper).
//
// The browser extension forwards every request here. For each request the
// proxy resolves the target domain (legacy A record + SCION detection),
// selects a SCION path subject to the user's policies/geofence, and carries
// the request over QUIC-lite/SCION — falling back to TCP-lite/IPv4-6 when
// the host has no SCION connectivity (opportunistic mode). In strict mode
// the request is only allowed over a policy-compliant SCION path; otherwise
// it is blocked.
//
// Responses are annotated with X-Skip-Transport / X-Skip-Path /
// X-Skip-Compliant headers so the extension can render the UI indicator,
// and Strict-SCION headers feed the availability detector.
//
// Browser <-> proxy IPC costs a configurable per-crossing overhead, modeling
// the localhost proxy hop the paper identifies as the source of its ~100 ms
// page-load overhead.
#pragma once

#include <deque>
#include <memory>
#include <unordered_set>

#include "http/endpoints.hpp"
#include "http/file_server.hpp"
#include "http/url.hpp"
#include "proxy/detector.hpp"
#include "proxy/path_selector.hpp"
#include "proxy/policy_router.hpp"

namespace pan::proxy {

struct ProxyConfig {
  /// One-way browser<->proxy crossing cost, applied to request and response.
  Duration ipc_overhead = microseconds(400);
  /// Per-request processing in the proxy itself.
  Duration processing_overhead = microseconds(150);
  Duration request_timeout = seconds(15);
  /// Prefer SCION when available (the paper's opportunistic default).
  bool prefer_scion = true;
  /// Max parallel legacy connections per origin (browser-like).
  std::size_t max_legacy_conns_per_origin = 6;
  /// How long an SCMP-revoked interface stays excluded from selection.
  Duration revocation_ttl = seconds(30);
  transport::TransportConfig tcp = http::default_tcp_config();
  transport::TransportConfig quic = http::default_quic_config();
};

enum class TransportUsed : std::uint8_t { kScion, kIp, kBlocked, kError };

[[nodiscard]] const char* to_string(TransportUsed t);

struct ProxyRequestOptions {
  /// Strict-SCION mode for this request (decided by the extension).
  bool strict = false;
};

struct ProxyResult {
  http::HttpResponse response;
  TransportUsed transport = TransportUsed::kError;
  bool policy_compliant = false;
  /// Fingerprint of the SCION path used (empty over IP).
  std::string path_fingerprint;
  /// True when SCION was attempted and the request fell back to IP.
  bool fell_back = false;
};

struct ProxyStats {
  std::uint64_t requests = 0;
  std::uint64_t over_scion = 0;
  std::uint64_t over_ip = 0;
  std::uint64_t blocked = 0;
  std::uint64_t errors = 0;
  std::uint64_t fallbacks = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t bytes_scion = 0;
  std::uint64_t bytes_ip = 0;
  /// SCMP reports received and live connections migrated to new paths.
  std::uint64_t scmp_reports = 0;
  std::uint64_t scmp_reroutes = 0;
};

class SkipProxy {
 public:
  SkipProxy(sim::Simulator& sim, net::Host& host, scion::ScionStack& stack,
            scion::Daemon& daemon, dns::Resolver& resolver, ProxyConfig config = {});
  ~SkipProxy();

  SkipProxy(const SkipProxy&) = delete;
  SkipProxy& operator=(const SkipProxy&) = delete;

  using FetchFn = std::function<void(ProxyResult)>;
  /// The extension-facing API: request.target may be in absolute form
  /// ("http://host/path") or origin form plus a Host header.
  void fetch(http::HttpRequest request, ProxyRequestOptions options, FetchFn on_result);

  /// Extension-facing configuration API (the "specific API calls to the
  /// HTTP proxy to apply path policies chosen by users").
  void set_policies(ppl::PolicySet policies) {
    policy_router_.set_default(policies);
    selector_.set_policies(std::move(policies));
  }
  void set_geofence(std::optional<ppl::Geofence> geofence) {
    selector_.set_geofence(std::move(geofence));
  }
  /// Per-destination policies ("geofence my bank, green-route video"): rules
  /// take precedence over the default set for matching hosts.
  [[nodiscard]] PolicyRouter& policy_router() { return policy_router_; }

  [[nodiscard]] ScionDetector& detector() { return detector_; }
  [[nodiscard]] PathSelector& selector() { return selector_; }
  [[nodiscard]] const ProxyStats& stats() const { return stats_; }
  [[nodiscard]] const ProxyConfig& config() const { return config_; }
  /// Negotiated per-origin server path preferences (from Path-Preference
  /// response headers).
  [[nodiscard]] const std::unordered_map<std::string, std::vector<ppl::OrderKey>>&
  origin_preferences() const {
    return origin_preferences_;
  }

 private:
  struct LegacyPoolEntry {
    std::unique_ptr<http::LegacyHttpConnection> conn;
    std::size_t outstanding = 0;
  };
  struct LegacyOrigin {
    std::vector<LegacyPoolEntry> conns;
    std::deque<std::pair<http::HttpRequest, http::HttpClientStream::ResponseFn>> waiting;
  };
  struct ScionOrigin {
    std::unique_ptr<http::ScionHttpConnection> conn;
    scion::Path path;         // the path the connection currently uses
    scion::ScionAddr addr;    // SCION address of the origin endpoint
  };

  void process(http::HttpRequest request, ProxyRequestOptions options,
               std::shared_ptr<FetchFn> on_result, std::shared_ptr<bool> done);
  void finish(std::shared_ptr<FetchFn> on_result, std::shared_ptr<bool> done,
              ProxyResult result);
  void fetch_over_scion(const http::Url& url, http::HttpRequest request,
                        const scion::ScionAddr& addr, const scion::Path& path,
                        bool compliant, std::optional<net::IpAddr> fallback_ip,
                        std::shared_ptr<FetchFn> on_result, std::shared_ptr<bool> done);
  void fetch_over_ip(const http::Url& url, http::HttpRequest request, net::IpAddr ip,
                     bool fell_back, std::shared_ptr<FetchFn> on_result,
                     std::shared_ptr<bool> done);
  void dispatch_legacy(const std::string& origin_key, net::IpAddr ip, std::uint16_t port);
  [[nodiscard]] static http::HttpRequest to_origin_form(const http::Url& url,
                                                        http::HttpRequest request);
  /// SCMP handler: revokes the reported interface and migrates affected
  /// pooled connections onto fresh paths.
  void on_scmp(const scion::ScmpMessage& message);

  sim::Simulator& sim_;
  net::Host& host_;
  scion::ScionStack& stack_;
  dns::Resolver& resolver_;
  ProxyConfig config_;
  ScionDetector detector_;
  PathSelector selector_;
  PolicyRouter policy_router_;
  std::unordered_map<std::string, LegacyOrigin> legacy_pool_;
  std::unordered_map<std::string, ScionOrigin> scion_pool_;
  std::unordered_map<std::string, std::vector<ppl::OrderKey>> origin_preferences_;
  /// Origins we have completed a SCION exchange with (0-RTT tickets).
  std::unordered_set<std::string> resumption_tickets_;
  std::uint64_t scmp_subscription_ = 0;
  ProxyStats stats_;
};

}  // namespace pan::proxy
