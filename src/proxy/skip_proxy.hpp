// The SKIP-style local HTTP proxy (Section 5.1 of the paper).
//
// The browser extension forwards every request here. For each request the
// proxy resolves the target domain (legacy A record + SCION detection),
// selects a SCION path subject to the user's policies/geofence, and carries
// the request over QUIC-lite/SCION — falling back to TCP-lite/IPv4-6 when
// the host has no SCION connectivity (opportunistic mode). In strict mode
// the request is only allowed over a policy-compliant SCION path; otherwise
// it is blocked.
//
// Responses are annotated with X-Skip-Transport / X-Skip-Path /
// X-Skip-Compliant headers so the extension can render the UI indicator,
// and Strict-SCION headers feed the availability detector.
//
// Browser <-> proxy IPC costs a configurable per-crossing overhead, modeling
// the localhost proxy hop the paper identifies as the source of its ~100 ms
// page-load overhead.
//
// Observability: every request runs under an obs::RequestTrace with spans
// for the ipc / detect / select / handshake / fetch / fallback phases; the
// finished breakdown rides on the ProxyResult and is flushed into the
// proxy's obs::MetricsRegistry as per-phase latency histograms. Requests
// whose origin-form target starts with "/skip/" address the proxy itself:
// GET /skip/metrics returns the registry as JSON, GET /skip/pool the
// per-origin connection-pool state.
//
// Connection management lives in http::OriginPool: one pool of legacy
// (TCP-lite/IP) connections with browser-like per-origin fan-out, and one
// pool of multiplexed QUIC-lite/SCION connections (a single connection per
// origin) whose live path the SCMP handler migrates via the pool.
#pragma once

#include <memory>
#include <unordered_set>

#include "http/endpoints.hpp"
#include "http/file_server.hpp"
#include "http/origin_pool.hpp"
#include "http/url.hpp"
#include "obs/trace.hpp"
#include "proxy/detector.hpp"
#include "proxy/path_selector.hpp"
#include "proxy/policy_router.hpp"

namespace pan::proxy {

struct ProxyConfig {
  /// One-way browser<->proxy crossing cost, applied to request and response.
  Duration ipc_overhead = microseconds(400);
  /// Per-request processing in the proxy itself.
  Duration processing_overhead = microseconds(150);
  Duration request_timeout = seconds(15);
  /// Prefer SCION when available (the paper's opportunistic default).
  bool prefer_scion = true;
  /// Max parallel legacy connections per origin (browser-like).
  std::size_t max_legacy_conns_per_origin = 6;
  /// Idle pooled connections (legacy and SCION) are evicted after this long
  /// (zero = keep forever).
  Duration pool_idle_ttl = seconds(60);
  /// Consecutive fetch failures against one origin before its pool trips a
  /// cool-down during which requests fast-fail (zero disables backoff).
  std::size_t pool_backoff_threshold = 3;
  Duration pool_backoff_cooldown = seconds(5);
  /// How long an SCMP-revoked interface stays excluded from selection.
  Duration revocation_ttl = seconds(30);
  /// Shared metrics registry. When null the proxy owns a private one; the
  /// figure benches inject a long-lived registry here so per-phase latency
  /// aggregates across per-trial proxies.
  obs::MetricsRegistry* metrics = nullptr;
  transport::TransportConfig tcp = http::default_tcp_config();
  transport::TransportConfig quic = http::default_quic_config();
};

enum class TransportUsed : std::uint8_t { kScion, kIp, kBlocked, kError, kInternal };

[[nodiscard]] const char* to_string(TransportUsed t);

struct ProxyRequestOptions {
  /// Strict-SCION mode for this request (decided by the extension).
  bool strict = false;
  /// Request-scoped trace carried in from the browser/extension; the proxy
  /// creates one when absent.
  obs::TracePtr trace;
};

struct ProxyResult {
  http::HttpResponse response;
  TransportUsed transport = TransportUsed::kError;
  bool policy_compliant = false;
  /// Fingerprint of the SCION path used (empty over IP).
  std::string path_fingerprint;
  /// True when SCION was attempted and the request fell back to IP.
  bool fell_back = false;
  /// Per-phase span breakdown of this request (ipc / detect / select /
  /// handshake / fetch / fallback), in completion order.
  std::vector<obs::SpanRecord> spans;
  std::uint64_t trace_id = 0;

  /// Sum of the finished spans named `phase` (zero when absent).
  [[nodiscard]] Duration phase_total(std::string_view phase) const;
};

/// Snapshot of the proxy's top-level counters, read from the metrics
/// registry (kept as a struct for ergonomic assertions and display).
struct ProxyStats {
  std::uint64_t requests = 0;
  std::uint64_t over_scion = 0;
  std::uint64_t over_ip = 0;
  std::uint64_t blocked = 0;
  std::uint64_t errors = 0;
  std::uint64_t internal = 0;
  std::uint64_t fallbacks = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t bytes_scion = 0;
  std::uint64_t bytes_ip = 0;
  /// SCMP reports received and live connections migrated to new paths.
  std::uint64_t scmp_reports = 0;
  std::uint64_t scmp_reroutes = 0;
};

class SkipProxy {
 public:
  SkipProxy(sim::Simulator& sim, net::Host& host, scion::ScionStack& stack,
            scion::Daemon& daemon, dns::Resolver& resolver, ProxyConfig config = {});
  ~SkipProxy();

  SkipProxy(const SkipProxy&) = delete;
  SkipProxy& operator=(const SkipProxy&) = delete;

  using FetchFn = std::function<void(ProxyResult)>;
  /// The extension-facing API: request.target may be in absolute form
  /// ("http://host/path") or origin form plus a Host header. Origin-form
  /// targets under /skip/ are the proxy's own control endpoints.
  void fetch(http::HttpRequest request, ProxyRequestOptions options, FetchFn on_result);

  /// Creates a request trace bound to this proxy's id space; callers up the
  /// stack (browser/extension) open it before handing the request over.
  [[nodiscard]] obs::TracePtr make_trace();

  /// Extension-facing configuration API (the "specific API calls to the
  /// HTTP proxy to apply path policies chosen by users").
  void set_policies(ppl::PolicySet policies) {
    policy_router_.set_default(policies);
    selector_.set_policies(std::move(policies));
  }
  void set_geofence(std::optional<ppl::Geofence> geofence) {
    selector_.set_geofence(std::move(geofence));
  }
  /// Per-destination policies ("geofence my bank, green-route video"): rules
  /// take precedence over the default set for matching hosts.
  [[nodiscard]] PolicyRouter& policy_router() { return policy_router_; }

  [[nodiscard]] ScionDetector& detector() { return detector_; }
  [[nodiscard]] PathSelector& selector() { return selector_; }
  [[nodiscard]] obs::MetricsRegistry& metrics() { return *metrics_; }
  [[nodiscard]] const obs::MetricsRegistry& metrics() const { return *metrics_; }
  [[nodiscard]] ProxyStats stats() const;
  [[nodiscard]] const ProxyConfig& config() const { return config_; }
  /// Negotiated per-origin server path preferences (from Path-Preference
  /// response headers).
  [[nodiscard]] const std::unordered_map<std::string, std::vector<ppl::OrderKey>>&
  origin_preferences() const {
    return origin_preferences_;
  }

  /// Pooled-origin introspection for tests and the metrics endpoint.
  struct PooledScionOrigin {
    std::string key;
    std::string host;
    std::uint16_t port = 80;
    std::string path_fingerprint;
  };
  [[nodiscard]] std::vector<PooledScionOrigin> scion_pool_snapshot();
  /// The underlying pools (tests and the /skip/pool endpoint).
  [[nodiscard]] http::OriginPool& legacy_pool() { return legacy_pool_; }
  [[nodiscard]] http::OriginPool& scion_pool() { return scion_pool_; }

 private:
  /// Per-request state threaded through the async pipeline.
  struct RequestState {
    FetchFn on_result;
    bool done = false;
    obs::TracePtr trace;
  };
  using RequestPtr = std::shared_ptr<RequestState>;

  void process(http::HttpRequest request, ProxyRequestOptions options, RequestPtr req);
  /// Serves the proxy's own /skip/* control endpoints.
  void serve_internal(const http::HttpRequest& request, const RequestPtr& req);
  void finish(const RequestPtr& req, ProxyResult result);
  void fetch_over_scion(const http::Url& url, http::HttpRequest request,
                        const scion::ScionAddr& addr, const scion::Path& path,
                        bool compliant, std::optional<net::IpAddr> fallback_ip,
                        RequestPtr req);
  void fetch_over_ip(const http::Url& url, http::HttpRequest request, net::IpAddr ip,
                     bool fell_back, RequestPtr req);
  [[nodiscard]] static http::OriginPoolConfig legacy_pool_config(const ProxyConfig& config);
  [[nodiscard]] static http::OriginPoolConfig scion_pool_config(const ProxyConfig& config);
  [[nodiscard]] static http::HttpRequest to_origin_form(const http::Url& url,
                                                        http::HttpRequest request);
  /// SCMP handler: revokes the reported interface and migrates affected
  /// pooled connections onto fresh paths.
  void on_scmp(const scion::ScmpMessage& message);

  sim::Simulator& sim_;
  net::Host& host_;
  scion::ScionStack& stack_;
  dns::Resolver& resolver_;
  ProxyConfig config_;
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_ = nullptr;  // set before detector_/selector_
  ScionDetector detector_;
  PathSelector selector_;
  PolicyRouter policy_router_;
  http::OriginPool legacy_pool_;
  http::OriginPool scion_pool_;
  std::unordered_map<std::string, std::vector<ppl::OrderKey>> origin_preferences_;
  /// Origins we have completed a SCION exchange with (0-RTT tickets).
  std::unordered_set<std::string> resumption_tickets_;
  std::uint64_t scmp_subscription_ = 0;
  std::uint64_t next_trace_id_ = 1;
};

}  // namespace pan::proxy
