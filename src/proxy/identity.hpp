// Per-identity network isolation — the path-aware analogue of per-tab Tor
// circuit isolation (the "tango" payoff: network choices that reflect which
// tab is asking).
//
// Each browser tab/profile carries a NetworkIdentity: its own optional PPL
// policy set, its own slice of every identity-keyed cache (connection pools,
// learned SCION availability, the browser HTTP cache, path usage
// accounting), and a circuit-style disjoint path assignment brokered by
// IdentityPathBroker: for each (identity, origin) pair the broker hands out
// a path whose fingerprint is not live for any *other* identity toward that
// origin, so two tabs to the same site are never linkable by a shared path
// or pooled connection. When the path set is too small to keep identities
// apart the broker falls back to a shared path and records it in the
// `identity.path_collisions` counter (isolation degraded, never a hang).
//
// rotate_paths() semantics: rotation quarantines the identity's current
// fingerprints (per identity, with a TTL), releases its claims, and lets the
// next request re-broker onto fresh paths; the proxy retires the identity's
// pooled connections so no old-path connection survives the rotation.
//
// Every identity keeps a bounded audit trail (created / assign / collision /
// rotate events) plus request/byte counters, surfaced by the proxy at
// `GET /skip/identity`.
//
// The identity rides the extension->proxy hop in the X-Skip-Identity header;
// absent or empty means the shared "default" identity, whose keys collapse
// to the bare origin so single-identity deployments keep their metric and
// endpoint naming.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "http/message.hpp"
#include "obs/metrics.hpp"
#include "ppl/ast.hpp"
#include "scion/path.hpp"
#include "sim/simulator.hpp"

namespace pan::proxy {

/// Request header carrying the network identity id (tab/profile) from the
/// browser extension into the proxy. Absent = kDefaultIdentity.
inline constexpr std::string_view kIdentityHeader = "X-Skip-Identity";
inline constexpr std::string_view kDefaultIdentity = "default";

/// Restricts an identity id to [A-Za-z0-9._-] (other bytes become '-') and
/// 64 chars, so ids compose into pool/cache keys unambiguously ('|' is the
/// scope separator and can never appear in a sanitized id). Empty -> default.
[[nodiscard]] std::string sanitize_identity(std::string_view raw);

/// Identity of `request` per its X-Skip-Identity header (sanitized).
[[nodiscard]] std::string identity_of(const http::HttpRequest& request);

/// Scopes an origin/domain key to an identity: "<identity>|<origin>". The
/// default identity (or empty) keeps the bare key, so existing
/// single-identity pool snapshots and metrics keep their names.
[[nodiscard]] std::string identity_key(std::string_view identity, const std::string& origin);

/// Inverse of identity_key on the identity side ("default" for bare keys).
[[nodiscard]] std::string identity_of_key(const std::string& key);

/// One entry of the bounded per-identity audit trail.
struct IdentityAuditEvent {
  TimePoint at;
  std::string event;   // created / assign / collision / rotate
  std::string origin;  // empty for identity-wide events
  std::string detail;  // fingerprint or free-form context
};

struct IdentityStats {
  std::uint64_t requests = 0;
  std::uint64_t bytes = 0;
  std::uint64_t over_scion = 0;
  std::uint64_t over_ip = 0;
  /// Disjoint assignment was impossible (path set too small) and the broker
  /// fell back to a fingerprint live for another identity or quarantined by
  /// this identity's own rotation.
  std::uint64_t path_collisions = 0;
  std::uint64_t rotations = 0;
};

class NetworkIdentity {
 public:
  NetworkIdentity(std::string id, TimePoint created_at, std::size_t audit_cap);

  [[nodiscard]] const std::string& id() const { return id_; }
  [[nodiscard]] TimePoint created_at() const { return created_at_; }
  [[nodiscard]] const IdentityStats& stats() const { return stats_; }

  /// Per-identity PPL policy set, applied by the proxy when no per-site
  /// policy rule outranks it (user rules > identity policies > defaults).
  void set_policies(ppl::PolicySet policies) { policies_ = std::move(policies); }
  [[nodiscard]] const std::optional<ppl::PolicySet>& policies() const { return policies_; }

  /// Origin -> fingerprint of the path currently brokered to this identity.
  [[nodiscard]] const std::map<std::string, std::string>& assignments() const {
    return assignments_;
  }
  /// Fingerprint quarantined for this identity by a recent rotate_paths().
  [[nodiscard]] bool is_quarantined(const std::string& fingerprint, TimePoint now) const;
  [[nodiscard]] std::size_t quarantined_count(TimePoint now) const;

  [[nodiscard]] const std::deque<IdentityAuditEvent>& audit() const { return audit_; }

 private:
  friend class IdentityPathBroker;

  void record(TimePoint at, std::string event, std::string origin, std::string detail);

  std::string id_;
  TimePoint created_at_;
  std::size_t audit_cap_;
  IdentityStats stats_;
  std::optional<ppl::PolicySet> policies_;
  std::map<std::string, std::string> assignments_;          // ordered: stable JSON
  std::unordered_map<std::string, TimePoint> quarantined_;  // fingerprint -> expiry
  std::deque<IdentityAuditEvent> audit_;
};

/// The circuit-style path broker: owns every NetworkIdentity plus the
/// origin -> fingerprint -> owning-identity ledger that keeps concurrent
/// identities on disjoint paths. Single-threaded (simulator model), so the
/// exclusion-at-selection / commit-at-fetch pair is race-free as long as the
/// caller commits synchronously in the selection callback chain — which the
/// proxy does.
class IdentityPathBroker {
 public:
  IdentityPathBroker(sim::Simulator& sim, obs::MetricsRegistry& metrics,
                     std::size_t audit_cap = 64);

  /// Looks up (creating on first sight, with a "created" audit event).
  NetworkIdentity& identity(const std::string& id);
  [[nodiscard]] const NetworkIdentity* find(const std::string& id) const;
  [[nodiscard]] std::size_t identity_count() const { return identities_.size(); }

  /// Per-identity policy set for the proxy's selection override chain
  /// (nullopt when the identity is unknown or carries no policies).
  [[nodiscard]] std::optional<ppl::PolicySet> policies_for(const std::string& id) const;

  /// Selection-time exclusion predicate for (identity, origin): true for a
  /// fingerprint live for any *other* identity toward that origin, or
  /// quarantined for this identity by a recent rotation. Handed to
  /// PathSelector::choose so disjointness is enforced at filter time.
  [[nodiscard]] std::function<bool(const scion::Path&)> exclusion(const std::string& id,
                                                                  const std::string& origin);

  /// Commits the path actually fetched over. `excluded_fallback` marks a
  /// selection that knowingly used an excluded path (set too small). Returns
  /// true when the assignment is a collision (counted in
  /// `identity.path_collisions` and audited). Empty fingerprints (intra-AS
  /// trivial path) are not brokered.
  bool commit(const std::string& id, const std::string& origin,
              const std::string& fingerprint, bool excluded_fallback);

  /// rotate_paths(): quarantines the identity's current fingerprints for
  /// `quarantine_ttl`, releases its claims, and returns the released
  /// (origin, fingerprint) pairs so the proxy can retire the matching pooled
  /// connections. The next request per origin re-brokers from scratch.
  std::vector<std::pair<std::string, std::string>> rotate(const std::string& id,
                                                          Duration quarantine_ttl);

  /// Stats feedback from the proxy's request pipeline.
  void record_result(const std::string& id, bool over_scion, std::uint64_t bytes);

  /// `GET /skip/identity` body: per-identity stats, live assignments, and
  /// the audit tail.
  [[nodiscard]] std::string snapshot_json() const;

 private:
  sim::Simulator& sim_;
  obs::MetricsRegistry& metrics_;
  std::size_t audit_cap_;
  std::map<std::string, NetworkIdentity> identities_;  // ordered: stable JSON
  /// origin -> fingerprint -> owning identity: the disjointness ledger.
  std::unordered_map<std::string, std::unordered_map<std::string, std::string>> live_;
};

}  // namespace pan::proxy
